// Package repro_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation, plus the ablations. Each
// benchmark regenerates its artifact at paper scale and reports the
// headline quantity through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation in one command. EXPERIMENTS.md records
// a full run against the paper's published numbers.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/workload"
)

func paperScale() experiments.Options {
	return experiments.DefaultOptions()
}

// benchSchedulerDriver runs one simulated second of the coupled
// machine+scheduler system per iteration — the end-to-end scheduler hot
// path. wire attaches observability sinks (nil for the no-sink baseline),
// so comparing the variants bounds the tracing overhead.
func benchSchedulerDriver(b *testing.B, wire func(*fvsst.Driver, *fvsst.Scheduler)) {
	for i := 0; i < b.N; i++ {
		m, err := machine.New(machine.P630Config())
		if err != nil {
			b.Fatal(err)
		}
		for cpu := 0; cpu < 4; cpu++ {
			phase := workload.Phase{Name: "cpu", Alpha: 1.4, Instructions: 1e15}
			if cpu >= 2 {
				phase = workload.Phase{Name: "mem", Alpha: 1.1,
					Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.0186},
					Instructions: 1e15}
			}
			mix, err := workload.NewMix(workload.Program{Name: phase.Name, Phases: []workload.Phase{phase}})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.SetMix(cpu, mix); err != nil {
				b.Fatal(err)
			}
		}
		s, err := fvsst.New(fvsst.DefaultConfig(), m, units.Watts(294))
		if err != nil {
			b.Fatal(err)
		}
		drv := fvsst.NewDriver(m, s)
		if wire != nil {
			wire(drv, s)
		}
		if err := drv.Run(1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerNoSink(b *testing.B) {
	benchSchedulerDriver(b, nil)
}

func BenchmarkSchedulerObsSinks(b *testing.B) {
	metrics := obs.NewMetrics()
	trace := obs.NewJSONLWriter(io.Discard)
	benchSchedulerDriver(b, func(drv *fvsst.Driver, s *fvsst.Scheduler) {
		s.SetSink(obs.Tee(trace, metrics))
		drv.Sink = metrics
	})
}

func BenchmarkTable1PowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.WorstError*100, "worst-fit-err-%")
	}
}

func BenchmarkFigure1Saturation(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure1(o)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: saturation frequency of the most memory-intensive
		// setting (MHz).
		b.ReportMetric(rep.Curves[len(rep.Curves)-1].SaturationFreq.MHz(), "sat-MHz")
	}
}

func BenchmarkTable2PredictorError(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range rep.Rows {
			sum += row.DevCPU3Star
		}
		b.ReportMetric(sum/float64(len(rep.Rows)), "mean-CPU3*-dev")
	}
}

func BenchmarkFigure4Overhead(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure4(o)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, row := range rep.Rows {
			if row.Degradation > worst {
				worst = row.Degradation
			}
		}
		b.ReportMetric(worst*100, "worst-degradation-%")
	}
}

func BenchmarkFigure5PhaseTracking(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure5(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MeanFreqCPUPhaseMHz-rep.MeanFreqMemPhaseMHz, "phase-freq-gap-MHz")
	}
}

func BenchmarkFigure6PowerLimits(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure6(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MemKneeW, "mem-knee-W")
	}
}

func BenchmarkFigure7TwoPhase(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure7(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Budgets[len(rep.Budgets)-1].NormPerf, "perf-at-35W")
	}
}

func BenchmarkTable3Applications(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Table3(o)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: mcf energy at full budget (paper: 0.43).
		b.ReportMetric(rep.Cells["mcf"][0].Energy, "mcf-energy-at-140W")
	}
}

func BenchmarkFigure8Residency(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure8(o)
		if err != nil {
			b.Fatal(err)
		}
		if r := rep.Residency("mcf", 1000); r != nil {
			b.ReportMetric(r.ModeMHz, "mcf-mode-MHz")
		}
	}
}

func BenchmarkFigure9GapTrace(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure9(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.FracClipped*100, "clipped-%")
	}
}

func BenchmarkWorkedExampleSection5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.WorkedExample()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.T1PowerW, "T1-power-W")
	}
}

func BenchmarkAblationPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationPolicies()
		if err != nil {
			b.Fatal(err)
		}
		// Headline: fvsst's margin over uniform at the motivating 294 W.
		var margin float64
		for j, w := range rep.BudgetsW {
			if w == 294 {
				margin = rep.Perf["fvsst"][j] - rep.Perf["uniform"][j]
			}
		}
		b.ReportMetric(margin, "fvsst-minus-uniform")
	}
}

func BenchmarkAblationIdeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationIdeal()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(rep.Agreements)/float64(rep.Total), "agreement-%")
	}
}

func BenchmarkAblationIdle(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationIdle(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.SavedW, "saved-W")
	}
}

func BenchmarkAblationMasking(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationMasking(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MaskedJobLoss*100, "masked-loss-%")
	}
}

func BenchmarkAblationActuator(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationActuator(o)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: ideal-DVFS runtime relative to the fetch throttle.
		b.ReportMetric(rep.Rows[2].Seconds/rep.Rows[0].Seconds, "dvfs-vs-throttle")
	}
}

func BenchmarkClusterStudy(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.ClusterStudy(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MakespanUniform/rep.MakespanFVSST, "uniform-vs-fvsst-makespan")
	}
}

func BenchmarkAblationExecModel(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationExecModel(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.DevMonteCarlo/rep.DevAnalytic, "mc-vs-analytic-dev")
	}
}

func BenchmarkServerFarm(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.ServerFarm(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-rep.MeanPowerFVSSTW/rep.MeanPowerUnmanagedW), "power-saved-%")
	}
}

func BenchmarkAblationEpsilon(b *testing.B) {
	o := paperScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.AblationEpsilon(o)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: energy at the default ε = 5%.
		b.ReportMetric(rep.Rows[1].NormEnergy, "energy-at-eps5")
	}
}
