GO ?= go

.PHONY: all check build test vet race bench bench-paper experiments examples fuzz soak optgap cover clean

# Default: the full pre-merge gate — compile, static checks, and the test
# suite under the race detector (the obs registry is exercised concurrently).
check: build vet race

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate every paper table and figure at paper scale.
experiments:
	$(GO) run ./cmd/experiments all

# Hot-path + harness benchmarks and their JSON artefacts: the steady-state
# zero-alloc guarantees (Scheduler.Schedule, Machine.Step), the worker-pool
# runner at 1 vs 4 workers, then BENCH_hotpath.json, the farm allocator's
# reallocation-pass cost + farm-powerfail wall-clock in BENCH_farm.json,
# the tracing overhead in BENCH_obs.json (fails if the no-sink hot path
# allocates), the request-serving quantum in BENCH_serve.json (fails if
# the steady-state serving or admission path allocates), the
# discrete-event engine trendline in BENCH_des.json (fails if timeline
# dispatch allocates or the DES-vs-quantum speedup drops below its
# floor), the cluster-transport codec round trip + relay-tree
# pass-latency trendline in BENCH_netcluster.json (fails if the
# steady-state binary poll cycle allocates), the exact optimal-assignment
# solver vs the greedy hot path in BENCH_opt.json (fails if the DP blows
# its per-op runtime budget), and per-experiment wall-clock/allocation
# stats in BENCH_experiments.json.
bench:
	$(GO) test -bench 'SchedulePass|MachineStep|RunAll' -benchmem \
		./internal/fvsst/ ./internal/machine/ ./internal/experiments/
	$(GO) run ./cmd/experiments hotpath
	$(GO) run ./cmd/experiments farmbench
	$(GO) run ./cmd/experiments obsbench
	$(GO) run ./cmd/experiments servebench
	$(GO) run ./cmd/experiments desbench
	$(GO) run ./cmd/experiments netbench
	$(GO) run ./cmd/experiments optbench
	$(GO) run ./cmd/experiments -scale 0.05 -parallel 4 \
		-bench-out BENCH_experiments.json all > /dev/null
	@echo "(written to BENCH_experiments.json)"

# One testing.B benchmark per table/figure plus microbenchmarks.
bench-paper:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/powerfail
	$(GO) run ./examples/cluster
	$(GO) run ./examples/phases
	$(GO) run ./examples/serverfarm

# Short fuzz sessions over the parsers, the profile loader, the farm
# budget-schedule parser, the arrival-spec parser, the JSON and binary
# wire decoders, the event-timeline op sequencer, and the exact
# optimal-assignment solver (feasibility, greedy domination,
# permutation invariance).
fuzz:
	$(GO) test -fuzz FuzzOptimalAssign -fuzztime 30s ./internal/optimal/
	$(GO) test -fuzz FuzzTimelineOps -fuzztime 30s ./internal/engine/
	$(GO) test -fuzz FuzzParseFrequency -fuzztime 30s ./internal/units/
	$(GO) test -fuzz FuzzParsePower -fuzztime 30s ./internal/units/
	$(GO) test -fuzz FuzzLoadProgram -fuzztime 30s ./internal/workload/
	$(GO) test -fuzz FuzzParseScheduleSpec -fuzztime 30s ./internal/farm/
	$(GO) test -fuzz FuzzParseArrivalSpec -fuzztime 30s ./internal/serve/
	$(GO) test -fuzz FuzzRecvFrame -fuzztime 30s ./internal/netcluster/proto/
	$(GO) test -fuzz FuzzWireDecode -fuzztime 30s ./internal/netcluster/wire/

# Randomized invariant soak: generated scenarios through the in-process
# mirror, the differential (in-process vs networked) driver, the farm
# allocator, and the quantum-vs-DES engine differential, with every
# contract in docs/invariants.md checked each round.
soak:
	$(GO) run ./cmd/experiments soak -seeds 200 -diff 25 -farm 50 -des 50 -parallel 4

# Greedy-vs-exact-optimal gap measurement across a scenario corpus; the
# -max-gap gate mirrors invariant.DefaultGap's calibration (worst
# observed per-pass gap 0.146 over 600 seeds).
optgap:
	$(GO) run ./cmd/experiments optgap -seeds 300 -parallel 4 -max-gap 0.2

# Statement coverage for the invariant + scenario + optimal subsystems
# (the ISSUE 5 floor is 90% for the first two, ISSUE 10 adds the same
# floor for internal/optimal); coverage.out covers the whole repo for
# browsing with `go tool cover -html=coverage.out`.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
	@$(GO) test -cover ./internal/invariant/ ./internal/scenario/ ./internal/optimal/

clean:
	$(GO) clean ./...
