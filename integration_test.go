package repro_test

// End-to-end integration and property tests across the full stack:
// randomised scenarios checked against the system-level invariants the
// paper's mechanism must guarantee — budget compliance after one
// scheduling period, no cascade when informed, determinism, and monotone
// counters — regardless of workload mix, budget trajectory or seed.

import (
	"math/rand"
	"testing"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

// randomScenario builds a machine with a random workload mix and a random
// budget trajectory, all derived from one seed.
func randomScenario(t *testing.T, seed int64) (*machine.Machine, *fvsst.Driver, *fvsst.Scheduler) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mcfg := machine.P630Config()
	mcfg.Seed = seed
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	apps := []func(workload.AppScale) workload.Program{
		workload.Gzip, workload.Gap, workload.Mcf, workload.Health,
	}
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		if rng.Intn(4) == 0 {
			continue // leave idle
		}
		nJobs := 1 + rng.Intn(2)
		var progs []workload.Program
		for j := 0; j < nJobs; j++ {
			progs = append(progs, apps[rng.Intn(len(apps))](workload.AppScale(0.05+0.1*rng.Float64())))
		}
		mix, err := workload.NewMix(progs...)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			t.Fatal(err)
		}
	}
	cfg := fvsst.DefaultConfig()
	cfg.UseIdleSignal = rng.Intn(2) == 0
	s, err := fvsst.New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := fvsst.NewDriver(m, s)

	// Random budget trajectory: 1–3 events, each ≥ the 4×9 W floor.
	var events []power.BudgetEvent
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		events = append(events, power.BudgetEvent{
			At:     0.3 + rng.Float64()*2,
			Budget: units.Watts(40 + rng.Float64()*520),
		})
	}
	budgets, err := power.NewBudgetSchedule(units.Watts(560), events...)
	if err != nil {
		t.Fatal(err)
	}
	drv.Budgets = budgets
	return m, drv, s
}

// TestBudgetComplianceProperty: across random scenarios, one scheduling
// period after any decision with BudgetMet, the machine's actual processor
// power is at or under the budget (small tolerance for throttle duty
// quantisation).
func TestBudgetComplianceProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		m, drv, s := randomScenario(t, seed)
		for step := 0; step < 300; step++ {
			if err := drv.Step(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			d, ok := s.LastDecision()
			if !ok || !d.BudgetMet {
				continue
			}
			// Give actuation one quantum to settle past throttle latency.
			if m.Now()-d.At < 2*m.Config().Quantum {
				continue
			}
			if got := m.TotalCPUPower(); got > d.Budget+units.Watts(3) {
				t.Fatalf("seed %d t=%.2f: power %v above met budget %v", seed, m.Now(), got, d.Budget)
			}
		}
	}
}

// TestSchedulerDeterminism: identical seeds produce identical decision
// logs across the whole stack.
func TestSchedulerDeterminism(t *testing.T) {
	run := func() []fvsst.Decision {
		_, drv, s := randomScenario(t, 42)
		for step := 0; step < 200; step++ {
			if err := drv.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return s.Decisions()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Budget != b[i].Budget || a[i].TablePower != b[i].TablePower {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for cpu := range a[i].Assignments {
			if a[i].Assignments[cpu] != b[i].Assignments[cpu] {
				t.Fatalf("decision %d cpu %d differs", i, cpu)
			}
		}
	}
}

// TestCountersMonotoneProperty: the counter surface never runs backwards
// under any scenario — the invariant the sampler depends on.
func TestCountersMonotoneProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		m, drv, _ := randomScenario(t, seed+100)
		prev := make([]struct {
			instr, cycles uint64
		}, m.NumCPUs())
		for step := 0; step < 150; step++ {
			if err := drv.Step(); err != nil {
				t.Fatal(err)
			}
			for cpu := 0; cpu < m.NumCPUs(); cpu++ {
				s, err := m.ReadCounters(cpu)
				if err != nil {
					t.Fatal(err)
				}
				if s.Instructions < prev[cpu].instr || s.Cycles < prev[cpu].cycles {
					t.Fatalf("seed %d cpu %d: counters ran backwards", seed, cpu)
				}
				prev[cpu].instr = s.Instructions
				prev[cpu].cycles = s.Cycles
			}
		}
	}
}

// TestVoltageAlwaysSufficientProperty: every decision assigns each
// processor at least the table's minimum voltage for its frequency — the
// Step 3 guarantee that the paper's voltage scheduling never undervolts.
func TestVoltageAlwaysSufficientProperty(t *testing.T) {
	table := power.PaperTable1()
	for seed := int64(1); seed <= 4; seed++ {
		_, drv, s := randomScenario(t, seed+200)
		for step := 0; step < 200; step++ {
			if err := drv.Step(); err != nil {
				t.Fatal(err)
			}
		}
		for _, d := range s.Decisions() {
			for _, a := range d.Assignments {
				min, err := table.MinVoltage(a.Actual)
				if err != nil {
					t.Fatalf("off-grid actual frequency %v", a.Actual)
				}
				if a.Voltage < min {
					t.Fatalf("undervolted: %v < %v at %v", a.Voltage, min, a.Actual)
				}
			}
		}
	}
}

// TestInformedSystemNeverCascades: across random failure times, a system
// whose budget schedule reflects the §2 supply failure never cascades,
// provided ΔT exceeds one scheduling period plus actuation.
func TestInformedSystemNeverCascades(t *testing.T) {
	sys := power.MotivatingSystem()
	cpuBudget, ok := sys.CPUBudgetFor(units.Watts(480))
	if !ok {
		t.Fatal("infeasible base load")
	}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		failAt := 0.2 + rng.Float64()
		mcfg := machine.P630Config()
		mcfg.Seed = seed
		m, err := machine.New(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		for cpu := 0; cpu < 4; cpu++ {
			mix, err := workload.NewMix(workload.Gap(0.5))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.SetMix(cpu, mix); err != nil {
				t.Fatal(err)
			}
		}
		s, err := fvsst.New(fvsst.DefaultConfig(), m, units.Watts(560))
		if err != nil {
			t.Fatal(err)
		}
		drv := fvsst.NewDriver(m, s)
		budgets, err := power.NewBudgetSchedule(units.Watts(560),
			power.BudgetEvent{At: failAt, Budget: cpuBudget})
		if err != nil {
			t.Fatal(err)
		}
		drv.Budgets = budgets
		plant := power.MotivatingPlant(0.5)
		drv.Plant = plant
		if err := drv.Run(failAt); err != nil {
			t.Fatal(err)
		}
		if err := plant.FailSupply("PS0"); err != nil {
			t.Fatal(err)
		}
		if err := drv.Run(failAt + 2); err != nil {
			t.Fatalf("seed %d (failure at %.2fs): %v", seed, failAt, err)
		}
		if plant.Cascaded() {
			t.Fatalf("seed %d: cascade despite informed scheduler", seed)
		}
	}
}
