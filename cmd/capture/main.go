// Command capture runs a workload in the simulator, samples its
// performance-counter windows the way the fvsst daemon does, reconstructs
// a phase-structured profile from the windows (workload.FromObservations —
// the offline post-processing workflow of the predecessor study [2]) and
// writes it as JSON. The emitted profile replays via
//
//	fvsst-sim -jobs file:<profile.json>
//
// Usage:
//
//	capture -app mcf -scale 0.2 -o mcf-captured.json
//	capture -app gzip -freq 750MHz -o gzip-at-750.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/counters"
	"repro/internal/machine"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "mcf", "workload to capture (gzip, gap, mcf, health)")
	scale := flag.Float64("scale", 0.2, "workload scale")
	freqStr := flag.String("freq", "1GHz", "frequency to run the capture at")
	out := flag.String("o", "", "output profile path (default <app>-captured.json)")
	seed := flag.Int64("seed", 1, "simulation seed")
	merge := flag.Float64("merge", 0.15, "phase merge tolerance (relative)")
	flag.Parse()

	prog, err := workload.App(*app, workload.AppScale(*scale))
	if err != nil {
		log.Fatal(err)
	}
	f, err := units.ParseFrequency(*freqStr)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-captured.json", *app)
	}

	// Run the app alone at the capture frequency, sampling every quantum.
	mcfg := machine.P630Config()
	mcfg.NumCPUs = 1
	mcfg.Seed = *seed
	m, err := machine.New(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	mix, err := workload.NewMix(prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.SetMix(0, mix); err != nil {
		log.Fatal(err)
	}
	if err := m.SetFrequency(0, f); err != nil {
		log.Fatal(err)
	}

	var obs []workload.WindowObservation
	var prev counters.Sample
	total, _ := prog.TotalInstructions()
	deadline := float64(total)*20/f.Hz() + 10
	for m.Now() < deadline && !m.AllJobsDone() {
		m.Step()
		cur, err := m.ReadCounters(0)
		if err != nil {
			log.Fatal(err)
		}
		delta, err := cur.Sub(prev)
		if err != nil {
			log.Fatal(err)
		}
		prev = cur
		fHz := delta.ObservedFrequencyHz()
		if fHz <= 0 {
			continue
		}
		obs = append(obs, workload.WindowObservation{Delta: delta, FreqHz: fHz})
	}
	if !m.AllJobsDone() {
		log.Fatalf("capture run did not finish within %v simulated seconds", deadline)
	}

	cfg := workload.DefaultCaptureConfig()
	cfg.MergeTolerance = *merge
	captured, err := workload.FromObservations(*app+"-captured", obs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	file, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer file.Close()
	if err := workload.SaveProgram(file, captured); err != nil {
		log.Fatal(err)
	}
	totalInstr, _ := captured.TotalInstructions()
	fmt.Printf("captured %d windows of %s at %v into %d phases (%d instructions)\n",
		len(obs), *app, f, len(captured.Phases), totalInstr)
	fmt.Printf("profile written to %s — replay with: fvsst-sim -jobs file:%s\n", path, path)
}
