package main

import (
	"strings"
	"testing"
	"time"
)

// TestAcceptanceScenario is the issue's end-to-end check: three nodes on
// loopback, budget 900 W dropping to 600 W at t=1, node1 partitioned for
// two simulated seconds. The run must complete, the charged power must
// never exceed the budget, and the partitioned node must degrade and
// rejoin with both transitions in the trace output.
func TestAcceptanceScenario(t *testing.T) {
	o := options{
		nodes:        3,
		budgetW:      900,
		dropToW:      600,
		dropAt:       1,
		partition:    1,
		partitionAt:  0.5,
		partitionFor: 2,
		duration:     4,
		epsilon:      0.05,
		scale:        0.5,
		seed:         1,
		missK:        3,
		rpcTimeout:   40 * time.Millisecond,
		lease:        800 * time.Millisecond,
		logEvery:     5,
	}
	var out strings.Builder
	res, err := run(o, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if res.violations != 0 {
		t.Errorf("charged power exceeded the budget in %d rounds\noutput:\n%s", res.violations, out.String())
	}
	if len(res.decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	if res.degrades < 1 || res.rejoins < 1 {
		t.Errorf("%d degrades and %d rejoins; want the partitioned node to leave and return", res.degrades, res.rejoins)
	}
	for _, st := range res.status {
		if st.Degraded {
			t.Errorf("%s still degraded at the end of the run", st.Name)
		}
	}
	first, last := res.decisions[0], res.decisions[len(res.decisions)-1]
	if first.Budget.W() != 900 || last.Budget.W() != 600 {
		t.Errorf("budget trajectory %v → %v, want 900W → 600W", first.Budget, last.Budget)
	}
	text := out.String()
	for _, want := range []string{"DEGRADE", "REJOIN", "PARTITION", "HEAL", "budget safety: 0 violations"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestBudgetScheduleFlag runs the same trajectory through the farm
// budget-source plumbing: "-budget-schedule 900,1:600" must produce the
// 900W → 600W ramp and shadow the legacy drop flags entirely.
func TestBudgetScheduleFlag(t *testing.T) {
	o := options{
		nodes:        2,
		budgetW:      450, // shadowed by the schedule's 900
		scheduleSpec: "900,1:600",
		dropToW:      300, // shadowed too
		dropAt:       0.5,
		partition:    -1,
		duration:     2,
		epsilon:      0.05,
		scale:        0.5,
		seed:         1,
		missK:        3,
		rpcTimeout:   40 * time.Millisecond,
		lease:        800 * time.Millisecond,
		logEvery:     5,
	}
	var out strings.Builder
	res, err := run(o, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if res.violations != 0 {
		t.Errorf("charged power exceeded the budget in %d rounds", res.violations)
	}
	first, last := res.decisions[0], res.decisions[len(res.decisions)-1]
	if first.Budget.W() != 900 || last.Budget.W() != 600 {
		t.Errorf("budget trajectory %v → %v, want the schedule's 900W → 600W", first.Budget, last.Budget)
	}

	o.scheduleSpec = "garbage"
	if _, err := run(o, &strings.Builder{}); err == nil {
		t.Error("invalid -budget-schedule accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := run(options{nodes: 0}, &strings.Builder{}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := run(options{nodes: 2, partition: 5}, &strings.Builder{}); err == nil {
		t.Error("out-of-range partition target accepted")
	}
}
