package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestAcceptanceScenario is the issue's end-to-end check: three nodes on
// loopback, budget 900 W dropping to 600 W at t=1, node1 partitioned for
// two simulated seconds. The run must complete, the charged power must
// never exceed the budget, and the partitioned node must degrade and
// rejoin with both transitions in the trace output.
func TestAcceptanceScenario(t *testing.T) {
	o := options{
		nodes:        3,
		budgetW:      900,
		dropToW:      600,
		dropAt:       1,
		partition:    1,
		partitionAt:  0.5,
		partitionFor: 2,
		duration:     4,
		epsilon:      0.05,
		scale:        0.5,
		seed:         1,
		missK:        3,
		rpcTimeout:   40 * time.Millisecond,
		lease:        800 * time.Millisecond,
		logEvery:     5,
	}
	var out strings.Builder
	res, err := run(o, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if res.violations != 0 {
		t.Errorf("charged power exceeded the budget in %d rounds\noutput:\n%s", res.violations, out.String())
	}
	if len(res.decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	if res.degrades < 1 || res.rejoins < 1 {
		t.Errorf("%d degrades and %d rejoins; want the partitioned node to leave and return", res.degrades, res.rejoins)
	}
	for _, st := range res.status {
		if st.Degraded {
			t.Errorf("%s still degraded at the end of the run", st.Name)
		}
	}
	first, last := res.decisions[0], res.decisions[len(res.decisions)-1]
	if first.Budget.W() != 900 || last.Budget.W() != 600 {
		t.Errorf("budget trajectory %v → %v, want 900W → 600W", first.Budget, last.Budget)
	}
	text := out.String()
	for _, want := range []string{"DEGRADE", "REJOIN", "PARTITION", "HEAL", "budget safety: 0 violations"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestBudgetScheduleFlag runs the same trajectory through the farm
// budget-source plumbing: "-budget-schedule 900,1:600" must produce the
// 900W → 600W ramp and shadow the legacy drop flags entirely.
func TestBudgetScheduleFlag(t *testing.T) {
	o := options{
		nodes:        2,
		budgetW:      450, // shadowed by the schedule's 900
		scheduleSpec: "900,1:600",
		dropToW:      300, // shadowed too
		dropAt:       0.5,
		partition:    -1,
		duration:     2,
		epsilon:      0.05,
		scale:        0.5,
		seed:         1,
		missK:        3,
		rpcTimeout:   40 * time.Millisecond,
		lease:        800 * time.Millisecond,
		logEvery:     5,
	}
	var out strings.Builder
	res, err := run(o, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if res.violations != 0 {
		t.Errorf("charged power exceeded the budget in %d rounds", res.violations)
	}
	first, last := res.decisions[0], res.decisions[len(res.decisions)-1]
	if first.Budget.W() != 900 || last.Budget.W() != 600 {
		t.Errorf("budget trajectory %v → %v, want the schedule's 900W → 600W", first.Budget, last.Budget)
	}

	o.scheduleSpec = "garbage"
	if _, err := run(o, &strings.Builder{}); err == nil {
		t.Error("invalid -budget-schedule accepted")
	}
}

// TestTraceReconstructsPasses is the causal-tracing acceptance check: a
// seeded fault-free loopback run with -trace and -report must produce a
// JSONL stream from which every scheduling pass is reconstructable end
// to end — schedule event, pass root span, the Figure-3 step children,
// and per-node rpc:counters/rpc:actuate spans with a non-negative
// queue/wire/apply latency breakdown — plus the ledger report on stdout.
func TestTraceReconstructsPasses(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	o := options{
		nodes:       2,
		budgetW:     700,
		partition:   -1,
		duration:    1,
		epsilon:     0.05,
		scale:       0.5,
		seed:        3,
		missK:       3,
		rpcTimeout:  40 * time.Millisecond,
		lease:       800 * time.Millisecond,
		logEvery:    5,
		tracePath:   tracePath,
		metricsAddr: "127.0.0.1:0",
		report:      "all",
	}
	var out strings.Builder
	res, err := run(o, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"metrics endpoint listening on", "energy", "compliance", "overshoot"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var buf obs.Buffer
	if _, err := obs.ReplayJSONL(f, &buf); err != nil {
		t.Fatal(err)
	}

	type passTree struct {
		schedule, root, steps int
		rpcCounters           map[string]int
		rpcActuate            map[string]int
	}
	passes := map[uint64]*passTree{}
	get := func(id uint64) *passTree {
		p := passes[id]
		if p == nil {
			p = &passTree{rpcCounters: map[string]int{}, rpcActuate: map[string]int{}}
			passes[id] = p
		}
		return p
	}
	for _, e := range buf.Events() {
		switch {
		case e.Type == obs.EventSchedule:
			get(e.PassID).schedule++
		case e.Type != obs.EventSpan:
			continue
		case e.Span == obs.SpanPass:
			get(e.PassID).root++
		case e.Span == obs.SpanGridFill, e.Span == obs.SpanStepOne, e.Span == obs.SpanStepTwo, e.Span == obs.SpanStepThree:
			get(e.PassID).steps++
		case e.Span == obs.SpanRPCCounters:
			get(e.PassID).rpcCounters[e.Node]++
		case e.Span == obs.SpanRPCActuate:
			get(e.PassID).rpcActuate[e.Node]++
		}
		if e.Type == obs.EventSpan && (e.DurS < 0 || e.QueueS < 0 || e.WireS < 0 || e.ApplyS < 0) {
			t.Errorf("pass %d span %s/%s has negative timing: %+v", e.PassID, e.Node, e.Span, e)
		}
	}
	rounds := len(res.decisions)
	if rounds == 0 {
		t.Fatal("no rounds")
	}
	for id := uint64(1); id <= uint64(rounds); id++ {
		p := passes[id]
		if p == nil {
			t.Fatalf("pass %d missing from the trace entirely", id)
		}
		if p.schedule != 1 || p.root != 1 || p.steps != 4 {
			t.Errorf("pass %d: %d schedule events, %d root spans, %d step spans; want 1/1/4", id, p.schedule, p.root, p.steps)
		}
		// Fault-free run: both nodes answer both RPCs every round.
		for _, node := range []string{"node0", "node1"} {
			if p.rpcCounters[node] != 1 || p.rpcActuate[node] != 1 {
				t.Errorf("pass %d node %s: %d counters + %d actuate rpc spans; want 1+1",
					id, node, p.rpcCounters[node], p.rpcActuate[node])
			}
		}
	}
	if got := uint64(len(passes)); got != uint64(rounds) {
		t.Errorf("trace holds %d pass IDs for %d rounds", got, rounds)
	}
}

// TestRelayTreeScenario drives the 2-level tree over the in-process pipe
// transport with the binary codec: budget drop mid-run, one relay
// partitioned and healed. Charged power must never exceed the budget
// (the frozen subtree is charged its last acknowledged draw) and every
// pass must report a latency.
func TestRelayTreeScenario(t *testing.T) {
	o := options{
		nodes:        6,
		relays:       2,
		transport:    "pipe",
		codec:        "bin1",
		budgetW:      1800,
		dropToW:      1200,
		dropAt:       1,
		partition:    1,
		partitionAt:  0.5,
		partitionFor: 1,
		duration:     3,
		epsilon:      0.05,
		scale:        0.5,
		seed:         1,
		missK:        3,
		rpcTimeout:   200 * time.Millisecond,
		logEvery:     5,
	}
	var out strings.Builder
	res, err := run(o, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if res.violations != 0 {
		t.Errorf("charged power exceeded the budget in %d rounds\noutput:\n%s", res.violations, out.String())
	}
	if len(res.rootDecs) == 0 {
		t.Fatal("no root decisions recorded")
	}
	if res.maxPass <= 0 {
		t.Error("no pass latency recorded")
	}
	if res.degrades < 1 || res.rejoins < 1 {
		t.Errorf("%d degrades and %d rejoins; want the partitioned relay to leave and return", res.degrades, res.rejoins)
	}
	for _, st := range res.status {
		if st.Degraded {
			t.Errorf("%s still degraded at the end of the run", st.Name)
		}
	}
	first, last := res.rootDecs[0], res.rootDecs[len(res.rootDecs)-1]
	if first.Budget.W() != 1800 || last.Budget.W() != 1200 {
		t.Errorf("budget trajectory %v → %v, want 1800W → 1200W", first.Budget, last.Budget)
	}
	text := out.String()
	for _, want := range []string{"PARTITION relay1", "HEAL", "peak pass latency", "budget safety: 0 violations", "binary frames"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := run(options{nodes: 0}, &strings.Builder{}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := run(options{nodes: 2, partition: 5}, &strings.Builder{}); err == nil {
		t.Error("out-of-range partition target accepted")
	}
}
