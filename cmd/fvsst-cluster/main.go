// Command fvsst-cluster runs the networked cluster control plane on
// loopback: it spawns N node agents — each wrapping a simulated SMP and
// serving the wire protocol over TCP — and one coordinator enforcing a
// global power budget across them, then drives a fault scenario through
// the deterministic faultnet fabric: the budget drops mid-run and one
// node is partitioned away and rejoins.
//
// Usage examples:
//
//	fvsst-cluster
//	fvsst-cluster -nodes 3 -budget 900 -drop-to 600 -drop-at 1 \
//	    -partition 1 -partition-at 0.5 -partition-for 2 -duration 4
//	fvsst-cluster -budget-schedule "900,1:600,3:0.75kW"
//	fvsst-cluster -trace out.jsonl -metrics out.prom -seed 7
//
// Times are simulated seconds. The run prints every scheduling decision
// of interest (budget changes, degraded rounds, every -log-every'th
// timer round), every degrade/rejoin/failsafe transition, and a budget
// safety summary: the run fails if the power charged against the budget
// — live assignments plus worst-case reservations for silent nodes —
// ever exceeds it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/farm"
	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/netcluster"
	"repro/internal/netcluster/faultnet"
	"repro/internal/netcluster/proto"
	"repro/internal/netcluster/wire"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

// options is the flag set, separated from main so tests can drive runs.
type options struct {
	nodes        int
	cpus         int
	budgetW      float64
	scheduleSpec string
	dropToW      float64
	dropAt       float64
	partition    int
	partitionAt  float64
	partitionFor float64
	duration     float64
	epsilon      float64
	scale        float64
	seed         int64
	missK        int
	rpcTimeout   time.Duration
	lease        time.Duration
	logEvery     int
	relays       int
	transport    string
	codec        string
	maxPassLat   time.Duration
	tracePath    string
	metricsPath  string
	metricsAddr  string
	report       string
}

// result summarises a run for the safety check and the smoke test.
type result struct {
	decisions  []netcluster.Decision
	rootDecs   []netcluster.RootDecision
	status     []netcluster.NodeStatus
	violations int
	degrades   int
	rejoins    int
	maxPass    time.Duration
}

// transitionLog prints and counts degrade/rejoin/failsafe events as they
// happen.
type transitionLog struct {
	w        io.Writer
	degrades int
	rejoins  int
}

func (l *transitionLog) Emit(e obs.Event) {
	switch e.Type {
	case obs.EventDegrade:
		l.degrades++
	case obs.EventRejoin:
		l.rejoins++
	case obs.EventFailsafe:
	default:
		return
	}
	fmt.Fprintf(l.w, "t=%.2f  %-8s %-6s %s\n", e.At, strings.ToUpper(e.Type), e.Node, e.Detail)
}

// apps rotate across the cluster's CPUs so every node carries a mixed
// load.
var apps = []string{"gzip", "mcf", "gap", "health"}

// buildAgents spawns the node agents. With a pipe dialer the agents never
// bind a listener: they register under their name, which doubles as the
// dial address.
func buildAgents(o options, sink obs.Sink, pd *netcluster.PipeDialer) ([]*netcluster.Agent, []netcluster.NodeSpec, error) {
	agents := make([]*netcluster.Agent, o.nodes)
	specs := make([]netcluster.NodeSpec, o.nodes)
	for i := 0; i < o.nodes; i++ {
		mcfg := machine.P630Config()
		mcfg.Seed = o.seed + int64(i)
		if o.cpus > 0 {
			mcfg.NumCPUs = o.cpus
		}
		m, err := machine.New(mcfg)
		if err != nil {
			return nil, nil, err
		}
		for cpu := 0; cpu < mcfg.NumCPUs; cpu++ {
			prog, err := workload.App(apps[(i+cpu)%len(apps)], workload.AppScale(o.scale))
			if err != nil {
				return nil, nil, err
			}
			mix, err := workload.NewMix(prog)
			if err != nil {
				return nil, nil, err
			}
			if err := m.SetMix(cpu, mix); err != nil {
				return nil, nil, err
			}
		}
		name := fmt.Sprintf("node%d", i)
		a, err := netcluster.NewAgent(netcluster.AgentConfig{
			Name:          name,
			M:             m,
			FailsafeLease: o.lease,
			Sink:          sink,
		})
		if err != nil {
			return nil, nil, err
		}
		if pd != nil {
			pd.Register(name, a)
			specs[i] = netcluster.NodeSpec{Name: name, Addr: name}
		} else {
			if err := a.Start(); err != nil {
				return nil, nil, err
			}
			specs[i] = netcluster.NodeSpec{Name: name, Addr: a.Addr()}
		}
		agents[i] = a
	}
	return agents, specs, nil
}

func run(o options, out io.Writer) (result, error) {
	var res result
	if o.nodes < 1 {
		return res, fmt.Errorf("need at least one node")
	}
	switch o.transport {
	case "", "tcp", "pipe":
	default:
		return res, fmt.Errorf("-transport must be tcp or pipe, not %q", o.transport)
	}
	codec := o.codec
	if codec == "json" {
		codec = ""
	}
	if codec != "" && codec != wire.CodecName {
		return res, fmt.Errorf("-codec must be json or %s, not %q", wire.CodecName, o.codec)
	}
	if o.relays > 0 {
		if o.relays > o.nodes {
			return res, fmt.Errorf("%d relays for %d nodes", o.relays, o.nodes)
		}
		if o.partition >= o.relays {
			return res, fmt.Errorf("partition target %d out of range for %d relays (relay mode partitions root↔relay links)", o.partition, o.relays)
		}
	} else if o.partition >= o.nodes {
		return res, fmt.Errorf("partition target %d out of range for %d nodes", o.partition, o.nodes)
	}

	transitions := &transitionLog{w: out}
	sinks := []obs.Sink{transitions}
	var trace *obs.JSONLWriter
	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return res, err
		}
		defer f.Close()
		trace = obs.NewJSONLWriter(f)
		// Flush on every exit path (defers run before f.Close); the
		// explicit Close further down reports the sticky error on the
		// happy path. A trace truncated by an error exit is still valid
		// JSONL up to its last complete line.
		defer trace.Close()
		sinks = append(sinks, trace)
	}
	var ledger *obs.Ledger
	var reportSections []string
	if o.report != "" {
		var err error
		reportSections, err = obs.ParseSections(o.report)
		if err != nil {
			return res, fmt.Errorf("-report: %w", err)
		}
		ledger = obs.NewLedger()
		sinks = append(sinks, ledger)
	}
	sink := obs.Tee(sinks...)

	wireStats := &wire.Stats{}
	var pd *netcluster.PipeDialer
	if o.transport == "pipe" {
		pd = netcluster.NewPipeDialer(wireStats)
	}
	agents, specs, err := buildAgents(o, sink, pd)
	if err != nil {
		return res, err
	}
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()

	metrics := netcluster.NewMetrics()
	if o.metricsAddr != "" {
		// Bind synchronously so an unusable address fails the run up front
		// instead of racing against a short simulation (same contract as
		// fvsst-sim -metrics-addr).
		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			return res, fmt.Errorf("metrics endpoint: %w", err)
		}
		defer ln.Close()
		// Print the bound address, not the flag: with ":0" the OS picks
		// the port, and scripts need to learn which one.
		fmt.Fprintf(out, "metrics endpoint listening on %s\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, metrics.Registry.Handler()); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
	}

	if o.relays > 0 {
		err = runTree(o, out, sink, metrics, wireStats, codec, pd, specs, &res)
	} else {
		err = runFlat(o, out, sink, metrics, wireStats, codec, pd, specs, &res)
	}
	if err != nil {
		return res, err
	}
	res.degrades = transitions.degrades
	res.rejoins = transitions.rejoins

	if ledger != nil {
		fmt.Fprintln(out)
		if err := ledger.Summary().WriteText(out, reportSections); err != nil {
			return res, err
		}
	}
	if trace != nil {
		if err := trace.Close(); err != nil {
			return res, err
		}
		fmt.Fprintf(out, "decision trace written to %s\n", o.tracePath)
	}
	if o.metricsPath != "" {
		f, err := os.Create(o.metricsPath)
		if err != nil {
			return res, err
		}
		if err := metrics.Registry.WritePrometheus(f); err != nil {
			return res, err
		}
		if err := f.Close(); err != nil {
			return res, err
		}
		fmt.Fprintf(out, "metrics written to %s\n", o.metricsPath)
	}
	return res, nil
}

// budgetConfig wires the flags' budget trajectory into the coordinator
// config: an explicit schedule spec through the farm budget-source
// plumbing (the same interface hierarchical allocation feeds clusters
// through), or the legacy one-drop flags.
func budgetConfig(o options, ccfg *netcluster.Config) error {
	switch {
	case o.scheduleSpec != "":
		src, err := farm.ParseScheduleSpec(o.scheduleSpec)
		if err != nil {
			return fmt.Errorf("-budget-schedule: %w", err)
		}
		ccfg.Source = src
		ccfg.Budget = src.BudgetAt(0)
	case o.dropToW > 0 && o.dropAt > 0:
		sched, err := power.NewBudgetSchedule(units.Watts(o.budgetW),
			power.BudgetEvent{At: o.dropAt, Budget: units.Watts(o.dropToW), Label: "budget drop"})
		if err != nil {
			return err
		}
		ccfg.Budgets = sched
	}
	return nil
}

// newFabric builds the seeded fault fabric over the selected transport;
// every connection shares the run's codec counters.
func newFabric(o options, pd *netcluster.PipeDialer, stats *wire.Stats) *faultnet.Network {
	fabric := faultnet.New(o.seed + 1000)
	if pd != nil {
		fabric.SetTransport(pd.DialTransport)
	} else {
		fabric.SetTransport(func(addr string, timeout time.Duration) (proto.Conn, error) {
			return wire.DialStats(addr, timeout, stats)
		})
	}
	return fabric
}

func fvsstConfig(o options) fvsst.Config {
	cfg := fvsst.DefaultConfig()
	cfg.Epsilon = o.epsilon
	cfg.UseIdleSignal = true
	return cfg
}

// runFlat drives the fleet through one flat coordinator (the original
// topology): every agent is a direct child.
func runFlat(o options, out io.Writer, sink obs.Sink, metrics *netcluster.Metrics, stats *wire.Stats, codec string, pd *netcluster.PipeDialer, specs []netcluster.NodeSpec, res *result) error {
	fabric := newFabric(o, pd, stats)
	ccfg := netcluster.Config{
		Fvsst:      fvsstConfig(o),
		Budget:     units.Watts(o.budgetW),
		MissK:      o.missK,
		RPCTimeout: o.rpcTimeout,
		Seed:       o.seed,
		Dialer:     fabric,
		Sink:       sink,
		Metrics:    metrics,
		Codec:      codec,
		WireStats:  stats,
	}
	if err := budgetConfig(o, &ccfg); err != nil {
		return err
	}
	coord, err := netcluster.NewCoordinator(ccfg, specs...)
	if err != nil {
		return err
	}
	if err := coord.Connect(); err != nil {
		return err
	}
	defer coord.Close()

	partitionName := ""
	if o.partition >= 0 {
		partitionName = specs[o.partition].Name
	}
	partitionEnd := o.partitionAt + o.partitionFor
	cut := false
	timerRounds := 0
	fmt.Fprintf(out, "%d nodes up; budget %.0fW; seed %d\n", o.nodes, o.budgetW, o.seed)
	for coord.Now() < o.duration {
		now := coord.Now()
		if partitionName != "" {
			if !cut && now >= o.partitionAt && now < partitionEnd {
				fabric.Partition(partitionName)
				cut = true
				fmt.Fprintf(out, "t=%.2f  PARTITION %s cut off\n", now, partitionName)
			}
			if cut && now >= partitionEnd {
				fabric.Heal(partitionName)
				cut = false
				fmt.Fprintf(out, "t=%.2f  HEAL     %s reachable again\n", now, partitionName)
			}
		}
		if err := coord.RunRound(); err != nil {
			return err
		}
		d := coord.Decisions()[len(coord.Decisions())-1]
		if d.Charged > d.Budget {
			res.violations++
		}
		interesting := d.Trigger != "timer" || len(d.Degraded) > 0 || d.Charged > d.Budget
		if d.Trigger == "timer" {
			timerRounds++
		}
		if interesting || (o.logEvery > 0 && timerRounds%o.logEvery == 0) {
			degraded := ""
			if len(d.Degraded) > 0 {
				degraded = "  degraded=" + strings.Join(d.Degraded, ",")
			}
			fmt.Fprintf(out, "t=%.2f  %-13s budget=%v charged=%v reserved=%v met=%v%s\n",
				d.At, d.Trigger, d.Budget, d.Charged, d.Reserved, d.BudgetMet, degraded)
		}
	}

	res.decisions = coord.Decisions()
	res.status = coord.Status()

	fmt.Fprintf(out, "\nfinished at t=%.2fs after %d rounds\n", coord.Now(), len(res.decisions))
	for _, st := range res.status {
		state := "ok"
		if st.Degraded {
			state = "DEGRADED"
		}
		fmt.Fprintf(out, "  %-6s %-8s charge-if-silent %v\n", st.Name, state, st.ChargedIfSilent)
	}
	worst := 0.0
	for _, d := range res.decisions {
		if r := d.Charged.W() / d.Budget.W(); r > worst {
			worst = r
		}
	}
	fmt.Fprintf(out, "budget safety: %d violations across %d rounds; peak charged/budget %.0f%%\n",
		res.violations, len(res.decisions), 100*worst)
	return nil
}

// runTree drives the fleet through a 2-level tree: the nodes split into
// contiguous groups, each behind a relay (agent protocol upward,
// coordinator protocol downward), with one root dividing the global
// budget across the relays' aggregated demand curves. The partition flag
// targets a relay: cutting a root↔relay link freezes a whole subtree,
// which the root charges at its last acknowledged draw.
func runTree(o options, out io.Writer, sink obs.Sink, metrics *netcluster.Metrics, stats *wire.Stats, codec string, pd *netcluster.PipeDialer, specs []netcluster.NodeSpec, res *result) error {
	cfg := fvsstConfig(o)
	relays := make([]*netcluster.Relay, 0, o.relays)
	defer func() {
		for _, r := range relays {
			r.Close()
		}
	}()
	relaySpecs := make([]netcluster.NodeSpec, o.relays)
	base, extra := o.nodes/o.relays, o.nodes%o.relays
	lo := 0
	for j := 0; j < o.relays; j++ {
		size := base
		if j < extra {
			size++
		}
		var dialer netcluster.Dialer
		if pd != nil {
			dialer = pd
		} else {
			dialer = &netcluster.TCPDialer{Stats: stats}
		}
		name := fmt.Sprintf("relay%d", j)
		sub, err := netcluster.NewCoordinator(netcluster.Config{
			Name:       name,
			Fvsst:      cfg,
			Budget:     units.Watts(o.budgetW),
			MissK:      o.missK,
			RPCTimeout: o.rpcTimeout,
			Seed:       o.seed + int64(j) + 1,
			Dialer:     dialer,
			Codec:      codec,
		}, specs[lo:lo+size]...)
		if err != nil {
			return err
		}
		if err := sub.Connect(); err != nil {
			sub.Close()
			return err
		}
		lo += size
		relay, err := netcluster.NewRelay(netcluster.RelayConfig{Name: name}, sub)
		if err != nil {
			sub.Close()
			return err
		}
		relays = append(relays, relay)
		if pd != nil {
			pd.Register(name, relay)
			relaySpecs[j] = netcluster.NodeSpec{Name: name, Addr: name}
		} else {
			if err := relay.Start(); err != nil {
				return err
			}
			relaySpecs[j] = netcluster.NodeSpec{Name: name, Addr: relay.Addr()}
		}
	}

	fabric := newFabric(o, pd, stats)
	ccfg := netcluster.Config{
		Name:       "root",
		Fvsst:      cfg,
		Budget:     units.Watts(o.budgetW),
		MissK:      o.missK,
		RPCTimeout: o.rpcTimeout,
		Seed:       o.seed,
		Dialer:     fabric,
		Sink:       sink,
		Metrics:    metrics,
		Codec:      codec,
		WireStats:  stats,
	}
	if err := budgetConfig(o, &ccfg); err != nil {
		return err
	}
	root, err := netcluster.NewRoot(ccfg, relaySpecs...)
	if err != nil {
		return err
	}
	if err := root.Connect(); err != nil {
		return err
	}
	defer root.Close()

	partitionName := ""
	if o.partition >= 0 {
		partitionName = relaySpecs[o.partition].Name
	}
	partitionEnd := o.partitionAt + o.partitionFor
	cut := false
	timerRounds := 0
	transport := o.transport
	if transport == "" {
		transport = "tcp"
	}
	fmt.Fprintf(out, "%d nodes up behind %d relays (%s transport); budget %.0fW; seed %d\n",
		o.nodes, o.relays, transport, o.budgetW, o.seed)
	for root.Now() < o.duration {
		now := root.Now()
		if partitionName != "" {
			if !cut && now >= o.partitionAt && now < partitionEnd {
				fabric.Partition(partitionName)
				cut = true
				fmt.Fprintf(out, "t=%.2f  PARTITION %s cut off\n", now, partitionName)
			}
			if cut && now >= partitionEnd {
				fabric.Heal(partitionName)
				cut = false
				fmt.Fprintf(out, "t=%.2f  HEAL     %s reachable again\n", now, partitionName)
			}
		}
		if err := root.RunRound(); err != nil {
			return err
		}
		decs := root.RootDecisions()
		d := decs[len(decs)-1]
		if d.PassDur > res.maxPass {
			res.maxPass = d.PassDur
		}
		if d.Charged > d.Budget {
			res.violations++
		}
		interesting := d.Trigger != "timer" || len(d.Degraded) > 0 || d.Charged > d.Budget
		if d.Trigger == "timer" {
			timerRounds++
		}
		if interesting || (o.logEvery > 0 && timerRounds%o.logEvery == 0) {
			degraded := ""
			if len(d.Degraded) > 0 {
				degraded = "  degraded=" + strings.Join(d.Degraded, ",")
			}
			fmt.Fprintf(out, "t=%.2f  %-13s budget=%v charged=%v reserved=%v met=%v pass=%v%s\n",
				d.At, d.Trigger, d.Budget, d.Charged, d.Reserved, d.BudgetMet, d.PassDur.Round(time.Microsecond), degraded)
		}
	}

	res.rootDecs = root.RootDecisions()
	res.status = root.Status()

	fmt.Fprintf(out, "\nfinished at t=%.2fs after %d rounds; peak pass latency %v\n",
		root.Now(), len(res.rootDecs), res.maxPass.Round(time.Microsecond))
	for _, st := range res.status {
		state := "ok"
		if st.Degraded {
			state = "DEGRADED"
		}
		fmt.Fprintf(out, "  %-8s %-8s charge-if-silent %v\n", st.Name, state, st.ChargedIfSilent)
	}
	worst := 0.0
	for _, d := range res.rootDecs {
		if r := d.Charged.W() / d.Budget.W(); r > worst {
			worst = r
		}
	}
	fmt.Fprintf(out, "budget safety: %d violations across %d rounds; peak charged/budget %.0f%%\n",
		res.violations, len(res.rootDecs), 100*worst)
	if codec == wire.CodecName {
		snap := stats.Snapshot()
		fmt.Fprintf(out, "wire: %d binary frames out, %d in; %d delta reports received\n",
			snap.BinFramesOut, snap.BinFramesIn, snap.DeltaIn)
	}
	return nil
}

func main() {
	var o options
	flag.IntVar(&o.nodes, "nodes", 3, "number of node agents to spawn")
	flag.IntVar(&o.cpus, "cpus", 0, "CPUs per node (0 = machine config default)")
	flag.IntVar(&o.relays, "relays", 0, "relay coordinators in a 2-level tree (0 = flat single coordinator)")
	flag.StringVar(&o.transport, "transport", "tcp", "agent transport: tcp sockets or in-process pipes (pipe scales past fd limits)")
	flag.StringVar(&o.codec, "codec", "json", "hot-message codec: json or bin1 (negotiated binary with delta counter reports)")
	flag.DurationVar(&o.maxPassLat, "max-pass-latency", 0, "fail the run if any relay-tree pass exceeds this wall-clock latency (0 = report only)")
	flag.Float64Var(&o.budgetW, "budget", 900, "initial global CPU power budget (watts)")
	flag.StringVar(&o.scheduleSpec, "budget-schedule", "", `budget schedule "W0,t1:W1,..." (overrides -budget/-drop-to/-drop-at)`)
	flag.Float64Var(&o.dropToW, "drop-to", 600, "budget after the drop (watts, 0 = never drops)")
	flag.Float64Var(&o.dropAt, "drop-at", 1, "simulated time of the budget drop (seconds, 0 = never)")
	flag.IntVar(&o.partition, "partition", 1, "node index to partition (-1 = none)")
	flag.Float64Var(&o.partitionAt, "partition-at", 0.5, "simulated time the partition starts")
	flag.Float64Var(&o.partitionFor, "partition-for", 2, "simulated seconds the partition lasts")
	flag.Float64Var(&o.duration, "duration", 4, "simulated seconds to run")
	flag.Float64Var(&o.epsilon, "epsilon", 0.05, "acceptable performance loss ε")
	flag.Float64Var(&o.scale, "scale", 0.5, "workload scale")
	flag.Int64Var(&o.seed, "seed", 1, "scenario seed (machines, fault fabric, retry jitter)")
	flag.IntVar(&o.missK, "miss-k", 3, "consecutive missed rounds before a node is marked degraded")
	flag.DurationVar(&o.rpcTimeout, "rpc-timeout", 100*time.Millisecond, "per-attempt RPC deadline")
	flag.DurationVar(&o.lease, "lease", time.Second, "agent failsafe lease (0 disables the watchdog)")
	flag.IntVar(&o.logEvery, "log-every", 5, "print every n-th routine timer decision")
	flag.StringVar(&o.tracePath, "trace", "", "write one JSONL trace event per decision/transition to this file")
	flag.StringVar(&o.metricsPath, "metrics", "", "write Prometheus text-format transport metrics to this file at exit")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve a live Prometheus /metrics endpoint on this address (e.g. :9090)")
	flag.StringVar(&o.report, "report", "", "print the energy & compliance ledger at exit (comma-separated sections, or \"all\")")
	flag.Parse()

	res, err := run(o, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if res.violations > 0 {
		log.Fatalf("budget safety violated in %d rounds", res.violations)
	}
	if o.maxPassLat > 0 && res.maxPass > o.maxPassLat {
		log.Fatalf("peak pass latency %v exceeds -max-pass-latency %v", res.maxPass, o.maxPassLat)
	}
}
