// Command synbench is the standalone synthetic benchmark of §7.3: a
// program with an adjustable ratio of CPU-intensive to memory-intensive
// work and two phases of configurable length. It reports throughput per
// phase at a fixed frequency — the tool used to produce Figure 1.
//
// Usage:
//
//	synbench -p1 100 -p2 20 -seconds 2 -freq 750MHz
//	synbench -sweep            # full intensity × frequency sweep
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

func run(intensity float64, seconds float64, f units.Frequency, seed int64) (instrPerSec float64, err error) {
	h := memhier.P630()
	probe, err := workload.SyntheticIntensityPhase("p", intensity, 1000, h)
	if err != nil {
		return 0, err
	}
	instr := workload.InstructionsForDuration(probe, h, 1e9, seconds)
	phase, err := workload.SyntheticIntensityPhase("main", intensity, instr, h)
	if err != nil {
		return 0, err
	}
	prog := workload.Program{Name: "synbench", Phases: []workload.Phase{phase}}

	mcfg := machine.P630Config()
	mcfg.NumCPUs = 1
	mcfg.Seed = seed
	m, err := machine.New(mcfg)
	if err != nil {
		return 0, err
	}
	mix, err := workload.NewMix(prog)
	if err != nil {
		return 0, err
	}
	if err := m.SetMix(0, mix); err != nil {
		return 0, err
	}
	if err := m.SetFrequency(0, f); err != nil {
		return 0, err
	}
	if !m.RunUntilAllDone(seconds*30 + 10) {
		return 0, fmt.Errorf("did not finish")
	}
	comps := m.Completions()
	return float64(instr) / comps[0].At, nil
}

func main() {
	p1 := flag.Float64("p1", 100, "phase 1 CPU intensity (0-100)")
	p2 := flag.Float64("p2", 20, "phase 2 CPU intensity (0-100)")
	seconds := flag.Float64("seconds", 2, "per-phase target length at 1GHz")
	freqStr := flag.String("freq", "1GHz", "fixed frequency to run at")
	sweep := flag.Bool("sweep", false, "run the full intensity × frequency sweep instead")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *sweep {
		set := power.PaperTable1().Frequencies()
		tab := telemetry.Table{
			Title:   "synthetic benchmark throughput (Ginstr/s)",
			Headers: []string{"Frequency", "cpu100", "cpu75", "cpu50", "cpu25", "cpu0"},
		}
		for _, f := range set {
			row := []string{f.String()}
			for _, in := range []float64{100, 75, 50, 25, 0} {
				tput, err := run(in, *seconds, f, *seed)
				if err != nil {
					log.Fatal(err)
				}
				row = append(row, fmt.Sprintf("%.3f", tput/1e9))
			}
			tab.MustAddRow(row...)
		}
		fmt.Print(tab.String())
		return
	}

	f, err := units.ParseFrequency(*freqStr)
	if err != nil {
		log.Fatal(err)
	}
	for i, in := range []float64{*p1, *p2} {
		tput, err := run(in, *seconds, f, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("phase %d (cpu intensity %3.0f%%) at %v: %.3f Ginstr/s\n", i+1, in, f, tput/1e9)
	}
}
