// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale N] [-seed N] [-quiet] [list | all | <id>...]
//
// where <id> is one of: table1, fig1, table2, fig4, fig5, fig6, fig7,
// table3, fig8, fig9, worked, ab-policies, ab-ideal, ab-idle.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

type runner struct {
	desc string
	run  func(experiments.Options) (renderer, error)
}

func registry() map[string]runner {
	return map[string]runner{
		"table1": {"Table 1: frequency/power operating points vs fitted model", func(experiments.Options) (renderer, error) {
			r, err := experiments.Table1()
			return renderOf(r, err)
		}},
		"fig1": {"Figure 1: performance saturation", func(o experiments.Options) (renderer, error) {
			r, err := experiments.Figure1(o)
			return renderOf(r, err)
		}},
		"table2": {"Table 2: predictor IPC deviation", func(o experiments.Options) (renderer, error) {
			r, err := experiments.Table2(o)
			return renderOf(r, err)
		}},
		"fig4": {"Figure 4: fvsst overhead", func(o experiments.Options) (renderer, error) {
			r, err := experiments.Figure4(o)
			return renderOf(r, err)
		}},
		"fig5": {"Figure 5: phase tracking", func(o experiments.Options) (renderer, error) {
			r, err := experiments.Figure5(o)
			return renderOf(r, err)
		}},
		"fig6": {"Figure 6: performance under power limits", func(o experiments.Options) (renderer, error) {
			r, err := experiments.Figure6(o)
			return renderOf(r, err)
		}},
		"fig7": {"Figure 7: two-phase benchmark under constraints", func(o experiments.Options) (renderer, error) {
			r, err := experiments.Figure7(o)
			return renderOf(r, err)
		}},
		"table3": {"Table 3: applications under constraint", func(o experiments.Options) (renderer, error) {
			r, err := experiments.Table3(o)
			return renderOf(r, err)
		}},
		"fig8": {"Figure 8: time-at-frequency residency", func(o experiments.Options) (renderer, error) {
			r, err := experiments.Figure8(o)
			return renderOf(r, err)
		}},
		"fig9": {"Figures 9+10: gap actual vs desired frequency at 75W", func(o experiments.Options) (renderer, error) {
			r, err := experiments.Figure9(o)
			return renderOf(r, err)
		}},
		"worked": {"§5 worked example", func(experiments.Options) (renderer, error) {
			r, err := experiments.WorkedExample()
			return renderOf(r, err)
		}},
		"ab-policies": {"Ablation: fvsst vs uniform/power-down/util-DVS", func(experiments.Options) (renderer, error) {
			r, err := experiments.AblationPolicies()
			return renderOf(r, err)
		}},
		"ab-ideal": {"Ablation: discrete ε-scan vs closed-form f_ideal", func(experiments.Options) (renderer, error) {
			r, err := experiments.AblationIdeal()
			return renderOf(r, err)
		}},
		"ab-idle": {"Ablation: idle detection on/off", func(o experiments.Options) (renderer, error) {
			r, err := experiments.AblationIdle(o)
			return renderOf(r, err)
		}},
		"ab-masking": {"Ablation: aggregation masking under multiprogramming", func(o experiments.Options) (renderer, error) {
			r, err := experiments.AblationMasking(o)
			return renderOf(r, err)
		}},
		"ab-actuator": {"Ablation: throttle vs ideal DVFS actuator", func(o experiments.Options) (renderer, error) {
			r, err := experiments.AblationActuator(o)
			return renderOf(r, err)
		}},
		"ab-epsilon": {"Ablation: ε performance/energy trade-off", func(o experiments.Options) (renderer, error) {
			r, err := experiments.AblationEpsilon(o)
			return renderOf(r, err)
		}},
		"cluster": {"Cluster study: 3-tier cluster under a global cap, fvsst vs uniform", func(o experiments.Options) (renderer, error) {
			r, err := experiments.ClusterStudy(o)
			return renderOf(r, err)
		}},
		"farm": {"Server farm: diurnal request load, power tracking demand", func(o experiments.Options) (renderer, error) {
			r, err := experiments.ServerFarm(o)
			return renderOf(r, err)
		}},
		"ab-exec": {"Ablation: analytic vs Monte-Carlo execution model", func(o experiments.Options) (renderer, error) {
			r, err := experiments.AblationExecModel(o)
			return renderOf(r, err)
		}},
	}
}

type renderer interface{ Render() string }

func renderOf(r renderer, err error) (renderer, error) {
	return r, err
}

// order is the presentation order for "all".
var order = []string{
	"table1", "fig1", "table2", "fig4", "fig5", "fig6", "fig7",
	"table3", "fig8", "fig9", "worked",
	"ab-policies", "ab-ideal", "ab-idle", "ab-masking", "ab-actuator", "ab-epsilon",
	"ab-exec", "cluster", "farm",
}

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale (1 = paper-length runs)")
	seed := flag.Int64("seed", 1, "simulation seed")
	quiet := flag.Bool("quiet", false, "disable jitter/contention/sensor noise")
	mc := flag.Bool("mc", false, "use Monte-Carlo execution instead of the analytic model")
	csvDir := flag.String("csv", "", "directory to write full traces as CSV (fig5, fig9)")
	flag.Parse()

	opts := experiments.Options{
		Scale:      workload.AppScale(*scale),
		Seed:       *seed,
		Quiet:      *quiet,
		MonteCarlo: *mc,
	}
	reg := registry()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	if args[0] == "list" {
		ids := make([]string, 0, len(reg))
		for id := range reg {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("  %-12s %s\n", id, reg[id].desc)
		}
		return
	}
	if args[0] == "all" {
		args = order
	}
	for i, id := range args {
		r, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try: experiments list)\n", id)
			os.Exit(1)
		}
		rep, err := r.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println(strings.Repeat("=", 78))
		}
		fmt.Print(rep.Render())
		if *csvDir != "" {
			if w, ok := rep.(experiments.CSVWriter); ok {
				if err := w.WriteCSVTo(*csvDir); err != nil {
					fmt.Fprintf(os.Stderr, "%s: write csv: %v\n", id, err)
					os.Exit(1)
				}
				fmt.Printf("(traces written to %s)\n", *csvDir)
			}
		}
	}
}
