// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [list | all | hotpath | farmbench | obsbench | servebench | desbench | netbench | optbench | soak | optgap | policy-search | report | <id>...]
//
// The experiment ids, their descriptions and the usage text all come from
// the registry in internal/experiments (run `experiments list` to see
// them); this comment deliberately does not duplicate the id list, so it
// cannot go stale.
//
// `-parallel N` runs the selected experiments on an N-worker pool. Every
// experiment derives all of its randomness from -seed alone and shares no
// state, so the rendered output is byte-identical at any worker count.
// `-run <regex>` filters the selection by id. `-bench-out <file>` writes
// per-experiment wall-clock and allocation stats as JSON. The `hotpath`
// subcommand benchmarks the scheduler's steady-state hot path instead of
// running experiments; `farmbench` does the same for the farm allocator's
// reallocation pass plus the farm-powerfail study's wall-clock; `obsbench`
// pins the tracing overhead (the no-sink path must stay at 0 allocs/op);
// `servebench` pins the request-serving quantum (steady-state serving and
// admission must also stay at 0 allocs/op); `desbench` races the
// discrete-event engine against the quantum reference on an idle-heavy
// fleet (steady-state timeline dispatch must stay at 0 allocs/op and the
// speedup must clear its floor); `optbench` pins the exact
// optimal-assignment solver's runtime against the greedy hot path.
// `optgap` measures the paper's greedy Step 2 against the exact optimal
// comparator across a scenario corpus; `policy-search` runs the
// deterministic coordinate descent over the scheduling knobs.
// `report` renders the energy & compliance ledger from a JSONL trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintf(w, "Usage: experiments [flags] [list | all | hotpath | farmbench | obsbench | servebench | desbench | netbench | optbench | soak | optgap | policy-search | report | <id>...]\n\nExperiments:\n")
	for _, s := range experiments.Registry() {
		fmt.Fprintf(w, "  %-12s %s\n", s.ID, s.Desc)
	}
	fmt.Fprintf(w, "\nFlags:\n")
	flag.PrintDefaults()
}

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale (1 = paper-length runs)")
	seed := flag.Int64("seed", 1, "simulation seed")
	quiet := flag.Bool("quiet", false, "disable jitter/contention/sensor noise")
	mc := flag.Bool("mc", false, "use Monte-Carlo execution instead of the analytic model")
	csvDir := flag.String("csv", "", "directory to write full traces as CSV (fig5, fig9)")
	parallel := flag.Int("parallel", 1, "worker-pool size for running experiments")
	runFilter := flag.String("run", "", "regexp filtering the selected experiment ids")
	benchOut := flag.String("bench-out", "", "write per-experiment wall-clock/allocation stats to this JSON file")
	flag.Usage = usage
	flag.Parse()

	opts := experiments.Options{
		Scale:      workload.AppScale(*scale),
		Seed:       *seed,
		Quiet:      *quiet,
		MonteCarlo: *mc,
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	switch args[0] {
	case "list":
		ids := experiments.IDs()
		sort.Strings(ids)
		for _, id := range ids {
			s, _ := experiments.Lookup(id)
			fmt.Printf("  %-12s %s\n", id, s.Desc)
		}
		return
	case "hotpath":
		if err := runHotpath(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "hotpath: %v\n", err)
			os.Exit(1)
		}
		return
	case "farmbench":
		if err := runFarmbench(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "farmbench: %v\n", err)
			os.Exit(1)
		}
		return
	case "obsbench":
		if err := runObsbench(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "obsbench: %v\n", err)
			os.Exit(1)
		}
		return
	case "servebench":
		if err := runServebench(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
			os.Exit(1)
		}
		return
	case "desbench":
		if err := runDesbench(args[1:], *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "desbench: %v\n", err)
			os.Exit(1)
		}
		return
	case "netbench":
		if err := runNetbench(args[1:], *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "netbench: %v\n", err)
			os.Exit(1)
		}
		return
	case "optbench":
		if err := runOptbench(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
			os.Exit(1)
		}
		return
	case "soak":
		if err := runSoak(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			os.Exit(1)
		}
		return
	case "optgap":
		if err := runOptGap(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "optgap: %v\n", err)
			os.Exit(1)
		}
		return
	case "policy-search":
		if err := runPolicySearch(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "policy-search: %v\n", err)
			os.Exit(1)
		}
		return
	case "report":
		if err := runReport(args[1:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		return
	case "all":
		args = experiments.IDs()
	}

	// Validate before running anything: an unknown id aborts the whole
	// invocation, exactly like the old sequential loop's first iteration.
	for _, id := range args {
		if _, ok := experiments.Lookup(id); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try: experiments list)\n", id)
			os.Exit(1)
		}
	}
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -run pattern: %v\n", err)
			os.Exit(1)
		}
		kept := args[:0]
		for _, id := range args {
			if re.MatchString(id) {
				kept = append(kept, id)
			}
		}
		args = kept
	}

	start := time.Now()
	results := experiments.RunAll(opts, args, *parallel)
	total := time.Since(start).Seconds()

	if *benchOut != "" {
		if err := experiments.WriteBenchJSON(*benchOut, *parallel, total, results); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
	}

	for i, res := range results {
		if res.Err != nil {
			// res.Err already carries the id prefix.
			fmt.Fprintf(os.Stderr, "%v\n", res.Err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println(strings.Repeat("=", 78))
		}
		fmt.Print(res.Rendered)
		if *csvDir != "" {
			if w, ok := res.Report.(experiments.CSVWriter); ok {
				if err := w.WriteCSVTo(*csvDir); err != nil {
					fmt.Fprintf(os.Stderr, "%s: write csv: %v\n", res.ID, err)
					os.Exit(1)
				}
				fmt.Printf("(traces written to %s)\n", *csvDir)
			}
		}
	}
}
