package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
)

// runSoak drives the invariant soak harness: N random cluster scenarios
// through the in-process mirror and the full invariant suite (each run
// twice and byte-compared for determinism), M differential scenarios
// through both the in-process and networked stacks, and K farm-layer
// scenarios through the allocator contract checks. Exits nonzero on any
// violation, divergence or error; failing cluster seeds are shrunk to a
// minimal reproducer printed with the report.
func runSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	seeds := fs.Int("seeds", 25, "cluster invariant scenarios to run")
	diff := fs.Int("diff", 5, "differential (in-process vs networked) scenarios to run")
	farm := fs.Int("farm", 10, "farm-layer scenarios to run")
	des := fs.Int("des", 5, "quantum-vs-DES engine differentials to run")
	baseSeed := fs.Int64("seed", 1, "first seed of every range")
	parallel := fs.Int("parallel", 4, "worker-pool size")
	wall := fs.Duration("wall", 0, "wall-clock budget; jobs not started in time are marked skipped (0 = unbounded)")
	sabotage := fs.String("sabotage", "", "inject a deliberate defect into cluster runs (step2-invert); the checkers must catch it")
	shrink := fs.Int("shrink", 400, "max candidate runs when shrinking a failing cluster seed (0 = off)")
	dumpDir := fs.String("dump-dir", os.TempDir(), "directory for flight-recorder snapshots of violating cluster seeds (empty = off)")
	jsonOut := fs.String("json", "", "write the full report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep := scenario.Soak(scenario.SoakConfig{
		Seeds:     *seeds,
		DiffSeeds: *diff,
		FarmSeeds: *farm,
		DESSeeds:  *des,
		BaseSeed:  *baseSeed,
		Parallel:  *parallel,
		Wall:      *wall,
		Sabotage:  *sabotage,
		ShrinkMax: *shrink,
		DumpDir:   *dumpDir,
	})

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	fmt.Printf("soak: %d cluster + %d diff + %d farm + %d des scenarios in %.1fs (parallel=%d)\n",
		*seeds, *diff, *farm, *des, rep.ElapsedSec, *parallel)
	for _, r := range rep.Results {
		if r.Skipped {
			fmt.Printf("  %-7s seed %-6d SKIPPED (wall budget)\n", r.Kind, r.Seed)
			continue
		}
		if r.Err != "" {
			fmt.Printf("  %-7s seed %-6d ERROR: %s\n", r.Kind, r.Seed, r.Err)
			continue
		}
		if len(r.Violations) == 0 && len(r.Divergences) == 0 {
			continue
		}
		fmt.Printf("  %-7s seed %-6d %d violation(s), %d divergence(s)\n",
			r.Kind, r.Seed, len(r.Violations), len(r.Divergences))
		for i, v := range r.Violations {
			if i == 3 {
				fmt.Printf("    ... %d more\n", len(r.Violations)-i)
				break
			}
			fmt.Printf("    [%s] t=%.3f %s\n", v.Checker, v.At, v.Detail)
		}
		for i, d := range r.Divergences {
			if i == 3 {
				fmt.Printf("    ... %d more\n", len(r.Divergences)-i)
				break
			}
			fmt.Printf("    divergence r=%d: %s\n", d.Round, d.Detail)
		}
		if r.FlightDump != "" {
			fmt.Printf("    flight recorder: %s\n", r.FlightDump)
		}
		if r.Shrunk != nil {
			data, _ := json.Marshal(r.Shrunk)
			fmt.Printf("    minimal reproducer (%d shrink runs): %s\n", r.ShrinkAttempts, data)
		}
	}
	if rep.Skipped > 0 {
		fmt.Printf("  %d job(s) skipped by the -wall budget\n", rep.Skipped)
	}
	if !rep.OK {
		return fmt.Errorf("%d violation(s), %d divergence(s), %d error(s)", rep.Violations, rep.Divergences, rep.Errors)
	}
	fmt.Println("soak: all invariants held")
	return nil
}
