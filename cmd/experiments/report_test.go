package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestReportGolden pins `experiments report` output — text and JSON —
// against committed goldens for a committed trace. The deterministic
// sections only: latency is wall-clock and excluded by -sections, which
// is exactly how the CI report-smoke job byte-compares two live runs.
func TestReportGolden(t *testing.T) {
	trace := filepath.Join("testdata", "trace.jsonl")
	cases := []struct {
		name   string
		args   []string
		golden string
	}{
		{"text", []string{"-sections", "energy,compliance,prediction", trace}, "report.golden"},
		{"json", []string{"-json", "-sections", "energy,compliance,prediction", trace}, "report_json.golden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := runReport(tc.args, &out); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("report differs from %s:\n--- got ---\n%s\n--- want ---\n%s", tc.golden, out.Bytes(), want)
			}
		})
	}
}

// TestReportStdinAndErrors covers the "-" stdin path and the
// fail-closed cases: an unknown section and an empty trace.
func TestReportStdinAndErrors(t *testing.T) {
	if err := runReport([]string{"-sections", "bogus", filepath.Join("testdata", "trace.jsonl")}, &bytes.Buffer{}); err == nil {
		t.Error("unknown section accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runReport([]string{empty}, &bytes.Buffer{}); err == nil {
		t.Error("empty trace accepted")
	}

	// "-" reads the trace from stdin.
	f, err := os.Open(filepath.Join("testdata", "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	oldStdin := os.Stdin
	os.Stdin = f
	defer func() { os.Stdin = oldStdin }()
	var out bytes.Buffer
	if err := runReport([]string{"-sections", "energy", "-"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("stdin report empty")
	}
}
