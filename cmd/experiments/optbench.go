package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/optimal"
	"repro/internal/power"
	"repro/internal/units"
)

// optProblem builds a deterministic n-CPU assignment problem over the
// paper's table: per-CPU loss curves fall with frequency at varied
// slopes (so the exact solver has real trade-offs to weigh) under a
// budget at 60% of the all-f_max draw — firmly in demotion territory.
func optProblem(n int) optimal.Problem {
	table := power.PaperTable1()
	nf := table.Len()
	var maxPow units.Power
	for i := 0; i < n; i++ {
		maxPow += table.PowerAtIndex(nf - 1)
	}
	return optimal.Problem{
		Table:  table,
		Budget: units.Watts(maxPow.W() * 0.6),
		Upper:  make([]int, n), // filled below
		Loss: func(cpu, fi int) float64 {
			slope := 0.04 + 0.012*float64((cpu*7)%5)
			return slope * float64(nf-1-fi) / float64(nf-1)
		},
	}
}

// runOptbench benchmarks the exact optimal-assignment solver against
// the greedy hot path and writes BENCH_opt.json (or the -bench-out
// override) in the same shape as BENCH_hotpath.json. The DP must solve
// a 16-CPU pass within its per-op budget: the comparator runs once per
// measured pass in optgap campaigns, so a runtime regression there
// multiplies across every soak corpus.
func runOptbench(outPath string) error {
	if outPath == "" {
		outPath = "BENCH_opt.json"
	}

	var results []hotpathResult
	add := func(name string, r testing.BenchmarkResult) {
		results = append(results, hotpathResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		})
	}
	bench := func(name string, p optimal.Problem, solve func(optimal.Problem) error) {
		nf := p.Table.Len()
		for i := range p.Upper {
			p.Upper[i] = nf - 1
		}
		add(name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := solve(p); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	dpSolve := func(p optimal.Problem) error {
		a, err := optimal.Solve(p)
		if err != nil {
			return err
		}
		if !a.Feasible {
			return fmt.Errorf("benchmark problem infeasible")
		}
		return nil
	}
	greedySolve := func(p optimal.Problem) error {
		if g := optimal.Greedy(p); !g.Feasible {
			return fmt.Errorf("benchmark problem infeasible")
		}
		return nil
	}
	bench("OptimalSolve/16cpu-8freq", optProblem(16), dpSolve)
	bench("OptimalSolve/64cpu-8freq", optProblem(64), dpSolve)
	bench("Greedy/16cpu-8freq", optProblem(16), greedySolve)

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-32s %12.0f ns/op %6d B/op %4d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("(written to %s)\n", outPath)

	// Runtime gate: the 16-CPU exact solve of this adversarial instance
	// (every loss curve distinct and sloped, budget deep in demotion
	// territory — a near-worst case for Pareto-frontier growth) must stay
	// under 250 ms/op; today it measures 35–50 ms. Scenario passes
	// measured by optgap campaigns are far cheaper (plateaued losses,
	// slack budgets), so this bounds the tail, not the mean.
	const dpBudgetNs = 250e6
	if results[0].NsPerOp > dpBudgetNs {
		return fmt.Errorf("%s took %.0f ns/op, budget %.0f", results[0].Name, results[0].NsPerOp, dpBudgetNs)
	}
	return nil
}
