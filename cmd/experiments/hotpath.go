package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/units"
	"repro/internal/workload"
)

// hotpathResult is one microbenchmark's row in BENCH_hotpath.json.
type hotpathResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// hotpathWorld builds the steady-state scheduling scenario the hot-path
// guarantees cover: a p630 with endless work on every CPU, a budget tight
// enough to exercise Step 2, decision logging off, sampler windows warm.
func hotpathWorld() (*machine.Machine, *fvsst.Scheduler, error) {
	m, err := machine.New(machine.P630Config())
	if err != nil {
		return nil, nil, err
	}
	endless := func(name string, alpha float64, rates memhier.AccessRates) workload.Program {
		return workload.Program{Name: name, Phases: []workload.Phase{{
			Name: "p", Alpha: alpha, Rates: rates, Instructions: 1e15,
		}}}
	}
	memRates := memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.0186}
	progs := []workload.Program{
		endless("cpu0", 1.4, memhier.AccessRates{}),
		endless("mem1", 1.1, memRates),
		endless("cpu2", 1.4, memhier.AccessRates{}),
		endless("mem3", 1.1, memRates),
	}
	for cpu, p := range progs {
		mix, err := workload.NewMix(p)
		if err != nil {
			return nil, nil, err
		}
		if err := m.SetMix(cpu, mix); err != nil {
			return nil, nil, err
		}
	}
	cfg := fvsst.DefaultConfig()
	cfg.Overhead = fvsst.Overhead{}
	s, err := fvsst.New(cfg, m, units.Watts(350))
	if err != nil {
		return nil, nil, err
	}
	s.SetDecisionLogging(false)
	for i := 0; i < 5*cfg.SchedulePeriods; i++ {
		m.Step()
		due, err := s.Collect()
		if err != nil {
			return nil, nil, err
		}
		if due {
			if _, err := s.Schedule("timer"); err != nil {
				return nil, nil, err
			}
		}
	}
	return m, s, nil
}

// runHotpath benchmarks the zero-alloc hot paths (Scheduler.Schedule and
// machine.Step) via testing.Benchmark and writes BENCH_hotpath.json (or
// the -bench-out override).
func runHotpath(outPath string) error {
	if outPath == "" {
		outPath = "BENCH_hotpath.json"
	}
	m, s, err := hotpathWorld()
	if err != nil {
		return err
	}

	var results []hotpathResult
	add := func(name string, r testing.BenchmarkResult) {
		results = append(results, hotpathResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		})
	}

	add("Scheduler.Schedule", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Schedule("timer"); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add("Machine.Step", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Step()
		}
	}))

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-20s %12.0f ns/op %6d B/op %4d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("(written to %s)\n", outPath)
	return nil
}
