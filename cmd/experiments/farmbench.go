package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/units"
)

// farmWorld builds a steady allocator scenario for the tick benchmark:
// twelve clusters with ready-made demand curves, so one op is one full
// Allocate pass (the per-cadence cost the farm layer adds on top of the
// clusters' own scheduling).
func farmWorld() (*farm.Allocator, []farm.Demand, error) {
	const n = 12
	members := make([]farm.Member, n)
	demands := make([]farm.Demand, n)
	for i := 0; i < n; i++ {
		members[i] = farm.Member{Name: fmt.Sprintf("c%d", i), Floor: units.Watts(144)}
		// A 16-step curve like the paper table: power descending from the
		// desire toward the member floor, loss climbing as frequency falls.
		var pts []farm.DemandPoint
		step := (2240.0 - 144.0) / 15
		for s := 0; s < 16; s++ {
			pts = append(pts, farm.DemandPoint{
				Power: units.Watts(2240 - float64(s)*step),
				Loss:  float64(s) * (0.02 + 0.001*float64(i)),
			})
		}
		demands[i] = farm.Demand{Curve: farm.DemandCurve{Points: pts}, Reachable: true}
	}
	a, err := farm.NewAllocator(farm.AllocatorConfig{
		Source:   farm.Static(units.Watts(12000)),
		Members:  members,
		Periods:  10,
		LeaseTTL: 0.3,
		Safety:   0.06,
	})
	if err != nil {
		return nil, nil, err
	}
	return a, demands, nil
}

// runFarmbench benchmarks the farm allocator pass and times the full
// farm-powerfail study, writing BENCH_farm.json (or the -bench-out
// override) in the same shape as BENCH_hotpath.json.
func runFarmbench(outPath string) error {
	if outPath == "" {
		outPath = "BENCH_farm.json"
	}
	a, demands, err := farmWorld()
	if err != nil {
		return err
	}

	var results []hotpathResult
	add := func(name string, r testing.BenchmarkResult) {
		results = append(results, hotpathResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		})
	}

	add("Allocator.Allocate/12-clusters", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Advancing time each op keeps every pass a real reallocation
			// (fresh leases) rather than a cache hit.
			if _, err := a.Allocate(float64(i)*0.1, "timer", demands); err != nil {
				b.Fatal(err)
			}
		}
	}))

	start := time.Now()
	if _, err := experiments.FarmPowerFail(experiments.TestOptions()); err != nil {
		return err
	}
	wall := time.Since(start)
	results = append(results, hotpathResult{
		Name:    "FarmPowerFail/test-scale-wall",
		NsPerOp: float64(wall.Nanoseconds()),
		N:       1,
	})

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-32s %12.0f ns/op %6d B/op %4d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("(written to %s)\n", outPath)
	return nil
}
