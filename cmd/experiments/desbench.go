package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/workload"
)

// runDesbench measures the discrete-event engine against the quantum
// reference on the workload it was built for: a large fleet of mostly
// idle machines receiving sparse request bursts. Each machine parks on a
// timeline event at its next arrival and fast-forwards the idle span in
// between; the quantum baseline hand-steps a sampled sub-fleet and is
// extrapolated linearly (every node runs the same sparse-burst shape, so
// per-node-second cost is flat — the extrapolation is labelled as such
// in the output). Two rows are contracts: steady-state timeline dispatch
// must allocate nothing, and the DES engine must beat the quantum
// baseline by -min-speedup on the full fleet.
func runDesbench(args []string, outPath string) error {
	fs := flag.NewFlagSet("desbench", flag.ExitOnError)
	nodes := fs.Int("nodes", 10000, "fleet size for the DES run")
	horizon := fs.Float64("horizon", 3600, "simulated seconds for the DES run")
	baseNodes := fs.Int("baseline-nodes", 200, "sampled fleet size for the quantum baseline")
	baseHorizon := fs.Float64("baseline-horizon", 60, "simulated seconds for the quantum baseline")
	parallel := fs.Int("parallel", 4, "worker shards (both engines use the same count)")
	minSpeedup := fs.Float64("min-speedup", 50, "required DES-vs-quantum wall-clock ratio")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if outPath == "" {
		outPath = "BENCH_des.json"
	}
	if *baseNodes > *nodes {
		*baseNodes = *nodes
	}

	// Cross-check first: the engines must agree byte for byte on a small
	// fleet before any wall-clock number means anything.
	if err := desCrossCheck(); err != nil {
		return err
	}

	var results []hotpathResult
	add := func(name string, r testing.BenchmarkResult) {
		results = append(results, hotpathResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		})
	}

	// Contract row 1: steady-state event dispatch allocates nothing. A
	// recurring handler that reposts as it fires is the shape every parked
	// subsystem has; after warmup the heap slot and slot-table entry are
	// reused from the free lists.
	tl := engine.NewTimeline()
	var recur engine.HandlerFunc
	recur = func(now float64, tag uint64) error {
		_, err := tl.Post(now+0.01, recur, tag)
		return err
	}
	if _, err := tl.Post(0.01, recur, 0); err != nil {
		return err
	}
	for i := 0; i < 64; i++ { // warm the free lists
		if err := tl.AdvanceTo(tl.Now() + 0.01); err != nil {
			return err
		}
	}
	add("TimelineDispatch/steady-state", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tl.AdvanceTo(tl.Now() + 0.01); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Quantum baseline on the sampled sub-fleet.
	baseFleet, err := desFleet(*baseNodes, *baseHorizon)
	if err != nil {
		return err
	}
	baseStart := time.Now()
	if err := shardRun(baseFleet, *parallel, func(ms []*machine.Machine) error {
		return quantumAdvanceShard(ms, *baseHorizon)
	}); err != nil {
		return err
	}
	baseWall := time.Since(baseStart)
	perNodeSec := baseWall.Seconds() / (float64(*baseNodes) * *baseHorizon)
	extrapolated := perNodeSec * float64(*nodes) * *horizon

	// DES run on the full fleet.
	fleet, err := desFleet(*nodes, *horizon)
	if err != nil {
		return err
	}
	desStart := time.Now()
	if err := shardRun(fleet, *parallel, func(ms []*machine.Machine) error {
		return desAdvanceShard(ms, *horizon)
	}); err != nil {
		return err
	}
	desWall := time.Since(desStart)
	speedup := extrapolated / desWall.Seconds()

	results = append(results,
		hotpathResult{Name: fmt.Sprintf("DES/%dnodes-%.0fs", *nodes, *horizon),
			NsPerOp: float64(desWall.Nanoseconds()), N: 1},
		hotpathResult{Name: fmt.Sprintf("Quantum/extrapolated-%dnodes-%.0fs", *nodes, *horizon),
			NsPerOp: extrapolated * 1e9, N: *baseNodes},
		hotpathResult{Name: "Speedup/des-vs-quantum", NsPerOp: speedup, N: 1},
	)

	if a := results[0].AllocsPerOp; a != 0 {
		return fmt.Errorf("steady-state timeline dispatch allocates %d allocs/op, want 0", a)
	}
	if speedup < *minSpeedup {
		return fmt.Errorf("DES speedup %.1fx below the %.0fx floor (des %.1fs vs quantum %.1fs extrapolated from %d nodes x %.0fs)",
			speedup, *minSpeedup, desWall.Seconds(), extrapolated, *baseNodes, *baseHorizon)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("desbench: %d nodes x %.0fs simulated in %.2fs wall (%d shards)\n",
		*nodes, *horizon, desWall.Seconds(), *parallel)
	fmt.Printf("quantum baseline: %.2fs wall for %d nodes x %.0fs, extrapolated %.1fs for the full fleet\n",
		baseWall.Seconds(), *baseNodes, *baseHorizon, extrapolated)
	fmt.Printf("speedup: %.1fx (floor %.0fx); dispatch %d allocs/op\n", speedup, *minSpeedup, results[0].AllocsPerOp)
	fmt.Printf("(written to %s)\n", outPath)
	return nil
}

// desMachine builds one fleet node: a quiet 4-CPU halting-idle machine.
// Every fourth node receives a sparse burst schedule — one short Gzip
// job (~one busy quantum) every 60 s, phase staggered per node so the
// fleet's bursts spread across the horizon the way independent request
// streams would; the rest sit fully idle, the server-farm shape the
// event engine exists for.
func desMachine(i int, horizon float64) (*machine.Machine, error) {
	cfg := machine.P630Config()
	cfg.NumCPUs = 4
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	cfg.Idle = machine.IdleHalt
	cfg.Seed = 1000 + int64(i)
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if i%4 != 0 {
		return m, nil
	}
	const interval = 60.0
	phase := 0.5 + float64(i%1951)*0.01
	var sched workload.Schedule
	k := 0
	for at := phase; at < horizon; at += interval {
		sched = append(sched, workload.Arrival{
			At: at, CPU: (i + k) % cfg.NumCPUs, Program: workload.Gzip(0.002),
		})
		k++
	}
	if err := m.Submit(sched); err != nil {
		return nil, err
	}
	return m, nil
}

func desFleet(n int, horizon float64) ([]*machine.Machine, error) {
	ms := make([]*machine.Machine, n)
	for i := range ms {
		m, err := desMachine(i, horizon)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}

// desPark is one machine parked on a shard timeline: each arrival event
// advances the machine to the arrival (fast-forwarding the idle span
// behind it) and reposts at the next one.
type desPark struct {
	m       *machine.Machine
	tl      *engine.Timeline
	horizon float64
}

// HandleEvent implements engine.Handler.
func (p *desPark) HandleEvent(now float64, _ uint64) error {
	if err := p.m.AdvanceTo(now); err != nil {
		return err
	}
	for {
		next, ok := p.m.NextArrivalAt()
		if !ok || next >= p.horizon {
			return nil
		}
		if next > p.m.Now() {
			_, err := p.tl.Post(next, p, 0)
			return err
		}
		// An arrival exactly on the machine's clock matures at the *next*
		// quantum start; consume it before parking or the repost would spin
		// at the same instant.
		if err := p.m.FastForwardQuanta(1, nil); err != nil {
			return err
		}
	}
}

// desAdvanceShard runs one shard of the fleet on its own timeline:
// machines advance only at their arrival events plus one final sweep to
// the horizon.
func desAdvanceShard(ms []*machine.Machine, horizon float64) error {
	tl := engine.NewTimeline()
	parks := make([]desPark, len(ms))
	for i, m := range ms {
		parks[i] = desPark{m: m, tl: tl, horizon: horizon}
		if at, ok := m.NextArrivalAt(); ok && at < horizon {
			if _, err := tl.Post(at, &parks[i], 0); err != nil {
				return err
			}
		}
	}
	if err := tl.AdvanceTo(horizon); err != nil {
		return err
	}
	for _, m := range ms {
		if err := m.AdvanceTo(horizon); err != nil {
			return err
		}
	}
	return nil
}

// quantumAdvanceShard is the reference engine: every quantum of every
// machine, hand-stepped.
func quantumAdvanceShard(ms []*machine.Machine, horizon float64) error {
	for _, m := range ms {
		for m.Now() < horizon {
			if err := m.StepQuantum(); err != nil {
				return err
			}
		}
	}
	return nil
}

// shardRun splits the fleet across workers; each shard's machines are
// independent, so the result is deterministic at any worker count.
func shardRun(ms []*machine.Machine, workers int, run func([]*machine.Machine) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers > len(ms) {
		workers = len(ms)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	per := (len(ms) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(ms) {
			hi = len(ms)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = run(ms[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// desMachineState renders everything the differential compares, through
// %v so single-bit float drift shows.
func desMachineState(m *machine.Machine) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v e=%v ce=%v\n", m.Now(), m.Energy(), m.CPUEnergy())
	for i := 0; i < m.NumCPUs(); i++ {
		s, err := m.ReadCounters(i)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "cpu%d %+v f=%v\n", i, s, m.EffectiveFrequency(i))
	}
	return b.String(), nil
}

// desCrossCheck pins the engines to each other on a small fleet before
// the benchmark trusts either wall clock.
func desCrossCheck() error {
	const n, horizon = 3, 45.0
	ref, err := desFleet(n, horizon)
	if err != nil {
		return err
	}
	des, err := desFleet(n, horizon)
	if err != nil {
		return err
	}
	if err := quantumAdvanceShard(ref, horizon); err != nil {
		return err
	}
	if err := desAdvanceShard(des, horizon); err != nil {
		return err
	}
	for i := range ref {
		want, err := desMachineState(ref[i])
		if err != nil {
			return err
		}
		got, err := desMachineState(des[i])
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("desbench: engines diverged on node %d:\n--- quantum ---\n%s--- des ---\n%s", i, want, got)
		}
	}
	return nil
}
