package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/netcluster"
	"repro/internal/netcluster/proto"
	"repro/internal/netcluster/wire"
	"repro/internal/units"
	"repro/internal/workload"
)

// runNetbench pins the cluster transport's hot path and its scaling
// behaviour: codec micro-benchmarks (a counter poll round trip over the
// binary wire, its JSON baseline, and the bytes each puts on the wire)
// plus a relay-tree pass-latency trendline over in-process pipe fleets.
// One row is a contract: the steady-state binary codec cycle must run at
// 0 allocs/op, the property the per-connection reusable buffers exist
// for; the run fails if it regresses.
func runNetbench(args []string, outPath string) error {
	fs := flag.NewFlagSet("netbench", flag.ExitOnError)
	fleets := fs.String("fleets", "100,300,1000", "comma-separated pipe-fleet sizes for the pass-latency trendline")
	rounds := fs.Int("rounds", 3, "scheduling rounds per fleet size")
	fanout := fs.Int("fanout", 50, "leaf agents per relay in the tree runs")
	cpus := fs.Int("cpus", 8, "CPUs per counter report in the codec benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if outPath == "" {
		outPath = "BENCH_netcluster.json"
	}

	var results []hotpathResult
	add := func(name string, r testing.BenchmarkResult) {
		results = append(results, hotpathResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		})
	}

	// Codec micro-benchmarks: one counter poll round trip (request out,
	// report back) between a coordinator-side and an agent-side conn over
	// in-memory buffers, the same message flow RunRound's poll phase
	// repeats per node per round.
	for _, binary := range []bool{true, false} {
		name := "json"
		if binary {
			name = wire.CodecName + "-delta"
		}
		cycle, wireBytes, err := codecCycle(*cpus, binary)
		if err != nil {
			return err
		}
		add("CodecPollCycle/"+name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := cycle(); err != nil {
					b.Fatal(err)
				}
			}
		}))
		// Wire footprint of the steady-state report frame, not an
		// allocation count: delta reports shrink with unchanged counters.
		results = append(results, hotpathResult{
			Name: "FrameBytes/" + name, NsPerOp: float64(wireBytes), N: 1,
		})
	}
	gate := results[0]
	if !strings.HasPrefix(gate.Name, "CodecPollCycle/"+wire.CodecName) {
		return fmt.Errorf("netbench: contract row moved: %s", gate.Name)
	}
	if gate.AllocsPerOp != 0 {
		return fmt.Errorf("netbench: steady-state binary poll cycle allocates %d allocs/op, want 0 (per-connection buffer reuse regressed?)", gate.AllocsPerOp)
	}

	// Relay-tree pass latency over pipe fleets: how the 2-level tree's
	// wall-clock round scales with agent count.
	for _, f := range strings.Split(*fleets, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("netbench: bad -fleets entry %q", f)
		}
		mean, peak, err := treePassLatency(n, *fanout, *rounds)
		if err != nil {
			return err
		}
		results = append(results,
			hotpathResult{Name: fmt.Sprintf("TreePass/mean-%dagents", n), NsPerOp: float64(mean.Nanoseconds()), N: *rounds},
			hotpathResult{Name: fmt.Sprintf("TreePass/peak-%dagents", n), NsPerOp: float64(peak.Nanoseconds()), N: *rounds},
		)
		fmt.Printf("netbench: %d agents, %d rounds: mean pass %v, peak %v\n", n, *rounds, mean.Round(time.Microsecond), peak.Round(time.Microsecond))
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("netbench: binary poll cycle %d allocs/op (gate 0)\n", gate.AllocsPerOp)
	fmt.Printf("(written to %s)\n", outPath)
	return nil
}

// memEnd is an in-memory net.Conn half for single-threaded codec
// benchmarks: reads drain in, writes land in out.
type memEnd struct {
	in, out *bytes.Buffer
}

func (e *memEnd) Read(p []byte) (int, error)       { return e.in.Read(p) }
func (e *memEnd) Write(p []byte) (int, error)      { return e.out.Write(p) }
func (e *memEnd) Close() error                     { return nil }
func (e *memEnd) LocalAddr() net.Addr              { return memAddr{} }
func (e *memEnd) RemoteAddr() net.Addr             { return memAddr{} }
func (e *memEnd) SetDeadline(time.Time) error      { return nil }
func (e *memEnd) SetReadDeadline(time.Time) error  { return nil }
func (e *memEnd) SetWriteDeadline(time.Time) error { return nil }

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// codecCycle builds a warmed coordinator↔agent conn pair and returns one
// poll round trip as a closure, plus the steady-state report frame size
// on the wire.
func codecCycle(cpus int, binary bool) (func() error, int, error) {
	coordToAgent := &bytes.Buffer{}
	agentToCoord := &bytes.Buffer{}
	coord := wire.NewConn(&memEnd{in: agentToCoord, out: coordToAgent}, wire.Options{})
	agent := wire.NewConn(&memEnd{in: coordToAgent, out: agentToCoord}, wire.Options{Mirror: true})
	coord.SetBinary(binary)

	rep := &proto.CounterReport{CPUs: make([]proto.CPUReport, cpus), CPUPowerW: 412.75}
	for i := range rep.CPUs {
		rep.CPUs[i] = proto.CPUReport{
			WindowSec:    0.08,
			Instructions: 2_400_000_000 + uint64(i),
			Cycles:       3_100_000_000 + uint64(i),
			HaltedCycles: 500_000_000,
			L2Refs:       40_000_000,
			L3Refs:       9_000_000,
			MemRefs:      2_000_000,
		}
	}
	reqMsg := &proto.Message{Kind: proto.KindCounterRequest, ID: 1,
		Trace:          &proto.TraceContext{PassID: 1},
		CounterRequest: &proto.CounterRequest{AdvanceQuanta: 10, WindowQuanta: 10}}
	repMsg := &proto.Message{Kind: proto.KindCounterReport, ID: 1, CounterReport: rep}
	var reportBytes int
	cycle := func() error {
		coordToAgent.Reset()
		agentToCoord.Reset()
		if err := coord.Send(reqMsg); err != nil {
			return err
		}
		if _, err := agent.Recv(); err != nil {
			return err
		}
		if err := agent.Send(repMsg); err != nil {
			return err
		}
		reportBytes = agentToCoord.Len()
		if _, err := coord.Recv(); err != nil {
			return err
		}
		return nil
	}
	for i := 0; i < 16; i++ { // warm buffers and delta state
		if err := cycle(); err != nil {
			return nil, 0, err
		}
	}
	return cycle, reportBytes, nil
}

// treePassLatency drives agents through a 2-level pipe-transport relay
// tree with the binary codec for the given number of rounds and returns
// the mean and peak root pass latency.
func treePassLatency(agents, fanout, rounds int) (mean, peak time.Duration, err error) {
	pd := netcluster.NewPipeDialer(nil)
	fcfg := fvsst.DefaultConfig()
	fcfg.UseIdleSignal = true
	nRelays := (agents + fanout - 1) / fanout
	budget := units.Watts(40 * float64(agents))

	prog, err := workload.App("gzip", workload.AppScale(0.25))
	if err != nil {
		return 0, 0, err
	}
	var closers []interface{ Close() error }
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	relaySpecs := make([]netcluster.NodeSpec, 0, nRelays)
	for j, lo := 0, 0; j < nRelays; j++ {
		hi := lo + fanout
		if hi > agents {
			hi = agents
		}
		specs := make([]netcluster.NodeSpec, 0, hi-lo)
		for i := lo; i < hi; i++ {
			mcfg := machine.P630Config()
			mcfg.NumCPUs = 1
			mcfg.Seed = int64(1 + i)
			m, err := machine.New(mcfg)
			if err != nil {
				return 0, 0, err
			}
			mix, err := workload.NewMix(prog)
			if err != nil {
				return 0, 0, err
			}
			if err := m.SetMix(0, mix); err != nil {
				return 0, 0, err
			}
			name := "n" + strconv.Itoa(i)
			a, err := netcluster.NewAgent(netcluster.AgentConfig{Name: name, M: m})
			if err != nil {
				return 0, 0, err
			}
			closers = append(closers, a)
			pd.Register(name, a)
			specs = append(specs, netcluster.NodeSpec{Name: name, Addr: name})
		}
		lo = hi
		name := "relay" + strconv.Itoa(j)
		sub, err := netcluster.NewCoordinator(netcluster.Config{
			Name: name, Fvsst: fcfg, Budget: budget, MissK: 3,
			RPCTimeout: 30 * time.Second, Seed: int64(j + 1),
			Dialer: pd, Codec: wire.CodecName,
		}, specs...)
		if err != nil {
			return 0, 0, err
		}
		if err := sub.Connect(); err != nil {
			sub.Close()
			return 0, 0, err
		}
		relay, err := netcluster.NewRelay(netcluster.RelayConfig{Name: name}, sub)
		if err != nil {
			sub.Close()
			return 0, 0, err
		}
		closers = append(closers, relay)
		pd.Register(name, relay)
		relaySpecs = append(relaySpecs, netcluster.NodeSpec{Name: name, Addr: name})
	}

	root, err := netcluster.NewRoot(netcluster.Config{
		Name: "root", Fvsst: fcfg, Budget: budget, MissK: 3,
		RPCTimeout: 30 * time.Second, Seed: 1,
		Dialer: pd, Codec: wire.CodecName,
	}, relaySpecs...)
	if err != nil {
		return 0, 0, err
	}
	defer root.Close()
	if err := root.Connect(); err != nil {
		return 0, 0, err
	}
	for r := 0; r < rounds; r++ {
		if err := root.RunRound(); err != nil {
			return 0, 0, err
		}
	}
	var total time.Duration
	for _, d := range root.RootDecisions() {
		total += d.PassDur
		if d.PassDur > peak {
			peak = d.PassDur
		}
		if d.Charged > d.Budget {
			return 0, 0, fmt.Errorf("netbench: charged %v exceeds budget %v in a fault-free tree round", d.Charged, d.Budget)
		}
	}
	return total / time.Duration(rounds), peak, nil
}
