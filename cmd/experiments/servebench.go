package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/serve"
)

// serveWorld builds the steady-state serving benchmark world: a 2-CPU
// machine serving two classes of Poisson/Gamma traffic at moderate
// utilisation, pre-run until queues, histogram buckets and rings are
// warm. It mirrors internal/serve's benchWorld so the CI guard and the
// package benchmarks measure the same path.
func serveWorld() (*machine.Machine, *serve.Station, *serve.Feeder, error) {
	cfg := machine.P630Config()
	cfg.NumCPUs = 2
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	cfg.Seed = 21
	m, err := machine.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	st, err := serve.NewStation(m, serve.Config{
		Classes: []serve.Class{
			{Name: "web", Phase: serve.PhaseProfile(1.3, 0.002), MeanInstr: 2e6, SizeCV: 1,
				SLO: 0.060, Timeout: 0.5, Priority: 1, QueueCap: 512},
			{Name: "batch", Phase: serve.PhaseProfile(1.1, 0.004), MeanInstr: 8e6, SizeCV: 1,
				SLO: 0.400, QueueCap: 512, AdmitRate: 200, AdmitBurst: 50},
		},
		Clients: 4,
		Seed:    38,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	feeder := &serve.Feeder{}
	for cl := 0; cl < 4; cl++ {
		spec, err := serve.ParseArrivalSpec("gamma:120,cv=1.5")
		if err != nil {
			return nil, nil, nil, err
		}
		stm, err := spec.NewStream(300 + int64(cl))
		if err != nil {
			return nil, nil, nil, err
		}
		feeder.Add(cl%2, cl, stm)
	}
	for q := 0; q < 200; q++ {
		feeder.DeliverUpTo(m.Now(), st)
		st.BeforeQuantum(m.Now())
		m.Step()
		st.AfterQuantum(m.Now())
	}
	return m, st, feeder, nil
}

// runServebench benchmarks the request-serving hot path and writes
// BENCH_serve.json (or the -bench-out override). The steady-state
// quantum row is a contract: the per-request path (admission, queueing,
// dispatch via the completion hook, latency scoring) must allocate
// nothing, or every serving simulation pays GC for the subsystem.
func runServebench(outPath string) error {
	if outPath == "" {
		outPath = "BENCH_serve.json"
	}
	m, st, feeder, err := serveWorld()
	if err != nil {
		return err
	}

	var results []hotpathResult
	add := func(name string, r testing.BenchmarkResult) {
		results = append(results, hotpathResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		})
	}

	add("ServeQuantum/steady-state", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			feeder.DeliverUpTo(m.Now(), st)
			st.BeforeQuantum(m.Now())
			m.Step()
			st.AfterQuantum(m.Now())
		}
	}))
	add("Offer", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		now := m.Now()
		for i := 0; i < b.N; i++ {
			st.Offer(now, 0, 0)
			if st.QueueLen(0) >= 256 {
				b.StopTimer()
				for st.QueueLen(0) > 0 {
					st.BeforeQuantum(m.Now())
					m.Step()
					st.AfterQuantum(m.Now())
				}
				now = m.Now()
				b.StartTimer()
			}
		}
	}))
	// Summarize is the cold reporting path — allowed to allocate, but its
	// cost is worth watching because the soak harness calls it per seed.
	add("Scoreboard.Summarize", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.Scoreboard().Summarize(m.Now())
		}
	}))

	if st.Scoreboard().Summarize(m.Now()).Classes[0].Completed == 0 {
		return fmt.Errorf("benchmark world served nothing — hot path not exercised")
	}
	if a := results[0].AllocsPerOp; a != 0 {
		return fmt.Errorf("steady-state serve quantum allocates %d allocs/op, want 0", a)
	}
	if a := results[1].AllocsPerOp; a != 0 {
		return fmt.Errorf("Offer allocates %d allocs/op, want 0", a)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-26s %12.0f ns/op %6d B/op %4d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("(written to %s)\n", outPath)
	return nil
}
