package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/obs"
)

// runObsbench benchmarks the tracing overhead and writes BENCH_obs.json
// (or the -bench-out override). The rows pin the three costs the
// observability tier is allowed to have:
//
//   - Schedule/no-sink: the scheduler hot path with tracing off — must
//     stay at 0 allocs/op (the same guarantee TestScheduleZeroAlloc
//     enforces), because a disabled sink is the production default;
//   - Schedule/flight-recorder: the same pass with a flight recorder
//     attached, the realistic always-on cost;
//   - FlightRecorder.Emit / Ledger.Emit: the per-event sink costs in
//     isolation.
func runObsbench(outPath string) error {
	if outPath == "" {
		outPath = "BENCH_obs.json"
	}
	_, noSink, err := hotpathWorld()
	if err != nil {
		return err
	}
	_, traced, err := hotpathWorld()
	if err != nil {
		return err
	}
	rec := obs.NewFlightRecorder(0, 0)
	traced.SetSink(rec)

	var results []hotpathResult
	add := func(name string, r testing.BenchmarkResult) {
		results = append(results, hotpathResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		})
	}

	add("Schedule/no-sink", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := noSink.Schedule("timer"); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add("Schedule/flight-recorder", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := traced.Schedule("timer"); err != nil {
				b.Fatal(err)
			}
		}
	}))

	quantum := obs.Event{Type: obs.EventQuantum, At: 1, PassID: 1, Node: "n0", CPUPowerW: 120}
	sched := obs.Event{Type: obs.EventSchedule, At: 1, PassID: 1, Trigger: "timer", BudgetW: 200, ChargedW: 180}
	emitRec := obs.NewFlightRecorder(0, 0)
	emitRec.Emit(quantum) // pre-create the node's series ring
	add("FlightRecorder.Emit", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			emitRec.Emit(quantum)
			emitRec.Emit(sched)
		}
	}))
	ledger := obs.NewLedger()
	ledger.Emit(quantum)
	add("Ledger.Emit", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ledger.Emit(quantum)
			ledger.Emit(sched)
		}
	}))

	// The no-sink row is a contract, not just a number: regressing it
	// means every production run without tracing pays for the feature.
	if a := results[0].AllocsPerOp; a != 0 {
		return fmt.Errorf("no-sink Schedule allocates %d allocs/op, want 0", a)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-26s %12.0f ns/op %6d B/op %4d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("(written to %s)\n", outPath)
	return nil
}
