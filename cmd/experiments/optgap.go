package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

// runOptGap measures the paper's greedy Step 2 against the exact
// optimal comparator across a scenario corpus and renders the gap
// table. Exits nonzero on invariant violations, run errors, or a worst
// per-pass gap above -max-gap.
func runOptGap(args []string) error {
	fs := flag.NewFlagSet("optgap", flag.ExitOnError)
	seeds := fs.Int("seeds", 300, "scenario seeds to measure")
	baseSeed := fs.Int64("seed", 1, "first seed of the range")
	parallel := fs.Int("parallel", 4, "worker-pool size")
	maxGap := fs.Float64("max-gap", 0, "fail if any per-pass greedy-vs-optimal gap exceeds this (0 = no gate)")
	jsonOut := fs.String("json", "", "write the full report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep := experiments.OptGap(experiments.OptGapConfig{
		Seeds:    *seeds,
		BaseSeed: *baseSeed,
		Parallel: *parallel,
	})

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	rep.WriteText(os.Stdout)

	if rep.Errors > 0 || rep.Violations > 0 {
		return fmt.Errorf("%d error(s), %d violation(s)", rep.Errors, rep.Violations)
	}
	if *maxGap > 0 && rep.Total.WorstGap > *maxGap {
		return fmt.Errorf("worst per-pass gap %.9g exceeds -max-gap %g", rep.Total.WorstGap, *maxGap)
	}
	return nil
}
