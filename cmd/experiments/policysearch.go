package main

import (
	"encoding/json"
	"flag"
	"os"

	"repro/internal/experiments"
)

// runPolicySearch runs the deterministic coordinate descent over the
// scheduling knobs (ε, debounce, allocator) and prints the baseline
// versus the best setting found.
func runPolicySearch(args []string) error {
	fs := flag.NewFlagSet("policy-search", flag.ExitOnError)
	seeds := fs.Int("seeds", 5, "scenario seeds in the evaluation corpus")
	baseSeed := fs.Int64("seed", 1, "first seed of the corpus")
	sweeps := fs.Int("sweeps", 3, "maximum coordinate-descent sweeps")
	wLoss := fs.Float64("w-loss", 1, "fitness weight on summed predicted loss")
	wEnergy := fs.Float64("w-energy", 0.5, "fitness weight per kilojoule")
	wSLO := fs.Float64("w-slo", 2, "fitness weight on the SLO miss fraction")
	jsonOut := fs.String("json", "", "write the full report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := experiments.PolicySearch(experiments.PolicySearchConfig{
		Seeds:     *seeds,
		BaseSeed:  *baseSeed,
		MaxSweeps: *sweeps,
		Weights:   experiments.FitnessWeights{Loss: *wLoss, EnergyKJ: *wEnergy, SLOMiss: *wSLO},
	})
	if err != nil {
		return err
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	rep.WriteText(os.Stdout)
	return nil
}
