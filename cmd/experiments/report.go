package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// runReport renders the energy & compliance ledger from a JSONL trace:
// per-node and cluster Joule totals, budget compliance (overshoot
// seconds/Joules/peak), predicted-vs-actual IPC loss, and pass-latency
// percentiles. The energy, compliance and prediction sections integrate
// over simulated time only, so two runs of the same seed render
// byte-identical reports; the latency section is wall-clock and is
// excluded by `-sections energy,compliance,prediction` when comparing.
func runReport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	sectionsSpec := fs.String("sections", "all", "comma-separated report sections (energy, compliance, prediction, latency; \"all\")")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: experiments report [flags] <trace.jsonl | ->\n\nRenders the energy & compliance ledger from a JSONL trace (fvsst-sim\nor fvsst-cluster -trace output). \"-\" reads the trace from stdin.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one trace path (or - for stdin)")
	}
	sections, err := obs.ParseSections(*sectionsSpec)
	if err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	ledger := obs.NewLedger()
	n, err := obs.ReplayJSONL(in, ledger)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("trace is empty")
	}

	sum := ledger.Summary()
	if *jsonOut {
		data, err := json.MarshalIndent(sum.Filter(sections), "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", data)
		return err
	}
	return sum.WriteText(out, sections)
}
