package main

import (
	"testing"

	"repro/internal/experiments"
)

// TestOrderMatchesRegistry ensures every registered experiment is in the
// "all" presentation order exactly once and vice versa.
func TestOrderMatchesRegistry(t *testing.T) {
	reg := registry()
	seen := map[string]bool{}
	for _, id := range order {
		if _, ok := reg[id]; !ok {
			t.Errorf("order entry %q not in registry", id)
		}
		if seen[id] {
			t.Errorf("order entry %q duplicated", id)
		}
		seen[id] = true
	}
	for id := range reg {
		if !seen[id] {
			t.Errorf("registry entry %q missing from order", id)
		}
	}
}

// TestRegistryRunnersProduceOutput spot-checks the cheap analytic entries
// end to end through the registry plumbing.
func TestRegistryRunnersProduceOutput(t *testing.T) {
	reg := registry()
	o := experiments.TestOptions()
	for _, id := range []string{"table1", "worked", "ab-policies", "ab-ideal"} {
		rep, err := reg[id].run(o)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(rep.Render()) < 40 {
			t.Errorf("%s: render too short", id)
		}
	}
}
