package main

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestRegistryWellFormed ensures every registered experiment has a unique
// id, a description, and a runner — the invariants the generated usage and
// `list` output rely on.
func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range experiments.Registry() {
		if s.ID == "" || s.Desc == "" || s.Run == nil {
			t.Errorf("registry entry %+v incomplete", s.ID)
		}
		if seen[s.ID] {
			t.Errorf("registry id %q duplicated", s.ID)
		}
		seen[s.ID] = true
		if got, ok := experiments.Lookup(s.ID); !ok || got.ID != s.ID {
			t.Errorf("Lookup(%q) failed", s.ID)
		}
	}
	if len(experiments.IDs()) != len(seen) {
		t.Errorf("IDs() length %d != registry size %d", len(experiments.IDs()), len(seen))
	}
}

// TestRegistryRunnersProduceOutput spot-checks the cheap analytic entries
// end to end through the registry plumbing.
func TestRegistryRunnersProduceOutput(t *testing.T) {
	o := experiments.TestOptions()
	for _, id := range []string{"table1", "worked", "ab-policies", "ab-ideal"} {
		spec, ok := experiments.Lookup(id)
		if !ok {
			t.Errorf("%s: not registered", id)
			continue
		}
		rep, err := spec.Run(o)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(rep.Render()) < 40 {
			t.Errorf("%s: render too short", id)
		}
	}
}

// TestUsageListsEveryExperiment pins the anti-drift property this command
// was refactored for: the usage text is generated from the registry, so
// every id and description appears in it.
func TestUsageListsEveryExperiment(t *testing.T) {
	var b strings.Builder
	prev := flag.CommandLine.Output()
	flag.CommandLine.SetOutput(&b)
	defer flag.CommandLine.SetOutput(prev)
	usage()
	text := b.String()
	for _, s := range experiments.Registry() {
		if !strings.Contains(text, s.ID) {
			t.Errorf("usage text missing id %q", s.ID)
		}
		if !strings.Contains(text, s.Desc) {
			t.Errorf("usage text missing description for %q", s.ID)
		}
	}
}
