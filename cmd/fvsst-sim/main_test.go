package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestParseJobKnownApps(t *testing.T) {
	for _, name := range []string{"gzip", "gap", "mcf", "health"} {
		p, err := parseJob(name, 0.1)
		if err != nil {
			t.Errorf("parseJob(%q): %v", name, err)
			continue
		}
		if p.Name != name {
			t.Errorf("parseJob(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := parseJob("doom", 1); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestParseJobSynthetic(t *testing.T) {
	p, err := parseJob("synth:25", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("synthetic job invalid: %v", err)
	}
	if _, err := parseJob("synth:abc", 1); err == nil {
		t.Error("bad intensity accepted")
	}
	if _, err := parseJob("synth:150", 1); err == nil {
		t.Error("out-of-range intensity accepted")
	}
}

func TestParseJobFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prof.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.SaveProgram(f, workload.Mcf(0.01)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p, err := parseJob("file:"+path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mcf" {
		t.Errorf("loaded name = %q", p.Name)
	}
	if _, err := parseJob("file:/does/not/exist.json", 1); err == nil {
		t.Error("missing file accepted")
	}
}
