// Command fvsst-sim runs the frequency/voltage scheduler against a
// configurable simulated SMP and prints the decision log — the closest
// thing to running the paper's daemon on real hardware.
//
// Usage examples:
//
//	fvsst-sim -jobs mcf,gzip,idle,idle -duration 5
//	fvsst-sim -jobs gzip,gap,mcf,health -budget 294 -fail-at 1.5
//	fvsst-sim -jobs synth:20,idle,idle,idle -idle-signal -epsilon 0.08
//	fvsst-sim -jobs gzip,gap,mcf,health -budget 294 -trace out.jsonl -metrics out.prom
//
// Jobs are assigned to CPUs in order: gzip, gap, mcf, health, idle,
// synth:<cpu-intensity-percent>, or file:<profile.json> (a workload
// profile saved with workload.SaveProgram).
//
// Observability (see docs/observability.md): -trace streams one JSONL
// event per scheduling decision, -metrics writes a Prometheus text-format
// snapshot at exit, and -metrics-addr serves a live /metrics endpoint
// while the simulation runs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

func parseJob(spec string, scale float64) (workload.Program, error) {
	if path, ok := strings.CutPrefix(spec, "file:"); ok {
		f, err := os.Open(path)
		if err != nil {
			return workload.Program{}, err
		}
		defer f.Close()
		return workload.LoadProgram(f)
	}
	if rest, ok := strings.CutPrefix(spec, "synth:"); ok {
		intensity, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return workload.Program{}, fmt.Errorf("bad synth intensity %q: %w", rest, err)
		}
		h := memhier.P630()
		probe, err := workload.SyntheticIntensityPhase("p", intensity, 1000, h)
		if err != nil {
			return workload.Program{}, err
		}
		instr := workload.InstructionsForDuration(probe, h, 1e9, 30*scale)
		phase, err := workload.SyntheticIntensityPhase("main", intensity, instr, h)
		if err != nil {
			return workload.Program{}, err
		}
		return workload.Program{Name: spec, Phases: []workload.Phase{phase}}, nil
	}
	return workload.App(spec, workload.AppScale(scale))
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run is main's body with error returns instead of log.Fatal, so the
// deferred trace flush and listener teardown execute on every exit path.
func run() error {
	jobs := flag.String("jobs", "mcf,idle,idle,idle", "comma-separated per-CPU jobs")
	budgetW := flag.Float64("budget", 560, "initial CPU power budget (watts)")
	failAt := flag.Float64("fail-at", 0, "simulated time of a power-supply failure dropping the budget to 294W (0 = never)")
	duration := flag.Float64("duration", 5, "simulated seconds to run")
	epsilon := flag.Float64("epsilon", 0.05, "acceptable performance loss ε")
	idleSignal := flag.Bool("idle-signal", false, "enable the firmware idle indicator")
	ideal := flag.Bool("ideal", false, "use the closed-form f_ideal instead of the ε-scan")
	scale := flag.Float64("scale", 0.5, "workload scale")
	seed := flag.Int64("seed", 1, "simulation seed")
	every := flag.Int("log-every", 10, "print every n-th timer decision")
	tracePath := flag.String("trace", "", "write one JSONL trace event per scheduling decision to this file")
	metricsPath := flag.String("metrics", "", "write Prometheus text-format metrics to this file at exit")
	metricsAddr := flag.String("metrics-addr", "", "serve a live Prometheus /metrics endpoint on this address (e.g. :9090)")
	flag.Parse()

	mcfg := machine.P630Config()
	mcfg.Seed = *seed
	m, err := machine.New(mcfg)
	if err != nil {
		return err
	}
	specs := strings.Split(*jobs, ",")
	if len(specs) > mcfg.NumCPUs {
		return fmt.Errorf("%d jobs for %d CPUs", len(specs), mcfg.NumCPUs)
	}
	for cpu, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "idle" || spec == "" {
			continue
		}
		prog, err := parseJob(spec, *scale)
		if err != nil {
			return err
		}
		mix, err := workload.NewMix(prog)
		if err != nil {
			return err
		}
		if err := m.SetMix(cpu, mix); err != nil {
			return err
		}
	}

	cfg := fvsst.DefaultConfig()
	cfg.Epsilon = *epsilon
	cfg.UseIdleSignal = *idleSignal
	cfg.UseIdealFrequency = *ideal
	sched, err := fvsst.New(cfg, m, units.Watts(*budgetW))
	if err != nil {
		return err
	}
	drv := fvsst.NewDriver(m, sched)
	if *failAt > 0 {
		drv.Budgets, err = power.NewBudgetSchedule(units.Watts(*budgetW),
			power.BudgetEvent{At: *failAt, Budget: units.Watts(294), Label: "supply failure"})
		if err != nil {
			return err
		}
	}

	// Observability wiring: the decision trace goes to the JSONL file, the
	// metrics aggregate everything including per-quantum power gauges.
	var sinks []obs.Sink
	var trace *obs.JSONLWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		trace = obs.NewJSONLWriter(f)
		// Flush on every exit path (defers run before f.Close); the
		// explicit Close below reports the sticky error on the happy path.
		defer trace.Close()
		sinks = append(sinks, trace)
	}
	var metrics *obs.Metrics
	if *metricsPath != "" || *metricsAddr != "" {
		metrics = obs.NewMetrics()
		sinks = append(sinks, metrics)
	}
	if len(sinks) > 0 {
		// Decisions and per-quantum power samples both fan out to every
		// sink: the JSONL trace then carries everything `experiments
		// report` needs to integrate energy, not just the decision log.
		all := obs.Tee(sinks...)
		sched.SetSink(all)
		drv.Sink = all
	}
	if *metricsAddr != "" {
		// Bind synchronously so an unusable address fails the run up
		// front instead of racing against a short simulation.
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer ln.Close()
		// Print the bound address, not the flag: with ":0" the OS picks
		// the port, and scripts need to learn which one.
		fmt.Printf("metrics endpoint listening on %s\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, metrics.Registry.Handler()); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
	}

	printed := 0
	timerSeen := 0
	lastLogged := -1
	for m.Now() < *duration && !m.AllJobsDone() {
		if err := drv.Step(); err != nil {
			return err
		}
		decs := sched.Decisions()
		if len(decs)-1 == lastLogged {
			continue
		}
		lastLogged = len(decs) - 1
		d := decs[lastLogged]
		if d.Trigger == "timer" {
			timerSeen++
			if timerSeen%*every != 0 {
				continue
			}
		}
		fmt.Println(d)
		printed++
	}

	fmt.Printf("\nfinished at t=%.2fs; system power %v; CPU energy %v\n",
		m.Now(), m.SystemPower(), m.CPUEnergy())
	for _, c := range m.Completions() {
		fmt.Printf("  cpu%d %-10s done at %.2fs\n", c.CPU, c.Program, c.At)
	}
	if sum, err := fvsst.Summarize(sched.Decisions()); err == nil {
		fmt.Println()
		fmt.Print(sum.Render())
	}

	if trace != nil {
		if err := trace.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("\ndecision trace written to %s\n", *tracePath)
	}
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		if err := metrics.Registry.WritePrometheus(f); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s\n", *metricsPath)
	}
	return nil
}
