// Command fvsst-sim runs the frequency/voltage scheduler against a
// configurable simulated SMP and prints the decision log — the closest
// thing to running the paper's daemon on real hardware.
//
// Usage examples:
//
//	fvsst-sim -jobs mcf,gzip,idle,idle -duration 5
//	fvsst-sim -jobs gzip,gap,mcf,health -budget 294 -fail-at 1.5
//	fvsst-sim -jobs synth:20,idle,idle,idle -idle-signal -epsilon 0.08
//
// Jobs are assigned to CPUs in order: gzip, gap, mcf, health, idle,
// synth:<cpu-intensity-percent>, or file:<profile.json> (a workload
// profile saved with workload.SaveProgram).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

func parseJob(spec string, scale float64) (workload.Program, error) {
	if path, ok := strings.CutPrefix(spec, "file:"); ok {
		f, err := os.Open(path)
		if err != nil {
			return workload.Program{}, err
		}
		defer f.Close()
		return workload.LoadProgram(f)
	}
	if rest, ok := strings.CutPrefix(spec, "synth:"); ok {
		intensity, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return workload.Program{}, fmt.Errorf("bad synth intensity %q: %w", rest, err)
		}
		h := memhier.P630()
		probe, err := workload.SyntheticIntensityPhase("p", intensity, 1000, h)
		if err != nil {
			return workload.Program{}, err
		}
		instr := workload.InstructionsForDuration(probe, h, 1e9, 30*scale)
		phase, err := workload.SyntheticIntensityPhase("main", intensity, instr, h)
		if err != nil {
			return workload.Program{}, err
		}
		return workload.Program{Name: spec, Phases: []workload.Phase{phase}}, nil
	}
	return workload.App(spec, workload.AppScale(scale))
}

func main() {
	jobs := flag.String("jobs", "mcf,idle,idle,idle", "comma-separated per-CPU jobs")
	budgetW := flag.Float64("budget", 560, "initial CPU power budget (watts)")
	failAt := flag.Float64("fail-at", 0, "simulated time of a power-supply failure dropping the budget to 294W (0 = never)")
	duration := flag.Float64("duration", 5, "simulated seconds to run")
	epsilon := flag.Float64("epsilon", 0.05, "acceptable performance loss ε")
	idleSignal := flag.Bool("idle-signal", false, "enable the firmware idle indicator")
	ideal := flag.Bool("ideal", false, "use the closed-form f_ideal instead of the ε-scan")
	scale := flag.Float64("scale", 0.5, "workload scale")
	seed := flag.Int64("seed", 1, "simulation seed")
	every := flag.Int("log-every", 10, "print every n-th timer decision")
	flag.Parse()

	mcfg := machine.P630Config()
	mcfg.Seed = *seed
	m, err := machine.New(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := strings.Split(*jobs, ",")
	if len(specs) > mcfg.NumCPUs {
		log.Fatalf("%d jobs for %d CPUs", len(specs), mcfg.NumCPUs)
	}
	for cpu, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "idle" || spec == "" {
			continue
		}
		prog, err := parseJob(spec, *scale)
		if err != nil {
			log.Fatal(err)
		}
		mix, err := workload.NewMix(prog)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			log.Fatal(err)
		}
	}

	cfg := fvsst.DefaultConfig()
	cfg.Epsilon = *epsilon
	cfg.UseIdleSignal = *idleSignal
	cfg.UseIdealFrequency = *ideal
	sched, err := fvsst.New(cfg, m, units.Watts(*budgetW))
	if err != nil {
		log.Fatal(err)
	}
	drv := fvsst.NewDriver(m, sched)
	if *failAt > 0 {
		drv.Budgets, err = power.NewBudgetSchedule(units.Watts(*budgetW),
			power.BudgetEvent{At: *failAt, Budget: units.Watts(294), Label: "supply failure"})
		if err != nil {
			log.Fatal(err)
		}
	}

	printed := 0
	timerSeen := 0
	lastLogged := -1
	for m.Now() < *duration && !m.AllJobsDone() {
		if err := drv.Step(); err != nil {
			log.Fatal(err)
		}
		decs := sched.Decisions()
		if len(decs)-1 == lastLogged {
			continue
		}
		lastLogged = len(decs) - 1
		d := decs[lastLogged]
		if d.Trigger == "timer" {
			timerSeen++
			if timerSeen%*every != 0 {
				continue
			}
		}
		fmt.Printf("t=%6.2fs  %-13s budget %-5v table %-5v met=%-5v ", d.At, d.Trigger, d.Budget, d.TablePower, d.BudgetMet)
		for _, a := range d.Assignments {
			mark := " "
			if a.Idle {
				mark = "*"
			}
			fmt.Printf(" cpu%d%s%v", a.CPU, mark, a.Actual)
		}
		fmt.Println()
		printed++
	}

	fmt.Printf("\nfinished at t=%.2fs; system power %v; CPU energy %v\n",
		m.Now(), m.SystemPower(), m.CPUEnergy())
	for _, c := range m.Completions() {
		fmt.Printf("  cpu%d %-10s done at %.2fs\n", c.CPU, c.Program, c.At)
	}
	if sum, err := fvsst.Summarize(sched.Decisions()); err == nil {
		fmt.Println()
		fmt.Print(sum.Render())
	}
}
