package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestRunSmoke drives the farm study at test scale through the same path
// main uses and checks the safety gates pass.
func TestRunSmoke(t *testing.T) {
	var out strings.Builder
	code, err := run(experiments.TestOptions(), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out.String(), "hierarchical") {
		t.Errorf("output missing the hierarchical row:\n%s", out.String())
	}
}
