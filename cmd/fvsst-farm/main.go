// Command fvsst-farm runs the farm power-fail study: three clusters of
// four nodes each run under a hierarchical budget allocator while the
// grid feed fails onto a UPS whose runway governor shrinks the global
// budget as the battery drains. The same scenario is run three times —
// hierarchical least-loss allocation, equal-split leases, and a uniform
// all-processors-one-frequency baseline — and the rendered comparison is
// printed. See docs/farm.md for the allocator design.
//
// Usage examples:
//
//	fvsst-farm
//	fvsst-farm -seed 7 -quiet
//
// The run exits non-zero if the hierarchical policy ever overshoots the
// shrinking budget or fails to hold the configured UPS runway — the two
// properties the farm layer exists to guarantee.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func run(o experiments.Options, w io.Writer) (int, error) {
	r, err := experiments.FarmPowerFail(o)
	if err != nil {
		return 1, err
	}
	fmt.Fprint(w, r.Render())
	h := r.Hierarchical
	if h.OvershootSec > 0 {
		return 1, fmt.Errorf("hierarchical policy overshot the budget for %.2fs", h.OvershootSec)
	}
	if !h.RunwayMet {
		return 1, fmt.Errorf("hierarchical policy missed the UPS runway: min %.2fs of %.0fs", h.MinRunwaySec, r.RunwaySec)
	}
	return 0, nil
}

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale (the farm's programs are endless; kept for option parity)")
	seed := flag.Int64("seed", 1, "simulation seed (machines derive per-node seeds from it)")
	quiet := flag.Bool("quiet", false, "disable jitter/contention/sensor noise")
	mc := flag.Bool("mc", false, "use Monte-Carlo execution instead of the analytic model")
	flag.Parse()

	code, err := run(experiments.Options{
		Scale:      workload.AppScale(*scale),
		Seed:       *seed,
		Quiet:      *quiet,
		MonteCarlo: *mc,
	}, os.Stdout)
	if err != nil {
		log.Print(err)
	}
	os.Exit(code)
}
