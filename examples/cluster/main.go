// Cluster demonstrates frequency/voltage scheduling across a three-tier
// server cluster (§4.2, §5): a web node, a CPU-bound app node and a
// memory-bound db node, coordinated under one *global* power budget that
// shrinks mid-run (a site-level capping request). The coordinator exploits
// workload diversity: the db tier, saturated by memory latency, absorbs
// most of the reduction at almost no performance cost, while the app tier
// keeps its frequency.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/units"
)

func main() {
	nodes, err := cluster.Tiered(machine.P630Config(), 0.3)
	if err != nil {
		log.Fatal(err)
	}

	cfg := fvsst.DefaultConfig()
	cfg.UseIdleSignal = true // web tier has idle capacity

	coord, err := cluster.New(cfg, units.Watts(1680), nodes...) // 3×560W unconstrained
	if err != nil {
		log.Fatal(err)
	}
	coord.Budgets, err = power.NewBudgetSchedule(units.Watts(1680),
		power.BudgetEvent{At: 1.0, Budget: units.Watts(900), Label: "site capping request"},
	)
	if err != nil {
		log.Fatal(err)
	}

	report := func(when string) {
		fmt.Printf("%s: t=%.2fs, cluster CPU power %v (budget %v)\n",
			when, coord.Now(), coord.TotalCPUPower(), coord.Budget())
		decs := coord.Decisions()
		if len(decs) == 0 {
			return
		}
		last := decs[len(decs)-1]
		perNode := map[int][]string{}
		for _, a := range last.Assignments {
			perNode[a.Proc.Node] = append(perNode[a.Proc.Node],
				fmt.Sprintf("%v", a.Actual))
		}
		for i, n := range coord.Nodes() {
			fmt.Printf("  %-4s %v\n", n.Name, perNode[i])
		}
	}

	if err := coord.Run(1.0); err != nil {
		log.Fatal(err)
	}
	report("before cap")
	if err := coord.Run(2.5); err != nil {
		log.Fatal(err)
	}
	report("after cap")

	fmt.Println("\nthe db tier (memory-bound) absorbed the cap; the app tier kept its clock.")
}
