// Quickstart: build the paper's 4-way p630, put a memory-bound job on one
// processor, run the fvsst scheduler for two simulated seconds and print
// what it decided. Demonstrates the core loop in ~40 lines: machine →
// workload → scheduler → driver → decisions.
package main

import (
	"fmt"
	"log"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	// The experimental platform of §7.1: 4×1 GHz Power4+, Table 1
	// operating points, fetch throttling, hot idle.
	m, err := machine.New(machine.P630Config())
	if err != nil {
		log.Fatal(err)
	}

	// mcf (SPEC CPU2000) on CPU 3; CPUs 0–2 idle hot, as in §8.
	mix, err := workload.NewMix(workload.Mcf(0.5))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.SetMix(3, mix); err != nil {
		log.Fatal(err)
	}

	// The prototype scheduler: ε = 5%, t = 10 ms, T = 100 ms, full 560 W
	// processor budget.
	sched, err := fvsst.New(fvsst.DefaultConfig(), m, units.Watts(560))
	if err != nil {
		log.Fatal(err)
	}
	drv := fvsst.NewDriver(m, sched)
	if err := drv.Run(2.0); err != nil {
		log.Fatal(err)
	}

	d, ok := sched.LastDecision()
	if !ok {
		log.Fatal("no scheduling decision made")
	}
	fmt.Printf("after %.1fs simulated, budget %v (met: %v)\n", d.At, d.Budget, d.BudgetMet)
	for _, a := range d.Assignments {
		fmt.Printf("  cpu%d: desired %-7v actual %-7v at %v (predicted loss %.1f%%)\n",
			a.CPU, a.Desired, a.Actual, a.Voltage, a.PredictedLoss*100)
	}
	fmt.Printf("system power: %v (vs 746W unmanaged)\n", m.SystemPower())
	fmt.Println()
	fmt.Println("mcf saturates around 650MHz: the scheduler found that frequency from")
	fmt.Println("the performance counters alone, with no knowledge of the program.")
}
