// Powerfail replays the paper's motivating example (§2) end to end, twice:
//
//	A 746 W system is fed by two 480 W supplies. At T0 one supply fails.
//	If the system is not under 480 W within ΔT, the second supply
//	cascade-fails and the machine goes dark.
//
// Run 1 keeps the scheduler ignorant of the failure → cascade.
// Run 2 delivers the new budget to fvsst → the processors shed ~270 W
// within one scheduling period and the machine survives, still running
// every workload.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

const (
	failAt = 0.5 // supply failure time T0, seconds
	deltaT = 0.5 // supply overload tolerance ΔT, seconds
)

func buildMachine() (*machine.Machine, error) {
	m, err := machine.New(machine.P630Config())
	if err != nil {
		return nil, err
	}
	// A diverse load: two CPU-bound, two memory-bound jobs.
	jobs := []workload.Program{
		workload.Gzip(0.5), workload.Gap(0.5), workload.Mcf(0.5), workload.Health(0.5),
	}
	for cpu, job := range jobs {
		mix, err := workload.NewMix(job)
		if err != nil {
			return nil, err
		}
		if err := m.SetMix(cpu, mix); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func run(informScheduler bool) error {
	m, err := buildMachine()
	if err != nil {
		return err
	}
	sched, err := fvsst.New(fvsst.DefaultConfig(), m, units.Watts(560))
	if err != nil {
		return err
	}
	drv := fvsst.NewDriver(m, sched)
	plant := power.MotivatingPlant(deltaT)
	drv.Plant = plant

	if informScheduler {
		sys := power.MotivatingSystem()
		cpuBudget, ok := sys.CPUBudgetFor(units.Watts(480))
		if !ok {
			return fmt.Errorf("base load alone exceeds surviving capacity")
		}
		drv.Budgets, err = power.NewBudgetSchedule(units.Watts(560),
			power.BudgetEvent{At: failAt, Budget: cpuBudget, Label: "PS0 failed"})
		if err != nil {
			return err
		}
	}

	if err := drv.Run(failAt); err != nil {
		return err
	}
	fmt.Printf("  t=%.2fs  PS0 fails; surviving capacity 480W, load %v, ΔT=%.1fs\n",
		m.Now(), m.SystemPower(), deltaT)
	if err := plant.FailSupply("PS0"); err != nil {
		return err
	}

	simErr := drv.Run(failAt + 3)
	switch {
	case errors.Is(simErr, fvsst.ErrCascade):
		fmt.Printf("  t=%.2fs  CASCADE: second supply failed, machine down\n", m.Now())
		return nil
	case simErr != nil:
		return simErr
	}
	fmt.Printf("  t=%.2fs  stable at %v (capacity 480W) — cascade averted\n",
		m.Now(), m.SystemPower())
	if d, ok := sched.LastDecision(); ok {
		for _, a := range d.Assignments {
			fmt.Printf("    cpu%d -> %v (predicted loss %.1f%%)\n", a.CPU, a.Actual, a.PredictedLoss*100)
		}
	}
	return nil
}

func main() {
	fmt.Println("run 1: scheduler not informed of the failure")
	if err := run(false); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrun 2: budget drop delivered to fvsst at T0")
	if err := run(true); err != nil {
		log.Fatal(err)
	}
}
