// Phases shows fvsst tracking workload phase behaviour (Figure 5): a
// synthetic benchmark alternating CPU- and memory-intensive phases, the
// scheduler's frequency following the measured IPC, and system power
// following the frequency — rendered as ASCII charts.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	opts := experiments.Options{Scale: workload.AppScale(0.5), Seed: 7}
	rep, err := experiments.Figure5(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
	fmt.Printf("\nphase transitions tracked: %d\n", rep.Transitions)

	// The full per-quantum traces are exportable as CSV for plotting.
	f, err := os.CreateTemp("", "phases-*.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := rep.Recorder.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full traces written to %s\n", f.Name())
}
