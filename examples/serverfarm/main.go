// Serverfarm demonstrates the open-workload API: a diurnal request load
// submitted to a 4-way node over time (machine.Submit), with fvsst parking
// idle processors through the §5 idle signal. System power follows the
// day/night demand curve instead of sitting at 746 W around the clock.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	rep, err := experiments.ServerFarm(experiments.Options{Scale: 1, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
	fmt.Println()
	fmt.Println("an unmanaged hot-idle server burns full power regardless of load;")
	fmt.Println("fvsst recovers the difference while bounding the latency cost.")
}
