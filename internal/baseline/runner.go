package baseline

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

// Runner drives any Policy against a simulated machine with the same
// sample/decide/actuate cadence the fvsst driver uses, so the comparator
// policies can be evaluated end to end (not just analytically): counters
// are sampled every quantum, the policy runs every n-th quantum, and its
// assignment is actuated through the machine's throttles. A zero assigned
// frequency powers the processor down (the machine retires nothing and
// draws nothing at frequency 0).
type Runner struct {
	M      *machine.Machine
	Policy Policy
	// Budget is the processor power budget handed to the policy.
	Budget units.Power
	// Epsilon is forwarded to policies that take it (the fvsst adapter).
	Epsilon float64
	// SchedulePeriods is n (T = n·quantum).
	SchedulePeriods int
	// UseIdleSignal forwards the machine's idle indicator to the policy;
	// off by default, like the paper's prototype (§7.1).
	UseIdleSignal bool

	sampler   *counters.Sampler
	predictor perfmodel.Predictor
	collects  int
	started   bool
}

// NewRunner wires a policy to a machine.
func NewRunner(m *machine.Machine, pol Policy, budget units.Power) (*Runner, error) {
	if m == nil || pol == nil {
		return nil, fmt.Errorf("baseline: nil machine or policy")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("baseline: budget %v must be positive", budget)
	}
	sampler, err := counters.NewSampler(m, 64)
	if err != nil {
		return nil, err
	}
	pred, err := perfmodel.New(m.Config().Hier)
	if err != nil {
		return nil, err
	}
	return &Runner{
		M:               m,
		Policy:          pol,
		Budget:          budget,
		Epsilon:         0.05,
		SchedulePeriods: 10,
		sampler:         sampler,
		predictor:       pred,
	}, nil
}

// Step advances the machine one quantum and reschedules when due.
func (r *Runner) Step() error {
	if !r.started {
		r.started = true
		if err := r.schedule(); err != nil {
			return err
		}
	}
	r.M.Step()
	if err := r.sampler.Collect(); err != nil {
		return err
	}
	r.collects++
	if r.collects%r.SchedulePeriods == 0 {
		return r.schedule()
	}
	return nil
}

// schedule builds the policy input from the latest window and actuates the
// assignment.
func (r *Runner) schedule() error {
	n := r.M.NumCPUs()
	in := Input{
		Decs:    make([]*perfmodel.Decomposition, n),
		Idle:    make([]bool, n),
		Util:    make([]float64, n),
		Table:   r.M.Config().Table,
		Budget:  r.Budget,
		Epsilon: r.Epsilon,
	}
	for cpu := 0; cpu < n; cpu++ {
		if r.UseIdleSignal {
			in.Idle[cpu] = r.M.IsIdle(cpu)
		}
		delta := r.sampler.WindowAggregate(cpu, r.SchedulePeriods)
		if in.Idle[cpu] {
			in.Util[cpu] = 0
		} else {
			// Utilisation as a simple non-halted share: hot-idle platforms
			// report 1 unless the idle flag is set, reproducing the §3.1
			// blindness of utilisation-driven schemes.
			in.Util[cpu] = 1 - delta.HaltedFraction()
		}
		fHz := delta.ObservedFrequencyHz()
		if delta.Instructions == 0 || delta.Cycles == 0 || fHz <= 0 {
			continue
		}
		dec, err := r.predictor.Decompose(perfmodel.Observation{
			Delta: delta, Freq: units.Frequency(fHz),
		})
		if err != nil {
			continue // unusable window; policy sees nil
		}
		in.Decs[cpu] = &dec
	}
	assigned, err := r.Policy.Assign(in)
	if err != nil {
		return fmt.Errorf("baseline: %s: %w", r.Policy.Name(), err)
	}
	if len(assigned) != n {
		return fmt.Errorf("baseline: %s returned %d assignments for %d CPUs", r.Policy.Name(), len(assigned), n)
	}
	for cpu, f := range assigned {
		if err := r.M.SetFrequency(cpu, f); err != nil {
			return fmt.Errorf("baseline: actuate cpu %d: %w", cpu, err)
		}
	}
	return nil
}

// Run advances until simulation time t.
func (r *Runner) Run(until float64) error {
	for r.M.Now() < until {
		if err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntilAllDone advances until every job completes or the deadline
// passes.
func (r *Runner) RunUntilAllDone(deadline float64) (bool, error) {
	for r.M.Now() < deadline {
		if r.M.AllJobsDone() {
			return true, nil
		}
		if err := r.Step(); err != nil {
			return false, err
		}
	}
	return r.M.AllJobsDone(), nil
}

// Compile-time check: the machine satisfies the fvsst target surface the
// runner mirrors.
var _ fvsst.Target = (*machine.Machine)(nil)
