// Package baseline implements the comparator policies the paper positions
// fvsst against (§1, §3): powering nodes down, slowing all processors
// uniformly, utilisation-driven DVS in the style of Transmeta LongRun /
// Intel Demand Based Switching, and doing nothing. Each policy answers the
// same question fvsst does — "what frequency should each processor run at,
// given a global power budget?" — so the ablation experiments can swap them
// into an identical driver.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fvsst"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// Input is everything a policy may consult for one scheduling pass.
type Input struct {
	// Decs holds the per-processor predictor decompositions; nil entries
	// mean no usable window (treated as unknown/idle by policies that
	// care).
	Decs []*perfmodel.Decomposition
	// Idle flags processors known idle via the idle signal.
	Idle []bool
	// Util is each processor's busy fraction over the window, the only
	// signal utilisation-driven DVS uses (§3.1: "they rely on simple
	// metrics like the number of non-halted cycles in an interval").
	Util []float64
	// Table is the operating-point table.
	Table *power.Table
	// Budget is the aggregate processor power budget.
	Budget units.Power
	// Epsilon is the acceptable performance loss (used by the fvsst
	// policy only).
	Epsilon float64
}

// Validate checks the slices agree in length.
func (in Input) Validate() error {
	n := len(in.Decs)
	if n == 0 {
		return fmt.Errorf("baseline: empty input")
	}
	if len(in.Idle) != n || len(in.Util) != n {
		return fmt.Errorf("baseline: slice lengths disagree (%d/%d/%d)", n, len(in.Idle), len(in.Util))
	}
	if in.Table == nil {
		return fmt.Errorf("baseline: table required")
	}
	if in.Budget <= 0 {
		return fmt.Errorf("baseline: budget %v must be positive", in.Budget)
	}
	return nil
}

// Policy maps observations to a per-processor frequency assignment. A zero
// frequency means "power the processor down" (no leakage, no work).
type Policy interface {
	Name() string
	Assign(in Input) ([]units.Frequency, error)
}

// NoManagement runs everything at maximum frequency regardless of budget —
// the do-nothing comparator that cascades on a supply failure.
type NoManagement struct{}

// Name implements Policy.
func (NoManagement) Name() string { return "none" }

// Assign implements Policy.
func (NoManagement) Assign(in Input) ([]units.Frequency, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	out := make([]units.Frequency, len(in.Decs))
	for i := range out {
		out[i] = in.Table.MaxFrequency()
	}
	return out, nil
}

// Uniform slows all processors to the same highest setting that fits the
// budget — "slowing all nodes in a system uniformly" (§1).
type Uniform struct{}

// Name implements Policy.
func (Uniform) Name() string { return "uniform" }

// Assign implements Policy.
func (Uniform) Assign(in Input) ([]units.Frequency, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Decs)
	perCPU := units.Power(in.Budget.W() / float64(n))
	f, ok := in.Table.MaxFrequencyUnder(perCPU)
	if !ok {
		// Even the minimum setting exceeds the per-CPU share: floor at the
		// minimum (the uniform policy has no other lever).
		f = in.Table.MinFrequency()
	}
	out := make([]units.Frequency, n)
	for i := range out {
		out[i] = f
	}
	return out, nil
}

// PowerDown keeps as many processors as the budget allows at full
// frequency and powers the rest off — "powering down some nodes" (§1).
// Idle processors are shut off first, then the ones with the least
// CPU-bound work (their work is assumed lost or indefinitely delayed,
// since the paper's setting makes migration impractical).
type PowerDown struct{}

// Name implements Policy.
func (PowerDown) Name() string { return "powerdown" }

// Assign implements Policy.
func (PowerDown) Assign(in Input) ([]units.Frequency, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Decs)
	fMax := in.Table.MaxFrequency()
	pMax, err := in.Table.PowerAt(fMax)
	if err != nil {
		return nil, err
	}
	keep := int(in.Budget.W() / pMax.W())
	if keep > n {
		keep = n
	}
	// Rank processors by how much we want to keep them: busy beats idle,
	// then higher predicted full-speed performance beats lower.
	type ranked struct {
		idx   int
		score float64
	}
	rs := make([]ranked, n)
	for i := range rs {
		score := 0.0
		if !in.Idle[i] {
			score = 1
			if in.Decs[i] != nil {
				score += in.Decs[i].PerfAt(fMax) / 1e10 // tie-break on throughput
			}
		}
		rs[i] = ranked{idx: i, score: score}
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].score > rs[b].score })
	out := make([]units.Frequency, n)
	for rank, r := range rs {
		if rank < keep {
			out[r.idx] = fMax
		} else {
			out[r.idx] = 0 // powered off
		}
	}
	return out, nil
}

// UtilizationDVS is the LongRun/Demand-Based-Switching comparator: each
// processor's frequency tracks its utilisation with no knowledge of memory
// behaviour, then the whole assignment is clamped uniformly into the
// budget. On a hot-idle machine without an idle signal, utilisation is
// always 1 and this devolves to Uniform — exactly the §3.1 criticism.
type UtilizationDVS struct{}

// Name implements Policy.
func (UtilizationDVS) Name() string { return "util-dvs" }

// Assign implements Policy.
func (UtilizationDVS) Assign(in Input) ([]units.Frequency, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Decs)
	set := in.Table.Frequencies()
	out := make([]units.Frequency, n)
	for i := range out {
		util := in.Util[i]
		if in.Idle[i] {
			util = 0
		}
		if util < 0 {
			util = 0
		}
		if util > 1 {
			util = 1
		}
		target := units.Frequency(util * set.Max().Hz())
		if f, ok := set.CeilOf(target); ok {
			out[i] = f
		} else {
			out[i] = set.Max()
		}
	}
	// Budget clamp: cap everyone at the highest common ceiling that fits,
	// lowering the cap one step at a time.
	for {
		total := units.Power(0)
		for _, f := range out {
			p, err := in.Table.PowerAt(f)
			if err != nil {
				return nil, err
			}
			total += p
		}
		if total <= in.Budget {
			return out, nil
		}
		// Lower the highest assigned frequency by one step.
		hi := 0
		for i := 1; i < n; i++ {
			if out[i] > out[hi] {
				hi = i
			}
		}
		less, ok := set.NextBelow(out[hi])
		if !ok {
			return out, nil // floor; budget unmet, nothing more to do
		}
		out[hi] = less
	}
}

// FVSST adapts the paper's two-pass algorithm to the Policy interface so
// the ablation harness can run it side by side with the comparators.
type FVSST struct{}

// Name implements Policy.
func (FVSST) Name() string { return "fvsst" }

// Assign implements Policy.
func (FVSST) Assign(in Input) ([]units.Frequency, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Epsilon <= 0 || in.Epsilon >= 1 {
		return nil, fmt.Errorf("baseline: fvsst policy needs epsilon in (0,1), got %v", in.Epsilon)
	}
	set := in.Table.Frequencies()
	desired := make([]units.Frequency, len(in.Decs))
	for i, d := range in.Decs {
		switch {
		case in.Idle[i]:
			desired[i] = set.Min()
		case d == nil:
			desired[i] = set.Max()
		default:
			desired[i] = fvsst.EpsilonFrequency(*d, set, in.Epsilon)
		}
	}
	out, _, err := fvsst.FitToBudget(in.Decs, desired, in.Table, in.Budget)
	return out, err
}

// AggregatePerf estimates the total predicted performance (instructions
// per second) of an assignment, counting powered-off processors as zero and
// idle processors as zero useful work. It is the scoring function the
// ablation benches report.
func AggregatePerf(decs []*perfmodel.Decomposition, idle []bool, assigned []units.Frequency) float64 {
	total := 0.0
	for i, f := range assigned {
		if f <= 0 || idle[i] || decs[i] == nil {
			continue
		}
		total += decs[i].PerfAt(f)
	}
	return total
}

// AssignmentPower returns the table power of an assignment, with zero
// frequency contributing zero watts (powered off).
func AssignmentPower(assigned []units.Frequency, table *power.Table) (units.Power, error) {
	var sum units.Power
	for _, f := range assigned {
		if f == 0 {
			continue
		}
		p, err := table.PowerAt(f)
		if err != nil {
			return 0, err
		}
		sum += p
	}
	return sum, nil
}

// MeanNormPerf scores an assignment by the mean over busy processors of
// Perf(f)/Perf(f_max) — each workload weighted equally, so sacrificing one
// job entirely (power-down) costs its full share rather than vanishing
// behind a high-IPC neighbour. Powered-off busy processors contribute 0.
func MeanNormPerf(decs []*perfmodel.Decomposition, idle []bool, assigned []units.Frequency, fMax units.Frequency) float64 {
	sum, n := 0.0, 0
	for i, f := range assigned {
		if idle[i] || decs[i] == nil {
			continue
		}
		n++
		if f <= 0 {
			continue
		}
		sum += decs[i].PerfAt(f) / decs[i].PerfAt(fMax)
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WorstCaseLoss returns the largest per-processor predicted loss of an
// assignment versus f_max, ignoring idle and powered-off processors.
// Powered-off processors with work are total losses and return 1.
func WorstCaseLoss(decs []*perfmodel.Decomposition, idle []bool, assigned []units.Frequency, set units.FrequencySet) float64 {
	worst := 0.0
	for i, f := range assigned {
		if idle[i] || decs[i] == nil {
			continue
		}
		loss := 1.0
		if f > 0 {
			loss = decs[i].PerfLoss(set.Max(), f)
		}
		worst = math.Max(worst, loss)
	}
	return worst
}
