package baseline

import (
	"math"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

func dec(alpha, stallNs float64) *perfmodel.Decomposition {
	return &perfmodel.Decomposition{InvAlpha: 1 / alpha, StallSecPerInstr: stallNs * 1e-9}
}

// fourCPUInput: CPU0 CPU-bound, CPU1 memory-bound, CPU2 moderate, CPU3 idle.
func fourCPUInput(budget float64) Input {
	return Input{
		Decs:    []*perfmodel.Decomposition{dec(1.4, 0.1), dec(1.1, 8.44), dec(1.2, 5.2), nil},
		Idle:    []bool{false, false, false, true},
		Util:    []float64{1, 1, 0.6, 0},
		Table:   power.PaperTable1(),
		Budget:  units.Watts(budget),
		Epsilon: 0.05,
	}
}

func TestInputValidate(t *testing.T) {
	good := fourCPUInput(294)
	if err := good.Validate(); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
	bad := good
	bad.Idle = nil
	if bad.Validate() == nil {
		t.Error("mismatched slices accepted")
	}
	bad = good
	bad.Table = nil
	if bad.Validate() == nil {
		t.Error("nil table accepted")
	}
	bad = good
	bad.Budget = 0
	if bad.Validate() == nil {
		t.Error("zero budget accepted")
	}
	if _, err := (Uniform{}).Assign(Input{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestNoManagementIgnoresBudget(t *testing.T) {
	out, err := (NoManagement{}).Assign(fourCPUInput(100))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range out {
		if f != units.GHz(1) {
			t.Errorf("cpu %d at %v", i, f)
		}
	}
	p, _ := AssignmentPower(out, power.PaperTable1())
	if p.W() != 560 {
		t.Errorf("power = %v, want 560W (over the 100W budget, by design)", p)
	}
}

func TestUniformFitsBudgetEqually(t *testing.T) {
	out, err := (Uniform{}).Assign(fourCPUInput(294))
	if err != nil {
		t.Fatal(err)
	}
	// 294/4 = 73.5 W per CPU → highest setting ≤ 73.5 W is 700 MHz (66 W).
	for i, f := range out {
		if f != units.MHz(700) {
			t.Errorf("cpu %d at %v, want 700MHz", i, f)
		}
	}
	p, _ := AssignmentPower(out, power.PaperTable1())
	if p > units.Watts(294) {
		t.Errorf("uniform power %v over budget", p)
	}
}

func TestUniformFloorsWhenInfeasible(t *testing.T) {
	out, err := (Uniform{}).Assign(fourCPUInput(20))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range out {
		if f != units.MHz(250) {
			t.Errorf("cpu %d at %v, want floor", i, f)
		}
	}
}

func TestPowerDownKeepsBusiestCPUs(t *testing.T) {
	// 294 W / 140 W = 2 CPUs may stay up.
	out, err := (PowerDown{}).Assign(fourCPUInput(294))
	if err != nil {
		t.Fatal(err)
	}
	up := 0
	for _, f := range out {
		if f == units.GHz(1) {
			up++
		} else if f != 0 {
			t.Errorf("power-down produced intermediate frequency %v", f)
		}
	}
	if up != 2 {
		t.Errorf("%d CPUs up, want 2", up)
	}
	// The idle CPU must be among the victims.
	if out[3] != 0 {
		t.Errorf("idle CPU kept up at %v", out[3])
	}
	p, _ := AssignmentPower(out, power.PaperTable1())
	if p > units.Watts(294) {
		t.Errorf("power %v over budget", p)
	}
}

func TestPowerDownZeroBudgetKillsEverything(t *testing.T) {
	out, err := (PowerDown{}).Assign(fourCPUInput(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range out {
		if f != 0 {
			t.Errorf("cpu %d still up at %v", i, f)
		}
	}
}

func TestUtilizationDVSTracksUtil(t *testing.T) {
	in := fourCPUInput(560)
	out, err := (UtilizationDVS{}).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	// util=1 → 1 GHz; util=0.6 → ceil(600 MHz) = 600 MHz; idle → min.
	if out[0] != units.GHz(1) || out[1] != units.GHz(1) {
		t.Errorf("full-util CPUs at %v/%v", out[0], out[1])
	}
	if out[2] != units.MHz(600) {
		t.Errorf("60%%-util CPU at %v, want 600MHz", out[2])
	}
	if out[3] != units.MHz(250) {
		t.Errorf("idle CPU at %v, want 250MHz", out[3])
	}
}

func TestUtilizationDVSIsMemoryBlind(t *testing.T) {
	// The §3.1 criticism: a fully-utilised memory-bound CPU gets f_max
	// even though it would lose nothing at 650 MHz.
	in := fourCPUInput(560)
	out, err := (UtilizationDVS{}).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != units.GHz(1) {
		t.Errorf("memory-bound full-util CPU at %v — util-DVS should be blind to saturation", out[1])
	}
	// fvsst, by contrast, saturates it.
	fv, err := (FVSST{}).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if fv[1] != units.MHz(650) {
		t.Errorf("fvsst put memory-bound CPU at %v, want 650MHz", fv[1])
	}
}

func TestUtilizationDVSBudgetClamp(t *testing.T) {
	in := fourCPUInput(200)
	out, err := (UtilizationDVS{}).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := AssignmentPower(out, in.Table)
	if p > units.Watts(200) {
		t.Errorf("clamped power %v over budget", p)
	}
}

func TestFVSSTPolicyMatchesBudgetAndSaturation(t *testing.T) {
	in := fourCPUInput(294)
	out, err := (FVSST{}).Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := AssignmentPower(out, in.Table)
	if p > units.Watts(294) {
		t.Errorf("fvsst power %v over budget", p)
	}
	// The idle CPU sits at the minimum; the CPU-bound one keeps the most
	// frequency of all.
	if out[3] != units.MHz(250) {
		t.Errorf("idle CPU at %v", out[3])
	}
	for i := 1; i < 3; i++ {
		if out[i] > out[0] {
			t.Errorf("memory-bound CPU %d (%v) above CPU-bound CPU 0 (%v)", i, out[i], out[0])
		}
	}
	if _, err := (FVSST{}).Assign(Input{
		Decs: in.Decs, Idle: in.Idle, Util: in.Util, Table: in.Table, Budget: in.Budget,
	}); err == nil {
		t.Error("epsilon=0 accepted")
	}
}

// TestFVSSTBeatsComparatorsUnderBudget is the headline ablation: at the
// motivating 294 W budget, fvsst retains more aggregate predicted
// performance than uniform scaling and power-down, while keeping power
// under the limit — the paper's core claim.
func TestFVSSTBeatsComparatorsUnderBudget(t *testing.T) {
	in := fourCPUInput(294)
	set := in.Table.Frequencies()
	perf := map[string]float64{}
	for _, pol := range []Policy{Uniform{}, PowerDown{}, UtilizationDVS{}, FVSST{}} {
		out, err := pol.Assign(in)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		p, err := AssignmentPower(out, in.Table)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if p > in.Budget {
			t.Errorf("%s exceeds budget: %v", pol.Name(), p)
		}
		perf[pol.Name()] = AggregatePerf(in.Decs, in.Idle, out)
		_ = set
	}
	if perf["fvsst"] <= perf["uniform"] {
		t.Errorf("fvsst %v not above uniform %v", perf["fvsst"], perf["uniform"])
	}
	if perf["fvsst"] <= perf["powerdown"] {
		t.Errorf("fvsst %v not above powerdown %v", perf["fvsst"], perf["powerdown"])
	}
	if perf["fvsst"] < perf["util-dvs"] {
		t.Errorf("fvsst %v below util-dvs %v", perf["fvsst"], perf["util-dvs"])
	}
}

func TestWorstCaseLoss(t *testing.T) {
	in := fourCPUInput(294)
	set := in.Table.Frequencies()
	// Power-down: the sacrificed busy CPU is a total (1.0) loss.
	out, _ := (PowerDown{}).Assign(in)
	if got := WorstCaseLoss(in.Decs, in.Idle, out, set); got != 1 {
		t.Errorf("power-down worst loss = %v, want 1", got)
	}
	// fvsst keeps the worst loss bounded well below total.
	out, _ = (FVSST{}).Assign(in)
	if got := WorstCaseLoss(in.Decs, in.Idle, out, set); got <= 0 || got > 0.5 {
		t.Errorf("fvsst worst loss = %v", got)
	}
}

func TestAggregatePerfIgnoresIdleAndOff(t *testing.T) {
	decs := []*perfmodel.Decomposition{dec(1, 0), dec(1, 0), dec(1, 0)}
	idle := []bool{false, true, false}
	assigned := []units.Frequency{units.GHz(1), units.GHz(1), 0}
	got := AggregatePerf(decs, idle, assigned)
	// Only CPU0 counts: Perf = 1e9 instr/s at α=1, no stalls.
	if math.Abs(got-1e9)/1e9 > 1e-9 {
		t.Errorf("AggregatePerf = %v, want 1e9", got)
	}
}

func TestAssignmentPowerSkipsOff(t *testing.T) {
	tab := power.PaperTable1()
	p, err := AssignmentPower([]units.Frequency{units.GHz(1), 0, 0, 0}, tab)
	if err != nil {
		t.Fatal(err)
	}
	if p.W() != 140 {
		t.Errorf("power = %v, want 140W", p)
	}
	if _, err := AssignmentPower([]units.Frequency{units.MHz(123)}, tab); err == nil {
		t.Error("off-grid frequency accepted")
	}
}
