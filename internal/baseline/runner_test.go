package baseline

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/units"
	"repro/internal/workload"
)

func quietMachine(t *testing.T) *machine.Machine {
	t.Helper()
	cfg := machine.P630Config()
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func loadDiverse(t *testing.T, m *machine.Machine) {
	t.Helper()
	progs := []workload.Program{
		{Name: "cpu", Phases: []workload.Phase{{Name: "c", Alpha: 1.4, Instructions: 1e12}}},
		{Name: "mem", Phases: []workload.Phase{{
			Name: "m", Alpha: 1.1,
			Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.024},
			Instructions: 1e12,
		}}},
	}
	for cpu, p := range progs {
		mix, err := workload.NewMix(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewRunnerValidation(t *testing.T) {
	m := quietMachine(t)
	if _, err := NewRunner(nil, Uniform{}, units.Watts(100)); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := NewRunner(m, nil, units.Watts(100)); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewRunner(m, Uniform{}, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestUniformRunnerEnforcesBudgetEndToEnd(t *testing.T) {
	m := quietMachine(t)
	loadDiverse(t, m)
	r, err := NewRunner(m, Uniform{}, units.Watts(294))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(0.5); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalCPUPower(); got > units.Watts(295) {
		t.Errorf("uniform policy power %v over budget", got)
	}
	// Every CPU at the same setting (294/4 = 73.5 W → 700 MHz).
	f0 := m.EffectiveFrequency(0)
	for cpu := 1; cpu < 4; cpu++ {
		if m.EffectiveFrequency(cpu) != f0 {
			t.Errorf("cpu %d at %v, cpu0 at %v", cpu, m.EffectiveFrequency(cpu), f0)
		}
	}
}

func TestPowerDownRunnerStopsVictims(t *testing.T) {
	m := quietMachine(t)
	loadDiverse(t, m)
	r, err := NewRunner(m, PowerDown{}, units.Watts(294)) // 2 CPUs may stay up
	if err != nil {
		t.Fatal(err)
	}
	r.UseIdleSignal = true // power-down needs to know which CPUs are idle
	if err := r.Run(1.0); err != nil {
		t.Fatal(err)
	}
	up := 0
	for cpu := 0; cpu < 4; cpu++ {
		if m.EffectiveFrequency(cpu) > 0 {
			up++
		}
	}
	if up != 2 {
		t.Errorf("%d CPUs up, want 2", up)
	}
	// The two busy CPUs survive; both idle CPUs are off.
	for cpu := 0; cpu < 2; cpu++ {
		if m.EffectiveFrequency(cpu) == 0 {
			t.Errorf("busy cpu %d powered down before the idle ones", cpu)
		}
	}
}

func TestFVSSTRunnerMatchesDedicatedScheduler(t *testing.T) {
	// The fvsst policy adapter through the generic runner must reach the
	// same steady-state frequencies as the dedicated fvsst.Scheduler.
	m := quietMachine(t)
	loadDiverse(t, m)
	r, err := NewRunner(m, FVSST{}, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(1.0); err != nil {
		t.Fatal(err)
	}
	if f := m.EffectiveFrequency(0); f != units.GHz(1) {
		t.Errorf("cpu-bound CPU at %v, want 1GHz", f)
	}
	f := m.EffectiveFrequency(1)
	if f > units.MHz(700) || f < units.MHz(600) {
		t.Errorf("memory-bound CPU at %v, want ≈650MHz", f)
	}
}

// TestPoliciesEndToEndThroughputOrdering runs a fixed amount of work under
// each policy at a tight 200 W budget and checks fvsst finishes it faster —
// the ablation claim verified on the machine rather than analytically. At
// 200 W, uniform must slow every processor to 550 MHz, while fvsst parks
// the idle processors (its §5 idle signal), saturates the memory-bound job
// near 650 MHz and spends the freed watts on the CPU-bound job.
func TestPoliciesEndToEndThroughputOrdering(t *testing.T) {
	finish := func(pol Policy) float64 {
		m := quietMachine(t)
		// Finite diverse work: a CPU-bound and a memory-bound job.
		progs := []workload.Program{
			{Name: "cpu", Phases: []workload.Phase{{Name: "c", Alpha: 1.4, Instructions: 8e8}}},
			{Name: "mem", Phases: []workload.Phase{{
				Name: "m", Alpha: 1.1,
				Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.024},
				Instructions: 6e7,
			}}},
		}
		for cpu, p := range progs {
			mix, _ := workload.NewMix(p)
			m.SetMix(cpu, mix)
		}
		r, err := NewRunner(m, pol, units.Watts(200))
		if err != nil {
			t.Fatal(err)
		}
		if _, isFVSST := pol.(FVSST); isFVSST {
			r.UseIdleSignal = true
		}
		done, err := r.RunUntilAllDone(60)
		if err != nil {
			t.Fatal(err)
		}
		if !done {
			return 1e9 // effectively never (power-down may starve a job)
		}
		comps := m.Completions()
		return comps[len(comps)-1].At
	}
	fv := finish(FVSST{})
	uni := finish(Uniform{})
	// fvsst should win clearly (≥15%), not just within noise.
	if fv > uni*0.85 {
		t.Errorf("fvsst makespan %.3fs not clearly better than uniform %.3fs", fv, uni)
	}
}
