package baseline

import (
	"math"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/units"
)

func TestPolicyNames(t *testing.T) {
	for pol, want := range map[Policy]string{
		NoManagement{}:   "none",
		Uniform{}:        "uniform",
		PowerDown{}:      "powerdown",
		UtilizationDVS{}: "util-dvs",
		FVSST{}:          "fvsst",
	} {
		if got := pol.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestMeanNormPerf(t *testing.T) {
	fMax := units.GHz(1)
	cpu := &perfmodel.Decomposition{InvAlpha: 1} // pure CPU: perf ∝ f
	decs := []*perfmodel.Decomposition{cpu, cpu, cpu, nil}
	idle := []bool{false, false, true, false}

	// CPU0 at full speed (1.0), CPU1 at half (0.5); CPU2 idle and CPU3
	// data-less are excluded. Mean = 0.75.
	assigned := []units.Frequency{units.GHz(1), units.MHz(500), units.GHz(1), units.GHz(1)}
	got := MeanNormPerf(decs, idle, assigned, fMax)
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MeanNormPerf = %v, want 0.75", got)
	}

	// A powered-off busy processor contributes 0.
	assigned[1] = 0
	got = MeanNormPerf(decs, idle, assigned, fMax)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("with power-down = %v, want 0.5", got)
	}

	// No scorable processors → 0.
	if got := MeanNormPerf([]*perfmodel.Decomposition{nil}, []bool{false},
		[]units.Frequency{units.GHz(1)}, fMax); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestRunnerRunUntilAllDoneDeadline(t *testing.T) {
	m := quietMachine(t)
	loadDiverse(t, m) // 1e12-instruction jobs: never finish by 0.1 s
	r, err := NewRunner(m, Uniform{}, units.Watts(294))
	if err != nil {
		t.Fatal(err)
	}
	done, err := r.RunUntilAllDone(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Error("impossibly long jobs reported done")
	}
}
