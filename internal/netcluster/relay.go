package netcluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/farm"
	"repro/internal/netcluster/proto"
	"repro/internal/netcluster/wire"
	"repro/internal/obs"
	"repro/internal/units"
)

// This file is the recursive coordinator tier. A Relay owns a Coordinator
// over its children (leaf agents or further relays) and speaks the agent
// protocol upward: it answers a demand-request by polling its subtree and
// collapsing it into one aggregated demand curve (cluster.Core's
// least-loss demotion sequence with flat-greedy step keys), and answers
// the grant that follows by scheduling and actuating the subtree under
// the granted budget. A Root divides its budget across relay demand
// curves with farm.DivideLeastLossExact — the same greedy, the same stop
// arithmetic, as one flat fvsst Step-2 pass over the union — so a
// fault-free two-level tree produces byte-identical schedules to a flat
// coordinator over the same nodes.
//
// Budget safety composes up the tree: a relay charges silent children
// their worst case under silence (Coordinator.settle), reports that
// reservation upward at demand time, and acknowledges every grant with
// its post-actuation ledger total (GrantAck.ChargedW). The root holds a
// silent relay at its last acknowledged ChargedW — grants are the only
// way subtree settings can rise, so a partitioned subtree is frozen at
// (or below, via agent failsafes) that figure — and a never-granted relay
// at its full subtree worst case.

// RelayConfig parameterises one mid-tier relay.
type RelayConfig struct {
	// Name identifies the relay to its root coordinator.
	Name string
	// Addr is the upward TCP listen address; empty means loopback with an
	// OS-assigned port.
	Addr string
}

// Relay serves a coordinator subtree to an upstream Root. Create with
// NewRelay over a connected Coordinator, then Start (or ServeConn).
type Relay struct {
	cfg   RelayConfig
	coord *Coordinator
	ln    net.Listener

	mu      sync.Mutex
	conns   map[proto.Conn]struct{}
	pending *pendingDemand

	closed chan struct{}
	wg     sync.WaitGroup
}

// pendingDemand carries the poll a demand-request performed across to the
// grant that settles it, so the subtree is advanced exactly once per
// round and the grant schedules the very counter windows the exported
// curve was derived from.
type pendingDemand struct {
	passID     uint64
	polls      []poll
	inputs     []cluster.ProcInput
	nodeInputs [][]int
	reserved   units.Power
	cpuPowerW  float64
}

// NewRelay wraps a connected Coordinator. The Coordinator must have
// completed Connect — the relay advertises its subtree's processor count
// at hello time — and the relay owns its round-driving from then on:
// do not call RunRound on the wrapped Coordinator.
func NewRelay(cfg RelayConfig, coord *Coordinator) (*Relay, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("netcluster: relay needs a name")
	}
	if coord == nil {
		return nil, fmt.Errorf("netcluster: relay %s has no coordinator", cfg.Name)
	}
	for _, ns := range coord.nodes {
		if ns.caps == nil {
			return nil, fmt.Errorf("netcluster: relay %s: child %s never connected; call Connect first",
				cfg.Name, ns.spec.Name)
		}
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	return &Relay{
		cfg:    cfg,
		coord:  coord,
		conns:  make(map[proto.Conn]struct{}),
		closed: make(chan struct{}),
	}, nil
}

// Coordinator exposes the wrapped subtree coordinator, whose Decisions
// log carries the per-child detail (assignments, per-node charges) of
// every grant the relay settled.
func (r *Relay) Coordinator() *Coordinator { return r.coord }

// Start binds the upward listener and begins serving.
func (r *Relay) Start() error {
	ln, err := net.Listen("tcp", r.cfg.Addr)
	if err != nil {
		return fmt.Errorf("netcluster: relay %s listen: %w", r.cfg.Name, err)
	}
	r.ln = ln
	r.wg.Add(1)
	go r.acceptLoop()
	return nil
}

// Addr returns the bound upward listen address (valid after Start).
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Close stops serving upward and tears down the subtree sessions.
func (r *Relay) Close() error {
	select {
	case <-r.closed:
		return nil
	default:
	}
	close(r.closed)
	var err error
	if r.ln != nil {
		err = r.ln.Close()
	}
	r.mu.Lock()
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	r.coord.Close()
	return err
}

func (r *Relay) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.wg.Add(1)
		go r.serve(wire.NewConn(conn, wire.Options{Mirror: true}))
	}
}

// ServeConn serves one pre-established stream connection (e.g. one end of
// a net.Pipe) until it closes. It blocks; run it on its own goroutine.
func (r *Relay) ServeConn(conn net.Conn) {
	r.wg.Add(1)
	r.serve(wire.NewConn(conn, wire.Options{Mirror: true}))
}

func (r *Relay) serve(c proto.Conn) {
	defer r.wg.Done()
	r.mu.Lock()
	r.conns[c] = struct{}{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.conns, c)
		r.mu.Unlock()
		c.Close()
	}()
	for {
		req, err := c.Recv()
		if err != nil {
			return // root will redial
		}
		start := time.Now()
		resp := r.handle(req)
		resp.ID = req.ID
		resp.Node = r.cfg.Name
		resp.Trace = req.Trace
		resp.ServiceSec = time.Since(start).Seconds()
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// handle serialises upward requests: the wrapped Coordinator is not
// concurrency-safe, and a round's demand/grant pair must not interleave
// with a redialled connection's handshake.
func (r *Relay) handle(req *proto.Message) *proto.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch req.Kind {
	case proto.KindHello:
		return r.handleHello()
	case proto.KindHeartbeat:
		return &proto.Message{Kind: proto.KindHeartbeatAck, Now: r.coord.clock.Now()}
	case proto.KindDemandRequest:
		if req.CounterRequest == nil {
			return fail("demand-request without payload")
		}
		return r.handleDemand(req)
	case proto.KindGrant:
		if req.Grant == nil {
			return fail("grant without payload")
		}
		return r.handleGrant(req)
	default:
		return fail("unknown kind %q", req.Kind)
	}
}

func (r *Relay) handleHello() *proto.Message {
	table := r.coord.cfg.Fvsst.Table
	var freqs []float64
	for _, p := range table.Points() {
		freqs = append(freqs, p.F.MHz())
	}
	maxP, err := table.PowerAt(table.MaxFrequency())
	if err != nil {
		return fail("capabilities: %v", err)
	}
	numCPUs := 0
	for _, ns := range r.coord.nodes {
		numCPUs += ns.caps.NumCPUs
	}
	return &proto.Message{
		Kind: proto.KindHelloAck,
		Now:  r.coord.clock.Now(),
		Capabilities: &proto.Capabilities{
			Node:       r.cfg.Name,
			NumCPUs:    numCPUs,
			QuantumSec: r.coord.quantum,
			FreqsMHz:   freqs,
			MaxPowerW:  maxP.W(),
			Codecs:     []string{wire.CodecName},
			Tier:       "relay",
		},
	}
}

// handleDemand is the downward half of a round: poll the subtree (which
// advances every reachable child one scheduling period), export its
// demand curve and Step-1 desire, and hold the poll for the grant.
func (r *Relay) handleDemand(req *proto.Message) *proto.Message {
	cr := *req.CounterRequest
	want := r.coord.cfg.Fvsst.SchedulePeriods
	if cr.AdvanceQuanta != want || cr.WindowQuanta != want {
		return fail("demand advance/window %d/%d differ from relay schedule periods %d",
			cr.AdvanceQuanta, cr.WindowQuanta, want)
	}
	var passID uint64
	if req.Trace != nil {
		passID = req.Trace.PassID
	}
	// Keep the subtree's pass numbering aligned with the root's, so one
	// PassID correlates spans and acks across every tier.
	r.coord.passID = passID

	polls := r.coord.pollPhase(passID)
	inputs, nodeInputs, reserved := r.coord.buildInputs(polls)
	rep := &proto.DemandReport{ReservedW: reserved.W()}
	var cpuPowerW float64
	for i := range polls {
		if polls[i].ok {
			cpuPowerW += polls[i].cpuPowerW
		}
	}
	rep.CPUPowerW = cpuPowerW
	for _, ns := range r.coord.nodes {
		if ns.degraded {
			rep.Degraded = append(rep.Degraded, ns.spec.Name)
		}
	}
	if len(inputs) > 0 {
		curve, desired, err := r.coord.core.DemandCurveDesired(inputs)
		if err != nil {
			return fail("demand curve: %v", err)
		}
		rep.Points = make([]proto.DemandPoint, len(curve.Points))
		for i, p := range curve.Points {
			rep.Points[i] = proto.DemandPoint{
				PowerW:   p.Power.W(),
				Loss:     p.Loss,
				StepLoss: p.Step.Loss,
				StepIdx:  p.Step.Idx,
				StepProc: p.Step.Proc,
			}
		}
		rep.Desired = desired
	}
	r.pending = &pendingDemand{
		passID:     passID,
		polls:      polls,
		inputs:     inputs,
		nodeInputs: nodeInputs,
		reserved:   reserved,
		cpuPowerW:  cpuPowerW,
	}
	return &proto.Message{Kind: proto.KindDemandReport, Now: r.coord.clock.Now(), DemandReport: rep}
}

// handleGrant settles the round the preceding demand-request opened:
// schedule the held counter windows under the granted budget, actuate,
// and acknowledge the resulting ledger.
func (r *Relay) handleGrant(req *proto.Message) *proto.Message {
	p := r.pending
	if p == nil {
		return fail("grant without a preceding demand-request")
	}
	r.pending = nil
	c := r.coord
	grant := units.Watts(req.Grant.BudgetW)
	res, err := c.core.Schedule(p.inputs, grant)
	if err != nil {
		return fail("schedule: %v", err)
	}
	acked, _ := c.actuatePhase(p.passID, p.polls, p.nodeInputs, res.Assignments)
	l, err := c.settle(p.polls, p.nodeInputs, res.Assignments, acked)
	if err != nil {
		return fail("settle: %v", err)
	}
	// The relay's budget for ledger purposes is the grant plus the
	// reservation it reported at demand time: the root already holds
	// ReservedW against the global budget, so the grant covers only the
	// reachable children.
	budget := grant + p.reserved
	dec := Decision{
		At:          c.clock.Now(),
		Trigger:     "grant",
		Budget:      budget,
		TablePower:  res.TablePower,
		Reserved:    l.reserved,
		Charged:     l.charged,
		BudgetMet:   l.charged <= budget,
		Degraded:    l.degradedNames,
		Assignments: res.Assignments,
		NodeCharged: l.nodeCharged,
		Acked:       acked,
	}
	c.decisions = append(c.decisions, dec)
	c.cfg.Metrics.setDegraded(l.degradedCount)
	c.cfg.Metrics.setCharged(l.charged, l.reserved)
	c.cfg.Metrics.setWire(c.cfg.WireStats)
	c.clock.Tick()
	return &proto.Message{
		Kind: proto.KindGrantAck,
		Now:  c.clock.Now(),
		GrantAck: &proto.GrantAck{
			ChargedW:    l.charged.W(),
			TablePowerW: res.TablePower.W(),
			ReservedW:   l.reserved.W(),
			Met:         dec.BudgetMet,
		},
	}
}

// RelayGrant is one relay's slice of a root round.
type RelayGrant struct {
	Relay string
	// Acked reports whether the relay acknowledged this round's grant (a
	// demand-only round — no reachable children — counts as acked with
	// the relay's reservation as its charge).
	Acked bool
	// Grant is the budget awarded for the relay's reachable processors.
	Grant units.Power
	// Charged is what the root holds for the subtree: the acknowledged
	// ledger total, or the worst case under silence.
	Charged units.Power
	// TablePower/Reserved/Met echo the relay's GrantAck.
	TablePower units.Power
	Reserved   units.Power
	Met        bool
}

// RootDecision is one hierarchical scheduling round at the tree root.
type RootDecision struct {
	At      float64
	Trigger string
	Budget  units.Power
	// Reserved is the worst-case charge held outside the division: silent
	// relays' frozen-subtree bounds plus reachable relays' own
	// reservations for their silent children.
	Reserved units.Power
	// Charged is the total held against the budget across every subtree.
	Charged units.Power
	// BudgetMet reports Charged ≤ Budget.
	BudgetMet bool
	// DivideMet reports whether the least-loss division fit the live
	// budget without hitting every curve's floor.
	DivideMet bool
	// Degraded lists relays currently marked degraded.
	Degraded []string
	Grants   []RelayGrant
	// PassDur is the round's wall-clock latency: demand fan-out through
	// grant settlement.
	PassDur time.Duration
}

// Root drives a tier of relays: demand poll, least-loss division of the
// budget across the reported curves, grant fan-out. It reuses the
// Coordinator's transport (dialing, retry, degrade/rejoin accounting,
// codec negotiation) with relay-shaped rounds, and the division replays
// the flat Step-2 greedy exactly, so a fault-free tree schedules
// byte-identically to one flat coordinator over the same leaves.
type Root struct {
	*Coordinator
	rootDecisions []RootDecision
}

// NewRoot validates the configuration and prepares (but does not
// connect) the root coordinator. Config semantics match NewCoordinator;
// Fvsst supplies the table the division replays and the periods-per-round
// the relays advance their subtrees by.
func NewRoot(cfg Config, relays ...NodeSpec) (*Root, error) {
	c, err := NewCoordinator(cfg, relays...)
	if err != nil {
		return nil, err
	}
	return &Root{Coordinator: c}, nil
}

// RootDecisions returns the hierarchical round log.
func (r *Root) RootDecisions() []RootDecision {
	out := make([]RootDecision, len(r.rootDecisions))
	copy(out, r.rootDecisions)
	return out
}

// rootWorstCharge bounds a silent relay's subtree draw: the ledger it
// acknowledged on its last grant (settings below it cannot rise without
// grants flowing through the relay), or the full subtree worst case when
// it was never granted.
func (r *Root) rootWorstCharge(ns *nodeState) units.Power {
	if ns.granted {
		return ns.lastCharged
	}
	return units.Watts(float64(ns.caps.NumCPUs) * ns.caps.MaxPowerW)
}

// demandPoll is one relay's demand-phase result, deep-copied out of the
// connection-owned decode buffers inside the poll goroutine.
type demandPoll struct {
	ok        bool
	curve     farm.DemandCurve
	desired   []int
	reservedW float64
	cpuPowerW float64
	rpc       rpcTime
}

// demandPhase polls every relay for its aggregated demand curve. Like
// Coordinator.pollPhase, each goroutine owns its relay's state.
func (r *Root) demandPhase(passID uint64) []demandPoll {
	c := r.Coordinator
	demands := make([]demandPoll, len(c.nodes))
	var wg sync.WaitGroup
	for i, ns := range c.nodes {
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			resp, rt, err := c.rpc(ns, proto.KindDemandRequest, func(id uint64) *proto.Message {
				return &proto.Message{Kind: proto.KindDemandRequest, ID: id, Trace: &proto.TraceContext{PassID: passID}, CounterRequest: &proto.CounterRequest{
					AdvanceQuanta: c.cfg.Fvsst.SchedulePeriods,
					WindowQuanta:  c.cfg.Fvsst.SchedulePeriods,
				}}
			})
			if err != nil || resp.DemandReport == nil {
				c.recordMiss(ns, err)
				return
			}
			rep := resp.DemandReport
			d := demandPoll{ok: true, reservedW: rep.ReservedW, cpuPowerW: rep.CPUPowerW, rpc: rt}
			// The report's slices live in the connection's reusable decode
			// buffers; copy before the grant RPC reuses them.
			if len(rep.Points) > 0 {
				d.curve.Points = make([]farm.DemandPoint, len(rep.Points))
				for k, p := range rep.Points {
					d.curve.Points[k] = farm.DemandPoint{
						Power: units.Watts(p.PowerW),
						Loss:  p.Loss,
						Step:  farm.StepKey{Loss: p.StepLoss, Idx: p.StepIdx, Proc: p.StepProc},
					}
				}
				d.desired = append([]int(nil), rep.Desired...)
			}
			demands[i] = d
		}(i, ns)
	}
	wg.Wait()
	return demands
}

// RunRound executes one hierarchical scheduling period: demand-poll the
// relays, divide the budget across their curves with the flat greedy's
// exact stop arithmetic, then grant each relay its slice. Transport
// failures convert into frozen-subtree charges, never aborted rounds.
func (r *Root) RunRound() error {
	c := r.Coordinator
	for _, ns := range c.nodes {
		if ns.caps == nil {
			return fmt.Errorf("netcluster: relay %s never connected; call Connect first", ns.spec.Name)
		}
	}
	c.passID++
	passID := c.passID
	trace := c.cfg.Sink != nil
	passStart := time.Now()
	trigger := "timer"
	var want units.Power
	switch {
	case c.cfg.Source != nil:
		want = c.cfg.Source.BudgetAt(c.clock.Now())
	case c.cfg.Budgets != nil:
		want = c.cfg.Budgets.At(c.clock.Now())
	default:
		want = c.budget
	}
	if want != c.budget {
		c.budget = want
		trigger = "budget-change"
	}

	// Phase 1: parallel demand poll.
	demands := r.demandPhase(passID)
	demandDur := time.Since(passStart)

	// Phase 2: hold the out-of-division charges, then divide the
	// remainder across the reachable curves in exact flat-greedy order.
	var reserved units.Power
	for i, ns := range c.nodes {
		if !demands[i].ok {
			reserved += r.rootWorstCharge(ns)
			continue
		}
		reserved += units.Watts(demands[i].reservedW)
	}
	liveBudget := c.budget - reserved
	var members []int
	var curves []farm.DemandCurve
	var desired [][]int
	for i := range c.nodes {
		if demands[i].ok && len(demands[i].curve.Points) > 0 {
			members = append(members, i)
			curves = append(curves, demands[i].curve)
			desired = append(desired, demands[i].desired)
		}
	}
	divideStart := time.Now()
	pos, divideMet, err := farm.DivideLeastLossExact(curves, desired, c.cfg.Fvsst.Table, liveBudget)
	if err != nil {
		return err
	}
	divideDur := time.Since(divideStart)

	// Phase 3: parallel grant fan-out. Every relay that answered the
	// demand gets a grant — 0 W when it has no reachable children — so a
	// relay settles exactly one decision per round and its epoch clock
	// stays in lockstep with the root's.
	grants := make([]RelayGrant, len(c.nodes))
	grantStart := time.Now()
	grantRPC := make([]rpcTime, len(c.nodes))
	var wg sync.WaitGroup
	for i, ns := range c.nodes {
		grants[i].Relay = ns.spec.Name
		if !demands[i].ok {
			continue
		}
		var grantW units.Power
		for m, idx := range members {
			if idx == i {
				grantW = curves[m].Points[pos[m]].Power
				break
			}
		}
		grants[i].Grant = grantW
		wg.Add(1)
		go func(i int, ns *nodeState, grantW units.Power) {
			defer wg.Done()
			resp, rt, err := c.rpc(ns, proto.KindGrant, func(id uint64) *proto.Message {
				return &proto.Message{Kind: proto.KindGrant, ID: id, Trace: &proto.TraceContext{PassID: passID}, Grant: &proto.Grant{BudgetW: grantW.W()}}
			})
			if err != nil || resp.GrantAck == nil {
				c.recordMiss(ns, err)
				return
			}
			ack := resp.GrantAck
			grants[i].Acked = true
			grants[i].Charged = units.Watts(ack.ChargedW)
			grants[i].TablePower = units.Watts(ack.TablePowerW)
			grants[i].Reserved = units.Watts(ack.ReservedW)
			grants[i].Met = ack.Met
			grantRPC[i] = rt
			ns.lastCharged = grants[i].Charged
			ns.granted = true
			c.recordAlive(ns)
		}(i, ns, grantW)
	}
	wg.Wait()
	grantDur := time.Since(grantStart)

	// Phase 4: the round's ledger and decision.
	var charged units.Power
	var degradedNames []string
	degradedCount := 0
	for i, ns := range c.nodes {
		if grants[i].Acked {
			charged += grants[i].Charged
			continue
		}
		w := r.rootWorstCharge(ns)
		grants[i].Charged = w
		charged += w
		if ns.degraded {
			degradedCount++
			degradedNames = append(degradedNames, ns.spec.Name)
		}
	}
	dec := RootDecision{
		At:        c.clock.Now(),
		Trigger:   trigger,
		Budget:    c.budget,
		Reserved:  reserved,
		Charged:   charged,
		BudgetMet: charged <= c.budget,
		DivideMet: divideMet,
		Degraded:  degradedNames,
		Grants:    grants,
		PassDur:   time.Since(passStart),
	}
	r.rootDecisions = append(r.rootDecisions, dec)
	c.cfg.Metrics.setDegraded(degradedCount)
	c.cfg.Metrics.setCharged(charged, reserved)
	c.cfg.Metrics.setWire(c.cfg.WireStats)

	if trace {
		at := c.clock.Now()
		sink := c.cfg.Sink
		var cpuPowerW float64
		for i := range demands {
			if demands[i].ok {
				cpuPowerW += demands[i].cpuPowerW
			}
		}
		sink.Emit(obs.Event{
			Type:      obs.EventQuantum,
			At:        at,
			PassID:    passID,
			BudgetW:   c.budget.W(),
			CPUPowerW: cpuPowerW,
			ChargedW:  charged.W(),
			ReservedW: reserved.W(),
		})
		sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanPoll, obs.SpanPass, demandDur.Seconds()))
		sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanDivide, obs.SpanPass, divideDur.Seconds()))
		sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanActuate, obs.SpanPass, grantDur.Seconds()))
		for i, ns := range c.nodes {
			if demands[i].ok {
				sink.Emit(rpcSpan(at, passID, ns.spec.Name, obs.SpanRPCDemand, passStart, demands[i].rpc))
			}
			if grants[i].Acked && grants[i].Grant > 0 {
				sink.Emit(rpcSpan(at, passID, ns.spec.Name, obs.SpanRPCGrant, grantStart, grantRPC[i]))
			}
		}
		c.emitCodecSpans(at, passID)
		sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanPass, "", time.Since(passStart).Seconds()))
	}

	c.clock.Tick()
	return nil
}

// Run drives hierarchical rounds until the root epoch reaches t seconds.
func (r *Root) Run(until float64) error {
	for r.clock.Now() < until {
		if err := r.RunRound(); err != nil {
			return err
		}
	}
	return nil
}
