package netcluster

import (
	"time"

	"repro/internal/obs"
	"repro/internal/units"
)

// RPCLatencyBuckets span loopback microbenchmarks through WAN retries.
var RPCLatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// Metrics instruments the coordinator's transport: per-node RPC latency,
// retry/timeout/failure counts, reconnections, the degraded-node gauge
// and the charged-power decomposition. It aggregates into an
// obs.Registry, so it can share an exposition endpoint with the
// scheduling metrics of obs.Metrics.
type Metrics struct {
	Registry *obs.Registry

	rpcLatency  *obs.HistogramVec // node, kind
	retries     *obs.CounterVec   // node, kind
	timeouts    *obs.CounterVec   // node, kind
	failures    *obs.CounterVec   // node, kind
	reconnects  *obs.CounterVec   // node
	transitions *obs.CounterVec   // node, transition
	degraded    *obs.Gauge
	charged     *obs.Gauge
	reserved    *obs.Gauge
}

// NewMetrics builds the instrument set over a fresh registry.
func NewMetrics() *Metrics { return NewMetricsInto(obs.NewRegistry()) }

// NewMetricsInto builds the instrument set aggregating into r.
func NewMetricsInto(r *obs.Registry) *Metrics {
	return &Metrics{
		Registry: r,
		rpcLatency: r.Histogram("netcluster_rpc_latency_seconds",
			"Wall-clock latency of successful RPCs, including retries.", RPCLatencyBuckets, "node", "kind"),
		retries: r.Counter("netcluster_rpc_retries_total",
			"RPC attempts beyond the first.", "node", "kind"),
		timeouts: r.Counter("netcluster_rpc_timeouts_total",
			"RPC attempts that hit the per-attempt deadline.", "node", "kind"),
		failures: r.Counter("netcluster_rpc_failures_total",
			"RPCs that exhausted every attempt.", "node", "kind"),
		reconnects: r.Counter("netcluster_reconnects_total",
			"Connection (re-)establishments, including the first.", "node"),
		transitions: r.Counter("netcluster_node_transitions_total",
			"Degrade/rejoin transitions.", "node", "transition"),
		degraded: r.Gauge("netcluster_degraded_nodes",
			"Nodes currently charged worst-case power for silence.").With(),
		charged: r.Gauge("netcluster_charged_power_watts",
			"Power held against the budget after the last pass (live + reserved).").With(),
		reserved: r.Gauge("netcluster_reserved_power_watts",
			"Worst-case reservation for degraded nodes after the last pass.").With(),
	}
}

// nil-safe instrument helpers: the coordinator calls these
// unconditionally; a nil *Metrics disables instrumentation the same way a
// nil Sink disables tracing.

func (m *Metrics) observeRPC(node, kind string, d time.Duration) {
	if m == nil {
		return
	}
	m.rpcLatency.With(node, kind).Observe(d.Seconds())
}

func (m *Metrics) countRetry(node, kind string) {
	if m == nil {
		return
	}
	m.retries.With(node, kind).Inc()
}

func (m *Metrics) countTimeout(node, kind string) {
	if m == nil {
		return
	}
	m.timeouts.With(node, kind).Inc()
}

func (m *Metrics) countFailure(node, kind string) {
	if m == nil {
		return
	}
	m.failures.With(node, kind).Inc()
}

func (m *Metrics) countReconnect(node string) {
	if m == nil {
		return
	}
	m.reconnects.With(node).Inc()
}

func (m *Metrics) countTransition(node, transition string) {
	if m == nil {
		return
	}
	m.transitions.With(node, transition).Inc()
}

func (m *Metrics) setDegraded(n int) {
	if m == nil {
		return
	}
	m.degraded.Set(float64(n))
}

func (m *Metrics) setCharged(charged, reserved units.Power) {
	if m == nil {
		return
	}
	m.charged.Set(charged.W())
	m.reserved.Set(reserved.W())
}
