package netcluster

import (
	"time"

	"repro/internal/netcluster/wire"
	"repro/internal/obs"
	"repro/internal/units"
)

// RPCLatencyBuckets span loopback microbenchmarks through WAN retries.
var RPCLatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// Metrics instruments the coordinator's transport: per-node RPC latency,
// retry/timeout/failure counts, reconnections, the degraded-node gauge
// and the charged-power decomposition. It aggregates into an
// obs.Registry, so it can share an exposition endpoint with the
// scheduling metrics of obs.Metrics.
type Metrics struct {
	Registry *obs.Registry

	rpcLatency  *obs.HistogramVec // node, kind
	retries     *obs.CounterVec   // node, kind
	timeouts    *obs.CounterVec   // node, kind
	failures    *obs.CounterVec   // node, kind
	reconnects  *obs.CounterVec   // node
	transitions *obs.CounterVec   // node, transition
	degraded    *obs.Gauge
	charged     *obs.Gauge
	reserved    *obs.Gauge
	wireFrames  *obs.GaugeVec // codec, direction
	wireBytes   *obs.GaugeVec // direction
	wireCodecNs *obs.GaugeVec // op
	wireReports *obs.GaugeVec // mode, direction
}

// NewMetrics builds the instrument set over a fresh registry.
func NewMetrics() *Metrics { return NewMetricsInto(obs.NewRegistry()) }

// NewMetricsInto builds the instrument set aggregating into r.
func NewMetricsInto(r *obs.Registry) *Metrics {
	return &Metrics{
		Registry: r,
		rpcLatency: r.Histogram("netcluster_rpc_latency_seconds",
			"Wall-clock latency of successful RPCs, including retries.", RPCLatencyBuckets, "node", "kind"),
		retries: r.Counter("netcluster_rpc_retries_total",
			"RPC attempts beyond the first.", "node", "kind"),
		timeouts: r.Counter("netcluster_rpc_timeouts_total",
			"RPC attempts that hit the per-attempt deadline.", "node", "kind"),
		failures: r.Counter("netcluster_rpc_failures_total",
			"RPCs that exhausted every attempt.", "node", "kind"),
		reconnects: r.Counter("netcluster_reconnects_total",
			"Connection (re-)establishments, including the first.", "node"),
		transitions: r.Counter("netcluster_node_transitions_total",
			"Degrade/rejoin transitions.", "node", "transition"),
		degraded: r.Gauge("netcluster_degraded_nodes",
			"Nodes currently charged worst-case power for silence.").With(),
		charged: r.Gauge("netcluster_charged_power_watts",
			"Power held against the budget after the last pass (live + reserved).").With(),
		reserved: r.Gauge("netcluster_reserved_power_watts",
			"Worst-case reservation for degraded nodes after the last pass.").With(),
		wireFrames: r.Gauge("netcluster_wire_frames_total",
			"Cumulative frames by payload codec and direction.", "codec", "direction"),
		wireBytes: r.Gauge("netcluster_wire_bytes_total",
			"Cumulative framed bytes by direction.", "direction"),
		wireCodecNs: r.Gauge("netcluster_wire_codec_nanoseconds_total",
			"Cumulative binary codec time by operation.", "op"),
		wireReports: r.Gauge("netcluster_wire_counter_reports_total",
			"Cumulative counter reports by encoding mode and direction.", "mode", "direction"),
	}
}

// nil-safe instrument helpers: the coordinator calls these
// unconditionally; a nil *Metrics disables instrumentation the same way a
// nil Sink disables tracing.

func (m *Metrics) observeRPC(node, kind string, d time.Duration) {
	if m == nil {
		return
	}
	m.rpcLatency.With(node, kind).Observe(d.Seconds())
}

func (m *Metrics) countRetry(node, kind string) {
	if m == nil {
		return
	}
	m.retries.With(node, kind).Inc()
}

func (m *Metrics) countTimeout(node, kind string) {
	if m == nil {
		return
	}
	m.timeouts.With(node, kind).Inc()
}

func (m *Metrics) countFailure(node, kind string) {
	if m == nil {
		return
	}
	m.failures.With(node, kind).Inc()
}

func (m *Metrics) countReconnect(node string) {
	if m == nil {
		return
	}
	m.reconnects.With(node).Inc()
}

func (m *Metrics) countTransition(node, transition string) {
	if m == nil {
		return
	}
	m.transitions.With(node, transition).Inc()
}

func (m *Metrics) setDegraded(n int) {
	if m == nil {
		return
	}
	m.degraded.Set(float64(n))
}

func (m *Metrics) setCharged(charged, reserved units.Power) {
	if m == nil {
		return
	}
	m.charged.Set(charged.W())
	m.reserved.Set(reserved.W())
}

// setWire publishes the fan-out's cumulative codec counters. The stats
// are monotone atomics shared by every connection, so gauges carrying the
// latest snapshot behave like counters to a scraper.
func (m *Metrics) setWire(st *wire.Stats) {
	if m == nil || st == nil {
		return
	}
	s := st.Snapshot()
	m.wireFrames.With("bin1", "out").Set(float64(s.BinFramesOut))
	m.wireFrames.With("bin1", "in").Set(float64(s.BinFramesIn))
	m.wireFrames.With("json", "out").Set(float64(s.JSONFramesOut))
	m.wireFrames.With("json", "in").Set(float64(s.JSONFramesIn))
	m.wireBytes.With("out").Set(float64(s.BytesOut))
	m.wireBytes.With("in").Set(float64(s.BytesIn))
	m.wireCodecNs.With("encode").Set(float64(s.EncodeNanos))
	m.wireCodecNs.With("decode").Set(float64(s.DecodeNanos))
	m.wireReports.With("full", "out").Set(float64(s.FullOut))
	m.wireReports.With("delta", "out").Set(float64(s.DeltaOut))
	m.wireReports.With("full", "in").Set(float64(s.FullIn))
	m.wireReports.With("delta", "in").Set(float64(s.DeltaIn))
}
