package netcluster

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/netcluster/faultnet"
	"repro/internal/netcluster/proto"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

func quietMachineConfig(seed int64) machine.Config {
	cfg := machine.P630Config()
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	cfg.Seed = seed
	return cfg
}

func testFvsst() fvsst.Config {
	cfg := fvsst.DefaultConfig()
	cfg.Overhead = fvsst.Overhead{}
	cfg.UseIdleSignal = true
	return cfg
}

func cpuProg(instr uint64) workload.Program {
	return workload.Program{Name: "cpu", Phases: []workload.Phase{{
		Name: "c", Alpha: 1.4, Instructions: instr,
	}}}
}

func memProg(instr uint64) workload.Program {
	return workload.Program{Name: "mem", Phases: []workload.Phase{{
		Name: "m", Alpha: 1.1,
		Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.0186},
		Instructions: instr,
	}}}
}

// startAgent spins up an agent on loopback whose CPU 0 runs a cpu-bound
// and CPU 1 a memory-bound endless program.
func startAgent(t *testing.T, name string, seed int64, lease time.Duration, sink obs.Sink) (*Agent, *machine.Machine) {
	t.Helper()
	m, err := machine.New(quietMachineConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	for cpu, prog := range map[int]workload.Program{0: cpuProg(1e12), 1: memProg(1e12)} {
		mix, err := workload.NewMix(prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			t.Fatal(err)
		}
	}
	a, err := NewAgent(AgentConfig{Name: name, M: m, FailsafeLease: lease, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a, m
}

// fastRetry makes transport failures cheap in wall-clock terms.
func fastRetry(cfg *Config) {
	cfg.RPCTimeout = 50 * time.Millisecond
	cfg.Retries = 1
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 2 * time.Millisecond
}

func TestBackoffDelay(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 12; attempt++ {
		want := base << attempt
		if want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 50; i++ {
			d := backoffDelay(attempt, base, max, rng)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// Same seed, same sequence.
	r1, r2 := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		if a, b := backoffDelay(i%4, base, max, r1), backoffDelay(i%4, base, max, r2); a != b {
			t.Fatalf("draw %d: %v vs %v from the same seed", i, a, b)
		}
	}
	if d := backoffDelay(3, 0, 0, rng); d != 0 {
		t.Errorf("zero base/max gave %v", d)
	}
}

func TestRoundTripScheduling(t *testing.T) {
	a0, m0 := startAgent(t, "n0", 1, 0, nil)
	a1, m1 := startAgent(t, "n1", 2, 0, nil)
	sink := &obs.Buffer{}
	met := NewMetrics()
	c, err := NewCoordinator(Config{
		Fvsst:   testFvsst(),
		Budget:  units.Watts(500),
		Seed:    1,
		Sink:    sink,
		Metrics: met,
	}, NodeSpec{Name: "n0", Addr: a0.Addr()}, NodeSpec{Name: "n1", Addr: a1.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const rounds = 5
	for i := 0; i < rounds; i++ {
		if err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	decs := c.Decisions()
	if len(decs) != rounds {
		t.Fatalf("%d decisions after %d rounds", len(decs), rounds)
	}
	for _, d := range decs {
		if !d.BudgetMet || d.Charged > d.Budget {
			t.Errorf("t=%v charged %v against budget %v", d.At, d.Charged, d.Budget)
		}
		if d.Reserved != 0 || len(d.Degraded) != 0 {
			t.Errorf("t=%v healthy cluster reserved %v for %v", d.At, d.Reserved, d.Degraded)
		}
	}
	// The coordinator epoch and both node clocks advanced in lockstep:
	// one period of SchedulePeriods quanta per round.
	wantNow := float64(rounds) * c.clock.Quantum()
	if c.Now() != wantNow {
		t.Errorf("coordinator at %v, want %v", c.Now(), wantNow)
	}
	status := c.Status()
	c.Close()
	a0.Close()
	a1.Close()
	for i, m := range []*machine.Machine{m0, m1} {
		if got := m.Now(); got < wantNow-1e-9 || got > wantNow+1e-9 {
			t.Errorf("node %d clock at %v, want %v", i, got, wantNow)
		}
	}
	// The last acknowledged actuation matches what the machines run.
	for i, m := range []*machine.Machine{m0, m1} {
		if status[i].LastActuation == nil {
			t.Fatalf("node %d never actuated", i)
		}
		for cpu, want := range status[i].LastActuation {
			if got := m.EffectiveFrequency(cpu); got != want {
				t.Errorf("node %d cpu %d at %v, actuated %v", i, cpu, got, want)
			}
		}
	}
	if n := sink.Count(obs.EventSchedule, ""); n != rounds {
		t.Errorf("%d schedule events, want %d", n, rounds)
	}
	if v := met.rpcLatency.With("n0", proto.KindCounterRequest).Count(); v == 0 {
		t.Error("no counter-request latency observations")
	}
	if v := met.failures.With("n0", proto.KindHeartbeat).Value(); v != 0 {
		t.Errorf("healthy run recorded %v heartbeat failures", v)
	}
}

func TestAgentErrorIsTerminal(t *testing.T) {
	a0, _ := startAgent(t, "n0", 1, 0, nil)
	met := NewMetrics()
	cfg := Config{Fvsst: testFvsst(), Budget: units.Watts(500), Metrics: met}
	fastRetry(&cfg)
	c, err := NewCoordinator(cfg, NodeSpec{Name: "n0", Addr: a0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A malformed actuation is rejected by the agent; the coordinator
	// must surface it as an AgentError without burning retries or the
	// connection.
	ns := c.nodes[0]
	_, _, err = c.rpc(ns, proto.KindActuate, func(id uint64) *proto.Message {
		return &proto.Message{Kind: proto.KindActuate, ID: id, Actuate: &proto.Actuate{FreqsMHz: []float64{1000}}}
	})
	var ae *AgentError
	if !errors.As(err, &ae) {
		t.Fatalf("got %v, want AgentError", err)
	}
	if v := met.retries.With("n0", proto.KindActuate).Value(); v != 0 {
		t.Errorf("semantic rejection burned %v retries", v)
	}
	if ns.conn == nil {
		t.Fatal("semantic rejection cost the connection")
	}
	if _, _, err := c.rpc(ns, proto.KindHeartbeat, func(id uint64) *proto.Message {
		return &proto.Message{Kind: proto.KindHeartbeat, ID: id}
	}); err != nil {
		t.Fatalf("heartbeat after rejection: %v", err)
	}
	if v := met.reconnects.With("n0").Value(); v != 1 {
		t.Errorf("%v connects; the session should have survived", v)
	}
}

func TestConnectTimesOutOnMuteServer(t *testing.T) {
	// A listener that accepts and then says nothing: hello must hit the
	// per-attempt deadline, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	cfg := Config{Fvsst: testFvsst(), Budget: units.Watts(500)}
	fastRetry(&cfg)
	c, err := NewCoordinator(cfg, NodeSpec{Name: "mute", Addr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Connect(); err == nil {
		t.Fatal("connected to a mute server")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("mute connect took %v; deadline did not bound it", elapsed)
	}
}

func TestTimeoutRetryAndRecovery(t *testing.T) {
	a0, _ := startAgent(t, "n0", 1, 0, nil)
	fabric := faultnet.New(3)
	met := NewMetrics()
	cfg := Config{Fvsst: testFvsst(), Budget: units.Watts(500), Dialer: fabric, Metrics: met, MissK: 3}
	fastRetry(&cfg)
	cfg.RPCTimeout = 30 * time.Millisecond
	c, err := NewCoordinator(cfg, NodeSpec{Name: "n0", Addr: a0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One healthy round establishes an acknowledged actuation — the
	// node's charge while silent.
	if err := c.RunRound(); err != nil {
		t.Fatal(err)
	}
	// Black-hole every frame: the heartbeat times out, the retry's
	// redial+hello times out too, and the round charges the node.
	fabric.SetPolicy("n0", faultnet.Policy{DropProb: 1})
	if err := c.RunRound(); err != nil {
		t.Fatal(err)
	}
	if v := met.timeouts.With("n0", proto.KindHeartbeat).Value(); v < 1 {
		t.Errorf("%v timeouts recorded", v)
	}
	if v := met.retries.With("n0", proto.KindHeartbeat).Value(); v < 1 {
		t.Errorf("%v retries recorded", v)
	}
	if v := met.failures.With("n0", proto.KindHeartbeat).Value(); v != 1 {
		t.Errorf("%v failures recorded", v)
	}
	if d := c.Decisions()[1]; d.Reserved == 0 || d.Charged > d.Budget {
		t.Errorf("silent node not charged: reserved %v, charged %v/%v", d.Reserved, d.Charged, d.Budget)
	}

	// Faults lifted: the next round reconnects and schedules normally.
	fabric.SetPolicy("n0", faultnet.Policy{})
	if err := c.RunRound(); err != nil {
		t.Fatal(err)
	}
	if d := c.Decisions()[2]; d.Reserved != 0 || !d.BudgetMet {
		t.Errorf("recovered round still reserves %v", d.Reserved)
	}
	if v := met.reconnects.With("n0").Value(); v < 2 {
		t.Errorf("%v connects; recovery should have redialled", v)
	}
	if st := c.Status()[0]; st.Degraded || st.Missed != 0 {
		t.Errorf("recovered node still marked %+v", st)
	}
}

func TestDuplicatedFramesAreDiscarded(t *testing.T) {
	a0, _ := startAgent(t, "n0", 1, 0, nil)
	fabric := faultnet.New(5)
	// Every request is transmitted twice: the agent answers twice with
	// the same ID, and the coordinator must discard the echoes instead of
	// mistaking them for later responses.
	fabric.SetPolicy("n0", faultnet.Policy{DupProb: 1})
	cfg := Config{Fvsst: testFvsst(), Budget: units.Watts(500), Dialer: fabric}
	fastRetry(&cfg)
	c, err := NewCoordinator(cfg, NodeSpec{Name: "n0", Addr: a0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range c.Decisions() {
		if !d.BudgetMet || d.Reserved != 0 {
			t.Errorf("t=%v under duplication: charged %v/%v, reserved %v", d.At, d.Charged, d.Budget, d.Reserved)
		}
	}
}

// TestPartitionDegradeRejoinBudgetSafety is the acceptance scenario in
// miniature: three nodes, the budget drops 900 W → 600 W while one node
// is partitioned, and the invariant under test is that the power charged
// against the budget — live assignments plus the worst-case reservation
// for the silent node — never exceeds it.
func TestPartitionDegradeRejoinBudgetSafety(t *testing.T) {
	sink := &obs.Buffer{}
	a0, _ := startAgent(t, "n0", 1, 0, nil)
	a1, _ := startAgent(t, "n1", 2, 0, nil)
	a2, _ := startAgent(t, "n2", 3, 0, nil)
	fabric := faultnet.New(9)
	budgets, err := power.NewBudgetSchedule(units.Watts(900),
		power.BudgetEvent{At: 0.25, Budget: units.Watts(600)})
	if err != nil {
		t.Fatal(err)
	}
	met := NewMetrics()
	cfg := Config{
		Fvsst:   testFvsst(),
		Budget:  units.Watts(900),
		Budgets: budgets,
		MissK:   2,
		Seed:    9,
		Dialer:  fabric,
		Sink:    sink,
		Metrics: met,
	}
	fastRetry(&cfg)
	c, err := NewCoordinator(cfg,
		NodeSpec{Name: "n0", Addr: a0.Addr()},
		NodeSpec{Name: "n1", Addr: a1.Addr()},
		NodeSpec{Name: "n2", Addr: a2.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	run := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := c.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(2) // healthy at 900 W
	fabric.Partition("n1")
	run(3) // misses accumulate; budget drops to 600 W mid-partition
	st := c.Status()[1]
	if !st.Degraded {
		t.Fatalf("n1 not degraded after %d missed rounds: %+v", st.Missed, st)
	}
	maxCharge := units.Watts(4 * 140)
	if st.ChargedIfSilent <= 0 || st.ChargedIfSilent >= maxCharge {
		t.Errorf("silent charge %v; want a real last actuation below the %v table max", st.ChargedIfSilent, maxCharge)
	}
	fabric.Heal("n1")
	run(2) // rejoin and reschedule

	decs := c.Decisions()
	if len(decs) != 7 {
		t.Fatalf("%d decisions", len(decs))
	}
	sawDegraded := false
	for _, d := range decs {
		if d.Charged > d.Budget {
			t.Errorf("t=%v charged %v over budget %v (reserved %v, degraded %v)",
				d.At, d.Charged, d.Budget, d.Reserved, d.Degraded)
		}
		if len(d.Degraded) > 0 {
			sawDegraded = true
			if d.Degraded[0] != "n1" || d.Reserved == 0 {
				t.Errorf("t=%v degraded %v reserved %v", d.At, d.Degraded, d.Reserved)
			}
		}
	}
	if !sawDegraded {
		t.Error("no decision recorded the degraded node")
	}
	if decs[0].Budget != units.Watts(900) || decs[6].Budget != units.Watts(600) {
		t.Errorf("budget trajectory %v → %v", decs[0].Budget, decs[6].Budget)
	}
	if decs[3].Trigger != "budget-change" {
		t.Errorf("round at t=%v triggered by %q", decs[3].At, decs[3].Trigger)
	}

	// Trace: one degrade, one rejoin, in that order, both naming n1.
	var transitions []obs.Event
	for _, e := range sink.Events() {
		if e.Type == obs.EventDegrade || e.Type == obs.EventRejoin {
			transitions = append(transitions, e)
		}
	}
	if len(transitions) != 2 || transitions[0].Type != obs.EventDegrade || transitions[1].Type != obs.EventRejoin {
		t.Fatalf("transition trace %+v", transitions)
	}
	for _, e := range transitions {
		if e.Node != "n1" {
			t.Errorf("%s event names %q", e.Type, e.Node)
		}
	}
	if st := c.Status()[1]; st.Degraded || !st.Connected {
		t.Errorf("n1 did not rejoin: %+v", st)
	}
	if v := met.transitions.With("n1", "degrade").Value(); v != 1 {
		t.Errorf("%v degrade transitions", v)
	}
	if v := met.transitions.With("n1", "rejoin").Value(); v != 1 {
		t.Errorf("%v rejoin transitions", v)
	}

	// A partitioned node's simulation clock froze: it only advances when
	// the coordinator polls it, so it ends behind the healthy nodes.
	if a1.Now() >= a0.Now() {
		t.Errorf("partitioned node clock %v did not freeze (healthy at %v)", a1.Now(), a0.Now())
	}
}

func TestConnectRejectsQuantumMismatch(t *testing.T) {
	a0, _ := startAgent(t, "n0", 1, 0, nil)
	mcfg := quietMachineConfig(2)
	mcfg.Quantum = 0.005
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	odd, err := NewAgent(AgentConfig{Name: "odd", M: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := odd.Start(); err != nil {
		t.Fatal(err)
	}
	defer odd.Close()
	c, err := NewCoordinator(Config{Fvsst: testFvsst(), Budget: units.Watts(500)},
		NodeSpec{Name: "n0", Addr: a0.Addr()}, NodeSpec{Name: "odd", Addr: odd.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Connect(); err == nil {
		t.Fatal("mixed-quantum cluster accepted")
	}
}

func TestAgentFailsafeFloorsCPUs(t *testing.T) {
	sink := &obs.Buffer{}
	a, m := startAgent(t, "n0", 1, 60*time.Millisecond, sink)
	deadline := time.Now().Add(2 * time.Second)
	for !a.FailsafeTripped() {
		if time.Now().After(deadline) {
			t.Fatal("failsafe never tripped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.Close()
	fMin := m.Config().Table.MinFrequency()
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		if got := m.EffectiveFrequency(cpu); got != fMin {
			t.Errorf("cpu %d at %v after failsafe, want floor %v", cpu, got, fMin)
		}
	}
	found := false
	for _, e := range sink.Events() {
		if e.Type == obs.EventFailsafe && e.Node == "n0" {
			found = true
		}
	}
	if !found {
		t.Error("no failsafe trace event")
	}
}
