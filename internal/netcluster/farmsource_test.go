package netcluster

import (
	"testing"

	"repro/internal/farm"
	"repro/internal/power"
	"repro/internal/units"
)

// TestBudgetSourceDrivesRounds: a farm.BudgetSource plugged into the
// networked coordinator fires the budget-change trigger, and it wins over
// the legacy Budgets schedule when both are set.
func TestBudgetSourceDrivesRounds(t *testing.T) {
	a0, _ := startAgent(t, "n0", 1, 0, nil)
	// A decoy schedule that would drop to 300 W — Source must shadow it.
	decoy, err := power.NewBudgetSchedule(units.Watts(900),
		power.BudgetEvent{At: 0, Budget: units.Watts(300)})
	if err != nil {
		t.Fatal(err)
	}
	src, err := farm.ParseScheduleSpec("900,0.1:600")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Fvsst:   testFvsst(),
		Budget:  units.Watts(900),
		Budgets: decoy,
		Source:  src,
		Seed:    5,
	}
	fastRetry(&cfg)
	c, err := NewCoordinator(cfg, NodeSpec{Name: "n0", Addr: a0.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if err := c.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	decs := c.Decisions()
	if len(decs) != 4 {
		t.Fatalf("%d decisions", len(decs))
	}
	if got := decs[0].Budget; got.W() != 900 {
		t.Errorf("first round budget %v, want the source's 900W (not the decoy schedule's 300W)", got)
	}
	last := decs[len(decs)-1]
	if got := last.Budget; got.W() != 600 {
		t.Errorf("late round budget %v, want the source's 600W step", got)
	}
	sawChange := false
	for _, d := range decs {
		if d.Trigger == "budget-change" {
			sawChange = true
		}
	}
	if !sawChange {
		t.Error("no budget-change round despite the source stepping 900→600")
	}
}
