package netcluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/farm"
	"repro/internal/fvsst"
	"repro/internal/netcluster/proto"
	"repro/internal/netcluster/wire"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// NodeSpec addresses one agent.
type NodeSpec struct {
	Name string
	Addr string
}

// Dialer opens message connections to agents. The default dials TCP;
// faultnet.Network implements Dialer to inject partitions and faults.
type Dialer interface {
	Dial(node, addr string, timeout time.Duration) (proto.Conn, error)
}

// TCPDialer is the production dialer. Its connections speak JSON until
// the coordinator negotiates the binary codec (Config.Codec).
type TCPDialer struct {
	// Stats, when non-nil, accumulates wire codec counters across every
	// dialled connection.
	Stats *wire.Stats
}

// Dial connects over TCP.
func (d TCPDialer) Dial(node, addr string, timeout time.Duration) (proto.Conn, error) {
	return wire.DialStats(addr, timeout, d.Stats)
}

// Config parameterises the networked coordinator.
type Config struct {
	// Name identifies the coordinator in hello messages.
	Name string
	// Fvsst is the shared scheduling configuration (table, ε, periods).
	Fvsst fvsst.Config
	// Budget is the initial global processor power budget.
	Budget units.Power
	// Budgets optionally drives the budget over time (supply failures,
	// site capping).
	Budgets *power.BudgetSchedule
	// Source optionally drives the budget from a farm-layer budget source
	// (a lease Holder, a UPS runway governor). It wins over Budgets when
	// both are set, so farm plumbing can wrap an existing schedule via
	// farm.FromSchedule without touching the older field.
	Source farm.BudgetSource
	// MissK is how many consecutive failed rounds mark a node degraded.
	// Degraded or not, an unreachable node is always charged its
	// worst-case-under-silence power; MissK only gates the degrade
	// transition reported to operators. Default 3.
	MissK int
	// RPCTimeout bounds each RPC attempt. Default 500 ms.
	RPCTimeout time.Duration
	// DialTimeout bounds connection establishment. Defaults to RPCTimeout.
	DialTimeout time.Duration
	// Retries is how many times an RPC is retried after the first
	// attempt, with exponential backoff and jitter between attempts.
	// Default 2.
	Retries int
	// BackoffBase/BackoffMax bound the retry backoff. Defaults 10 ms and
	// 250 ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed feeds the backoff jitter; node i draws from an independent
	// stream seeded Seed+i (the repo's shared convention: one scenario
	// seed, fixed offsets per derived stream).
	Seed int64
	// Dialer defaults to TCPDialer.
	Dialer Dialer
	// Codec selects the hot-message payload encoding: "" or "json" for
	// the inspectable default, wire.CodecName to negotiate the binary
	// codec per node at hello time (nodes that do not advertise it keep
	// speaking JSON — a mixed fleet is fine).
	Codec string
	// WireStats, when non-nil, is read each round to emit per-pass
	// encode/decode spans and codec gauges. Point it at the same Stats
	// the Dialer's connections share (e.g. TCPDialer.Stats).
	WireStats *wire.Stats
	// Sink receives schedule, quantum and degrade/rejoin trace events.
	Sink obs.Sink
	// Metrics instruments the transport; nil disables.
	Metrics *Metrics
}

func (c *Config) applyDefaults() {
	if c.Name == "" {
		c.Name = "coordinator"
	}
	if c.MissK == 0 {
		c.MissK = 3
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 500 * time.Millisecond
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = c.RPCTimeout
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.Dialer == nil {
		c.Dialer = TCPDialer{}
	}
}

// AgentError is a structured failure the agent returned (malformed
// request, rejected actuation). It is terminal for the RPC — retrying the
// same request would fail the same way — and does not cost the
// connection.
type AgentError struct {
	Node   string
	Reason string
}

func (e *AgentError) Error() string {
	return fmt.Sprintf("netcluster: agent %s: %s", e.Node, e.Reason)
}

// nodeState is the coordinator's view of one agent. During a round it is
// touched only by that node's poll goroutine; between phases access is
// single-threaded.
type nodeState struct {
	spec     NodeSpec
	conn     proto.Conn
	caps     *proto.Capabilities
	missed   int
	degraded bool
	// lastFreqs is the last acknowledged actuation — the most the node
	// can draw while silent, since settings only change on actuation
	// (the agent failsafe can only lower them). Nil until first ack.
	lastFreqs []units.Frequency
	// lastCharged/granted are the relay-tier analogue of lastFreqs: the
	// subtree charge a relay acknowledged on its last grant. A silent
	// relay's children cannot raise their settings without grants flowing
	// through it, so the frozen subtree can draw at most lastCharged.
	lastCharged units.Power
	granted     bool
	rng         *rand.Rand
	reqID       uint64
}

// NodeStatus is a point-in-time external view of one node.
type NodeStatus struct {
	Name      string
	Connected bool
	Degraded  bool
	Missed    int
	// LastActuation is the last acknowledged per-CPU assignment (nil
	// before the first ack).
	LastActuation []units.Frequency
	// ChargedIfSilent is what the coordinator would hold against the
	// budget were the node to go silent now.
	ChargedIfSilent units.Power
}

// Decision is one networked scheduling round.
type Decision struct {
	At      float64
	Trigger string
	Budget  units.Power
	// TablePower is the live nodes' assigned table power.
	TablePower units.Power
	// Reserved is the worst-case charge held for unreachable nodes.
	Reserved units.Power
	// Charged is the total held against the budget: acknowledged live
	// assignments plus Reserved.
	Charged units.Power
	// BudgetMet reports Charged ≤ Budget.
	BudgetMet bool
	// Degraded lists nodes currently marked degraded.
	Degraded    []string
	Assignments []cluster.Assignment
	// NodeCharged is the per-node charge in node order: the acknowledged
	// assignment's table power for acked nodes, the worst case under
	// silence for the rest. Charged is their order-preserving sum, which
	// lets a hierarchical driver reproduce the flat ledger's float
	// accumulation exactly.
	NodeCharged []units.Power
	// Acked reports, per node, whether this round's actuation was
	// acknowledged.
	Acked []bool
}

// Coordinator runs the global two-step fvsst pass over the wire. Create
// with NewCoordinator, then Connect, then drive rounds with Run or
// RunRound. Not safe for concurrent use.
type Coordinator struct {
	cfg    Config
	core   *cluster.Core
	nodes  []*nodeState
	budget units.Power
	// clock is the coordinator's scheduling epoch: rounds × period,
	// advanced one period per RunRound (engine.SimClock replaces the old
	// hand-rolled now/period accumulator). Nodes that miss rounds freeze
	// behind it and catch up in wall-clock (not simulated) terms only; the
	// budget ledger uses coordinator time.
	clock     *engine.SimClock
	quantum   float64
	decisions []Decision
	// passID counts rounds from the engine clock epoch (round k runs at
	// epoch time (k−1)·T); it stamps the round's schedule event and spans
	// and rides the wire as proto.TraceContext.
	passID uint64
	// lastWire is the previous round's codec counter snapshot, so the
	// encode/decode spans report per-pass deltas of the cumulative stats.
	lastWire wire.StatsSnapshot
}

// NewCoordinator validates the configuration and prepares (but does not
// connect) the control plane.
func NewCoordinator(cfg Config, specs ...NodeSpec) (*Coordinator, error) {
	cfg.applyDefaults()
	core, err := cluster.NewCore(cfg.Fvsst)
	if err != nil {
		return nil, err
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("netcluster: budget %v must be positive", cfg.Budget)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("netcluster: at least one node required")
	}
	if cfg.MissK < 1 {
		return nil, fmt.Errorf("netcluster: miss threshold %d must be ≥ 1", cfg.MissK)
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("netcluster: negative retries")
	}
	switch cfg.Codec {
	case "", "json", wire.CodecName:
	default:
		return nil, fmt.Errorf("netcluster: unknown codec %q", cfg.Codec)
	}
	seen := make(map[string]bool, len(specs))
	nodes := make([]*nodeState, len(specs))
	for i, s := range specs {
		if s.Name == "" || s.Addr == "" {
			return nil, fmt.Errorf("netcluster: node %d needs name and address", i)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("netcluster: duplicate node name %q", s.Name)
		}
		seen[s.Name] = true
		nodes[i] = &nodeState{
			spec: s,
			rng:  rand.New(rand.NewSource(cfg.Seed + int64(i))),
		}
	}
	// Phase timing (the step-span breakdown) is only worth the clock reads
	// when a sink will see the spans.
	core.SetPhaseTiming(cfg.Sink != nil)
	return &Coordinator{cfg: cfg, core: core, nodes: nodes, budget: cfg.Budget, clock: engine.NewSimClock(0)}, nil
}

// Connect establishes every node's session. Initial connection is strict
// — a cluster that starts partially up is a deployment error — while
// failures after Connect are tolerated and charged.
func (c *Coordinator) Connect() error {
	for _, ns := range c.nodes {
		if err := c.ensureConn(ns); err != nil {
			return err
		}
	}
	// The round period is only known once the nodes report their dispatch
	// quantum; re-arm the epoch clock at the same (zero) time with the
	// per-round advance.
	c.clock = engine.NewSimClock(float64(c.cfg.Fvsst.SchedulePeriods) * c.quantum)
	return nil
}

// Close tears down every connection.
func (c *Coordinator) Close() {
	for _, ns := range c.nodes {
		if ns.conn != nil {
			ns.conn.Close()
			ns.conn = nil
		}
	}
}

// Now returns the coordinator's scheduling epoch in seconds.
func (c *Coordinator) Now() float64 { return c.clock.Now() }

// Budget returns the current global budget.
func (c *Coordinator) Budget() units.Power { return c.budget }

// Decisions returns the round log.
func (c *Coordinator) Decisions() []Decision {
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// Status reports the coordinator's current view of every node.
func (c *Coordinator) Status() []NodeStatus {
	out := make([]NodeStatus, len(c.nodes))
	for i, ns := range c.nodes {
		st := NodeStatus{
			Name:      ns.spec.Name,
			Connected: ns.conn != nil,
			Degraded:  ns.degraded,
			Missed:    ns.missed,
		}
		if ns.lastFreqs != nil {
			st.LastActuation = append([]units.Frequency(nil), ns.lastFreqs...)
		}
		if ns.caps != nil {
			st.ChargedIfSilent = c.worstCharge(ns)
		}
		out[i] = st
	}
	return out
}

// worstCharge is the power held against the budget for a silent node: the
// table power of its last acknowledged actuation (settings cannot rise
// without a new actuation), or every CPU at the table maximum when the
// node was never actuated.
func (c *Coordinator) worstCharge(ns *nodeState) units.Power {
	if ns.lastFreqs != nil {
		if p, err := fvsst.TotalTablePower(ns.lastFreqs, c.cfg.Fvsst.Table); err == nil {
			return p
		}
	}
	return units.Watts(float64(ns.caps.NumCPUs) * ns.caps.MaxPowerW)
}

// ensureConn dials and re-runs the hello handshake if the node has no
// live session. On a rejoin the fresh capabilities re-sync the
// coordinator's view (a swapped machine invalidates the last actuation).
func (c *Coordinator) ensureConn(ns *nodeState) error {
	if ns.conn != nil {
		return nil
	}
	conn, err := c.cfg.Dialer.Dial(ns.spec.Name, ns.spec.Addr, c.cfg.DialTimeout)
	if err != nil {
		return err
	}
	wantBinary := c.cfg.Codec == wire.CodecName
	hello := &proto.Hello{Coordinator: c.cfg.Name}
	if wantBinary {
		hello.Codecs = []string{"json", wire.CodecName}
	}
	ns.reqID++
	resp, err := c.exchange(conn, ns.spec.Name, &proto.Message{
		Kind:  proto.KindHello,
		ID:    ns.reqID,
		Hello: hello,
	})
	if err != nil {
		conn.Close()
		return err
	}
	if resp.Kind != proto.KindHelloAck || resp.Capabilities == nil {
		conn.Close()
		return fmt.Errorf("netcluster: %s answered hello with %q", ns.spec.Name, resp.Kind)
	}
	caps := *resp.Capabilities
	if err := c.validateCaps(ns, caps); err != nil {
		conn.Close()
		return err
	}
	if ns.caps != nil && ns.caps.NumCPUs != caps.NumCPUs {
		// The node came back a different shape; the old actuation is
		// meaningless.
		ns.lastFreqs = nil
	}
	if c.quantum == 0 {
		// The first handshake pins the cluster quantum; Connect is
		// single-threaded, so later concurrent rejoins only read it.
		c.quantum = caps.QuantumSec
	}
	// Codec negotiation: the node advertised the binary codec and this
	// coordinator wants it, so flip the connection's hot-message
	// transmission. Selection is per node — a mixed fleet keeps JSON on
	// the nodes that never advertised. The handshake itself, and every
	// future error frame, stays JSON.
	if wantBinary && wire.Negotiate(caps.Codecs) {
		if bc, ok := conn.(proto.BinaryCapable); ok {
			bc.SetBinary(true)
		}
	}
	ns.caps = &caps
	ns.conn = conn
	c.cfg.Metrics.countReconnect(ns.spec.Name)
	return nil
}

func (c *Coordinator) validateCaps(ns *nodeState, caps proto.Capabilities) error {
	if caps.NumCPUs <= 0 {
		return fmt.Errorf("netcluster: %s reports %d CPUs", ns.spec.Name, caps.NumCPUs)
	}
	if caps.QuantumSec <= 0 {
		return fmt.Errorf("netcluster: %s reports quantum %v", ns.spec.Name, caps.QuantumSec)
	}
	if c.quantum != 0 && caps.QuantumSec != c.quantum {
		return fmt.Errorf("netcluster: %s quantum %v differs from cluster quantum %v",
			ns.spec.Name, caps.QuantumSec, c.quantum)
	}
	// The coordinator schedules from its own table; every setting it can
	// assign must exist on the node.
	avail := make(map[float64]bool, len(caps.FreqsMHz))
	for _, mhz := range caps.FreqsMHz {
		avail[mhz] = true
	}
	for _, f := range c.cfg.Fvsst.Table.Frequencies() {
		if !avail[f.MHz()] {
			return fmt.Errorf("netcluster: %s lacks operating point %v", ns.spec.Name, f)
		}
	}
	return nil
}

// exchange performs one deadline-bounded request/response on conn,
// discarding responses whose ID does not match (late retransmissions,
// faultnet duplicates).
func (c *Coordinator) exchange(conn proto.Conn, node string, req *proto.Message) (*proto.Message, error) {
	if err := conn.SetDeadline(time.Now().Add(c.cfg.RPCTimeout)); err != nil {
		return nil, err
	}
	defer conn.SetDeadline(time.Time{})
	if err := conn.Send(req); err != nil {
		return nil, err
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		if m.ID != req.ID {
			continue
		}
		if m.Kind == proto.KindError {
			return nil, &AgentError{Node: node, Reason: m.Error}
		}
		return m, nil
	}
}

// backoffDelay is the bounded exponential backoff with jitter before
// retry attempt (0-based): uniform in [d/2, d] where d doubles from base
// up to max. Jitter decorrelates a fleet of retrying coordinators; the
// explicit rng keeps each node's delay sequence reproducible from the
// scenario seed.
func backoffDelay(attempt int, base, max time.Duration, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// rpcTime is the timing of one successful RPC: when the winning attempt
// went out, its round trip, and the agent's self-reported service time —
// the raw material for the rpc:* span queue/wire/apply breakdown.
type rpcTime struct {
	sentAt  time.Time
	rtt     time.Duration
	service float64
}

// rpc runs one request against the node with per-attempt deadlines and
// bounded, jittered retry, redialling broken sessions between attempts.
// build receives the fresh request ID for each attempt.
func (c *Coordinator) rpc(ns *nodeState, kind string, build func(id uint64) *proto.Message) (*proto.Message, rpcTime, error) {
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.cfg.Metrics.countRetry(ns.spec.Name, kind)
			time.Sleep(backoffDelay(attempt-1, c.cfg.BackoffBase, c.cfg.BackoffMax, ns.rng))
		}
		if err := c.ensureConn(ns); err != nil {
			lastErr = err
			continue
		}
		ns.reqID++
		attemptStart := time.Now()
		resp, err := c.exchange(ns.conn, ns.spec.Name, build(ns.reqID))
		if err == nil {
			c.cfg.Metrics.observeRPC(ns.spec.Name, kind, time.Since(start))
			return resp, rpcTime{sentAt: attemptStart, rtt: time.Since(attemptStart), service: resp.ServiceSec}, nil
		}
		lastErr = err
		var ae *AgentError
		if errors.As(err, &ae) {
			// Semantic rejection: the session is healthy and a retry
			// would fail identically.
			c.cfg.Metrics.countFailure(ns.spec.Name, kind)
			return nil, rpcTime{}, err
		}
		if isTimeout(err) {
			c.cfg.Metrics.countTimeout(ns.spec.Name, kind)
		}
		// The stream may hold stale bytes or be dead; start clean.
		ns.conn.Close()
		ns.conn = nil
	}
	c.cfg.Metrics.countFailure(ns.spec.Name, kind)
	return nil, rpcTime{}, fmt.Errorf("netcluster: %s %s failed after %d attempts: %w",
		ns.spec.Name, kind, c.cfg.Retries+1, lastErr)
}

// recordMiss charges a failed round against the node, degrading it at the
// MissK threshold.
func (c *Coordinator) recordMiss(ns *nodeState, cause error) {
	ns.missed++
	if ns.degraded || ns.missed < c.cfg.MissK {
		return
	}
	ns.degraded = true
	c.cfg.Metrics.countTransition(ns.spec.Name, "degrade")
	if c.cfg.Sink != nil {
		detail := fmt.Sprintf("missed %d heartbeats", ns.missed)
		if cause != nil {
			detail += ": " + cause.Error()
		}
		c.cfg.Sink.Emit(obs.Event{
			Type:      obs.EventDegrade,
			At:        c.clock.Now(),
			Node:      ns.spec.Name,
			ReservedW: c.worstCharge(ns).W(),
			Detail:    detail,
		})
	}
}

// recordAlive resets the miss count after a fully successful round,
// rejoining a degraded node.
func (c *Coordinator) recordAlive(ns *nodeState) {
	ns.missed = 0
	if !ns.degraded {
		return
	}
	ns.degraded = false
	c.cfg.Metrics.countTransition(ns.spec.Name, "rejoin")
	if c.cfg.Sink != nil {
		c.cfg.Sink.Emit(obs.Event{
			Type:   obs.EventRejoin,
			At:     c.clock.Now(),
			Node:   ns.spec.Name,
			Detail: "session re-established; capabilities re-synced",
		})
	}
}

// poll is one node's round result.
type poll struct {
	ok        bool
	reports   []proto.CPUReport
	cpuPowerW float64
	// rpc is the counter-poll timing for the node's rpc:counters span.
	rpc rpcTime
}

// pollPhase is phase 1 of a round: parallel liveness + counter poll.
// Each goroutine owns its node's state; results land in per-node slots.
// Every request carries the round's trace context, which agents echo on
// the ack. A relay runs the same phase over its children when answering
// an upstream demand request.
func (c *Coordinator) pollPhase(passID uint64) []poll {
	polls := make([]poll, len(c.nodes))
	var wg sync.WaitGroup
	for i, ns := range c.nodes {
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			if _, _, err := c.rpc(ns, proto.KindHeartbeat, func(id uint64) *proto.Message {
				return &proto.Message{Kind: proto.KindHeartbeat, ID: id, Trace: &proto.TraceContext{PassID: passID}}
			}); err != nil {
				c.recordMiss(ns, err)
				return
			}
			resp, rt, err := c.rpc(ns, proto.KindCounterRequest, func(id uint64) *proto.Message {
				return &proto.Message{Kind: proto.KindCounterRequest, ID: id, Trace: &proto.TraceContext{PassID: passID}, CounterRequest: &proto.CounterRequest{
					AdvanceQuanta: c.cfg.Fvsst.SchedulePeriods,
					WindowQuanta:  c.cfg.Fvsst.SchedulePeriods,
				}}
			})
			if err != nil || resp.CounterReport == nil {
				c.recordMiss(ns, err)
				return
			}
			if len(resp.CounterReport.CPUs) != ns.caps.NumCPUs {
				c.recordMiss(ns, fmt.Errorf("report covers %d of %d CPUs", len(resp.CounterReport.CPUs), ns.caps.NumCPUs))
				return
			}
			polls[i] = poll{ok: true, reports: resp.CounterReport.CPUs, cpuPowerW: resp.CounterReport.CPUPowerW, rpc: rt}
		}(i, ns)
	}
	wg.Wait()
	return polls
}

// buildInputs is phase 2's input assembly: the reachable nodes' counter
// windows become scheduler inputs (nodeInputs maps node → its input
// indices, in CPU order), and every unreachable node adds its worst-case
// charge to reserved.
//
// A poll's report slice may be conn-owned (the binary codec reuses its
// decode buffers), so inputs must be fully built before the next message
// is received on that node's connection — which holds: actuation only
// starts after the scheduling pass.
func (c *Coordinator) buildInputs(polls []poll) (inputs []cluster.ProcInput, nodeInputs [][]int, reserved units.Power) {
	nodeInputs = make([][]int, len(c.nodes))
	for i, ns := range c.nodes {
		if !polls[i].ok {
			reserved += c.worstCharge(ns)
			continue
		}
		for cpu, rep := range polls[i].reports {
			in := cluster.ProcInput{
				Proc: cluster.ProcRef{Node: i, CPU: cpu},
				Node: ns.spec.Name,
				Idle: rep.Idle,
			}
			delta := rep.Delta()
			if fHz := delta.ObservedFrequencyHz(); delta.Instructions > 0 && delta.Cycles > 0 && fHz > 0 {
				in.Obs = &perfmodel.Observation{Delta: delta, Freq: units.Frequency(fHz)}
			}
			nodeInputs[i] = append(nodeInputs[i], len(inputs))
			inputs = append(inputs, in)
		}
	}
	return inputs, nodeInputs, reserved
}

// actuatePhase is phase 3: parallel actuation of every polled node. The
// last acknowledged assignment is the node's charge while silent, so it
// only advances on ack.
func (c *Coordinator) actuatePhase(passID uint64, polls []poll, nodeInputs [][]int, assignments []cluster.Assignment) (acked []bool, actRPC []rpcTime) {
	acked = make([]bool, len(c.nodes))
	actRPC = make([]rpcTime, len(c.nodes))
	var awg sync.WaitGroup
	for i, ns := range c.nodes {
		if !polls[i].ok {
			continue
		}
		freqs := make([]units.Frequency, len(nodeInputs[i]))
		mhz := make([]float64, len(nodeInputs[i]))
		for cpu, idx := range nodeInputs[i] {
			freqs[cpu] = assignments[idx].Actual
			mhz[cpu] = freqs[cpu].MHz()
		}
		awg.Add(1)
		go func(i int, ns *nodeState, freqs []units.Frequency, mhz []float64) {
			defer awg.Done()
			_, rt, err := c.rpc(ns, proto.KindActuate, func(id uint64) *proto.Message {
				return &proto.Message{Kind: proto.KindActuate, ID: id, Trace: &proto.TraceContext{PassID: passID}, Actuate: &proto.Actuate{FreqsMHz: mhz}}
			})
			if err != nil {
				c.recordMiss(ns, err)
				return
			}
			ns.lastFreqs = freqs
			acked[i] = true
			actRPC[i] = rt
			c.recordAlive(ns)
		}(i, ns, freqs, mhz)
	}
	awg.Wait()
	return acked, actRPC
}

// ledger is phase 4's account of one round: per-node charges in node
// order plus their order-preserving totals.
type ledger struct {
	charged       units.Power
	reserved      units.Power
	nodeCharged   []units.Power
	degradedNames []string
	degradedCount int
	cpuPowerW     float64
}

// settle is phase 4: acknowledged nodes are charged their new
// assignment's table power; everyone else their worst case under silence.
func (c *Coordinator) settle(polls []poll, nodeInputs [][]int, assignments []cluster.Assignment, acked []bool) (ledger, error) {
	l := ledger{nodeCharged: make([]units.Power, len(c.nodes))}
	for i, ns := range c.nodes {
		if acked[i] {
			var sum units.Power
			for _, idx := range nodeInputs[i] {
				p, err := c.cfg.Fvsst.Table.PowerAt(assignments[idx].Actual)
				if err != nil {
					return ledger{}, err
				}
				sum += p
			}
			l.nodeCharged[i] = sum
			l.charged += sum
			l.cpuPowerW += polls[i].cpuPowerW
			continue
		}
		w := c.worstCharge(ns)
		l.nodeCharged[i] = w
		l.charged += w
		l.reserved += w
		if ns.degraded {
			l.degradedCount++
			l.degradedNames = append(l.degradedNames, ns.spec.Name)
		}
	}
	return l, nil
}

// RunRound executes one scheduling period over the wire: heartbeat and
// poll every node in parallel, run the shared global pass with the
// budget reduced by the worst-case charge of every unreachable node,
// then actuate the survivors. Transport failures never abort the round —
// they convert into charges — so the returned error indicates a
// scheduling-core problem only.
func (c *Coordinator) RunRound() error {
	for _, ns := range c.nodes {
		if ns.caps == nil {
			return fmt.Errorf("netcluster: node %s never connected; call Connect first", ns.spec.Name)
		}
	}
	c.passID++
	passID := c.passID
	trace := c.cfg.Sink != nil
	var passStart time.Time
	if trace {
		passStart = time.Now()
	}
	trigger := "timer"
	var want units.Power
	switch {
	case c.cfg.Source != nil:
		want = c.cfg.Source.BudgetAt(c.clock.Now())
	case c.cfg.Budgets != nil:
		want = c.cfg.Budgets.At(c.clock.Now())
	default:
		want = c.budget
	}
	if want != c.budget {
		c.budget = want
		trigger = "budget-change"
	}

	// Phase 1: parallel liveness + counter poll.
	polls := c.pollPhase(passID)
	var pollDur time.Duration
	if trace {
		pollDur = time.Since(passStart)
	}

	// Phase 2: global pass over the reachable nodes, under the budget
	// minus the silent nodes' worst-case charge.
	inputs, nodeInputs, reserved := c.buildInputs(polls)
	liveBudget := c.budget - reserved
	var schedStart time.Time
	if trace {
		schedStart = time.Now()
	}
	res, err := c.core.Schedule(inputs, liveBudget)
	if err != nil {
		return err
	}
	var schedDur time.Duration
	var actStart time.Time
	if trace {
		actStart = time.Now()
		schedDur = actStart.Sub(schedStart)
	}

	// Phase 3: parallel actuation.
	acked, actRPC := c.actuatePhase(passID, polls, nodeInputs, res.Assignments)
	var actDur time.Duration
	if trace {
		actDur = time.Since(actStart)
	}

	// Phase 4: the round's ledger.
	l, err := c.settle(polls, nodeInputs, res.Assignments, acked)
	if err != nil {
		return err
	}

	dec := Decision{
		At:          c.clock.Now(),
		Trigger:     trigger,
		Budget:      c.budget,
		TablePower:  res.TablePower,
		Reserved:    l.reserved,
		Charged:     l.charged,
		BudgetMet:   l.charged <= c.budget,
		Degraded:    l.degradedNames,
		Assignments: res.Assignments,
		NodeCharged: l.nodeCharged,
		Acked:       acked,
	}
	c.decisions = append(c.decisions, dec)

	c.cfg.Metrics.setDegraded(l.degradedCount)
	c.cfg.Metrics.setCharged(l.charged, l.reserved)
	c.cfg.Metrics.setWire(c.cfg.WireStats)
	if trace {
		at := c.clock.Now()
		sink := c.cfg.Sink
		ev := cluster.PassEvent(at, trigger, c.budget, inputs, res)
		ev.PassID = passID
		ev.ChargedW = l.charged.W()
		ev.ReservedW = l.reserved.W()
		ev.HeadroomW = (c.budget - l.charged).W()
		ev.BudgetMissed = !dec.BudgetMet
		sink.Emit(ev)
		// Aggregate quantum sample (Node empty, carries the budget), plus
		// one per polled node so the energy ledger can integrate per-node
		// Joules. Consumers treat the unnamed row as the cluster aggregate.
		sink.Emit(obs.Event{
			Type:      obs.EventQuantum,
			At:        at,
			PassID:    passID,
			BudgetW:   c.budget.W(),
			CPUPowerW: l.cpuPowerW,
		})
		for i, ns := range c.nodes {
			if !polls[i].ok {
				continue
			}
			sink.Emit(obs.Event{
				Type:      obs.EventQuantum,
				At:        at,
				PassID:    passID,
				Node:      ns.spec.Name,
				CPUPowerW: polls[i].cpuPowerW,
			})
		}
		// The round's span tree: phase children, the Figure-3 step
		// breakdown inside the schedule phase, per-node RPC spans with the
		// queue/wire/apply split, codec time when instrumented, and the
		// pass root last.
		sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanPoll, obs.SpanPass, pollDur.Seconds()))
		sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanSchedule, obs.SpanPass, schedDur.Seconds()))
		cluster.EmitStepSpans(sink, at, passID, res.Timings)
		sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanActuate, obs.SpanPass, actDur.Seconds()))
		for i, ns := range c.nodes {
			if polls[i].ok {
				sink.Emit(rpcSpan(at, passID, ns.spec.Name, obs.SpanRPCCounters, passStart, polls[i].rpc))
			}
			if acked[i] {
				sink.Emit(rpcSpan(at, passID, ns.spec.Name, obs.SpanRPCActuate, actStart, actRPC[i]))
			}
		}
		c.emitCodecSpans(at, passID)
		sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanPass, "", time.Since(passStart).Seconds()))
	}

	c.clock.Tick()
	return nil
}

// emitCodecSpans reports the pass's share of the cumulative wire codec
// time as encode/decode child spans. No-op without Config.WireStats.
func (c *Coordinator) emitCodecSpans(at float64, passID uint64) {
	if c.cfg.WireStats == nil {
		return
	}
	snap := c.cfg.WireStats.Snapshot()
	encode := float64(snap.EncodeNanos-c.lastWire.EncodeNanos) / 1e9
	decode := float64(snap.DecodeNanos-c.lastWire.DecodeNanos) / 1e9
	c.lastWire = snap
	c.cfg.Sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanEncode, obs.SpanPass, encode))
	c.cfg.Sink.Emit(obs.SpanEvent(at, passID, "", obs.SpanDecode, obs.SpanPass, decode))
}

// rpcSpan renders one node RPC as an rpc:* span: queue is how long the
// request waited behind earlier phase work before its winning attempt was
// sent (measured from phaseStart), apply is the agent's self-reported
// service time, and wire is the measured round-trip minus apply, clamped
// at zero in case the two clocks disagree at microsecond scale.
func rpcSpan(at float64, passID uint64, node, name string, phaseStart time.Time, rt rpcTime) obs.Event {
	queue := rt.sentAt.Sub(phaseStart).Seconds()
	if queue < 0 {
		queue = 0
	}
	wire := rt.rtt.Seconds() - rt.service
	if wire < 0 {
		wire = 0
	}
	return obs.RPCSpanEvent(at, passID, node, name, rt.rtt.Seconds(), queue, wire, rt.service)
}

// Run drives rounds until the coordinator epoch reaches t seconds.
func (c *Coordinator) Run(until float64) error {
	for c.clock.Now() < until {
		if err := c.RunRound(); err != nil {
			return err
		}
	}
	return nil
}
