package faultnet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netcluster/proto"
)

// collect reads messages from c until an error (deadline, close) and
// returns the IDs seen.
func collect(c proto.Conn, window time.Duration) []uint64 {
	c.SetDeadline(time.Now().Add(window))
	var ids []uint64
	for {
		m, err := c.Recv()
		if err != nil {
			return ids
		}
		ids = append(ids, m.ID)
	}
}

// deliveredIDs sends n heartbeats through a fresh fabric with the given
// seed and policy and returns the IDs that survive.
func deliveredIDs(t *testing.T, seed int64, pol Policy, n int) []uint64 {
	t.Helper()
	net := New(seed)
	if err := net.SetPolicy("n0", pol); err != nil {
		t.Fatal(err)
	}
	a, b := proto.Pipe()
	fa := net.Wrap("n0", a)
	defer fa.Close()
	defer b.Close()
	done := make(chan []uint64, 1)
	go func() { done <- collect(b, 300*time.Millisecond) }()
	for i := 0; i < n; i++ {
		if err := fa.Send(&proto.Message{Kind: proto.KindHeartbeat, ID: uint64(i)}); err != nil {
			t.Errorf("send %d: %v", i, err)
		}
	}
	return <-done
}

func TestSeededDropIsDeterministic(t *testing.T) {
	pol := Policy{DropProb: 0.3}
	first := deliveredIDs(t, 42, pol, 200)
	second := deliveredIDs(t, 42, pol, 200)
	if len(first) == 0 || len(first) == 200 {
		t.Fatalf("drop policy delivered %d/200; want a strict subset", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("same seed delivered %d then %d messages", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged at position %d: %d vs %d", i, first[i], second[i])
		}
	}
	other := deliveredIDs(t, 43, pol, 200)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if other[i] != first[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical drop sequences")
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	ids := deliveredIDs(t, 1, Policy{DupProb: 1}, 3)
	want := []uint64{0, 0, 1, 1, 2, 2}
	if len(ids) != len(want) {
		t.Fatalf("got %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("got %v, want %v", ids, want)
		}
	}
}

func TestDropEverything(t *testing.T) {
	if ids := deliveredIDs(t, 1, Policy{DropProb: 1}, 10); len(ids) != 0 {
		t.Errorf("full drop delivered %v", ids)
	}
}

func TestDelayStallsDelivery(t *testing.T) {
	net := New(1)
	net.SetPolicy("n0", Policy{Delay: 30 * time.Millisecond})
	a, b := proto.Pipe()
	fa := net.Wrap("n0", a)
	defer fa.Close()
	defer b.Close()
	go fa.Send(&proto.Message{Kind: proto.KindHeartbeat, ID: 1})
	start := time.Now()
	b.SetDeadline(time.Now().Add(time.Second))
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delayed message arrived after only %v", elapsed)
	}
}

func TestDelayJitterIsSeeded(t *testing.T) {
	draw := func(seed int64) time.Duration {
		net := New(seed)
		net.SetPolicy("n0", Policy{DelayJitter: 50 * time.Millisecond})
		a, b := proto.Pipe()
		fa := net.Wrap("n0", a)
		defer fa.Close()
		defer b.Close()
		go collect(b, 400*time.Millisecond)
		start := time.Now()
		if err := fa.Send(&proto.Message{Kind: proto.KindHeartbeat}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	a1, a2 := draw(7), draw(7)
	diff := a1 - a2
	if diff < 0 {
		diff = -diff
	}
	// Same seed ⇒ same jitter draw; allow scheduler slop well under the
	// 50 ms jitter range.
	if diff > 15*time.Millisecond {
		t.Errorf("same seed drew jitters %v and %v", a1, a2)
	}
}

func TestPartitionRefusesDialAndEatsTraffic(t *testing.T) {
	net := New(1)
	a, b := proto.Pipe()
	fa := net.Wrap("n0", a)
	defer fa.Close()
	defer b.Close()

	// Pre-partition traffic flows.
	go fa.Send(&proto.Message{Kind: proto.KindHeartbeat, ID: 1})
	b.SetDeadline(time.Now().Add(time.Second))
	if _, err := b.Recv(); err != nil {
		t.Fatalf("healthy send: %v", err)
	}

	net.Partition("n0")
	if !net.Partitioned("n0") {
		t.Fatal("partition not recorded")
	}
	if _, err := net.Dial("n0", "127.0.0.1:1", 100*time.Millisecond); !errors.Is(err, ErrPartitioned) {
		t.Errorf("dial during partition: %v", err)
	}
	// Sends vanish silently; nothing reaches the far side.
	if err := fa.Send(&proto.Message{Kind: proto.KindHeartbeat, ID: 2}); err != nil {
		t.Errorf("partitioned send should swallow, got %v", err)
	}
	if ids := collect(b, 50*time.Millisecond); len(ids) != 0 {
		t.Errorf("partition leaked %v", ids)
	}

	// Messages that arrive across the cut are discarded by the wrapped
	// receiver too.
	go b.Send(&proto.Message{Kind: proto.KindHeartbeatAck, ID: 3})
	if ids := collect(fa, 50*time.Millisecond); len(ids) != 0 {
		t.Errorf("wrapped receiver accepted %v across the partition", ids)
	}

	net.Heal("n0")
	fa.SetDeadline(time.Time{}) // clear the deadline collect left behind
	go fa.Send(&proto.Message{Kind: proto.KindHeartbeat, ID: 4})
	b.SetDeadline(time.Now().Add(time.Second))
	m, err := b.Recv()
	if err != nil {
		t.Fatalf("post-heal send: %v", err)
	}
	if m.ID != 4 {
		t.Errorf("post-heal message ID %d", m.ID)
	}
}

func TestPolicyValidation(t *testing.T) {
	net := New(1)
	for _, p := range []Policy{
		{DropProb: -0.1}, {DropProb: 1.1}, {DupProb: 2}, {Delay: -time.Second},
	} {
		if err := net.SetPolicy("n0", p); err == nil {
			t.Errorf("policy %+v accepted", p)
		}
	}
}
