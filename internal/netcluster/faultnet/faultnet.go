// Package faultnet injects deterministic failures into netcluster
// connections at message granularity: per-message drop, duplication and
// delay, plus whole-node partitions that also refuse new dials. It backs
// both the netcluster test suite and cmd/fvsst-cluster's fault scenarios,
// so the coordinator's retry, timeout, degrade and rejoin paths can be
// exercised reproducibly on loopback.
//
// Seeding convention (shared with machine.Config.Seed and
// power.NewMeter): randomness is never drawn from the global source. A
// Network takes one explicit base seed; every connection it wraps gets
// its own *rand.Rand seeded base+k, where k is the 0-based wrap order.
// Derived components offsetting one base seed (the machine offsets its
// meter by +1000) keep streams independent while one scenario seed
// reproduces the whole run; per-connection streams additionally make each
// connection's fault sequence independent of goroutine interleaving
// across connections. Same seed, same wrap order, same per-connection
// message sequence ⇒ same faults.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/netcluster/proto"
)

// ErrPartitioned is returned by Dial for, and by Send/Recv on connections
// to, a node on the far side of a partition.
var ErrPartitioned = errors.New("faultnet: node partitioned")

// Policy is the per-message fault mix applied to one node's connections.
// The zero Policy injects nothing.
type Policy struct {
	// DropProb silently discards a sent message with this probability.
	DropProb float64
	// DupProb sends a message twice with this probability — the
	// retransmission duplicate a real network can deliver.
	DupProb float64
	// Delay stalls every delivered message by this fixed latency.
	Delay time.Duration
	// DelayJitter adds a uniform [0, DelayJitter) draw on top of Delay.
	DelayJitter time.Duration
}

// Validate checks the probabilities.
func (p Policy) Validate() error {
	if p.DropProb < 0 || p.DropProb > 1 {
		return fmt.Errorf("faultnet: drop probability %v out of [0,1]", p.DropProb)
	}
	if p.DupProb < 0 || p.DupProb > 1 {
		return fmt.Errorf("faultnet: duplicate probability %v out of [0,1]", p.DupProb)
	}
	if p.Delay < 0 || p.DelayJitter < 0 {
		return fmt.Errorf("faultnet: negative delay")
	}
	return nil
}

// Network is the fault-injection fabric between a coordinator and its
// agents. It hands out wrapped connections and controls, per node name,
// the fault policy and partition state.
type Network struct {
	mu          sync.Mutex
	seed        int64
	wraps       int64
	dial        func(addr string, timeout time.Duration) (proto.Conn, error)
	policies    map[string]Policy
	partitioned map[string]bool
}

// New builds a fabric drawing all randomness from the explicit base seed
// (see the package comment for the seeding convention).
func New(seed int64) *Network {
	return &Network{
		seed:        seed,
		policies:    make(map[string]Policy),
		partitioned: make(map[string]bool),
	}
}

// SetTransport replaces the underlying dialer Dial wraps (default
// proto.Dial's plain JSON transport). cmd and scenario code inject
// wire.Dial here to run fault scenarios over the binary codec; the
// fabric itself is codec-agnostic.
func (n *Network) SetTransport(dial func(addr string, timeout time.Duration) (proto.Conn, error)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dial = dial
}

// SetPolicy installs the fault policy for a node's future and existing
// connections.
func (n *Network) SetPolicy(node string, p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.policies[node] = p
	return nil
}

// Partition cuts the node off: its connections drop everything in both
// directions and new dials fail until Heal.
func (n *Network) Partition(node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[node] = true
}

// Heal reconnects a partitioned node.
func (n *Network) Heal(node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, node)
}

// Partitioned reports the node's partition state.
func (n *Network) Partitioned(node string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned[node]
}

// Dial opens a faulty connection to the node's agent, refusing while the
// node is partitioned.
func (n *Network) Dial(node, addr string, timeout time.Duration) (proto.Conn, error) {
	if n.Partitioned(node) {
		return nil, fmt.Errorf("dial %s (%s): %w", node, addr, ErrPartitioned)
	}
	n.mu.Lock()
	dial := n.dial
	n.mu.Unlock()
	if dial == nil {
		dial = proto.Dial
	}
	c, err := dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return n.Wrap(node, c), nil
}

// Wrap layers the node's fault policy and partition state over an
// existing connection. Each wrap gets its own deterministic random
// stream.
func (n *Network) Wrap(node string, c proto.Conn) proto.Conn {
	n.mu.Lock()
	rng := rand.New(rand.NewSource(n.seed + n.wraps))
	n.wraps++
	n.mu.Unlock()
	return &faultConn{net: n, node: node, inner: c, rng: rng}
}

// faultConn applies the fabric's current policy to one connection. The
// rng is owned by the connection and guarded by mu, so concurrent Sends
// are safe and the draw sequence depends only on this connection's
// message order.
type faultConn struct {
	net   *Network
	node  string
	inner proto.Conn
	mu    sync.Mutex
	rng   *rand.Rand
}

func (f *faultConn) policy() Policy {
	f.net.mu.Lock()
	defer f.net.mu.Unlock()
	return f.net.policies[f.node]
}

func (f *faultConn) Send(m *proto.Message) error {
	if f.net.Partitioned(f.node) {
		// The frame enters the void. Model it as a silent drop — the
		// sender learns about the partition from the missing response,
		// exactly as over a real network.
		return nil
	}
	p := f.policy()
	f.mu.Lock()
	drop := p.DropProb > 0 && f.rng.Float64() < p.DropProb
	dup := p.DupProb > 0 && f.rng.Float64() < p.DupProb
	var jitter time.Duration
	if p.DelayJitter > 0 {
		jitter = time.Duration(f.rng.Int63n(int64(p.DelayJitter)))
	}
	f.mu.Unlock()
	if drop {
		return nil
	}
	if d := p.Delay + jitter; d > 0 {
		time.Sleep(d)
	}
	if err := f.inner.Send(m); err != nil {
		return err
	}
	if dup {
		return f.inner.Send(m)
	}
	return nil
}

func (f *faultConn) Recv() (*proto.Message, error) {
	for {
		m, err := f.inner.Recv()
		if err != nil {
			return nil, err
		}
		if f.net.Partitioned(f.node) {
			// Arrived after the cut: the partition ate it.
			continue
		}
		return m, nil
	}
}

func (f *faultConn) SetDeadline(t time.Time) error { return f.inner.SetDeadline(t) }

func (f *faultConn) Close() error { return f.inner.Close() }

// SetBinary forwards codec selection to the wrapped connection when it
// supports one (proto.BinaryCapable); fault injection is codec-agnostic.
func (f *faultConn) SetBinary(on bool) {
	if bc, ok := f.inner.(proto.BinaryCapable); ok {
		bc.SetBinary(on)
	}
}
