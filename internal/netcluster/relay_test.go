package netcluster

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netcluster/faultnet"
	"repro/internal/netcluster/proto"
	"repro/internal/netcluster/wire"
	"repro/internal/units"
)

// startFleet spins up n agents with deterministic seeds so a second
// fleet built from the same base seed behaves identically.
func startFleet(t *testing.T, n int, baseSeed int64) []*Agent {
	t.Helper()
	agents := make([]*Agent, n)
	for i := range agents {
		agents[i], _ = startAgent(t, nodeName(i), baseSeed+int64(i), 0, nil)
	}
	return agents
}

func nodeName(i int) string { return "n" + strconv.Itoa(i) }

// startTree builds a two-level tree over the agents: fanout children per
// relay, each relay owning a connected sub-coordinator, plus a Root over
// the relays. Every tier negotiates the given codec.
func startTree(t *testing.T, agents []*Agent, fanout int, codec string, rootCfg Config) (*Root, []*Relay) {
	t.Helper()
	var relays []*Relay
	var relaySpecs []NodeSpec
	for lo := 0; lo < len(agents); lo += fanout {
		hi := lo + fanout
		if hi > len(agents) {
			hi = len(agents)
		}
		var specs []NodeSpec
		for i := lo; i < hi; i++ {
			specs = append(specs, NodeSpec{Name: nodeName(i), Addr: agents[i].Addr()})
		}
		sub, err := NewCoordinator(Config{
			Name:   "relay" + strconv.Itoa(len(relays)),
			Fvsst:  rootCfg.Fvsst,
			Budget: rootCfg.Budget,
			MissK:  rootCfg.MissK,
			Seed:   rootCfg.Seed + int64(100+len(relays)),
			Codec:  codec,
		}, specs...)
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Connect(); err != nil {
			t.Fatal(err)
		}
		relay, err := NewRelay(RelayConfig{Name: "relay" + strconv.Itoa(len(relays))}, sub)
		if err != nil {
			t.Fatal(err)
		}
		if err := relay.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { relay.Close() })
		relaySpecs = append(relaySpecs, NodeSpec{Name: relay.cfg.Name, Addr: relay.Addr()})
		relays = append(relays, relay)
	}
	rootCfg.Codec = codec
	root, err := NewRoot(rootCfg, relaySpecs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Connect(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(root.Close)
	return root, relays
}

// TestRelayTreeMatchesFlat is the tentpole differential: a fault-free
// two-level tree (binary codec at every tier) must schedule every
// processor byte-identically to one flat JSON coordinator over an
// identical fleet, and the relays' per-node charges must replay the flat
// ledger's float accumulation exactly.
func TestRelayTreeMatchesFlat(t *testing.T) {
	const n, fanout, rounds = 4, 2, 6
	budget := units.Watts(600) // tight enough to force Step-2 demotions

	flatAgents := startFleet(t, n, 1)
	var flatSpecs []NodeSpec
	for i, a := range flatAgents {
		flatSpecs = append(flatSpecs, NodeSpec{Name: nodeName(i), Addr: a.Addr()})
	}
	flat, err := NewCoordinator(Config{Fvsst: testFvsst(), Budget: budget, Seed: 42}, flatSpecs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Connect(); err != nil {
		t.Fatal(err)
	}
	defer flat.Close()

	treeAgents := startFleet(t, n, 1)
	st := &wire.Stats{}
	root, relays := startTree(t, treeAgents, fanout, wire.CodecName, Config{
		Name:   "root",
		Fvsst:  testFvsst(),
		Budget: budget,
		Seed:   42,
		Dialer: TCPDialer{Stats: st},
	})

	for i := 0; i < rounds; i++ {
		if err := flat.RunRound(); err != nil {
			t.Fatal(err)
		}
		if err := root.RunRound(); err != nil {
			t.Fatal(err)
		}
	}

	flatDecs := flat.Decisions()
	rootDecs := root.RootDecisions()
	if len(flatDecs) != rounds || len(rootDecs) != rounds {
		t.Fatalf("%d flat / %d root decisions, want %d", len(flatDecs), len(rootDecs), rounds)
	}
	var relayDecs [][]Decision
	for _, r := range relays {
		decs := r.Coordinator().Decisions()
		if len(decs) != rounds {
			t.Fatalf("relay has %d decisions, want %d", len(decs), rounds)
		}
		relayDecs = append(relayDecs, decs)
	}

	for k := 0; k < rounds; k++ {
		fd := flatDecs[k]
		rd := rootDecs[k]
		if !rd.BudgetMet || rd.Charged > rd.Budget {
			t.Errorf("round %d: root charged %v against %v", k, rd.Charged, rd.Budget)
		}
		if !rd.DivideMet {
			t.Errorf("round %d: division did not meet the live budget", k)
		}
		if rd.PassDur <= 0 {
			t.Errorf("round %d: no pass latency recorded", k)
		}
		if rd.At != fd.At {
			t.Errorf("round %d: root epoch %v, flat %v", k, rd.At, fd.At)
		}

		// Assignments: concatenate the relays' subtree schedules in
		// global node order and compare every field bit for bit.
		var tree []cluster.Assignment
		nodeOff := 0
		for _, decs := range relayDecs {
			for _, a := range decs[k].Assignments {
				a.Proc.Node += nodeOff
				tree = append(tree, a)
			}
			nodeOff += len(decs[k].NodeCharged)
		}
		if len(tree) != len(fd.Assignments) {
			t.Fatalf("round %d: %d tree assignments, flat %d", k, len(tree), len(fd.Assignments))
		}
		for i := range tree {
			if tree[i] != fd.Assignments[i] {
				t.Errorf("round %d assignment %d: tree %+v, flat %+v", k, i, tree[i], fd.Assignments[i])
			}
		}

		// Ledger: summing the relays' per-node charges in global node
		// order reproduces the flat charge exactly (same accumulation
		// order, same table arithmetic).
		var charged units.Power
		for _, decs := range relayDecs {
			for _, w := range decs[k].NodeCharged {
				charged += w
			}
		}
		if charged != fd.Charged {
			t.Errorf("round %d: tree ledger %v, flat %v", k, charged, fd.Charged)
		}
	}

	snap := st.Snapshot()
	if snap.BinFramesOut == 0 || snap.BinFramesIn == 0 {
		t.Errorf("root negotiated no binary frames: %+v", snap)
	}
	// Counter traffic between relays and leaves went delta after the
	// first report per node.
	if snap.DeltaIn != 0 {
		t.Errorf("root saw %d delta counter reports; demand reports are never delta-encoded", snap.DeltaIn)
	}
}

// TestRelayPartitionBudgetSafety drives a tree through a root↔relay
// partition: the silent relay must be charged its last acknowledged
// subtree ledger (the frozen-subtree bound), the root must stay within
// budget throughout, and the relay must rejoin cleanly after healing.
func TestRelayPartitionBudgetSafety(t *testing.T) {
	const n, fanout = 4, 2
	budget := units.Watts(900)
	agents := startFleet(t, n, 11)
	fabric := faultnet.New(7)
	fabric.SetTransport(wire.Dial)
	cfg := Config{
		Name:   "root",
		Fvsst:  testFvsst(),
		Budget: budget,
		MissK:  2,
		Seed:   7,
		Dialer: fabric,
	}
	fastRetry(&cfg)
	root, _ := startTree(t, agents, fanout, wire.CodecName, cfg)

	run := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			if err := root.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(2) // healthy
	preCut := root.RootDecisions()[1]
	fabric.Partition("relay1")
	run(3) // misses accumulate past MissK
	fabric.Heal("relay1")
	run(2) // rejoin

	decs := root.RootDecisions()
	if len(decs) != 7 {
		t.Fatalf("%d decisions", len(decs))
	}
	sawDegraded := false
	for k, d := range decs {
		if d.Charged > d.Budget {
			t.Errorf("round %d: charged %v over budget %v (reserved %v)", k, d.Charged, d.Budget, d.Reserved)
		}
		if len(d.Degraded) > 0 {
			sawDegraded = true
			if d.Degraded[0] != "relay1" {
				t.Errorf("round %d: degraded %v, want relay1", k, d.Degraded)
			}
		}
	}
	if !sawDegraded {
		t.Fatal("partition never degraded the relay")
	}
	// During the cut the silent subtree is held at exactly its last
	// acknowledged charge — not the (much larger) all-CPUs-at-max bound.
	for k := 2; k < 5; k++ {
		g := decs[k].Grants[1]
		if g.Acked {
			t.Fatalf("round %d: partitioned relay acked a grant", k)
		}
		if g.Charged != preCut.Grants[1].Charged {
			t.Errorf("round %d: silent relay charged %v, want frozen %v", k, g.Charged, preCut.Grants[1].Charged)
		}
	}
	// After healing, grants flow again.
	last := decs[6]
	if !last.Grants[1].Acked || !last.BudgetMet {
		t.Errorf("relay did not rejoin cleanly: %+v", last.Grants[1])
	}
}

// mixedDialer speaks the binary-capable transport to some nodes and the
// plain JSON transport to the rest, modelling a fleet mid-upgrade.
type mixedDialer struct {
	bin   map[string]bool
	stats *wire.Stats
}

func (d mixedDialer) Dial(node, addr string, timeout time.Duration) (proto.Conn, error) {
	if d.bin[node] {
		return wire.DialStats(addr, timeout, d.stats)
	}
	return proto.Dial(addr, timeout)
}

// TestMixedFleetNegotiation runs one coordinator over a half-binary
// half-JSON fleet and checks the schedules match an all-JSON reference
// over an identical fleet: codec choice is per node and never changes
// the scheduling arithmetic.
func TestMixedFleetNegotiation(t *testing.T) {
	const n, rounds = 2, 4
	budget := units.Watts(400)

	refAgents := startFleet(t, n, 21)
	var refSpecs []NodeSpec
	for i, a := range refAgents {
		refSpecs = append(refSpecs, NodeSpec{Name: nodeName(i), Addr: a.Addr()})
	}
	ref, err := NewCoordinator(Config{Fvsst: testFvsst(), Budget: budget, Seed: 5}, refSpecs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Connect(); err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	mixAgents := startFleet(t, n, 21)
	var mixSpecs []NodeSpec
	for i, a := range mixAgents {
		mixSpecs = append(mixSpecs, NodeSpec{Name: nodeName(i), Addr: a.Addr()})
	}
	st := &wire.Stats{}
	mix, err := NewCoordinator(Config{
		Fvsst:  testFvsst(),
		Budget: budget,
		Seed:   5,
		Codec:  wire.CodecName,
		Dialer: mixedDialer{bin: map[string]bool{nodeName(0): true}, stats: st},
	}, mixSpecs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := mix.Connect(); err != nil {
		t.Fatal(err)
	}
	defer mix.Close()

	for i := 0; i < rounds; i++ {
		if err := ref.RunRound(); err != nil {
			t.Fatal(err)
		}
		if err := mix.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	refDecs, mixDecs := ref.Decisions(), mix.Decisions()
	for k := 0; k < rounds; k++ {
		if len(refDecs[k].Assignments) != len(mixDecs[k].Assignments) {
			t.Fatalf("round %d: assignment counts differ", k)
		}
		for i := range refDecs[k].Assignments {
			if refDecs[k].Assignments[i] != mixDecs[k].Assignments[i] {
				t.Errorf("round %d assignment %d: mixed %+v, json %+v",
					k, i, mixDecs[k].Assignments[i], refDecs[k].Assignments[i])
			}
		}
		if refDecs[k].Charged != mixDecs[k].Charged {
			t.Errorf("round %d: mixed charged %v, json %v", k, mixDecs[k].Charged, refDecs[k].Charged)
		}
	}
	snap := st.Snapshot()
	if snap.BinFramesOut == 0 {
		t.Error("binary node exchanged no binary frames")
	}
	if snap.DeltaIn == 0 {
		t.Error("steady-state counter reports never went delta")
	}
}
