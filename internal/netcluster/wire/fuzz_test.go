package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/netcluster/proto"
)

// readerConn adapts a byte slice into the net.Conn shape NewConn expects,
// mirroring proto's FuzzRecvFrame harness.
type readerConn struct {
	r *bytes.Reader
}

func (c *readerConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *readerConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *readerConn) Close() error                     { return nil }
func (c *readerConn) LocalAddr() net.Addr              { return nil }
func (c *readerConn) RemoteAddr() net.Addr             { return nil }
func (c *readerConn) SetDeadline(time.Time) error      { return nil }
func (c *readerConn) SetReadDeadline(time.Time) error  { return nil }
func (c *readerConn) SetWriteDeadline(time.Time) error { return nil }

// frame wraps a payload in the 4-byte big-endian length header.
func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

// typedWireError reports whether err is one of the package's typed decode
// errors (possibly wrapped).
func typedWireError(err error) bool {
	for _, target := range []error{ErrBadMagic, ErrBadVersion, ErrBadKind, ErrTruncated, ErrTooLarge, ErrCorrupt, ErrDeltaBase} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// FuzzWireDecode drives the dual-codec frame decoder with arbitrary wire
// bytes, mirroring proto's FuzzRecvFrame. The decoder must never panic:
// oversized, truncated, mis-versioned, and structurally corrupt binary
// frames surface as the package's typed errors; malformed JSON frames as
// decode errors. Successfully decoded messages must re-encode within the
// frame bound.
func FuzzWireDecode(f *testing.F) {
	for _, m := range hotMessages() {
		var ds deltaSendState
		b, ok, err := appendMessage(nil, m, &ds, 3)
		if !ok || err != nil {
			f.Fatalf("seed %s: ok=%v err=%v", m.Kind, ok, err)
		}
		f.Add(frame(b))
	}
	// A full report followed by a delta against it.
	var ds deltaSendState
	ds.ackSeq = 0
	full, _, _ := appendMessage(nil, &proto.Message{Kind: proto.KindCounterReport, ID: 1, CounterReport: sampleReport(2, 1)}, &ds, 0)
	ds.ackSeq = ds.seq
	delta, _, _ := appendMessage(nil, &proto.Message{Kind: proto.KindCounterReport, ID: 2, CounterReport: sampleReport(2, 2)}, &ds, 0)
	f.Add(append(frame(full), frame(delta)...))

	good, _ := json.Marshal(&proto.Message{V: proto.Version, Kind: proto.KindHello, Hello: &proto.Hello{Coordinator: "c0", Codecs: []string{CodecName}}})
	f.Add(frame(good))
	f.Add(frame([]byte{Magic}))                            // truncated binary header
	f.Add(frame([]byte{Magic, 99, kindHeartbeat, 0, 0}))   // bad version
	f.Add(frame([]byte{Magic, Version, 200, 0, 0}))        // bad kind
	f.Add(frame([]byte{Magic, Version, kindHeartbeat, 4})) // bad flags
	f.Add([]byte{0, 0, 0, 0})                              // zero-length frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                  // 4GiB claim: rejected, not allocated
	f.Add(frame([]byte{Magic, Version, kindCounterReport, flagDelta, 1, 0, 0, 0, 0, 0, 0, 0, 0}))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(&readerConn{r: bytes.NewReader(data)}, Options{Mirror: true, Stats: &Stats{}})
		for {
			m, err := c.Recv()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				if !typedWireError(err) && !strings.Contains(err.Error(), "wire:") {
					t.Fatalf("untyped decode error: %v", err)
				}
				return
			}
			if m.V != proto.Version {
				t.Fatalf("accepted version %d", m.V)
			}
			if _, okKind := kindByte(m.Kind); !okKind && m.Kind != "" {
				// JSON frames may carry any kind; binary kinds must map.
				_ = m.Kind
			}
			payload, err := json.Marshal(m)
			if err != nil {
				// Binary frames carry NaN/Inf bit-exactly; JSON cannot.
				// Such messages must still re-encode through the binary
				// codec.
				var ds2 deltaSendState
				b2, okBin, binErr := appendMessage(nil, m, &ds2, 0)
				if !okBin || binErr != nil {
					t.Fatalf("decoded message re-encodes in neither codec: json %v, binary ok=%v err=%v", err, okBin, binErr)
				}
				payload = b2
			}
			if len(payload) > proto.MaxMessageSize+1024 {
				t.Fatalf("decoded message re-encodes to %d bytes, past the frame bound", len(payload))
			}
		}
	})
}
