package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/netcluster/proto"
)

// TestDeltaPropertyLossyChannel is the delta protocol's property test:
// whatever sequence of report losses, request (ack) losses, duplicated
// deliveries, and full reconnects occurs, every report that reaches the
// receiver reconstructs to the sender's exact full snapshot. The model
// mirrors faultnet's failure modes — a drop loses the frame before any
// receiver state change, a dup re-encodes and delivers twice (faultnet
// duplicates at Send, so the second copy is a fresh encode) — plus
// coordinator-driven reconnects that reset both ends' conn state.
func TestDeltaPropertyLossyChannel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ds deltaSendState
		var rs deltaRecvState
		var dec message

		deliverReport := func(rep *proto.CounterReport) {
			t.Helper()
			b, ok, err := appendMessage(nil, &proto.Message{Kind: proto.KindCounterReport, ID: 1, CounterReport: rep}, &ds, 0)
			if !ok || err != nil {
				t.Fatalf("seed %d: encode ok=%v err=%v", seed, ok, err)
			}
			got, err := decodeBinary(b, &dec, nil, &rs)
			if errors.Is(err, ErrDeltaBase) {
				// Transport tears the conn down; both ends restart.
				ds = deltaSendState{}
				rs = deltaRecvState{}
				return
			}
			if err != nil {
				t.Fatalf("seed %d: decode: %v", seed, err)
			}
			want := *rep
			if !reflect.DeepEqual(*got.CounterReport, want) {
				t.Fatalf("seed %d: reconstructed report diverged\n got %+v\nwant %+v", seed, *got.CounterReport, want)
			}
		}

		for round := 0; round < 300; round++ {
			// The coordinator's request: delivered (sender learns the ack)
			// or lost (sender keeps its stale ack — it must then send full
			// or a delta its peer can still apply).
			switch rng.Intn(10) {
			case 0:
				// Request lost entirely: ack does not advance.
			case 1:
				// JSON request (mixed fleet): explicit no-ack.
				ds.ackSeq = 0
			default:
				ds.ackSeq = rs.seq
			}

			rep := sampleReport(4, rng.Int63())
			switch rng.Intn(12) {
			case 0:
				// Report dropped before the wire: sender state already
				// advanced (encode ran), receiver saw nothing.
				_, _, err := appendMessage(nil, &proto.Message{Kind: proto.KindCounterReport, ID: 1, CounterReport: rep}, &ds, 0)
				if err != nil {
					t.Fatalf("seed %d: encode: %v", seed, err)
				}
			case 1:
				// Duplicated delivery: two fresh encodes, both delivered.
				deliverReport(rep)
				deliverReport(rep)
			case 2:
				// Reconnect (coordinator redial / agent restart): fresh
				// conn state both sides.
				ds = deltaSendState{}
				rs = deltaRecvState{}
				deliverReport(rep)
			default:
				deliverReport(rep)
			}

			// Occasionally the CPU count changes (caps resync): delta must
			// not be attempted against a mismatched base.
			if rng.Intn(40) == 0 {
				deliverReport(sampleReport(2+rng.Intn(6), rng.Int63()))
			}
		}
	}
}

// TestDeltaDropForcesFull pins the retry path: a report lost after encode
// leaves the sender one sequence ahead of the receiver's ack, so the next
// report must be a full snapshot, not a delta the receiver cannot apply.
func TestDeltaDropForcesFull(t *testing.T) {
	var ds deltaSendState
	var rs deltaRecvState
	var dec message

	send := func(rep *proto.CounterReport, deliver bool) *proto.Message {
		t.Helper()
		ds.ackSeq = rs.seq
		b, _, err := appendMessage(nil, &proto.Message{Kind: proto.KindCounterReport, ID: 1, CounterReport: rep}, &ds, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !deliver {
			return nil
		}
		m, err := decodeBinary(b, &dec, nil, &rs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	send(sampleReport(4, 1), true)  // seq 1 full, delivered
	send(sampleReport(4, 2), false) // seq 2 delta, dropped
	rep := sampleReport(4, 3)
	m := send(rep, true) // ack still 1 ≠ sent 2 → full
	if !reflect.DeepEqual(*m.CounterReport, *rep) {
		t.Fatal("post-drop report diverged")
	}
	if rs.seq != 3 || rs.baseSeq != 3 {
		t.Fatalf("receiver at seq %d base %d, want 3/3", rs.seq, rs.baseSeq)
	}
}
