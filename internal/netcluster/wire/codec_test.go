package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/netcluster/proto"
)

// memEnd is one direction of a deterministic in-memory duplex: writes
// land in out, reads drain in. Single-goroutine alternating send/recv
// needs no locking and, after warm-up, no allocation.
type memEnd struct {
	in  *bytes.Buffer
	out *bytes.Buffer
}

func (m *memEnd) Read(p []byte) (int, error)       { return m.in.Read(p) }
func (m *memEnd) Write(p []byte) (int, error)      { return m.out.Write(p) }
func (m *memEnd) Close() error                     { return nil }
func (m *memEnd) LocalAddr() net.Addr              { return nil }
func (m *memEnd) RemoteAddr() net.Addr             { return nil }
func (m *memEnd) SetDeadline(time.Time) error      { return nil }
func (m *memEnd) SetReadDeadline(time.Time) error  { return nil }
func (m *memEnd) SetWriteDeadline(time.Time) error { return nil }

// memPair returns two connected in-memory ends.
func memPair() (net.Conn, net.Conn) {
	ab := &bytes.Buffer{}
	ba := &bytes.Buffer{}
	return &memEnd{in: ba, out: ab}, &memEnd{in: ab, out: ba}
}

func sampleReport(nCPU int, seed int64) *proto.CounterReport {
	rng := rand.New(rand.NewSource(seed))
	cpus := make([]proto.CPUReport, nCPU)
	for i := range cpus {
		cpus[i] = proto.CPUReport{
			Idle:         rng.Intn(4) == 0,
			WindowSec:    0.08 + rng.Float64()*1e-6,
			Instructions: uint64(rng.Int63n(1 << 40)),
			Cycles:       uint64(rng.Int63n(1 << 40)),
			HaltedCycles: uint64(rng.Int63n(1 << 30)),
			L2Refs:       uint64(rng.Int63n(1 << 28)),
			L3Refs:       uint64(rng.Int63n(1 << 24)),
			MemRefs:      uint64(rng.Int63n(1 << 22)),
		}
	}
	return &proto.CounterReport{CPUs: cpus, CPUPowerW: 61.5 + rng.Float64(), SystemPowerW: 120.25}
}

func hotMessages() []*proto.Message {
	return []*proto.Message{
		{Kind: proto.KindHeartbeat, ID: 1, Trace: &proto.TraceContext{PassID: 3}},
		{Kind: proto.KindHeartbeatAck, ID: 1, Now: 2.5, ServiceSec: 1e-5},
		{Kind: proto.KindCounterRequest, ID: 2, Trace: &proto.TraceContext{PassID: 3},
			CounterRequest: &proto.CounterRequest{AdvanceQuanta: 10, WindowQuanta: 10}},
		{Kind: proto.KindCounterReport, ID: 2, Now: 2.58, ServiceSec: 3e-4,
			CounterReport: sampleReport(4, 7)},
		{Kind: proto.KindActuate, ID: 3, Trace: &proto.TraceContext{PassID: 3},
			Actuate: &proto.Actuate{FreqsMHz: []float64{600, 800, 1000, 600}}},
		{Kind: proto.KindActuateAck, ID: 3, Now: 2.59, ServiceSec: 2e-5,
			ActuateAck: &proto.ActuateAck{AppliedMHz: []float64{600, 800, 1000, 600}}},
		{Kind: proto.KindDemandRequest, ID: 4, Trace: &proto.TraceContext{PassID: 4},
			CounterRequest: &proto.CounterRequest{AdvanceQuanta: 10, WindowQuanta: 10}},
		{Kind: proto.KindDemandReport, ID: 4, Now: 2.66, ServiceSec: 1e-3,
			DemandReport: &proto.DemandReport{
				Points: []proto.DemandPoint{
					{PowerW: 80.5, Loss: 0},
					{PowerW: 72.25, Loss: 0.01, StepLoss: 0.01, StepIdx: 3, StepProc: 1},
				},
				Desired:      []int{3, 3, 2},
				ReservedW:    12.5,
				CPUPowerW:    55.5,
				SystemPowerW: 99,
				Degraded:     []string{"n7", "n9"},
			}},
		{Kind: proto.KindGrant, ID: 5, Trace: &proto.TraceContext{PassID: 4},
			Grant: &proto.Grant{BudgetW: 70.125}},
		{Kind: proto.KindGrantAck, ID: 5, Now: 2.7, ServiceSec: 4e-4,
			GrantAck: &proto.GrantAck{ChargedW: 69.5, TablePowerW: 68.25, ReservedW: 1.25, Met: true}},
	}
}

// TestRoundTripAllKinds encodes every hot kind and checks the decode is
// field-for-field identical (modulo Node, which binary drops by design).
func TestRoundTripAllKinds(t *testing.T) {
	for _, m := range hotMessages() {
		var ds deltaSendState
		var rs deltaRecvState
		b, ok, err := appendMessage(nil, m, &ds, 0)
		if err != nil || !ok {
			t.Fatalf("%s: appendMessage ok=%v err=%v", m.Kind, ok, err)
		}
		var dst message
		got, err := decodeBinary(b, &dst, &ds, &rs)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Kind, err)
		}
		want := *m
		want.V = proto.Version
		if !reflect.DeepEqual(normalize(got), normalize(&want)) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", m.Kind, payloadOf(got), payloadOf(&want))
		}
	}
}

// normalize deep-copies a message through its payload pointers so
// conn-owned reused structs compare by value.
func normalize(m *proto.Message) proto.Message {
	out := *m
	if m.Trace != nil {
		tc := *m.Trace
		out.Trace = &tc
	}
	if m.CounterRequest != nil {
		v := *m.CounterRequest
		out.CounterRequest = &v
	}
	if m.CounterReport != nil {
		v := *m.CounterReport
		v.CPUs = append([]proto.CPUReport(nil), m.CounterReport.CPUs...)
		out.CounterReport = &v
	}
	if m.Actuate != nil {
		v := proto.Actuate{FreqsMHz: append([]float64(nil), m.Actuate.FreqsMHz...)}
		out.Actuate = &v
	}
	if m.ActuateAck != nil {
		v := proto.ActuateAck{AppliedMHz: append([]float64(nil), m.ActuateAck.AppliedMHz...)}
		out.ActuateAck = &v
	}
	if m.DemandReport != nil {
		v := *m.DemandReport
		v.Points = append([]proto.DemandPoint(nil), m.DemandReport.Points...)
		v.Desired = append([]int(nil), m.DemandReport.Desired...)
		v.Degraded = append([]string(nil), m.DemandReport.Degraded...)
		out.DemandReport = &v
	}
	if m.Grant != nil {
		v := *m.Grant
		out.Grant = &v
	}
	if m.GrantAck != nil {
		v := *m.GrantAck
		out.GrantAck = &v
	}
	return out
}

func payloadOf(m *proto.Message) any {
	switch {
	case m.CounterReport != nil:
		return *m.CounterReport
	case m.DemandReport != nil:
		return *m.DemandReport
	default:
		return *m
	}
}

// TestExactFloats checks awkward float values survive the codec bit for
// bit — the codec must not perturb scheduler arithmetic.
func TestExactFloats(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1.0 / 3.0, math.Nextafter(80, 81), 1e-300, math.MaxFloat64, math.Inf(1)}
	m := &proto.Message{Kind: proto.KindActuate, ID: 9, Actuate: &proto.Actuate{FreqsMHz: vals}}
	b, ok, err := appendMessage(nil, m, nil, 0)
	if !ok || err != nil {
		t.Fatalf("append: ok=%v err=%v", ok, err)
	}
	var dst message
	got, err := decodeBinary(b, &dst, nil, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, v := range vals {
		if math.Float64bits(got.Actuate.FreqsMHz[i]) != math.Float64bits(v) {
			t.Fatalf("float %d: %x != %x", i, math.Float64bits(got.Actuate.FreqsMHz[i]), math.Float64bits(v))
		}
	}
}

// TestColdKindsStayJSON checks hello/capabilities/error have no binary
// form: appendMessage declines and the conn falls back to JSON.
func TestColdKindsStayJSON(t *testing.T) {
	for _, kind := range []string{proto.KindHello, proto.KindHelloAck, proto.KindError} {
		_, ok, err := appendMessage(nil, &proto.Message{Kind: kind}, nil, 0)
		if ok || err != nil {
			t.Fatalf("%s: ok=%v err=%v, want JSON fallback", kind, ok, err)
		}
	}
}

// TestTypedDecodeErrors checks each malformed-frame class surfaces as its
// typed error.
func TestTypedDecodeErrors(t *testing.T) {
	valid, _, err := appendMessage(nil, &proto.Message{Kind: proto.KindHeartbeat, ID: 1}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, ErrTruncated},
		{"short-header", []byte{Magic, Version}, ErrTruncated},
		{"bad-magic", []byte{'{', Version, kindHeartbeat, 0}, ErrBadMagic},
		{"bad-version", []byte{Magic, 99, kindHeartbeat, 0, 0}, ErrBadVersion},
		{"bad-kind", []byte{Magic, Version, 200, 0, 0}, ErrBadKind},
		{"bad-flags", []byte{Magic, Version, kindHeartbeat, 0x80, 0}, ErrCorrupt},
		{"delta-on-heartbeat", []byte{Magic, Version, kindHeartbeat, flagDelta, 0}, ErrCorrupt},
		{"truncated-envelope", valid[:6], ErrTruncated},
		{"trailing-garbage", append(append([]byte(nil), valid...), 0xFF), ErrCorrupt},
		{"orphan-delta", func() []byte {
			var ds deltaSendState
			ds.seq, ds.ackSeq = 5, 5
			ds.base = make([]cpuBase, 2)
			rep := sampleReport(2, 1)
			b, _, _ := appendMessage(nil, &proto.Message{Kind: proto.KindCounterReport, ID: 2, CounterReport: rep}, &ds, 0)
			return b
		}(), ErrDeltaBase},
	}
	for _, tc := range cases {
		var dst message
		var ds deltaSendState
		var rs deltaRecvState
		_, err := decodeBinary(tc.payload, &dst, &ds, &rs)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestConnMirror checks server-side codec follow: the agent end answers
// JSON until the coordinator's first binary frame, then answers binary.
func TestConnMirror(t *testing.T) {
	a, b := memPair()
	coord := NewConn(a, Options{})
	agent := NewConn(b, Options{Mirror: true})

	send := func(c *Conn, m *proto.Message) {
		t.Helper()
		if err := c.Send(m); err != nil {
			t.Fatalf("send %s: %v", m.Kind, err)
		}
	}
	recv := func(c *Conn, kind string) *proto.Message {
		t.Helper()
		m, err := c.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if m.Kind != kind {
			t.Fatalf("recv kind %s, want %s", m.Kind, kind)
		}
		return m
	}

	// JSON handshake phase.
	send(coord, &proto.Message{Kind: proto.KindHeartbeat, ID: 1})
	recv(agent, proto.KindHeartbeat)
	if agent.Binary() {
		t.Fatal("agent went binary on a JSON frame")
	}
	send(agent, &proto.Message{Kind: proto.KindHeartbeatAck, ID: 1})
	recv(coord, proto.KindHeartbeatAck)

	// Coordinator enables binary; agent mirrors on first binary frame.
	coord.SetBinary(true)
	send(coord, &proto.Message{Kind: proto.KindHeartbeat, ID: 2})
	recv(agent, proto.KindHeartbeat)
	if !agent.Binary() {
		t.Fatal("agent did not mirror binary")
	}
	send(agent, &proto.Message{Kind: proto.KindHeartbeatAck, ID: 2})
	recv(coord, proto.KindHeartbeatAck)

	// Cold kinds still JSON in both directions.
	send(coord, &proto.Message{Kind: proto.KindHello, Hello: &proto.Hello{Coordinator: "c0"}})
	m := recv(agent, proto.KindHello)
	if m.Hello == nil || m.Hello.Coordinator != "c0" {
		t.Fatalf("hello payload lost: %+v", m)
	}
}

// TestConnDeltaFlow drives counter polls through two conns and checks the
// second and later reports go delta (the request acked the first), while
// a JSON interlude forces a full snapshot.
func TestConnDeltaFlow(t *testing.T) {
	a, b := memPair()
	st := &Stats{}
	coord := NewConn(a, Options{Stats: st})
	agent := NewConn(b, Options{Mirror: true})
	coord.SetBinary(true)

	poll := func(id uint64, rep *proto.CounterReport) *proto.CounterReport {
		t.Helper()
		if err := coord.Send(&proto.Message{Kind: proto.KindCounterRequest, ID: id,
			CounterRequest: &proto.CounterRequest{AdvanceQuanta: 10, WindowQuanta: 10}}); err != nil {
			t.Fatal(err)
		}
		if _, err := agent.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := agent.Send(&proto.Message{Kind: proto.KindCounterReport, ID: id, CounterReport: rep}); err != nil {
			t.Fatal(err)
		}
		m, err := coord.Recv()
		if err != nil {
			t.Fatal(err)
		}
		out := *m.CounterReport
		out.CPUs = append([]proto.CPUReport(nil), m.CounterReport.CPUs...)
		return &out
	}

	for i := 0; i < 5; i++ {
		want := sampleReport(8, int64(i))
		got := poll(uint64(i+1), want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("poll %d: report mismatch", i)
		}
	}
	s := st.Snapshot()
	if s.FullIn != 1 || s.DeltaIn != 4 {
		t.Fatalf("full=%d delta=%d, want 1 full then 4 deltas", s.FullIn, s.DeltaIn)
	}

	// A JSON request (e.g. a JSON-only coordinator taking over) resets the
	// ack: next report must be full.
	coord.SetBinary(false)
	want := sampleReport(8, 99)
	if got := poll(9, want); !reflect.DeepEqual(got, want) {
		t.Fatal("post-JSON poll mismatch")
	}
	coord.SetBinary(true)
	want = sampleReport(8, 100)
	if got := poll(10, want); !reflect.DeepEqual(got, want) {
		t.Fatal("re-enabled poll mismatch")
	}
	s = st.Snapshot()
	if s.FullIn != 2 {
		t.Fatalf("full=%d after JSON interlude, want 2 (snapshot resent)", s.FullIn)
	}
}

// TestSteadyStateZeroAlloc is the hard 0 allocs/op gate on the hot codec
// path: after warm-up, a binary heartbeat and counter poll round trip
// without a single allocation on Send or Recv.
func TestSteadyStateZeroAlloc(t *testing.T) {
	a, b := memPair()
	ab := a.(*memEnd).out
	ba := b.(*memEnd).out
	coord := NewConn(a, Options{})
	agent := NewConn(b, Options{Mirror: true})
	coord.SetBinary(true)

	rep := sampleReport(8, 5)
	// Messages are hoisted out of the loop: the gate measures the codec
	// path, and callers (coordinator, agent) likewise reuse request
	// structures across rounds.
	reqMsg := &proto.Message{Kind: proto.KindCounterRequest, ID: 7,
		Trace:          &proto.TraceContext{PassID: 2},
		CounterRequest: &proto.CounterRequest{AdvanceQuanta: 10, WindowQuanta: 10}}
	repMsg := &proto.Message{Kind: proto.KindCounterReport, ID: 7, CounterReport: rep}
	cycle := func() {
		ab.Reset()
		ba.Reset()
		if err := coord.Send(reqMsg); err != nil {
			t.Fatal(err)
		}
		if _, err := agent.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := agent.Send(repMsg); err != nil {
			t.Fatal(err)
		}
		if _, err := coord.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		cycle() // warm buffers and delta state
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state codec cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFrameTooLarge checks both directions of the size bound.
func TestFrameTooLarge(t *testing.T) {
	a, _ := memPair()
	c := NewConn(a, Options{})
	c.SetBinary(true)
	huge := &proto.Message{Kind: proto.KindActuate, Actuate: &proto.Actuate{FreqsMHz: make([]float64, proto.MaxMessageSize/8+2)}}
	if err := c.Send(huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized send: %v, want ErrTooLarge", err)
	}

	in := &bytes.Buffer{}
	in.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	r := NewConn(&memEnd{in: in, out: &bytes.Buffer{}}, Options{})
	if _, err := r.Recv(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized recv: %v, want ErrTooLarge", err)
	}
}

// TestRecvTruncatedFrame checks a frame cut mid-payload errors rather
// than hangs or panics.
func TestRecvTruncatedFrame(t *testing.T) {
	var ds deltaSendState
	full, _, err := appendMessage(nil, &proto.Message{Kind: proto.KindCounterReport, ID: 3,
		CounterReport: sampleReport(2, 3)}, &ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut += 5 {
		in := &bytes.Buffer{}
		var hdr [4]byte
		hdr[0] = byte(len(full) >> 24)
		hdr[1] = byte(len(full) >> 16)
		hdr[2] = byte(len(full) >> 8)
		hdr[3] = byte(len(full))
		in.Write(hdr[:])
		in.Write(full[:cut])
		c := NewConn(&memEnd{in: in, out: &bytes.Buffer{}}, Options{})
		if _, err := c.Recv(); err == nil {
			t.Fatalf("cut at %d: no error", cut)
		} else if errors.Is(err, io.EOF) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: raw EOF leaked: %v", cut, err)
		}
	}
}

func TestNegotiate(t *testing.T) {
	if !Negotiate([]string{"json", CodecName}) {
		t.Fatal("bin1 not negotiated")
	}
	if Negotiate([]string{"json"}) || Negotiate(nil) {
		t.Fatal("negotiated without advertisement")
	}
}
