package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/netcluster/proto"
)

// kindByte maps a proto kind string to its binary kind byte; ok=false for
// kinds that stay JSON (hello, capabilities, error).
func kindByte(kind string) (byte, bool) {
	switch kind {
	case proto.KindHeartbeat:
		return kindHeartbeat, true
	case proto.KindHeartbeatAck:
		return kindHeartbeatAck, true
	case proto.KindCounterRequest:
		return kindCounterRequest, true
	case proto.KindCounterReport:
		return kindCounterReport, true
	case proto.KindActuate:
		return kindActuate, true
	case proto.KindActuateAck:
		return kindActuateAck, true
	case proto.KindDemandRequest:
		return kindDemandRequest, true
	case proto.KindDemandReport:
		return kindDemandReport, true
	case proto.KindGrant:
		return kindGrant, true
	case proto.KindGrantAck:
		return kindGrantAck, true
	default:
		return 0, false
	}
}

// kindString inverts kindByte.
func kindString(k byte) (string, bool) {
	switch k {
	case kindHeartbeat:
		return proto.KindHeartbeat, true
	case kindHeartbeatAck:
		return proto.KindHeartbeatAck, true
	case kindCounterRequest:
		return proto.KindCounterRequest, true
	case kindCounterReport:
		return proto.KindCounterReport, true
	case kindActuate:
		return proto.KindActuate, true
	case kindActuateAck:
		return proto.KindActuateAck, true
	case kindDemandRequest:
		return proto.KindDemandRequest, true
	case kindDemandReport:
		return proto.KindDemandReport, true
	case kindGrant:
		return proto.KindGrant, true
	case kindGrantAck:
		return proto.KindGrantAck, true
	default:
		return "", false
	}
}

// putF64 appends a float's raw IEEE-754 bits big-endian: exact
// round-trip, fixed 8 bytes.
func putF64(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

// cpuBase holds one CPU's previous counter values, the base a delta
// report is encoded against (and reconstructed from).
type cpuBase struct {
	instructions uint64
	cycles       uint64
	halted       uint64
	l2           uint64
	l3           uint64
	mem          uint64
}

func baseOf(r proto.CPUReport) cpuBase {
	return cpuBase{
		instructions: r.Instructions,
		cycles:       r.Cycles,
		halted:       r.HaltedCycles,
		l2:           r.L2Refs,
		l3:           r.L3Refs,
		mem:          r.MemRefs,
	}
}

// deltaSendState is the reporter side of the delta protocol: the sequence
// of the last report sent, the last sequence the peer acked (carried on
// its counter/demand requests; zeroed when a request arrives as JSON),
// and the values of the last report. Deltas are only sent when ackSeq ==
// seq — the peer provably holds exactly the base we would encode against.
type deltaSendState struct {
	seq    uint64
	ackSeq uint64
	base   []cpuBase
}

// deltaRecvState is the receiver side: the last sequence received (acked
// on outgoing requests) and the reconstruction base.
type deltaRecvState struct {
	seq     uint64
	baseSeq uint64
	base    []cpuBase
}

// appendMessage encodes m into b using the binary codec. ok=false means
// the kind has no binary form and the caller must fall back to JSON. ds
// may be nil when the sender never emits counter reports.
func appendMessage(b []byte, m *proto.Message, ds *deltaSendState, ackSeq uint64) (out []byte, ok bool, err error) {
	kb, ok := kindByte(m.Kind)
	if !ok {
		return b, false, nil
	}
	var flags byte
	if m.Trace != nil {
		flags |= flagTrace
	}
	delta := false
	if kb == kindCounterReport {
		rep := m.CounterReport
		if rep == nil {
			return b, false, fmt.Errorf("wire: %s message without payload", m.Kind)
		}
		delta = ds != nil && ds.seq != 0 && ds.ackSeq == ds.seq && len(ds.base) == len(rep.CPUs)
		if delta {
			flags |= flagDelta
		}
	}
	b = append(b, Magic, Version, kb, flags)
	b = binary.AppendUvarint(b, m.ID)
	b = putF64(b, m.Now)
	if m.Trace != nil {
		b = binary.AppendUvarint(b, m.Trace.PassID)
	}
	b = putF64(b, m.ServiceSec)

	switch kb {
	case kindHeartbeat, kindHeartbeatAck:
		// Envelope only.
	case kindCounterRequest, kindDemandRequest:
		req := m.CounterRequest
		if req == nil {
			return b, false, fmt.Errorf("wire: %s message without payload", m.Kind)
		}
		b = binary.AppendVarint(b, int64(req.AdvanceQuanta))
		b = binary.AppendVarint(b, int64(req.WindowQuanta))
		b = binary.AppendUvarint(b, ackSeq)
	case kindCounterReport:
		b = appendCounterReport(b, m.CounterReport, ds, delta)
	case kindActuate:
		act := m.Actuate
		if act == nil {
			return b, false, fmt.Errorf("wire: %s message without payload", m.Kind)
		}
		b = appendFloats(b, act.FreqsMHz)
	case kindActuateAck:
		ack := m.ActuateAck
		if ack == nil {
			return b, false, fmt.Errorf("wire: %s message without payload", m.Kind)
		}
		b = appendFloats(b, ack.AppliedMHz)
	case kindDemandReport:
		rep := m.DemandReport
		if rep == nil {
			return b, false, fmt.Errorf("wire: %s message without payload", m.Kind)
		}
		b = appendDemandReport(b, rep)
	case kindGrant:
		g := m.Grant
		if g == nil {
			return b, false, fmt.Errorf("wire: %s message without payload", m.Kind)
		}
		b = putF64(b, g.BudgetW)
	case kindGrantAck:
		ack := m.GrantAck
		if ack == nil {
			return b, false, fmt.Errorf("wire: %s message without payload", m.Kind)
		}
		b = putF64(b, ack.ChargedW)
		b = putF64(b, ack.TablePowerW)
		b = putF64(b, ack.ReservedW)
		b = append(b, boolByte(ack.Met))
	}
	return b, true, nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func appendFloats(b []byte, fs []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(fs)))
	for _, f := range fs {
		b = putF64(b, f)
	}
	return b
}

// appendCounterReport encodes the report and advances ds: the report gets
// the next sequence number and becomes the new delta base.
func appendCounterReport(b []byte, rep *proto.CounterReport, ds *deltaSendState, delta bool) []byte {
	seq := uint64(1)
	if ds != nil {
		seq = ds.seq + 1
	}
	b = binary.AppendUvarint(b, seq)
	if delta {
		b = binary.AppendUvarint(b, ds.seq)
	}
	b = putF64(b, rep.CPUPowerW)
	b = putF64(b, rep.SystemPowerW)
	b = binary.AppendUvarint(b, uint64(len(rep.CPUs)))
	for i, c := range rep.CPUs {
		b = append(b, boolByte(c.Idle))
		b = putF64(b, c.WindowSec)
		if delta {
			p := ds.base[i]
			b = binary.AppendVarint(b, int64(c.Instructions-p.instructions))
			b = binary.AppendVarint(b, int64(c.Cycles-p.cycles))
			b = binary.AppendVarint(b, int64(c.HaltedCycles-p.halted))
			b = binary.AppendVarint(b, int64(c.L2Refs-p.l2))
			b = binary.AppendVarint(b, int64(c.L3Refs-p.l3))
			b = binary.AppendVarint(b, int64(c.MemRefs-p.mem))
		} else {
			b = binary.AppendUvarint(b, c.Instructions)
			b = binary.AppendUvarint(b, c.Cycles)
			b = binary.AppendUvarint(b, c.HaltedCycles)
			b = binary.AppendUvarint(b, c.L2Refs)
			b = binary.AppendUvarint(b, c.L3Refs)
			b = binary.AppendUvarint(b, c.MemRefs)
		}
	}
	if ds != nil {
		ds.base = ds.base[:0]
		for _, c := range rep.CPUs {
			ds.base = append(ds.base, baseOf(c))
		}
		ds.seq = seq
	}
	return b
}

func appendDemandReport(b []byte, rep *proto.DemandReport) []byte {
	b = binary.AppendUvarint(b, uint64(len(rep.Points)))
	for _, p := range rep.Points {
		b = putF64(b, p.PowerW)
		b = putF64(b, p.Loss)
		b = putF64(b, p.StepLoss)
		b = binary.AppendVarint(b, int64(p.StepIdx))
		b = binary.AppendVarint(b, int64(p.StepProc))
	}
	b = binary.AppendUvarint(b, uint64(len(rep.Desired)))
	for _, d := range rep.Desired {
		b = binary.AppendVarint(b, int64(d))
	}
	b = putF64(b, rep.ReservedW)
	b = putF64(b, rep.CPUPowerW)
	b = putF64(b, rep.SystemPowerW)
	b = binary.AppendUvarint(b, uint64(len(rep.Degraded)))
	for _, d := range rep.Degraded {
		b = binary.AppendUvarint(b, uint64(len(d)))
		b = append(b, d...)
	}
	return b
}

// reader decodes a binary payload with a sticky error, so decode code
// reads linearly and the first failure wins.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n == 0 {
		r.fail(ErrTruncated)
		return 0
	}
	if n < 0 {
		r.fail(ErrCorrupt)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n == 0 {
		r.fail(ErrTruncated)
		return 0
	}
	if n < 0 {
		r.fail(ErrCorrupt)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(ErrCorrupt)
		return false
	}
}

// count reads an element count and bounds it by the remaining payload
// bytes (every element occupies at least one byte), so a hostile count
// cannot force a huge reconstruction loop.
func (r *reader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(ErrCorrupt)
		return 0
	}
	return int(n)
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// message bundles a reusable decoded Message with conn-owned payload
// structs: decodeBinary fills these in place, so a steady stream of hot
// frames allocates nothing. The returned *proto.Message (and everything
// it points to) is valid only until the next decode on the same conn.
type message struct {
	msg        proto.Message
	trace      proto.TraceContext
	counterReq proto.CounterRequest
	counterRep proto.CounterReport
	actuate    proto.Actuate
	actuateAck proto.ActuateAck
	demandRep  proto.DemandReport
	grant      proto.Grant
	grantAck   proto.GrantAck
}

// decodeBinary decodes one binary payload into dst, updating the delta
// protocol state: a counter/demand request's ackSeq lands in ds (the
// responder's send state), a counter report reconstructs against and
// advances rs. Every error is (or wraps) one of the package's typed
// errors; arbitrary input must never panic.
func decodeBinary(payload []byte, dst *message, ds *deltaSendState, rs *deltaRecvState) (*proto.Message, error) {
	if len(payload) < 4 {
		return nil, ErrTruncated
	}
	if payload[0] != Magic {
		return nil, ErrBadMagic
	}
	if payload[1] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, payload[1])
	}
	kb := payload[2]
	ks, ok := kindString(kb)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kb)
	}
	flags := payload[3]
	if flags&^(flagDelta|flagTrace) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags)
	}
	if flags&flagDelta != 0 && kb != kindCounterReport {
		return nil, fmt.Errorf("%w: delta flag on %s", ErrCorrupt, ks)
	}

	r := reader{b: payload, off: 4}
	dst.msg = proto.Message{V: proto.Version, Kind: ks}
	m := &dst.msg
	m.ID = r.uvarint()
	m.Now = r.f64()
	if flags&flagTrace != 0 {
		dst.trace.PassID = r.uvarint()
		m.Trace = &dst.trace
	}
	m.ServiceSec = r.f64()

	switch kb {
	case kindHeartbeat, kindHeartbeatAck:
		// Envelope only.
	case kindCounterRequest, kindDemandRequest:
		req := &dst.counterReq
		req.AdvanceQuanta = int(r.varint())
		req.WindowQuanta = int(r.varint())
		ackSeq := r.uvarint()
		m.CounterRequest = req
		if r.err == nil && ds != nil {
			ds.ackSeq = ackSeq
		}
	case kindCounterReport:
		if err := decodeCounterReport(&r, dst, rs, flags&flagDelta != 0); err != nil {
			return nil, err
		}
	case kindActuate:
		act := &dst.actuate
		act.FreqsMHz = readFloats(&r, act.FreqsMHz)
		m.Actuate = act
	case kindActuateAck:
		ack := &dst.actuateAck
		ack.AppliedMHz = readFloats(&r, ack.AppliedMHz)
		m.ActuateAck = ack
	case kindDemandReport:
		rep := &dst.demandRep
		decodeDemandReport(&r, rep)
		m.DemandReport = rep
	case kindGrant:
		dst.grant.BudgetW = r.f64()
		m.Grant = &dst.grant
	case kindGrantAck:
		ack := &dst.grantAck
		ack.ChargedW = r.f64()
		ack.TablePowerW = r.f64()
		ack.ReservedW = r.f64()
		ack.Met = r.bool()
		m.GrantAck = ack
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b)-r.off)
	}
	return m, nil
}

func readFloats(r *reader, into []float64) []float64 {
	n := r.count()
	into = into[:0]
	for i := 0; i < n && r.err == nil; i++ {
		into = append(into, r.f64())
	}
	return into
}

// decodeCounterReport reconstructs a report, applying deltas against the
// receiver's base when flagged, and advances the base to the new values.
func decodeCounterReport(r *reader, dst *message, rs *deltaRecvState, delta bool) error {
	rep := &dst.counterRep
	seq := r.uvarint()
	var baseSeq uint64
	if delta {
		baseSeq = r.uvarint()
		if r.err == nil && (rs == nil || rs.baseSeq != baseSeq || rs.baseSeq == 0) {
			have := uint64(0)
			if rs != nil {
				have = rs.baseSeq
			}
			return fmt.Errorf("%w: frame base %d, receiver base %d", ErrDeltaBase, baseSeq, have)
		}
	}
	rep.CPUPowerW = r.f64()
	rep.SystemPowerW = r.f64()
	n := r.count()
	if delta && r.err == nil && n != len(rs.base) {
		return fmt.Errorf("%w: delta report has %d CPUs, base has %d", ErrDeltaBase, n, len(rs.base))
	}
	rep.CPUs = rep.CPUs[:0]
	for i := 0; i < n && r.err == nil; i++ {
		var c proto.CPUReport
		c.Idle = r.bool()
		c.WindowSec = r.f64()
		if delta {
			p := rs.base[i]
			c.Instructions = p.instructions + uint64(r.varint())
			c.Cycles = p.cycles + uint64(r.varint())
			c.HaltedCycles = p.halted + uint64(r.varint())
			c.L2Refs = p.l2 + uint64(r.varint())
			c.L3Refs = p.l3 + uint64(r.varint())
			c.MemRefs = p.mem + uint64(r.varint())
		} else {
			c.Instructions = r.uvarint()
			c.Cycles = r.uvarint()
			c.HaltedCycles = r.uvarint()
			c.L2Refs = r.uvarint()
			c.L3Refs = r.uvarint()
			c.MemRefs = r.uvarint()
		}
		rep.CPUs = append(rep.CPUs, c)
	}
	if r.err != nil {
		return r.err
	}
	if rs != nil {
		rs.base = rs.base[:0]
		for _, c := range rep.CPUs {
			rs.base = append(rs.base, baseOf(c))
		}
		rs.baseSeq = seq
		rs.seq = seq
	}
	dst.msg.CounterReport = rep
	return nil
}

func decodeDemandReport(r *reader, rep *proto.DemandReport) {
	n := r.count()
	rep.Points = rep.Points[:0]
	for i := 0; i < n && r.err == nil; i++ {
		var p proto.DemandPoint
		p.PowerW = r.f64()
		p.Loss = r.f64()
		p.StepLoss = r.f64()
		p.StepIdx = int(r.varint())
		p.StepProc = int(r.varint())
		rep.Points = append(rep.Points, p)
	}
	n = r.count()
	rep.Desired = rep.Desired[:0]
	for i := 0; i < n && r.err == nil; i++ {
		rep.Desired = append(rep.Desired, int(r.varint()))
	}
	rep.ReservedW = r.f64()
	rep.CPUPowerW = r.f64()
	rep.SystemPowerW = r.f64()
	n = r.count()
	rep.Degraded = rep.Degraded[:0]
	for i := 0; i < n && r.err == nil; i++ {
		l := r.count()
		rep.Degraded = append(rep.Degraded, string(r.bytes(l)))
	}
}
