// Package wire is the netcluster control plane's negotiated binary codec
// for hot messages: heartbeats, counter polls, actuation, and the relay
// tier's demand/grant exchange. Session-establishment traffic — hello,
// capabilities, errors — stays JSON, so the handshake is always
// inspectable and a coordinator can talk to a JSON-only agent without
// negotiation.
//
// Framing is unchanged from package proto: a 4-byte big-endian length
// prefix bounds every payload. Inside the frame the first byte
// discriminates the codec — 0xB2 never starts a JSON object, so a binary
// payload is unambiguous and both encodings can share one connection. A
// binary payload is:
//
//	offset  size  field
//	0       1     magic 0xB2
//	1       1     codec version (1)
//	2       1     kind (see the kind* constants)
//	3       1     flags (bit 0: delta counter report, bit 1: trace present)
//	4       ...   envelope: uvarint ID, f64 Now,
//	              [uvarint trace pass ID when flag set], f64 ServiceSec
//	...     ...   kind-specific payload
//
// Floats travel as raw big-endian IEEE-754 bits (math.Float64bits), so
// every value round-trips exactly — the codec must not perturb the
// scheduler's arithmetic. Unsigned counters travel as uvarints; signed
// quantities and counter deltas as zigzag varints. The node name is
// omitted: the receiver knows which connection a frame arrived on.
//
// Counter reports are delta-encoded when safe: each report carries a
// sequence number, every binary counter/demand request acks the last
// sequence its sender received, and the reporter sends varint deltas
// against its previous report only when that previous report was acked
// (otherwise a full snapshot — the rejoin and loss path). A delta frame
// names its base sequence; a receiver whose base does not match fails the
// read with ErrDeltaBase, tearing the connection down to a fresh
// handshake and a full snapshot rather than risking silent skew.
package wire

import (
	"errors"
	"sync/atomic"
)

// Magic is the first payload byte of every binary frame. JSON payloads
// start with '{' (0x7B); 0xB2 cannot begin a JSON value, so one byte
// settles the codec.
const Magic = 0xB2

// Version is the binary codec version, independent of proto.Version
// (which still stamps the decoded Message's V field).
const Version = 1

// CodecName is the capability string agents advertise and coordinators
// select to enable this codec.
const CodecName = "bin1"

// Binary kind bytes, one per hot message kind. Kinds without a byte here
// (hello, capabilities, error) are JSON-only by design.
const (
	kindHeartbeat      = 1
	kindHeartbeatAck   = 2
	kindCounterRequest = 3
	kindCounterReport  = 4
	kindActuate        = 5
	kindActuateAck     = 6
	kindDemandRequest  = 7
	kindDemandReport   = 8
	kindGrant          = 9
	kindGrantAck       = 10
)

// Envelope flag bits.
const (
	// flagDelta marks a counter report encoded as deltas against the
	// sender's previous (acked) report.
	flagDelta = 1 << 0
	// flagTrace marks an envelope carrying a trace pass ID.
	flagTrace = 1 << 1
)

// Typed decode errors. Transport code treats any of them as a broken
// connection; tests and the fuzzer assert malformed input surfaces as one
// of these rather than a panic.
var (
	// ErrBadMagic reports a payload handed to the binary decoder that
	// does not start with Magic.
	ErrBadMagic = errors.New("wire: payload does not start with binary magic")
	// ErrBadVersion reports a binary frame with an unknown codec version.
	ErrBadVersion = errors.New("wire: unsupported binary codec version")
	// ErrBadKind reports a binary frame with an unknown kind byte.
	ErrBadKind = errors.New("wire: unknown binary message kind")
	// ErrTruncated reports a payload that ends mid-field.
	ErrTruncated = errors.New("wire: truncated binary payload")
	// ErrTooLarge reports a frame whose length prefix exceeds
	// proto.MaxMessageSize (shared with the JSON path).
	ErrTooLarge = errors.New("wire: frame exceeds message size limit")
	// ErrCorrupt reports a structurally invalid payload: a varint
	// overflow, an element count exceeding the remaining bytes, trailing
	// garbage, or a field value outside its domain.
	ErrCorrupt = errors.New("wire: corrupt binary payload")
	// ErrDeltaBase reports a delta counter report whose base sequence is
	// not the receiver's current base — the connection must be torn down
	// so the reporter falls back to a full snapshot.
	ErrDeltaBase = errors.New("wire: delta report base mismatch")
)

// Stats counts codec work across every connection sharing the struct
// (atomically — connections run on independent goroutines). The
// coordinator emits them as pass-phase telemetry; the netbench experiment
// reports them per run.
type Stats struct {
	BinFramesOut  atomic.Uint64
	BinFramesIn   atomic.Uint64
	JSONFramesOut atomic.Uint64
	JSONFramesIn  atomic.Uint64
	BytesOut      atomic.Uint64
	BytesIn       atomic.Uint64
	EncodeNanos   atomic.Uint64
	DecodeNanos   atomic.Uint64
	FullOut       atomic.Uint64
	DeltaOut      atomic.Uint64
	FullIn        atomic.Uint64
	DeltaIn       atomic.Uint64
}

// StatsSnapshot is a plain copy of Stats for reports.
type StatsSnapshot struct {
	BinFramesOut  uint64 `json:"bin_frames_out"`
	BinFramesIn   uint64 `json:"bin_frames_in"`
	JSONFramesOut uint64 `json:"json_frames_out"`
	JSONFramesIn  uint64 `json:"json_frames_in"`
	BytesOut      uint64 `json:"bytes_out"`
	BytesIn       uint64 `json:"bytes_in"`
	EncodeNanos   uint64 `json:"encode_nanos"`
	DecodeNanos   uint64 `json:"decode_nanos"`
	FullOut       uint64 `json:"full_reports_out"`
	DeltaOut      uint64 `json:"delta_reports_out"`
	FullIn        uint64 `json:"full_reports_in"`
	DeltaIn       uint64 `json:"delta_reports_in"`
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		BinFramesOut:  s.BinFramesOut.Load(),
		BinFramesIn:   s.BinFramesIn.Load(),
		JSONFramesOut: s.JSONFramesOut.Load(),
		JSONFramesIn:  s.JSONFramesIn.Load(),
		BytesOut:      s.BytesOut.Load(),
		BytesIn:       s.BytesIn.Load(),
		EncodeNanos:   s.EncodeNanos.Load(),
		DecodeNanos:   s.DecodeNanos.Load(),
		FullOut:       s.FullOut.Load(),
		DeltaOut:      s.DeltaOut.Load(),
		FullIn:        s.FullIn.Load(),
		DeltaIn:       s.DeltaIn.Load(),
	}
}

// Negotiate returns true when the peer's advertised codec list names this
// codec. Order does not matter; "json" is always implied.
func Negotiate(codecs []string) bool {
	for _, c := range codecs {
		if c == CodecName {
			return true
		}
	}
	return false
}
