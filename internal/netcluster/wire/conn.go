package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/netcluster/proto"
)

// Options configures a Conn.
type Options struct {
	// Mirror makes the conn follow its peer: binary transmission turns on
	// (and stays on) as soon as a binary frame is received. This is the
	// server/agent side — the coordinator decides the codec, the agent
	// answers in kind, and no explicit enable message is needed.
	Mirror bool
	// Stats, when non-nil, accumulates codec counters across every conn
	// sharing it.
	Stats *Stats
}

// Conn is a proto.Conn speaking both JSON and the binary codec over one
// stream. Received frames self-describe (binary payloads start with
// Magic); transmission is JSON until SetBinary(true) — or, in Mirror
// mode, until the peer sends binary first. Hot kinds then go binary;
// hello, capabilities and errors stay JSON always.
//
// Like proto's TCP conn, Send and Recv each require external
// serialisation per logical stream. Recv returns a conn-owned Message for
// binary frames: it and everything it points to are valid only until the
// next Recv on the same Conn.
type Conn struct {
	c    net.Conn
	opts Options

	binary bool

	wbuf frameBuffer
	enc  *json.Encoder
	hdr  [4]byte
	rbuf []byte

	dec message
	ds  deltaSendState
	rs  deltaRecvState
}

// frameBuffer accumulates one outgoing frame behind the 4-byte length
// prefix, reusing its backing array across messages.
type frameBuffer struct {
	b []byte
}

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

// NewConn wraps a stream connection. The result implements proto.Conn
// and proto.BinaryCapable.
func NewConn(c net.Conn, opts Options) *Conn {
	return &Conn{c: c, opts: opts}
}

// Dial connects to a listening agent and returns a codec-capable message
// connection (transmitting JSON until enabled). It is the coordinator's
// default dialer.
func Dial(addr string, timeout time.Duration) (proto.Conn, error) {
	return DialStats(addr, timeout, nil)
}

// DialStats is Dial with shared codec counters.
func DialStats(addr string, timeout time.Duration, st *Stats) (proto.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewConn(c, Options{Stats: st}), nil
}

// SetBinary switches hot-kind transmission to the binary codec (or back
// to JSON). The receive side always accepts both, so the switch needs no
// synchronisation with the peer.
func (c *Conn) SetBinary(on bool) { c.binary = on }

// Binary reports whether hot kinds currently transmit binary.
func (c *Conn) Binary() bool { return c.binary }

// Send writes one message, stamping the protocol version. Hot kinds use
// the binary codec when enabled; everything else is length-prefixed JSON.
func (c *Conn) Send(m *proto.Message) error {
	m.V = proto.Version
	c.wbuf.b = append(c.wbuf.b[:0], 0, 0, 0, 0) // length prefix, patched below
	st := c.opts.Stats
	if c.binary {
		var start time.Time
		if st != nil {
			start = time.Now()
		}
		out, ok, err := appendMessage(c.wbuf.b, m, &c.ds, c.rs.seq)
		if err != nil {
			return err
		}
		if ok {
			c.wbuf.b = out
			if st != nil {
				st.EncodeNanos.Add(uint64(time.Since(start)))
				st.BinFramesOut.Add(1)
				if m.Kind == proto.KindCounterReport {
					// out[7]: flags byte behind 4 length + magic/version/kind.
					if out[7]&flagDelta != 0 {
						st.DeltaOut.Add(1)
					} else {
						st.FullOut.Add(1)
					}
				}
			}
			return c.writeFrame()
		}
	}
	if c.enc == nil {
		c.enc = json.NewEncoder(&c.wbuf)
	}
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("wire: encode %s: %w", m.Kind, err)
	}
	if st != nil {
		st.JSONFramesOut.Add(1)
	}
	return c.writeFrame()
}

// writeFrame patches the length prefix into wbuf and writes the frame in
// one call, so a concurrent reader never sees a split frame boundary.
func (c *Conn) writeFrame() error {
	payload := len(c.wbuf.b) - 4
	if payload > proto.MaxMessageSize {
		return fmt.Errorf("%w: %d byte payload", ErrTooLarge, payload)
	}
	binary.BigEndian.PutUint32(c.wbuf.b, uint32(payload))
	n, err := c.c.Write(c.wbuf.b)
	if st := c.opts.Stats; st != nil {
		st.BytesOut.Add(uint64(n))
	}
	return err
}

// Recv reads the next message. Binary frames decode into a conn-owned
// Message valid until the next Recv; JSON frames decode into a fresh one.
func (c *Conn) Recv() (*proto.Message, error) {
	// The header buffer is a conn field: a stack array would escape
	// through the io.ReadFull interface call and cost an allocation per
	// frame, which the steady-state zero-alloc gate forbids.
	if _, err := io.ReadFull(c.c, c.hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(c.hdr[:])
	if size == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrTruncated)
	}
	if size > proto.MaxMessageSize {
		return nil, fmt.Errorf("%w: frame length %d", ErrTooLarge, size)
	}
	if cap(c.rbuf) < int(size) {
		c.rbuf = make([]byte, size)
	}
	payload := c.rbuf[:size]
	if _, err := io.ReadFull(c.c, payload); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	st := c.opts.Stats
	if st != nil {
		st.BytesIn.Add(uint64(size) + 4)
	}
	if payload[0] == Magic {
		var start time.Time
		if st != nil {
			start = time.Now()
		}
		delta := len(payload) >= 4 && payload[3]&flagDelta != 0
		m, err := decodeBinary(payload, &c.dec, &c.ds, &c.rs)
		if err != nil {
			return nil, err
		}
		if st != nil {
			st.DecodeNanos.Add(uint64(time.Since(start)))
			st.BinFramesIn.Add(1)
			if m.Kind == proto.KindCounterReport {
				if delta {
					st.DeltaIn.Add(1)
				} else {
					st.FullIn.Add(1)
				}
			}
		}
		if c.opts.Mirror {
			c.binary = true
		}
		return m, nil
	}
	var m proto.Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("wire: decode frame: %w", err)
	}
	if m.V != proto.Version {
		return nil, fmt.Errorf("wire: version %d, want %d", m.V, proto.Version)
	}
	if st != nil {
		st.JSONFramesIn.Add(1)
	}
	// A JSON request carries no delta ack: the peer cannot confirm our
	// last report, so the next one must be a full snapshot.
	if m.Kind == proto.KindCounterRequest || m.Kind == proto.KindDemandRequest {
		c.ds.ackSeq = 0
	}
	return &m, nil
}

// SetDeadline bounds pending and future Send/Recv calls.
func (c *Conn) SetDeadline(t time.Time) error { return c.c.SetDeadline(t) }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

var (
	_ proto.Conn          = (*Conn)(nil)
	_ proto.BinaryCapable = (*Conn)(nil)
)
