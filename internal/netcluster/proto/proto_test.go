package proto

import (
	"encoding/binary"
	"encoding/json"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/counters"
)

// sendRecv pushes m through an in-memory connection and returns what the
// far end decodes.
func sendRecv(t *testing.T, m *Message) *Message {
	t.Helper()
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- a.Send(m) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []*Message{
		{Kind: KindHello, ID: 1, Hello: &Hello{Coordinator: "coord"}},
		{Kind: KindHelloAck, ID: 1, Node: "n0", Now: 1.5, Capabilities: &Capabilities{
			Node: "n0", NumCPUs: 4, QuantumSec: 0.01,
			FreqsMHz: []float64{600, 800, 1000}, MaxPowerW: 140, FailsafeSec: 0.25,
		}},
		{Kind: KindCounterRequest, ID: 2, CounterRequest: &CounterRequest{AdvanceQuanta: 10, WindowQuanta: 10}},
		{Kind: KindCounterReport, ID: 2, Node: "n0", Now: 1.6, CounterReport: &CounterReport{
			CPUs: []CPUReport{
				{WindowSec: 0.1, Instructions: 5000, Cycles: 9000, L2Refs: 40, MemRefs: 7},
				{Idle: true, WindowSec: 0.1, Cycles: 100, HaltedCycles: 9000},
			},
			CPUPowerW: 123.5, SystemPowerW: 400,
		}},
		{Kind: KindActuate, ID: 3, Actuate: &Actuate{FreqsMHz: []float64{800, 600}}},
		{Kind: KindActuateAck, ID: 3, Node: "n0", ActuateAck: &ActuateAck{AppliedMHz: []float64{800, 600}}},
		{Kind: KindHeartbeat, ID: 4},
		{Kind: KindHeartbeatAck, ID: 4, Node: "n0", Now: 1.7},
		{Kind: KindError, ID: 5, Node: "n0", Error: "cpu 9 out of range"},
	}
	for _, m := range msgs {
		got := sendRecv(t, m)
		m.V = Version // Send stamps the version
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

func TestCPUReportDeltaRoundTrip(t *testing.T) {
	d := counters.Delta{
		Window: 0.1, Instructions: 1e6, Cycles: 2e6, HaltedCycles: 3,
		L2Refs: 500, L3Refs: 60, MemRefs: 7,
	}
	if got := ReportFor(d, false).Delta(); got != d {
		t.Errorf("delta round trip: got %+v want %+v", got, d)
	}
}

func TestRecvRejectsVersionMismatch(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	payload, _ := json.Marshal(&Message{V: Version + 1, Kind: KindHeartbeat})
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		a.Write(hdr[:])
		a.Write(payload)
	}()
	_, err := NewConn(b).Recv()
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
}

func TestRecvRejectsOversizeAndZeroFrames(t *testing.T) {
	for _, size := range []uint32{0, MaxMessageSize + 1} {
		a, b := net.Pipe()
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], size)
		go a.Write(hdr[:])
		_, err := NewConn(b).Recv()
		if err == nil {
			t.Errorf("frame length %d accepted", size)
		}
		a.Close()
		b.Close()
	}
}

func TestRecvReportsTruncatedFrame(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 100)
		a.Write(hdr[:])
		a.Write([]byte(`{"v":1`)) // only 6 of the promised 100 bytes
		a.Close()
	}()
	_, err := NewConn(b).Recv()
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated frame not reported: %v", err)
	}
}

func TestSendRejectsOversizeMessage(t *testing.T) {
	a, _ := Pipe()
	defer a.Close()
	m := &Message{Kind: KindError, Error: strings.Repeat("x", MaxMessageSize)}
	if err := a.Send(m); err == nil {
		t.Error("oversize message accepted")
	}
}

func TestDeadlineUnblocksRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := b.SetDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := b.Recv()
	if err == nil {
		t.Fatal("Recv returned without data")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Errorf("deadline took %v to fire", time.Since(start))
	}
}

func TestDialAndServeTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		pc := NewConn(c)
		defer pc.Close()
		m, err := pc.Recv()
		if err != nil {
			return
		}
		pc.Send(&Message{Kind: KindHeartbeatAck, ID: m.ID, Node: "n0"})
	}()
	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Message{Kind: KindHeartbeat, ID: 7}); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Kind != KindHeartbeatAck || ack.ID != 7 || ack.Node != "n0" {
		t.Errorf("unexpected ack %+v", ack)
	}
}
