package proto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"
)

// Conn is a message-oriented connection carrying protocol frames. The TCP
// implementation below is the production transport; faultnet wraps any
// Conn to inject deterministic failures at message granularity.
type Conn interface {
	// Send writes one message. It stamps m.V with the protocol version.
	Send(m *Message) error
	// Recv reads the next message, rejecting malformed frames and version
	// mismatches.
	Recv() (*Message, error)
	// SetDeadline bounds both pending and future Send/Recv calls, like
	// net.Conn.SetDeadline. The zero time clears it.
	SetDeadline(t time.Time) error
	Close() error
}

// BinaryCapable is implemented by connections that can switch their hot
// messages to a negotiated binary codec (the wire package); wrappers such
// as faultnet forward the call to the connection they wrap. Enabling is
// transmit-side only — receivers always accept both encodings, so the
// switch needs no in-band synchronisation.
type BinaryCapable interface {
	SetBinary(on bool)
}

// netConn frames messages over a stream connection. The encode buffer
// and read buffer persist across calls so a steady message stream
// allocates no per-frame slices (json reflection still allocates the
// decoded Message — the wire package's binary codec removes that too).
type netConn struct {
	c    net.Conn
	wbuf frameBuffer
	enc  *json.Encoder
	rbuf []byte
}

// frameBuffer accumulates one outgoing frame: 4 length bytes reserved up
// front, then the JSON payload appended by the encoder. It implements
// io.Writer over a reusable backing array.
type frameBuffer struct {
	b []byte
}

func (f *frameBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

// NewConn wraps a stream connection (TCP, unix, net.Pipe) as a message
// connection.
func NewConn(c net.Conn) Conn { return &netConn{c: c} }

// Dial connects to a listening agent and returns the message connection.
func Dial(addr string, timeout time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

func (n *netConn) Send(m *Message) error {
	m.V = Version
	n.wbuf.b = append(n.wbuf.b[:0], 0, 0, 0, 0) // length prefix, patched below
	if n.enc == nil {
		n.enc = json.NewEncoder(&n.wbuf)
	}
	if err := n.enc.Encode(m); err != nil {
		return fmt.Errorf("proto: encode %s: %w", m.Kind, err)
	}
	payload := len(n.wbuf.b) - 4
	if payload > MaxMessageSize {
		return fmt.Errorf("proto: %s message %d bytes exceeds limit %d", m.Kind, payload, MaxMessageSize)
	}
	binary.BigEndian.PutUint32(n.wbuf.b, uint32(payload))
	// One Write per frame so a concurrent writer cannot interleave
	// half-frames; the Conn contract still requires external send
	// serialisation per logical stream.
	_, err := n.c.Write(n.wbuf.b)
	return err
}

func (n *netConn) Recv() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(n.c, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > MaxMessageSize {
		return nil, fmt.Errorf("proto: frame length %d outside (0, %d]", size, MaxMessageSize)
	}
	if cap(n.rbuf) < int(size) {
		n.rbuf = make([]byte, size)
	}
	payload := n.rbuf[:size]
	if _, err := io.ReadFull(n.c, payload); err != nil {
		return nil, fmt.Errorf("proto: truncated frame: %w", err)
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("proto: decode frame: %w", err)
	}
	if m.V != Version {
		return nil, fmt.Errorf("proto: version %d, want %d", m.V, Version)
	}
	return &m, nil
}

func (n *netConn) SetDeadline(t time.Time) error { return n.c.SetDeadline(t) }

func (n *netConn) Close() error { return n.c.Close() }

// Pipe returns two ends of an in-memory message connection, for tests and
// fault-injection harnesses.
func Pipe() (Conn, Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
