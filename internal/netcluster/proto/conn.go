package proto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"
)

// Conn is a message-oriented connection carrying protocol frames. The TCP
// implementation below is the production transport; faultnet wraps any
// Conn to inject deterministic failures at message granularity.
type Conn interface {
	// Send writes one message. It stamps m.V with the protocol version.
	Send(m *Message) error
	// Recv reads the next message, rejecting malformed frames and version
	// mismatches.
	Recv() (*Message, error)
	// SetDeadline bounds both pending and future Send/Recv calls, like
	// net.Conn.SetDeadline. The zero time clears it.
	SetDeadline(t time.Time) error
	Close() error
}

// netConn frames messages over a stream connection.
type netConn struct {
	c net.Conn
}

// NewConn wraps a stream connection (TCP, unix, net.Pipe) as a message
// connection.
func NewConn(c net.Conn) Conn { return &netConn{c: c} }

// Dial connects to a listening agent and returns the message connection.
func Dial(addr string, timeout time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

func (n *netConn) Send(m *Message) error {
	m.V = Version
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("proto: encode %s: %w", m.Kind, err)
	}
	if len(payload) > MaxMessageSize {
		return fmt.Errorf("proto: %s message %d bytes exceeds limit %d", m.Kind, len(payload), MaxMessageSize)
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	// One Write per frame so a concurrent writer cannot interleave
	// half-frames; the Conn contract still requires external send
	// serialisation per logical stream.
	_, err = n.c.Write(frame)
	return err
}

func (n *netConn) Recv() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(n.c, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > MaxMessageSize {
		return nil, fmt.Errorf("proto: frame length %d outside (0, %d]", size, MaxMessageSize)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(n.c, payload); err != nil {
		return nil, fmt.Errorf("proto: truncated frame: %w", err)
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("proto: decode frame: %w", err)
	}
	if m.V != Version {
		return nil, fmt.Errorf("proto: version %d, want %d", m.V, Version)
	}
	return &m, nil
}

func (n *netConn) SetDeadline(t time.Time) error { return n.c.SetDeadline(t) }

func (n *netConn) Close() error { return n.c.Close() }

// Pipe returns two ends of an in-memory message connection, for tests and
// fault-injection harnesses.
func Pipe() (Conn, Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
