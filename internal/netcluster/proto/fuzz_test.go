package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// readerConn adapts a byte slice into the net.Conn shape NewConn expects,
// so the fuzzer can feed the frame decoder arbitrary wire bytes without a
// real socket.
type readerConn struct {
	r *bytes.Reader
}

func (c *readerConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *readerConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *readerConn) Close() error                     { return nil }
func (c *readerConn) LocalAddr() net.Addr              { return nil }
func (c *readerConn) RemoteAddr() net.Addr             { return nil }
func (c *readerConn) SetDeadline(time.Time) error      { return nil }
func (c *readerConn) SetReadDeadline(time.Time) error  { return nil }
func (c *readerConn) SetWriteDeadline(time.Time) error { return nil }

// frame wraps a payload in the 4-byte big-endian length header.
func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

// FuzzRecvFrame drives the frame decoder with arbitrary wire bytes. The
// decoder must never panic or over-allocate: the length prefix is bounds
// checked against (0, MaxMessageSize] before any payload allocation, a
// short payload is a "truncated frame" error rather than a hang, and
// every successfully decoded message carries the negotiated version and
// re-encodes cleanly.
func FuzzRecvFrame(f *testing.F) {
	good, _ := json.Marshal(&Message{V: Version, Kind: KindHello, Hello: &Hello{Coordinator: "c0"}})
	f.Add(frame(good))
	f.Add(frame([]byte("{}")))
	f.Add(frame([]byte(`{"v":99,"kind":"hello"}`)))
	f.Add([]byte{0, 0, 0, 0})             // zero-length frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // 4GiB claim: must be rejected, not allocated
	f.Add([]byte{0, 0, 0, 8, '{', '}'})   // truncated payload
	f.Add(append(frame(good), frame(good)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(&readerConn{r: bytes.NewReader(data)})
		for {
			m, err := c.Recv()
			if err != nil {
				return // any malformed input must surface as an error, not a panic
			}
			if m.V != Version {
				t.Fatalf("accepted version %d", m.V)
			}
			payload, err := json.Marshal(m)
			if err != nil {
				t.Fatalf("decoded message does not re-encode: %v", err)
			}
			if len(payload) > MaxMessageSize+1024 {
				t.Fatalf("decoded message re-encodes to %d bytes, past the frame bound", len(payload))
			}
		}
	})
}
