// Package proto defines the netcluster control-plane wire protocol: the
// messages a cluster coordinator exchanges with per-node agents to read
// performance counters and actuate frequency/voltage settings over a real
// network, plus the framing that carries them.
//
// Framing is a 4-byte big-endian length prefix followed by one JSON
// object. Every message carries the protocol version (readers reject
// mismatches rather than guess) and a request ID; responses echo the ID of
// the request they answer, so a coordinator can discard stale or
// duplicated responses after retries. JSON keeps the protocol inspectable
// with tcpdump and evolvable field-by-field; the length prefix bounds
// reads and keeps message boundaries independent of the payload encoding.
package proto

import (
	"repro/internal/counters"
)

// Version is the protocol version. A reader that receives any other
// version fails the read; the handshake surfaces the mismatch as an
// error message rather than undefined behaviour mid-run.
const Version = 1

// MaxMessageSize bounds one frame's JSON payload. Counter reports grow
// linearly in CPUs, so 1 MiB leaves orders of magnitude of headroom while
// keeping a corrupt or hostile length prefix from forcing a huge
// allocation.
const MaxMessageSize = 1 << 20

// Message kinds. Requests flow coordinator→agent; each has a matching
// acknowledgement flowing back.
const (
	// KindHello opens (or re-opens) a coordinator→agent session.
	KindHello = "hello"
	// KindHelloAck answers with the node's capabilities.
	KindHelloAck = "hello-ack"
	// KindCounterRequest asks the agent to advance its machine and report
	// per-CPU counter windows.
	KindCounterRequest = "counter-request"
	// KindCounterReport carries the per-CPU windows back.
	KindCounterReport = "counter-report"
	// KindActuate assigns per-CPU frequencies (Step 2 output); the agent
	// applies the minimum table voltage itself (Step 3 is a node-local
	// table lookup).
	KindActuate = "actuate"
	// KindActuateAck confirms the applied settings.
	KindActuateAck = "actuate-ack"
	// KindHeartbeat probes liveness between scheduling rounds.
	KindHeartbeat = "heartbeat"
	// KindHeartbeatAck answers a heartbeat.
	KindHeartbeatAck = "heartbeat-ack"
	// KindError reports a request the agent could not serve; Error holds
	// the reason and ID echoes the failed request.
	KindError = "error"
	// KindDemandRequest asks a relay to advance and poll its subtree and
	// answer with its aggregated demand curve. It carries the same
	// CounterRequest payload as a counter poll — the relay forwards the
	// advance/window quanta to every child.
	KindDemandRequest = "demand-request"
	// KindDemandReport carries the relay's aggregated demand curve back.
	KindDemandReport = "demand-report"
	// KindGrant awards a relay its share of the global budget; the relay
	// schedules and actuates its subtree under it.
	KindGrant = "grant"
	// KindGrantAck confirms the applied subtree schedule.
	KindGrantAck = "grant-ack"
)

// Message is one frame. A single flat envelope with optional payload
// pointers — mirroring obs.Event — keeps the codec to one code path and
// the stream greppable.
type Message struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	// ID identifies a request; the response echoes it. A coordinator
	// discards responses whose ID does not match the outstanding request
	// (late retransmissions, duplicates).
	ID uint64 `json:"id,omitempty"`
	// Node names the agent, on every agent→coordinator message.
	Node string `json:"node,omitempty"`
	// Now is the sender's simulation time in seconds, on acknowledgements.
	Now float64 `json:"now,omitempty"`
	// Error is the failure reason on KindError messages.
	Error string `json:"error,omitempty"`
	// Trace carries the coordinator's trace context on requests; agents
	// echo it verbatim on the matching acknowledgement so a packet capture
	// or agent log attributes every frame to its scheduling pass. Version
	// stays 1: unknown fields are ignored by old readers, so the addition
	// is wire-compatible in both directions.
	Trace *TraceContext `json:"trace,omitempty"`
	// ServiceSec is the agent's wall-clock handling time for the request
	// this message acknowledges (receive→send), set on every ack. The
	// coordinator subtracts it from the measured round-trip to split wire
	// time from apply time in the per-node rpc:* spans.
	ServiceSec float64 `json:"service_sec,omitempty"`

	Hello        *Hello        `json:"hello,omitempty"`
	Capabilities *Capabilities `json:"capabilities,omitempty"`
	// CounterRequest is the payload of both KindCounterRequest and
	// KindDemandRequest (a demand poll forwards the same quanta).
	CounterRequest *CounterRequest `json:"counter_request,omitempty"`
	CounterReport  *CounterReport  `json:"counter_report,omitempty"`
	Actuate        *Actuate        `json:"actuate,omitempty"`
	ActuateAck     *ActuateAck     `json:"actuate_ack,omitempty"`
	DemandReport   *DemandReport   `json:"demand_report,omitempty"`
	Grant          *Grant          `json:"grant,omitempty"`
	GrantAck       *GrantAck       `json:"grant_ack,omitempty"`
}

// TraceContext is the causal-span context propagated on requests: the
// scheduling pass the request belongs to. IDs count passes from the
// coordinator's engine-clock epoch (pass k fires at epoch time (k−1)·T),
// matching obs.Event.PassID, so trace files from both ends join on it.
type TraceContext struct {
	PassID uint64 `json:"pass"`
}

// Hello is the coordinator's session-opening request. Re-sent on every
// reconnection; the capabilities in the answering hello-ack re-sync the
// coordinator's view of the node (the rejoin path after a partition).
type Hello struct {
	// Coordinator names the coordinator for the agent's logs.
	Coordinator string `json:"coordinator"`
	// Codecs lists the payload encodings the coordinator can read, for
	// the agent's logs (selection is coordinator-driven: it enables a
	// codec the capabilities advertise). Absent means JSON only.
	Codecs []string `json:"codecs,omitempty"`
}

// Capabilities describes an agent's node in the hello-ack: everything the
// coordinator needs to schedule it and to charge it safely while silent.
type Capabilities struct {
	Node       string  `json:"node"`
	NumCPUs    int     `json:"num_cpus"`
	QuantumSec float64 `json:"quantum_sec"`
	// FreqsMHz lists the node's operating-point frequencies ascending.
	FreqsMHz []float64 `json:"freqs_mhz"`
	// MaxPowerW is the per-CPU worst-case table power — the most one
	// processor can draw at any setting. The coordinator charges
	// NumCPUs·MaxPowerW for a degraded node that was never actuated.
	MaxPowerW float64 `json:"max_power_w"`
	// FailsafeSec is the agent's watchdog lease: after this much
	// wall-clock silence from the coordinator the agent drops every CPU
	// to its minimum frequency on its own. 0 means no failsafe.
	FailsafeSec float64 `json:"failsafe_sec,omitempty"`
	// Codecs lists the payload encodings this node can speak besides the
	// implied "json" (e.g. the wire package's binary codec). The
	// coordinator enables a mutually supported codec after the handshake;
	// hello, capabilities and errors stay JSON regardless.
	Codecs []string `json:"codecs,omitempty"`
	// Tier distinguishes an aggregating relay ("relay", NumCPUs is the
	// subtree's processor total) from a leaf agent (empty).
	Tier string `json:"tier,omitempty"`
}

// CounterRequest drives one scheduling period: the agent advances its
// machine AdvanceQuanta dispatch quanta (collecting counters each
// quantum) and reports each CPU's aggregate over the most recent
// WindowQuanta windows. In a deployment against real hardware the advance
// is implicit — wall-clock time passes on the node — and only the window
// aggregation remains.
type CounterRequest struct {
	AdvanceQuanta int `json:"advance_quanta"`
	WindowQuanta  int `json:"window_quanta"`
}

// CPUReport is one processor's counter window plus the node-local idle
// indicator.
type CPUReport struct {
	Idle         bool    `json:"idle,omitempty"`
	WindowSec    float64 `json:"window_sec"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	HaltedCycles uint64  `json:"halted_cycles,omitempty"`
	L2Refs       uint64  `json:"l2_refs,omitempty"`
	L3Refs       uint64  `json:"l3_refs,omitempty"`
	MemRefs      uint64  `json:"mem_refs,omitempty"`
}

// ReportFor renders a counter delta as a wire report.
func ReportFor(d counters.Delta, idle bool) CPUReport {
	return CPUReport{
		Idle:         idle,
		WindowSec:    d.Window,
		Instructions: d.Instructions,
		Cycles:       d.Cycles,
		HaltedCycles: d.HaltedCycles,
		L2Refs:       d.L2Refs,
		L3Refs:       d.L3Refs,
		MemRefs:      d.MemRefs,
	}
}

// Delta converts the wire report back into a counter delta.
func (r CPUReport) Delta() counters.Delta {
	return counters.Delta{
		Window:       r.WindowSec,
		Instructions: r.Instructions,
		Cycles:       r.Cycles,
		HaltedCycles: r.HaltedCycles,
		L2Refs:       r.L2Refs,
		L3Refs:       r.L3Refs,
		MemRefs:      r.MemRefs,
	}
}

// CounterReport answers a CounterRequest with every CPU's window and the
// node's power readings for the coordinator's quantum telemetry.
type CounterReport struct {
	CPUs         []CPUReport `json:"cpus"`
	CPUPowerW    float64     `json:"cpu_power_w"`
	SystemPowerW float64     `json:"system_power_w,omitempty"`
}

// Actuate assigns one frequency per CPU, in MHz, CPU order.
type Actuate struct {
	FreqsMHz []float64 `json:"freqs_mhz"`
}

// ActuateAck confirms the frequencies the agent applied.
type ActuateAck struct {
	AppliedMHz []float64 `json:"applied_mhz"`
}

// DemandPoint is one point of a relay's aggregated demand curve: an
// aggregate table power the subtree could run at and the predicted loss
// there, plus the step key of the demotion that produced the point (the
// farm.StepKey fields, flattened) so the root can interleave several
// relays' curves in exact flat-greedy order. Step fields are zero on the
// first point.
type DemandPoint struct {
	PowerW   float64 `json:"power_w"`
	Loss     float64 `json:"loss"`
	StepLoss float64 `json:"step_loss,omitempty"`
	StepIdx  int     `json:"step_idx,omitempty"`
	StepProc int     `json:"step_proc,omitempty"`
}

// DemandReport answers a DemandRequest: the relay's subtree collapsed
// into one demand curve over its reachable processors, the worst-case
// charge for the children it could not reach, and aggregate telemetry.
type DemandReport struct {
	Points []DemandPoint `json:"points,omitempty"`
	// Desired is the Step-1 desired table index per reachable processor,
	// in the relay's flat processor order (curve point 0). The root needs
	// it to replay the flat Step-2 stop arithmetic exactly.
	Desired []int `json:"desired,omitempty"`
	// ReservedW is the worst-case power of the relay's unreachable
	// children; the root holds it against the budget before dividing the
	// remainder across curves.
	ReservedW    float64 `json:"reserved_w,omitempty"`
	CPUPowerW    float64 `json:"cpu_power_w,omitempty"`
	SystemPowerW float64 `json:"system_power_w,omitempty"`
	// Degraded lists the relay's currently degraded children.
	Degraded []string `json:"degraded,omitempty"`
}

// Grant awards a relay the budget for its reachable processors (the
// relay's own ReservedW is already held at the root).
type Grant struct {
	BudgetW float64 `json:"budget_w"`
}

// GrantAck reports the subtree schedule the relay applied under a grant.
type GrantAck struct {
	// ChargedW is the relay's post-actuation ledger total: acknowledged
	// children's table power plus the worst case of every silent child.
	// It is also the most the subtree can draw if the relay goes silent
	// now, so the root charges it while the relay is unreachable.
	ChargedW    float64 `json:"charged_w"`
	TablePowerW float64 `json:"table_power_w"`
	ReservedW   float64 `json:"reserved_w,omitempty"`
	// Met reports charged ≤ grant + the demand-time reservation.
	Met bool `json:"met"`
}
