package proto

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// benchMessage is a realistic hot-path frame: an 8-CPU counter report.
func benchMessage() *Message {
	cpus := make([]CPUReport, 8)
	for i := range cpus {
		cpus[i] = CPUReport{
			WindowSec:    0.08,
			Instructions: 1_000_000 + uint64(i),
			Cycles:       2_000_000 + uint64(i),
			HaltedCycles: 100_000,
			L2Refs:       50_000,
			L3Refs:       9_000,
			MemRefs:      4_000,
		}
	}
	return &Message{
		Kind:       KindCounterReport,
		ID:         42,
		Node:       "n3",
		Now:        1.28,
		ServiceSec: 0.0001,
		Trace:      &TraceContext{PassID: 17},
		CounterReport: &CounterReport{
			CPUs:      cpus,
			CPUPowerW: 61.5,
		},
	}
}

// discardConn swallows writes and serves reads from a repeating frame, so
// Send and Recv benchmarks exercise the codec without transport blocking.
type discardConn struct {
	frame []byte
	off   int
}

func (d *discardConn) Write(p []byte) (int, error) { return len(p), nil }

func (d *discardConn) Read(p []byte) (int, error) {
	if d.off == len(d.frame) {
		d.off = 0
	}
	n := copy(p, d.frame[d.off:])
	d.off += n
	return n, nil
}

func (d *discardConn) Close() error                     { return nil }
func (d *discardConn) LocalAddr() net.Addr              { return nil }
func (d *discardConn) RemoteAddr() net.Addr             { return nil }
func (d *discardConn) SetDeadline(time.Time) error      { return nil }
func (d *discardConn) SetReadDeadline(time.Time) error  { return nil }
func (d *discardConn) SetWriteDeadline(time.Time) error { return nil }

// frameFor renders one message through a real conn to use as Recv input.
func frameFor(tb testing.TB, m *Message) []byte {
	tb.Helper()
	var sink discardConn
	c := &netConn{c: &sink}
	// Capture the frame by swapping in a buffer-backed writer.
	var buf bytes.Buffer
	cw := &captureConn{discardConn: &sink, w: &buf}
	c.c = cw
	if err := c.Send(m); err != nil {
		tb.Fatalf("Send: %v", err)
	}
	return buf.Bytes()
}

type captureConn struct {
	*discardConn
	w *bytes.Buffer
}

func (c *captureConn) Write(p []byte) (int, error) { return c.w.Write(p) }

// TestConnBufferReuse pins the satellite fix: after the first frame, Send
// and Recv reuse their per-conn buffers rather than allocating fresh
// frame/payload slices per message.
func TestConnBufferReuse(t *testing.T) {
	m := benchMessage()
	frame := frameFor(t, m)

	sender := &netConn{c: &discardConn{}}
	if err := sender.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	wcap := cap(sender.wbuf.b)
	wptr := &sender.wbuf.b[0]
	for i := 0; i < 50; i++ {
		if err := sender.Send(m); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if cap(sender.wbuf.b) != wcap || &sender.wbuf.b[0] != wptr {
		t.Fatalf("send buffer reallocated across same-size frames: cap %d → %d", wcap, cap(sender.wbuf.b))
	}

	receiver := &netConn{c: &discardConn{frame: frame}}
	if _, err := receiver.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	rcap := cap(receiver.rbuf)
	rptr := &receiver.rbuf[0]
	for i := 0; i < 50; i++ {
		got, err := receiver.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if got.Kind != KindCounterReport || got.ID != 42 || len(got.CounterReport.CPUs) != 8 {
			t.Fatalf("Recv %d decoded %+v", i, got)
		}
	}
	if cap(receiver.rbuf) != rcap || &receiver.rbuf[0] != rptr {
		t.Fatalf("recv buffer reallocated across same-size frames: cap %d → %d", rcap, cap(receiver.rbuf))
	}
}

// TestConnSendAllocBound guards against reintroducing per-frame slice
// builds on the send path. JSON reflection still allocates per encode, so
// the bound is loose — the old code's make(4+len(payload)) for a ~700-byte
// report would show up as both an extra alloc and a large bytes/op jump in
// BenchmarkConnSend.
func TestConnSendAllocBound(t *testing.T) {
	m := benchMessage()
	c := &netConn{c: &discardConn{}}
	// Warm the buffer and the encoder's internal pool.
	for i := 0; i < 10; i++ {
		if err := c.Send(m); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Send(m); err != nil {
			t.Fatalf("Send: %v", err)
		}
	})
	if allocs > 8 {
		t.Fatalf("Send allocates %.1f objects/op, want ≤ 8 (per-frame buffer reuse regressed?)", allocs)
	}
}

func BenchmarkConnSend(b *testing.B) {
	m := benchMessage()
	c := &netConn{c: &discardConn{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnRecv(b *testing.B) {
	frame := frameFor(b, benchMessage())
	c := &netConn{c: &discardConn{frame: frame}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
