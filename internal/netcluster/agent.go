// Package netcluster is the networked cluster control plane: the paper's
// §5 coordinator/node split realised as an actual client/server protocol
// instead of the idealised in-process model of internal/cluster. Each
// node runs an Agent — wrapping its machine.Machine and counters.Sampler,
// serving counter snapshots and accepting frequency actuations over TCP —
// and one Coordinator runs the global two-step fvsst pass over the wire,
// with the failure semantics a real deployment needs: per-node deadlines,
// bounded retry with backoff and jitter, reconnection, and budget safety
// under silence (a node that stops answering is charged its worst-case
// table power until it rejoins). The scheduling algorithm itself is
// cluster.Core, shared with the in-process coordinator; this package only
// supplies the transport and the failure handling around it.
package netcluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/netcluster/proto"
	"repro/internal/netcluster/wire"
	"repro/internal/obs"
	"repro/internal/units"
)

// AgentConfig describes one node agent.
type AgentConfig struct {
	// Name identifies the node in the protocol and every trace.
	Name string
	// M is the node's machine. The agent owns it once started: all
	// stepping and actuation go through the agent's lock.
	M *machine.Machine
	// Addr is the TCP listen address; empty means loopback with an
	// OS-assigned port (the spawned-agent default).
	Addr string
	// HistoryQuanta bounds the sampler's per-CPU delta ring; 0 selects a
	// default generous enough for any coordinator window.
	HistoryQuanta int
	// FailsafeLease is the watchdog: after this much wall-clock silence
	// from the coordinator, the agent drops every CPU to the minimum
	// table frequency on its own, so a partitioned node can never draw
	// more than it was last told — and trends toward the floor. 0
	// disables the watchdog.
	FailsafeLease time.Duration
	// Sink receives agent-side trace events (failsafe trips). Nil
	// disables.
	Sink obs.Sink
}

// Agent serves one node's observation/actuation surface to the
// coordinator.
type Agent struct {
	cfg     AgentConfig
	ln      net.Listener
	quantum float64

	mu      sync.Mutex
	sampler *counters.Sampler
	// lease is the coordinator-silence watchdog (engine.Lease over the
	// wall clock), guarded by mu as the Lease itself is unsynchronized.
	// Nil when the failsafe is disabled.
	lease *engine.Lease
	conns map[proto.Conn]struct{}

	closed chan struct{}
	wg     sync.WaitGroup
}

// NewAgent validates the configuration and prepares the agent.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("netcluster: agent needs a name")
	}
	if cfg.M == nil {
		return nil, fmt.Errorf("netcluster: agent %s has no machine", cfg.Name)
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.HistoryQuanta == 0 {
		cfg.HistoryQuanta = 256
	}
	if cfg.FailsafeLease < 0 {
		return nil, fmt.Errorf("netcluster: agent %s negative failsafe lease", cfg.Name)
	}
	sampler, err := counters.NewSampler(cfg.M, cfg.HistoryQuanta)
	if err != nil {
		return nil, err
	}
	return &Agent{
		cfg:     cfg,
		quantum: cfg.M.Config().Quantum,
		sampler: sampler,
		conns:   make(map[proto.Conn]struct{}),
		closed:  make(chan struct{}),
	}, nil
}

// Start binds the listener and begins serving. Addr reports the bound
// address afterwards.
func (a *Agent) Start() error {
	ln, err := net.Listen("tcp", a.cfg.Addr)
	if err != nil {
		return fmt.Errorf("netcluster: agent %s listen: %w", a.cfg.Name, err)
	}
	a.ln = ln
	a.wg.Add(1)
	go a.acceptLoop()
	if a.cfg.FailsafeLease > 0 {
		lease, err := engine.NewLease(a.cfg.FailsafeLease, nil)
		if err != nil {
			return err
		}
		a.mu.Lock()
		a.lease = lease
		a.mu.Unlock()
		a.wg.Add(1)
		go a.watchdog()
	}
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Close stops serving and waits for the handler goroutines.
func (a *Agent) Close() error {
	select {
	case <-a.closed:
		return nil
	default:
	}
	close(a.closed)
	var err error
	if a.ln != nil {
		err = a.ln.Close()
	}
	// Unblock handlers parked in Recv: a coordinator that crashed or
	// errored out mid-handshake never closes its end.
	a.mu.Lock()
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	a.wg.Wait()
	return err
}

// Now returns the node's simulation time.
func (a *Agent) Now() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.M.Now()
}

// FailsafeTripped reports whether the watchdog has fired since the last
// coordinator contact.
func (a *Agent) FailsafeTripped() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lease != nil && a.lease.Tripped()
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return // listener closed
		}
		a.wg.Add(1)
		// Mirror mode: the agent answers in whatever codec the
		// coordinator speaks, switching to binary on its first binary
		// frame. A JSON-only coordinator sees pure JSON.
		go a.serve(wire.NewConn(conn, wire.Options{Mirror: true}))
	}
}

// ServeConn serves one pre-established stream connection (e.g. one end of
// a net.Pipe) until it closes, with the same codec mirroring as accepted
// TCP connections. It blocks; run it on its own goroutine. Used by
// in-process fleets too large for per-agent TCP sockets.
func (a *Agent) ServeConn(conn net.Conn) {
	a.wg.Add(1)
	a.serve(wire.NewConn(conn, wire.Options{Mirror: true}))
}

// watchdog trips the failsafe after FailsafeLease of coordinator silence.
func (a *Agent) watchdog() {
	defer a.wg.Done()
	tick := time.NewTicker(a.cfg.FailsafeLease / 4)
	defer tick.Stop()
	for {
		select {
		case <-a.closed:
			return
		case <-tick.C:
		}
		a.mu.Lock()
		expired := a.lease.Expire()
		if expired {
			m := a.cfg.M
			fMin := m.Config().Table.MinFrequency()
			for cpu := 0; cpu < m.NumCPUs(); cpu++ {
				// The floor is always a valid setting; ignore per-CPU
				// errors so one bad CPU cannot keep the others hot.
				_ = m.SetFrequency(cpu, fMin)
			}
		}
		a.mu.Unlock()
		if expired && a.cfg.Sink != nil {
			a.cfg.Sink.Emit(obs.Event{
				Type:   obs.EventFailsafe,
				At:     a.Now(),
				Node:   a.cfg.Name,
				Detail: fmt.Sprintf("no coordinator contact for %v; CPUs floored", a.cfg.FailsafeLease),
			})
		}
	}
}

// touch records coordinator contact and re-arms the failsafe.
func (a *Agent) touch() {
	a.mu.Lock()
	if a.lease != nil {
		a.lease.Touch()
	}
	a.mu.Unlock()
}

func (a *Agent) serve(c proto.Conn) {
	defer a.wg.Done()
	a.mu.Lock()
	a.conns[c] = struct{}{}
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.conns, c)
		a.mu.Unlock()
		c.Close()
	}()
	for {
		req, err := c.Recv()
		if err != nil {
			return // connection gone; coordinator will redial
		}
		start := time.Now()
		a.touch()
		resp := a.handle(req)
		resp.ID = req.ID
		resp.Node = a.cfg.Name
		// Echo the request's trace context and report the handling time so
		// the coordinator can split its measured round-trip into wire time
		// and agent-side service/apply time (the rpc:* span breakdown).
		resp.Trace = req.Trace
		resp.ServiceSec = time.Since(start).Seconds()
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// fail builds an error response.
func fail(format string, args ...any) *proto.Message {
	return &proto.Message{Kind: proto.KindError, Error: fmt.Sprintf(format, args...)}
}

func (a *Agent) handle(req *proto.Message) *proto.Message {
	switch req.Kind {
	case proto.KindHello:
		return a.handleHello()
	case proto.KindHeartbeat:
		return &proto.Message{Kind: proto.KindHeartbeatAck, Now: a.Now()}
	case proto.KindCounterRequest:
		if req.CounterRequest == nil {
			return fail("counter-request without payload")
		}
		return a.handleCounters(*req.CounterRequest)
	case proto.KindActuate:
		if req.Actuate == nil {
			return fail("actuate without payload")
		}
		return a.handleActuate(*req.Actuate)
	default:
		return fail("unknown kind %q", req.Kind)
	}
}

func (a *Agent) handleHello() *proto.Message {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.cfg.M
	table := m.Config().Table
	var freqs []float64
	for _, p := range table.Points() {
		freqs = append(freqs, p.F.MHz())
	}
	maxP, err := table.PowerAt(table.MaxFrequency())
	if err != nil {
		return fail("capabilities: %v", err)
	}
	return &proto.Message{
		Kind: proto.KindHelloAck,
		Now:  m.Now(),
		Capabilities: &proto.Capabilities{
			Node:        a.cfg.Name,
			NumCPUs:     m.NumCPUs(),
			QuantumSec:  a.quantum,
			FreqsMHz:    freqs,
			MaxPowerW:   maxP.W(),
			FailsafeSec: a.cfg.FailsafeLease.Seconds(),
			Codecs:      []string{wire.CodecName},
		},
	}
}

func (a *Agent) handleCounters(req proto.CounterRequest) *proto.Message {
	if req.AdvanceQuanta < 0 || req.AdvanceQuanta > 100000 {
		return fail("advance quanta %d out of range", req.AdvanceQuanta)
	}
	if req.WindowQuanta <= 0 {
		return fail("window quanta %d must be positive", req.WindowQuanta)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.cfg.M
	for i := 0; i < req.AdvanceQuanta; i++ {
		m.Step()
		if err := a.sampler.Collect(); err != nil {
			return fail("collect: %v", err)
		}
	}
	report := &proto.CounterReport{
		CPUs:         make([]proto.CPUReport, m.NumCPUs()),
		CPUPowerW:    m.TotalCPUPower().W(),
		SystemPowerW: m.SystemPower().W(),
	}
	for cpu := 0; cpu < m.NumCPUs(); cpu++ {
		delta := a.sampler.WindowAggregate(cpu, req.WindowQuanta)
		report.CPUs[cpu] = proto.ReportFor(delta, m.IsIdle(cpu))
	}
	return &proto.Message{Kind: proto.KindCounterReport, Now: m.Now(), CounterReport: report}
}

func (a *Agent) handleActuate(req proto.Actuate) *proto.Message {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.cfg.M
	if len(req.FreqsMHz) != m.NumCPUs() {
		return fail("%d frequencies for %d CPUs", len(req.FreqsMHz), m.NumCPUs())
	}
	applied := make([]float64, len(req.FreqsMHz))
	for cpu, mhz := range req.FreqsMHz {
		if err := m.SetFrequency(cpu, units.MHz(mhz)); err != nil {
			return fail("cpu %d: %v", cpu, err)
		}
		applied[cpu] = mhz
	}
	return &proto.Message{Kind: proto.KindActuateAck, Now: m.Now(), ActuateAck: &proto.ActuateAck{AppliedMHz: applied}}
}
