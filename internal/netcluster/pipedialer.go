package netcluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/netcluster/proto"
	"repro/internal/netcluster/wire"
)

// PipeServer is one end of the in-process transport: anything that can
// serve a pre-established stream connection (Agent, Relay).
type PipeServer interface{ ServeConn(net.Conn) }

// PipeDialer connects coordinators to in-process servers over net.Pipe,
// bypassing kernel sockets and fd limits entirely — a 10k-agent fleet
// needs no listeners. Register each server under a name and use that
// name as its NodeSpec address. PipeDialer implements Dialer directly;
// DialTransport slots into faultnet.SetTransport so fault scenarios run
// over pipes too.
type PipeDialer struct {
	mu      sync.Mutex
	servers map[string]PipeServer
	stats   *wire.Stats
}

// NewPipeDialer builds an empty registry; stats (optional) accumulates
// codec counters across every connection dialed through it.
func NewPipeDialer(stats *wire.Stats) *PipeDialer {
	return &PipeDialer{servers: map[string]PipeServer{}, stats: stats}
}

// Register installs (or replaces) the server reachable at name.
func (d *PipeDialer) Register(name string, s PipeServer) {
	d.mu.Lock()
	d.servers[name] = s
	d.mu.Unlock()
}

// DialTransport opens a pipe to the named server and hands the remote
// end to its serve loop. The timeout is ignored: pipe establishment
// cannot block.
func (d *PipeDialer) DialTransport(addr string, _ time.Duration) (proto.Conn, error) {
	d.mu.Lock()
	s, ok := d.servers[addr]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netcluster: pipe transport has no server registered as %q", addr)
	}
	local, remote := net.Pipe()
	go s.ServeConn(remote)
	return wire.NewConn(local, wire.Options{Stats: d.stats}), nil
}

// Dial implements Dialer.
func (d *PipeDialer) Dial(_, addr string, timeout time.Duration) (proto.Conn, error) {
	return d.DialTransport(addr, timeout)
}
