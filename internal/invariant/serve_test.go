package invariant_test

import (
	"strings"
	"testing"

	"repro/internal/invariant"
)

func TestCheckQueueConservation(t *testing.T) {
	// 100 offered = 90 admitted + 6 rejected + 4 dropped;
	// 90 admitted = 70 completed + 5 timed out + 12 queued + 3 in service.
	ok := invariant.QueueLedger{
		Node: "n0", At: 1.5,
		Offered: 100, Admitted: 90, Rejected: 6, Dropped: 4,
		Completed: 70, TimedOut: 5, Queued: 12, InService: 3,
	}
	if vs := invariant.CheckQueueConservation(ok); len(vs) != 0 {
		t.Fatalf("balanced ledger flagged: %v", vs)
	}

	lost := ok
	lost.Admitted = 89 // one offered request vanished before admission
	vs := invariant.CheckQueueConservation(lost)
	// Both identities break: offered no longer decomposes, and the
	// admitted side is now one short of its downstream states too.
	if len(vs) != 2 {
		t.Fatalf("lost request: want 2 violations, got %v", vs)
	}
	for _, v := range vs {
		if v.Checker != "queue-conservation" || v.At != 1.5 {
			t.Fatalf("bad attribution: %+v", v)
		}
	}
	if !strings.Contains(vs[0].Detail, "offered 100") ||
		!strings.Contains(vs[1].Detail, "admitted 89") {
		t.Fatalf("details don't name the broken identities: %v", vs)
	}

	double := ok
	double.Completed = 71 // completion hook re-entered
	vs = invariant.CheckQueueConservation(double)
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "completed 71") {
		t.Fatalf("double completion: %v", vs)
	}

	anon := ok
	anon.Node = ""
	anon.Dropped = 5
	vs = invariant.CheckQueueConservation(anon)
	if len(vs) != 1 || !strings.HasPrefix(vs[0].Detail, "(machine):") {
		t.Fatalf("anonymous station: %v", vs)
	}
}
