package invariant

import (
	"fmt"

	"repro/internal/fvsst"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// Proc is one CPU's slice of a scheduling pass as the checkers see it:
// the raw inputs the scheduler consumed (idle flag, counter observation)
// and the outputs it produced (Step-1 desired index, Step-2 actual index,
// Step-3 voltage).
type Proc struct {
	Node string
	CPU  int
	Idle bool
	// Obs is the counter observation Step 1 consumed, nil when the CPU had
	// no usable counters this pass (scheduler pins it at f_max).
	Obs *perfmodel.Observation
	// DesiredIdx is Step 1's ε-choice as a power.Table index.
	DesiredIdx int
	// ActualIdx is the index after Step 2's budget demotions.
	ActualIdx int
	// Voltage is Step 3's setting for ActualIdx.
	Voltage units.Voltage
}

// Pass is a complete snapshot of one scheduling pass: the configuration
// in force, every CPU's inputs and outputs, the demotion log, and the
// charged/met verdict. NewPass re-derives the prediction grid from the
// raw observations so checkers judge the production path against an
// independent computation rather than its own intermediate state.
type Pass struct {
	At      float64
	Budget  units.Power
	Charged units.Power
	Met     bool

	Epsilon       float64
	UseIdleSignal bool
	Table         *power.Table

	Procs     []Proc
	Demotions []fvsst.Demotion

	grid perfmodel.PredGrid
}

// NewPass validates the snapshot and fills the checker-owned prediction
// grid. Config features beyond the plain two-pass algorithm (ideal
// frequency, two-point calibration, latency bounds, debounce) change
// Step-1 semantics in ways these checkers do not model, so such configs
// are rejected rather than silently mis-checked.
func NewPass(cfg fvsst.Config, at float64, budget units.Power, procs []Proc, demotions []fvsst.Demotion, charged units.Power, met bool) (*Pass, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("invariant: config: %w", err)
	}
	if cfg.UseIdealFrequency || cfg.UseTwoPointCalibration || cfg.LatencyBoundLo != 0 || cfg.LatencyBoundHi != 0 || cfg.DebouncePasses > 1 {
		return nil, fmt.Errorf("invariant: config uses Step-1 variants the checkers do not model")
	}
	p := &Pass{
		At:            at,
		Budget:        budget,
		Charged:       charged,
		Met:           met,
		Epsilon:       cfg.Epsilon,
		UseIdleSignal: cfg.UseIdleSignal,
		Table:         cfg.Table,
		Procs:         procs,
		Demotions:     demotions,
	}
	pred, err := perfmodel.New(cfg.Hier)
	if err != nil {
		return nil, fmt.Errorf("invariant: predictor: %w", err)
	}
	nf := cfg.Table.Len()
	p.grid.Reset(len(procs), cfg.Table.Frequencies())
	for i, pr := range procs {
		if pr.DesiredIdx < 0 || pr.DesiredIdx >= nf {
			return nil, fmt.Errorf("invariant: proc %d desired index %d outside table [0,%d)", i, pr.DesiredIdx, nf)
		}
		if pr.ActualIdx < 0 || pr.ActualIdx >= nf {
			return nil, fmt.Errorf("invariant: proc %d actual index %d outside table [0,%d)", i, pr.ActualIdx, nf)
		}
		// Mirror cluster.Core.stepOne's fill rule: idle CPUs (when the idle
		// signal is honoured) and CPUs without counters get no prediction
		// row; everyone else gets an independently decomposed row.
		if cfg.UseIdleSignal && pr.Idle {
			continue
		}
		if pr.Obs == nil {
			continue
		}
		d, err := pred.Decompose(*pr.Obs)
		if err != nil {
			return nil, fmt.Errorf("invariant: proc %d decompose: %w", i, err)
		}
		p.grid.Fill(i, d)
	}
	return p, nil
}

// Grid exposes the checker-owned prediction grid (read-only use).
func (p *Pass) Grid() *perfmodel.PredGrid { return &p.grid }

func (p *Pass) procLabel(i int) string {
	pr := p.Procs[i]
	if pr.Node == "" {
		return fmt.Sprintf("cpu%d", pr.CPU)
	}
	return fmt.Sprintf("%s/cpu%d", pr.Node, pr.CPU)
}
