package invariant_test

import (
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/units"
)

func TestStepTwoOptimal(t *testing.T) {
	cfg := testConfig()
	p := cleanPass(t, cfg)
	if vs := (invariant.StepTwoOptimal{}).Check(p); len(vs) != 0 {
		t.Fatalf("clean pass flagged: %v", vs)
	}

	// met=false while the floor assignment fits: exact feasibility broken.
	infeasible := *p
	infeasible.Met = false
	vs := invariant.StepTwoOptimal{}.Check(&infeasible)
	if len(vs) == 0 || !strings.Contains(vs[0].Detail, "feasible") {
		t.Fatalf("feasibility mismatch not flagged: %v", vs)
	}

	// Every CPU floored under a generous budget: the exact optimum keeps
	// them at their desired points with ~zero loss, so the gap bound must
	// fire — and a generous explicit Gap must silence exactly that.
	nf := cfg.Table.Len()
	fmax := cfg.Table.FrequencyAtIndex(nf - 1)
	procs := []invariant.Proc{
		{CPU: 0, Obs: obs(fmax, 500), DesiredIdx: nf - 1, ActualIdx: 0, Voltage: cfg.Table.VoltageAtIndex(0)},
		{CPU: 1, Obs: obs(fmax, 500), DesiredIdx: nf - 1, ActualIdx: 0, Voltage: cfg.Table.VoltageAtIndex(0)},
	}
	floored := mustPass(t, cfg, units.Watts(1e6), procs, nil, cfg.Table.PowerAtIndex(0)*2, true)
	vs = invariant.StepTwoOptimal{}.Check(floored)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Detail, "exceeds exact optimum") {
			found = true
		}
	}
	if !found {
		t.Fatalf("needless flooring within gap: %v", vs)
	}
	if vs := (invariant.StepTwoOptimal{Gap: 100}).Check(floored); len(vs) != 0 {
		t.Fatalf("generous gap still flagged: %v", vs)
	}

	// Unlike the brute-force checker, the exact comparator has no
	// small-grid restriction: the same floored pass at MaxStates=1 scale
	// is still checked (the DP frontier over the paper table stays tiny).
	if vs := (invariant.StepTwoBruteForce{MaxStates: 1}).Check(floored); vs != nil {
		t.Fatalf("brute force should skip at MaxStates=1: %v", vs)
	}
	if vs := (invariant.StepTwoOptimal{}).Check(floored); len(vs) == 0 {
		t.Fatal("exact comparator skipped a pass it must cover")
	}
}

func TestPassOptGap(t *testing.T) {
	cfg := testConfig()
	p := cleanPass(t, cfg)
	greedy, opt, energy, ok := p.OptGap()
	if !ok {
		t.Fatal("clean pass must be solvable")
	}
	if greedy < opt {
		t.Fatalf("greedy %g below exact optimum %g", greedy, opt)
	}
	if greedy-opt > invariant.DefaultGap {
		t.Fatalf("clean pass gap %g exceeds DefaultGap", greedy-opt)
	}
	if energy.Method != "energy" || len(energy.Idx) != len(p.Procs) {
		t.Fatalf("bad energy baseline: %+v", energy)
	}

	// Infeasible and empty passes are unsolved, not gap zero.
	infeasible := *p
	infeasible.Met = false
	if _, _, _, ok := infeasible.OptGap(); ok {
		t.Fatal("met=false pass reported as solved")
	}
	empty := mustPass(t, cfg, units.Watts(1e6), nil, nil, 0, true)
	if _, _, _, ok := empty.OptGap(); ok {
		t.Fatal("empty pass reported as solved")
	}
}
