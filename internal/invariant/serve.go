package invariant

import "fmt"

// QueueLedger is one serving station's cumulative request account at a
// quantum boundary (internal/serve's Account, plus the node and time for
// attribution). Counters are cumulative since station start; Queued and
// InService are instantaneous.
type QueueLedger struct {
	Node      string
	At        float64
	Offered   uint64
	Admitted  uint64
	Rejected  uint64
	Dropped   uint64
	Completed uint64
	TimedOut  uint64
	Queued    int
	InService int
}

// CheckQueueConservation checks the serving layer's conservation law:
// every offered request is in exactly one state, so at every quantum
//
//	Offered  = Admitted + Rejected + Dropped
//	Admitted = Completed + TimedOut + Queued + InService
//
// A station that loses a request (dispatch bug), double-counts a
// completion (hook re-entry), or leaks queue slots breaks one of the two
// identities immediately rather than skewing latency reports silently.
func CheckQueueConservation(q QueueLedger) []Violation {
	var out []Violation
	name := "queue-conservation"
	node := q.Node
	if node == "" {
		node = "(machine)"
	}
	if q.Offered != q.Admitted+q.Rejected+q.Dropped {
		out = append(out, Violation{
			Checker: name,
			At:      q.At,
			Detail: fmt.Sprintf("%s: offered %d ≠ admitted %d + rejected %d + dropped %d",
				node, q.Offered, q.Admitted, q.Rejected, q.Dropped),
		})
	}
	live := uint64(q.Queued) + uint64(q.InService)
	if q.Admitted != q.Completed+q.TimedOut+live {
		out = append(out, Violation{
			Checker: name,
			At:      q.At,
			Detail: fmt.Sprintf("%s: admitted %d ≠ completed %d + timed-out %d + queued %d + in-service %d",
				node, q.Admitted, q.Completed, q.TimedOut, q.Queued, q.InService),
		})
	}
	return out
}
