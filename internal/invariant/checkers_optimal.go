package invariant

import (
	"fmt"
	"math"

	"repro/internal/optimal"
	"repro/internal/units"
)

// Problem converts the pass snapshot into the exact comparator's input:
// upper bounds from the Step-1 desired indices and the same zero-loss
// convention for unpredicted CPUs the checkers use. The returned Problem
// borrows the pass's grid, so solve it before the next pass overwrites
// the snapshot.
func (p *Pass) Problem() optimal.Problem {
	upper := make([]int, len(p.Procs))
	for i, pr := range p.Procs {
		upper[i] = pr.DesiredIdx
	}
	return optimal.FromGrid(p.Grid(), upper, p.Table, p.Budget)
}

// StepTwoOptimal checks Step 2's near-optimality against the exact DP
// comparator in internal/optimal on every pass — the upgrade of
// StepTwoBruteForce's small-grid enumeration to all grids (ROADMAP item
// 4). Same three facts:
//
//   - feasibility: met=true exactly when the all-floor assignment fits
//     the budget;
//   - comparator sanity: the greedy never beats the exact optimum;
//   - near-optimality: the greedy's total predicted loss is within Gap of
//     the optimum. Gap is empirical (see DefaultGap): the greedy can
//     strand a CPU on a cheap plateau while a one-shot deeper demotion
//     elsewhere was cheaper overall.
//
// StepTwoBruteForce remains as the independent differential witness for
// the comparator itself; the default suite runs this checker.
type StepTwoOptimal struct {
	// Gap bounds greedyLoss − optimalLoss. 0 means DefaultGap.
	Gap float64
}

func (StepTwoOptimal) Name() string { return "step2-optimal" }

func (c StepTwoOptimal) Check(p *Pass) []Violation {
	gap := c.Gap
	if gap <= 0 {
		gap = DefaultGap
	}
	n := len(p.Procs)
	var out []Violation
	var floorPower units.Power
	for i := 0; i < n; i++ {
		floorPower += p.Table.PowerAtIndex(0)
	}
	feasible := floorPower <= p.Budget
	if p.Met != feasible {
		out = append(out, Violation{"step2-optimal", p.At,
			fmt.Sprintf("met=%v but floor power %v vs budget %v implies feasible=%v",
				p.Met, floorPower, p.Budget, feasible)})
	}
	if !p.Met || n == 0 {
		return out
	}
	sol, err := optimal.Solve(p.Problem())
	if err != nil {
		// Beyond the solver limits (only reachable on synthetic tables):
		// the replay and budget checkers still cover the pass.
		return out
	}
	if !sol.Feasible {
		out = append(out, Violation{"step2-optimal", p.At,
			"met=true but the exact comparator found no feasible assignment"})
		return out
	}
	g := p.Grid()
	greedyLoss := 0.0
	for i, pr := range p.Procs {
		if g.Valid(i) {
			greedyLoss += g.Loss(i, pr.ActualIdx)
		}
	}
	if greedyLoss < sol.Loss-tiny {
		out = append(out, Violation{"step2-optimal", p.At,
			fmt.Sprintf("greedy loss %g beats exact optimum %g (%s): comparator broken", greedyLoss, sol.Loss, sol.Method)})
	}
	if greedyLoss > sol.Loss+gap {
		out = append(out, Violation{"step2-optimal", p.At,
			fmt.Sprintf("greedy loss %g exceeds exact optimum %g by more than gap %g", greedyLoss, sol.Loss, gap)})
	}
	return out
}

// OptGap measures one pass's greedy-vs-optimal story for reporting (the
// `experiments optgap` table): the greedy's CPU-order loss sum, the exact
// optimum, and the unconstrained energy-per-instruction baseline. It
// returns ok=false when the pass is infeasible, empty, or beyond the
// solver limits — callers count those as unsolved rather than gap zero.
func (p *Pass) OptGap() (greedy, opt float64, energy optimal.Assignment, ok bool) {
	if !p.Met || len(p.Procs) == 0 {
		return 0, 0, optimal.Assignment{}, false
	}
	prob := p.Problem()
	sol, err := optimal.Solve(prob)
	if err != nil || !sol.Feasible {
		return 0, 0, optimal.Assignment{}, false
	}
	g := p.Grid()
	for i, pr := range p.Procs {
		if g.Valid(i) {
			greedy += g.Loss(i, pr.ActualIdx)
		}
	}
	energyA, err := optimal.EnergyOptimal(prob)
	if err != nil {
		return 0, 0, optimal.Assignment{}, false
	}
	if math.IsNaN(greedy) || math.IsNaN(sol.Loss) {
		return 0, 0, optimal.Assignment{}, false
	}
	return greedy, sol.Loss, energyA, true
}
