package invariant

import (
	"fmt"
	"math"

	"repro/internal/farm"
	"repro/internal/units"
)

// Ledger is a transport-level budget-accounting snapshot: one
// netcluster.Decision (or the in-process mirror's equivalent) reduced to
// the values the conservation contract constrains. Live is the table
// power charged for reachable, acknowledged nodes; Reserved is the
// worst-case charge held for silent or degraded nodes.
type Ledger struct {
	At       float64
	Budget   units.Power
	Live     units.Power
	Reserved units.Power
	Charged  units.Power
	Met      bool
	// AllLiveAtFloor reports whether every live CPU sits at the table
	// floor — the only state in which a missed budget is legal.
	AllLiveAtFloor bool
}

// CheckLedger checks the networked coordinator's charge accounting (§5,
// PR 2): charged must decompose into live + reserved, the met verdict
// must be exactly "charged fits the budget", and a missed budget is only
// legal when the live side has already been demoted to the floor (the
// reserve for silent nodes can exceed any budget; the coordinator may
// not overdraw for reachable ones).
func CheckLedger(l Ledger) []Violation {
	var out []Violation
	if math.Abs(l.Charged.W()-(l.Live.W()+l.Reserved.W())) > powerTol {
		out = append(out, Violation{"cluster-ledger", l.At,
			fmt.Sprintf("charged %v ≠ live %v + reserved %v", l.Charged, l.Live, l.Reserved)})
	}
	if l.Met != (l.Charged <= l.Budget) {
		out = append(out, Violation{"cluster-ledger", l.At,
			fmt.Sprintf("met=%v but charged %v vs budget %v", l.Met, l.Charged, l.Budget)})
	}
	if !l.Met && !l.AllLiveAtFloor {
		out = append(out, Violation{"cluster-ledger", l.At,
			fmt.Sprintf("budget missed (charged %v > %v) with live CPUs above the floor", l.Charged, l.Budget)})
	}
	return out
}

// CheckAllocation checks one farm reallocation pass (PR 4): the safety
// discount is honoured, the charged total decomposes correctly, a met
// pass fits the budget, and every fresh lease is granted now, expires
// later, and never dips below its member's floor.
func CheckAllocation(members []farm.Member, alloc farm.Allocation) []Violation {
	var out []Violation
	floors := make(map[string]units.Power, len(members))
	for _, m := range members {
		floors[m.Name] = m.Floor
	}
	if alloc.Allocatable > alloc.Budget+powerTol {
		out = append(out, Violation{"farm-allocation", alloc.At,
			fmt.Sprintf("allocatable %v exceeds budget %v: safety discount lost", alloc.Allocatable, alloc.Budget)})
	}
	if alloc.Met && alloc.Charged > alloc.Budget+powerTol {
		out = append(out, Violation{"farm-allocation", alloc.At,
			fmt.Sprintf("met=true but charged %v exceeds budget %v", alloc.Charged, alloc.Budget)})
	}
	for _, l := range alloc.Leases {
		floor, known := floors[l.Member]
		if !known {
			out = append(out, Violation{"farm-allocation", alloc.At,
				fmt.Sprintf("lease for unknown member %q", l.Member)})
			continue
		}
		if l.Budget < floor-powerTol {
			out = append(out, Violation{"farm-allocation", alloc.At,
				fmt.Sprintf("member %s leased %v below its floor %v", l.Member, l.Budget, floor)})
		}
		if l.Granted != alloc.At {
			out = append(out, Violation{"farm-allocation", alloc.At,
				fmt.Sprintf("member %s lease granted at %g, pass ran at %g", l.Member, l.Granted, alloc.At)})
		}
		if l.Expires <= l.Granted {
			out = append(out, Violation{"farm-allocation", alloc.At,
				fmt.Sprintf("member %s lease expires at %g, not after grant %g", l.Member, l.Expires, l.Granted)})
		}
	}
	return out
}

// CheckFarmCharge checks continuous farm budget conservation between
// passes: Σ(charged leases, stale leases, floors) must track under the
// source budget at every quantum, including through partitions and UPS
// decay (the Safety ≥ TTL/runway contract). Call it every quantum with
// the instantaneous source budget and allocator.Charged(now).
func CheckFarmCharge(at float64, budget, charged units.Power) []Violation {
	if charged <= budget+powerTol {
		return nil
	}
	return []Violation{{"farm-conservation", at,
		fmt.Sprintf("charged %v exceeds source budget %v", charged, budget)}}
}

// CheckHolder checks cluster-side lease floor safety (PR 4): a holder's
// effective budget equals its live lease, and after expiry it falls back
// to exactly its floor — never below, never to zero, so a partitioned
// cluster always retains a survivable budget.
func CheckHolder(at float64, h *farm.Holder) []Violation {
	var out []Violation
	b := h.BudgetAt(at)
	if b < h.Floor()-powerTol {
		out = append(out, Violation{"lease-floor-safety", at,
			fmt.Sprintf("holder %s budget %v below floor %v", h.Name(), b, h.Floor())})
	}
	if l, ok := h.Lease(); ok && !h.Expired(at) && b != l.Budget {
		out = append(out, Violation{"lease-floor-safety", at,
			fmt.Sprintf("holder %s live lease %v but effective budget %v", h.Name(), l.Budget, b)})
	}
	if h.Expired(at) && b != h.Floor() {
		out = append(out, Violation{"lease-floor-safety", at,
			fmt.Sprintf("holder %s expired but budget %v ≠ floor %v", h.Name(), b, h.Floor())})
	}
	return out
}
