package invariant_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/farm"
	"repro/internal/fvsst"
	"repro/internal/invariant"
	"repro/internal/perfmodel"
	"repro/internal/units"
)

func testConfig() fvsst.Config {
	cfg := fvsst.DefaultConfig()
	cfg.UseIdleSignal = true
	cfg.Overhead = fvsst.Overhead{}
	return cfg
}

// obs builds a valid counter observation at the given frequency; memRefs
// tunes how memory-bound the workload looks (0 is legal: still some L2
// traffic, so the decomposition stays well-defined).
func obs(freq units.Frequency, memRefs uint64) *perfmodel.Observation {
	return &perfmodel.Observation{
		Delta: counters.Delta{
			Window:       0.02,
			Instructions: 2_000_000,
			Cycles:       3_000_000,
			L2Refs:       40_000,
			L3Refs:       8_000,
			MemRefs:      memRefs,
		},
		Freq: freq,
	}
}

// mustPass builds a Pass or fails the test.
func mustPass(t *testing.T, cfg fvsst.Config, budget units.Power, procs []invariant.Proc, dem []fvsst.Demotion, charged units.Power, met bool) *invariant.Pass {
	t.Helper()
	p, err := invariant.NewPass(cfg, 0.5, budget, procs, dem, charged, met)
	if err != nil {
		t.Fatalf("NewPass: %v", err)
	}
	return p
}

// cleanPass builds a pass that satisfies every checker: a generous budget,
// Step-1-consistent desired indices (computed from the pass's own grid),
// no demotions, correct voltages and charge.
func cleanPass(t *testing.T, cfg fvsst.Config) *invariant.Pass {
	t.Helper()
	nf := cfg.Table.Len()
	fmax := cfg.Table.FrequencyAtIndex(nf - 1)
	procs := []invariant.Proc{
		{Node: "n0", CPU: 0, Obs: obs(fmax, 500), DesiredIdx: nf - 1, ActualIdx: nf - 1},
		{CPU: 1, Obs: obs(fmax, 60_000), DesiredIdx: nf - 1, ActualIdx: nf - 1},
		{CPU: 2, Idle: true, DesiredIdx: nf - 1, ActualIdx: nf - 1},
		{CPU: 3, DesiredIdx: nf - 1, ActualIdx: nf - 1}, // no counters
	}
	probe := mustPass(t, cfg, units.Watts(1e6), procs, nil, 0, true)
	g := probe.Grid()
	for i := range procs {
		want := nf - 1
		switch {
		case procs[i].Idle:
			want = 0
		case !g.Valid(i):
		default:
			for fi := 0; fi < nf; fi++ {
				if g.Loss(i, fi) < cfg.Epsilon {
					want = fi
					break
				}
			}
		}
		procs[i].DesiredIdx, procs[i].ActualIdx = want, want
		procs[i].Voltage = cfg.Table.VoltageAtIndex(want)
	}
	var charged units.Power
	for _, pr := range procs {
		charged += cfg.Table.PowerAtIndex(pr.ActualIdx)
	}
	return mustPass(t, cfg, units.Watts(1e6), procs, nil, charged, true)
}

func names(vs []invariant.Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Checker]++
	}
	return m
}

func TestDefaultSuiteCleanPass(t *testing.T) {
	s := invariant.DefaultSuite()
	s.Check(cleanPass(t, testConfig()))
	if !s.OK() {
		t.Fatalf("clean pass violates: %v", s.Violations())
	}
	if s.Total() != 0 {
		t.Fatalf("Total() = %d, want 0", s.Total())
	}
}

func TestNewPassRejections(t *testing.T) {
	cfg := testConfig()
	bad := cfg
	bad.Epsilon = 0
	if _, err := invariant.NewPass(bad, 0, 0, nil, nil, 0, true); err == nil {
		t.Error("invalid config accepted")
	}
	for _, mut := range []func(*fvsst.Config){
		func(c *fvsst.Config) { c.UseIdealFrequency = true },
		func(c *fvsst.Config) { c.UseTwoPointCalibration = true },
		func(c *fvsst.Config) { c.LatencyBoundLo = 0.5; c.LatencyBoundHi = 2 },
		func(c *fvsst.Config) { c.DebouncePasses = 3 },
	} {
		v := cfg
		mut(&v)
		if _, err := invariant.NewPass(v, 0, 0, nil, nil, 0, true); err == nil ||
			!strings.Contains(err.Error(), "variants") {
			t.Errorf("Step-1 variant config accepted (err=%v)", err)
		}
	}
	nf := cfg.Table.Len()
	if _, err := invariant.NewPass(cfg, 0, 0, []invariant.Proc{{DesiredIdx: nf}}, nil, 0, true); err == nil {
		t.Error("out-of-range desired index accepted")
	}
	if _, err := invariant.NewPass(cfg, 0, 0, []invariant.Proc{{ActualIdx: -1}}, nil, 0, true); err == nil {
		t.Error("out-of-range actual index accepted")
	}
	badObs := &perfmodel.Observation{Delta: counters.Delta{Window: 0.02}, Freq: cfg.Table.FrequencyAtIndex(0)}
	if _, err := invariant.NewPass(cfg, 0, 0, []invariant.Proc{{Obs: badObs}}, nil, 0, true); err == nil {
		t.Error("undecomposable observation accepted")
	}
}

func TestGridSanityCatchesCorruptRow(t *testing.T) {
	p := cleanPass(t, testConfig())
	// Poison CPU 0's row with an impossible decomposition: negative core
	// CPI makes IPC negative at every frequency.
	p.Grid().Fill(0, perfmodel.Decomposition{InvAlpha: -1, StallSecPerInstr: 0})
	vs := invariant.GridSanity{}.Check(p)
	if len(vs) == 0 {
		t.Fatal("corrupt grid row not flagged")
	}
	if names(vs)["grid-sanity"] != len(vs) {
		t.Fatalf("unexpected checker names: %v", vs)
	}
}

func TestEpsilonSaturation(t *testing.T) {
	p := cleanPass(t, testConfig())
	if vs := (invariant.EpsilonSaturation{}).Check(p); len(vs) != 0 {
		t.Fatalf("clean pass flagged: %v", vs)
	}
	p.Procs[2].DesiredIdx = 1 // idle CPU must sit at the floor
	vs := invariant.EpsilonSaturation{}.Check(p)
	if len(vs) != 1 || vs[0].Checker != "step1-epsilon" {
		t.Fatalf("misplaced idle CPU not flagged exactly once: %v", vs)
	}
	p.Procs[2].DesiredIdx = 0
	p.Procs[3].DesiredIdx = 0 // counterless CPU must pin at f_max
	if vs := (invariant.EpsilonSaturation{}).Check(p); len(vs) != 1 {
		t.Fatalf("counterless CPU below f_max not flagged: %v", vs)
	}
}

func TestStepTwoReplayViolations(t *testing.T) {
	cfg := testConfig()
	p := cleanPass(t, cfg)

	wrongMet := *p
	wrongMet.Met = false
	vs := invariant.StepTwoReplay{}.Check(&wrongMet)
	if names(vs)["step2-least-loss"] == 0 {
		t.Fatalf("met mismatch not flagged: %v", vs)
	}

	// Phantom demotion: count mismatch plus per-step mismatch.
	phantom := *p
	phantom.Demotions = []fvsst.Demotion{{CPU: 0, From: cfg.Table.FrequencyAtIndex(1), To: cfg.Table.FrequencyAtIndex(0), PredictedLoss: 0.5}}
	if vs := (invariant.StepTwoReplay{}).Check(&phantom); len(vs) == 0 {
		t.Fatal("phantom demotion not flagged")
	}

	// Decreasing logged losses break the monotone-demotion property.
	mono := *p
	mono.Demotions = []fvsst.Demotion{
		{CPU: 0, From: cfg.Table.FrequencyAtIndex(1), To: cfg.Table.FrequencyAtIndex(0), PredictedLoss: 0.5},
		{CPU: 1, From: cfg.Table.FrequencyAtIndex(1), To: cfg.Table.FrequencyAtIndex(0), PredictedLoss: 0.1},
	}
	found := false
	for _, v := range (invariant.StepTwoReplay{}).Check(&mono) {
		if strings.Contains(v.Detail, "not monotone") {
			found = true
		}
	}
	if !found {
		t.Fatal("non-monotone demotion losses not flagged")
	}

	// A tight budget forces the replay to demote; a pass that claims no
	// demotions happened must be caught.
	tight := *p
	tight.Budget = cfg.Table.PowerAtIndex(0) * units.Power(len(p.Procs))
	vs = invariant.StepTwoReplay{}.Check(&tight)
	if len(vs) == 0 {
		t.Fatal("missing demotions under tight budget not flagged")
	}
}

func TestStepTwoBruteForce(t *testing.T) {
	cfg := testConfig()
	p := cleanPass(t, cfg)
	if vs := (invariant.StepTwoBruteForce{}).Check(p); len(vs) != 0 {
		t.Fatalf("clean pass flagged: %v", vs)
	}

	// met=false while the floor assignment fits: exact feasibility broken.
	infeasible := *p
	infeasible.Met = false
	vs := invariant.StepTwoBruteForce{}.Check(&infeasible)
	if len(vs) == 0 || !strings.Contains(vs[0].Detail, "feasible") {
		t.Fatalf("feasibility mismatch not flagged: %v", vs)
	}

	// Every CPU floored under a generous budget: the enumerated optimum
	// keeps them at their desired points with ~zero loss, so the greedy
	// gap bound must fire.
	nf := cfg.Table.Len()
	fmax := cfg.Table.FrequencyAtIndex(nf - 1)
	procs := []invariant.Proc{
		{CPU: 0, Obs: obs(fmax, 500), DesiredIdx: nf - 1, ActualIdx: 0, Voltage: cfg.Table.VoltageAtIndex(0)},
		{CPU: 1, Obs: obs(fmax, 500), DesiredIdx: nf - 1, ActualIdx: 0, Voltage: cfg.Table.VoltageAtIndex(0)},
	}
	floored := mustPass(t, cfg, units.Watts(1e6), procs, nil, cfg.Table.PowerAtIndex(0)*2, true)
	vs = invariant.StepTwoBruteForce{}.Check(floored)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Detail, "exceeds optimum") {
			found = true
		}
	}
	if !found {
		t.Fatalf("needless flooring within gap: %v", vs)
	}

	// A state space above MaxStates is skipped, not enumerated.
	if vs := (invariant.StepTwoBruteForce{MaxStates: 1}).Check(floored); vs != nil {
		t.Fatalf("oversized pass not skipped: %v", vs)
	}
}

func TestVoltageMatch(t *testing.T) {
	p := cleanPass(t, testConfig())
	if vs := (invariant.VoltageMatch{}).Check(p); len(vs) != 0 {
		t.Fatalf("clean pass flagged: %v", vs)
	}
	p.Procs[0].Voltage += units.Volts(0.1)
	if vs := (invariant.VoltageMatch{}).Check(p); len(vs) != 1 || vs[0].Checker != "step3-voltage" {
		t.Fatalf("wrong voltage not flagged exactly once: %v", vs)
	}
}

func TestBudgetConservation(t *testing.T) {
	cfg := testConfig()
	p := cleanPass(t, cfg)

	promoted := *p
	promoted.Procs = append([]invariant.Proc(nil), p.Procs...)
	promoted.Procs[2].ActualIdx = promoted.Procs[2].DesiredIdx + 1
	vs := invariant.BudgetConservation{}.Check(&promoted)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Detail, "only demote") {
			found = true
		}
	}
	if !found {
		t.Fatalf("promotion not flagged: %v", vs)
	}

	misCharged := *p
	misCharged.Charged += units.Watts(1)
	if vs := (invariant.BudgetConservation{}).Check(&misCharged); len(vs) == 0 {
		t.Fatal("wrong charged sum not flagged")
	}

	overdraw := *p
	overdraw.Budget = overdraw.Charged - units.Watts(1)
	if vs := (invariant.BudgetConservation{}).Check(&overdraw); len(vs) == 0 {
		t.Fatal("met=true over budget not flagged")
	}

	notFloored := *p
	notFloored.Met = false
	vs = invariant.BudgetConservation{}.Check(&notFloored)
	found = false
	for _, v := range vs {
		if strings.Contains(v.Detail, "must floor") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unfloored infeasible pass not flagged: %v", vs)
	}
}

func TestSuiteCapAndReport(t *testing.T) {
	s := invariant.NewSuite()
	var many []invariant.Violation
	for i := 0; i < invariant.DefaultMaxViolations+36; i++ {
		many = append(many, invariant.Violation{Checker: "x", At: float64(i)})
	}
	s.Report(many...)
	s.Report(invariant.Violation{Checker: "y"}) // past the cap: counted, not stored
	if got := len(s.Violations()); got != invariant.DefaultMaxViolations {
		t.Fatalf("retained %d, want cap %d", got, invariant.DefaultMaxViolations)
	}
	if s.Total() != len(many)+1 {
		t.Fatalf("Total() = %d, want %d", s.Total(), len(many)+1)
	}
	if s.OK() {
		t.Fatal("OK() with violations")
	}
	if s.Violations()[0].At != 0 {
		t.Fatal("cap did not keep the earliest violations")
	}
	if got := s.Violations()[0].String(); !strings.Contains(got, "[x]") {
		t.Fatalf("String() = %q", got)
	}
}

func TestSuiteAdd(t *testing.T) {
	s := invariant.NewSuite()
	s.Add(invariant.VoltageMatch{})
	p := cleanPass(t, testConfig())
	p.Procs[0].Voltage += units.Volts(0.1)
	s.Check(p)
	if s.Total() != 1 {
		t.Fatalf("added checker did not run: total=%d", s.Total())
	}
}

func TestCheckDeterminism(t *testing.T) {
	if vs := invariant.CheckDeterminism("ok", func() (string, error) { return "a\nb\n", nil }); len(vs) != 0 {
		t.Fatalf("identical runs flagged: %v", vs)
	}
	calls := 0
	vs := invariant.CheckDeterminism("flip", func() (string, error) {
		calls++
		if calls == 1 {
			return "a\nb\nc\n", nil
		}
		return "a\nb\nX\n", nil
	})
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "line 3") {
		t.Fatalf("divergence line wrong: %v", vs)
	}
	if vs := invariant.CheckDeterminism("err1", func() (string, error) { return "", errors.New("boom") }); len(vs) != 1 {
		t.Fatalf("first-run error not reported: %v", vs)
	}
	calls = 0
	vs = invariant.CheckDeterminism("err2", func() (string, error) {
		calls++
		if calls == 1 {
			return "fine", nil
		}
		return "", errors.New("boom")
	})
	if len(vs) != 1 || !strings.Contains(vs[0].Detail, "second run") {
		t.Fatalf("second-run error not reported: %v", vs)
	}
}

func TestCheckLedger(t *testing.T) {
	ok := invariant.Ledger{At: 1, Budget: 100, Live: 40, Reserved: 20, Charged: 60, Met: true}
	if vs := invariant.CheckLedger(ok); len(vs) != 0 {
		t.Fatalf("good ledger flagged: %v", vs)
	}
	split := ok
	split.Charged = 70
	vs := invariant.CheckLedger(split)
	// Charged no longer decomposes, and met=true no longer matches
	// charged ≤ budget being... still true — only the decomposition fires.
	if names(vs)["cluster-ledger"] != 1 {
		t.Fatalf("bad decomposition: %v", vs)
	}
	lie := ok
	lie.Met = false
	lie.AllLiveAtFloor = true
	if vs := invariant.CheckLedger(lie); len(vs) != 1 {
		t.Fatalf("met verdict mismatch: %v", vs)
	}
	over := invariant.Ledger{At: 1, Budget: 50, Live: 40, Reserved: 20, Charged: 60, Met: false}
	if vs := invariant.CheckLedger(over); len(vs) != 1 || !strings.Contains(vs[0].Detail, "floor") {
		t.Fatalf("missed budget above floor: %v", vs)
	}
}

func TestCheckAllocation(t *testing.T) {
	members := []farm.Member{{Name: "a", Floor: 10}, {Name: "b", Floor: 10}}
	good := farm.Allocation{
		At: 2, Budget: 100, Allocatable: 85, Charged: 80, Met: true,
		Leases: []farm.Lease{
			{Member: "a", Budget: 40, Granted: 2, Expires: 2.3},
			{Member: "b", Budget: 40, Granted: 2, Expires: 2.3},
		},
	}
	if vs := invariant.CheckAllocation(members, good); len(vs) != 0 {
		t.Fatalf("good allocation flagged: %v", vs)
	}
	bad := good
	bad.Allocatable = 120
	bad.Charged = 110
	bad.Leases = []farm.Lease{
		{Member: "ghost", Budget: 40, Granted: 2, Expires: 2.3},
		{Member: "a", Budget: 1, Granted: 2.5, Expires: 2.0},
	}
	vs := invariant.CheckAllocation(members, bad)
	want := []string{"safety discount", "exceeds budget", "unknown member", "below its floor", "granted at", "expires at"}
	for _, w := range want {
		found := false
		for _, v := range vs {
			if strings.Contains(v.Detail, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("no violation mentioning %q in %v", w, vs)
		}
	}
}

func TestCheckFarmChargeAndHolder(t *testing.T) {
	if vs := invariant.CheckFarmCharge(1, 100, 90); len(vs) != 0 {
		t.Fatalf("conserving charge flagged: %v", vs)
	}
	if vs := invariant.CheckFarmCharge(1, 100, 101); len(vs) != 1 || vs[0].Checker != "farm-conservation" {
		t.Fatalf("overdraw not flagged: %v", vs)
	}

	h, err := farm.NewHolder("c0", 15, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vs := invariant.CheckHolder(0, h); len(vs) != 0 {
		t.Fatalf("fresh holder flagged: %v", vs)
	}
	h.Grant(farm.Lease{Member: "c0", Budget: 50, Granted: 1, Expires: 1.3})
	if vs := invariant.CheckHolder(1.1, h); len(vs) != 0 {
		t.Fatalf("live lease flagged: %v", vs)
	}
	if vs := invariant.CheckHolder(2, h); len(vs) != 0 {
		t.Fatalf("expired lease at floor flagged: %v", vs)
	}
	// A lease below the floor is an allocator bug the holder check catches.
	h.Grant(farm.Lease{Member: "c0", Budget: 5, Granted: 3, Expires: 3.3})
	if vs := invariant.CheckHolder(3.1, h); len(vs) != 1 || !strings.Contains(vs[0].Detail, "below floor") {
		t.Fatalf("below-floor lease not flagged: %v", vs)
	}
}

func TestCheckerNames(t *testing.T) {
	want := map[string]bool{
		"grid-sanity": true, "step1-epsilon": true, "step2-least-loss": true,
		"step2-brute-force": true, "step3-voltage": true, "budget-conservation": true,
	}
	for _, c := range []invariant.Checker{
		invariant.GridSanity{}, invariant.EpsilonSaturation{}, invariant.StepTwoReplay{},
		invariant.StepTwoBruteForce{}, invariant.VoltageMatch{}, invariant.BudgetConservation{},
	} {
		if !want[c.Name()] {
			t.Errorf("unexpected checker name %q", c.Name())
		}
		delete(want, c.Name())
	}
	if len(want) != 0 {
		t.Errorf("names not covered: %v", want)
	}
}
