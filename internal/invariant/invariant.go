// Package invariant encodes the scheduler stack's contracts as executable
// predicates. The paper's value proposition is a safety contract —
// aggregate processor power never exceeds the budget while performance
// loss stays minimal (§4 Step 2, §5) — and after the fvsst, cluster,
// netcluster and farm layers each enforce a slice of it, this package is
// the one place that states the whole contract and checks it at run time.
//
// The checkers deliberately do not call into the production decision path
// they are judging: NewPass re-derives the prediction grid from the raw
// observations with its own perfmodel calls, and StepTwoReplay replays
// the documented greedy selection rule with an independent implementation.
// A bug in fvsst or cluster.Core therefore cannot hide itself by also
// corrupting the checker's expectations.
//
// Checkers implement Checker over a Pass snapshot (one scheduling pass);
// Suite composes them and accumulates Violations. System-level predicates
// that do not fit the pass shape — the transport budget ledger, the farm
// allocator's lease conservation, lease-holder floor safety, determinism
// — are plain functions returning the same Violation type, so a harness
// can funnel everything through one Suite via Report.
//
// The catalogue of invariants, with formal statements and the paper
// sections they come from, is docs/invariants.md.
package invariant

import (
	"fmt"
)

// Violation is one broken contract: which checker, at what simulation
// time, and a human-readable account of the expected/actual values.
type Violation struct {
	Checker string  `json:"checker"`
	At      float64 `json:"at"`
	Detail  string  `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%.3f %s", v.Checker, v.At, v.Detail)
}

// Checker is one executable contract over a scheduling pass.
type Checker interface {
	// Name identifies the checker in violations and the catalogue.
	Name() string
	// Check returns every way the pass breaks this contract (nil when it
	// holds).
	Check(p *Pass) []Violation
}

// Suite composes checkers and accumulates violations across a run. The
// stored list is capped (keeping the earliest violations, which are the
// ones a shrunk reproducer needs) while Total keeps the true count.
type Suite struct {
	checkers   []Checker
	violations []Violation
	total      int
	max        int
}

// DefaultMaxViolations bounds the violations a Suite retains.
const DefaultMaxViolations = 64

// NewSuite builds a suite over the given checkers.
func NewSuite(checkers ...Checker) *Suite {
	return &Suite{checkers: checkers, max: DefaultMaxViolations}
}

// DefaultSuite returns every pass-level checker at its default settings —
// the set a soak harness runs per scheduling pass. Step-2 near-optimality
// runs against the exact DP comparator (StepTwoOptimal), which covers
// every grid; the brute-force enumerator stays available as the
// comparator's own differential witness.
func DefaultSuite() *Suite {
	return NewSuite(
		GridSanity{},
		EpsilonSaturation{},
		StepTwoReplay{},
		StepTwoOptimal{},
		VoltageMatch{},
		BudgetConservation{},
	)
}

// Add appends checkers to the suite.
func (s *Suite) Add(checkers ...Checker) {
	s.checkers = append(s.checkers, checkers...)
}

// Check runs every checker against the pass, recording violations.
func (s *Suite) Check(p *Pass) {
	for _, c := range s.checkers {
		s.Report(c.Check(p)...)
	}
}

// Report funnels externally produced violations (ledger checks, farm
// checks, determinism) into the suite's accounting.
func (s *Suite) Report(violations ...Violation) {
	s.total += len(violations)
	room := s.max - len(s.violations)
	if room <= 0 {
		return
	}
	if len(violations) > room {
		violations = violations[:room]
	}
	s.violations = append(s.violations, violations...)
}

// Violations returns the retained violations (earliest first).
func (s *Suite) Violations() []Violation {
	out := make([]Violation, len(s.violations))
	copy(out, s.violations)
	return out
}

// Total returns the true violation count, including any dropped past the
// retention cap.
func (s *Suite) Total() int { return s.total }

// OK reports whether every contract held.
func (s *Suite) OK() bool { return s.total == 0 }

// CheckDeterminism runs the closure twice and demands byte-identical
// output — the repo's seed-only determinism convention (one seed
// reproduces the whole run, at any worker count, because runs share no
// mutable state). A mismatch or error is reported as a "determinism"
// violation.
func CheckDeterminism(label string, run func() (string, error)) []Violation {
	first, err := run()
	if err != nil {
		return []Violation{{Checker: "determinism", Detail: fmt.Sprintf("%s: first run failed: %v", label, err)}}
	}
	second, err := run()
	if err != nil {
		return []Violation{{Checker: "determinism", Detail: fmt.Sprintf("%s: second run failed: %v", label, err)}}
	}
	if first == second {
		return nil
	}
	line := 1
	n := len(first)
	if len(second) < n {
		n = len(second)
	}
	for i := 0; i < n; i++ {
		if first[i] != second[i] {
			break
		}
		if first[i] == '\n' {
			line++
		}
	}
	return []Violation{{
		Checker: "determinism",
		Detail: fmt.Sprintf("%s: replay diverged at line %d (%d vs %d bytes)",
			label, line, len(first), len(second)),
	}}
}
