package invariant

import (
	"fmt"
	"math"

	"repro/internal/power"
	"repro/internal/units"
)

// Float tolerances. Grid values on both sides come from the identical
// perfmodel code path over identical inputs, so they agree to the last
// bit in practice; tiny absorbs any future reassociation. powerTol covers
// harnesses that re-derive the charged sum in a different order.
const (
	tiny     = 1e-12
	powerTol = 1e-9
)

// GridSanity checks the analytic shape of the performance model (§3):
// IPC(f) = 1/(α⁻¹ + S·f) must be positive, non-increasing in f, with
// Perf(f) = IPC(f)·f non-decreasing, and the derived PerfLoss must lie in
// [0,1], be non-increasing in f, and vanish at f_max.
type GridSanity struct{}

func (GridSanity) Name() string { return "grid-sanity" }

func (GridSanity) Check(p *Pass) []Violation {
	var out []Violation
	g := p.Grid()
	nf := g.NumFreqs()
	for i := range p.Procs {
		if !g.Valid(i) {
			continue
		}
		for fi := 0; fi < nf; fi++ {
			ipc := g.IPC(i, fi)
			loss := g.Loss(i, fi)
			if math.IsNaN(ipc) || math.IsInf(ipc, 0) || ipc <= 0 {
				out = append(out, Violation{"grid-sanity", p.At,
					fmt.Sprintf("%s: IPC(%v)=%g not finite positive", p.procLabel(i), g.Freq(fi), ipc)})
			}
			if math.IsNaN(loss) || loss < -tiny || loss > 1+tiny {
				out = append(out, Violation{"grid-sanity", p.At,
					fmt.Sprintf("%s: PerfLoss(%v)=%g outside [0,1]", p.procLabel(i), g.Freq(fi), loss)})
			}
			if fi == nf-1 && math.Abs(loss) > tiny {
				out = append(out, Violation{"grid-sanity", p.At,
					fmt.Sprintf("%s: PerfLoss(f_max)=%g, want 0", p.procLabel(i), loss)})
			}
			if fi > 0 {
				if ipc > g.IPC(i, fi-1)+tiny {
					out = append(out, Violation{"grid-sanity", p.At,
						fmt.Sprintf("%s: IPC rises with f: IPC(%v)=%g > IPC(%v)=%g",
							p.procLabel(i), g.Freq(fi), ipc, g.Freq(fi-1), g.IPC(i, fi-1))})
				}
				perf := ipc * g.Freq(fi).Hz()
				prev := g.IPC(i, fi-1) * g.Freq(fi-1).Hz()
				if perf < prev-tiny*math.Max(1, prev) {
					out = append(out, Violation{"grid-sanity", p.At,
						fmt.Sprintf("%s: Perf falls with f: Perf(%v)=%g < Perf(%v)=%g",
							p.procLabel(i), g.Freq(fi), perf, g.Freq(fi-1), prev)})
				}
				if loss > g.Loss(i, fi-1)+tiny {
					out = append(out, Violation{"grid-sanity", p.At,
						fmt.Sprintf("%s: PerfLoss rises with f: Loss(%v)=%g > Loss(%v)=%g",
							p.procLabel(i), g.Freq(fi), loss, g.Freq(fi-1), g.Loss(i, fi-1))})
				}
			}
		}
	}
	return out
}

// EpsilonSaturation checks Step 1 (§4): every CPU's desired frequency is
// the lowest table frequency whose predicted loss is under ε — no CPU
// sits above it, none below. Idle CPUs (when the idle signal is honoured)
// must sit at the floor; CPUs without a usable prediction at f_max.
type EpsilonSaturation struct{}

func (EpsilonSaturation) Name() string { return "step1-epsilon" }

func (EpsilonSaturation) Check(p *Pass) []Violation {
	var out []Violation
	g := p.Grid()
	nf := g.NumFreqs()
	for i, pr := range p.Procs {
		want := nf - 1
		switch {
		case p.UseIdleSignal && pr.Idle:
			want = 0
		case !g.Valid(i):
			// no counters: pin at f_max
		default:
			for fi := 0; fi < nf; fi++ {
				if g.Loss(i, fi) < p.Epsilon {
					want = fi
					break
				}
			}
		}
		if pr.DesiredIdx != want {
			out = append(out, Violation{"step1-epsilon", p.At,
				fmt.Sprintf("%s: desired %v (idx %d), want lowest loss<ε at %v (idx %d)",
					p.procLabel(i), p.Table.FrequencyAtIndex(pr.DesiredIdx), pr.DesiredIdx,
					p.Table.FrequencyAtIndex(want), want)})
		}
	}
	return out
}

// StepTwoReplay re-runs Step 2's documented selection rule (§4: demote
// the CPU whose next-lower point costs the least predicted loss, ties to
// the higher current frequency, unpredicted CPUs count as free) with an
// independent implementation and demands the production path made the
// identical demotion sequence and reached the identical assignment. It
// also checks that the logged demotion losses are non-decreasing — a
// structural consequence of greedy least-loss selection over rows whose
// candidate loss only grows as the index drops.
type StepTwoReplay struct{}

func (StepTwoReplay) Name() string { return "step2-least-loss" }

func (StepTwoReplay) Check(p *Pass) []Violation {
	var out []Violation
	g := p.Grid()
	n := len(p.Procs)
	idx := make([]int, n)
	for i, pr := range p.Procs {
		idx[i] = pr.DesiredIdx
	}
	type step struct {
		cpu  int
		from int
		loss float64
	}
	var steps []step
	met := false
	for {
		var sum units.Power
		for i := 0; i < n; i++ {
			sum += p.Table.PowerAtIndex(idx[i])
		}
		if sum <= p.Budget {
			met = true
			break
		}
		best, bestLoss := -1, 0.0
		for i := 0; i < n; i++ {
			if idx[i] == 0 {
				continue
			}
			loss := 0.0
			if g.Valid(i) {
				loss = g.Loss(i, idx[i]-1)
			}
			if best < 0 || loss < bestLoss || (loss == bestLoss && idx[i] > idx[best]) {
				best, bestLoss = i, loss
			}
		}
		if best < 0 {
			break
		}
		steps = append(steps, step{best, idx[best], bestLoss})
		idx[best]--
	}
	if met != p.Met {
		out = append(out, Violation{"step2-least-loss", p.At,
			fmt.Sprintf("replay met=%v but pass reported met=%v", met, p.Met)})
	}
	if len(steps) != len(p.Demotions) {
		out = append(out, Violation{"step2-least-loss", p.At,
			fmt.Sprintf("replay made %d demotions, pass logged %d", len(steps), len(p.Demotions))})
	}
	for k := 0; k < len(steps) && k < len(p.Demotions); k++ {
		s, d := steps[k], p.Demotions[k]
		if d.CPU != s.cpu ||
			d.From != p.Table.FrequencyAtIndex(s.from) ||
			d.To != p.Table.FrequencyAtIndex(s.from-1) ||
			math.Abs(d.PredictedLoss-s.loss) > tiny {
			out = append(out, Violation{"step2-least-loss", p.At,
				fmt.Sprintf("demotion %d: got cpu%d %v→%v loss=%g, replay chose cpu%d %v→%v loss=%g",
					k, d.CPU, d.From, d.To, d.PredictedLoss,
					s.cpu, p.Table.FrequencyAtIndex(s.from), p.Table.FrequencyAtIndex(s.from-1), s.loss)})
			break
		}
	}
	for i, pr := range p.Procs {
		if pr.ActualIdx != idx[i] {
			out = append(out, Violation{"step2-least-loss", p.At,
				fmt.Sprintf("%s: actual idx %d, replay reaches %d", p.procLabel(i), pr.ActualIdx, idx[i])})
		}
	}
	for k := 1; k < len(p.Demotions); k++ {
		if p.Demotions[k].PredictedLoss < p.Demotions[k-1].PredictedLoss-tiny {
			out = append(out, Violation{"step2-least-loss", p.At,
				fmt.Sprintf("demotion losses not monotone: step %d loss %g < step %d loss %g",
					k, p.Demotions[k].PredictedLoss, k-1, p.Demotions[k-1].PredictedLoss)})
		}
	}
	return out
}

// StepTwoBruteForce checks Step 2 against exhaustive enumeration on small
// grids. Two exact facts and one bound:
//
//   - feasibility: the pass reports met=true exactly when some assignment
//     at or below the desired indices fits the budget (equivalently, the
//     all-floor assignment fits);
//   - enumeration sanity: no feasible assignment the greedy could have
//     reached beats the optimum found by enumeration;
//   - near-optimality: the greedy's total predicted loss is within Gap of
//     the enumerated optimum. The greedy is not globally optimal — demoting
//     by absolute next-step loss can strand a CPU on a cheap plateau while
//     a one-shot deeper demotion elsewhere was cheaper overall — so Gap is
//     an empirical bound, not zero (see docs/invariants.md).
type StepTwoBruteForce struct {
	// MaxStates bounds Π(desired_i+1); larger passes are skipped.
	// 0 means DefaultMaxStates.
	MaxStates int
	// Gap bounds greedyLoss − optimalLoss. 0 means DefaultGap.
	Gap float64
}

// DefaultMaxStates keeps exhaustive Step-2 checking under ~10⁵ states.
const DefaultMaxStates = 50000

// DefaultGap is the allowed greedy-vs-optimal total-loss gap, calibrated
// empirically against the exact DP comparator (`experiments optgap`):
// 600 random scenarios (8,833 measured passes) produced 427 non-optimal
// passes with a worst observed per-pass gap of 0.146, so 0.2 leaves
// ~1.4× margin while still catching gross Step-2 regressions. The old
// brute-force-only calibration (worst 0.068 over 300 seeds) was an
// underestimate: it skipped exactly the large passes where the greedy
// strays furthest (see docs/invariants.md and docs/optimality.md).
const DefaultGap = 0.2

func (StepTwoBruteForce) Name() string { return "step2-brute-force" }

func (c StepTwoBruteForce) Check(p *Pass) []Violation {
	maxStates := c.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	gap := c.Gap
	if gap <= 0 {
		gap = DefaultGap
	}
	n := len(p.Procs)
	states := 1
	for _, pr := range p.Procs {
		states *= pr.DesiredIdx + 1
		if states > maxStates {
			return nil // too large to enumerate; replay checker still covers it
		}
	}
	var out []Violation
	g := p.Grid()
	lossAt := func(i, fi int) float64 {
		if !g.Valid(i) {
			return 0
		}
		return g.Loss(i, fi)
	}
	// Exact feasibility: demotions stop only at the floor, so met must
	// equal "the all-floor assignment fits the budget".
	var floorPower units.Power
	for i := 0; i < n; i++ {
		floorPower += p.Table.PowerAtIndex(0)
	}
	feasible := floorPower <= p.Budget
	if p.Met != feasible {
		out = append(out, Violation{"step2-brute-force", p.At,
			fmt.Sprintf("met=%v but floor power %v vs budget %v implies feasible=%v",
				p.Met, floorPower, p.Budget, feasible)})
	}
	if !p.Met || n == 0 {
		return out
	}
	upper := make([]int, n)
	for i, pr := range p.Procs {
		upper[i] = pr.DesiredIdx
	}
	bestLoss, found := BruteForceOptimal(lossAt, upper, p.Table, p.Budget)
	greedyLoss := 0.0
	for i, pr := range p.Procs {
		greedyLoss += lossAt(i, pr.ActualIdx)
	}
	if !found {
		out = append(out, Violation{"step2-brute-force", p.At,
			"met=true but enumeration found no feasible assignment"})
		return out
	}
	if greedyLoss < bestLoss-tiny {
		out = append(out, Violation{"step2-brute-force", p.At,
			fmt.Sprintf("greedy loss %g beats enumerated optimum %g: enumeration broken", greedyLoss, bestLoss)})
	}
	if greedyLoss > bestLoss+gap {
		out = append(out, Violation{"step2-brute-force", p.At,
			fmt.Sprintf("greedy loss %g exceeds optimum %g by more than gap %g", greedyLoss, bestLoss, gap)})
	}
	return out
}

// BruteForceOptimal enumerates every assignment with idx_i ≤ upper_i by
// odometer and returns the minimum total predicted loss of any assignment
// whose table power fits the budget, or found=false when none does. Both
// sums accumulate in CPU order, which makes the result bit-comparable to
// internal/optimal's DP and branch-and-bound solvers — the differential
// tests there pin all three to the identical float64. Callers bound the
// state count themselves (Π(upper_i+1) grows fast); this function always
// enumerates exhaustively.
func BruteForceOptimal(loss func(cpu, fi int) float64, upper []int, table *power.Table, budget units.Power) (best float64, found bool) {
	n := len(upper)
	idx := make([]int, n)
	best = math.Inf(1)
	for {
		var pow units.Power
		total := 0.0
		for i := 0; i < n; i++ {
			pow += table.PowerAtIndex(idx[i])
			total += loss(i, idx[i])
		}
		if pow <= budget && total < best {
			best, found = total, true
		}
		k := 0
		for k < n {
			if idx[k] < upper[k] {
				idx[k]++
				break
			}
			idx[k] = 0
			k++
		}
		if k == n {
			break
		}
	}
	return best, found
}

// VoltageMatch checks Step 3 (§4): every CPU runs at the table's minimum
// voltage for its assigned frequency.
type VoltageMatch struct{}

func (VoltageMatch) Name() string { return "step3-voltage" }

func (VoltageMatch) Check(p *Pass) []Violation {
	var out []Violation
	for i, pr := range p.Procs {
		want := p.Table.VoltageAtIndex(pr.ActualIdx)
		if pr.Voltage != want {
			out = append(out, Violation{"step3-voltage", p.At,
				fmt.Sprintf("%s: voltage %v at %v, table minimum is %v",
					p.procLabel(i), pr.Voltage, p.Table.FrequencyAtIndex(pr.ActualIdx), want)})
		}
	}
	return out
}

// BudgetConservation checks the core safety contract (§4 Step 2): charged
// power is the table sum of the actual assignment, it respects the budget
// whenever the pass claims the budget was met, a missed budget is only
// legal with every CPU at the floor, and Step 2 only ever demotes.
type BudgetConservation struct{}

func (BudgetConservation) Name() string { return "budget-conservation" }

func (BudgetConservation) Check(p *Pass) []Violation {
	var out []Violation
	var charged units.Power
	for i, pr := range p.Procs {
		charged += p.Table.PowerAtIndex(pr.ActualIdx)
		if pr.ActualIdx > pr.DesiredIdx {
			out = append(out, Violation{"budget-conservation", p.At,
				fmt.Sprintf("%s: actual idx %d above desired %d: Step 2 may only demote",
					p.procLabel(i), pr.ActualIdx, pr.DesiredIdx)})
		}
	}
	if math.Abs(charged.W()-p.Charged.W()) > powerTol {
		out = append(out, Violation{"budget-conservation", p.At,
			fmt.Sprintf("charged %v but table sum of actual assignment is %v", p.Charged, charged)})
	}
	if p.Met && charged > p.Budget+powerTol {
		out = append(out, Violation{"budget-conservation", p.At,
			fmt.Sprintf("met=true but charged %v exceeds budget %v", charged, p.Budget)})
	}
	if !p.Met {
		for i, pr := range p.Procs {
			if pr.ActualIdx != 0 {
				out = append(out, Violation{"budget-conservation", p.At,
					fmt.Sprintf("met=false with %s at idx %d: infeasible budget must floor every CPU",
						p.procLabel(i), pr.ActualIdx)})
			}
		}
	}
	return out
}
