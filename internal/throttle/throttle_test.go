package throttle

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func newFetch(t *testing.T, steps int, settle float64) *Throttle {
	t.Helper()
	th, err := New(Fetch, units.GHz(1), steps, settle)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Fetch, 0, 10, 0); err == nil {
		t.Error("zero nominal accepted")
	}
	if _, err := New(Fetch, units.GHz(1), 0, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := New(Fetch, units.GHz(1), 10, -1); err == nil {
		t.Error("negative settle accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Fetch: "fetch", Dispatch: "dispatch", Commit: "commit", Kind(7): "Kind(7)"} {
		if got := k.String(); got != want {
			t.Errorf("%d = %q, want %q", int(k), got, want)
		}
	}
}

func TestStartsUnthrottled(t *testing.T) {
	th := newFetch(t, 100, 0)
	if got := th.Effective(0); got != units.GHz(1) {
		t.Errorf("fresh throttle effective = %v, want nominal", got)
	}
}

func TestQuantizeDuty(t *testing.T) {
	th := newFetch(t, 10, 0)
	cases := []struct{ in, want float64 }{
		{0.0, 0.0}, {1.0, 1.0}, {0.72, 0.7}, {0.76, 0.8},
		{-0.5, 0.0}, {1.5, 1.0}, {0.05, 0.1}, {0.04, 0.0},
	}
	for _, c := range cases {
		if got := th.QuantizeDuty(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QuantizeDuty(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRequestImmediateWithZeroSettle(t *testing.T) {
	th := newFetch(t, 1000, 0)
	got, err := th.Request(0, units.MHz(750))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.MHz()-750) > 1 {
		t.Errorf("requested 750MHz, promised %v", got)
	}
	if eff := th.Effective(0); math.Abs(eff.MHz()-750) > 1 {
		t.Errorf("effective = %v, want ≈750MHz immediately", eff)
	}
}

func TestRequestRejectsOutOfRange(t *testing.T) {
	th := newFetch(t, 100, 0)
	if _, err := th.Request(0, units.GHz(2)); err == nil {
		t.Error("above-nominal accepted")
	}
	if _, err := th.Request(0, units.Frequency(-1)); err == nil {
		t.Error("negative accepted")
	}
}

func TestSettlingDelay(t *testing.T) {
	th := newFetch(t, 1000, 0.005) // 5 ms settle
	if _, err := th.Request(1.0, units.MHz(500)); err != nil {
		t.Fatal(err)
	}
	if !th.Settling(1.0) {
		t.Error("should be settling right after request")
	}
	if eff := th.Effective(1.002); eff != units.GHz(1) {
		t.Errorf("effective during settle = %v, want nominal", eff)
	}
	if eff := th.Effective(1.005); math.Abs(eff.MHz()-500) > 1 {
		t.Errorf("effective after settle = %v, want 500MHz", eff)
	}
	if th.Settling(1.01) {
		t.Error("still settling after deadline")
	}
}

func TestRequestSupersedesPending(t *testing.T) {
	th := newFetch(t, 1000, 0.005)
	th.Request(0, units.MHz(500))
	// Before the first matures, request something else.
	th.Request(0.001, units.MHz(800))
	// At t=0.004 the first request's deadline (0.005) has not passed and
	// was superseded anyway.
	if eff := th.Effective(0.004); eff != units.GHz(1) {
		t.Errorf("effective = %v, want nominal while second settles", eff)
	}
	if eff := th.Effective(0.006); math.Abs(eff.MHz()-800) > 1 {
		t.Errorf("effective = %v, want 800MHz from superseding request", eff)
	}
}

func TestDutyZeroStopsProcessor(t *testing.T) {
	th := newFetch(t, 100, 0)
	th.Request(0, 0)
	if eff := th.Effective(0); eff != 0 {
		t.Errorf("duty 0 effective = %v, want 0", eff)
	}
}

func TestKindEffectivenessOrdering(t *testing.T) {
	// At the same duty, fetch throttling slows the machine the most and
	// commit throttling the least.
	mk := func(k Kind) units.Frequency {
		th, err := New(k, units.GHz(1), 1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		th.Request(0, units.MHz(500))
		return th.Effective(0)
	}
	fetch, dispatch, commit := mk(Fetch), mk(Dispatch), mk(Commit)
	if !(fetch <= dispatch && dispatch <= commit) {
		t.Errorf("effectiveness ordering violated: fetch=%v dispatch=%v commit=%v", fetch, dispatch, commit)
	}
	if math.Abs(fetch.MHz()-500) > 1 {
		t.Errorf("fetch throttling should deliver the request exactly, got %v", fetch)
	}
}

func TestFullDutyAlwaysNominalProperty(t *testing.T) {
	err := quick.Check(func(stepsRaw uint8, kindRaw uint8) bool {
		steps := int(stepsRaw%200) + 1
		th, err := New(Kind(kindRaw%3), units.GHz(1), steps, 0)
		if err != nil {
			return false
		}
		if _, err := th.Request(0, units.GHz(1)); err != nil {
			return false
		}
		return th.Effective(0) == units.GHz(1)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestEffectiveMonotoneInRequestProperty(t *testing.T) {
	err := quick.Check(func(a, b uint16) bool {
		fa := units.MHz(float64(a % 1001))
		fb := units.MHz(float64(b % 1001))
		if fa > fb {
			fa, fb = fb, fa
		}
		t1, _ := New(Fetch, units.GHz(1), 100, 0)
		t2, _ := New(Fetch, units.GHz(1), 100, 0)
		t1.Request(0, fa)
		t2.Request(0, fb)
		return t1.Effective(0) <= t2.Effective(0)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
