// Package throttle models the pipeline-throttling hardware the prototype
// used in place of true frequency scaling (§6): the Power4+ can intersperse
// fetch, dispatch or commit cycles with dead cycles, covering the whole
// range from 0% to 100% of nominal frequency. fvsst treats a throttled
// processor exactly as if it ran at the equivalent lower clock; the paper
// validates that approximation with microbenchmarks and ignores settling
// time. This package keeps both the idealisation the scheduler sees and
// the imperfections (duty quantisation, settling latency) the machine
// simulates.
package throttle

import (
	"fmt"

	"repro/internal/units"
)

// Kind selects which pipeline stage the throttle gates.
type Kind int

// Throttle kinds. The prototype used fetch throttling; dispatch and commit
// throttling exist on the hardware and are modelled with slightly different
// effectiveness below.
const (
	Fetch Kind = iota
	Dispatch
	Commit
)

// String names the throttle kind.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Dispatch:
		return "dispatch"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// effectiveness is the fraction of the requested slowdown each mechanism
// actually delivers: gating fetch starves the whole pipeline cleanly, while
// gating later stages lets earlier ones keep fetching work that then stalls,
// recovering some throughput.
func (k Kind) effectiveness() float64 {
	switch k {
	case Fetch:
		return 1.0
	case Dispatch:
		return 0.97
	case Commit:
		return 0.94
	default:
		return 1.0
	}
}

// Throttle is one processor's throttling actuator.
type Throttle struct {
	kind    Kind
	nominal units.Frequency
	// steps is the duty-cycle quantisation: the hardware supports duty
	// levels i/steps for i in 0..steps.
	steps int
	// settle is how long a requested change takes to become effective, in
	// seconds. The scheduler ignores it ("ignores the settling time", §6);
	// the machine honours it.
	settle float64

	currentDuty float64
	pendingDuty float64
	pendingAt   float64 // simulation time the pending duty becomes active; <0 when none
}

// New constructs a throttle for a processor with the given nominal
// frequency. steps is the number of duty quantisation levels (≥1);
// settleSeconds ≥ 0.
func New(kind Kind, nominal units.Frequency, steps int, settleSeconds float64) (*Throttle, error) {
	if nominal <= 0 {
		return nil, fmt.Errorf("throttle: nominal frequency %v must be positive", nominal)
	}
	if steps < 1 {
		return nil, fmt.Errorf("throttle: steps %d must be ≥ 1", steps)
	}
	if settleSeconds < 0 {
		return nil, fmt.Errorf("throttle: settle time %v must be non-negative", settleSeconds)
	}
	return &Throttle{
		kind:        kind,
		nominal:     nominal,
		steps:       steps,
		settle:      settleSeconds,
		currentDuty: 1,
		pendingAt:   -1,
	}, nil
}

// Kind returns the throttle's mechanism.
func (t *Throttle) Kind() Kind { return t.kind }

// Nominal returns the unthrottled frequency.
func (t *Throttle) Nominal() units.Frequency { return t.nominal }

// QuantizeDuty rounds a duty cycle to the nearest supported level in [0,1].
func (t *Throttle) QuantizeDuty(d float64) float64 {
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	level := float64(int(d*float64(t.steps) + 0.5))
	return level / float64(t.steps)
}

// Request asks, at simulation time now, for an effective frequency f. The
// duty is quantised and becomes effective after the settle time. It returns
// the effective frequency that will be reached (post-quantisation).
func (t *Throttle) Request(now float64, f units.Frequency) (units.Frequency, error) {
	if f < 0 || f > t.nominal {
		return 0, fmt.Errorf("throttle: requested %v outside [0,%v]", f, t.nominal)
	}
	duty := t.QuantizeDuty(f.Hz() / t.nominal.Hz())
	// Collapse a pending change that has already taken effect.
	t.apply(now)
	t.pendingDuty = duty
	t.pendingAt = now + t.settle
	if t.settle == 0 {
		t.apply(now)
	}
	return t.dutyToFreq(duty), nil
}

// apply folds a matured pending duty into the current duty.
func (t *Throttle) apply(now float64) {
	if t.pendingAt >= 0 && now >= t.pendingAt {
		t.currentDuty = t.pendingDuty
		t.pendingAt = -1
	}
}

// Effective returns the frequency the processor actually runs at, at
// simulation time now, including the kind's effectiveness: a mechanism
// that recovers some throughput behaves like a slightly *higher* effective
// frequency than duty·nominal.
func (t *Throttle) Effective(now float64) units.Frequency {
	t.apply(now)
	return t.dutyToFreq(t.currentDuty)
}

func (t *Throttle) dutyToFreq(duty float64) units.Frequency {
	if duty >= 1 {
		return t.nominal
	}
	eff := t.kind.effectiveness()
	// The delivered slowdown is eff·(1-duty); the rest leaks through.
	slowdown := eff * (1 - duty)
	return units.Frequency(t.nominal.Hz() * (1 - slowdown))
}

// Settling reports whether a requested change has not yet taken effect at
// time now.
func (t *Throttle) Settling(now float64) bool {
	t.apply(now)
	return t.pendingAt >= 0
}
