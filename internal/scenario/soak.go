package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/invariant"
	"repro/internal/obs"
)

// SoakConfig sizes one soak campaign.
type SoakConfig struct {
	// Seeds is the number of cluster invariant scenarios (each run twice
	// for the determinism check).
	Seeds int `json:"seeds"`
	// DiffSeeds is the number of differential scenarios (in-process mirror
	// vs networked stack over loopback+faultnet).
	DiffSeeds int `json:"diff_seeds"`
	// FarmSeeds is the number of farm-layer scenarios.
	FarmSeeds int `json:"farm_seeds"`
	// DESSeeds is the number of quantum-vs-DES engine differentials
	// (RunCluster vs RunClusterDES, required byte-identical).
	DESSeeds int `json:"des_seeds"`
	// BaseSeed offsets every seed range; 0 means 1.
	BaseSeed int64 `json:"base_seed,omitempty"`
	// Parallel is the worker-pool size; 0 or 1 runs sequentially. Every
	// job derives all randomness from its seed, so the report is identical
	// at any worker count.
	Parallel int `json:"parallel,omitempty"`
	// Wall bounds total wall-clock; jobs not started by the deadline are
	// marked skipped, never silently dropped. Zero means unbounded.
	Wall time.Duration `json:"-"`
	// Sabotage names a deliberate defect injected into cluster runs (see
	// SabotageStepTwoInvert); the checkers are expected to catch it.
	Sabotage string `json:"sabotage,omitempty"`
	// ShrinkMax caps candidate runs when shrinking a failing cluster seed
	// to a minimal reproducer. 0 disables shrinking.
	ShrinkMax int `json:"shrink_max,omitempty"`
	// DumpDir, when set, receives a flight-recorder snapshot
	// (flight-cluster-seed<N>.json) for every cluster seed whose invariant
	// suite fires, so the violating pass ships with its recent event and
	// series history. Empty disables dumps.
	DumpDir string `json:"dump_dir,omitempty"`
	// MeasureGap turns on per-pass greedy-vs-exact-optimal measurement in
	// cluster jobs; the report carries the aggregated OptGapStats.
	MeasureGap bool `json:"measure_gap,omitempty"`
}

// Seed ranges per job kind, decorrelated so `-seeds N -diff M` never
// replays the same spec under two kinds.
const (
	diffSeedBase = 10_000
	farmSeedBase = 20_000
	desSeedBase  = 30_000
)

// SeedResult is one job's outcome.
type SeedResult struct {
	Kind   string `json:"kind"` // "cluster", "diff", "farm" or "des"
	Seed   int64  `json:"seed"`
	Rounds int    `json:"rounds,omitempty"`
	Hash   string `json:"hash,omitempty"`
	// Violations from the invariant suite (plus the determinism check),
	// capped per run at invariant.DefaultMaxViolations.
	Violations []invariant.Violation `json:"violations,omitempty"`
	// Differential fields (kind "diff").
	Equivalent    bool         `json:"equivalent,omitempty"`
	FaultRounds   int          `json:"fault_rounds,omitempty"`
	InWindowDiffs int          `json:"in_window_diffs,omitempty"`
	Divergences   []Divergence `json:"divergences,omitempty"`
	// Shrunk is the minimal reproducer found for a failing cluster seed.
	Shrunk         *Spec `json:"shrunk,omitempty"`
	ShrinkAttempts int   `json:"shrink_attempts,omitempty"`
	// FlightDump is the path of the flight-recorder snapshot written for a
	// violating cluster seed (DumpDir set).
	FlightDump string `json:"flight_dump,omitempty"`
	// Gap is the per-run greedy-vs-optimal measurement (MeasureGap).
	Gap     *OptGapStats `json:"gap,omitempty"`
	Skipped bool         `json:"skipped,omitempty"`
	Err     string       `json:"err,omitempty"`
}

// SoakReport is the full campaign outcome, assembled in deterministic
// job order regardless of worker count.
type SoakReport struct {
	Config      SoakConfig   `json:"config"`
	Results     []SeedResult `json:"results"`
	Violations  int          `json:"violations"`
	Divergences int          `json:"divergences"`
	Errors      int          `json:"errors"`
	Skipped     int          `json:"skipped"`
	OK          bool         `json:"ok"`
	ElapsedSec  float64      `json:"elapsed_sec"`
	// Gap aggregates every cluster job's OptGapStats (MeasureGap set);
	// Gap.WorstGap across a soak corpus is what invariant.DefaultGap is
	// calibrated against.
	Gap *OptGapStats `json:"gap,omitempty"`
}

// Soak runs the campaign: cluster scenarios through the in-process
// mirror plus the full invariant suite (twice each, byte-comparing the
// traces), differential scenarios through both stacks, farm scenarios
// through the allocator contract checks, and DES scenarios through the
// quantum-vs-DES engine differential (byte-comparing per-round traces).
// Failing cluster seeds are shrunk to minimal reproducers.
func Soak(cfg SoakConfig) *SoakReport {
	start := time.Now()
	base := cfg.BaseSeed
	if base == 0 {
		base = 1
	}
	var deadline time.Time
	if cfg.Wall > 0 {
		deadline = start.Add(cfg.Wall)
	}

	type job struct {
		kind string
		seed int64
	}
	var jobs []job
	for i := 0; i < cfg.Seeds; i++ {
		jobs = append(jobs, job{"cluster", base + int64(i)})
	}
	for i := 0; i < cfg.DiffSeeds; i++ {
		jobs = append(jobs, job{"diff", base + diffSeedBase + int64(i)})
	}
	for i := 0; i < cfg.FarmSeeds; i++ {
		jobs = append(jobs, job{"farm", base + farmSeedBase + int64(i)})
	}
	for i := 0; i < cfg.DESSeeds; i++ {
		jobs = append(jobs, job{"des", base + desSeedBase + int64(i)})
	}

	results := make([]SeedResult, len(jobs))
	run := func(j job) SeedResult {
		res := SeedResult{Kind: j.kind, Seed: j.seed}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Skipped = true
			return res
		}
		switch j.kind {
		case "cluster":
			runClusterJob(&res, cfg)
		case "diff":
			runDiffJob(&res)
		case "farm":
			runFarmJob(&res)
		case "des":
			runDESJob(&res)
		}
		return res
	}

	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = run(jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &SoakReport{Config: cfg, Results: results}
	for _, r := range results {
		rep.Violations += len(r.Violations)
		rep.Divergences += len(r.Divergences)
		if r.Err != "" {
			rep.Errors++
		}
		if r.Skipped {
			rep.Skipped++
		}
		if r.Gap != nil {
			if rep.Gap == nil {
				rep.Gap = &OptGapStats{}
			}
			rep.Gap.Merge(*r.Gap)
		}
	}
	rep.OK = rep.Violations == 0 && rep.Divergences == 0 && rep.Errors == 0
	rep.ElapsedSec = time.Since(start).Seconds()
	return rep
}

func runClusterJob(res *SeedResult, cfg SoakConfig) {
	spec := Generate(res.Seed)
	opt := Options{Sabotage: cfg.Sabotage, MeasureGap: cfg.MeasureGap}
	var rec *obs.FlightRecorder
	if cfg.DumpDir != "" {
		rec = obs.NewFlightRecorder(0, 0)
		opt.Sink = rec
	}
	var last *RunResult
	det := invariant.CheckDeterminism(fmt.Sprintf("cluster seed %d", res.Seed), func() (string, error) {
		r, err := RunCluster(spec, opt)
		if err != nil {
			return "", err
		}
		last = r
		return r.Text, nil
	})
	if last == nil {
		res.Err = det[0].Detail
		return
	}
	res.Rounds, res.Hash = last.Rounds, last.Hash
	res.Violations = append(last.Violations, det...)
	res.Gap = last.Gap
	if len(res.Violations) > 0 && rec != nil {
		path := filepath.Join(cfg.DumpDir, fmt.Sprintf("flight-cluster-seed%d.json", res.Seed))
		if f, err := os.Create(path); err == nil {
			if err := rec.DumpJSON(f); err == nil {
				res.FlightDump = path
			}
			f.Close()
		}
	}
	if len(res.Violations) == 0 || cfg.ShrinkMax <= 0 {
		return
	}
	fails := func(s Spec) bool {
		r, err := RunCluster(s, opt)
		return err == nil && len(r.Violations) > 0
	}
	shrunk, attempts := Shrink(spec, fails, cfg.ShrinkMax)
	res.Shrunk, res.ShrinkAttempts = &shrunk, attempts
}

func runDiffJob(res *SeedResult) {
	d, err := RunDifferential(Generate(res.Seed), NetOptions{})
	if err != nil {
		res.Err = err.Error()
		return
	}
	res.Rounds = d.Spec.Rounds
	res.Hash = d.InProc.Hash
	res.Violations = append(append([]invariant.Violation(nil), d.InProc.Violations...), d.Net.Violations...)
	res.Equivalent = d.Equivalent
	res.FaultRounds = d.FaultRounds
	res.InWindowDiffs = d.InWindowDiffs
	res.Divergences = d.Divergences
}

// runDESJob runs one quantum-vs-DES engine differential. Any round
// whose rendered trace differs is a divergence — the event engine has
// no fault-window allowance.
func runDESJob(res *SeedResult) {
	d, err := RunDESDifferential(Generate(res.Seed), Options{})
	if err != nil {
		res.Err = err.Error()
		return
	}
	res.Rounds = d.Spec.Rounds
	res.Hash = d.Ref.Hash
	res.Violations = append(append([]invariant.Violation(nil), d.Ref.Violations...), d.DES.Violations...)
	res.Equivalent = d.Equivalent
	res.Divergences = d.Divergences
}

func runFarmJob(res *SeedResult) {
	spec := GenerateFarm(res.Seed)
	var last *RunResult
	det := invariant.CheckDeterminism(fmt.Sprintf("farm seed %d", res.Seed), func() (string, error) {
		r, err := RunFarm(spec)
		if err != nil {
			return "", err
		}
		last = r
		return r.Text, nil
	})
	if last == nil {
		res.Err = det[0].Detail
		return
	}
	res.Rounds, res.Hash = last.Rounds, last.Hash
	res.Violations = append(last.Violations, det...)
}
