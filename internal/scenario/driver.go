package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/fvsst"
	"repro/internal/invariant"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/serve"
	"repro/internal/units"
)

// MissK is the consecutive-miss threshold at which a node is marked
// degraded, shared by the in-process mirror and the netcluster driver so
// their degrade/rejoin edges coincide.
const MissK = 2

// SabotageStepTwoInvert replaces Step 2 with a copy whose loss comparison
// is inverted — the deliberate bug the acceptance criteria plant to prove
// the checkers catch it. The production algorithm is untouched; the
// sabotage runs as a post-pass rewrite inside this package only.
const SabotageStepTwoInvert = "step2-invert"

// Options tunes a driver run.
type Options struct {
	// Sabotage optionally plants a known bug ("" or SabotageStepTwoInvert).
	Sabotage string
	// Checkers overrides the pass-level checker set (nil → the default
	// suite). Ledger checks always run.
	Checkers []invariant.Checker
	// Sink, when set, receives the run's trace events: one schedule event
	// and span tree per round plus per-node quantum power samples. The
	// soak harness attaches an obs.FlightRecorder here so a violating
	// seed ships its own post-mortem. Events never influence the
	// deterministic Text/Hash.
	Sink obs.Sink
	// Policy re-runs the scenario under perturbed scheduling knobs — the
	// counterfactual arm of `experiments policy-search`. An ε-only
	// override keeps the full checker suite; debounce or allocator knobs
	// rewrite passes post-Schedule, so (unless Checkers overrides) the
	// policy-independent reduced suite runs instead. Incompatible with
	// Sabotage.
	Policy *PolicyKnobs
	// MeasureGap solves every feasible pass exactly (internal/optimal)
	// and aggregates actual-vs-optimal loss into RunResult.Gap.
	MeasureGap bool
}

func (o Options) suite() *invariant.Suite {
	if o.Checkers == nil {
		return invariant.DefaultSuite()
	}
	return invariant.NewSuite(o.Checkers...)
}

// ServeTrace is one node's serving account at the end of a round
// (serving scenarios only): the cumulative request counters plus the
// instantaneous backlog, rendered into the canonical trace so the
// determinism check covers the serving layer byte for byte.
type ServeTrace struct {
	Node      string `json:"node"`
	Offered   uint64 `json:"offered"`
	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	Dropped   uint64 `json:"dropped"`
	Completed uint64 `json:"completed"`
	TimedOut  uint64 `json:"timed_out"`
	Backlog   int    `json:"backlog"`
}

// ProcTrace is one CPU's slice of a round trace.
type ProcTrace struct {
	Node       string  `json:"node"`
	CPU        int     `json:"cpu"`
	Idle       bool    `json:"idle"`
	DesiredMHz float64 `json:"desired_mhz"`
	ActualMHz  float64 `json:"actual_mhz"`
	VoltageV   float64 `json:"voltage_v"`
}

// RoundTrace is the canonical record of one scheduling round, identical
// in shape for the in-process mirror and the networked coordinator so
// the differential harness can compare them line by line.
type RoundTrace struct {
	Round     int          `json:"round"`
	At        float64      `json:"at"`
	Trigger   string       `json:"trigger"`
	BudgetW   float64      `json:"budget_w"`
	LiveW     float64      `json:"live_w"`
	ReservedW float64      `json:"reserved_w"`
	ChargedW  float64      `json:"charged_w"`
	Met       bool         `json:"met"`
	Degraded  []string     `json:"degraded,omitempty"`
	Procs     []ProcTrace  `json:"procs"`
	Serve     []ServeTrace `json:"serve,omitempty"`
}

// render writes the round as deterministic text lines. %v on float64
// uses Go's shortest-exact formatting, so equal traces render equal text
// and differing bits always show.
func (r RoundTrace) render(b *strings.Builder) {
	fmt.Fprintf(b, "r=%d t=%v trig=%s budget=%v live=%v reserved=%v charged=%v met=%v deg=%s\n",
		r.Round, r.At, r.Trigger, r.BudgetW, r.LiveW, r.ReservedW, r.ChargedW, r.Met,
		strings.Join(r.Degraded, ","))
	for _, p := range r.Procs {
		fmt.Fprintf(b, "  %s/cpu%d idle=%v des=%v act=%v v=%v\n",
			p.Node, p.CPU, p.Idle, p.DesiredMHz, p.ActualMHz, p.VoltageV)
	}
	for _, sv := range r.Serve {
		fmt.Fprintf(b, "  %s serve off=%d adm=%d rej=%d drop=%d done=%d to=%d bl=%d\n",
			sv.Node, sv.Offered, sv.Admitted, sv.Rejected, sv.Dropped,
			sv.Completed, sv.TimedOut, sv.Backlog)
	}
}

// RunResult is one driver run: the canonical trace, its hash, and every
// invariant violation the checkers found.
type RunResult struct {
	Rounds     int                   `json:"rounds"`
	Trace      []RoundTrace          `json:"-"`
	Text       string                `json:"-"`
	Hash       string                `json:"hash"`
	Violations []invariant.Violation `json:"violations,omitempty"`
	// MaxPassLatencyS is the slowest root pass in seconds (relay driver
	// only); excluded from Text so it never perturbs trace hashes.
	MaxPassLatencyS float64 `json:"max_pass_latency_s,omitempty"`
	// Fitness ingredients for the policy search (cluster engine only),
	// derived from values the round loop already holds, in round order,
	// so they are as deterministic as the trace itself. PredLoss sums
	// each pass's predicted performance loss at the actual assignment;
	// EnergyJ integrates the charged table power over round periods (a
	// table-energy proxy, not metered machine energy); SLOOk/SLOResolved
	// total the serving scoreboards (zero without a serving overlay).
	// None of these enter Text/Hash.
	PredLoss    float64 `json:"pred_loss,omitempty"`
	EnergyJ     float64 `json:"energy_j,omitempty"`
	SLOOk       uint64  `json:"slo_ok,omitempty"`
	SLOResolved uint64  `json:"slo_resolved,omitempty"`
	// Gap aggregates exact-comparator measurements when MeasureGap is on.
	Gap *OptGapStats `json:"gap,omitempty"`
}

func finishResult(res *RunResult, suite *invariant.Suite) {
	var b strings.Builder
	for _, r := range res.Trace {
		r.render(&b)
	}
	res.Text = b.String()
	sum := sha256.Sum256([]byte(res.Text))
	res.Hash = hex.EncodeToString(sum[:8])
	res.Violations = suite.Violations()
}

// nodeRun is one node's live state inside the in-process driver.
type nodeRun struct {
	name      string
	m         *machine.Machine
	sampler   *counters.Sampler
	missed    int
	degraded  bool
	lastFreqs []units.Frequency
	// st/feeder are set only for serving scenarios. A partitioned node's
	// machine freezes, so its streams hold matured arrivals until it
	// rejoins and the backlog lands as a burst.
	st     *serve.Station
	feeder *serve.Feeder
}

// RunCluster runs the scenario through cluster.Core in-process,
// mirroring the networked coordinator's round semantics exactly: the
// same budget trigger, the same counter windows, the same reserved
// worst-case charge for partitioned nodes, the same ledger — so its
// trace is directly comparable with RunNet's. Every pass and every
// round ledger runs under the invariant checkers.
func RunCluster(spec Spec, opt Options) (*RunResult, error) {
	return runClusterEngine(spec, opt, false)
}

// runClusterEngine is the shared round loop behind RunCluster (quantum
// reference engine) and RunClusterDES (event-skipping engine). The two
// differ only in how a live node crosses a round — see advanceNodeRound.
func runClusterEngine(spec Spec, opt Options, des bool) (*RunResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opt.Sabotage != "" && opt.Sabotage != SabotageStepTwoInvert {
		return nil, fmt.Errorf("scenario: unknown sabotage %q", opt.Sabotage)
	}
	if err := opt.Policy.validate(); err != nil {
		return nil, err
	}
	if opt.Policy != nil && opt.Sabotage != "" {
		return nil, fmt.Errorf("scenario: policy knobs and sabotage are mutually exclusive")
	}
	fcfg, err := spec.fvsstConfig()
	if err != nil {
		return nil, err
	}
	if opt.Policy != nil && opt.Policy.Epsilon > 0 {
		// The ε knob flows through the scheduler config, so Step 1 runs it
		// natively and the full checker suite stays consistent with it.
		fcfg.Epsilon = opt.Policy.Epsilon
	}
	var policy *policyState
	if opt.Policy.rewrites() {
		if policy, err = newPolicyState(*opt.Policy, fcfg); err != nil {
			return nil, err
		}
	}
	core, err := cluster.NewCore(fcfg)
	if err != nil {
		return nil, err
	}
	source, ups, err := spec.source()
	if err != nil {
		return nil, err
	}
	nodes := make([]*nodeRun, len(spec.Nodes))
	for i := range spec.Nodes {
		m, err := spec.newMachine(i)
		if err != nil {
			return nil, err
		}
		sampler, err := counters.NewSampler(m, 256)
		if err != nil {
			return nil, err
		}
		nodes[i] = &nodeRun{
			name:    fmt.Sprintf("n%d", i),
			m:       m,
			sampler: sampler,
		}
		if spec.Serving != nil {
			st, feeder, err := spec.newStation(i, m)
			if err != nil {
				return nil, err
			}
			nodes[i].st, nodes[i].feeder = st, feeder
		}
	}
	table := fcfg.Table
	core.SetPhaseTiming(opt.Sink != nil)
	period := float64(spec.SchedulePeriods) * quantum
	clock := engine.NewSimClock(period)
	budget := source.BudgetAt(0)
	suite := opt.suite()
	if policy != nil && opt.Checkers == nil {
		suite = policyCheckers()
	}
	res := &RunResult{Rounds: spec.Rounds}
	if opt.MeasureGap {
		res.Gap = &OptGapStats{}
	}

	for round := 0; round < spec.Rounds; round++ {
		now := clock.Now()
		var passStart time.Time
		if opt.Sink != nil {
			passStart = time.Now()
		}
		trigger := "timer"
		if want := source.BudgetAt(now); want != budget {
			budget = want
			trigger = "budget-change"
		}

		// Phase 1: poll. Partitioned nodes freeze (their machine does not
		// advance), exactly as a failed counter RPC leaves the remote
		// machine untouched.
		live := make([]bool, len(nodes))
		var inputs []cluster.ProcInput
		nodeInputs := make([][]int, len(nodes))
		var reserved units.Power
		for i, n := range nodes {
			if spec.partitioned(i, round) {
				n.missed++
				if n.missed >= MissK {
					n.degraded = true
				}
				reserved += worstCharge(n, table)
				continue
			}
			live[i] = true
			if err := advanceNodeRound(n, spec.SchedulePeriods, des); err != nil {
				return nil, err
			}
			for cpu := 0; cpu < n.m.NumCPUs(); cpu++ {
				// Round-trip the delta through the wire report so both
				// drivers feed the predictor byte-identical observations.
				rep := reportFor(n.sampler.WindowAggregate(cpu, spec.SchedulePeriods), n.m.IsIdle(cpu))
				in := cluster.ProcInput{
					Proc: cluster.ProcRef{Node: i, CPU: cpu},
					Node: n.name,
					Idle: rep.idle,
				}
				delta := rep.delta
				if fHz := delta.ObservedFrequencyHz(); delta.Instructions > 0 && delta.Cycles > 0 && fHz > 0 {
					in.Obs = &perfmodel.Observation{Delta: delta, Freq: units.Frequency(fHz)}
				}
				nodeInputs[i] = append(nodeInputs[i], len(inputs))
				inputs = append(inputs, in)
			}
		}

		// Phase 2: the shared global pass under the live budget.
		liveBudget := budget - reserved
		pass, err := core.Schedule(inputs, liveBudget)
		if err != nil {
			return nil, err
		}
		if opt.Sabotage == SabotageStepTwoInvert {
			if err := sabotageStepTwoInvert(fcfg, inputs, &pass, liveBudget); err != nil {
				return nil, err
			}
		}
		if policy != nil {
			if err := policy.rewrite(inputs, &pass, liveBudget); err != nil {
				return nil, err
			}
		}

		// Phase 3: actuate the live nodes.
		for i, n := range nodes {
			if !live[i] {
				continue
			}
			freqs := make([]units.Frequency, len(nodeInputs[i]))
			for cpu, idx := range nodeInputs[i] {
				freqs[cpu] = pass.Assignments[idx].Actual
				if err := n.m.SetFrequency(cpu, freqs[cpu]); err != nil {
					return nil, err
				}
			}
			n.lastFreqs = freqs
			n.missed = 0
			n.degraded = false
		}

		// Phase 4: the ledger, charged exactly as the coordinator does.
		var charged, liveCharged units.Power
		reserved = 0
		var degraded []string
		allLiveFloor := true
		for i, n := range nodes {
			if live[i] {
				var sum units.Power
				for _, idx := range nodeInputs[i] {
					p, err := table.PowerAt(pass.Assignments[idx].Actual)
					if err != nil {
						return nil, err
					}
					sum += p
					if table.IndexOf(pass.Assignments[idx].Actual) != 0 {
						allLiveFloor = false
					}
				}
				charged += sum
				liveCharged += sum
				continue
			}
			w := worstCharge(n, table)
			charged += w
			reserved += w
			if n.degraded {
				degraded = append(degraded, n.name)
			}
		}

		// Invariants: the pass itself, then the round ledger. The snapshot
		// also feeds the fitness sums and the exact-gap measurement.
		p, err := passSnapshot(fcfg, now, liveBudget, inputs, pass)
		if err != nil {
			return nil, err
		}
		suite.Check(p)
		g := p.Grid()
		for k := range p.Procs {
			if g.Valid(k) {
				res.PredLoss += g.Loss(k, p.Procs[k].ActualIdx)
			}
		}
		if res.Gap != nil {
			res.Gap.measure(p)
		}
		suite.Report(invariant.CheckLedger(invariant.Ledger{
			At:             now,
			Budget:         budget,
			Live:           liveCharged,
			Reserved:       reserved,
			Charged:        charged,
			Met:            charged <= budget,
			AllLiveAtFloor: allLiveFloor,
		})...)

		// Serving scenarios: the queue-conservation law per node per round,
		// plus a serve line in the canonical trace.
		var serves []ServeTrace
		if spec.Serving != nil {
			for _, n := range nodes {
				a := n.st.Account()
				suite.Report(invariant.CheckQueueConservation(invariant.QueueLedger{
					Node: n.name, At: now,
					Offered: a.Offered, Admitted: a.Admitted,
					Rejected: a.Rejected, Dropped: a.Dropped,
					Completed: a.Completed, TimedOut: a.TimedOut,
					Queued: a.Queued, InService: a.InService,
				})...)
				serves = append(serves, ServeTrace{
					Node: n.name, Offered: a.Offered, Admitted: a.Admitted,
					Rejected: a.Rejected, Dropped: a.Dropped,
					Completed: a.Completed, TimedOut: a.TimedOut,
					Backlog: a.Queued + a.InService,
				})
			}
		}

		// LiveW renders pass.TablePower (not the per-node regrouped sum):
		// both drivers compute it through the same flat accumulation in
		// core.Schedule, so the traces stay bit-comparable.
		rt := roundTrace(round, now, trigger, budget, pass.TablePower, reserved, charged, degraded, inputs, pass)
		rt.Serve = serves
		res.Trace = append(res.Trace, rt)

		if opt.Sink != nil {
			passID := uint64(round + 1)
			ev := cluster.PassEvent(now, trigger, budget, inputs, pass)
			ev.PassID = passID
			ev.ChargedW = charged.W()
			ev.ReservedW = reserved.W()
			ev.HeadroomW = (budget - charged).W()
			ev.BudgetMissed = charged > budget
			opt.Sink.Emit(ev)
			var totalPower float64
			for i, n := range nodes {
				if !live[i] {
					continue
				}
				p := n.m.TotalCPUPower().W()
				totalPower += p
				opt.Sink.Emit(obs.Event{
					Type: obs.EventQuantum, At: now, PassID: passID,
					Node: n.name, CPUPowerW: p,
				})
			}
			opt.Sink.Emit(obs.Event{
				Type: obs.EventQuantum, At: now, PassID: passID,
				BudgetW: budget.W(), CPUPowerW: totalPower,
			})
			cluster.EmitStepSpans(opt.Sink, now, passID, pass.Timings)
			opt.Sink.Emit(obs.SpanEvent(now, passID, "", obs.SpanPass, "", time.Since(passStart).Seconds()))
		}

		res.EnergyJ += charged.W() * period

		if ups != nil {
			if err := ups.Drain(charged, period); err != nil {
				return nil, err
			}
		}
		clock.Tick()
	}
	if spec.Serving != nil {
		for _, n := range nodes {
			sum := n.st.Scoreboard().Summarize(0)
			for _, cs := range sum.Classes {
				res.SLOOk += cs.SLOOk
				res.SLOResolved += cs.Completed + cs.TimedOut
			}
		}
	}
	finishResult(res, suite)
	return res, nil
}

// roundTrace renders the canonical per-round record from pass outputs.
func roundTrace(round int, at float64, trigger string, budget, live, reserved, charged units.Power, degraded []string, inputs []cluster.ProcInput, pass cluster.PassResult) RoundTrace {
	rt := RoundTrace{
		Round:     round,
		At:        at,
		Trigger:   trigger,
		BudgetW:   budget.W(),
		LiveW:     live.W(),
		ReservedW: reserved.W(),
		ChargedW:  charged.W(),
		Met:       charged <= budget,
		Degraded:  degraded,
	}
	for k, a := range pass.Assignments {
		rt.Procs = append(rt.Procs, ProcTrace{
			Node:       inputs[k].Node,
			CPU:        a.Proc.CPU,
			Idle:       a.Idle,
			DesiredMHz: a.Desired.MHz(),
			ActualMHz:  a.Actual.MHz(),
			VoltageV:   a.Voltage.V(),
		})
	}
	return rt
}

// passSnapshot converts a pass into the invariant checkers' shape.
func passSnapshot(cfg fvsst.Config, at float64, budget units.Power, inputs []cluster.ProcInput, pass cluster.PassResult) (*invariant.Pass, error) {
	procs := make([]invariant.Proc, len(inputs))
	for k, in := range inputs {
		a := pass.Assignments[k]
		procs[k] = invariant.Proc{
			Node:       in.Node,
			CPU:        in.Proc.CPU,
			Idle:       in.Idle,
			Obs:        in.Obs,
			DesiredIdx: cfg.Table.IndexOf(a.Desired),
			ActualIdx:  cfg.Table.IndexOf(a.Actual),
			Voltage:    a.Voltage,
		}
	}
	return invariant.NewPass(cfg, at, budget, procs, pass.Demotions, pass.TablePower, pass.BudgetMet)
}

// worstCharge mirrors the coordinator's silence charge: the table power
// of the node's last acknowledged actuation, else every CPU at the table
// maximum.
func worstCharge(n *nodeRun, table *power.Table) units.Power {
	if n.lastFreqs != nil {
		if p, err := fvsst.TotalTablePower(n.lastFreqs, table); err == nil {
			return p
		}
	}
	return units.Power(float64(n.m.NumCPUs())) * table.PowerAtIndex(table.Len()-1)
}

// report is the in-process stand-in for a wire counter report.
type report struct {
	delta counters.Delta
	idle  bool
}

// reportFor mirrors proto.ReportFor∘Delta: the wire report carries the
// delta fields losslessly (uint64 and float64 survive JSON round-trips
// bit-exactly in Go), so the identity conversion is faithful.
func reportFor(d counters.Delta, idle bool) report {
	return report{delta: d, idle: idle}
}

// sabotageStepTwoInvert re-runs Step 2 with the loss comparison
// inverted — a copy of fvsst.FitToBudgetGrid's loop with `<` flipped to
// `>` against a +Inf sentinel, the classic polarity bug. The rewrite
// leaves desired frequencies in place (the broken loop never finds a
// victim), recomputes the assignment fields, and drops the demotion log,
// exactly as the production path would present such a bug.
func sabotageStepTwoInvert(cfg fvsst.Config, inputs []cluster.ProcInput, pass *cluster.PassResult, budget units.Power) error {
	pred, err := perfmodel.New(cfg.Hier)
	if err != nil {
		return err
	}
	var grid perfmodel.PredGrid
	grid.Reset(len(inputs), cfg.Table.Frequencies())
	for i, in := range inputs {
		if (cfg.UseIdleSignal && in.Idle) || in.Obs == nil {
			continue
		}
		d, err := pred.Decompose(*in.Obs)
		if err != nil {
			return err
		}
		grid.Fill(i, d)
	}
	idx := make([]int, len(inputs))
	for i, a := range pass.Assignments {
		idx[i] = cfg.Table.IndexOf(a.Desired)
	}
	met := false
	for {
		var sum units.Power
		for i := range idx {
			sum += cfg.Table.PowerAtIndex(idx[i])
		}
		if sum <= budget {
			met = true
			break
		}
		best, bestLoss := -1, math.Inf(1)
		for i := range idx {
			if idx[i] == 0 {
				continue
			}
			loss := 0.0
			if grid.Valid(i) {
				loss = grid.Loss(i, idx[i]-1)
			}
			// The planted bug: inverted comparison never beats +Inf, so no
			// CPU is ever demoted.
			if loss > bestLoss || (loss == bestLoss && best >= 0 && idx[i] > idx[best]) {
				best, bestLoss = i, loss
			}
		}
		if best < 0 {
			break
		}
		idx[best]--
	}
	pass.Demotions = nil
	pass.BudgetMet = met
	var total units.Power
	for i := range pass.Assignments {
		pass.Assignments[i].Actual = cfg.Table.FrequencyAtIndex(idx[i])
		pass.Assignments[i].Voltage = cfg.Table.VoltageAtIndex(idx[i])
		total += cfg.Table.PowerAtIndex(idx[i])
	}
	pass.TablePower = total
	return nil
}
