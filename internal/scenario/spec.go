// Package scenario generates seeded random end-to-end scenarios for the
// scheduler stack and runs them through three drivers under the
// internal/invariant checkers: an in-process driver over cluster.Core
// that mirrors the networked coordinator's round semantics, a loopback
// netcluster driver over faultnet, and a farm allocator driver. A
// differential harness runs the same scenario through the first two and
// demands equivalent decision traces outside declared fault windows;
// Shrink reduces a failing spec to a minimal reproducer. Soak orchestrates
// N seeds of all of it under a wall-clock budget into a JSON report.
//
// Everything is deterministic from Spec.Seed alone, per the engine
// seeding convention: one scenario seed, fixed offsets per derived stream
// (machine i simulates with Seed+101+i, the coordinator's backoff jitter
// with Seed+i, faultnet with Seed; serving scenarios add the station on
// node i at machine seed + 17 and the arrival stream for class c, client
// k on node i at Seed+701+1000·i+37·c+k).
package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/farm"
	"repro/internal/fvsst"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/power"
	"repro/internal/serve"
	"repro/internal/units"
	"repro/internal/workload"
)

// CPUKind names a CPU's workload shape.
type CPUKind string

const (
	// CPUBound runs an α-limited endless phase with no memory traffic —
	// Step 1 should pin it near f_max.
	CPUBound CPUKind = "cpu"
	// MemBound stalls on the memory hierarchy — Step 1 should find a low
	// ε-saturation frequency.
	MemBound CPUKind = "mem"
	// Phased alternates a cpu-bound and a mem-bound phase, exercising
	// re-decision across phase boundaries.
	Phased CPUKind = "phased"
	// IdleCPU runs nothing; with UseIdleSignal the scheduler floors it.
	IdleCPU CPUKind = "idle"
)

// CPUSpec shapes one CPU's workload.
type CPUSpec struct {
	Kind  CPUKind `json:"kind"`
	Alpha float64 `json:"alpha,omitempty"`
	// L2, L3, Mem are per-instruction reference rates for the memory-bound
	// phases.
	L2  float64 `json:"l2,omitempty"`
	L3  float64 `json:"l3,omitempty"`
	Mem float64 `json:"mem,omitempty"`
}

// NodeSpec is one machine.
type NodeSpec struct {
	CPUs []CPUSpec `json:"cpus"`
}

// BudgetEvent rewrites the global budget at the start of a round.
type BudgetEvent struct {
	Round int     `json:"round"`
	Watts float64 `json:"watts"`
}

// Window partitions one node off the network for rounds [From, To).
type Window struct {
	Node int `json:"node"`
	From int `json:"from"`
	To   int `json:"to"`
}

// PolicyWindow applies a faultnet message-fault policy (drop/dup/delay)
// to one node for rounds [From, To). Unlike partitions these are not
// modelled by the in-process mirror: a dropped counter response still
// advanced the remote machine, so traces may diverge from From onward.
type PolicyWindow struct {
	Node    int     `json:"node"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	Drop    float64 `json:"drop,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	DelayUS int     `json:"delay_us,omitempty"`
}

// ServingClassSpec is one request class in a serving scenario, the JSON
// shape of a serve.Class plus its per-client arrival process. Every node
// runs the same class set; the arrival spec applies per client.
type ServingClassSpec struct {
	Name string `json:"name"`
	// Arrival is a serve.ParseArrivalSpec string, e.g. "gamma:3,cv=1.5".
	Arrival string `json:"arrival"`
	Clients int    `json:"clients"`
	// MeanMInstr is the mean request size in millions of instructions.
	MeanMInstr float64 `json:"mean_minstr"`
	SizeCV     float64 `json:"size_cv,omitempty"`
	// MemPerInstr shapes the request execution profile's memory intensity
	// (serve.PhaseProfile).
	MemPerInstr float64 `json:"mem_per_instr,omitempty"`
	SLOMs       float64 `json:"slo_ms"`
	TimeoutMs   float64 `json:"timeout_ms,omitempty"`
	QueueCap    int     `json:"queue_cap"`
	AdmitRate   float64 `json:"admit_rate,omitempty"`
	AdmitBurst  int     `json:"admit_burst,omitempty"`
	Priority    int     `json:"priority,omitempty"`
}

// class renders the spec as a serve.Class.
func (c ServingClassSpec) class() serve.Class {
	return serve.Class{
		Name:       c.Name,
		Phase:      serve.PhaseProfile(1.3, c.MemPerInstr),
		MeanInstr:  c.MeanMInstr * 1e6,
		SizeCV:     c.SizeCV,
		SLO:        c.SLOMs / 1000,
		Timeout:    c.TimeoutMs / 1000,
		Priority:   c.Priority,
		QueueCap:   c.QueueCap,
		AdmitRate:  c.AdmitRate,
		AdmitBurst: c.AdmitBurst,
	}
}

// ServingSpec overlays open-loop request serving on the scenario: every
// node gets a serve.Station over the shared class set, fed by per-client
// renewal arrival streams, and the queue-conservation invariant is
// checked every round. CPU workload kinds are ignored in serving
// scenarios — the stations own the CPUs.
type ServingSpec struct {
	Classes []ServingClassSpec `json:"classes"`
}

func (sv *ServingSpec) validate() error {
	if len(sv.Classes) == 0 {
		return fmt.Errorf("scenario: serving spec has no classes")
	}
	for i, c := range sv.Classes {
		if c.Clients < 1 {
			return fmt.Errorf("scenario: serving class %d needs at least one client", i)
		}
		if _, err := serve.ParseArrivalSpec(c.Arrival); err != nil {
			return fmt.Errorf("scenario: serving class %d: %w", i, err)
		}
		probe := c.class()
		probe.Phase.Instructions = 1 // template length is per-request
		if err := probe.Validate(); err != nil {
			return fmt.Errorf("scenario: serving class %d: %w", i, err)
		}
	}
	return nil
}

// UPSSpec fails the supply onto a battery at the start of FailRound.
type UPSSpec struct {
	FailRound int     `json:"fail_round"`
	CapacityJ float64 `json:"capacity_j"`
	RunwaySec float64 `json:"runway_sec"`
}

// Spec is one complete scenario. The zero value is invalid; use Generate
// or fill every required field.
type Spec struct {
	Seed int64 `json:"seed"`
	// Table selects the operating-point table: "paper" (Table 1, 16
	// points) or "s5" (the §5 5-point table, small enough for exhaustive
	// Step-2 checking).
	Table           string         `json:"table"`
	Nodes           []NodeSpec     `json:"nodes"`
	Rounds          int            `json:"rounds"`
	SchedulePeriods int            `json:"schedule_periods"`
	Epsilon         float64        `json:"epsilon"`
	BudgetW         float64        `json:"budget_w"`
	Events          []BudgetEvent  `json:"events,omitempty"`
	Partitions      []Window       `json:"partitions,omitempty"`
	Policies        []PolicyWindow `json:"policies,omitempty"`
	UPS             *UPSSpec       `json:"ups,omitempty"`
	Serving         *ServingSpec   `json:"serving,omitempty"`
}

// quantum is the shared dispatch quantum for scenario machines.
const quantum = 0.010

// Generate draws a random scenario from the seed. Fault windows start at
// round 1 or later (round 0 establishes every node's first actuation) and
// heal with at least one clean round left, so rejoin paths run too.
func Generate(seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	s := Spec{
		Seed:            seed,
		Rounds:          8 + rng.Intn(17),
		SchedulePeriods: 2 + rng.Intn(3),
		Epsilon:         0.03 + 0.17*rng.Float64(),
	}
	if rng.Intn(2) == 0 {
		s.Table = "s5"
	} else {
		s.Table = "paper"
	}
	nNodes := 1 + rng.Intn(3)
	totalCPUs := 0
	for n := 0; n < nNodes; n++ {
		node := NodeSpec{}
		nCPU := 1 + rng.Intn(3)
		totalCPUs += nCPU
		for c := 0; c < nCPU; c++ {
			node.CPUs = append(node.CPUs, genCPU(rng))
		}
		s.Nodes = append(s.Nodes, node)
	}
	table, err := s.table()
	if err != nil {
		panic(err) // unreachable: generator only emits known table names
	}
	maxW := float64(table.PowerAtIndex(table.Len()-1)) * float64(totalCPUs)
	s.BudgetW = round1(maxW * (0.35 + 0.70*rng.Float64()))
	for i := rng.Intn(4); i > 0; i-- {
		s.Events = append(s.Events, BudgetEvent{
			Round: 1 + rng.Intn(s.Rounds-1),
			Watts: round1(maxW * (0.25 + 0.85*rng.Float64())),
		})
	}
	if rng.Intn(2) == 0 {
		for i := 1 + rng.Intn(2); i > 0; i-- {
			if w, ok := genWindow(rng, nNodes, s.Rounds); ok {
				s.Partitions = append(s.Partitions, w)
			}
		}
	}
	if rng.Intn(10) < 3 {
		if w, ok := genWindow(rng, nNodes, s.Rounds); ok {
			p := PolicyWindow{Node: w.Node, From: w.From, To: w.To}
			switch rng.Intn(3) {
			case 0:
				p.Drop = 0.05 + 0.25*rng.Float64()
			case 1:
				p.Dup = 0.10 + 0.40*rng.Float64()
			default:
				p.DelayUS = 200 + rng.Intn(2000)
			}
			s.Policies = append(s.Policies, p)
		}
	}
	if rng.Intn(10) < 3 {
		runway := 2 + 8*rng.Float64()
		s.UPS = &UPSSpec{
			FailRound: 1 + rng.Intn(maxInt(1, s.Rounds/2)),
			RunwaySec: runway,
			CapacityJ: round1(s.BudgetW * runway * (0.5 + 0.5*rng.Float64())),
		}
	}
	// ~30% of seeds are serving scenarios: the stations own the CPUs (the
	// generated workload kinds are rewritten to idle so the spec reads the
	// way it runs) and the queue-conservation checker runs every round.
	if rng.Intn(10) < 3 {
		s.Serving = genServing(rng)
		for n := range s.Nodes {
			for c := range s.Nodes[n].CPUs {
				s.Nodes[n].CPUs[c] = CPUSpec{Kind: IdleCPU}
			}
		}
	}
	return s
}

// genServing draws a serving overlay: a latency-sensitive web class with
// a randomized renewal arrival process, sometimes joined by a
// lower-priority batch class. Rates are modest — a scenario lasts well
// under a second of simulated time, so the classes exercise admission,
// queueing and timeouts without unbounded backlog.
func genServing(rng *rand.Rand) *ServingSpec {
	web := ServingClassSpec{
		Name:        "web",
		Clients:     1 + rng.Intn(3),
		MeanMInstr:  round1(5 + 30*rng.Float64()),
		SizeCV:      round3(0.5 * rng.Float64()),
		MemPerInstr: round3(0.01 * rng.Float64()),
		SLOMs:       round1(50 + 250*rng.Float64()),
		QueueCap:    64,
		Priority:    1,
	}
	rate := round3(1 + 4*rng.Float64())
	switch rng.Intn(3) {
	case 0:
		web.Arrival = fmt.Sprintf("poisson:%v", rate)
	case 1:
		web.Arrival = fmt.Sprintf("gamma:%v,cv=%v", rate, round3(1+rng.Float64()))
	default:
		web.Arrival = fmt.Sprintf("weibull:%v,cv=%v", rate, round3(1+0.8*rng.Float64()))
	}
	if rng.Intn(2) == 0 {
		web.TimeoutMs = round1(300 + 700*rng.Float64())
	}
	if rng.Intn(4) == 0 {
		web.AdmitRate = round3(rate * float64(web.Clients) * (0.5 + 0.5*rng.Float64()))
		web.AdmitBurst = 1 + rng.Intn(8)
	}
	sv := &ServingSpec{Classes: []ServingClassSpec{web}}
	if rng.Intn(2) == 0 {
		sv.Classes = append(sv.Classes, ServingClassSpec{
			Name:       "batch",
			Arrival:    fmt.Sprintf("poisson:%v", round3(0.5+rng.Float64())),
			Clients:    1,
			MeanMInstr: round1(20 + 60*rng.Float64()),
			SizeCV:     round3(0.8 * rng.Float64()),
			SLOMs:      round1(1000 + 2000*rng.Float64()),
			QueueCap:   128,
		})
	}
	return sv
}

func genCPU(rng *rand.Rand) CPUSpec {
	switch r := rng.Intn(20); {
	case r < 5:
		return CPUSpec{Kind: IdleCPU}
	case r < 11:
		return CPUSpec{Kind: CPUBound, Alpha: round3(0.9 + 1.3*rng.Float64())}
	case r < 17:
		return CPUSpec{
			Kind:  MemBound,
			Alpha: round3(1.0 + 0.4*rng.Float64()),
			L2:    round3(0.015 + 0.030*rng.Float64()),
			L3:    round3(0.003 + 0.006*rng.Float64()),
			Mem:   round3(0.008 + 0.020*rng.Float64()),
		}
	default:
		return CPUSpec{
			Kind:  Phased,
			Alpha: round3(1.0 + 0.8*rng.Float64()),
			L2:    round3(0.020 + 0.020*rng.Float64()),
			L3:    round3(0.004 + 0.004*rng.Float64()),
			Mem:   round3(0.010 + 0.012*rng.Float64()),
		}
	}
}

func genWindow(rng *rand.Rand, nNodes, rounds int) (Window, bool) {
	// Need at least round 0 clean before and one clean round after.
	if rounds < 3 {
		return Window{}, false
	}
	from := 1 + rng.Intn(rounds-2)
	maxLen := rounds - 1 - from
	if maxLen < 1 {
		return Window{}, false
	}
	return Window{
		Node: rng.Intn(nNodes),
		From: from,
		To:   from + 1 + rng.Intn(minInt(5, maxLen)),
	}, true
}

// FaultFree strips partitions, message faults and the UPS failover —
// the variant the differential harness uses for strict trace equality.
func (s Spec) FaultFree() Spec {
	s.Partitions = nil
	s.Policies = nil
	s.UPS = nil
	return s
}

// WithoutUPS strips only the UPS failover (the networked driver models
// grid budgets, not battery drain).
func (s Spec) WithoutUPS() Spec {
	s.UPS = nil
	return s
}

// WithoutServing strips the serving overlay (the networked driver has no
// stations; the differential compares closed-workload traces only).
func (s Spec) WithoutServing() Spec {
	s.Serving = nil
	return s
}

// Validate checks the spec is runnable.
func (s Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("scenario: no nodes")
	}
	for i, n := range s.Nodes {
		if len(n.CPUs) == 0 {
			return fmt.Errorf("scenario: node %d has no CPUs", i)
		}
	}
	if s.Rounds <= 0 {
		return fmt.Errorf("scenario: rounds %d must be positive", s.Rounds)
	}
	if s.SchedulePeriods <= 0 {
		return fmt.Errorf("scenario: schedule periods %d must be positive", s.SchedulePeriods)
	}
	if s.Epsilon <= 0 || s.Epsilon >= 1 {
		return fmt.Errorf("scenario: epsilon %v outside (0,1)", s.Epsilon)
	}
	if s.BudgetW <= 0 {
		return fmt.Errorf("scenario: budget %vW must be positive", s.BudgetW)
	}
	if _, err := s.table(); err != nil {
		return err
	}
	for _, e := range s.Events {
		if e.Round < 0 || e.Watts <= 0 {
			return fmt.Errorf("scenario: bad budget event %+v", e)
		}
	}
	for _, w := range append(append([]Window(nil), s.Partitions...), policyWindows(s.Policies)...) {
		if w.Node < 0 || w.Node >= len(s.Nodes) || w.From < 0 || w.To <= w.From {
			return fmt.Errorf("scenario: bad fault window %+v", w)
		}
	}
	if s.UPS != nil && (s.UPS.FailRound < 0 || s.UPS.CapacityJ <= 0 || s.UPS.RunwaySec <= 0) {
		return fmt.Errorf("scenario: bad UPS spec %+v", *s.UPS)
	}
	if s.Serving != nil {
		if err := s.Serving.validate(); err != nil {
			return err
		}
	}
	return nil
}

func policyWindows(ps []PolicyWindow) []Window {
	out := make([]Window, len(ps))
	for i, p := range ps {
		out[i] = Window{Node: p.Node, From: p.From, To: p.To}
	}
	return out
}

func (s Spec) table() (*power.Table, error) {
	switch s.Table {
	case "paper", "":
		return power.PaperTable1(), nil
	case "s5":
		return power.Section5Table(), nil
	default:
		return nil, fmt.Errorf("scenario: unknown table %q", s.Table)
	}
}

// SchedulerConfig exposes the scheduling configuration a spec resolves
// to. Replay harnesses need it to re-decide recorded passes with the
// same table, ε and period the original run used.
func (s Spec) SchedulerConfig() (fvsst.Config, error) {
	return s.fvsstConfig()
}

// fvsstConfig is the shared scheduling configuration both drivers use.
func (s Spec) fvsstConfig() (fvsst.Config, error) {
	table, err := s.table()
	if err != nil {
		return fvsst.Config{}, err
	}
	cfg := fvsst.DefaultConfig()
	cfg.Table = table
	cfg.Epsilon = s.Epsilon
	cfg.SamplePeriod = quantum
	cfg.SchedulePeriods = s.SchedulePeriods
	cfg.UseIdleSignal = true
	cfg.Overhead = fvsst.Overhead{}
	return cfg, cfg.Validate()
}

// machineConfig is node i's quiet (noise-free) machine: determinism and
// trace equality need bit-identical simulation on both sides of the
// differential, so jitter, meter noise and throttle settle are off.
func (s Spec) machineConfig(i int) (machine.Config, error) {
	table, err := s.table()
	if err != nil {
		return machine.Config{}, err
	}
	cfg := machine.P630Config()
	cfg.Name = fmt.Sprintf("n%d", i)
	cfg.NumCPUs = len(s.Nodes[i].CPUs)
	cfg.Table = table
	cfg.Quantum = quantum
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	cfg.Seed = s.Seed + 101 + int64(i)
	return cfg, nil
}

// newMachine builds node i's machine with its CPUs' workloads installed.
func (s Spec) newMachine(i int) (*machine.Machine, error) {
	cfg, err := s.machineConfig(i)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if s.Serving != nil {
		// Serving scenarios: the station installs its own per-CPU serving
		// cursors, so CPU workload kinds are ignored.
		return m, nil
	}
	for cpu, cs := range s.Nodes[i].CPUs {
		prog, ok := cs.program()
		if !ok {
			continue // idle CPU: no mix
		}
		mix, err := workload.NewMix(prog)
		if err != nil {
			return nil, err
		}
		if err := m.SetMix(cpu, mix); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// servingSeedBase offsets the serving arrival-stream seeds away from the
// machine (Seed+101+i) and jitter (Seed+i) ranges.
const servingSeedBase = 701

// newStation builds node i's serving station and arrival feeder over m.
// Client identities are numbered across classes in class order. Seeding
// follows the package convention: the station draws request sizes from
// machine seed + 17, and the stream for class c, client k draws from
// Seed + 701 + 1000·i + 37·c + k.
func (s Spec) newStation(i int, m *machine.Machine) (*serve.Station, *serve.Feeder, error) {
	classes := make([]serve.Class, len(s.Serving.Classes))
	clients := 0
	for ci, c := range s.Serving.Classes {
		classes[ci] = c.class()
		clients += c.Clients
	}
	st, err := serve.NewStation(m, serve.Config{
		Classes: classes,
		Clients: clients,
		Seed:    s.Seed + 101 + int64(i) + 17,
		Node:    fmt.Sprintf("n%d", i),
	})
	if err != nil {
		return nil, nil, err
	}
	feeder := &serve.Feeder{}
	client := 0
	for ci, c := range s.Serving.Classes {
		aspec, err := serve.ParseArrivalSpec(c.Arrival)
		if err != nil {
			return nil, nil, err
		}
		for k := 0; k < c.Clients; k++ {
			stm, err := aspec.NewStream(s.Seed + servingSeedBase + 1000*int64(i) + 37*int64(ci) + int64(k))
			if err != nil {
				return nil, nil, err
			}
			feeder.Add(ci, client, stm)
			client++
		}
	}
	return st, feeder, nil
}

// program renders the CPU spec as an endless workload program.
func (c CPUSpec) program() (workload.Program, bool) {
	const endless = uint64(1e14)
	switch c.Kind {
	case IdleCPU:
		return workload.Program{}, false
	case CPUBound:
		return workload.Program{Name: "cpu", Phases: []workload.Phase{{
			Name: "c", Alpha: c.Alpha, Instructions: endless,
		}}}, true
	case MemBound:
		return workload.Program{Name: "mem", Phases: []workload.Phase{{
			Name: "m", Alpha: c.Alpha,
			Rates:        memhier.AccessRates{L2PerInstr: c.L2, L3PerInstr: c.L3, MemPerInstr: c.Mem},
			Instructions: endless,
		}}}, true
	case Phased:
		// Alternate once between a compute and a memory phase, each a few
		// hundred scheduler windows long, then run the memory phase out.
		return workload.Program{Name: "phased", Phases: []workload.Phase{
			{Name: "c", Alpha: c.Alpha, Instructions: 4e9},
			{Name: "m", Alpha: c.Alpha,
				Rates:        memhier.AccessRates{L2PerInstr: c.L2, L3PerInstr: c.L3, MemPerInstr: c.Mem},
				Instructions: endless},
		}}, true
	default:
		return workload.Program{}, false
	}
}

// source builds the budget source shared by both drivers: the event
// schedule, failed over onto the UPS when the spec has one. The returned
// UPS (nil without one) is the live battery the in-process driver drains.
func (s Spec) source() (farm.BudgetSource, *farm.UPS, error) {
	period := float64(s.SchedulePeriods) * quantum
	var events []power.BudgetEvent
	for _, e := range s.Events {
		events = append(events, power.BudgetEvent{
			At:     float64(e.Round) * period,
			Budget: units.Watts(e.Watts),
			Label:  fmt.Sprintf("r%d", e.Round),
		})
	}
	sched, err := power.NewBudgetSchedule(units.Watts(s.BudgetW), events...)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: budget schedule: %w", err)
	}
	src, err := farm.FromSchedule(sched)
	if err != nil {
		return nil, nil, err
	}
	if s.UPS == nil {
		return src, nil, nil
	}
	ups, err := farm.NewUPS(units.Joules(s.UPS.CapacityJ), s.UPS.RunwaySec)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: UPS: %w", err)
	}
	return farm.Failover{
		At:     float64(s.UPS.FailRound) * period,
		Before: src,
		After:  ups,
	}, ups, nil
}

// partitioned reports whether node i is inside a partition window at
// round r.
func (s Spec) partitioned(node, round int) bool {
	for _, w := range s.Partitions {
		if w.Node == node && round >= w.From && round < w.To {
			return true
		}
	}
	return false
}

// faultAffected reports whether round r may legally diverge between the
// in-process and networked runs: any partition window covering it, or any
// message-fault policy that has started (message faults can skew a remote
// machine's simulated time permanently, so their effect extends past the
// window).
func (s Spec) faultAffected(round int) bool {
	for _, w := range s.Partitions {
		if round >= w.From && round < w.To {
			return true
		}
	}
	for _, p := range s.Policies {
		if round >= p.From {
			return true
		}
	}
	return false
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }
func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
