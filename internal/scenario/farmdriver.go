package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/farm"
	"repro/internal/invariant"
	"repro/internal/power"
	"repro/internal/units"
)

// FarmMember is one cluster in a farm scenario.
type FarmMember struct {
	Name   string  `json:"name"`
	FloorW float64 `json:"floor_w"`
}

// FarmEvent rewrites the grid budget at a time (grid mode only).
type FarmEvent struct {
	AtSec float64 `json:"at_sec"`
	Watts float64 `json:"watts"`
}

// FarmSpec is one farm-layer scenario: members, a partition window, and
// a budget trajectory that respects the allocator's documented contract
// (discrete drops only while every member is reachable; a continuously
// shrinking source only through the UPS runway governor with
// Safety ≥ TTL/runway). Violating those preconditions makes conservation
// physically unsatisfiable, so the generator never does — the checkers
// verify the allocator holds the contract it promises, not one it
// doesn't.
type FarmSpec struct {
	Seed        int64        `json:"seed"`
	Members     []FarmMember `json:"members"`
	Partitioned []bool       `json:"partitioned,omitempty"`
	PStartSec   float64      `json:"p_start_sec"`
	PEndSec     float64      `json:"p_end_sec"`
	UseUPS      bool         `json:"use_ups"`
	GridW       float64      `json:"grid_w"`
	Events      []FarmEvent  `json:"events,omitempty"`
	CapacityJ   float64      `json:"capacity_j,omitempty"`
	RunwaySec   float64      `json:"runway_sec,omitempty"`
	FailAtSec   float64      `json:"fail_at_sec,omitempty"`
	Steps       int          `json:"steps"`
}

// Farm scenario cadence, matching the farm package's own property tests.
const (
	farmDT      = 0.05
	farmTTL     = 0.3
	farmSafety  = 0.15
	farmPeriods = 2
	farmRunway  = 3.0
)

// GenerateFarm draws a random farm scenario from the seed.
func GenerateFarm(seed int64) FarmSpec {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(4)
	s := FarmSpec{
		Seed:        seed,
		Partitioned: make([]bool, n),
		PStartSec:   1.2,
		PEndSec:     2.0,
		UseUPS:      rng.Intn(2) == 1,
		FailAtSec:   0.4,
		RunwaySec:   farmRunway,
		Steps:       60 + rng.Intn(41),
	}
	var floors float64
	for i := 0; i < n; i++ {
		f := round1(5 + rng.Float64()*10)
		s.Members = append(s.Members, FarmMember{Name: fmt.Sprintf("c%d", i), FloorW: f})
		floors += f
	}
	for i := range s.Partitioned {
		s.Partitioned[i] = rng.Float64() < 0.4
	}
	s.Partitioned[rng.Intn(n)] = false // keep one member reachable

	// Budgets stay above Σfloors/(1−Safety): below that the floors
	// themselves overrun and Met=false is the (legal) report.
	minBudget := floors / (1 - farmSafety) * 1.05
	horizon := float64(s.Steps) * farmDT
	if s.UseUPS {
		s.GridW = round1(minBudget * (3 + rng.Float64()*3))
		// Sized so the governor's decay over the whole post-fail horizon
		// still ends above minBudget.
		s.CapacityJ = round1(minBudget * 5 * farmRunway)
		return s
	}
	s.GridW = round1(minBudget * (1.2 + rng.Float64()*4.8))
	for i, k := 0, rng.Intn(4); i < k; i++ {
		at := rng.Float64() * horizon
		if at >= s.PStartSec-farmDT && at < s.PEndSec {
			at = s.PEndSec + rng.Float64()*maxFloat(0, horizon-s.PEndSec)
		}
		s.Events = append(s.Events, FarmEvent{
			AtSec: at,
			Watts: round1(minBudget * (1.2 + rng.Float64()*4.8)),
		})
	}
	return s
}

func (s FarmSpec) reachable(i int, now float64) bool {
	return !(s.Partitioned[i] && now >= s.PStartSec && now < s.PEndSec)
}

func (s FarmSpec) allReachable(now float64) bool {
	for i := range s.Members {
		if !s.reachable(i, now) {
			return false
		}
	}
	return true
}

// randomFarmCurve draws a demand curve whose floor is exactly the member
// floor: strictly decreasing power, non-decreasing loss.
func randomFarmCurve(rng *rand.Rand, floor units.Power) farm.DemandCurve {
	steps := 2 + rng.Intn(8)
	powers := make([]units.Power, steps)
	losses := make([]float64, steps)
	powers[0] = floor
	losses[0] = 0.2 + rng.Float64()*0.7
	for i := 1; i < steps; i++ {
		powers[i] = powers[i-1] + units.Watts(1+rng.Float64()*30)
		losses[i] = losses[i-1] * rng.Float64() * 0.9
	}
	var c farm.DemandCurve
	for i := steps - 1; i >= 0; i-- {
		c.Points = append(c.Points, farm.DemandPoint{Power: powers[i], Loss: losses[i]})
	}
	return c
}

// RunFarm drives one farm scenario under the invariant checks: every
// reallocation pass through CheckAllocation, and at every quantum the
// continuous conservation check (Σ charged ≤ source budget, through the
// partition window and UPS decay) plus every holder's lease-floor
// safety. The returned Text fingerprints every pass for determinism
// checking.
func RunFarm(spec FarmSpec) (*RunResult, error) {
	if len(spec.Members) == 0 || spec.Steps <= 0 {
		return nil, fmt.Errorf("scenario: empty farm spec")
	}
	rng := rand.New(rand.NewSource(spec.Seed*31 + 7)) // demand-curve draws

	var src farm.BudgetSource
	var ups *farm.UPS
	if spec.UseUPS {
		var err error
		ups, err = farm.NewUPS(units.Joules(spec.CapacityJ), spec.RunwaySec)
		if err != nil {
			return nil, err
		}
		src = farm.Failover{At: spec.FailAtSec, Before: farm.Static(units.Watts(spec.GridW)), After: ups}
	} else {
		var events []power.BudgetEvent
		for _, e := range spec.Events {
			events = append(events, power.BudgetEvent{At: e.AtSec, Budget: units.Watts(e.Watts)})
		}
		sched, err := power.NewBudgetSchedule(units.Watts(spec.GridW), events...)
		if err != nil {
			return nil, err
		}
		if src, err = farm.FromSchedule(sched); err != nil {
			return nil, err
		}
	}

	members := make([]farm.Member, len(spec.Members))
	holders := make([]*farm.Holder, len(spec.Members))
	for i, m := range spec.Members {
		members[i] = farm.Member{Name: m.Name, Floor: units.Watts(m.FloorW)}
		h, err := farm.NewHolder(m.Name, units.Watts(m.FloorW), nil, nil)
		if err != nil {
			return nil, err
		}
		holders[i] = h
	}
	alloc, err := farm.NewAllocator(farm.AllocatorConfig{
		Source:   src,
		Members:  members,
		Periods:  farmPeriods,
		LeaseTTL: farmTTL,
		Safety:   farmSafety,
	})
	if err != nil {
		return nil, err
	}

	suite := invariant.NewSuite()
	var fp strings.Builder
	pass := func(now float64, trigger string) error {
		demands := make([]farm.Demand, len(members))
		for i, m := range members {
			if spec.reachable(i, now) {
				demands[i] = farm.Demand{Curve: randomFarmCurve(rng, m.Floor), Reachable: true}
			}
		}
		a, err := alloc.Allocate(now, trigger, demands)
		if err != nil {
			return err
		}
		suite.Report(invariant.CheckAllocation(members, a)...)
		if spec.allReachable(now) && !a.Met {
			suite.Report(invariant.Violation{Checker: "farm-allocation", At: now,
				Detail: fmt.Sprintf("met=false with every member reachable and budget %v above the floor minimum", a.Budget)})
		}
		for _, l := range a.Leases {
			for i, m := range members {
				if m.Name == l.Member {
					holders[i].Grant(l)
				}
			}
		}
		fmt.Fprintf(&fp, "%.2f %s %.6f", now, trigger, a.Charged.W())
		for _, l := range a.Leases {
			fmt.Fprintf(&fp, " %s=%.6f", l.Member, l.Budget.W())
		}
		fp.WriteByte('\n')
		return nil
	}

	tl := engine.NewTimeline()
	met, err := engine.NewMetronome(tl, farmDT, farmPeriods)
	if err != nil {
		return nil, err
	}
	if err := pass(0, "initial"); err != nil {
		return nil, err
	}
	for step := 1; step <= spec.Steps; step++ {
		now := float64(step) * farmDT
		prev := now - farmDT
		if ups != nil && prev >= spec.FailAtSec {
			if err := ups.Drain(alloc.Charged(prev), farmDT); err != nil {
				return nil, err
			}
		}
		if err := tl.AdvanceTo(now); err != nil {
			return nil, err
		}
		if trig, due := alloc.Trigger(now, met.TakeDue()); due {
			if err := pass(now, trig); err != nil {
				return nil, err
			}
		}
		suite.Report(invariant.CheckFarmCharge(now, src.BudgetAt(now), alloc.Charged(now))...)
		for _, h := range holders {
			suite.Report(invariant.CheckHolder(now, h)...)
		}
	}

	res := &RunResult{Rounds: spec.Steps, Text: fp.String()}
	sum := sha256.Sum256([]byte(res.Text))
	res.Hash = hex.EncodeToString(sum[:8])
	res.Violations = suite.Violations()
	return res, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
