package scenario

import (
	"reflect"
	"testing"
)

func TestPolicyKnobsRejected(t *testing.T) {
	spec := Generate(1)
	cases := []struct {
		name string
		opt  Options
	}{
		{"negative epsilon", Options{Policy: &PolicyKnobs{Epsilon: -0.1}}},
		{"epsilon at one", Options{Policy: &PolicyKnobs{Epsilon: 1.0}}},
		{"negative debounce", Options{Policy: &PolicyKnobs{DebouncePasses: -1}}},
		{"unknown allocator", Options{Policy: &PolicyKnobs{Allocator: "magic"}}},
		{"policy with sabotage", Options{Policy: &PolicyKnobs{Epsilon: 0.1}, Sabotage: SabotageStepTwoInvert}},
	}
	for _, tc := range cases {
		if _, err := RunCluster(spec, tc.opt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPolicyKnobsRewrites(t *testing.T) {
	cases := []struct {
		knobs *PolicyKnobs
		want  bool
	}{
		{nil, false},
		{&PolicyKnobs{}, false},
		{&PolicyKnobs{Epsilon: 0.2}, false},
		{&PolicyKnobs{DebouncePasses: 1}, false},
		{&PolicyKnobs{DebouncePasses: 2}, true},
		{&PolicyKnobs{Allocator: AllocGreedy}, false},
		{&PolicyKnobs{Allocator: AllocUniform}, true},
		{&PolicyKnobs{Allocator: AllocOptimal}, true},
	}
	for i, tc := range cases {
		if got := tc.knobs.rewrites(); got != tc.want {
			t.Errorf("case %d: rewrites() = %v, want %v", i, got, tc.want)
		}
	}
}

// TestMeasureGap turns on the exact-optimal comparison across generated
// seeds: the paper's greedy must never beat the exact optimum, the gap
// sums must be deterministic, and the fitness fields must populate.
func TestMeasureGap(t *testing.T) {
	measured := 0
	for seed := int64(1); seed <= 8; seed++ {
		spec := Generate(seed)
		r1, err := RunCluster(spec, Options{MeasureGap: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(r1.Violations) != 0 {
			t.Fatalf("seed %d: %+v", seed, r1.Violations)
		}
		g := r1.Gap
		if g == nil {
			t.Fatalf("seed %d: MeasureGap produced no stats", seed)
		}
		if g.GreedyLoss < g.OptimalLoss-1e-12 {
			t.Fatalf("seed %d: greedy %v beats exact optimum %v", seed, g.GreedyLoss, g.OptimalLoss)
		}
		if g.WorstGap < 0 {
			t.Fatalf("seed %d: negative worst gap %v", seed, g.WorstGap)
		}
		if r1.EnergyJ <= 0 {
			t.Fatalf("seed %d: no energy accumulated", seed)
		}
		if r1.PredLoss < 0 {
			t.Fatalf("seed %d: negative predicted loss", seed)
		}
		if g.Passes > 0 {
			measured++
		}
		r2, err := RunCluster(spec, Options{MeasureGap: true})
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if !reflect.DeepEqual(r1.Gap, r2.Gap) || r1.PredLoss != r2.PredLoss || r1.EnergyJ != r2.EnergyJ {
			t.Fatalf("seed %d: gap measurement nondeterministic", seed)
		}
	}
	if measured == 0 {
		t.Fatal("no seed produced a measurable pass")
	}
}

// TestPolicyEpsilonOverride: an ε-only knob flows through the scheduler
// config — the full default suite still passes, and the knob actually
// changes decisions on at least one seed.
func TestPolicyEpsilonOverride(t *testing.T) {
	changed := false
	for seed := int64(1); seed <= 20; seed++ {
		spec := Generate(seed).FaultFree()
		base, err := RunCluster(spec, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		alt, err := RunCluster(spec, Options{Policy: &PolicyKnobs{Epsilon: 0.30}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(alt.Violations) != 0 {
			t.Fatalf("seed %d: ε override broke invariants: %+v", seed, alt.Violations)
		}
		if alt.Text != base.Text {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("ε=0.30 changed no decisions across 20 seeds")
	}
}

// TestPolicyOptimalAllocator replaces Step 2 with the exact solver: the
// reduced suite stays clean and the measured gap is identically zero —
// the run IS the optimum.
func TestPolicyOptimalAllocator(t *testing.T) {
	measured := 0
	for seed := int64(1); seed <= 6; seed++ {
		spec := Generate(seed).FaultFree()
		r, err := RunCluster(spec, Options{
			Policy:     &PolicyKnobs{Allocator: AllocOptimal},
			MeasureGap: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(r.Violations) != 0 {
			t.Fatalf("seed %d: %+v", seed, r.Violations)
		}
		if r.Gap == nil {
			t.Fatalf("seed %d: no gap stats", seed)
		}
		if r.Gap.NonOptimal != 0 {
			t.Fatalf("seed %d: optimal allocator measured %d non-optimal passes, worst gap %v",
				seed, r.Gap.NonOptimal, r.Gap.WorstGap)
		}
		measured += r.Gap.Passes
	}
	if measured == 0 {
		t.Fatal("no pass measured under the optimal allocator")
	}
}

// TestPolicyUniformAllocator: the loss-blind demotion baseline runs
// clean under the reduced suite and is deterministic.
func TestPolicyUniformAllocator(t *testing.T) {
	spec := servingSpec(7) // budget drop to 60 W forces demotions
	opt := Options{Policy: &PolicyKnobs{Allocator: AllocUniform}}
	a, err := RunCluster(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("uniform allocator broke invariants: %+v", a.Violations)
	}
	b, err := RunCluster(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Fatal("uniform allocator nondeterministic")
	}
}

// TestPolicyDebounce: holding Step-1 desires for repeated confirmation
// changes decisions somewhere, never breaks the reduced suite, and stays
// deterministic.
func TestPolicyDebounce(t *testing.T) {
	changed := false
	opt := Options{Policy: &PolicyKnobs{DebouncePasses: 3}}
	for seed := int64(1); seed <= 20; seed++ {
		spec := Generate(seed).FaultFree()
		base, err := RunCluster(spec, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		alt, err := RunCluster(spec, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(alt.Violations) != 0 {
			t.Fatalf("seed %d: debounce broke invariants: %+v", seed, alt.Violations)
		}
		alt2, err := RunCluster(spec, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if alt.Text != alt2.Text {
			t.Fatalf("seed %d: debounce nondeterministic", seed)
		}
		if alt.Text != base.Text {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("debounce of 3 passes changed no decisions across 20 seeds")
	}
}

// TestServingFitnessTotals: a serving run reports SLO totals for the
// fitness function.
func TestServingFitnessTotals(t *testing.T) {
	r, err := RunCluster(servingSpec(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SLOResolved == 0 {
		t.Fatal("serving run resolved no requests")
	}
	if r.SLOOk > r.SLOResolved {
		t.Fatalf("SLO-ok %d exceeds resolved %d", r.SLOOk, r.SLOResolved)
	}
}

// TestSoakMeasureGap: the soak harness aggregates per-seed gap stats
// deterministically across worker counts.
func TestSoakMeasureGap(t *testing.T) {
	cfg := SoakConfig{Seeds: 3, MeasureGap: true}
	a := Soak(cfg)
	if !a.OK {
		t.Fatalf("soak not OK: %d violations %d errors", a.Violations, a.Errors)
	}
	if a.Gap == nil || a.Gap.Passes == 0 {
		t.Fatalf("soak aggregated no gap stats: %+v", a.Gap)
	}
	cfg.Parallel = 3
	b := Soak(cfg)
	if !reflect.DeepEqual(a.Gap, b.Gap) {
		t.Fatalf("gap stats differ across worker counts:\n%+v\n%+v", a.Gap, b.Gap)
	}
	for _, r := range a.Results {
		if r.Gap == nil {
			t.Fatalf("seed %d: no per-seed gap stats", r.Seed)
		}
	}
}

func TestSchedulerConfigExport(t *testing.T) {
	spec := Generate(3)
	cfg, err := spec.SchedulerConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Epsilon != spec.Epsilon {
		t.Fatalf("config ε %v, spec ε %v", cfg.Epsilon, spec.Epsilon)
	}
	if cfg.Table == nil {
		t.Fatal("config lacks a power table")
	}
}
