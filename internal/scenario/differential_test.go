package scenario

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDifferentialFaultFree runs ≥20 fault-free seeds through both the
// in-process mirror and the networked stack and demands byte-identical
// decision traces: same budgets, same table power, same per-CPU
// frequencies and voltages, rendered through the same format strings.
func TestDifferentialFaultFree(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		spec := Generate(seed).FaultFree()
		d, err := RunDifferential(spec, NetOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !d.Equivalent {
			t.Fatalf("seed %d diverged: %+v", seed, d.Divergences[0])
		}
		if d.FaultRounds != 0 || d.InWindowDiffs != 0 {
			t.Fatalf("seed %d: fault rounds on a fault-free spec", seed)
		}
		if d.InProc.Text != d.Net.Text {
			t.Fatalf("seed %d: equivalent but full texts differ", seed)
		}
		if len(d.InProc.Violations) != 0 || len(d.Net.Violations) != 0 {
			t.Fatalf("seed %d: invariant violations during differential", seed)
		}
	}
}

// TestDifferentialFaulty feeds scenarios that do carry faults through the
// differential: traces may differ inside the declared windows (message
// faults skew remote timing) but never outside them.
func TestDifferentialFaulty(t *testing.T) {
	tested := 0
	for seed := int64(1); seed <= 30 && tested < 6; seed++ {
		spec := Generate(seed)
		if len(spec.Partitions) == 0 && len(spec.Policies) == 0 {
			continue
		}
		tested++
		d, err := RunDifferential(spec, NetOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !d.Equivalent {
			t.Errorf("seed %d: out-of-window divergence: %+v", seed, d.Divergences[0])
		}
		if d.FaultRounds == 0 {
			t.Errorf("seed %d: faulty spec declared no fault rounds", seed)
		}
	}
	if tested < 6 {
		t.Fatalf("only %d faulty seeds in 1..30", tested)
	}
}

func TestFirstDiff(t *testing.T) {
	if got := firstDiff("a\nb\n", "a\nc\n", "l", "r"); !strings.Contains(got, `"b"`) || !strings.Contains(got, `"c"`) {
		t.Fatalf("firstDiff = %q", got)
	}
	if got := firstDiff("x", "x", "l", "r"); got != "traces differ" {
		t.Fatalf("identical-input fallback = %q", got)
	}
}

// TestSoakClean runs a small clean campaign of all four job kinds.
func TestSoakClean(t *testing.T) {
	rep := Soak(SoakConfig{Seeds: 4, DiffSeeds: 2, FarmSeeds: 3, DESSeeds: 2, Parallel: 4, ShrinkMax: 50})
	if !rep.OK {
		t.Fatalf("clean soak failed: %+v", rep)
	}
	if len(rep.Results) != 11 {
		t.Fatalf("got %d results, want 11", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Skipped || r.Err != "" {
			t.Fatalf("unexpected skip/error: %+v", r)
		}
	}
	// The report order is deterministic regardless of worker count.
	seq := Soak(SoakConfig{Seeds: 4, DiffSeeds: 2, FarmSeeds: 3, DESSeeds: 2, Parallel: 1, ShrinkMax: 50})
	for i := range rep.Results {
		if rep.Results[i].Hash != seq.Results[i].Hash || rep.Results[i].Seed != seq.Results[i].Seed {
			t.Fatalf("result %d differs across worker counts", i)
		}
	}
}

// TestSoakSabotage verifies the campaign catches the injected Step-2
// defect and ships a minimal reproducer in the report.
func TestSoakSabotage(t *testing.T) {
	rep := Soak(SoakConfig{Seeds: 8, Parallel: 4, Sabotage: SabotageStepTwoInvert, ShrinkMax: 200})
	if rep.OK {
		t.Fatal("sabotaged soak reported OK")
	}
	shrunk := false
	for _, r := range rep.Results {
		if len(r.Violations) > 0 && r.Shrunk != nil {
			shrunk = true
			if r.Shrunk.Seed != r.Seed {
				t.Fatal("reproducer seed differs from job seed")
			}
			if r.ShrinkAttempts == 0 {
				t.Fatal("reproducer claims zero shrink attempts")
			}
		}
	}
	if !shrunk {
		t.Fatal("no failing seed carried a shrunk reproducer")
	}
}

// TestSoakFlightDump: with DumpDir set, every violating cluster seed
// writes a flight-recorder snapshot whose ring still holds the violating
// pass (a schedule event with the violation's pass ID).
func TestSoakFlightDump(t *testing.T) {
	dir := t.TempDir()
	rep := Soak(SoakConfig{Seeds: 4, Parallel: 2, Sabotage: SabotageStepTwoInvert, DumpDir: dir})
	if rep.OK {
		t.Fatal("sabotaged soak reported OK")
	}
	dumped := 0
	for _, r := range rep.Results {
		if len(r.Violations) == 0 {
			continue
		}
		if r.FlightDump == "" {
			t.Fatalf("violating seed %d has no flight dump", r.Seed)
		}
		data, err := os.ReadFile(r.FlightDump)
		if err != nil {
			t.Fatal(err)
		}
		var snap obs.FlightSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("seed %d dump: %v", r.Seed, err)
		}
		// The ring keeps the most recent events, so at minimum the last
		// violation's pass — matched by simulated time — must still be
		// present, with a pass ID joining it to its span tree.
		last := r.Violations[len(r.Violations)-1]
		found := false
		for _, e := range snap.Events {
			if e.Type == obs.EventSchedule && e.At == last.At && e.PassID > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("seed %d dump is missing the violating pass at t=%v", r.Seed, last.At)
		}
		dumped++
	}
	if dumped == 0 {
		t.Fatal("no violating seed produced a flight dump")
	}
}

func TestSoakWallBudget(t *testing.T) {
	rep := Soak(SoakConfig{Seeds: 5, FarmSeeds: 5, Parallel: 2, Wall: time.Nanosecond})
	if rep.Skipped != len(rep.Results) {
		t.Fatalf("expired wall budget skipped %d/%d jobs", rep.Skipped, len(rep.Results))
	}
	for _, r := range rep.Results {
		if !r.Skipped {
			t.Fatalf("job ran past the deadline: %+v", r)
		}
	}
	// Skipping is reported, never silently treated as failure.
	if !rep.OK {
		t.Fatal("skipped jobs flagged the campaign as failed")
	}
}
