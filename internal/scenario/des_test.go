package scenario

import "testing"

// pickSeeds scans the generator for the first n seeds whose specs
// satisfy want, so the differential always covers the shapes it claims
// to (serving overlays included) without hard-coding generator
// internals.
func pickSeeds(t *testing.T, n int, want func(Spec) bool) []int64 {
	t.Helper()
	var seeds []int64
	for s := int64(1); s < 500 && len(seeds) < n; s++ {
		if want(Generate(s)) {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) < n {
		t.Fatalf("found only %d/%d matching seeds in 1..499", len(seeds), n)
	}
	return seeds
}

func requireEquivalent(t *testing.T, seed int64) {
	t.Helper()
	d, err := RunDESDifferential(Generate(seed), Options{})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if !d.Equivalent {
		for i, div := range d.Divergences {
			if i == 3 {
				t.Errorf("seed %d: ... %d more", seed, len(d.Divergences)-i)
				break
			}
			t.Errorf("seed %d: round %d: %s", seed, div.Round, div.Detail)
		}
		t.Fatalf("seed %d: quantum and DES engines diverged (%s vs %s)", seed, d.Ref.Hash, d.DES.Hash)
	}
	if d.Ref.Hash != d.DES.Hash || d.Ref.Text != d.DES.Text {
		t.Fatalf("seed %d: hashes/text differ: %s vs %s", seed, d.Ref.Hash, d.DES.Hash)
	}
}

func TestDESDifferentialPlainSpecs(t *testing.T) {
	for _, seed := range pickSeeds(t, 3, func(s Spec) bool { return s.Serving == nil }) {
		requireEquivalent(t, seed)
	}
}

func TestDESDifferentialServingSpecs(t *testing.T) {
	for _, seed := range pickSeeds(t, 3, func(s Spec) bool { return s.Serving != nil }) {
		requireEquivalent(t, seed)
	}
}

func TestDESDifferentialFaultySpecs(t *testing.T) {
	// Partition windows freeze machines mid-run; the DES engine must
	// reproduce the freeze/rejoin edges exactly.
	for _, seed := range pickSeeds(t, 2, func(s Spec) bool { return len(s.Partitions) > 0 }) {
		requireEquivalent(t, seed)
	}
}

func TestRunClusterDESDeterministic(t *testing.T) {
	seed := pickSeeds(t, 1, func(s Spec) bool { return s.Serving != nil })[0]
	spec := Generate(seed)
	a, err := RunClusterDES(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClusterDES(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash || a.Text != b.Text {
		t.Fatalf("DES run not deterministic: %s vs %s", a.Hash, b.Hash)
	}
}
