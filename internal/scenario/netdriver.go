package scenario

import (
	"fmt"
	"time"

	"repro/internal/invariant"
	"repro/internal/machine"
	"repro/internal/netcluster"
	"repro/internal/netcluster/faultnet"
	"repro/internal/netcluster/wire"
)

// NetOptions tunes the loopback netcluster driver.
type NetOptions struct {
	// RPCTimeout bounds each RPC attempt; a partitioned node costs about
	// one timeout per round. Default 150 ms.
	RPCTimeout time.Duration
	// Codec selects the hot-message payload encoding on every link: ""
	// or "json" for the inspectable default, wire.CodecName for the
	// negotiated binary codec with delta-encoded counter reports.
	Codec string
	// Relays is RunRelayNet's relay count (ignored by RunNet). Default
	// 2, clamped to the node count; nodes split into contiguous groups.
	Relays int
}

// RunNet runs the scenario through the real networked stack: one TCP
// agent per node on loopback, connected through a seeded faultnet that
// applies the spec's partitions and message-fault policies at round
// boundaries, driven by the production netcluster.Coordinator. The
// returned trace has the same canonical shape as RunCluster's; every
// round's ledger runs under the invariant checks.
//
// The networked driver does not model UPS drain (the coordinator samples
// a budget source; nothing in the transport integrates battery energy),
// so specs with a UPS must be stripped with WithoutUPS first.
func RunNet(spec Spec, opt NetOptions) (*RunResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.UPS != nil {
		return nil, fmt.Errorf("scenario: networked driver does not model UPS drain; use Spec.WithoutUPS")
	}
	if opt.RPCTimeout == 0 {
		opt.RPCTimeout = 150 * time.Millisecond
	}
	fcfg, err := spec.fvsstConfig()
	if err != nil {
		return nil, err
	}
	source, _, err := spec.source()
	if err != nil {
		return nil, err
	}

	net := faultnet.New(spec.Seed)
	if opt.Codec == wire.CodecName {
		net.SetTransport(wire.Dial)
	}
	agents := make([]*netcluster.Agent, len(spec.Nodes))
	machines := make([]*machine.Machine, len(spec.Nodes))
	specs := make([]netcluster.NodeSpec, len(spec.Nodes))
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()
	for i := range spec.Nodes {
		m, err := spec.newMachine(i)
		if err != nil {
			return nil, err
		}
		machines[i] = m
		name := fmt.Sprintf("n%d", i)
		// FailsafeLease stays off: the agent watchdog would floor CPUs
		// mid-partition and the healed node would re-report from a state
		// the budget ledger (which charges the last acknowledged
		// actuation) deliberately does not track.
		a, err := netcluster.NewAgent(netcluster.AgentConfig{Name: name, M: m})
		if err != nil {
			return nil, err
		}
		if err := a.Start(); err != nil {
			return nil, err
		}
		agents[i] = a
		specs[i] = netcluster.NodeSpec{Name: name, Addr: a.Addr()}
	}

	coord, err := netcluster.NewCoordinator(netcluster.Config{
		Name:        "scenario",
		Fvsst:       fcfg,
		Budget:      source.BudgetAt(0),
		Source:      source,
		MissK:       MissK,
		RPCTimeout:  opt.RPCTimeout,
		Retries:     1,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Seed:        spec.Seed,
		Dialer:      net,
		Codec:       opt.Codec,
	}, specs...)
	if err != nil {
		return nil, err
	}
	if err := coord.Connect(); err != nil {
		return nil, err
	}
	defer coord.Close()

	for round := 0; round < spec.Rounds; round++ {
		for i := range spec.Nodes {
			name := fmt.Sprintf("n%d", i)
			if spec.partitioned(i, round) {
				net.Partition(name)
			} else {
				net.Heal(name)
			}
			if err := net.SetPolicy(name, policyAt(spec, i, round)); err != nil {
				return nil, err
			}
		}
		if err := coord.RunRound(); err != nil {
			return nil, err
		}
	}

	suite := invariant.NewSuite()
	res := &RunResult{Rounds: spec.Rounds}
	floor := fcfg.Table.FrequencyAtIndex(0)
	for round, dec := range coord.Decisions() {
		rt := RoundTrace{
			Round:     round,
			At:        dec.At,
			Trigger:   dec.Trigger,
			BudgetW:   dec.Budget.W(),
			LiveW:     dec.TablePower.W(),
			ReservedW: dec.Reserved.W(),
			ChargedW:  dec.Charged.W(),
			Met:       dec.BudgetMet,
			Degraded:  dec.Degraded,
		}
		allAtFloor := true
		for _, a := range dec.Assignments {
			if a.Actual != floor {
				allAtFloor = false
			}
			rt.Procs = append(rt.Procs, ProcTrace{
				Node:       fmt.Sprintf("n%d", a.Proc.Node),
				CPU:        a.Proc.CPU,
				Idle:       a.Idle,
				DesiredMHz: a.Desired.MHz(),
				ActualMHz:  a.Actual.MHz(),
				VoltageV:   a.Voltage.V(),
			})
		}
		res.Trace = append(res.Trace, rt)
		// Under drop/dup policies a node can poll fine yet miss its
		// actuation ack, leaving it charged conservatively while its
		// assignment reads above-floor; the Decision does not expose the
		// acked set, so the floor side-condition is only decidable
		// without message-fault policies.
		suite.Report(invariant.CheckLedger(invariant.Ledger{
			At:             dec.At,
			Budget:         dec.Budget,
			Live:           dec.Charged - dec.Reserved,
			Reserved:       dec.Reserved,
			Charged:        dec.Charged,
			Met:            dec.BudgetMet,
			AllLiveAtFloor: allAtFloor || policyActive(spec, round),
		})...)
	}
	finishResult(res, suite)
	return res, nil
}

// policyAt returns the faultnet policy in force for node i at the round
// (the zero Policy when none).
func policyAt(spec Spec, node, round int) faultnet.Policy {
	for _, p := range spec.Policies {
		if p.Node == node && round >= p.From && round < p.To {
			return faultnet.Policy{
				DropProb: p.Drop,
				DupProb:  p.Dup,
				Delay:    time.Duration(p.DelayUS) * time.Microsecond,
			}
		}
	}
	return faultnet.Policy{}
}

// policyActive reports whether any message-fault policy has started by
// the round (its accounting effects persist past the window).
func policyActive(spec Spec, round int) bool {
	for _, p := range spec.Policies {
		if round >= p.From {
			return true
		}
	}
	return false
}
