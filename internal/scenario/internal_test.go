package scenario

import (
	"strings"
	"testing"

	"repro/internal/invariant"
)

func TestHelperFunctions(t *testing.T) {
	if maxFloat(1, 2) != 2 || maxFloat(3, -1) != 3 {
		t.Error("maxFloat")
	}
	if maxInt(1, 2) != 2 || maxInt(3, -1) != 3 {
		t.Error("maxInt")
	}
	if minInt(1, 2) != 1 || minInt(3, -1) != -1 {
		t.Error("minInt")
	}
	if round1(1.26) != 1.3 || round3(0.12345) != 0.123 {
		t.Error("rounding")
	}
}

func TestRenderOneMissingRound(t *testing.T) {
	if got := renderOne(nil, 2); !strings.Contains(got, "<missing>") {
		t.Fatalf("renderOne(nil) = %q", got)
	}
}

func TestDropNodeRewiresWindows(t *testing.T) {
	s := Generate(1)
	s.Nodes = []NodeSpec{
		{CPUs: []CPUSpec{{Kind: IdleCPU}}},
		{CPUs: []CPUSpec{{Kind: IdleCPU}}},
		{CPUs: []CPUSpec{{Kind: IdleCPU}}},
	}
	s.Partitions = []Window{{Node: 0, From: 1, To: 2}, {Node: 1, From: 1, To: 2}, {Node: 2, From: 1, To: 2}}
	s.Policies = []PolicyWindow{{Node: 0, From: 1, To: 2, Drop: 0.1}, {Node: 2, From: 1, To: 2, Drop: 0.1}}
	c := dropNode(s, 1)
	if len(c.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	if len(c.Partitions) != 2 || c.Partitions[0].Node != 0 || c.Partitions[1].Node != 1 {
		t.Fatalf("partitions not rewired: %+v", c.Partitions)
	}
	if len(c.Policies) != 2 || c.Policies[1].Node != 1 {
		t.Fatalf("policies not rewired: %+v", c.Policies)
	}
}

func TestTruncateRoundsDropsOutOfRange(t *testing.T) {
	s := Generate(1)
	s.Rounds = 10
	s.Events = []BudgetEvent{{Round: 2, Watts: 100}, {Round: 9, Watts: 100}}
	s.Partitions = []Window{{Node: 0, From: 1, To: 9}, {Node: 0, From: 6, To: 8}}
	s.Policies = []PolicyWindow{{Node: 0, From: 7, To: 9, Drop: 0.1}}
	s.UPS = &UPSSpec{FailRound: 6, CapacityJ: 100, RunwaySec: 2}
	c := truncateRounds(s, 5)
	if c.Rounds != 5 {
		t.Fatalf("rounds = %d", c.Rounds)
	}
	if len(c.Events) != 1 || c.Events[0].Round != 2 {
		t.Fatalf("events = %+v", c.Events)
	}
	if len(c.Partitions) != 1 || c.Partitions[0].To != 5 {
		t.Fatalf("partitions = %+v", c.Partitions)
	}
	if len(c.Policies) != 0 {
		t.Fatalf("policies = %+v", c.Policies)
	}
	if c.UPS != nil {
		t.Fatal("UPS past the end survived truncation")
	}
}

// TestOptionsCustomCheckers narrows the suite to a single checker and
// verifies the driver honours it.
func TestOptionsCustomCheckers(t *testing.T) {
	spec := Generate(2).FaultFree()
	r, err := RunCluster(spec, Options{Checkers: []invariant.Checker{invariant.VoltageMatch{}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("voltage checker alone found violations: %v", r.Violations[0])
	}
}
