package scenario

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fvsst"
	"repro/internal/invariant"
	"repro/internal/optimal"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// Step-2 allocator names for PolicyKnobs.Allocator.
const (
	// AllocGreedy is the paper's Step 2: demote the least next-step loss.
	AllocGreedy = "greedy"
	// AllocUniform demotes the highest-frequency CPU first, loss-blind —
	// the naive budget fit the paper's greedy is measured against.
	AllocUniform = "uniform"
	// AllocOptimal assigns the exact minimum-loss feasible assignment
	// from internal/optimal every pass — the paper's counterfactual upper
	// bound, not a deployable policy (it assumes a solved pass).
	AllocOptimal = "optimal"
)

// PolicyKnobs re-runs a scenario under a perturbed scheduling policy:
// the counterfactual arm of the policy search. The zero value changes
// nothing; each knob replaces one decision ingredient while the
// workload, faults, budgets and seeds stay identical.
//
// Epsilon (>0) replaces the spec's Step-1 loss tolerance. Debounce
// semantics: a CPU's Step-1 choice must repeat for DebouncePasses
// consecutive passes before the held desire moves (first observation
// adopts immediately; Step 2 demotions are never debounced — budget
// safety cannot lag). Allocator swaps Step 2's budget fit.
type PolicyKnobs struct {
	Epsilon        float64 `json:"epsilon,omitempty"`
	DebouncePasses int     `json:"debounce_passes,omitempty"`
	Allocator      string  `json:"allocator,omitempty"`
}

func (k *PolicyKnobs) validate() error {
	if k == nil {
		return nil
	}
	if k.Epsilon < 0 || k.Epsilon >= 1 {
		return fmt.Errorf("scenario: policy epsilon %v outside [0,1)", k.Epsilon)
	}
	if k.DebouncePasses < 0 {
		return fmt.Errorf("scenario: policy debounce %d must be non-negative", k.DebouncePasses)
	}
	switch k.Allocator {
	case "", AllocGreedy, AllocUniform, AllocOptimal:
	default:
		return fmt.Errorf("scenario: unknown allocator %q", k.Allocator)
	}
	return nil
}

// rewrites reports whether the knobs need a post-pass rewrite (an ε-only
// override flows through the scheduler config instead, keeping the full
// checker suite valid).
func (k *PolicyKnobs) rewrites() bool {
	return k != nil && (k.DebouncePasses >= 2 || (k.Allocator != "" && k.Allocator != AllocGreedy))
}

// policyState carries the rewrite machinery across rounds: the debounce
// streaks are keyed by stable proc identity, not pass position, because
// partitions shrink the input vector.
type policyState struct {
	knobs PolicyKnobs
	cfg   fvsst.Config
	pred  perfmodel.Predictor
	grid  perfmodel.PredGrid
	held  map[cluster.ProcRef]int
	last  map[cluster.ProcRef]int
	run   map[cluster.ProcRef]int
}

func newPolicyState(knobs PolicyKnobs, cfg fvsst.Config) (*policyState, error) {
	pred, err := perfmodel.New(cfg.Hier)
	if err != nil {
		return nil, err
	}
	return &policyState{
		knobs: knobs,
		cfg:   cfg,
		pred:  pred,
		held:  map[cluster.ProcRef]int{},
		last:  map[cluster.ProcRef]int{},
		run:   map[cluster.ProcRef]int{},
	}, nil
}

// rewrite re-decides the pass under the policy knobs, the same post-pass
// rewrite shape as the sabotage hook: Step-1 desires pass through the
// debounce filter, the chosen allocator replaces Step 2, Step 3 re-reads
// the voltage table. The demotion log is dropped — replacement
// allocators have no least-loss demotion sequence to log.
func (st *policyState) rewrite(inputs []cluster.ProcInput, pass *cluster.PassResult, budget units.Power) error {
	cfg := st.cfg
	st.grid.Reset(len(inputs), cfg.Table.Frequencies())
	for i, in := range inputs {
		if (cfg.UseIdleSignal && in.Idle) || in.Obs == nil {
			continue
		}
		d, err := st.pred.Decompose(*in.Obs)
		if err != nil {
			return err
		}
		st.grid.Fill(i, d)
	}
	desired := make([]int, len(inputs))
	for i, a := range pass.Assignments {
		desired[i] = cfg.Table.IndexOf(a.Desired)
	}
	if k := st.knobs.DebouncePasses; k >= 2 {
		for i, in := range inputs {
			ref := in.Proc
			cand := desired[i]
			held, seen := st.held[ref]
			switch {
			case !seen:
				held = cand // first observation adopts immediately
			case cand == held:
				st.run[ref] = 0
			default:
				if cand == st.last[ref] {
					st.run[ref]++
				} else {
					st.run[ref] = 1
				}
				if st.run[ref] >= k {
					held = cand
					st.run[ref] = 0
				}
			}
			st.last[ref] = cand
			st.held[ref] = held
			desired[i] = held
		}
	}
	idx, met, err := st.allocate(desired, budget)
	if err != nil {
		return err
	}
	pass.Demotions = nil
	pass.BudgetMet = met
	var total units.Power
	for i := range pass.Assignments {
		pass.Assignments[i].Desired = cfg.Table.FrequencyAtIndex(desired[i])
		pass.Assignments[i].Actual = cfg.Table.FrequencyAtIndex(idx[i])
		pass.Assignments[i].Voltage = cfg.Table.VoltageAtIndex(idx[i])
		if st.grid.Valid(i) {
			pass.Assignments[i].PredictedLoss = st.grid.Loss(i, idx[i])
		} else {
			pass.Assignments[i].PredictedLoss = 0
		}
		total += cfg.Table.PowerAtIndex(idx[i])
	}
	pass.TablePower = total
	return nil
}

// allocate runs the knob-selected Step-2 replacement from the (possibly
// debounced) desired indices.
func (st *policyState) allocate(desired []int, budget units.Power) ([]int, bool, error) {
	return Allocate(st.knobs.Allocator, &st.grid, desired, st.cfg.Table, budget)
}

// Allocate runs one named Step-2 budget fit over a filled prediction
// grid: actual indices capped by the desired ones, plus whether the
// result fits the budget. It is shared by the in-run policy rewrite and
// the trace replay harness so both arms of a counterfactual use the
// byte-identical allocator.
func Allocate(allocator string, grid *perfmodel.PredGrid, desired []int, table *power.Table, budget units.Power) ([]int, bool, error) {
	lossAt := func(cpu, fi int) float64 {
		if !grid.Valid(cpu) {
			return 0
		}
		return grid.Loss(cpu, fi)
	}
	switch allocator {
	case AllocOptimal:
		sol, err := optimal.Solve(optimal.Problem{
			Table:  table,
			Budget: budget,
			Upper:  desired,
			Loss:   lossAt,
		})
		if err != nil {
			return nil, false, err
		}
		return sol.Idx, sol.Feasible, nil
	case AllocUniform:
		idx := append([]int(nil), desired...)
		for {
			var sum units.Power
			for _, k := range idx {
				sum += table.PowerAtIndex(k)
			}
			if sum <= budget {
				return idx, true, nil
			}
			best := -1
			for i, k := range idx {
				if k == 0 {
					continue
				}
				if best < 0 || k > idx[best] {
					best = i
				}
			}
			if best < 0 {
				return idx, false, nil
			}
			idx[best]--
		}
	default: // greedy under debounced desires
		p := optimal.Problem{Table: table, Budget: budget, Upper: desired, Loss: lossAt}
		g := optimal.Greedy(p)
		return g.Idx, g.Feasible, nil
	}
}

// policyCheckers is the reduced suite for rewritten passes: the Step-1/
// Step-2 shape checkers assume the paper's policy, but grid sanity, the
// voltage law and budget conservation must hold under any knob setting.
func policyCheckers() *invariant.Suite {
	return invariant.NewSuite(
		invariant.GridSanity{},
		invariant.VoltageMatch{},
		invariant.BudgetConservation{},
	)
}

// OptGapStats aggregates per-pass greedy-vs-exact-optimal measurements
// across a run (Options.MeasureGap). "Greedy" is the loss of whatever
// assignment actually ran — under default knobs that is the paper's
// Step 2. Energy* fields describe the unconstrained energy-optimal
// baseline at the same snapshots.
type OptGapStats struct {
	// Passes is the number of feasible, solved passes measured; Skipped
	// counts infeasible, empty, or solver-limit passes.
	Passes  int `json:"passes"`
	Skipped int `json:"skipped,omitempty"`
	// NonOptimal counts passes where the actual loss exceeded the exact
	// optimum beyond float tolerance.
	NonOptimal int `json:"non_optimal"`
	// WorstGap is the largest per-pass (actual − optimal) total loss.
	WorstGap float64 `json:"worst_gap"`
	// GreedyLoss / OptimalLoss are summed per-pass total losses.
	GreedyLoss  float64 `json:"greedy_loss"`
	OptimalLoss float64 `json:"optimal_loss"`
	// EnergyLoss sums the energy-optimal baseline's predicted loss;
	// EnergyFeasible counts passes where that baseline happened to fit
	// the budget it ignores.
	EnergyLoss     float64 `json:"energy_loss"`
	EnergyFeasible int     `json:"energy_feasible"`
}

// measure folds one pass into the stats.
func (s *OptGapStats) measure(p *invariant.Pass) {
	greedy, opt, energy, ok := p.OptGap()
	if !ok {
		s.Skipped++
		return
	}
	s.Passes++
	gap := greedy - opt
	if gap > 1e-12 {
		s.NonOptimal++
	}
	if gap > s.WorstGap {
		s.WorstGap = gap
	}
	s.GreedyLoss += greedy
	s.OptimalLoss += opt
	s.EnergyLoss += energy.Loss
	if energy.Feasible {
		s.EnergyFeasible++
	}
}

// Merge folds another run's stats into s (soak aggregation).
func (s *OptGapStats) Merge(o OptGapStats) {
	s.Passes += o.Passes
	s.Skipped += o.Skipped
	s.NonOptimal += o.NonOptimal
	if o.WorstGap > s.WorstGap {
		s.WorstGap = o.WorstGap
	}
	s.GreedyLoss += o.GreedyLoss
	s.OptimalLoss += o.OptimalLoss
	s.EnergyLoss += o.EnergyLoss
	s.EnergyFeasible += o.EnergyFeasible
}
