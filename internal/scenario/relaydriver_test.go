package scenario

import (
	"testing"

	"repro/internal/netcluster/wire"
)

// TestCodecDifferentialFaultFree: JSON and binary payloads over the same
// fault-free scenarios must render byte-identical traces — the binary
// codec carries exact float bit patterns and changes nothing about the
// decision arithmetic.
func TestCodecDifferentialFaultFree(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		spec := Generate(seed).FaultFree()
		d, err := RunCodecDifferential(spec, NetOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !d.Equivalent {
			t.Fatalf("seed %d diverged: %+v", seed, d.Divergences[0])
		}
		if d.InProc.Text != d.Net.Text {
			t.Fatalf("seed %d: equivalent but full texts differ", seed)
		}
		if len(d.Net.Violations) != 0 {
			t.Fatalf("seed %d: invariant violations on binary run", seed)
		}
	}
}

// TestCodecDifferentialFaulty: under faults the codecs still see the same
// fault draws (faultnet decides drops before encoding, keyed only on send
// order), so even in-window the traces must never diverge outside the
// declared windows.
func TestCodecDifferentialFaulty(t *testing.T) {
	tested := 0
	for seed := int64(1); seed <= 30 && tested < 4; seed++ {
		spec := Generate(seed)
		if len(spec.Partitions) == 0 && len(spec.Policies) == 0 {
			continue
		}
		tested++
		d, err := RunCodecDifferential(spec, NetOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !d.Equivalent {
			t.Errorf("seed %d: out-of-window divergence: %+v", seed, d.Divergences[0])
		}
	}
	if tested < 4 {
		t.Fatalf("only %d faulty seeds in 1..30", tested)
	}
}

// TestTierDifferential: the flat JSON coordinator and the 2-level binary
// relay tree must render byte-identical traces on fault-free seeds —
// the hierarchical division is exact and the relay ledger reassembles in
// global node order.
func TestTierDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		d, err := RunTierDifferential(Generate(seed), NetOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !d.Equivalent {
			t.Fatalf("seed %d diverged: %+v", seed, d.Divergences[0])
		}
		if d.InProc.Text != d.Net.Text {
			t.Fatalf("seed %d: equivalent but full texts differ", seed)
		}
		if d.Net.MaxPassLatencyS <= 0 {
			t.Fatalf("seed %d: relay run reported no pass latency", seed)
		}
		if len(d.Net.Violations) != 0 {
			t.Fatalf("seed %d: invariant violations on relay run", seed)
		}
	}
}

// TestRelayNetFaultyBudgetSafety: the relay driver under leaf faults must
// keep every round's ledger within budget (conservative charging at both
// tiers) and produce no invariant violations.
func TestRelayNetFaultyBudgetSafety(t *testing.T) {
	tested := 0
	for seed := int64(1); seed <= 30 && tested < 3; seed++ {
		spec := Generate(seed).WithoutUPS().WithoutServing()
		if len(spec.Partitions) == 0 || len(spec.Nodes) < 2 {
			continue
		}
		tested++
		res, err := RunRelayNet(spec, NetOptions{Codec: wire.CodecName})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations: %+v", seed, res.Violations[0])
		}
		for _, rt := range res.Trace {
			if rt.ChargedW > rt.BudgetW {
				t.Fatalf("seed %d round %d: charged %v over budget %v", seed, rt.Round, rt.ChargedW, rt.BudgetW)
			}
		}
	}
	if tested < 3 {
		t.Fatalf("only %d partitioned multi-node seeds in 1..30", tested)
	}
}
