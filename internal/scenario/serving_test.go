package scenario

import (
	"strings"
	"testing"
)

// servingSpec is a small hand-built serving scenario: two nodes, a web
// class with a tight SLO and a timeout, and a batch class, through a
// budget drop.
func servingSpec(seed int64) Spec {
	return Spec{
		Seed:            seed,
		Table:           "paper",
		Nodes:           []NodeSpec{{CPUs: []CPUSpec{{Kind: IdleCPU}, {Kind: IdleCPU}}}, {CPUs: []CPUSpec{{Kind: IdleCPU}}}},
		Rounds:          12,
		SchedulePeriods: 2,
		Epsilon:         0.1,
		BudgetW:         250,
		Events:          []BudgetEvent{{Round: 4, Watts: 60}, {Round: 9, Watts: 250}},
		Serving: &ServingSpec{Classes: []ServingClassSpec{
			{Name: "web", Arrival: "gamma:20,cv=1.5", Clients: 2, MeanMInstr: 8,
				SizeCV: 0.3, SLOMs: 60, TimeoutMs: 120, QueueCap: 16, Priority: 1},
			{Name: "batch", Arrival: "poisson:5", Clients: 1, MeanMInstr: 30,
				SLOMs: 800, QueueCap: 32},
		}},
	}
}

// TestGenerateServing: the generator emits serving overlays for a
// healthy fraction of seeds, every one validates, and serving seeds have
// all-idle CPU kinds (the stations own the CPUs).
func TestGenerateServing(t *testing.T) {
	serving := 0
	for seed := int64(1); seed <= 300; seed++ {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.Serving == nil {
			continue
		}
		serving++
		for ni, n := range s.Nodes {
			for ci, c := range n.CPUs {
				if c.Kind != IdleCPU {
					t.Fatalf("seed %d: serving scenario node %d cpu %d kind %q", seed, ni, ci, c.Kind)
				}
			}
		}
	}
	if serving < 50 || serving > 150 {
		t.Errorf("serving overlays in 300 seeds: %d, want roughly 30%%", serving)
	}
}

// TestRunClusterServing: a serving scenario runs clean under the full
// invariant suite (including queue conservation every round), carries
// traffic, and renders serve lines into the canonical trace.
func TestRunClusterServing(t *testing.T) {
	spec := servingSpec(7)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	last := res.Trace[len(res.Trace)-1]
	if len(last.Serve) != len(spec.Nodes) {
		t.Fatalf("serve traces: %d, want %d", len(last.Serve), len(spec.Nodes))
	}
	var offered, completed uint64
	for _, sv := range last.Serve {
		offered += sv.Offered
		completed += sv.Completed
	}
	if offered == 0 || completed == 0 {
		t.Fatalf("no traffic served: offered %d completed %d", offered, completed)
	}
	if !strings.Contains(res.Text, " serve off=") {
		t.Fatalf("trace text lacks serve lines:\n%s", res.Text)
	}
}

// TestRunClusterServingDeterministic: same spec, byte-identical trace —
// the serving layer introduces no hidden randomness.
func TestRunClusterServingDeterministic(t *testing.T) {
	spec := servingSpec(7)
	a, err := RunCluster(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Fatalf("traces differ:\n%s\n---\n%s", a.Text, b.Text)
	}
}

// TestDifferentialStripsServing: the differential harness strips the
// serving overlay on both sides and the fault-free runs stay equivalent.
func TestDifferentialStripsServing(t *testing.T) {
	spec := servingSpec(11)
	spec.Rounds = 6
	spec.Events = nil
	d, err := RunDifferential(spec, NetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.Serving != nil {
		t.Fatal("differential kept the serving overlay")
	}
	if !d.Equivalent {
		t.Fatalf("divergences: %+v", d.Divergences)
	}
	if strings.Contains(d.InProc.Text, " serve ") {
		t.Fatal("stripped run still traced serving")
	}
}

// TestShrinkServing: shrinking a failure that only needs the serving
// overlay strips everything else and minimises the overlay itself to one
// class with one client.
func TestShrinkServing(t *testing.T) {
	spec := servingSpec(13)
	spec.UPS = &UPSSpec{FailRound: 5, CapacityJ: 4000, RunwaySec: 5}
	failing := func(s Spec) bool { return s.Serving != nil }
	shrunk, attempts := Shrink(spec, failing, 500)
	if attempts == 0 {
		t.Fatal("no shrink attempts")
	}
	if shrunk.Serving == nil {
		t.Fatal("shrink lost the failure-carrying overlay")
	}
	if shrunk.UPS != nil {
		t.Error("shrink kept the UPS")
	}
	if n := len(shrunk.Serving.Classes); n != 1 {
		t.Errorf("shrunk classes: %d, want 1", n)
	}
	if c := shrunk.Serving.Classes[0].Clients; c != 1 {
		t.Errorf("shrunk clients: %d, want 1", c)
	}
	if len(shrunk.Nodes) != 1 || len(shrunk.Nodes[0].CPUs) != 1 {
		t.Errorf("shrunk topology: %d nodes, %d CPUs on node 0",
			len(shrunk.Nodes), len(shrunk.Nodes[0].CPUs))
	}
}
