package scenario

import (
	"fmt"
	"strings"

	"repro/internal/netcluster/wire"
)

// Divergence is one round whose traces differ outside every declared
// fault window.
type Divergence struct {
	Round  int    `json:"round"`
	Detail string `json:"detail"`
}

// DiffResult is one differential run: the same scenario through the
// in-process mirror and the networked stack, compared round by round.
type DiffResult struct {
	Spec   Spec       `json:"spec"`
	InProc *RunResult `json:"in_proc"`
	Net    *RunResult `json:"net"`
	// FaultRounds counts rounds inside declared fault windows, where the
	// traces are allowed (not required) to differ.
	FaultRounds int `json:"fault_rounds"`
	// InWindowDiffs counts rounds that differed inside fault windows.
	InWindowDiffs int `json:"in_window_diffs"`
	// Divergences are rounds that differed OUTSIDE every fault window —
	// each one a real equivalence violation.
	Divergences []Divergence `json:"divergences,omitempty"`
	// Equivalent reports no out-of-window divergence.
	Equivalent bool `json:"equivalent"`
}

// RunDifferential runs the same scenario through cluster.Core in-process
// and through netcluster over loopback+faultnet and compares the decision
// traces round by round. Outside declared fault windows the rendered
// rounds must match byte for byte; inside them (partition windows, plus
// everything after a message-fault policy starts, since a dropped counter
// response skews the remote machine's simulated time permanently)
// differences are recorded but allowed. The UPS and the serving overlay
// are stripped on both sides — the transport models neither battery
// drain nor request streams.
func RunDifferential(spec Spec, opt NetOptions) (*DiffResult, error) {
	spec = spec.WithoutUPS().WithoutServing()
	inproc, err := RunCluster(spec, Options{})
	if err != nil {
		return nil, fmt.Errorf("scenario: in-process run: %w", err)
	}
	netRun, err := RunNet(spec, opt)
	if err != nil {
		return nil, fmt.Errorf("scenario: networked run: %w", err)
	}
	return diffRuns(spec, inproc, netRun, "in-proc", "net"), nil
}

// RunCodecDifferential runs the same scenario through the networked
// stack twice — JSON payloads vs the negotiated binary codec with delta
// counter reports — and compares the traces. The codecs carry the same
// values losslessly (floats travel as their exact bit patterns), and
// faultnet's fault draws depend only on send order, which the codec does
// not change, so outside fault windows the rendered rounds must match
// byte for byte.
func RunCodecDifferential(spec Spec, opt NetOptions) (*DiffResult, error) {
	spec = spec.WithoutUPS().WithoutServing()
	jsonOpt, binOpt := opt, opt
	jsonOpt.Codec = ""
	binOpt.Codec = wire.CodecName
	jsonRun, err := RunNet(spec, jsonOpt)
	if err != nil {
		return nil, fmt.Errorf("scenario: json run: %w", err)
	}
	binRun, err := RunNet(spec, binOpt)
	if err != nil {
		return nil, fmt.Errorf("scenario: binary run: %w", err)
	}
	return diffRuns(spec, jsonRun, binRun, "json", "bin"), nil
}

// RunTierDifferential runs the fault-free projection of the scenario
// through the flat JSON coordinator and through the 2-level binary relay
// tree and compares the traces, which must match byte for byte on every
// round: the hierarchical divide is exact, the relay ledger reassembles
// in global node order, and without faults no conservative-charge path
// triggers. Faults are stripped (rather than windowed) because the two
// topologies draw from differently-shaped fault streams, so in-window
// behaviour is not comparable.
func RunTierDifferential(spec Spec, opt NetOptions) (*DiffResult, error) {
	spec = spec.FaultFree().WithoutUPS().WithoutServing()
	flatOpt := opt
	flatOpt.Codec = ""
	treeOpt := opt
	treeOpt.Codec = wire.CodecName
	flat, err := RunNet(spec, flatOpt)
	if err != nil {
		return nil, fmt.Errorf("scenario: flat run: %w", err)
	}
	tree, err := RunRelayNet(spec, treeOpt)
	if err != nil {
		return nil, fmt.Errorf("scenario: relay run: %w", err)
	}
	return diffRuns(spec, flat, tree, "flat", "tree"), nil
}

// diffRuns compares two runs of the same spec round by round: outside
// declared fault windows the rendered rounds must match byte for byte;
// inside them differences are recorded but allowed.
func diffRuns(spec Spec, base, variant *RunResult, baseLabel, variantLabel string) *DiffResult {
	d := &DiffResult{Spec: spec, InProc: base, Net: variant}
	for r := 0; r < spec.Rounds; r++ {
		inWindow := spec.faultAffected(r)
		if inWindow {
			d.FaultRounds++
		}
		a, b := renderOne(base.Trace, r), renderOne(variant.Trace, r)
		if a == b {
			continue
		}
		if inWindow {
			d.InWindowDiffs++
			continue
		}
		d.Divergences = append(d.Divergences, Divergence{Round: r, Detail: firstDiff(a, b, baseLabel, variantLabel)})
	}
	d.Equivalent = len(d.Divergences) == 0
	return d
}

func renderOne(trace []RoundTrace, r int) string {
	if r >= len(trace) {
		return fmt.Sprintf("r=%d <missing>\n", r)
	}
	var b strings.Builder
	trace[r].render(&b)
	return b.String()
}

// firstDiff returns the first differing line pair, labelled per side.
func firstDiff(a, b, la, lb string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return fmt.Sprintf("%s %q vs %s %q", la, strings.TrimSpace(x), lb, strings.TrimSpace(y))
		}
	}
	return "traces differ"
}
