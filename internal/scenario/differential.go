package scenario

import (
	"fmt"
	"strings"
)

// Divergence is one round whose traces differ outside every declared
// fault window.
type Divergence struct {
	Round  int    `json:"round"`
	Detail string `json:"detail"`
}

// DiffResult is one differential run: the same scenario through the
// in-process mirror and the networked stack, compared round by round.
type DiffResult struct {
	Spec   Spec       `json:"spec"`
	InProc *RunResult `json:"in_proc"`
	Net    *RunResult `json:"net"`
	// FaultRounds counts rounds inside declared fault windows, where the
	// traces are allowed (not required) to differ.
	FaultRounds int `json:"fault_rounds"`
	// InWindowDiffs counts rounds that differed inside fault windows.
	InWindowDiffs int `json:"in_window_diffs"`
	// Divergences are rounds that differed OUTSIDE every fault window —
	// each one a real equivalence violation.
	Divergences []Divergence `json:"divergences,omitempty"`
	// Equivalent reports no out-of-window divergence.
	Equivalent bool `json:"equivalent"`
}

// RunDifferential runs the same scenario through cluster.Core in-process
// and through netcluster over loopback+faultnet and compares the decision
// traces round by round. Outside declared fault windows the rendered
// rounds must match byte for byte; inside them (partition windows, plus
// everything after a message-fault policy starts, since a dropped counter
// response skews the remote machine's simulated time permanently)
// differences are recorded but allowed. The UPS and the serving overlay
// are stripped on both sides — the transport models neither battery
// drain nor request streams.
func RunDifferential(spec Spec, opt NetOptions) (*DiffResult, error) {
	spec = spec.WithoutUPS().WithoutServing()
	inproc, err := RunCluster(spec, Options{})
	if err != nil {
		return nil, fmt.Errorf("scenario: in-process run: %w", err)
	}
	netRun, err := RunNet(spec, opt)
	if err != nil {
		return nil, fmt.Errorf("scenario: networked run: %w", err)
	}
	d := &DiffResult{Spec: spec, InProc: inproc, Net: netRun}
	for r := 0; r < spec.Rounds; r++ {
		inWindow := spec.faultAffected(r)
		if inWindow {
			d.FaultRounds++
		}
		a, b := renderOne(inproc.Trace, r), renderOne(netRun.Trace, r)
		if a == b {
			continue
		}
		if inWindow {
			d.InWindowDiffs++
			continue
		}
		d.Divergences = append(d.Divergences, Divergence{Round: r, Detail: firstDiff(a, b, "in-proc", "net")})
	}
	d.Equivalent = len(d.Divergences) == 0
	return d, nil
}

func renderOne(trace []RoundTrace, r int) string {
	if r >= len(trace) {
		return fmt.Sprintf("r=%d <missing>\n", r)
	}
	var b strings.Builder
	trace[r].render(&b)
	return b.String()
}

// firstDiff returns the first differing line pair, labelled per side.
func firstDiff(a, b, la, lb string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return fmt.Sprintf("%s %q vs %s %q", la, strings.TrimSpace(x), lb, strings.TrimSpace(y))
		}
	}
	return "traces differ"
}
