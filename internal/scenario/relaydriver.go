package scenario

import (
	"fmt"
	"time"

	"repro/internal/invariant"
	"repro/internal/machine"
	"repro/internal/netcluster"
	"repro/internal/netcluster/faultnet"
	"repro/internal/netcluster/wire"
	"repro/internal/units"
)

// RunRelayNet runs the scenario through the hierarchical networked
// stack: the nodes split into opt.Relays contiguous groups, each group
// behind a netcluster.Relay (agent protocol upward, coordinator protocol
// downward), driven by one netcluster.Root that divides the global
// budget across the relays' aggregated demand curves. The returned trace
// has the same canonical shape as RunNet's, reassembled from the relays'
// per-node decisions in global node order — on a fault-free spec it is
// byte-identical to the flat driver's.
//
// Fault injection (partitions, message-fault policies) applies on the
// relay→leaf links through one seeded faultnet per relay; root↔relay
// links are never faulted by this driver, so every round settles exactly
// one decision per relay and the logs stay aligned.
func RunRelayNet(spec Spec, opt NetOptions) (*RunResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.UPS != nil {
		return nil, fmt.Errorf("scenario: networked driver does not model UPS drain; use Spec.WithoutUPS")
	}
	if opt.RPCTimeout == 0 {
		opt.RPCTimeout = 150 * time.Millisecond
	}
	nRelays := opt.Relays
	if nRelays == 0 {
		nRelays = 2
	}
	if nRelays > len(spec.Nodes) {
		nRelays = len(spec.Nodes)
	}
	if nRelays < 1 {
		return nil, fmt.Errorf("scenario: relay count %d must be positive", nRelays)
	}
	fcfg, err := spec.fvsstConfig()
	if err != nil {
		return nil, err
	}
	source, _, err := spec.source()
	if err != nil {
		return nil, err
	}

	agents := make([]*netcluster.Agent, len(spec.Nodes))
	machines := make([]*machine.Machine, len(spec.Nodes))
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()
	for i := range spec.Nodes {
		m, err := spec.newMachine(i)
		if err != nil {
			return nil, err
		}
		machines[i] = m
		a, err := netcluster.NewAgent(netcluster.AgentConfig{Name: fmt.Sprintf("n%d", i), M: m})
		if err != nil {
			return nil, err
		}
		if err := a.Start(); err != nil {
			return nil, err
		}
		agents[i] = a
	}

	// Contiguous grouping: the first (n mod relays) groups take one extra
	// node, so global node order is the concatenation of the groups.
	base, extra := len(spec.Nodes)/nRelays, len(spec.Nodes)%nRelays
	offsets := make([]int, nRelays)
	fabrics := make([]*faultnet.Network, nRelays)
	relays := make([]*netcluster.Relay, nRelays)
	relaySpecs := make([]netcluster.NodeSpec, nRelays)
	defer func() {
		for _, r := range relays {
			if r != nil {
				r.Close()
			}
		}
	}()
	lo := 0
	for j := 0; j < nRelays; j++ {
		size := base
		if j < extra {
			size++
		}
		offsets[j] = lo
		// Per-relay fabrics keep each group's fault streams independent
		// of the other groups' dial order (offset by the group index per
		// the shared seeding convention).
		fabrics[j] = faultnet.New(spec.Seed + int64(1000*(j+1)))
		if opt.Codec == wire.CodecName {
			fabrics[j].SetTransport(wire.Dial)
		}
		var specs []netcluster.NodeSpec
		for i := lo; i < lo+size; i++ {
			specs = append(specs, netcluster.NodeSpec{Name: fmt.Sprintf("n%d", i), Addr: agents[i].Addr()})
		}
		lo += size
		sub, err := netcluster.NewCoordinator(netcluster.Config{
			Name:        fmt.Sprintf("relay%d", j),
			Fvsst:       fcfg,
			Budget:      source.BudgetAt(0),
			MissK:       MissK,
			RPCTimeout:  opt.RPCTimeout,
			Retries:     1,
			BackoffBase: time.Millisecond,
			BackoffMax:  2 * time.Millisecond,
			Seed:        spec.Seed + int64(1000*(j+1)),
			Dialer:      fabrics[j],
			Codec:       opt.Codec,
		}, specs...)
		if err != nil {
			return nil, err
		}
		if err := sub.Connect(); err != nil {
			return nil, err
		}
		relay, err := netcluster.NewRelay(netcluster.RelayConfig{Name: fmt.Sprintf("relay%d", j)}, sub)
		if err != nil {
			sub.Close()
			return nil, err
		}
		if err := relay.Start(); err != nil {
			sub.Close()
			return nil, err
		}
		relays[j] = relay
		relaySpecs[j] = netcluster.NodeSpec{Name: fmt.Sprintf("relay%d", j), Addr: relay.Addr()}
	}

	root, err := netcluster.NewRoot(netcluster.Config{
		Name:        "root",
		Fvsst:       fcfg,
		Budget:      source.BudgetAt(0),
		Source:      source,
		MissK:       MissK,
		RPCTimeout:  opt.RPCTimeout,
		Retries:     1,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Seed:        spec.Seed,
		Codec:       opt.Codec,
	}, relaySpecs...)
	if err != nil {
		return nil, err
	}
	if err := root.Connect(); err != nil {
		return nil, err
	}
	defer root.Close()

	relayOf := make([]int, len(spec.Nodes))
	for j := range offsets {
		hi := len(spec.Nodes)
		if j+1 < nRelays {
			hi = offsets[j+1]
		}
		for i := offsets[j]; i < hi; i++ {
			relayOf[i] = j
		}
	}
	for round := 0; round < spec.Rounds; round++ {
		for i := range spec.Nodes {
			name := fmt.Sprintf("n%d", i)
			fab := fabrics[relayOf[i]]
			if spec.partitioned(i, round) {
				fab.Partition(name)
			} else {
				fab.Heal(name)
			}
			if err := fab.SetPolicy(name, policyAt(spec, i, round)); err != nil {
				return nil, err
			}
		}
		if err := root.RunRound(); err != nil {
			return nil, err
		}
	}

	rootDecs := root.RootDecisions()
	relayDecs := make([][]netcluster.Decision, nRelays)
	for j, r := range relays {
		relayDecs[j] = r.Coordinator().Decisions()
		if len(relayDecs[j]) != spec.Rounds {
			return nil, fmt.Errorf("scenario: relay %d settled %d rounds of %d (root↔relay link faulted?)",
				j, len(relayDecs[j]), spec.Rounds)
		}
	}

	suite := invariant.NewSuite()
	res := &RunResult{Rounds: spec.Rounds}
	table := fcfg.Table
	floor := table.FrequencyAtIndex(0)
	for round, rd := range rootDecs {
		if d := rd.PassDur.Seconds(); d > res.MaxPassLatencyS {
			res.MaxPassLatencyS = d
		}
		rt := RoundTrace{
			Round:   round,
			At:      rd.At,
			Trigger: rd.Trigger,
			BudgetW: rd.Budget.W(),
		}
		// Reassemble the flat ledger from the relays' per-node accounts in
		// global node order: the same values in the same accumulation
		// order the flat coordinator uses, so fault-free traces match bit
		// for bit.
		var live, reserved, charged units.Power
		allAtFloor := true
		for j := range relays {
			d := relayDecs[j][round]
			for i, w := range d.NodeCharged {
				charged += w
				if !d.Acked[i] {
					reserved += w
				}
			}
			for _, a := range d.Assignments {
				live += table.PowerAtIndex(table.IndexOf(a.Actual))
				if a.Actual != floor {
					allAtFloor = false
				}
				rt.Procs = append(rt.Procs, ProcTrace{
					Node:       fmt.Sprintf("n%d", offsets[j]+a.Proc.Node),
					CPU:        a.Proc.CPU,
					Idle:       a.Idle,
					DesiredMHz: a.Desired.MHz(),
					ActualMHz:  a.Actual.MHz(),
					VoltageV:   a.Voltage.V(),
				})
			}
			rt.Degraded = append(rt.Degraded, d.Degraded...)
		}
		rt.LiveW = live.W()
		rt.ReservedW = reserved.W()
		rt.ChargedW = charged.W()
		rt.Met = charged <= rd.Budget
		res.Trace = append(res.Trace, rt)
		suite.Report(invariant.CheckLedger(invariant.Ledger{
			At:             rd.At,
			Budget:         rd.Budget,
			Live:           charged - reserved,
			Reserved:       reserved,
			Charged:        charged,
			Met:            rt.Met,
			AllLiveAtFloor: allAtFloor || policyActive(spec, round),
		})...)
	}
	finishResult(res, suite)
	return res, nil
}
