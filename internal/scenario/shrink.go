package scenario

// FailFunc reports whether a candidate spec still reproduces the failure
// being shrunk.
type FailFunc func(Spec) bool

// Shrink greedily reduces a failing spec to a smaller reproducer: at each
// step it proposes structurally simpler candidates (drop the UPS, the
// serving overlay or one of its classes, a fault window, a budget event,
// a node, a CPU; halve a serving class's clients or the rounds; flatten a
// phased workload) and keeps the first that still fails, until no
// candidate fails or maxAttempts runs are spent. The seed is never
// changed — a shrunk spec replays with the same determinism guarantee as
// the original. Returns the smallest failing spec found and the number
// of candidate runs consumed.
func Shrink(spec Spec, failing FailFunc, maxAttempts int) (Spec, int) {
	attempts := 0
	for {
		improved := false
		for _, cand := range candidates(spec) {
			if attempts >= maxAttempts {
				return spec, attempts
			}
			if cand.Validate() != nil {
				continue
			}
			attempts++
			if failing(cand) {
				spec = cand
				improved = true
				break // restart candidate generation from the smaller spec
			}
		}
		if !improved {
			return spec, attempts
		}
	}
}

// candidates proposes one-step simplifications, cheapest-win first.
func candidates(s Spec) []Spec {
	var out []Spec
	if s.UPS != nil {
		c := clone(s)
		c.UPS = nil
		out = append(out, c)
	}
	if s.Serving != nil {
		c := clone(s)
		c.Serving = nil
		out = append(out, c)
		for i := range s.Serving.Classes {
			if len(s.Serving.Classes) > 1 {
				c := clone(s)
				c.Serving.Classes = append(append([]ServingClassSpec(nil),
					c.Serving.Classes[:i]...), c.Serving.Classes[i+1:]...)
				out = append(out, c)
			}
			if s.Serving.Classes[i].Clients > 1 {
				c := clone(s)
				c.Serving.Classes[i].Clients /= 2
				out = append(out, c)
			}
		}
	}
	for i := range s.Policies {
		c := clone(s)
		c.Policies = append(append([]PolicyWindow(nil), c.Policies[:i]...), c.Policies[i+1:]...)
		out = append(out, c)
	}
	for i := range s.Partitions {
		c := clone(s)
		c.Partitions = append(append([]Window(nil), c.Partitions[:i]...), c.Partitions[i+1:]...)
		out = append(out, c)
	}
	for i := range s.Events {
		c := clone(s)
		c.Events = append(append([]BudgetEvent(nil), c.Events[:i]...), c.Events[i+1:]...)
		out = append(out, c)
	}
	if s.Rounds > 3 {
		out = append(out, truncateRounds(s, s.Rounds/2))
	}
	if s.Rounds > 1 {
		out = append(out, truncateRounds(s, s.Rounds-1))
	}
	if len(s.Nodes) > 1 {
		for i := range s.Nodes {
			out = append(out, dropNode(s, i))
		}
	}
	for i, n := range s.Nodes {
		if len(n.CPUs) > 1 {
			c := clone(s)
			c.Nodes[i].CPUs = c.Nodes[i].CPUs[:len(c.Nodes[i].CPUs)-1]
			out = append(out, c)
		}
	}
	for i, n := range s.Nodes {
		for j, cs := range n.CPUs {
			if cs.Kind == Phased {
				c := clone(s)
				c.Nodes[i].CPUs[j].Kind = MemBound
				out = append(out, c)
			}
		}
	}
	return out
}

// truncateRounds shortens the run, dropping or clamping anything that
// referenced rounds past the new end.
func truncateRounds(s Spec, rounds int) Spec {
	c := clone(s)
	c.Rounds = rounds
	c.Events = nil
	for _, e := range s.Events {
		if e.Round < rounds {
			c.Events = append(c.Events, e)
		}
	}
	c.Partitions = nil
	for _, w := range s.Partitions {
		if w.From >= rounds {
			continue
		}
		if w.To > rounds {
			w.To = rounds
		}
		c.Partitions = append(c.Partitions, w)
	}
	c.Policies = nil
	for _, p := range s.Policies {
		if p.From >= rounds {
			continue
		}
		if p.To > rounds {
			p.To = rounds
		}
		c.Policies = append(c.Policies, p)
	}
	if c.UPS != nil && c.UPS.FailRound >= rounds {
		c.UPS = nil
	}
	return c
}

// dropNode removes node i, rewiring window node indices.
func dropNode(s Spec, i int) Spec {
	c := clone(s)
	c.Nodes = append(append([]NodeSpec(nil), s.Nodes[:i]...), s.Nodes[i+1:]...)
	c.Partitions = nil
	for _, w := range s.Partitions {
		if w.Node == i {
			continue
		}
		if w.Node > i {
			w.Node--
		}
		c.Partitions = append(c.Partitions, w)
	}
	c.Policies = nil
	for _, p := range s.Policies {
		if p.Node == i {
			continue
		}
		if p.Node > i {
			p.Node--
		}
		c.Policies = append(c.Policies, p)
	}
	return c
}

// clone deep-copies the spec's slices so candidate edits never alias.
func clone(s Spec) Spec {
	c := s
	c.Nodes = make([]NodeSpec, len(s.Nodes))
	for i, n := range s.Nodes {
		c.Nodes[i] = NodeSpec{CPUs: append([]CPUSpec(nil), n.CPUs...)}
	}
	c.Events = append([]BudgetEvent(nil), s.Events...)
	c.Partitions = append([]Window(nil), s.Partitions...)
	c.Policies = append([]PolicyWindow(nil), s.Policies...)
	if s.UPS != nil {
		u := *s.UPS
		c.UPS = &u
	}
	if s.Serving != nil {
		c.Serving = &ServingSpec{Classes: append([]ServingClassSpec(nil), s.Serving.Classes...)}
	}
	return c
}
