package scenario

import (
	"reflect"
	"testing"
)

func TestGenerateDeterministicAndValid(t *testing.T) {
	for seed := int64(1); seed <= 150; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not a pure function of the seed", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid spec: %v", seed, err)
		}
	}
}

func TestSpecHelpers(t *testing.T) {
	var s Spec
	for seed := int64(1); ; seed++ {
		s = Generate(seed)
		if len(s.Partitions) > 0 && s.UPS != nil {
			break
		}
	}
	ff := s.FaultFree()
	if len(ff.Partitions) != 0 || len(ff.Policies) != 0 || ff.UPS != nil {
		t.Fatal("FaultFree left faults behind")
	}
	nu := s.WithoutUPS()
	if nu.UPS != nil || len(nu.Partitions) != len(s.Partitions) {
		t.Fatal("WithoutUPS should strip exactly the UPS")
	}
	w := s.Partitions[0]
	if !s.partitioned(w.Node, w.From) || s.partitioned(w.Node, w.To) {
		t.Fatal("partition window must be [From, To)")
	}
	if !s.faultAffected(w.From) {
		t.Fatal("partition round not marked fault-affected")
	}
	if ff.faultAffected(w.From) {
		t.Fatal("fault-free spec has fault-affected rounds")
	}
}

func TestValidateRejections(t *testing.T) {
	base := Generate(1)
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no nodes", func(s *Spec) { s.Nodes = nil }},
		{"empty node", func(s *Spec) { s.Nodes[0].CPUs = nil }},
		{"no rounds", func(s *Spec) { s.Rounds = 0 }},
		{"no periods", func(s *Spec) { s.SchedulePeriods = 0 }},
		{"bad epsilon", func(s *Spec) { s.Epsilon = 1.5 }},
		{"bad budget", func(s *Spec) { s.BudgetW = 0 }},
		{"bad table", func(s *Spec) { s.Table = "nope" }},
		{"bad event", func(s *Spec) { s.Events = []BudgetEvent{{Round: 1, Watts: -3}} }},
		{"bad window", func(s *Spec) { s.Partitions = []Window{{Node: 99, From: 1, To: 2}} }},
		{"inverted window", func(s *Spec) { s.Policies = []PolicyWindow{{Node: 0, From: 3, To: 3, Drop: 0.1}} }},
		{"bad ups", func(s *Spec) { s.UPS = &UPSSpec{FailRound: 1, CapacityJ: -1, RunwaySec: 2} }},
	}
	for _, tc := range cases {
		s := clone(base)
		tc.mut(&s)
		if s.Validate() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestClusterInvariantsClean drives generated scenarios through the
// in-process mirror under the full default suite: zero violations, and a
// byte-identical trace on replay.
func TestClusterInvariantsClean(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		spec := Generate(seed)
		r1, err := RunCluster(spec, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(r1.Violations) != 0 {
			t.Errorf("seed %d: %d violation(s); first: %v", seed, len(r1.Violations), r1.Violations[0])
		}
		r2, err := RunCluster(spec, Options{})
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if r1.Hash != r2.Hash {
			t.Errorf("seed %d: nondeterministic (%s vs %s)", seed, r1.Hash, r2.Hash)
		}
		if r1.Rounds != spec.Rounds || len(r1.Trace) != spec.Rounds {
			t.Errorf("seed %d: trace covers %d/%d rounds", seed, len(r1.Trace), spec.Rounds)
		}
	}
}

func TestRunClusterRejectsInvalidSpec(t *testing.T) {
	if _, err := RunCluster(Spec{}, Options{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := RunCluster(Generate(1), Options{Sabotage: "unknown"}); err == nil {
		t.Fatal("unknown sabotage accepted")
	}
}

// TestSabotageDetected breaks Step 2 (inverted loss comparison) and
// demands the checkers catch it: both the budget-conservation and the
// least-loss contracts must fail, and shrinking must yield a smaller spec
// that still reproduces the failure.
func TestSabotageDetected(t *testing.T) {
	opt := Options{Sabotage: SabotageStepTwoInvert}
	// Find a seed where the sabotage bites (it needs budget pressure).
	var spec Spec
	var got map[string]bool
	for seed := int64(1); seed <= 40; seed++ {
		s := Generate(seed).FaultFree()
		r, err := RunCluster(s, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(r.Violations) == 0 {
			continue
		}
		got = map[string]bool{}
		for _, v := range r.Violations {
			got[v.Checker] = true
		}
		if got["budget-conservation"] && got["step2-least-loss"] {
			spec = s
			break
		}
	}
	if spec.Rounds == 0 {
		t.Fatalf("no seed in 1..40 triggered both checkers under sabotage (got %v)", got)
	}

	fails := func(s Spec) bool {
		r, err := RunCluster(s, opt)
		return err == nil && len(r.Violations) > 0
	}
	shrunk, attempts := Shrink(spec, fails, 300)
	if attempts == 0 {
		t.Fatal("shrink ran no candidates")
	}
	if !fails(shrunk) {
		t.Fatal("shrunk spec no longer reproduces the failure")
	}
	if shrunk.Seed != spec.Seed {
		t.Fatal("shrink changed the seed")
	}
	cpus := func(s Spec) int {
		n := 0
		for _, nd := range s.Nodes {
			n += len(nd.CPUs)
		}
		return n
	}
	if shrunk.Rounds > spec.Rounds || cpus(shrunk) > cpus(spec) {
		t.Fatalf("shrink grew the spec: %d rounds/%d cpus vs %d/%d",
			shrunk.Rounds, cpus(shrunk), spec.Rounds, cpus(spec))
	}
	// The clean scheduler must pass the exact spec the sabotage fails.
	clean, err := RunCluster(shrunk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Violations) != 0 {
		t.Fatalf("clean run of shrunk spec has violations: %v", clean.Violations[0])
	}
}

func TestShrinkMechanics(t *testing.T) {
	spec := Generate(3)
	// An always-failing predicate shrinks to the structural minimum the
	// validator allows: one node, one CPU, one round, no faults.
	shrunk, _ := Shrink(spec, func(Spec) bool { return true }, 10_000)
	if shrunk.Rounds != 1 || len(shrunk.Nodes) != 1 || len(shrunk.Nodes[0].CPUs) != 1 {
		t.Fatalf("always-fail shrink stopped early: %d rounds, %d nodes", shrunk.Rounds, len(shrunk.Nodes))
	}
	if len(shrunk.Partitions) != 0 || len(shrunk.Policies) != 0 || shrunk.UPS != nil || len(shrunk.Events) != 0 {
		t.Fatalf("always-fail shrink kept faults: %+v", shrunk)
	}
	// A never-failing predicate returns the original unchanged.
	same, attempts := Shrink(spec, func(Spec) bool { return false }, 10_000)
	if !reflect.DeepEqual(same, spec) {
		t.Fatal("non-reproducing shrink mutated the spec")
	}
	if attempts == 0 || attempts > 10_000 {
		t.Fatalf("attempts = %d", attempts)
	}
	// The attempt budget is a hard cap.
	_, attempts = Shrink(spec, func(Spec) bool { return true }, 3)
	if attempts > 3 {
		t.Fatalf("attempt cap exceeded: %d", attempts)
	}
}

func TestFarmInvariantsClean(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		spec := GenerateFarm(seed)
		r1, err := RunFarm(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(r1.Violations) != 0 {
			t.Errorf("seed %d: %d violation(s); first: %v", seed, len(r1.Violations), r1.Violations[0])
		}
		r2, err := RunFarm(spec)
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if r1.Hash != r2.Hash {
			t.Errorf("seed %d: nondeterministic (%s vs %s)", seed, r1.Hash, r2.Hash)
		}
	}
	if _, err := RunFarm(FarmSpec{}); err == nil {
		t.Error("empty farm spec accepted")
	}
}

func TestRunNetRejectsUPS(t *testing.T) {
	var spec Spec
	for seed := int64(1); ; seed++ {
		spec = Generate(seed)
		if spec.UPS != nil {
			break
		}
	}
	if _, err := RunNet(spec, NetOptions{}); err == nil {
		t.Fatal("RunNet accepted a UPS failover it cannot model")
	}
}
