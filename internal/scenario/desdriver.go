// Discrete-event scenario driver: the same round loop as RunCluster,
// but a live node with nothing interesting inside the round — no
// serving work in flight, no arrival maturing — crosses it on the
// machine's probe-and-replay fast-forward path instead of five
// hand-stepped quanta. The result is byte-identical to RunCluster
// (RunDESDifferential pins it), so the two engines are interchangeable
// on everything except wall-clock cost.
package scenario

import (
	"fmt"
	"math"
)

// RunClusterDES runs the scenario on the discrete-event engine. Trace,
// hash and violations match RunCluster byte for byte; quiet rounds are
// fast-forwarded in bulk while samplers keep collecting per-quantum
// windows.
func RunClusterDES(spec Spec, opt Options) (*RunResult, error) {
	return runClusterEngine(spec, opt, true)
}

// advanceNodeRound carries one live node across a round's quanta. The
// reference engine (des=false) hand-steps every quantum with the serving
// bracket. The DES engine first asks roundSkippable whether the round
// can touch anything beyond plain machine time; if so it fast-forwards —
// FastForwardQuanta itself falls back to real steps for any quantum that
// is not a certified fixed point, so skipping is always byte-safe.
func advanceNodeRound(n *nodeRun, periods int, des bool) error {
	if des && n.roundSkippable(periods) {
		if err := n.m.FastForwardQuanta(periods, n.sampler.Collect); err != nil {
			return fmt.Errorf("scenario: %s fast-forward: %w", n.name, err)
		}
		if n.st != nil {
			// Keep the emit cadence aligned with the quanta AfterQuantum
			// would have counted.
			n.st.SkipQuanta(periods)
		}
		return nil
	}
	for q := 0; q < periods; q++ {
		if n.st != nil {
			// Bracket the quantum exactly as the experiments do:
			// deliver matured arrivals and start idle CPUs before the
			// step, sweep completions and timeouts after it.
			t := n.m.Now()
			n.feeder.DeliverUpTo(t, n.st)
			n.st.BeforeQuantum(t)
		}
		n.m.Step()
		if n.st != nil {
			n.st.AfterQuantum(n.m.Now())
		}
		if err := n.sampler.Collect(); err != nil {
			return fmt.Errorf("scenario: %s collect: %w", n.name, err)
		}
	}
	return nil
}

// roundSkippable reports whether the whole round is hands-off for this
// node: non-serving nodes always are (the machine layer guards itself),
// serving nodes only while the station is drained and silent and the
// next arrival lands safely past the round's end. The two-quantum
// margin keeps float accumulation on the arrival clock from pulling an
// edge case inside the span.
func (n *nodeRun) roundSkippable(periods int) bool {
	if n.st == nil {
		return true
	}
	now := n.m.Now()
	if !math.IsInf(n.st.NextWakeAt(now), 1) {
		return false
	}
	return n.feeder.NextAt() > now+float64(periods+2)*quantum
}

// DESDiffResult is one quantum-vs-DES differential: the same spec
// through both engines, required byte-identical.
type DESDiffResult struct {
	Spec Spec       `json:"spec"`
	Ref  *RunResult `json:"ref"`
	DES  *RunResult `json:"des"`
	// Divergences lists rounds whose rendered traces differ. Unlike the
	// networked differential there are no fault windows: every
	// difference is a bug in the event engine.
	Divergences []Divergence `json:"divergences,omitempty"`
	Equivalent  bool         `json:"equivalent"`
}

// RunDESDifferential runs the scenario through the quantum reference
// engine and the DES engine and compares round by round. No allowance
// is made for faults, UPS or serving — the DES engine must reproduce
// all of them exactly.
func RunDESDifferential(spec Spec, opt Options) (*DESDiffResult, error) {
	ref, err := RunCluster(spec, opt)
	if err != nil {
		return nil, fmt.Errorf("scenario: quantum run: %w", err)
	}
	des, err := RunClusterDES(spec, opt)
	if err != nil {
		return nil, fmt.Errorf("scenario: DES run: %w", err)
	}
	d := &DESDiffResult{Spec: spec, Ref: ref, DES: des}
	for r := 0; r < spec.Rounds; r++ {
		a, b := renderOne(ref.Trace, r), renderOne(des.Trace, r)
		if a != b {
			d.Divergences = append(d.Divergences, Divergence{Round: r, Detail: firstDiff(a, b, "quantum", "des")})
		}
	}
	d.Equivalent = len(d.Divergences) == 0 && ref.Hash == des.Hash
	return d, nil
}
