package engine

import "fmt"

// Cadence counts dispatch-period ticks and reports when a scheduling pass
// is due — the paper's T = n·t rule (§6): counters are collected every
// dispatch period t and every n-th collection triggers a pass. It is a
// small value type so owners embed it instead of keeping a bare counter
// and a modulo.
type Cadence struct {
	periods int
	ticks   int
}

// NewCadence returns a cadence that is due every n ticks. n must be ≥ 1.
func NewCadence(n int) (Cadence, error) {
	if n < 1 {
		return Cadence{}, fmt.Errorf("engine: cadence periods %d must be ≥ 1", n)
	}
	return Cadence{periods: n}, nil
}

// Tick records one dispatch period and reports whether a scheduling pass
// is due (every n-th tick).
func (c *Cadence) Tick() bool {
	c.ticks++
	return c.ticks%c.periods == 0
}

// Ticks returns how many dispatch periods have elapsed.
func (c *Cadence) Ticks() int { return c.ticks }

// TicksUntilDue returns how many further Ticks until the next due edge
// (1 ≤ result ≤ periods) — the cadence's "next interesting time" on a
// discrete-event timeline.
func (c *Cadence) TicksUntilDue() int {
	return c.periods - c.ticks%c.periods
}

// Periods returns n, the ticks per scheduling pass.
func (c *Cadence) Periods() int { return c.periods }

// Loop couples a simulated clock with a cadence: one Tick advances time by
// a quantum and answers whether a scheduling pass is due at the new time.
// It is the run-loop core shared by the in-process cluster coordinator and
// the networked coordinator's round epoch (which ticks once per period,
// n = 1).
type Loop struct {
	clock   SimClock
	cadence Cadence
}

// NewLoop builds a loop advancing quantum seconds per tick with a pass due
// every periods ticks.
func NewLoop(quantum float64, periods int) (*Loop, error) {
	if quantum <= 0 {
		return nil, fmt.Errorf("engine: loop quantum %v must be positive", quantum)
	}
	cad, err := NewCadence(periods)
	if err != nil {
		return nil, err
	}
	return &Loop{clock: SimClock{quantum: quantum}, cadence: cad}, nil
}

// Tick advances the loop one quantum and reports whether a scheduling pass
// is due.
func (l *Loop) Tick() bool {
	l.clock.Tick()
	return l.cadence.Tick()
}

// Now returns the loop's simulated time in seconds.
func (l *Loop) Now() float64 { return l.clock.Now() }

// Quantum returns the seconds advanced per tick.
func (l *Loop) Quantum() float64 { return l.clock.Quantum() }

// Ticks returns the number of quanta elapsed.
func (l *Loop) Ticks() int { return l.cadence.Ticks() }

// TicksUntilDue returns how many further Ticks until the next scheduling
// pass is due.
func (l *Loop) TicksUntilDue() int { return l.cadence.TicksUntilDue() }

// SkipTicks advances the loop n quanta in one call, erroring rather than
// silently crossing a due edge: a DES driver may only skip strictly up to
// the next pass (n < TicksUntilDue), so no pass can be jumped over. The
// clock still accumulates one addition per quantum (see SimClock.TickN),
// keeping skipped time bit-identical to ticked time.
func (l *Loop) SkipTicks(n int) error {
	if n < 0 {
		return fmt.Errorf("engine: loop: cannot skip %d ticks", n)
	}
	if n >= l.cadence.TicksUntilDue() {
		return fmt.Errorf("engine: loop: skipping %d ticks would cross the due edge in %d", n, l.cadence.TicksUntilDue())
	}
	l.clock.TickN(n)
	l.cadence.ticks += n
	return nil
}
