package engine

import (
	"math"
	"testing"
	"time"
)

func TestSimClockTickAndAdvance(t *testing.T) {
	c := NewSimClock(0.010)
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", c.Now())
	}
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	if got := c.Now(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("100 ticks of 10ms = %v, want 1.0", got)
	}
	c.Advance(0.5)
	if got := c.Now(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("after Advance(0.5): %v, want 1.5", got)
	}
	if c.Quantum() != 0.010 {
		t.Fatalf("quantum %v, want 0.010", c.Quantum())
	}
}

func TestSimClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewSimClock(1).Advance(-1)
}

func TestWallClockMonotone(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("wall clock did not advance: %v then %v", a, b)
	}
}

func TestCadenceDueEveryN(t *testing.T) {
	cad, err := NewCadence(10)
	if err != nil {
		t.Fatal(err)
	}
	due := 0
	for i := 1; i <= 35; i++ {
		if cad.Tick() {
			due++
			if i%10 != 0 {
				t.Fatalf("due at tick %d, want multiples of 10 only", i)
			}
		}
	}
	if due != 3 {
		t.Fatalf("%d passes due over 35 ticks, want 3", due)
	}
	if cad.Ticks() != 35 || cad.Periods() != 10 {
		t.Fatalf("ticks %d periods %d, want 35/10", cad.Ticks(), cad.Periods())
	}
}

func TestCadenceRejectsBadPeriods(t *testing.T) {
	if _, err := NewCadence(0); err == nil {
		t.Fatal("NewCadence(0) accepted")
	}
}

func TestLoopCadenceAndTime(t *testing.T) {
	l, err := NewLoop(0.010, 10)
	if err != nil {
		t.Fatal(err)
	}
	passes := 0
	for i := 0; i < 100; i++ {
		if l.Tick() {
			passes++
		}
	}
	if passes != 10 {
		t.Fatalf("%d passes over 100 quanta at n=10, want 10", passes)
	}
	if got := l.Now(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("loop time %v after 100×10ms, want 1.0", got)
	}
	if l.Ticks() != 100 {
		t.Fatalf("loop ticks %d, want 100", l.Ticks())
	}
}

func TestLoopRejectsBadConfig(t *testing.T) {
	if _, err := NewLoop(0, 10); err == nil {
		t.Fatal("zero quantum accepted")
	}
	if _, err := NewLoop(0.01, 0); err == nil {
		t.Fatal("zero periods accepted")
	}
}

func TestLeaseOverSimClock(t *testing.T) {
	clock := NewSimClock(1)
	lease, err := NewLease(5*time.Second, clock)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clock.Tick()
		if lease.Expire() {
			t.Fatalf("lease expired after %ds of a 5s lease", i+1)
		}
	}
	clock.Tick() // 6s since arm
	if !lease.Expire() {
		t.Fatal("lease did not expire past its duration")
	}
	if !lease.Tripped() {
		t.Fatal("Tripped false after expiry")
	}
	// The expiry edge fires once.
	clock.Tick()
	if lease.Expire() {
		t.Fatal("lease expired twice without a Touch")
	}
	// Touch re-arms.
	lease.Touch()
	if lease.Tripped() {
		t.Fatal("Tripped true right after Touch")
	}
	clock.Advance(4)
	if lease.Expire() {
		t.Fatal("re-armed lease expired early")
	}
	clock.Advance(2)
	if !lease.Expire() {
		t.Fatal("re-armed lease did not expire after its duration")
	}
}

func TestLeaseRejectsBadDuration(t *testing.T) {
	if _, err := NewLease(0, nil); err == nil {
		t.Fatal("zero-duration lease accepted")
	}
}
