// Package engine is the shared run-time substrate of the reproduction:
// the clock abstraction and the sample-every-t / schedule-every-T cadence
// that every control loop in the repo — the single-node fvsst driver, the
// in-process cluster coordinator and the networked netcluster control
// plane — previously kept its own copy of. One implementation of "what
// time is it" and "is a scheduling pass due" keeps the three loops
// behaviourally identical (the paper's §6 cadence: collect every t,
// schedule every T = n·t) and gives the simulated paths one deterministic
// time source.
package engine

import (
	"fmt"
	"time"
)

// Clock is a monotone time source in seconds. The simulated implementation
// is advanced explicitly by its owner; the wall implementation reads the
// OS monotonic clock. Everything in the repo that asks "what time is it"
// does so through this interface so a control loop runs identically under
// simulation and on real hardware.
type Clock interface {
	// Now returns the current time in seconds since the clock's epoch.
	Now() float64
}

// SimClock is the deterministic simulated clock: time advances only when
// the owner says so, one quantum (or an arbitrary dt) at a time. It is the
// single time accumulator behind machine.Machine, cluster.Coordinator and
// the netcluster coordinator epoch. Not safe for concurrent use; the
// simulation loops are single-threaded by design.
type SimClock struct {
	now     float64
	quantum float64
}

// NewSimClock returns a simulated clock at t = 0 whose Tick advances by
// quantum seconds. A zero quantum is allowed for owners that only use
// Advance.
func NewSimClock(quantum float64) *SimClock {
	return &SimClock{quantum: quantum}
}

// Now returns the simulated time in seconds.
func (c *SimClock) Now() float64 { return c.now }

// Quantum returns the per-Tick advance in seconds.
func (c *SimClock) Quantum() float64 { return c.quantum }

// Tick advances the clock by one quantum.
func (c *SimClock) Tick() { c.now += c.quantum }

// TickN advances the clock by n quanta, one addition per quantum. The
// repeated addition is deliberate: Tick's accumulated rounding is
// observable wherever times are compared bit-for-bit, so a fast-forward
// over n quanta must reproduce it exactly rather than adding n·quantum
// once.
func (c *SimClock) TickN(n int) {
	for i := 0; i < n; i++ {
		c.now += c.quantum
	}
}

// ReplayCell exposes the clock's time accumulator so a DES bulk replay
// can fold the per-quantum tick into the same fused loop as the energy
// meters' additions. The caller must add exactly one Quantum() per
// replayed quantum, as Tick would; any other use voids the clock.
func (c *SimClock) ReplayCell() *float64 { return &c.now }

// Advance moves the clock forward by dt seconds. It panics on negative dt
// — simulated time never runs backwards.
func (c *SimClock) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("engine: clock cannot run backwards (dt %v)", dt))
	}
	c.now += dt
}

// WallClock reads the OS monotonic clock, reporting seconds since the
// clock was created. It is the Clock a control loop uses when driving
// real hardware (or the wall-clock watchdog of a network agent).
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a wall clock whose epoch is now.
func NewWallClock() *WallClock {
	return &WallClock{epoch: time.Now()}
}

// Now returns the seconds elapsed since the clock's creation.
func (c *WallClock) Now() float64 { return time.Since(c.epoch).Seconds() }

var (
	_ Clock = (*SimClock)(nil)
	_ Clock = (*WallClock)(nil)
)
