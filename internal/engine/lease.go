package engine

import (
	"fmt"
	"time"
)

// Lease is the watchdog primitive behind the netcluster agent failsafe: a
// deadline that must be re-armed (Touched) before Duration elapses, over
// any Clock. When the lease runs out, Expire reports it exactly once —
// the caller takes its failsafe action on that edge — and Touch re-arms
// it. A SimClock makes lease behaviour unit-testable without sleeping;
// the agent runs it over a WallClock.
//
// Lease is not synchronised; the owner guards it with whatever lock
// protects the rest of its state (the agent's mutex, in practice).
type Lease struct {
	dur     float64
	clock   Clock
	last    float64
	tripped bool
}

// NewLease returns a lease of duration d over clock, armed as of the
// clock's current time. A nil clock selects a fresh WallClock.
func NewLease(d time.Duration, clock Clock) (*Lease, error) {
	if d <= 0 {
		return nil, fmt.Errorf("engine: lease duration %v must be positive", d)
	}
	if clock == nil {
		clock = NewWallClock()
	}
	return &Lease{dur: d.Seconds(), clock: clock, last: clock.Now()}, nil
}

// Touch re-arms the lease: contact happened now.
func (l *Lease) Touch() {
	l.last = l.clock.Now()
	l.tripped = false
}

// Expire reports true exactly once when the lease has run out since the
// last Touch; subsequent calls return false until the lease is re-armed.
func (l *Lease) Expire() bool {
	if l.tripped || l.clock.Now()-l.last <= l.dur {
		return false
	}
	l.tripped = true
	return true
}

// Tripped reports whether the lease has expired since the last Touch.
func (l *Lease) Tripped() bool { return l.tripped }
