package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// recorder collects dispatched (now, tag) pairs.
type recorder struct {
	fired []struct {
		at  float64
		tag uint64
	}
}

func (r *recorder) HandleEvent(now float64, tag uint64) error {
	r.fired = append(r.fired, struct {
		at  float64
		tag uint64
	}{now, tag})
	return nil
}

func TestTimelineOrdersByTime(t *testing.T) {
	tl := NewTimeline()
	rec := &recorder{}
	for _, at := range []float64{3, 1, 2, 0.5} {
		if _, err := tl.Post(at, rec, uint64(at * 10)); err != nil {
			t.Fatal(err)
		}
	}
	if next, ok := tl.NextAt(); !ok || next != 0.5 {
		t.Fatalf("NextAt = %v,%v want 0.5,true", next, ok)
	}
	if err := tl.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1, 2, 3}
	if len(rec.fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(rec.fired), len(want))
	}
	for i, w := range want {
		if rec.fired[i].at != w {
			t.Errorf("event %d fired at %v, want %v", i, rec.fired[i].at, w)
		}
	}
	if tl.Now() != 10 {
		t.Errorf("Now = %v after AdvanceTo(10)", tl.Now())
	}
	if tl.Len() != 0 {
		t.Errorf("Len = %d after draining", tl.Len())
	}
}

// TestTimelineFIFOAmongEqualTimes pins the determinism rule: events
// posted at the same due time fire strictly in posting order, across
// repeated runs.
func TestTimelineFIFOAmongEqualTimes(t *testing.T) {
	run := func() []uint64 {
		tl := NewTimeline()
		rec := &recorder{}
		// Interleave two due times so equal-time groups are non-trivial.
		for i := 0; i < 40; i++ {
			at := 1.0
			if i%3 == 0 {
				at = 2.0
			}
			if _, err := tl.Post(at, rec, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tl.AdvanceTo(2); err != nil {
			t.Fatal(err)
		}
		tags := make([]uint64, len(rec.fired))
		for i, f := range rec.fired {
			tags[i] = f.tag
		}
		return tags
	}
	first := run()
	for trial := 0; trial < 3; trial++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("run %d order %v differs from %v", trial, got, first)
		}
	}
	// Within each due-time group, tags must ascend (posting order).
	prev1, prev2 := -1, -1
	for _, f := range first {
		if f%3 == 0 {
			if int(f) < prev2 {
				t.Fatalf("t=2 group out of posting order: %v", first)
			}
			prev2 = int(f)
		} else {
			if int(f) < prev1 {
				t.Fatalf("t=1 group out of posting order: %v", first)
			}
			prev1 = int(f)
		}
	}
}

func TestTimelineCancel(t *testing.T) {
	tl := NewTimeline()
	rec := &recorder{}
	keep, err := tl.Post(1, rec, 1)
	if err != nil {
		t.Fatal(err)
	}
	drop, err := tl.Post(2, rec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Cancel(drop); err != nil {
		t.Fatal(err)
	}
	if err := tl.Cancel(drop); err == nil {
		t.Fatal("double cancel succeeded")
	}
	if err := tl.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if len(rec.fired) != 1 || rec.fired[0].tag != 1 {
		t.Fatalf("fired %v, want only tag 1", rec.fired)
	}
	// keep's id is stale after firing; a fresh event may reuse its slot
	// and must not be cancellable through the old id.
	if _, err := tl.Post(6, rec, 3); err != nil {
		t.Fatal(err)
	}
	if err := tl.Cancel(keep); err == nil {
		t.Fatal("stale id cancelled a reused slot")
	}
}

func TestTimelinePostValidation(t *testing.T) {
	tl := NewTimeline()
	if err := tl.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Post(4, &recorder{}, 0); err == nil {
		t.Fatal("post in the past succeeded")
	}
	if _, err := tl.Post(6, nil, 0); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := tl.AdvanceTo(4); err == nil {
		t.Fatal("advance into the past succeeded")
	}
}

// TestTimelineHandlerPostsDuringAdvance checks that events posted from a
// handler fire within the same AdvanceTo when due inside it.
func TestTimelineHandlerPostsDuringAdvance(t *testing.T) {
	tl := NewTimeline()
	rec := &recorder{}
	var chain HandlerFunc
	chain = func(now float64, tag uint64) error {
		rec.HandleEvent(now, tag)
		if tag < 3 {
			_, err := tl.Post(now+1, chain, tag+1)
			return err
		}
		return nil
	}
	if _, err := tl.Post(1, chain, 0); err != nil {
		t.Fatal(err)
	}
	if err := tl.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if len(rec.fired) != 4 {
		t.Fatalf("chained dispatch fired %d, want 4", len(rec.fired))
	}
	for i, f := range rec.fired {
		if f.at != float64(i+1) {
			t.Errorf("chain event %d at %v, want %v", i, f.at, float64(i+1))
		}
	}
}

// TestTimelineHeapProperty drives a randomized Post/Cancel/AdvanceTo
// sequence, checking the heap-order invariant and slot back-pointers
// after every mutation, and the dispatch order against a stable-sort
// reference model.
func TestTimelineHeapProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		rec := &recorder{}
		type modelEv struct {
			at  float64
			seq int
			tag uint64
		}
		var model []modelEv
		live := map[uint64]EventID{}
		seq := 0
		var dispatched []modelEv
		for op := 0; op < 300; op++ {
			switch r := rng.Intn(10); {
			case r < 6: // post
				at := tl.Now() + float64(rng.Intn(50))/10
				tag := uint64(seq)
				id, err := tl.Post(at, rec, tag)
				if err != nil {
					t.Fatalf("seed %d: post: %v", seed, err)
				}
				seq++
				model = append(model, modelEv{at: at, seq: seq, tag: tag})
				live[tag] = id
			case r < 8 && len(live) > 0: // cancel a random live event
				var tags []uint64
				for tg := range live {
					tags = append(tags, tg)
				}
				sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
				victim := tags[rng.Intn(len(tags))]
				if err := tl.Cancel(live[victim]); err != nil {
					t.Fatalf("seed %d: cancel: %v", seed, err)
				}
				delete(live, victim)
				for i, m := range model {
					if m.tag == victim {
						model = append(model[:i], model[i+1:]...)
						break
					}
				}
			default: // advance
				to := tl.Now() + float64(rng.Intn(30))/10
				if err := tl.AdvanceTo(to); err != nil {
					t.Fatalf("seed %d: advance: %v", seed, err)
				}
				// Model: stable-sort by (at, seq); everything ≤ to fires.
				sort.SliceStable(model, func(i, j int) bool {
					if model[i].at != model[j].at {
						return model[i].at < model[j].at
					}
					return model[i].seq < model[j].seq
				})
				for len(model) > 0 && model[0].at <= to {
					dispatched = append(dispatched, model[0])
					delete(live, model[0].tag)
					model = model[1:]
				}
			}
			if err := tl.checkHeap(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
		}
		if len(rec.fired) != len(dispatched) {
			t.Fatalf("seed %d: fired %d events, model %d", seed, len(rec.fired), len(dispatched))
		}
		for i := range dispatched {
			if rec.fired[i].tag != dispatched[i].tag {
				t.Fatalf("seed %d: dispatch %d fired tag %d, model tag %d", seed, i, rec.fired[i].tag, dispatched[i].tag)
			}
		}
	}
}

// FuzzTimelineOps feeds arbitrary op bytes through the same model-based
// check as the property test.
func FuzzTimelineOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 20, 200, 15, 0, 5, 100, 30})
	f.Add([]byte{0, 0, 0, 0, 200, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tl := NewTimeline()
		rec := &recorder{}
		type modelEv struct {
			at  float64
			seq int
			tag uint64
		}
		var model []modelEv
		var order []modelEv
		ids := map[uint64]EventID{}
		seq := 0
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			switch {
			case op < 150: // post at now + arg/10
				at := tl.Now() + float64(arg)/10
				tag := uint64(seq)
				id, err := tl.Post(at, rec, tag)
				if err != nil {
					t.Fatalf("post: %v", err)
				}
				seq++
				model = append(model, modelEv{at: at, seq: seq, tag: tag})
				ids[tag] = id
			case op < 200: // cancel tag arg (often stale — must not corrupt)
				if id, ok := ids[uint64(arg)]; ok {
					_ = tl.Cancel(id)
					delete(ids, uint64(arg))
					for k, m := range model {
						if m.tag == uint64(arg) {
							model = append(model[:k], model[k+1:]...)
							break
						}
					}
				}
			default: // advance by arg/10
				to := tl.Now() + float64(arg)/10
				if err := tl.AdvanceTo(to); err != nil {
					t.Fatalf("advance: %v", err)
				}
				sort.SliceStable(model, func(a, b int) bool {
					if model[a].at != model[b].at {
						return model[a].at < model[b].at
					}
					return model[a].seq < model[b].seq
				})
				for len(model) > 0 && model[0].at <= to {
					order = append(order, model[0])
					delete(ids, model[0].tag)
					model = model[1:]
				}
			}
			if err := tl.checkHeap(); err != nil {
				t.Fatalf("after op %d: %v", i/2, err)
			}
		}
		if len(rec.fired) != len(order) {
			t.Fatalf("fired %d, model %d", len(rec.fired), len(order))
		}
		for i := range order {
			if rec.fired[i].tag != order[i].tag {
				t.Fatalf("dispatch %d: tag %d, model %d", i, rec.fired[i].tag, order[i].tag)
			}
		}
	})
}

// reposter is the steady-state dispatch shape: every fire reposts itself
// one interval ahead.
type reposter struct {
	tl       *Timeline
	interval float64
	fired    int
}

func (r *reposter) HandleEvent(now float64, tag uint64) error {
	r.fired++
	_, err := r.tl.Post(now+r.interval, r, tag)
	return err
}

// TestTimelineDispatchZeroAlloc pins the steady-state event-dispatch
// path at 0 allocs/op: once the heap and free lists are warm, a
// fire-and-repost cycle allocates nothing.
func TestTimelineDispatchZeroAlloc(t *testing.T) {
	tl := NewTimeline()
	rep := &reposter{tl: tl, interval: 0.25}
	for i := 0; i < 64; i++ {
		if _, err := tl.Post(float64(i)*0.01, rep, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the heap, slot table and free list.
	if err := tl.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	now := tl.Now()
	allocs := testing.AllocsPerRun(200, func() {
		now += 0.25
		if err := tl.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state dispatch allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkTimelineDispatch(b *testing.B) {
	tl := NewTimeline()
	rep := &reposter{tl: tl, interval: 0.25}
	for i := 0; i < 64; i++ {
		if _, err := tl.Post(float64(i)*0.01, rep, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tl.AdvanceTo(10); err != nil {
		b.Fatal(err)
	}
	now := tl.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 0.25
		if err := tl.AdvanceTo(now); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMetronomeMatchesSteppedCadence pins the bit-identity contract with
// tick-counting drivers: a driver stepping now = float64(step)·dt with a
// Cadence due every n steps sees the metronome due at exactly the same
// steps, and the metronome's event times equal the driver's float64
// step-derived times bit for bit.
func TestMetronomeMatchesSteppedCadence(t *testing.T) {
	const dt = 0.05
	const every = 7
	tl := NewTimeline()
	met, err := NewMetronome(tl, dt, every)
	if err != nil {
		t.Fatal(err)
	}
	cad, err := NewCadence(every)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 400; step++ {
		now := float64(step) * dt
		if err := tl.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
		wantDue := cad.Tick()
		if got := met.TakeDue(); got != wantDue {
			t.Fatalf("step %d: metronome due %v, cadence due %v", step, got, wantDue)
		}
	}
	if met.Fired() != 400/every {
		t.Fatalf("fired %d, want %d", met.Fired(), 400/every)
	}
}

func TestLoopSkipTicks(t *testing.T) {
	l, err := NewLoop(0.010, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Reference loop ticked one quantum at a time.
	ref, err := NewLoop(0.010, 5)
	if err != nil {
		t.Fatal(err)
	}
	l.Tick() // ticks=1, due in 4
	ref.Tick()
	if got := l.TicksUntilDue(); got != 4 {
		t.Fatalf("TicksUntilDue = %d, want 4", got)
	}
	if err := l.SkipTicks(4); err == nil {
		t.Fatal("skip across the due edge succeeded")
	}
	if err := l.SkipTicks(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if ref.Tick() {
			t.Fatal("reference due inside skip span")
		}
	}
	if l.Now() != ref.Now() {
		t.Fatalf("skipped clock %v != ticked clock %v", l.Now(), ref.Now())
	}
	if !l.Tick() {
		t.Fatal("pass not due after skipping to the edge")
	}
	if !ref.Tick() {
		t.Fatal("reference pass not due")
	}
	if l.Now() != ref.Now() || l.Ticks() != ref.Ticks() {
		t.Fatalf("loop state (%v, %d) != reference (%v, %d)", l.Now(), l.Ticks(), ref.Now(), ref.Ticks())
	}
}
