package engine

import (
	"fmt"
	"math"
)

// Handler consumes a timeline event when its due time arrives. now is the
// timeline time at dispatch (the event's due time), tag is the opaque
// value the poster attached. A handler may post new events (at or after
// now) and cancel others from inside the callback; returning a non-nil
// error aborts the enclosing AdvanceTo immediately.
type Handler interface {
	HandleEvent(now float64, tag uint64) error
}

// HandlerFunc adapts a plain function to Handler.
type HandlerFunc func(now float64, tag uint64) error

// HandleEvent implements Handler.
func (f HandlerFunc) HandleEvent(now float64, tag uint64) error { return f(now, tag) }

// EventID names a posted event for cancellation. It encodes the event's
// slot and a generation stamp, so an id kept after its event fired (or
// was cancelled) is detected as stale rather than cancelling whatever
// event happens to reuse the slot. The zero EventID is never valid.
type EventID uint64

func (id EventID) slot() uint32 { return uint32(id >> 32) }
func (id EventID) gen() uint32  { return uint32(id) }

// tev is one pending timeline event.
type tev struct {
	at  float64
	seq uint64 // global post order, the FIFO tie-break among equal times
	id  EventID
	tag uint64
	h   Handler
}

// slotRec is the slot table entry behind an EventID: the current
// generation and, while the event is queued, its heap index.
type slotRec struct {
	gen uint32
	idx int32 // heap index; -1 when the slot is free
}

// Timeline is the discrete-event scheduler at the core of the DES engine:
// a deterministic min-heap of events ordered by (due time, post order).
// Subsystems post their *next interesting time* — next scheduling pass,
// next arrival burst, next budget edge — and AdvanceTo dispatches
// everything due, in a total order that depends only on the sequence of
// Post/Cancel calls, never on map iteration or pointer values. Equal-time
// events fire in the order they were posted (stable FIFO).
//
// The steady-state dispatch path allocates nothing: fired events return
// their heap slot and slot-table entry to free lists, so a workload that
// reposts as it fires (the common recurring-timer shape) reaches a fixed
// heap capacity and stays there. Not safe for concurrent use; the
// simulation loops are single-threaded by design.
type Timeline struct {
	now   float64
	seq   uint64
	heap  []tev
	slots []slotRec
	free  []uint32
}

// NewTimeline returns an empty timeline at t = 0.
func NewTimeline() *Timeline { return &Timeline{} }

// Now returns the timeline's current time in seconds.
func (t *Timeline) Now() float64 { return t.now }

// Len returns the number of pending events.
func (t *Timeline) Len() int { return len(t.heap) }

// NextAt returns the due time of the earliest pending event.
func (t *Timeline) NextAt() (float64, bool) {
	if len(t.heap) == 0 {
		return 0, false
	}
	return t.heap[0].at, true
}

// Post schedules h to run at time at (≥ Now) with the given tag and
// returns an id usable with Cancel until the event fires.
func (t *Timeline) Post(at float64, h Handler, tag uint64) (EventID, error) {
	if h == nil {
		return 0, fmt.Errorf("engine: timeline: nil handler")
	}
	if math.IsNaN(at) || at < t.now {
		return 0, fmt.Errorf("engine: timeline: post at %v is before now %v", at, t.now)
	}
	var s uint32
	if n := len(t.free); n > 0 {
		s = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.slots = append(t.slots, slotRec{idx: -1})
		s = uint32(len(t.slots) - 1)
	}
	t.seq++
	id := EventID(uint64(s)<<32 | uint64(t.slots[s].gen))
	t.heap = append(t.heap, tev{at: at, seq: t.seq, id: id, tag: tag, h: h})
	t.slots[s].idx = int32(len(t.heap) - 1)
	t.up(len(t.heap) - 1)
	return id, nil
}

// Cancel removes a pending event. It returns an error when the id is
// stale — the event already fired or was cancelled (its slot may since
// have been reused by a different event, which stays untouched).
func (t *Timeline) Cancel(id EventID) error {
	s := id.slot()
	if int(s) >= len(t.slots) || t.slots[s].gen != id.gen() || t.slots[s].idx < 0 {
		return fmt.Errorf("engine: timeline: cancel of fired, cancelled or unknown event %#x", uint64(id))
	}
	t.removeAt(int(t.slots[s].idx))
	return nil
}

// AdvanceTo moves timeline time to at, dispatching every event due ≤ at
// in (time, post-order) sequence. Events posted by handlers during the
// advance are dispatched in the same call if they fall due within it. A
// handler error aborts immediately, leaving time at the failed event.
func (t *Timeline) AdvanceTo(at float64) error {
	if math.IsNaN(at) || at < t.now {
		return fmt.Errorf("engine: timeline: advance to %v is before now %v", at, t.now)
	}
	for len(t.heap) > 0 {
		e := t.heap[0]
		if e.at > at {
			break
		}
		t.removeAt(0)
		if e.at > t.now {
			t.now = e.at
		}
		if err := e.h.HandleEvent(t.now, e.tag); err != nil {
			return err
		}
	}
	t.now = at
	return nil
}

// removeAt deletes heap entry i and returns its slot to the free list,
// bumping the slot generation so outstanding EventIDs go stale.
func (t *Timeline) removeAt(i int) {
	s := t.heap[i].id.slot()
	t.slots[s].gen++
	t.slots[s].idx = -1
	t.free = append(t.free, s)
	last := len(t.heap) - 1
	if i != last {
		t.heap[i] = t.heap[last]
		t.slots[t.heap[i].id.slot()].idx = int32(i)
	}
	t.heap = t.heap[:last]
	if i < last {
		if !t.up(i) {
			t.down(i)
		}
	}
}

// less orders the heap by due time, post order breaking ties — the
// determinism rule: equal-time events fire strictly in posting order.
func (t *Timeline) less(i, j int) bool {
	a, b := &t.heap[i], &t.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (t *Timeline) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.slots[t.heap[i].id.slot()].idx = int32(i)
	t.slots[t.heap[j].id.slot()].idx = int32(j)
}

func (t *Timeline) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			break
		}
		t.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (t *Timeline) down(i int) {
	n := len(t.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		child := l
		if r := l + 1; r < n && t.less(r, l) {
			child = r
		}
		if !t.less(child, i) {
			return
		}
		t.swap(i, child)
		i = child
	}
}

// checkHeap verifies the heap-order invariant and the slot table's
// back-pointers; the property tests call it after every mutation.
func (t *Timeline) checkHeap() error {
	for i := 1; i < len(t.heap); i++ {
		parent := (i - 1) / 2
		if t.less(i, parent) {
			return fmt.Errorf("engine: timeline: heap order violated at %d (parent %d)", i, parent)
		}
	}
	queued := 0
	for s, rec := range t.slots {
		if rec.idx < 0 {
			continue
		}
		queued++
		if int(rec.idx) >= len(t.heap) || t.heap[rec.idx].id.slot() != uint32(s) {
			return fmt.Errorf("engine: timeline: slot %d back-pointer broken", s)
		}
	}
	if queued != len(t.heap) {
		return fmt.Errorf("engine: timeline: %d live slots for %d heap entries", queued, len(t.heap))
	}
	return nil
}

// Metronome is a recurring timer on a timeline: it fires every `every`
// intervals of `interval` seconds, starting at every·interval. Fire times
// are derived by multiplication — the k-th fire is exactly
// float64(k·every)·interval — never by accumulation, so they bit-match
// drivers that compute step times as float64(step)·dt. It replaces the
// hand-rolled tick-counting Cadence in timeline-driven loops: the farm
// allocator's periodic reallocation pass posts here instead of counting
// polls. TakeDue consumes the fired flag, preserving the old accumulator's
// drop-on-preempt semantics (a pass triggered by something else between
// fires does not defer the timer).
type Metronome struct {
	tl       *Timeline
	interval float64
	every    int
	fired    int
	due      bool
}

// NewMetronome posts the first fire at every·interval on tl.
func NewMetronome(tl *Timeline, interval float64, every int) (*Metronome, error) {
	if tl == nil {
		return nil, fmt.Errorf("engine: metronome: nil timeline")
	}
	if !(interval > 0) {
		return nil, fmt.Errorf("engine: metronome: interval %v must be positive", interval)
	}
	if every < 1 {
		return nil, fmt.Errorf("engine: metronome: every %d must be ≥ 1", every)
	}
	m := &Metronome{tl: tl, interval: interval, every: every}
	if _, err := tl.Post(float64(every)*interval, m, 0); err != nil {
		return nil, err
	}
	return m, nil
}

// HandleEvent implements Handler: latch the due flag and repost the next
// fire at its multiplicative time.
func (m *Metronome) HandleEvent(float64, uint64) error {
	m.fired++
	m.due = true
	_, err := m.tl.Post(float64((m.fired+1)*m.every)*m.interval, m, 0)
	return err
}

// TakeDue reports whether the metronome fired since the last TakeDue and
// clears the flag.
func (m *Metronome) TakeDue() bool {
	d := m.due
	m.due = false
	return d
}

// Fired returns how many times the metronome has fired.
func (m *Metronome) Fired() int { return m.fired }
