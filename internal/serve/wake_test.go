package serve

import (
	"math"
	"testing"

	"repro/internal/obs"
)

func TestStationNextWakeAt(t *testing.T) {
	m := quietMachine(t, 2)
	st, err := NewStation(m, Config{Classes: []Class{webClass()}, Clients: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.NextWakeAt(0.5); !math.IsInf(got, 1) {
		t.Fatalf("drained station NextWakeAt = %v, want +Inf", got)
	}
	// Work in flight pins per-quantum processing.
	st.Offer(0.5, 0, 0)
	if got := st.NextWakeAt(0.5); got != 0.5 {
		t.Fatalf("backlogged station NextWakeAt = %v, want now", got)
	}
	// A trace sink pins it too, even when drained.
	rec := obs.NewFlightRecorder(8, 8)
	st2, err := NewStation(quietMachine(t, 2), Config{
		Classes: []Class{webClass()}, Clients: 1, Seed: 3, Sink: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.NextWakeAt(1.0); got != 1.0 {
		t.Fatalf("sink-attached station NextWakeAt = %v, want now", got)
	}
}

func TestStationSkipQuantaKeepsEmitCadence(t *testing.T) {
	m := quietMachine(t, 1)
	st, err := NewStation(m, Config{Classes: []Class{webClass()}, Clients: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := st.quanta
	st.SkipQuanta(7)
	if st.quanta != before+7 {
		t.Fatalf("quanta = %d, want %d", st.quanta, before+7)
	}
}

func TestFeederNextAt(t *testing.T) {
	var empty Feeder
	if got := empty.NextAt(); !math.IsInf(got, 1) {
		t.Fatalf("empty feeder NextAt = %v, want +Inf", got)
	}
	spec, err := ParseArrivalSpec("poisson:50")
	if err != nil {
		t.Fatal(err)
	}
	var f Feeder
	for cl := 0; cl < 2; cl++ {
		stm, err := spec.NewStream(200 + int64(cl))
		if err != nil {
			t.Fatal(err)
		}
		f.Add(0, cl, stm)
	}
	next := f.NextAt()
	if math.IsInf(next, 1) || next <= 0 {
		t.Fatalf("NextAt = %v, want a finite future arrival", next)
	}
	// It must be the minimum over streams and advance once consumed.
	m := quietMachine(t, 1)
	st, err := NewStation(m, Config{Classes: []Class{webClass()}, Clients: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	f.DeliverUpTo(next, st)
	if got := f.NextAt(); got <= next {
		t.Fatalf("NextAt after delivery = %v, want > %v", got, next)
	}
}

func TestTimelineWaker(t *testing.T) {
	m := quietMachine(t, 1)
	st, err := NewStation(m, Config{Classes: []Class{webClass()}, Clients: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseArrivalSpec("poisson:50")
	if err != nil {
		t.Fatal(err)
	}
	stm, err := spec.NewStream(7)
	if err != nil {
		t.Fatal(err)
	}
	var f Feeder
	f.Add(0, 0, stm)
	w := TimelineWaker{St: st, Feed: &f}
	// Drained station: the wake bound is the next arrival.
	if got, want := w.NextWakeAt(0), f.NextAt(); got != want {
		t.Fatalf("NextWakeAt = %v, want next arrival %v", got, want)
	}
	// Backlog wins once work is in flight.
	st.Offer(0, 0, 0)
	if got := w.NextWakeAt(0); got != 0 {
		t.Fatalf("NextWakeAt with backlog = %v, want now", got)
	}
	before := st.quanta
	w.SkipQuanta(3)
	if st.quanta != before+3 {
		t.Fatalf("SkipQuanta did not reach the station")
	}
}
