package serve

import (
	"math"
	"testing"
)

// FuzzParseArrivalSpec: the parser must never panic, and every accepted
// spec must validate, round-trip through its canonical rendering, yield
// a working gap distribution, and produce finite strictly-ordered
// arrivals from a stream.
func FuzzParseArrivalSpec(f *testing.F) {
	f.Add("poisson:30")
	f.Add("gamma:30,cv=2")
	f.Add("gamma:12.5,cv=0.5,depth=0.8,period=4")
	f.Add("weibull:7,cv=0.5,depth=0.3,period=10,phase=0.25")
	f.Add("weibull:1e6,cv=3")
	f.Add("poisson:0.001")
	f.Add("gamma:30,cv=2,depth=0.999,period=1e7")
	f.Add("bogus:1")
	f.Add("poisson:30,cv=1")
	f.Add(":,=")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseArrivalSpec(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", s, verr)
		}
		back, err := ParseArrivalSpec(spec.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not parse: %v", spec.String(), s, err)
		}
		if back != spec {
			t.Fatalf("round-trip %q → %+v ≠ %+v", s, back, spec)
		}
		if _, err := spec.Gaps(); err != nil {
			t.Fatalf("accepted spec %q has no gap distribution: %v", s, err)
		}
		st, err := spec.NewStream(1)
		if err != nil {
			t.Fatalf("accepted spec %q has no stream: %v", s, err)
		}
		prev := 0.0
		for i := 0; i < 50; i++ {
			at := st.Pop()
			if math.IsNaN(at) || math.IsInf(at, 0) || at < prev {
				t.Fatalf("spec %q arrival %d = %v after %v", s, i, at, prev)
			}
			prev = at
		}
	})
}
