package serve

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// latencyBounds are the shared latency-histogram bucket bounds in
// seconds: log-spaced from 1 ms to 60 s, fine enough that interpolated
// p99s are meaningful at SLO scales of tens to hundreds of ms.
var latencyBounds = []float64{
	0.001, 0.002, 0.003, 0.005, 0.0075,
	0.010, 0.015, 0.020, 0.030, 0.050, 0.075,
	0.10, 0.15, 0.20, 0.30, 0.50, 0.75,
	1, 1.5, 2, 3, 5, 10, 30, 60,
}

// classScore accumulates one class's counters and latency distribution.
type classScore struct {
	name      string
	slo       float64
	hist      *stats.BucketHistogram
	offered   uint64
	admitted  uint64
	rejected  uint64
	dropped   uint64
	timedOut  uint64
	completed uint64
	sloOK     uint64
}

func (c *classScore) quantile(p float64) float64 {
	if c.hist.Count() == 0 {
		return 0
	}
	return c.hist.Quantile(p)
}

// clientScore accumulates one client's goodput for the fairness index.
type clientScore struct {
	completed uint64
	sloOK     uint64
	timedOut  uint64
}

// Scoreboard is the station's scoring account: per-class latency
// histograms and outcome counters plus per-client goodput. Everything
// is keyed to simulated time, so equal seeds give byte-equal summaries.
type Scoreboard struct {
	classes []classScore
	clients []clientScore
}

func newScoreboard(classes []Class, clients int) *Scoreboard {
	sb := &Scoreboard{clients: make([]clientScore, clients)}
	for _, c := range classes {
		sb.classes = append(sb.classes, classScore{
			name: c.Name,
			slo:  c.SLO,
			hist: stats.MustBucketHistogram(latencyBounds...),
		})
	}
	return sb
}

func (sb *Scoreboard) offered(class int)  { sb.classes[class].offered++ }
func (sb *Scoreboard) admitted(class int) { sb.classes[class].admitted++ }
func (sb *Scoreboard) rejected(class int) { sb.classes[class].rejected++ }
func (sb *Scoreboard) dropped(class int)  { sb.classes[class].dropped++ }

func (sb *Scoreboard) timedOut(class, client int) {
	sb.classes[class].timedOut++
	sb.clients[client].timedOut++
}

func (sb *Scoreboard) completed(class, client int, latency float64) {
	row := &sb.classes[class]
	row.completed++
	row.hist.Observe(latency)
	cl := &sb.clients[client]
	cl.completed++
	if latency <= row.slo {
		row.sloOK++
		cl.sloOK++
	}
}

// ClassSummary is one class's frozen score.
type ClassSummary struct {
	Class     string  `json:"class"`
	Offered   uint64  `json:"offered"`
	Admitted  uint64  `json:"admitted"`
	Rejected  uint64  `json:"rejected,omitempty"`
	Dropped   uint64  `json:"dropped,omitempty"`
	TimedOut  uint64  `json:"timed_out,omitempty"`
	Completed uint64  `json:"completed"`
	SLOOk     uint64  `json:"slo_ok"`
	P50S      float64 `json:"p50_s"`
	P95S      float64 `json:"p95_s"`
	P99S      float64 `json:"p99_s"`
	// Attainment is SLOOk/(Completed+TimedOut): the fraction of admitted,
	// resolved requests that met their SLO. Rejected and dropped requests
	// are admission outcomes, accounted separately.
	Attainment float64 `json:"attainment"`
	// GoodputRPS is SLO-meeting completions per second of serving time.
	GoodputRPS float64 `json:"goodput_rps"`
}

// Summary is a station's frozen score.
type Summary struct {
	Classes []ClassSummary `json:"classes"`
	// Jain is Jain's fairness index over per-client SLO-meeting
	// completions: (Σx)²/(n·Σx²), 1 when perfectly fair, →1/n when one
	// client takes everything. 1 when no client completed anything.
	Jain float64 `json:"jain"`
}

// Summarize freezes the account; elapsed (seconds of serving time)
// converts counts to goodput.
func (sb *Scoreboard) Summarize(elapsed float64) Summary {
	var s Summary
	for i := range sb.classes {
		row := &sb.classes[i]
		cs := ClassSummary{
			Class:     row.name,
			Offered:   row.offered,
			Admitted:  row.admitted,
			Rejected:  row.rejected,
			Dropped:   row.dropped,
			TimedOut:  row.timedOut,
			Completed: row.completed,
			SLOOk:     row.sloOK,
			P50S:      row.quantile(0.50),
			P95S:      row.quantile(0.95),
			P99S:      row.quantile(0.99),
		}
		if resolved := row.completed + row.timedOut; resolved > 0 {
			cs.Attainment = float64(row.sloOK) / float64(resolved)
		}
		if elapsed > 0 {
			cs.GoodputRPS = float64(row.sloOK) / elapsed
		}
		s.Classes = append(s.Classes, cs)
	}
	s.Jain = sb.JainIndex()
	return s
}

// JainIndex returns Jain's fairness index over per-client SLO-meeting
// completions.
func (sb *Scoreboard) JainIndex() float64 {
	var sum, sumSq float64
	n := 0
	for i := range sb.clients {
		x := float64(sb.clients[i].sloOK)
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// Render writes the summary as a fixed-precision text block, one line
// per class plus the fairness line — deterministic for equal accounts.
func (s Summary) Render() string {
	var b strings.Builder
	for _, c := range s.Classes {
		fmt.Fprintf(&b, "%-10s offered %6d admitted %6d completed %6d slo-ok %6d (%6.2f%%)  rej %5d drop %5d tmo %5d  p50 %7.4fs p95 %7.4fs p99 %7.4fs  goodput %8.2f/s\n",
			c.Class, c.Offered, c.Admitted, c.Completed, c.SLOOk, 100*c.Attainment,
			c.Rejected, c.Dropped, c.TimedOut, c.P50S, c.P95S, c.P99S, c.GoodputRPS)
	}
	fmt.Fprintf(&b, "jain fairness %.4f\n", s.Jain)
	return b.String()
}
