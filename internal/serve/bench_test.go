package serve

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memhier"
)

// benchWorld builds a steadily loaded two-class station: Poisson traffic
// at ~60% utilisation of a 2-CPU machine, pre-run until warm.
func benchWorld(tb testing.TB) (*machine.Machine, *Station, *Feeder) {
	cfg := machine.P630Config()
	cfg.NumCPUs = 2
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	cfg.Seed = 21
	m, err := machine.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	st, err := NewStation(m, Config{
		Classes: []Class{
			{Name: "web", Phase: PhaseProfile(1.3, 0.002), MeanInstr: 2e6, SizeCV: 1, SLO: 0.060, Timeout: 0.5, Priority: 1, QueueCap: 512},
			{Name: "batch", Phase: PhaseProfile(1.1, 0.004), MeanInstr: 8e6, SizeCV: 1, SLO: 0.400, QueueCap: 512, AdmitRate: 200, AdmitBurst: 50},
		},
		Clients: 4,
		Seed:    38,
	})
	if err != nil {
		tb.Fatal(err)
	}
	feeder := &Feeder{}
	for cl := 0; cl < 4; cl++ {
		spec, err := ParseArrivalSpec("gamma:120,cv=1.5")
		if err != nil {
			tb.Fatal(err)
		}
		stm, err := spec.NewStream(300 + int64(cl))
		if err != nil {
			tb.Fatal(err)
		}
		feeder.Add(cl%2, cl, stm)
	}
	// Warm up: fill queues, histograms and rings to steady state.
	for q := 0; q < 200; q++ {
		feeder.DeliverUpTo(m.Now(), st)
		st.BeforeQuantum(m.Now())
		m.Step()
		st.AfterQuantum(m.Now())
	}
	return m, st, feeder
}

// serveQuantum is one steady-state iteration: deliver matured arrivals,
// start idle CPUs, run the machine one quantum, expire timeouts. This is
// the entire per-request hot path (admission, queueing, dispatch via the
// completion hook, latency scoring).
func serveQuantum(m *machine.Machine, st *Station, feeder *Feeder) {
	feeder.DeliverUpTo(m.Now(), st)
	st.BeforeQuantum(m.Now())
	m.Step()
	st.AfterQuantum(m.Now())
}

// TestServeSteadyStateZeroAlloc pins the contract the servebench CI
// guard also enforces: the steady-state serving path allocates nothing.
func TestServeSteadyStateZeroAlloc(t *testing.T) {
	m, st, feeder := benchWorld(t)
	allocs := testing.AllocsPerRun(500, func() {
		serveQuantum(m, st, feeder)
	})
	if allocs != 0 {
		t.Errorf("steady-state serve quantum allocates %v allocs/op, want 0", allocs)
	}
	if st.Scoreboard().Summarize(m.Now()).Classes[0].Completed == 0 {
		t.Fatal("benchmark world served nothing — hot path not exercised")
	}
}

// BenchmarkServeQuantum measures the steady-state serving quantum.
func BenchmarkServeQuantum(b *testing.B) {
	m, st, feeder := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveQuantum(m, st, feeder)
	}
}

// BenchmarkOffer measures pure admission (token bucket + size draw +
// queue push) by refilling a drained queue each batch.
func BenchmarkOffer(b *testing.B) {
	m, st, _ := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	now := m.Now()
	for i := 0; i < b.N; i++ {
		st.Offer(now, 0, 0)
		if st.QueueLen(0) >= 256 {
			b.StopTimer()
			for st.QueueLen(0) > 0 {
				st.BeforeQuantum(m.Now())
				m.Step()
				st.AfterQuantum(m.Now())
			}
			now = m.Now()
			b.StartTimer()
		}
	}
}
