package serve

import (
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/obs"
)

// quietMachine is a deterministic (noise-free) p630 for serving tests.
func quietMachine(t *testing.T, cpus int) *machine.Machine {
	t.Helper()
	cfg := machine.P630Config()
	cfg.NumCPUs = cpus
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	cfg.Seed = 11
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func webClass() Class {
	return Class{
		Name:      "web",
		Phase:     PhaseProfile(1.3, 0.002),
		MeanInstr: 2e6,
		SLO:       0.060,
		Timeout:   0.5,
		Priority:  1,
		QueueCap:  256,
	}
}

func batchClass() Class {
	return Class{
		Name:      "batch",
		Phase:     PhaseProfile(1.1, 0.004),
		MeanInstr: 8e6,
		SizeCV:    1,
		SLO:       0.400,
		QueueCap:  128,
	}
}

// checkConservation asserts the queue-conservation identities.
func checkConservation(t *testing.T, st *Station, at float64) {
	t.Helper()
	a := st.Account()
	v := invariant.CheckQueueConservation(invariant.QueueLedger{
		At: at, Offered: a.Offered, Admitted: a.Admitted, Rejected: a.Rejected,
		Dropped: a.Dropped, Completed: a.Completed, TimedOut: a.TimedOut,
		Queued: a.Queued, InService: a.InService,
	})
	for _, x := range v {
		t.Error(x)
	}
}

// TestStationServesAndScores drives a two-class station open-loop and
// checks completions, latency scoring and conservation every quantum.
func TestStationServesAndScores(t *testing.T) {
	m := quietMachine(t, 2)
	st, err := NewStation(m, Config{Classes: []Class{webClass(), batchClass()}, Clients: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseArrivalSpec("poisson:120")
	if err != nil {
		t.Fatal(err)
	}
	var feeder Feeder
	for cl := 0; cl < 3; cl++ {
		stm, err := spec.NewStream(100 + int64(cl))
		if err != nil {
			t.Fatal(err)
		}
		feeder.Add(cl%2, cl, stm)
	}
	for q := 0; q < 300; q++ {
		now := m.Now()
		feeder.DeliverUpTo(now, st)
		st.BeforeQuantum(now)
		m.Step()
		st.AfterQuantum(m.Now())
		checkConservation(t, st, m.Now())
	}
	s := st.Scoreboard().Summarize(m.Now())
	if len(s.Classes) != 2 {
		t.Fatalf("classes = %d", len(s.Classes))
	}
	web := s.Classes[0]
	if web.Completed == 0 {
		t.Fatal("no web completions")
	}
	if web.P50S <= 0 || web.P99S < web.P95S || web.P95S < web.P50S {
		t.Errorf("latency percentiles not ordered: %+v", web)
	}
	if s.Jain <= 0 || s.Jain > 1 {
		t.Errorf("jain = %v", s.Jain)
	}
	if !strings.Contains(s.Render(), "web") {
		t.Error("render missing class row")
	}
	// At nominal frequency with modest load the web SLO should be met
	// nearly always.
	if web.Attainment < 0.95 {
		t.Errorf("web attainment = %v at nominal frequency", web.Attainment)
	}
}

// TestStationDeterministic: same seeds → byte-identical summaries.
func TestStationDeterministic(t *testing.T) {
	run := func() string {
		m := quietMachine(t, 2)
		st, err := NewStation(m, Config{Classes: []Class{webClass(), batchClass()}, Clients: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := ParseArrivalSpec("gamma:90,cv=2,depth=0.8,period=1.5")
		var feeder Feeder
		for cl := 0; cl < 2; cl++ {
			stm, err := spec.NewStream(200 + int64(cl))
			if err != nil {
				t.Fatal(err)
			}
			feeder.Add(cl, cl, stm)
		}
		for q := 0; q < 200; q++ {
			feeder.DeliverUpTo(m.Now(), st)
			st.BeforeQuantum(m.Now())
			m.Step()
			st.AfterQuantum(m.Now())
		}
		return st.Scoreboard().Summarize(m.Now()).Render()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("summaries differ:\n%s\n---\n%s", a, b)
	}
}

// TestStationPriorityAndDrops: a saturated station serves the
// high-priority class preferentially and drops on the bounded queue.
func TestStationPriorityAndDrops(t *testing.T) {
	m := quietMachine(t, 1)
	hi := webClass()
	hi.QueueCap = 4
	hi.Timeout = 0
	lo := batchClass()
	lo.QueueCap = 4
	lo.MeanInstr = 50e6 // each batch request hogs the CPU
	lo.SizeCV = 0
	st, err := NewStation(m, Config{Classes: []Class{hi, lo}, Clients: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Flood both queues far beyond capacity at t=0.
	for i := 0; i < 20; i++ {
		st.Offer(0, 0, 0)
		st.Offer(0, 1, 1)
	}
	a := st.Account()
	if a.Dropped != 2*20-2*4 {
		t.Errorf("dropped = %d, want %d", a.Dropped, 2*20-2*4)
	}
	checkConservation(t, st, 0)
	for q := 0; q < 30; q++ {
		st.BeforeQuantum(m.Now())
		m.Step()
		st.AfterQuantum(m.Now())
		checkConservation(t, st, m.Now())
	}
	s := st.Scoreboard().Summarize(m.Now())
	// All four queued web requests must finish before the four big batch
	// ones on the single CPU.
	if s.Classes[0].Completed != 4 {
		t.Errorf("web completed = %d, want all 4 queued", s.Classes[0].Completed)
	}
	if s.Classes[1].Completed == 4 {
		t.Errorf("batch finished everything despite low priority")
	}
}

// TestStationAdmissionAndTimeout: token-bucket rejections and queue-wait
// timeouts are counted and conserve.
func TestStationAdmissionAndTimeout(t *testing.T) {
	m := quietMachine(t, 1)
	c := webClass()
	c.AdmitRate = 10
	c.AdmitBurst = 2
	c.Timeout = 0.05
	c.MeanInstr = 40e6 // service slow enough that waiters expire
	big := batchClass()
	big.Priority = 2 // keep the CPU busy with batch work
	big.MeanInstr = 100e6
	big.SizeCV = 0
	st, err := NewStation(m, Config{Classes: []Class{c, big}, Clients: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st.Offer(0, 1, 0) // occupy the CPU
	for i := 0; i < 6; i++ {
		st.Offer(0, 0, 0) // burst 2 admitted, rest rejected
	}
	a := st.Account()
	if a.Rejected == 0 {
		t.Fatal("token bucket never rejected")
	}
	for q := 0; q < 40; q++ {
		st.BeforeQuantum(m.Now())
		m.Step()
		st.AfterQuantum(m.Now())
		checkConservation(t, st, m.Now())
	}
	a = st.Account()
	if a.TimedOut == 0 {
		t.Error("no queue-wait timeouts despite 50 ms bound")
	}
}

// TestStationEmitsServeEvents: the obs sink receives cumulative per-class
// events that a Ledger folds into the serving section.
func TestStationEmitsServeEvents(t *testing.T) {
	m := quietMachine(t, 2)
	led := obs.NewLedger()
	st, err := NewStation(m, Config{
		Classes: []Class{webClass()}, Clients: 1, Seed: 3,
		Node: "n0", Sink: led, EmitEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := ParseArrivalSpec("poisson:200")
	stm, err := spec.NewStream(7)
	if err != nil {
		t.Fatal(err)
	}
	var feeder Feeder
	feeder.Add(0, 0, stm)
	for q := 0; q < 100; q++ {
		feeder.DeliverUpTo(m.Now(), st)
		st.BeforeQuantum(m.Now())
		m.Step()
		st.AfterQuantum(m.Now())
	}
	sum := led.Summary()
	if len(sum.Serving) != 1 || sum.Serving[0].Class != "web" {
		t.Fatalf("serving summary = %+v", sum.Serving)
	}
	if sum.Serving[0].Completed == 0 || sum.Serving[0].Attainment == 0 {
		t.Errorf("serving row empty: %+v", sum.Serving[0])
	}
}

// TestStationValidation covers constructor error paths.
func TestStationValidation(t *testing.T) {
	m := quietMachine(t, 1)
	if _, err := NewStation(nil, Config{Classes: []Class{webClass()}, Clients: 1}); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := NewStation(m, Config{Clients: 1}); err == nil {
		t.Error("no classes accepted")
	}
	if _, err := NewStation(m, Config{Classes: []Class{webClass()}}); err == nil {
		t.Error("zero clients accepted")
	}
	dup := []Class{webClass(), webClass()}
	if _, err := NewStation(m, Config{Classes: dup, Clients: 1}); err == nil {
		t.Error("duplicate class names accepted")
	}
	bad := webClass()
	bad.SLO = 0
	if _, err := NewStation(m, Config{Classes: []Class{bad}, Clients: 1}); err == nil {
		t.Error("zero SLO accepted")
	}
}
