// Package serve is the open-loop request-serving subsystem: it turns a
// simulated machine into a queueing station whose service rate is
// whatever frequency the fvsst scheduler chose. The paper's motivating
// setting (§1, §5) is servers whose demand varies over the day; closed
// phase workloads scored on predicted IPC loss cannot show what a budget
// drop does to user-visible latency. This package can: per-client renewal
// arrival processes (deterministic per seed), request classes with size
// distributions, per-class latency SLOs, bounded priority/FIFO queues
// with token-bucket admission, and a scoring layer reporting p50/p95/p99
// latency, SLO attainment, goodput and Jain fairness.
//
// The integration with internal/machine is exact, not approximate: each
// CPU runs one reusable workload cursor, the machine's completion hook
// fires synchronously inside the dispatch loop at the interpolated
// completion instant, and the station rebinds the cursor to the next
// queued request on the spot — so a CPU drains its queue work-conserving
// within a quantum, completion times are sub-quantum accurate, and the
// steady-state per-request path allocates nothing. An empty queue leaves
// the cursor done, the machine's own idle accounting takes over, fvsst's
// idle indicator sees the CPU, and demand follows backlog with no extra
// coupling code.
package serve

import (
	"fmt"
	"math/rand"

	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Class describes one request class served by a station.
type Class struct {
	// Name labels the class in traces and reports.
	Name string
	// Phase is the per-request execution profile (α, memory intensity);
	// its Instructions field is ignored — request sizes come from
	// MeanInstr/SizeCV.
	Phase workload.Phase
	// MeanInstr is the mean request size in instructions; SizeCV the
	// coefficient of variation of the Gamma-distributed sizes (0 = every
	// request exactly MeanInstr).
	MeanInstr float64
	SizeCV    float64
	// SLO is the per-request latency objective in seconds (arrival to
	// completion). Timeout, when positive, bounds queue waiting: requests
	// older than it are abandoned before service (in-service requests
	// always run to completion).
	SLO     float64
	Timeout float64
	// Priority orders classes at dispatch: higher drains first, FIFO
	// within a class. Ties break toward the earlier class index.
	Priority int
	// QueueCap bounds the class queue; arrivals beyond it are dropped.
	QueueCap int
	// AdmitRate/AdmitBurst configure token-bucket admission control in
	// requests/second; AdmitRate 0 disables the bucket.
	AdmitRate  float64
	AdmitBurst int
}

// Validate checks the class.
func (c Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("serve: class must have a name")
	}
	if err := c.Phase.Validate(); err != nil {
		// The template phase is validated with a placeholder length; the
		// real length is rebound per request.
		return fmt.Errorf("serve: class %q: %w", c.Name, err)
	}
	if c.MeanInstr < 1 || c.MeanInstr > 1e15 {
		return fmt.Errorf("serve: class %q mean size %v out of [1,1e15]", c.Name, c.MeanInstr)
	}
	if c.SizeCV < 0 || c.SizeCV > maxCV {
		return fmt.Errorf("serve: class %q size cv %v out of [0,%d]", c.Name, c.SizeCV, maxCV)
	}
	if c.SLO <= 0 {
		return fmt.Errorf("serve: class %q SLO %v must be positive", c.Name, c.SLO)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("serve: class %q timeout %v negative", c.Name, c.Timeout)
	}
	if c.QueueCap < 1 || c.QueueCap > 1<<20 {
		return fmt.Errorf("serve: class %q queue cap %d out of [1,2^20]", c.Name, c.QueueCap)
	}
	if c.AdmitRate < 0 || c.AdmitBurst < 0 {
		return fmt.Errorf("serve: class %q admission rate/burst negative", c.Name)
	}
	return nil
}

// PhaseProfile is a convenience request execution profile: perfect-IPC α
// with the given per-instruction memory reference rate (L2/L3 reference
// rates at the typical 5×/2× server ratios). Instructions is a
// placeholder — the station rebinds the real per-request size.
func PhaseProfile(alpha, memPerInstr float64) workload.Phase {
	return workload.Phase{
		Name:         "serve",
		Alpha:        alpha,
		Rates:        memhier.AccessRates{L2PerInstr: 5 * memPerInstr, L3PerInstr: 2 * memPerInstr, MemPerInstr: memPerInstr},
		Instructions: 1,
	}
}

// Config configures a station.
type Config struct {
	Classes []Class
	// Clients is how many client identities the fairness account tracks;
	// Offer rejects client indices outside [0, Clients).
	Clients int
	// Seed drives the request-size draws. By convention experiments use
	// machine seed + 17.
	Seed int64
	// Node labels emitted events (empty on a single machine).
	Node string
	// Sink receives EventServe snapshots; nil disables emission.
	Sink obs.Sink
	// EmitEvery is the number of quanta between serve events (default 10,
	// one scheduling period at the paper's T = 100 ms, t = 10 ms).
	EmitEvery int
}

// Outcome is the admission result of one offered request.
type Outcome int

const (
	// Admitted: the request entered its class queue.
	Admitted Outcome = iota
	// Rejected: the class token bucket had no token.
	Rejected
	// Dropped: the bounded class queue was full.
	Dropped
)

// request is one admitted unit of work.
type request struct {
	class   int
	client  int
	arrival float64
	size    uint64
}

// ring is a fixed-capacity FIFO of requests; capacity is the class queue
// bound, allocated once at station construction.
type ring struct {
	buf  []request
	head int
	n    int
}

func (r *ring) push(q request) {
	r.buf[(r.head+r.n)%len(r.buf)] = q
	r.n++
}

func (r *ring) peek() *request { return &r.buf[r.head] }

func (r *ring) pop() request {
	q := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return q
}

// bucket is a token-bucket admission controller.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   float64
}

func (b *bucket) take(now float64) bool {
	if b.rate <= 0 {
		return true
	}
	b.tokens += (now - b.last) * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// cpuState is one CPU's serving slot.
type cpuState struct {
	phases [1]workload.Phase
	prog   workload.Program
	cursor *workload.Cursor
	req    request
	busy   bool
}

// Station glues arrival streams, class queues and a machine together.
// It is not safe for concurrent use (the simulation is single-threaded).
type Station struct {
	m       *machine.Machine
	cfg     Config
	classes []Class
	order   []int // class indices, highest priority first
	shapes  []float64
	sizeRng *rand.Rand
	queues  []ring
	buckets []bucket
	cpus    []cpuState
	score   *Scoreboard
	quanta  int
	emitAt  int
}

// NewStation builds a station over the machine, installs one reusable
// serving cursor per CPU, and takes over the machine's completion hook.
func NewStation(m *machine.Machine, cfg Config) (*Station, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil machine")
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("serve: station needs at least one class")
	}
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("serve: station needs at least one client")
	}
	seen := make(map[string]bool)
	for _, c := range cfg.Classes {
		probe := c
		probe.Phase.Instructions = 1 // template length is per-request
		if err := probe.Validate(); err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("serve: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
	}
	if cfg.EmitEvery <= 0 {
		cfg.EmitEvery = 10
	}
	s := &Station{
		m:       m,
		cfg:     cfg,
		classes: append([]Class(nil), cfg.Classes...),
		sizeRng: rand.New(rand.NewSource(cfg.Seed)),
		queues:  make([]ring, len(cfg.Classes)),
		buckets: make([]bucket, len(cfg.Classes)),
		cpus:    make([]cpuState, m.NumCPUs()),
		emitAt:  cfg.EmitEvery,
	}
	for i, c := range s.classes {
		s.queues[i].buf = make([]request, c.QueueCap)
		s.buckets[i] = bucket{rate: c.AdmitRate, burst: float64(c.AdmitBurst), tokens: float64(c.AdmitBurst)}
		s.shapes = append(s.shapes, 0)
		if c.SizeCV > 0 {
			s.shapes[i] = 1 / (c.SizeCV * c.SizeCV)
		}
		s.order = append(s.order, i)
	}
	// Dispatch order: priority descending, index ascending on ties.
	for i := 1; i < len(s.order); i++ {
		for j := i; j > 0; j-- {
			a, b := s.order[j-1], s.order[j]
			if s.classes[a].Priority < s.classes[b].Priority {
				s.order[j-1], s.order[j] = b, a
			}
		}
	}
	s.score = newScoreboard(s.classes, cfg.Clients)
	// One reusable single-phase cursor per CPU, born done (idle).
	for i := range s.cpus {
		cs := &s.cpus[i]
		cs.phases[0] = workload.Phase{Name: "serve-idle", Alpha: 1, Instructions: 1}
		cs.prog = workload.Program{Name: "serve-idle", Phases: cs.phases[:1]}
		mix, err := workload.NewMix(cs.prog)
		if err != nil {
			return nil, err
		}
		cs.cursor = mix.Jobs()[0]
		cs.cursor.Advance(1) // start idle
		if err := m.SetMix(i, mix); err != nil {
			return nil, err
		}
	}
	m.SetCompletionHook(s.onComplete)
	return s, nil
}

// Scoreboard returns the station's score account.
func (s *Station) Scoreboard() *Scoreboard { return s.score }

// Offer presents one request of the class from the client at simulated
// time now. The size draw happens unconditionally before admission, so
// two stations built with the same seed serve byte-identical request
// sequences even when their admission decisions diverge (the basis of
// cross-policy comparisons). Offers must be presented in non-decreasing
// time order.
func (s *Station) Offer(now float64, class, client int) Outcome {
	if class < 0 || class >= len(s.classes) {
		panic(fmt.Sprintf("serve: class %d out of range", class))
	}
	if client < 0 || client >= s.cfg.Clients {
		panic(fmt.Sprintf("serve: client %d out of range", client))
	}
	size := s.drawSize(class)
	s.score.offered(class)
	if !s.buckets[class].take(now) {
		s.score.rejected(class)
		return Rejected
	}
	q := &s.queues[class]
	if q.n == len(q.buf) {
		s.score.dropped(class)
		return Dropped
	}
	q.push(request{class: class, client: client, arrival: now, size: size})
	s.score.admitted(class)
	return Admitted
}

// drawSize draws the request's instruction count: Gamma with the class
// CV around the mean, floored at one instruction.
func (s *Station) drawSize(class int) uint64 {
	mean := s.classes[class].MeanInstr
	v := mean
	if sh := s.shapes[class]; sh > 0 {
		v = mean * workload.GammaGaps{Shape: sh}.Gap(s.sizeRng)
	}
	if v < 1 {
		v = 1
	}
	return uint64(v)
}

// BeforeQuantum starts service on any idle CPU with queued work. Call it
// immediately before each machine Step; arrivals land at quantum
// granularity (a request arriving mid-quantum waits for the next
// boundary, ≤ one dispatch quantum of extra latency).
func (s *Station) BeforeQuantum(now float64) {
	for i := range s.cpus {
		if !s.cpus[i].busy {
			s.startNext(i, now)
		}
	}
}

// AfterQuantum expires timed-out queue heads and emits the periodic
// serve events. Call it immediately after each machine Step.
func (s *Station) AfterQuantum(now float64) {
	for ci := range s.queues {
		to := s.classes[ci].Timeout
		if to <= 0 {
			continue
		}
		q := &s.queues[ci]
		// FIFO queues age monotonically, so expiry only ever holds at the
		// head.
		for q.n > 0 && now-q.peek().arrival > to {
			r := q.pop()
			s.score.timedOut(r.class, r.client)
		}
	}
	s.quanta++
	if s.cfg.Sink != nil && s.quanta >= s.emitAt {
		s.emitAt = s.quanta + s.cfg.EmitEvery
		s.emit(now)
	}
}

// onComplete is the machine completion hook: record the finished request
// and immediately rebind the cursor to the next queued one so the CPU
// keeps serving within the same quantum.
func (s *Station) onComplete(jc machine.JobCompletion) {
	cs := &s.cpus[jc.CPU]
	if !cs.busy {
		return // not a serving completion (e.g. pre-station workload)
	}
	cs.busy = false
	s.score.completed(cs.req.class, cs.req.client, jc.At-cs.req.arrival)
	s.startNext(jc.CPU, jc.At)
}

// startNext pops the highest-priority runnable request and rebinds the
// CPU's cursor to it. Timed-out heads encountered on the way are
// abandoned. No-op when every queue is empty (the cursor stays done and
// the machine idles the CPU).
func (s *Station) startNext(cpu int, now float64) {
	for _, ci := range s.order {
		q := &s.queues[ci]
		to := s.classes[ci].Timeout
		for q.n > 0 {
			if to > 0 && now-q.peek().arrival > to {
				r := q.pop()
				s.score.timedOut(r.class, r.client)
				continue
			}
			s.serveOn(cpu, q.pop())
			return
		}
	}
}

// serveOn rebinds the CPU's reusable cursor to the request — the whole
// per-request dispatch is two struct writes and a cursor rewind, no
// allocation.
func (s *Station) serveOn(cpu int, r request) {
	cs := &s.cpus[cpu]
	cls := &s.classes[r.class]
	cs.phases[0] = cls.Phase
	cs.phases[0].Name = cls.Name
	cs.phases[0].Instructions = r.size
	cs.prog.Name = cls.Name
	cs.cursor.Rebind(cs.prog)
	cs.req = r
	cs.busy = true
}

// Backlog returns the total queued plus in-service request count — the
// demand signal a farm-level allocator sees from this station.
func (s *Station) Backlog() int {
	n := 0
	for i := range s.queues {
		n += s.queues[i].n
	}
	for i := range s.cpus {
		if s.cpus[i].busy {
			n++
		}
	}
	return n
}

// QueueLen returns the queued (not yet serving) count of one class.
func (s *Station) QueueLen(class int) int { return s.queues[class].n }

// InService returns how many CPUs are serving the class right now.
func (s *Station) InService(class int) int {
	n := 0
	for i := range s.cpus {
		if s.cpus[i].busy && s.cpus[i].req.class == class {
			n++
		}
	}
	return n
}

// emit publishes one cumulative EventServe per class.
func (s *Station) emit(now float64) {
	for ci := range s.classes {
		row := &s.score.classes[ci]
		s.cfg.Sink.Emit(obs.Event{
			Type:      obs.EventServe,
			At:        now,
			Node:      s.cfg.Node,
			Class:     s.classes[ci].Name,
			Offered:   row.offered,
			Admitted:  row.admitted,
			Rejected:  row.rejected,
			Dropped:   row.dropped,
			TimedOut:  row.timedOut,
			Completed: row.completed,
			SLOOk:     row.sloOK,
			QueueLen:  s.queues[ci].n,
			InService: s.InService(ci),
			P99S:      row.quantile(0.99),
		})
	}
}

// Account is the station's conservation snapshot: every offered request
// is in exactly one terminal or live state. The invariant package checks
//
//	Offered  = Admitted + Rejected + Dropped
//	Admitted = Completed + TimedOut + Queued + InService
//
// every quantum.
type Account struct {
	Offered   uint64
	Admitted  uint64
	Rejected  uint64
	Dropped   uint64
	Completed uint64
	TimedOut  uint64
	Queued    int
	InService int
}

// Account returns the current conservation snapshot across all classes.
func (s *Station) Account() Account {
	var a Account
	for ci := range s.classes {
		row := &s.score.classes[ci]
		a.Offered += row.offered
		a.Admitted += row.admitted
		a.Rejected += row.rejected
		a.Dropped += row.dropped
		a.Completed += row.completed
		a.TimedOut += row.timedOut
		a.Queued += s.queues[ci].n
	}
	for i := range s.cpus {
		if s.cpus[i].busy {
			a.InService++
		}
	}
	return a
}

// Drained reports whether all admitted work has resolved (nothing
// queued, nothing in service).
func (s *Station) Drained() bool { return s.Backlog() == 0 }
