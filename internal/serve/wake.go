// Waker adapters: how the serving subsystem tells a discrete-event
// driver when it next needs a real quantum. A drained station with no
// trace sink is quiet until its next arrival, so the driver may skip the
// span in bulk; anything in flight pins per-quantum processing (timeouts
// age and completions rebind within quanta).
package serve

import "math"

// NextWakeAt bounds how long the station can go without per-quantum
// processing: with work in flight or a trace sink attached it returns now
// (no skipping — timeouts, dispatch and emits need every quantum), and
// +Inf once drained and silent. Arrivals are the feeder's to bound.
func (s *Station) NextWakeAt(now float64) float64 {
	if s.Backlog() > 0 || s.cfg.Sink != nil {
		return now
	}
	return math.Inf(1)
}

// SkipQuanta accounts n skipped quanta against the station's emit
// cadence, keeping event spacing aligned when a DES driver fast-forwards
// a drained span.
func (s *Station) SkipQuanta(n int) { s.quanta += n }

// NextAt returns the earliest undelivered arrival instant across every
// client stream, or +Inf with no streams — the feeder's next interesting
// time on a DES timeline.
func (f *Feeder) NextAt() float64 {
	next := math.Inf(1)
	for i := range f.srcs {
		if t := f.srcs[i].stream.Next(); t < next {
			next = t
		}
	}
	return next
}

// TimelineWaker bundles a station with the feeder driving it into one
// cluster-facing waker: wake at the next arrival, or immediately while
// the station still holds work. It satisfies cluster.Waker and
// cluster.QuantaSkipper without serve importing cluster.
type TimelineWaker struct {
	St   *Station
	Feed *Feeder
}

// NextWakeAt returns the earlier of the station's own bound and the next
// arrival.
func (w TimelineWaker) NextWakeAt(now float64) float64 {
	next := w.St.NextWakeAt(now)
	if w.Feed != nil {
		if t := w.Feed.NextAt(); t < next {
			next = t
		}
	}
	return next
}

// SkipQuanta forwards the skip to the station's emit cadence.
func (w TimelineWaker) SkipQuanta(n int) { w.St.SkipQuanta(n) }
