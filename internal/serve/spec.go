package serve

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// ArrivalSpec describes one client's open-loop arrival process in a
// compact, parseable form:
//
//	kind:rate[,key=value]*
//
// where kind is poisson, gamma or weibull, rate is the mean arrival rate
// in requests/second, and the optional keys are
//
//	cv      coefficient of variation of inter-arrival gaps
//	        (gamma/weibull only; poisson is CV 1 by definition)
//	depth   diurnal modulation depth in [0,1)
//	period  diurnal period in seconds (required when depth > 0)
//	phase   diurnal phase offset as a fraction of the period in [0,1)
//
// Examples: "poisson:30", "gamma:30,cv=2,depth=0.8,period=4",
// "weibull:12,cv=0.5". The textual form is what scenario generation and
// experiment configs carry; Parse/String round-trip exactly.
type ArrivalSpec struct {
	Kind   string  `json:"kind"`
	Rate   float64 `json:"rate"`
	CV     float64 `json:"cv,omitempty"`
	Depth  float64 `json:"depth,omitempty"`
	Period float64 `json:"period,omitempty"`
	Phase  float64 `json:"phase,omitempty"`
}

// Arrival-spec bounds. Generous but finite: the parser is fuzzed, and an
// accepted spec must always yield a usable generator.
const (
	maxRate   = 1e9
	maxCV     = 20
	maxPeriod = 1e7
)

// ParseArrivalSpec parses the textual form. The returned spec is always
// Validate-clean.
func ParseArrivalSpec(s string) (ArrivalSpec, error) {
	var a ArrivalSpec
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return a, fmt.Errorf("serve: arrival spec %q missing ':'", s)
	}
	a.Kind = kind
	parts := strings.Split(rest, ",")
	rate, err := parseFinite(parts[0])
	if err != nil {
		return a, fmt.Errorf("serve: arrival spec rate: %w", err)
	}
	a.Rate = rate
	switch a.Kind {
	case "poisson":
		a.CV = 1
	case "gamma", "weibull":
		a.CV = 1
	default:
		return a, fmt.Errorf("serve: arrival kind %q (want poisson, gamma or weibull)", a.Kind)
	}
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return a, fmt.Errorf("serve: arrival spec option %q missing '='", kv)
		}
		v, err := parseFinite(val)
		if err != nil {
			return a, fmt.Errorf("serve: arrival spec option %q: %w", key, err)
		}
		switch key {
		case "cv":
			if a.Kind == "poisson" {
				return a, fmt.Errorf("serve: poisson arrivals have CV 1, cv option not allowed")
			}
			a.CV = v
		case "depth":
			a.Depth = v
		case "period":
			a.Period = v
		case "phase":
			a.Phase = v
		default:
			return a, fmt.Errorf("serve: unknown arrival spec option %q", key)
		}
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a, nil
}

func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("value %q not finite", s)
	}
	return v, nil
}

// Validate checks the spec describes a realisable process.
func (a ArrivalSpec) Validate() error {
	switch a.Kind {
	case "poisson", "gamma", "weibull":
	default:
		return fmt.Errorf("serve: arrival kind %q", a.Kind)
	}
	if a.Rate <= 0 || a.Rate > maxRate {
		return fmt.Errorf("serve: arrival rate %v out of (0,%g]", a.Rate, float64(maxRate))
	}
	if a.CV <= 0 || a.CV > maxCV {
		return fmt.Errorf("serve: arrival cv %v out of (0,%d]", a.CV, maxCV)
	}
	if a.Kind == "poisson" && a.CV != 1 {
		return fmt.Errorf("serve: poisson arrivals must have CV 1")
	}
	if a.Kind == "weibull" {
		if _, err := weibullShapeForCV(a.CV); err != nil {
			return err
		}
	}
	if a.Depth < 0 || a.Depth >= 1 {
		return fmt.Errorf("serve: diurnal depth %v out of [0,1)", a.Depth)
	}
	if a.Depth > 0 && (a.Period <= 0 || a.Period > maxPeriod) {
		return fmt.Errorf("serve: diurnal period %v out of (0,%g]", a.Period, float64(maxPeriod))
	}
	if a.Depth == 0 && a.Period != 0 {
		return fmt.Errorf("serve: period %v given without depth", a.Period)
	}
	if a.Phase < 0 || a.Phase >= 1 {
		return fmt.Errorf("serve: diurnal phase %v out of [0,1)", a.Phase)
	}
	if a.Phase != 0 && a.Depth == 0 {
		return fmt.Errorf("serve: phase %v given without depth", a.Phase)
	}
	return nil
}

// String renders the canonical textual form; Parse(String()) returns an
// identical spec for any Validate-clean value.
func (a ArrivalSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s", a.Kind, fmtF(a.Rate))
	if a.Kind != "poisson" {
		fmt.Fprintf(&b, ",cv=%s", fmtF(a.CV))
	}
	if a.Depth > 0 {
		fmt.Fprintf(&b, ",depth=%s,period=%s", fmtF(a.Depth), fmtF(a.Period))
		if a.Phase > 0 {
			fmt.Fprintf(&b, ",phase=%s", fmtF(a.Phase))
		}
	}
	return b.String()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Gaps returns the unit-mean inter-arrival distribution the spec names.
func (a ArrivalSpec) Gaps() (workload.InterArrival, error) {
	switch a.Kind {
	case "poisson":
		return workload.ExpGaps{}, nil
	case "gamma":
		// Gamma CV is 1/√shape exactly.
		return workload.GammaGaps{Shape: 1 / (a.CV * a.CV)}, nil
	case "weibull":
		k, err := weibullShapeForCV(a.CV)
		if err != nil {
			return nil, err
		}
		return workload.WeibullGaps{Shape: k}, nil
	}
	return nil, fmt.Errorf("serve: arrival kind %q", a.Kind)
}

// RateFn returns the spec's (possibly diurnal) instantaneous rate.
func (a ArrivalSpec) RateFn() workload.RateFn {
	if a.Depth == 0 {
		return workload.ConstantRate(a.Rate)
	}
	return workload.DiurnalRate(a.Rate, a.Depth, a.Period, a.Phase)
}

// weibullShapeForCV inverts CV(k) = √(Γ(1+2/k)/Γ(1+1/k)² − 1), which is
// strictly decreasing in k, by bisection. CVs outside what shapes in
// [0.1, 50] can express are rejected.
func weibullShapeForCV(cv float64) (float64, error) {
	cvOf := func(k float64) float64 {
		m1 := math.Gamma(1 + 1/k)
		m2 := math.Gamma(1 + 2/k)
		return math.Sqrt(m2/(m1*m1) - 1)
	}
	lo, hi := 0.1, 50.0
	if cv > cvOf(lo) || cv < cvOf(hi) {
		return 0, fmt.Errorf("serve: weibull cv %v out of [%.4f, %.1f]", cv, cvOf(hi), cvOf(lo))
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cvOf(mid) > cv {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Stream draws one client's arrival instants incrementally — the online
// form of workload.RenewalArrivals, for open-ended serving runs where the
// horizon is not known up front. All randomness comes from the seed, so a
// (spec, seed) pair names the exact arrival sequence; experiments reuse
// the same pair across policies to serve identical traffic.
type Stream struct {
	rng  *rand.Rand
	gaps workload.InterArrival
	rate workload.RateFn
	t    float64
	next float64
}

// NewStream starts the spec's arrival process at t = 0 under its own
// seeded generator.
func (a ArrivalSpec) NewStream(seed int64) (*Stream, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	gaps, err := a.Gaps()
	if err != nil {
		return nil, err
	}
	s := &Stream{rng: rand.New(rand.NewSource(seed)), gaps: gaps, rate: a.RateFn()}
	s.advance()
	return s, nil
}

func (s *Stream) advance() {
	s.t += s.gaps.Gap(s.rng) / s.rate(s.t)
	s.next = s.t
}

// Next returns the upcoming arrival instant without consuming it.
func (s *Stream) Next() float64 { return s.next }

// Pop consumes and returns the upcoming arrival instant.
func (s *Stream) Pop() float64 {
	t := s.next
	s.advance()
	return t
}

// Feeder merges per-client streams and delivers matured arrivals to a
// station in global time order (ties broken by add order), the glue
// between arrival processes and the queueing station. Delivery is
// allocation-free.
type Feeder struct {
	srcs []feederSrc
}

type feederSrc struct {
	stream *Stream
	class  int
	client int
}

// Add registers one client stream feeding the given class.
func (f *Feeder) Add(class, client int, st *Stream) {
	f.srcs = append(f.srcs, feederSrc{stream: st, class: class, client: client})
}

// DeliverUpTo offers every arrival with instant ≤ now to the station, in
// time order, and returns how many were delivered.
func (f *Feeder) DeliverUpTo(now float64, st *Station) int {
	delivered := 0
	for {
		best := -1
		bestT := math.Inf(1)
		for i := range f.srcs {
			if t := f.srcs[i].stream.Next(); t <= now && t < bestT {
				best, bestT = i, t
			}
		}
		if best < 0 {
			return delivered
		}
		src := &f.srcs[best]
		at := src.stream.Pop()
		st.Offer(at, src.class, src.client)
		delivered++
	}
}
