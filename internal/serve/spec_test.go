package serve

import (
	"math"
	"testing"
)

func TestParseArrivalSpec(t *testing.T) {
	cases := []struct {
		in   string
		want ArrivalSpec
	}{
		{"poisson:30", ArrivalSpec{Kind: "poisson", Rate: 30, CV: 1}},
		{"gamma:30,cv=2", ArrivalSpec{Kind: "gamma", Rate: 30, CV: 2}},
		{"gamma:12.5,cv=0.5,depth=0.8,period=4", ArrivalSpec{Kind: "gamma", Rate: 12.5, CV: 0.5, Depth: 0.8, Period: 4}},
		{"weibull:7,cv=0.5,depth=0.3,period=10,phase=0.25", ArrivalSpec{Kind: "weibull", Rate: 7, CV: 0.5, Depth: 0.3, Period: 10, Phase: 0.25}},
	}
	for _, tc := range cases {
		got, err := ParseArrivalSpec(tc.in)
		if err != nil {
			t.Errorf("parse %q: %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parse %q = %+v, want %+v", tc.in, got, tc.want)
		}
		// Round-trip through the canonical rendering.
		back, err := ParseArrivalSpec(got.String())
		if err != nil || back != got {
			t.Errorf("round-trip %q → %q → %+v (%v)", tc.in, got.String(), back, err)
		}
	}
}

func TestParseArrivalSpecRejects(t *testing.T) {
	bad := []string{
		"", "poisson", "poisson:", "poisson:0", "poisson:-3", "poisson:nan",
		"poisson:inf", "poisson:1e300,depth=0.5,period=1e300",
		"uniform:3", "poisson:30,cv=2", "gamma:30,cv=0", "gamma:30,cv=99",
		"gamma:30,depth=2,period=4", "gamma:30,depth=0.5", // missing period
		"gamma:30,period=4", // period without depth
		"gamma:30,phase=0.5", "gamma:30,depth=0.5,period=4,phase=1.5",
		"gamma:30,bogus=1", "gamma:30,cv", "weibull:30,cv=0.02", "weibull:30,cv=25",
	}
	for _, s := range bad {
		if _, err := ParseArrivalSpec(s); err == nil {
			t.Errorf("parse %q accepted", s)
		}
	}
}

// TestWeibullShapeInversion: the bisection must invert CV(k) to high
// accuracy over the supported range.
func TestWeibullShapeInversion(t *testing.T) {
	for _, cv := range []float64{0.2, 0.5, 1, 2, 5} {
		k, err := weibullShapeForCV(cv)
		if err != nil {
			t.Fatalf("cv %v: %v", cv, err)
		}
		got := (workloadWeibullCV)(k)
		if math.Abs(got-cv) > 1e-9 {
			t.Errorf("cv %v → k %v → cv %v", cv, k, got)
		}
	}
	// CV 1 is the exponential: shape ≈ 1.
	k, _ := weibullShapeForCV(1)
	if math.Abs(k-1) > 1e-9 {
		t.Errorf("cv 1 → shape %v, want 1", k)
	}
}

func workloadWeibullCV(k float64) float64 {
	m1 := math.Gamma(1 + 1/k)
	m2 := math.Gamma(1 + 2/k)
	return math.Sqrt(m2/(m1*m1) - 1)
}

// TestStreamMatchesRenewal: the incremental stream and the batch
// generator agree for the same spec and seed.
func TestStreamDeterministicAndIncreasing(t *testing.T) {
	spec, err := ParseArrivalSpec("gamma:50,cv=2,depth=0.6,period=3")
	if err != nil {
		t.Fatal(err)
	}
	draw := func() []float64 {
		st, err := spec.NewStream(99)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 500; i++ {
			out = append(out, st.Pop())
		}
		return out
	}
	a, b := draw(), draw()
	prev := 0.0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverges at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < prev || math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
			t.Fatalf("arrival %d = %v after %v", i, a[i], prev)
		}
		prev = a[i]
	}
}

// TestFeederOrdersAcrossStreams: merged delivery is globally
// time-ordered.
func TestFeederOrdersAcrossStreams(t *testing.T) {
	m := quietMachine(t, 2)
	st, err := NewStation(m, Config{Classes: []Class{webClass()}, Clients: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := ParseArrivalSpec("poisson:300")
	var f Feeder
	for c := 0; c < 3; c++ {
		stm, err := spec.NewStream(int64(c) + 1)
		if err != nil {
			t.Fatal(err)
		}
		f.Add(0, c, stm)
	}
	n := f.DeliverUpTo(0.5, st)
	if n == 0 {
		t.Fatal("nothing delivered")
	}
	a := st.Account()
	if a.Offered != uint64(n) {
		t.Errorf("offered %d, delivered %d", a.Offered, n)
	}
	// Everything up to 0.5 s is consumed: nothing more matures below it.
	if f.DeliverUpTo(0.5, st) != 0 {
		t.Error("second delivery found arrivals ≤ 0.5")
	}
}
