package memhier

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestP630MatchesPaperPlatform(t *testing.T) {
	h := P630()
	if err := h.Validate(); err != nil {
		t.Fatalf("P630 invalid: %v", err)
	}
	if h.RefClock != units.GHz(1) {
		t.Errorf("RefClock = %v, want 1GHz", h.RefClock)
	}
	// §7.1: 15 cycles to L2, 113 to L3, 393 to memory.
	if h.LatencyCycles[L2] != 15 || h.LatencyCycles[L3] != 113 || h.LatencyCycles[DRAM] != 393 {
		t.Errorf("latencies = %v", h.LatencyCycles)
	}
	if h.L2SharedBy != 2 {
		t.Errorf("L2SharedBy = %d, want 2 (core pairs)", h.L2SharedBy)
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{L1: "L1", L2: "L2", L3: "L3", DRAM: "mem", Level(9): "Level(9)"}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestValidateCatchesBrokenHierarchies(t *testing.T) {
	base := P630()

	broken := base
	broken.RefClock = 0
	if broken.Validate() == nil {
		t.Error("zero clock accepted")
	}

	broken = base
	broken.L2SharedBy = 0
	if broken.Validate() == nil {
		t.Error("zero sharing accepted")
	}

	broken = base
	broken.LatencyCycles[L3] = 10 // below L2's 15
	if broken.Validate() == nil {
		t.Error("non-monotone latency accepted")
	}

	broken = base
	broken.CapacityBytes[DRAM] = 1 // below L3
	if broken.Validate() == nil {
		t.Error("non-monotone capacity accepted")
	}

	broken = base
	broken.LatencyCycles[L1] = -1
	if broken.Validate() == nil {
		t.Error("negative latency accepted")
	}
}

func TestServiceTimeIsFrequencyInvariant(t *testing.T) {
	h := P630()
	// 15 cycles at 1 GHz = 15 ns.
	if got := h.ServiceTime(L2); math.Abs(got-15e-9) > 1e-18 {
		t.Errorf("ServiceTime(L2) = %v, want 15ns", got)
	}
	tL2, tL3, tMem := h.ServiceTimes()
	if tL2 != h.ServiceTime(L2) || tL3 != h.ServiceTime(L3) || tMem != h.ServiceTime(DRAM) {
		t.Error("ServiceTimes disagrees with ServiceTime")
	}
}

func TestCyclesAtScalesWithClock(t *testing.T) {
	h := P630()
	// A 393-cycle (at 1 GHz) DRAM access costs half the cycles at 500 MHz —
	// this is the mechanism behind performance saturation.
	got := h.CyclesAt(DRAM, units.MHz(500))
	if math.Abs(got-196.5) > 1e-9 {
		t.Errorf("CyclesAt(DRAM, 500MHz) = %v, want 196.5", got)
	}
	if full := h.CyclesAt(DRAM, units.GHz(1)); math.Abs(full-393) > 1e-9 {
		t.Errorf("CyclesAt(DRAM, 1GHz) = %v, want 393", full)
	}
}

func TestAccessRatesValidate(t *testing.T) {
	good := AccessRates{L2PerInstr: 0.01, L3PerInstr: 0.002, MemPerInstr: 0.001}
	if err := good.Validate(); err != nil {
		t.Errorf("good rates rejected: %v", err)
	}
	for _, bad := range []AccessRates{
		{L2PerInstr: -0.1},
		{L3PerInstr: 1.5},
		{MemPerInstr: math.NaN()},
	} {
		if bad.Validate() == nil {
			t.Errorf("bad rates accepted: %+v", bad)
		}
	}
}

func TestStallTimePerInstr(t *testing.T) {
	h := P630()
	r := AccessRates{L2PerInstr: 0.1, L3PerInstr: 0.01, MemPerInstr: 0.001}
	want := 0.1*15e-9 + 0.01*113e-9 + 0.001*393e-9
	if got := r.StallTimePerInstr(h); math.Abs(got-want) > 1e-18 {
		t.Errorf("StallTimePerInstr = %v, want %v", got, want)
	}
}

func TestAccessRatesScaleClamps(t *testing.T) {
	r := AccessRates{L2PerInstr: 0.6, L3PerInstr: 0.2, MemPerInstr: 0.1}
	doubled := r.Scale(2)
	if doubled.L2PerInstr != 1 {
		t.Errorf("Scale should clamp L2 to 1, got %v", doubled.L2PerInstr)
	}
	if doubled.MemPerInstr != 0.2 {
		t.Errorf("Scale(2) mem = %v, want 0.2", doubled.MemPerInstr)
	}
	if !r.Scale(0).IsZero() {
		t.Error("Scale(0) should be zero rates")
	}
}

func TestMissModelValidate(t *testing.T) {
	good := MissModel{FootprintBytes: 1 << 30, AccessesPerInstr: 0.3, L1MissRatio: 0.05, Theta: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("good model rejected: %v", err)
	}
	for _, bad := range []MissModel{
		{FootprintBytes: 0, AccessesPerInstr: 0.3, L1MissRatio: 0.05, Theta: 0.5},
		{FootprintBytes: 1, AccessesPerInstr: 1.3, L1MissRatio: 0.05, Theta: 0.5},
		{FootprintBytes: 1, AccessesPerInstr: 0.3, L1MissRatio: -0.1, Theta: 0.5},
		{FootprintBytes: 1, AccessesPerInstr: 0.3, L1MissRatio: 0.05, Theta: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("bad model accepted: %+v", bad)
		}
	}
}

func TestMissModelSmallFootprintResolvesInL2(t *testing.T) {
	h := P630()
	m := MissModel{FootprintBytes: 512 << 10, AccessesPerInstr: 0.3, L1MissRatio: 0.05, Theta: 0.5}
	r, err := m.Rates(h)
	if err != nil {
		t.Fatal(err)
	}
	// Footprint below L2 capacity: everything post-L1 hits L2.
	if r.L3PerInstr != 0 || r.MemPerInstr != 0 {
		t.Errorf("small footprint should stay in L2: %+v", r)
	}
	if math.Abs(r.L2PerInstr-0.3*0.05) > 1e-12 {
		t.Errorf("L2 rate = %v, want 0.015", r.L2PerInstr)
	}
}

func TestMissModelHugeFootprintMostlyDRAM(t *testing.T) {
	h := P630()
	// §7.3: large footprint → L1 miss highly likely to reach memory.
	m := MissModel{FootprintBytes: 2 << 30, AccessesPerInstr: 0.35, L1MissRatio: 0.08, Theta: 0.5}
	r, err := m.Rates(h)
	if err != nil {
		t.Fatal(err)
	}
	if r.MemPerInstr <= r.L2PerInstr || r.MemPerInstr <= r.L3PerInstr {
		t.Errorf("huge footprint should be DRAM-dominated: %+v", r)
	}
}

func TestMissModelRatesConserveTraffic(t *testing.T) {
	h := P630()
	err := quick.Check(func(fpMB uint16, apiRaw, missRaw uint8) bool {
		m := MissModel{
			FootprintBytes:   int64(fpMB%4096+1) << 20,
			AccessesPerInstr: float64(apiRaw%100) / 100,
			L1MissRatio:      float64(missRaw%100) / 100,
			Theta:            0.5,
		}
		r, err := m.Rates(h)
		if err != nil {
			return false
		}
		total := r.L2PerInstr + r.L3PerInstr + r.MemPerInstr
		want := m.AccessesPerInstr * m.L1MissRatio
		return math.Abs(total-want) < 1e-12 &&
			r.L2PerInstr >= 0 && r.L3PerInstr >= 0 && r.MemPerInstr >= 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMissModelMonotoneInFootprint(t *testing.T) {
	h := P630()
	prevMem := -1.0
	for _, mb := range []int64{1, 16, 256, 4096, 65536} {
		m := MissModel{FootprintBytes: mb << 20, AccessesPerInstr: 0.3, L1MissRatio: 0.05, Theta: 0.5}
		r, err := m.Rates(h)
		if err != nil {
			t.Fatal(err)
		}
		if r.MemPerInstr < prevMem {
			t.Errorf("DRAM rate not monotone in footprint at %dMB: %v < %v", mb, r.MemPerInstr, prevMem)
		}
		prevMem = r.MemPerInstr
	}
}

func TestContentionFactor(t *testing.T) {
	c := Contention{MaxInflation: 1.3}
	if got := c.Factor(0, 1e9); got != 1 {
		t.Errorf("no partner traffic: factor = %v, want 1", got)
	}
	if got := c.Factor(1e9, 1e9); math.Abs(got-1.3) > 1e-12 {
		t.Errorf("saturated partner: factor = %v, want 1.3", got)
	}
	if got := c.Factor(5e8, 1e9); math.Abs(got-1.15) > 1e-12 {
		t.Errorf("half-saturated partner: factor = %v, want 1.15", got)
	}
	// Over-saturation clamps.
	if got := c.Factor(9e9, 1e9); math.Abs(got-1.3) > 1e-12 {
		t.Errorf("over-saturated partner: factor = %v, want 1.3", got)
	}
	// Disabled contention.
	if got := (Contention{}).Factor(1e9, 1e9); got != 1 {
		t.Errorf("disabled contention: factor = %v, want 1", got)
	}
}
