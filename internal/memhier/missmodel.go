package memhier

import (
	"fmt"
	"math"
)

// MissModel derives per-level access rates from a workload's footprint and
// access-pattern parameters using a power-law (Chow/"square-root rule")
// cache model: the miss ratio of a cache of capacity C against a working
// set of size W behaves like (C/W)^θ for C < W and ~0 above it.
//
// The paper's synthetic benchmark is "constructed so that a miss in the L1
// is highly likely to result in a memory access due to the large memory
// footprint" (§7.3); a MissModel with a footprint far beyond L3 reproduces
// exactly that behaviour, while small-footprint workloads resolve mostly in
// L2.
type MissModel struct {
	// FootprintBytes is the workload's working-set size.
	FootprintBytes int64
	// AccessesPerInstr is the fraction of instructions that reference
	// memory (loads+stores per instruction), typically 0.3–0.4.
	AccessesPerInstr float64
	// L1MissRatio is the fraction of references that miss L1 (pattern
	// dependent, not capacity dependent in this model).
	L1MissRatio float64
	// Theta is the power-law locality exponent; 0.5 is the classical
	// square-root rule. Higher θ means more locality (misses fall faster
	// with capacity).
	Theta float64
}

// Validate rejects parameter values outside their physical ranges.
func (m MissModel) Validate() error {
	if m.FootprintBytes <= 0 {
		return fmt.Errorf("memhier: footprint %d must be positive", m.FootprintBytes)
	}
	if m.AccessesPerInstr < 0 || m.AccessesPerInstr > 1 {
		return fmt.Errorf("memhier: accesses/instr %v out of [0,1]", m.AccessesPerInstr)
	}
	if m.L1MissRatio < 0 || m.L1MissRatio > 1 {
		return fmt.Errorf("memhier: L1 miss ratio %v out of [0,1]", m.L1MissRatio)
	}
	if m.Theta <= 0 || m.Theta > 2 {
		return fmt.Errorf("memhier: theta %v out of (0,2]", m.Theta)
	}
	return nil
}

// hitRatio returns the fraction of post-L1 traffic that a cache of the
// given capacity satisfies.
func (m MissModel) hitRatio(capacityBytes int64) float64 {
	if capacityBytes >= m.FootprintBytes {
		return 1
	}
	return math.Pow(float64(capacityBytes)/float64(m.FootprintBytes), m.Theta)
}

// Rates computes the per-instruction access rates each hierarchy level
// services under hierarchy h. The flow is inclusive: traffic that misses L1
// goes to L2; the share L2 cannot capture goes to L3; the remainder to
// DRAM. Returned rates always satisfy rates.Validate().
func (m MissModel) Rates(h Hierarchy) (AccessRates, error) {
	if err := m.Validate(); err != nil {
		return AccessRates{}, err
	}
	if err := h.Validate(); err != nil {
		return AccessRates{}, err
	}
	beyondL1 := m.AccessesPerInstr * m.L1MissRatio

	l2Hit := m.hitRatio(h.CapacityBytes[L2])
	l3Hit := m.hitRatio(h.CapacityBytes[L3])
	if l3Hit < l2Hit {
		// Cannot happen with monotone capacities, but guard anyway.
		l3Hit = l2Hit
	}

	rates := AccessRates{
		L2PerInstr:  beyondL1 * l2Hit,
		L3PerInstr:  beyondL1 * (l3Hit - l2Hit),
		MemPerInstr: beyondL1 * (1 - l3Hit),
	}
	if err := rates.Validate(); err != nil {
		return AccessRates{}, err
	}
	return rates, nil
}

// Contention models shared-L2 interference between the two cores of a
// Power4+ module. When both cores issue post-L1 traffic, each sees a
// latency inflation proportional to the partner's occupancy. The returned
// factor multiplies the L2 (and, attenuated, L3/DRAM) service times in the
// *ground-truth* machine model only — the paper's predictor assumes constant
// latencies, and the gap between the two is one of its documented error
// sources (§4.3 footnote, Table 2).
type Contention struct {
	// MaxInflation is the worst-case latency multiplier when the partner
	// core saturates the shared L2 (e.g. 1.3 = +30%).
	MaxInflation float64
}

// Factor returns the latency multiplier given the partner core's post-L1
// traffic intensity in references per second, normalised by a saturation
// rate. intensity ≤ 0 yields exactly 1.
func (c Contention) Factor(partnerRefsPerSec, saturationRefsPerSec float64) float64 {
	if c.MaxInflation <= 1 || partnerRefsPerSec <= 0 || saturationRefsPerSec <= 0 {
		return 1
	}
	u := partnerRefsPerSec / saturationRefsPerSec
	if u > 1 {
		u = 1
	}
	return 1 + (c.MaxInflation-1)*u
}
