// Package memhier describes the memory hierarchy of the simulated machine
// and provides the analytic cache-miss model the workload generators use.
//
// The paper's predictor decomposes cycles into a frequency-dependent core
// component and a frequency-independent memory component; what makes that
// work is that the service time of an L2/L3/DRAM reference is fixed in
// *seconds* while core work is fixed in *cycles*. This package owns those
// service times. The defaults reproduce the measured latencies of the IBM
// pSeries p630 used in the paper: 4–5 cycles to L1, 15 to L2, 113 to L3 and
// 393 to memory, all at the nominal 1 GHz clock.
package memhier

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Level identifies one level of the memory hierarchy.
type Level int

// Memory hierarchy levels from fastest to slowest. L1 covers both the
// instruction and data caches; the predictor folds L1 hits into the
// frequency-dependent component (they scale with the clock), so only L2 and
// beyond appear in the frequency-independent term.
const (
	L1 Level = iota
	L2
	L3
	DRAM
	numLevels
)

// Levels lists every level in order. BeyondL1 lists the levels whose service
// time is frequency-invariant, i.e. the Nᵢ·Tᵢ terms of the IPC equation.
var (
	Levels   = []Level{L1, L2, L3, DRAM}
	BeyondL1 = []Level{L2, L3, DRAM}
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case DRAM:
		return "mem"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Hierarchy is an immutable description of a machine's memory system.
type Hierarchy struct {
	// RefClock is the clock frequency at which LatencyCycles was measured.
	RefClock units.Frequency
	// LatencyCycles holds the load-to-use latency of each level in core
	// cycles at RefClock.
	LatencyCycles [numLevels]float64
	// CapacityBytes holds the capacity of each cache level (DRAM entry is
	// main-memory size).
	CapacityBytes [numLevels]int64
	// L2SharedBy is how many cores share one L2 (2 on the p630's Power4+
	// dual-core modules). 1 means private.
	L2SharedBy int
}

// P630 returns the hierarchy of the paper's experimental platform, a 4-way
// 1 GHz Power4+ pSeries p630 (§7.1): 32 KB L1I + 64 KB L1D per core, a
// 1.44 MB L2 shared by each core pair, 32 MB L3, 4 GB memory.
func P630() Hierarchy {
	return Hierarchy{
		RefClock:      units.GHz(1),
		LatencyCycles: [numLevels]float64{4.5, 15, 113, 393},
		CapacityBytes: [numLevels]int64{64 << 10, 1440 << 10, 32 << 20, 4 << 30},
		L2SharedBy:    2,
	}
}

// Validate checks internal consistency: positive reference clock,
// monotonically increasing latencies and capacities, sane sharing factor.
func (h Hierarchy) Validate() error {
	if h.RefClock <= 0 {
		return fmt.Errorf("memhier: reference clock %v must be positive", h.RefClock)
	}
	if h.L2SharedBy < 1 {
		return fmt.Errorf("memhier: L2SharedBy %d must be ≥ 1", h.L2SharedBy)
	}
	for i := 0; i < int(numLevels); i++ {
		if h.LatencyCycles[i] <= 0 {
			return fmt.Errorf("memhier: %v latency must be positive", Level(i))
		}
		if h.CapacityBytes[i] <= 0 {
			return fmt.Errorf("memhier: %v capacity must be positive", Level(i))
		}
		if i > 0 {
			if h.LatencyCycles[i] <= h.LatencyCycles[i-1] {
				return fmt.Errorf("memhier: %v latency must exceed %v latency", Level(i), Level(i-1))
			}
			if h.CapacityBytes[i] <= h.CapacityBytes[i-1] {
				return fmt.Errorf("memhier: %v capacity must exceed %v capacity", Level(i), Level(i-1))
			}
		}
	}
	return nil
}

// ServiceTime returns Tᵢ, the wall-clock service time of a reference that is
// satisfied by the given level, in seconds. This is the constant the
// predictor multiplies by the access count and the candidate frequency.
func (h Hierarchy) ServiceTime(l Level) float64 {
	return h.LatencyCycles[l] / h.RefClock.Hz()
}

// ServiceTimes returns the service times of the frequency-invariant levels
// (L2, L3, DRAM) in that order.
func (h Hierarchy) ServiceTimes() (tL2, tL3, tMem float64) {
	return h.ServiceTime(L2), h.ServiceTime(L3), h.ServiceTime(DRAM)
}

// CyclesAt converts a level's service time into core cycles at frequency f:
// the number of cycles the core stalls per reference when clocked at f.
// This is what makes memory-bound work saturate — the cycle cost falls with
// the clock while core work does not.
func (h Hierarchy) CyclesAt(l Level, f units.Frequency) float64 {
	return h.ServiceTime(l) * f.Hz()
}

// AccessRates gives a workload's per-instruction reference rates to the
// frequency-invariant levels. Rates are references per instruction; a rate
// applies to the level that *services* the reference (an L3 rate counts
// references that miss L2 and hit L3).
type AccessRates struct {
	L2PerInstr  float64
	L3PerInstr  float64
	MemPerInstr float64
}

// Validate rejects negative rates and rates above one reference of each
// kind per instruction, which no real instruction stream produces.
func (r AccessRates) Validate() error {
	for _, v := range []struct {
		name string
		rate float64
	}{{"L2", r.L2PerInstr}, {"L3", r.L3PerInstr}, {"mem", r.MemPerInstr}} {
		if v.rate < 0 || v.rate > 1 || math.IsNaN(v.rate) {
			return fmt.Errorf("memhier: %s rate %v out of [0,1]", v.name, v.rate)
		}
	}
	return nil
}

// StallTimePerInstr returns Σᵢ rᵢ·Tᵢ in seconds per instruction — the
// frequency-invariant time each instruction spends waiting on the memory
// system, the denominator term of the predictor's IPC(f).
func (r AccessRates) StallTimePerInstr(h Hierarchy) float64 {
	tL2, tL3, tMem := h.ServiceTimes()
	return r.L2PerInstr*tL2 + r.L3PerInstr*tL3 + r.MemPerInstr*tMem
}

// Scale returns the rates multiplied by k, clamped to [0,1]. Used to derive
// intensity-scaled variants of a base workload profile.
func (r AccessRates) Scale(k float64) AccessRates {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return AccessRates{
		L2PerInstr:  clamp(r.L2PerInstr * k),
		L3PerInstr:  clamp(r.L3PerInstr * k),
		MemPerInstr: clamp(r.MemPerInstr * k),
	}
}

// IsZero reports whether the workload never leaves L1.
func (r AccessRates) IsZero() bool {
	return r.L2PerInstr == 0 && r.L3PerInstr == 0 && r.MemPerInstr == 0
}
