// Package counters models the per-processor performance counters the
// scheduler reads. The Power4+ exposes counts of instructions, cycles and
// accesses to each level of the memory hierarchy (§4.3); fvsst samples them
// every dispatch period t and works exclusively from deltas over the
// sampling window. The counters are aggregate per processor — they cannot
// distinguish the programs multiprogrammed onto it, which the paper calls
// out as a deliberate accuracy/simplicity trade-off.
package counters

import (
	"fmt"
	"math"
)

// Sample is one monotonic reading of a processor's counters at a moment of
// simulation time.
type Sample struct {
	// Time is the simulation time of the reading in seconds.
	Time float64
	// Instructions completed since the counters were reset.
	Instructions uint64
	// Cycles elapsed (non-halted) since reset.
	Cycles uint64
	// HaltedCycles elapsed while the processor was halted, when the
	// hardware supports a halted-cycle counter (§5: such processors need
	// no explicit idle indicator).
	HaltedCycles uint64
	// L2Refs, L3Refs, MemRefs count references *serviced by* L2, L3 and
	// memory respectively since reset.
	L2Refs  uint64
	L3Refs  uint64
	MemRefs uint64
}

// Delta is the difference between two samples of the same processor — the
// unit of data the predictor consumes.
type Delta struct {
	// Window is the wall-clock span of the delta in seconds.
	Window       float64
	Instructions uint64
	Cycles       uint64
	HaltedCycles uint64
	L2Refs       uint64
	L3Refs       uint64
	MemRefs      uint64
}

// Sub computes cur - prev. It errors if the samples are out of order or any
// counter ran backwards, which would indicate a reset in between.
func (cur Sample) Sub(prev Sample) (Delta, error) {
	if cur.Time < prev.Time {
		return Delta{}, fmt.Errorf("counters: samples out of order (%v < %v)", cur.Time, prev.Time)
	}
	pairs := []struct {
		name     string
		old, new uint64
	}{
		{"instructions", prev.Instructions, cur.Instructions},
		{"cycles", prev.Cycles, cur.Cycles},
		{"halted", prev.HaltedCycles, cur.HaltedCycles},
		{"l2", prev.L2Refs, cur.L2Refs},
		{"l3", prev.L3Refs, cur.L3Refs},
		{"mem", prev.MemRefs, cur.MemRefs},
	}
	for _, p := range pairs {
		if p.new < p.old {
			return Delta{}, fmt.Errorf("counters: %s counter ran backwards (%d < %d)", p.name, p.new, p.old)
		}
	}
	return Delta{
		Window:       cur.Time - prev.Time,
		Instructions: cur.Instructions - prev.Instructions,
		Cycles:       cur.Cycles - prev.Cycles,
		HaltedCycles: cur.HaltedCycles - prev.HaltedCycles,
		L2Refs:       cur.L2Refs - prev.L2Refs,
		L3Refs:       cur.L3Refs - prev.L3Refs,
		MemRefs:      cur.MemRefs - prev.MemRefs,
	}, nil
}

// Add merges another delta into d (aggregation across sampling windows, as
// the scheduler does over the n dispatch periods of one scheduling period).
func (d Delta) Add(other Delta) Delta {
	return Delta{
		Window:       d.Window + other.Window,
		Instructions: d.Instructions + other.Instructions,
		Cycles:       d.Cycles + other.Cycles,
		HaltedCycles: d.HaltedCycles + other.HaltedCycles,
		L2Refs:       d.L2Refs + other.L2Refs,
		L3Refs:       d.L3Refs + other.L3Refs,
		MemRefs:      d.MemRefs + other.MemRefs,
	}
}

// IPC returns observed instructions per (non-halted) cycle, or 0 when no
// cycles elapsed.
func (d Delta) IPC() float64 {
	if d.Cycles == 0 {
		return 0
	}
	return float64(d.Instructions) / float64(d.Cycles)
}

// RatePerInstr returns the given reference count per instruction, or 0 when
// no instructions retired.
func (d Delta) RatePerInstr(refs uint64) float64 {
	if d.Instructions == 0 {
		return 0
	}
	return float64(refs) / float64(d.Instructions)
}

// L2PerInstr returns L2 references per instruction.
func (d Delta) L2PerInstr() float64 { return d.RatePerInstr(d.L2Refs) }

// L3PerInstr returns L3 references per instruction.
func (d Delta) L3PerInstr() float64 { return d.RatePerInstr(d.L3Refs) }

// MemPerInstr returns memory references per instruction.
func (d Delta) MemPerInstr() float64 { return d.RatePerInstr(d.MemRefs) }

// ObservedFrequencyHz returns the average clock implied by the delta:
// cycles per second of window. 0 when the window is empty.
func (d Delta) ObservedFrequencyHz() float64 {
	if d.Window == 0 {
		return 0
	}
	return float64(d.Cycles) / d.Window
}

// HaltedFraction returns the share of the window's cycles spent halted.
func (d Delta) HaltedFraction() float64 {
	total := d.Cycles + d.HaltedCycles
	if total == 0 {
		return 0
	}
	return float64(d.HaltedCycles) / float64(total)
}

// IsEmpty reports whether the delta saw no activity at all.
func (d Delta) IsEmpty() bool {
	return d.Instructions == 0 && d.Cycles == 0 && d.HaltedCycles == 0
}

// Validate sanity-checks a delta: non-negative window and an IPC that is
// physically plausible (no machine retires more than ~8 instructions per
// cycle).
func (d Delta) Validate() error {
	if d.Window < 0 {
		return fmt.Errorf("counters: negative window %v", d.Window)
	}
	if ipc := d.IPC(); ipc > 8 || math.IsNaN(ipc) {
		return fmt.Errorf("counters: implausible IPC %v", ipc)
	}
	return nil
}

// Reader is the hardware-facing interface the sampler uses: anything that
// can produce a counter Sample for a processor. The simulated machine
// implements it; on real hardware it would wrap the kernel's perf-counter
// interface.
type Reader interface {
	// ReadCounters returns the current counter sample of processor cpu.
	ReadCounters(cpu int) (Sample, error)
	// NumCPUs returns how many processors the reader exposes.
	NumCPUs() int
}
