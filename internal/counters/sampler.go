package counters

import (
	"fmt"
)

// Sampler drives periodic counter collection across all processors of a
// Reader, maintaining the last sample per CPU and a bounded history of
// deltas. It is the in-simulation equivalent of the fvsst daemon's
// collection loop, which reads the counters every dispatch period t (§6).
type Sampler struct {
	reader  Reader
	last    []Sample
	started []bool
	history []*History
}

// NewSampler prepares a sampler over the reader, keeping up to histLen
// deltas per CPU.
func NewSampler(reader Reader, histLen int) (*Sampler, error) {
	if reader == nil {
		return nil, fmt.Errorf("counters: nil reader")
	}
	n := reader.NumCPUs()
	if n <= 0 {
		return nil, fmt.Errorf("counters: reader exposes %d CPUs", n)
	}
	if histLen <= 0 {
		return nil, fmt.Errorf("counters: history length %d must be positive", histLen)
	}
	s := &Sampler{
		reader:  reader,
		last:    make([]Sample, n),
		started: make([]bool, n),
		history: make([]*History, n),
	}
	for i := range s.history {
		s.history[i] = NewHistory(histLen)
	}
	return s, nil
}

// NumCPUs returns the processor count being sampled.
func (s *Sampler) NumCPUs() int { return len(s.last) }

// Collect reads every CPU once and appends the delta since the previous
// collection to each CPU's history. The first collection only primes the
// baselines and records nothing.
func (s *Sampler) Collect() error {
	for cpu := range s.last {
		sample, err := s.reader.ReadCounters(cpu)
		if err != nil {
			return fmt.Errorf("counters: read cpu %d: %w", cpu, err)
		}
		if s.started[cpu] {
			delta, err := sample.Sub(s.last[cpu])
			if err != nil {
				return fmt.Errorf("counters: delta cpu %d: %w", cpu, err)
			}
			s.history[cpu].Push(delta)
		}
		s.last[cpu] = sample
		s.started[cpu] = true
	}
	return nil
}

// History returns the delta history of processor cpu.
func (s *Sampler) History(cpu int) *History { return s.history[cpu] }

// WindowAggregate sums the most recent n deltas of processor cpu — the
// aggregation the scheduler performs over the n dispatch periods that make
// up one scheduling period T = n·t. Fewer than n available deltas
// aggregate whatever exists.
func (s *Sampler) WindowAggregate(cpu, n int) Delta {
	return s.history[cpu].SumLast(n)
}

// History is a fixed-capacity ring of the most recent deltas of one
// processor.
type History struct {
	buf  []Delta
	next int
	size int
}

// NewHistory creates a ring holding up to capacity deltas.
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		panic(fmt.Sprintf("counters: history capacity %d must be positive", capacity))
	}
	return &History{buf: make([]Delta, capacity)}
}

// Push appends a delta, evicting the oldest when full.
func (h *History) Push(d Delta) {
	h.buf[h.next] = d
	h.next = (h.next + 1) % len(h.buf)
	if h.size < len(h.buf) {
		h.size++
	}
}

// Len returns how many deltas are stored.
func (h *History) Len() int { return h.size }

// Last returns the i-th most recent delta (0 = newest). It panics when i is
// out of range — callers must check Len.
func (h *History) Last(i int) Delta {
	if i < 0 || i >= h.size {
		panic(fmt.Sprintf("counters: history index %d out of range [0,%d)", i, h.size))
	}
	pos := (h.next - 1 - i + 2*len(h.buf)) % len(h.buf)
	return h.buf[pos]
}

// SumLast aggregates the min(n, Len) most recent deltas into one.
func (h *History) SumLast(n int) Delta {
	if n > h.size {
		n = h.size
	}
	var sum Delta
	for i := 0; i < n; i++ {
		sum = sum.Add(h.Last(i))
	}
	return sum
}
