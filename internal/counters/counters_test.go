package counters

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestSampleSub(t *testing.T) {
	prev := Sample{Time: 1.0, Instructions: 100, Cycles: 200, L2Refs: 10, L3Refs: 5, MemRefs: 2}
	cur := Sample{Time: 1.5, Instructions: 300, Cycles: 600, L2Refs: 25, L3Refs: 9, MemRefs: 4, HaltedCycles: 7}
	d, err := cur.Sub(prev)
	if err != nil {
		t.Fatal(err)
	}
	if d.Window != 0.5 || d.Instructions != 200 || d.Cycles != 400 ||
		d.L2Refs != 15 || d.L3Refs != 4 || d.MemRefs != 2 || d.HaltedCycles != 7 {
		t.Errorf("delta = %+v", d)
	}
}

func TestSampleSubErrors(t *testing.T) {
	prev := Sample{Time: 2.0, Instructions: 100}
	if _, err := (Sample{Time: 1.0}).Sub(prev); err == nil {
		t.Error("out-of-order samples accepted")
	}
	if _, err := (Sample{Time: 3.0, Instructions: 50}).Sub(prev); err == nil {
		t.Error("backwards counter accepted")
	}
}

func TestDeltaAdd(t *testing.T) {
	a := Delta{Window: 0.01, Instructions: 10, Cycles: 20, L2Refs: 1}
	b := Delta{Window: 0.01, Instructions: 30, Cycles: 40, MemRefs: 2}
	sum := a.Add(b)
	if sum.Window != 0.02 || sum.Instructions != 40 || sum.Cycles != 60 ||
		sum.L2Refs != 1 || sum.MemRefs != 2 {
		t.Errorf("sum = %+v", sum)
	}
}

func TestDeltaDerivedMetrics(t *testing.T) {
	d := Delta{Window: 0.01, Instructions: 1000, Cycles: 2000, L2Refs: 100, L3Refs: 10, MemRefs: 5}
	if got := d.IPC(); got != 0.5 {
		t.Errorf("IPC = %v, want 0.5", got)
	}
	if got := d.L2PerInstr(); got != 0.1 {
		t.Errorf("L2PerInstr = %v", got)
	}
	if got := d.L3PerInstr(); got != 0.01 {
		t.Errorf("L3PerInstr = %v", got)
	}
	if got := d.MemPerInstr(); got != 0.005 {
		t.Errorf("MemPerInstr = %v", got)
	}
	if got := d.ObservedFrequencyHz(); got != 200000 {
		t.Errorf("ObservedFrequencyHz = %v, want 2e5", got)
	}
}

func TestDeltaZeroGuards(t *testing.T) {
	var d Delta
	if d.IPC() != 0 || d.L2PerInstr() != 0 || d.ObservedFrequencyHz() != 0 || d.HaltedFraction() != 0 {
		t.Error("zero delta should produce zero metrics, not NaN")
	}
	if !d.IsEmpty() {
		t.Error("zero delta should be empty")
	}
	if (Delta{Cycles: 1}).IsEmpty() {
		t.Error("non-zero delta reported empty")
	}
}

func TestHaltedFraction(t *testing.T) {
	d := Delta{Cycles: 25, HaltedCycles: 75}
	if got := d.HaltedFraction(); got != 0.75 {
		t.Errorf("HaltedFraction = %v, want 0.75", got)
	}
}

func TestDeltaValidate(t *testing.T) {
	if err := (Delta{Window: 0.01, Instructions: 100, Cycles: 100}).Validate(); err != nil {
		t.Errorf("good delta rejected: %v", err)
	}
	if err := (Delta{Window: -1}).Validate(); err == nil {
		t.Error("negative window accepted")
	}
	if err := (Delta{Instructions: 100, Cycles: 1}).Validate(); err == nil {
		t.Error("IPC=100 accepted")
	}
}

func TestSubThenAddRoundTrip(t *testing.T) {
	err := quick.Check(func(i1, c1, i2, c2 uint32) bool {
		a := Sample{Time: 0, Instructions: uint64(i1), Cycles: uint64(c1)}
		b := Sample{Time: 1, Instructions: uint64(i1) + uint64(i2), Cycles: uint64(c1) + uint64(c2)}
		d, err := b.Sub(a)
		if err != nil {
			return false
		}
		return d.Instructions == uint64(i2) && d.Cycles == uint64(c2) && d.Window == 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHistoryRing(t *testing.T) {
	h := NewHistory(3)
	if h.Len() != 0 {
		t.Errorf("fresh Len = %d", h.Len())
	}
	for i := 1; i <= 5; i++ {
		h.Push(Delta{Instructions: uint64(i)})
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d, want 3", h.Len())
	}
	// Newest first: 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if got := h.Last(i).Instructions; got != want {
			t.Errorf("Last(%d) = %d, want %d", i, got, want)
		}
	}
	if sum := h.SumLast(2); sum.Instructions != 9 {
		t.Errorf("SumLast(2) = %d, want 9", sum.Instructions)
	}
	// Requesting more than stored aggregates what exists.
	if sum := h.SumLast(10); sum.Instructions != 12 {
		t.Errorf("SumLast(10) = %d, want 12", sum.Instructions)
	}
}

func TestHistoryLastPanicsOutOfRange(t *testing.T) {
	h := NewHistory(2)
	h.Push(Delta{})
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	h.Last(1)
}

func TestNewHistoryPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewHistory(0)
}

// fakeReader is a deterministic Reader that advances counters linearly per
// read.
type fakeReader struct {
	n     int
	reads int
	fail  bool
}

func (f *fakeReader) NumCPUs() int { return f.n }

func (f *fakeReader) ReadCounters(cpu int) (Sample, error) {
	if f.fail {
		return Sample{}, fmt.Errorf("injected failure")
	}
	f.reads++
	k := uint64(f.reads)
	return Sample{
		Time:         float64(f.reads) * 0.01,
		Instructions: k * 1000 * uint64(cpu+1),
		Cycles:       k * 2000,
		L2Refs:       k * 10,
	}, nil
}

func TestSamplerCollect(t *testing.T) {
	r := &fakeReader{n: 2}
	s, err := NewSampler(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCPUs() != 2 {
		t.Errorf("NumCPUs = %d", s.NumCPUs())
	}
	// First collect primes only.
	if err := s.Collect(); err != nil {
		t.Fatal(err)
	}
	if s.History(0).Len() != 0 {
		t.Error("first collect should record no delta")
	}
	if err := s.Collect(); err != nil {
		t.Fatal(err)
	}
	if s.History(0).Len() != 1 || s.History(1).Len() != 1 {
		t.Error("second collect should record one delta per CPU")
	}
	d := s.History(1).Last(0)
	if d.Instructions == 0 || d.Cycles == 0 {
		t.Errorf("delta = %+v", d)
	}
	// Aggregate across several windows.
	for i := 0; i < 5; i++ {
		if err := s.Collect(); err != nil {
			t.Fatal(err)
		}
	}
	agg := s.WindowAggregate(0, 3)
	if agg.Window <= 0 || agg.Instructions == 0 {
		t.Errorf("aggregate = %+v", agg)
	}
}

func TestSamplerPropagatesReadErrors(t *testing.T) {
	r := &fakeReader{n: 1, fail: true}
	s, err := NewSampler(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(); err == nil {
		t.Error("want read error propagated")
	}
}

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(nil, 4); err == nil {
		t.Error("nil reader accepted")
	}
	if _, err := NewSampler(&fakeReader{n: 0}, 4); err == nil {
		t.Error("0-CPU reader accepted")
	}
	if _, err := NewSampler(&fakeReader{n: 1}, 0); err == nil {
		t.Error("zero history accepted")
	}
}

func TestDeltaIPCStaysFiniteProperty(t *testing.T) {
	err := quick.Check(func(instr, cyc uint32) bool {
		d := Delta{Instructions: uint64(instr), Cycles: uint64(cyc)}
		ipc := d.IPC()
		return !math.IsNaN(ipc) && !math.IsInf(ipc, 0)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
