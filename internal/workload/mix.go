package workload

import (
	"fmt"
)

// Mix multiprograms several programs onto one processor with round-robin
// time slicing at dispatch-quantum granularity, the way a standard OS
// scheduler would. The paper's predictor only ever sees the *aggregate*
// counters of the processor, so a Mix is how the reproduction creates the
// aggregation-masking effect §5 warns about ("aggregate performance counter
// data ... may mask the presence of a high CPU-intensity application among
// many memory-intensive applications").
type Mix struct {
	jobs []*Cursor
	next int
}

// NewMix builds a mix over the given programs.
func NewMix(programs ...Program) (*Mix, error) {
	if len(programs) == 0 {
		return nil, fmt.Errorf("workload: mix needs at least one program")
	}
	m := &Mix{}
	for _, p := range programs {
		c, err := NewCursor(p)
		if err != nil {
			return nil, err
		}
		m.jobs = append(m.jobs, c)
	}
	return m, nil
}

// MustMix is NewMix for static configuration; it panics on error.
func MustMix(programs ...Program) *Mix {
	m, err := NewMix(programs...)
	if err != nil {
		panic(err)
	}
	return m
}

// Jobs returns the mix's cursors (shared, for progress inspection).
func (m *Mix) Jobs() []*Cursor { return m.jobs }

// Add admits a new program into the mix mid-run — a job arrival in an open
// workload. The new job enters the round-robin rotation at its tail.
func (m *Mix) Add(p Program) error {
	c, err := NewCursor(p)
	if err != nil {
		return err
	}
	m.jobs = append(m.jobs, c)
	return nil
}

// Done reports whether every program in the mix has completed.
func (m *Mix) Done() bool {
	for _, j := range m.jobs {
		if !j.Done() {
			return false
		}
	}
	return true
}

// PickNext returns the next runnable cursor in round-robin order, or nil
// when all programs are done. Each call rotates the schedule so consecutive
// quanta go to different runnable jobs.
func (m *Mix) PickNext() *Cursor {
	n := len(m.jobs)
	for i := 0; i < n; i++ {
		idx := (m.next + i) % n
		if !m.jobs[idx].Done() {
			m.next = (idx + 1) % n
			return m.jobs[idx]
		}
	}
	return nil
}

// Reset rewinds every program in the mix.
func (m *Mix) Reset() {
	for _, j := range m.jobs {
		j.Reset()
	}
	m.next = 0
}

// Single wraps one program as a mix, the common single-job-per-CPU case of
// the paper's experiments.
func Single(p Program) (*Mix, error) { return NewMix(p) }
