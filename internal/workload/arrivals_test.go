package workload

import (
	"math"
	"math/rand"
	"testing"
)

func shortJob(i int) Program {
	return Program{
		Name:   "req",
		Phases: []Phase{{Name: "serve", Alpha: 1.2, Instructions: 1e6}},
	}
}

func TestMixAdd(t *testing.T) {
	m := MustMix(Program{Name: "a", Phases: []Phase{{Name: "p", Alpha: 1, Instructions: 10}}})
	if err := m.Add(Program{Name: "b", Phases: []Phase{{Name: "p", Alpha: 1, Instructions: 10}}}); err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs()) != 2 {
		t.Errorf("jobs = %d", len(m.Jobs()))
	}
	if err := m.Add(Program{}); err == nil {
		t.Error("invalid program admitted")
	}
}

func TestPoissonArrivalsStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const rate, horizon = 50.0, 100.0
	s, err := PoissonArrivals(rng, rate, horizon, 4, shortJob)
	if err != nil {
		t.Fatal(err)
	}
	// Mean count = rate·horizon = 5000; tolerate ±5σ (σ ≈ 71).
	n := float64(len(s))
	if math.Abs(n-5000) > 5*71 {
		t.Errorf("arrival count %v far from 5000", n)
	}
	// Sorted in time, all within horizon, CPUs round-robin.
	for i, a := range s {
		if a.At < 0 || a.At >= horizon {
			t.Fatalf("arrival %d at %v outside horizon", i, a.At)
		}
		if i > 0 && a.At < s[i-1].At {
			t.Fatal("arrivals not time-ordered")
		}
		if a.CPU != i%4 {
			t.Fatalf("arrival %d on cpu %d, want %d", i, a.CPU, i%4)
		}
	}
}

func TestPoissonArrivalsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PoissonArrivals(nil, 1, 1, 1, shortJob); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := PoissonArrivals(rng, 0, 1, 1, shortJob); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := PoissonArrivals(rng, 1, 0, 1, shortJob); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := PoissonArrivals(rng, 1, 1, 0, shortJob); err == nil {
		t.Error("zero cpus accepted")
	}
}

func TestDiurnalArrivalsModulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const base, depth, period, horizon = 100.0, 0.8, 10.0, 10.0
	s, err := DiurnalArrivals(rng, base, depth, period, horizon, 4, shortJob)
	if err != nil {
		t.Fatal(err)
	}
	// The first half-period (sin > 0) must carry clearly more arrivals
	// than the second (sin < 0).
	var first, second int
	for _, a := range s {
		if a.At < period/2 {
			first++
		} else {
			second++
		}
	}
	if first <= second {
		t.Errorf("diurnal modulation missing: %d vs %d", first, second)
	}
	// Peak-to-trough ratio roughly (1+depth)/(1-depth) = 9; demand ≥ 2×.
	if float64(first) < 2*float64(second) {
		t.Errorf("modulation too weak: %d vs %d", first, second)
	}
}

func TestDiurnalArrivalsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := DiurnalArrivals(rng, 1, 1.5, 1, 1, 1, shortJob); err == nil {
		t.Error("depth > 1 accepted")
	}
	if _, err := DiurnalArrivals(rng, 1, 0.5, 0, 1, 1, shortJob); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := DiurnalArrivals(nil, 1, 0.5, 1, 1, 1, shortJob); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := Schedule{{At: -1, CPU: 0, Program: shortJob(0)}}
	if bad.Validate() == nil {
		t.Error("negative time accepted")
	}
	bad = Schedule{{At: 1, CPU: -1, Program: shortJob(0)}}
	if bad.Validate() == nil {
		t.Error("negative cpu accepted")
	}
	bad = Schedule{{At: 1, CPU: 0, Program: Program{}}}
	if bad.Validate() == nil {
		t.Error("invalid program accepted")
	}
}

func TestScheduleSortedStable(t *testing.T) {
	s := Schedule{
		{At: 2, CPU: 0, Program: shortJob(0)},
		{At: 1, CPU: 1, Program: shortJob(1)},
		{At: 1, CPU: 2, Program: shortJob(2)},
	}
	sorted := s.Sorted()
	if sorted[0].At != 1 || sorted[1].At != 1 || sorted[2].At != 2 {
		t.Errorf("not sorted: %+v", sorted)
	}
	// Stable: equal-time arrivals keep submission order.
	if sorted[0].CPU != 1 || sorted[1].CPU != 2 {
		t.Error("sort not stable")
	}
	// Original unchanged.
	if s[0].At != 2 {
		t.Error("Sorted mutated input")
	}
}
