package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Arrival is one job arriving at a processor at a point in simulation time
// — the open-workload model of a server or server-farm node, where work
// shows up over the day rather than being staged up front (§1's server
// environment, and the demand-variation setting of the related DVS work).
type Arrival struct {
	At      float64 // seconds
	CPU     int
	Program Program
}

// Schedule is a time-ordered list of arrivals.
type Schedule []Arrival

// Validate checks ordering-independent constraints; the consumer sorts.
func (s Schedule) Validate() error {
	for i, a := range s {
		if a.At < 0 {
			return fmt.Errorf("workload: arrival %d at negative time %v", i, a.At)
		}
		if a.CPU < 0 {
			return fmt.Errorf("workload: arrival %d on negative CPU", i)
		}
		if err := a.Program.Validate(); err != nil {
			return fmt.Errorf("workload: arrival %d: %w", i, err)
		}
	}
	return nil
}

// Sorted returns the schedule ordered by arrival time.
func (s Schedule) Sorted() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// PoissonArrivals draws arrivals as a Poisson process with the given mean
// rate (jobs/second) over [0, horizon), assigning jobs round-robin across
// numCPUs and building each job with makeJob (called with the arrival
// index).
func PoissonArrivals(rng *rand.Rand, rate, horizon float64, numCPUs int, makeJob func(i int) Program) (Schedule, error) {
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	if rate <= 0 || horizon <= 0 || numCPUs <= 0 {
		return nil, fmt.Errorf("workload: rate %v, horizon %v, cpus %d must be positive", rate, horizon, numCPUs)
	}
	var out Schedule
	t := 0.0
	for i := 0; ; i++ {
		t += rng.ExpFloat64() / rate
		if t >= horizon {
			break
		}
		out = append(out, Arrival{At: t, CPU: i % numCPUs, Program: makeJob(i)})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// DiurnalArrivals draws arrivals from a time-varying Poisson process whose
// rate follows a raised sinusoid — the classic day/night demand curve of a
// server farm: rate(t) = base·(1 + depth·sin(2πt/period)). Thinning
// (Lewis-Shedler) keeps the draw exact.
func DiurnalArrivals(rng *rand.Rand, base, depth, period, horizon float64, numCPUs int, makeJob func(i int) Program) (Schedule, error) {
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	if base <= 0 || period <= 0 || horizon <= 0 || numCPUs <= 0 {
		return nil, fmt.Errorf("workload: base %v, period %v, horizon %v, cpus %d must be positive", base, period, horizon, numCPUs)
	}
	if depth < 0 || depth > 1 {
		return nil, fmt.Errorf("workload: depth %v out of [0,1]", depth)
	}
	rateMax := base * (1 + depth)
	var out Schedule
	t := 0.0
	i := 0
	for {
		t += rng.ExpFloat64() / rateMax
		if t >= horizon {
			break
		}
		rate := base * (1 + depth*math.Sin(2*math.Pi*t/period))
		if rng.Float64()*rateMax <= rate {
			out = append(out, Arrival{At: t, CPU: i % numCPUs, Program: makeJob(i)})
			i++
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
