package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Arrival is one job arriving at a processor at a point in simulation time
// — the open-workload model of a server or server-farm node, where work
// shows up over the day rather than being staged up front (§1's server
// environment, and the demand-variation setting of the related DVS work).
type Arrival struct {
	At      float64 // seconds
	CPU     int
	Program Program
}

// Schedule is a time-ordered list of arrivals.
type Schedule []Arrival

// Validate checks ordering-independent constraints; the consumer sorts.
func (s Schedule) Validate() error {
	for i, a := range s {
		if a.At < 0 {
			return fmt.Errorf("workload: arrival %d at negative time %v", i, a.At)
		}
		if a.CPU < 0 {
			return fmt.Errorf("workload: arrival %d on negative CPU", i)
		}
		if err := a.Program.Validate(); err != nil {
			return fmt.Errorf("workload: arrival %d: %w", i, err)
		}
	}
	return nil
}

// Sorted returns the schedule ordered by arrival time.
func (s Schedule) Sorted() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// PoissonArrivals draws arrivals as a Poisson process with the given mean
// rate (jobs/second) over [0, horizon), assigning jobs round-robin across
// numCPUs and building each job with makeJob (called with the arrival
// index).
func PoissonArrivals(rng *rand.Rand, rate, horizon float64, numCPUs int, makeJob func(i int) Program) (Schedule, error) {
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	if rate <= 0 || horizon <= 0 || numCPUs <= 0 {
		return nil, fmt.Errorf("workload: rate %v, horizon %v, cpus %d must be positive", rate, horizon, numCPUs)
	}
	var out Schedule
	t := 0.0
	for i := 0; ; i++ {
		t += rng.ExpFloat64() / rate
		if t >= horizon {
			break
		}
		out = append(out, Arrival{At: t, CPU: i % numCPUs, Program: makeJob(i)})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// InterArrival draws unit-mean inter-arrival gaps for a renewal process.
// Keeping the gap distribution at unit mean separates *shape* (burstiness,
// expressed by the coefficient of variation) from *rate*: the generator
// divides each gap by the instantaneous rate, so the same spec family
// covers Poisson (CV 1), hyper-dispersed Gamma (CV > 1) and regular
// Weibull (CV < 1) traffic.
type InterArrival interface {
	// Gap draws the next unit-mean gap.
	Gap(rng *rand.Rand) float64
	// CV returns the distribution's coefficient of variation (σ/µ).
	CV() float64
}

// ExpGaps is the exponential (memoryless) gap distribution: a renewal
// process with ExpGaps is a Poisson process. CV is 1 by construction.
type ExpGaps struct{}

// Gap implements InterArrival.
func (ExpGaps) Gap(rng *rand.Rand) float64 { return rng.ExpFloat64() }

// CV implements InterArrival.
func (ExpGaps) CV() float64 { return 1 }

// GammaGaps draws Gamma(shape k, scale 1/k) gaps — unit mean, CV = 1/√k.
// Shape < 1 yields bursty traffic (CV > 1), shape > 1 regular traffic.
type GammaGaps struct {
	Shape float64
}

// Gap implements InterArrival.
func (g GammaGaps) Gap(rng *rand.Rand) float64 {
	return sampleGamma(rng, g.Shape) / g.Shape
}

// CV implements InterArrival.
func (g GammaGaps) CV() float64 { return 1 / math.Sqrt(g.Shape) }

// WeibullGaps draws Weibull(shape k) gaps rescaled to unit mean
// (scale = 1/Γ(1+1/k)). Shape > 1 gives sub-exponential variability
// (ageing inter-arrival hazard), shape < 1 heavy-tailed bursts.
type WeibullGaps struct {
	Shape float64
}

// Gap implements InterArrival.
func (w WeibullGaps) Gap(rng *rand.Rand) float64 {
	// Inverse-CDF draw: (−ln(1−U))^(1/k), then normalise the mean away.
	return math.Pow(-math.Log1p(-rng.Float64()), 1/w.Shape) / math.Gamma(1+1/w.Shape)
}

// CV implements InterArrival.
func (w WeibullGaps) CV() float64 {
	m1 := math.Gamma(1 + 1/w.Shape)
	m2 := math.Gamma(1 + 2/w.Shape)
	return math.Sqrt(m2/(m1*m1) - 1)
}

// sampleGamma draws Gamma(shape, 1) by Marsaglia–Tsang squeeze, with the
// standard boost for shape < 1.
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		return sampleGamma(rng, shape+1) * math.Pow(rng.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// RateFn is a time-varying mean arrival rate in requests/second.
type RateFn func(t float64) float64

// ConstantRate returns a flat rate function.
func ConstantRate(rate float64) RateFn {
	return func(float64) float64 { return rate }
}

// DiurnalRate is the raised-sinusoid day/night demand curve:
// rate(t) = base·(1 + depth·sin(2π(t/period + phase))). Depth must be in
// [0,1) so the rate stays positive; phase is a fraction of the period.
func DiurnalRate(base, depth, period, phase float64) RateFn {
	return func(t float64) float64 {
		return base * (1 + depth*math.Sin(2*math.Pi*(t/period+phase)))
	}
}

// RenewalArrivals draws a rate-modulated renewal process over [0, horizon):
// each unit-mean gap from the distribution is stretched by the reciprocal
// of the instantaneous rate at the previous arrival. For ExpGaps and a
// constant rate this is exactly PoissonArrivals; for time-varying rates it
// is the standard inversion approximation (exact in the limit of rates
// varying slowly against the gap scale, which holds for diurnal periods
// ≫ 1/rate). Jobs are assigned round-robin across numCPUs.
func RenewalArrivals(rng *rand.Rand, gaps InterArrival, rate RateFn, horizon float64, numCPUs int, makeJob func(i int) Program) (Schedule, error) {
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	if gaps == nil || rate == nil {
		return nil, fmt.Errorf("workload: nil gap distribution or rate fn")
	}
	if horizon <= 0 || numCPUs <= 0 {
		return nil, fmt.Errorf("workload: horizon %v, cpus %d must be positive", horizon, numCPUs)
	}
	var out Schedule
	t := 0.0
	for i := 0; ; i++ {
		r := rate(t)
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("workload: rate %v at t=%v not positive finite", r, t)
		}
		t += gaps.Gap(rng) / r
		if t >= horizon {
			break
		}
		out = append(out, Arrival{At: t, CPU: i % numCPUs, Program: makeJob(i)})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// DiurnalArrivals draws arrivals from a time-varying Poisson process whose
// rate follows a raised sinusoid — the classic day/night demand curve of a
// server farm: rate(t) = base·(1 + depth·sin(2πt/period)). Thinning
// (Lewis-Shedler) keeps the draw exact.
func DiurnalArrivals(rng *rand.Rand, base, depth, period, horizon float64, numCPUs int, makeJob func(i int) Program) (Schedule, error) {
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	if base <= 0 || period <= 0 || horizon <= 0 || numCPUs <= 0 {
		return nil, fmt.Errorf("workload: base %v, period %v, horizon %v, cpus %d must be positive", base, period, horizon, numCPUs)
	}
	if depth < 0 || depth > 1 {
		return nil, fmt.Errorf("workload: depth %v out of [0,1]", depth)
	}
	rateMax := base * (1 + depth)
	var out Schedule
	t := 0.0
	i := 0
	for {
		t += rng.ExpFloat64() / rateMax
		if t >= horizon {
			break
		}
		rate := base * (1 + depth*math.Sin(2*math.Pi*t/period))
		if rng.Float64()*rateMax <= rate {
			out = append(out, Arrival{At: t, CPU: i % numCPUs, Program: makeJob(i)})
			i++
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
