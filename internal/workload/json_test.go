package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, p := range Apps(0.1) {
		var buf bytes.Buffer
		if err := SaveProgram(&buf, p); err != nil {
			t.Fatalf("%s: save: %v", p.Name, err)
		}
		got, err := LoadProgram(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", p.Name, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", p.Name, got, p)
		}
	}
}

func TestSaveRejectsInvalidProgram(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveProgram(&buf, Program{}); err == nil {
		t.Error("invalid program saved")
	}
	if buf.Len() != 0 {
		t.Error("partial output written for invalid program")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"unknown field": `{"name":"x","bogus":1,"phases":[{"name":"p","alpha":1,"instructions":1}]}`,
		"no phases":     `{"name":"x","phases":[]}`,
		"bad alpha":     `{"name":"x","phases":[{"name":"p","alpha":-1,"instructions":1}]}`,
		"bad loopfrom":  `{"name":"x","loop_from":9,"phases":[{"name":"p","alpha":1,"instructions":1}]}`,
		"bad rate":      `{"name":"x","phases":[{"name":"p","alpha":1,"instructions":1,"mem_per_instr":2}]}`,
	}
	for name, in := range cases {
		if _, err := LoadProgram(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSavedFormIsStable(t *testing.T) {
	// The on-disk field names are a compatibility contract.
	var buf bytes.Buffer
	p := Program{Name: "x", Phases: []Phase{{
		Name: "p", Alpha: 1.5, Instructions: 10, NonMemStallCyclesPerInstr: 0.1,
	}}}
	if err := SaveProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range []string{`"name"`, `"alpha"`, `"instructions"`, `"non_mem_stall_cycles_per_instr"`, `"l2_per_instr"`} {
		if !strings.Contains(out, key) {
			t.Errorf("serialised form missing %s:\n%s", key, out)
		}
	}
}
