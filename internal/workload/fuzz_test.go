package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadProgram checks the profile loader never panics and never accepts
// a profile that fails validation — arbitrary bytes either error out or
// yield a valid Program that survives a save/load round trip.
func FuzzLoadProgram(f *testing.F) {
	// Seed with a real profile and mutations of it.
	var buf bytes.Buffer
	if err := SaveProgram(&buf, Mcf(0.01)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"name":"x","phases":[{"name":"p","alpha":1,"instructions":1}]}`)
	f.Add(`{"name":"x","phases":[]}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(`{"name":"x","loops":-1,"loop_from":0,"phases":[{"name":"p","alpha":8,"instructions":18446744073709551615}]}`)

	f.Fuzz(func(t *testing.T, s string) {
		p, err := LoadProgram(strings.NewReader(s))
		if err != nil {
			return
		}
		if vErr := p.Validate(); vErr != nil {
			t.Fatalf("loader accepted invalid program: %v", vErr)
		}
		var out bytes.Buffer
		if err := SaveProgram(&out, p); err != nil {
			t.Fatalf("accepted program does not save: %v", err)
		}
		if _, err := LoadProgram(&out); err != nil {
			t.Fatalf("saved program does not reload: %v", err)
		}
	})
}
