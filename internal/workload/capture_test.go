package workload

import (
	"math"
	"testing"

	"repro/internal/counters"
	"repro/internal/memhier"
)

// windowFor synthesises the counter window an ideal machine would produce
// for a phase over instr instructions at freqHz.
func windowFor(ph Phase, instr uint64, freqHz float64) WindowObservation {
	h := memhier.P630()
	cpi := ph.TrueCyclesPerInstr(h, freqHz, 1)
	return WindowObservation{
		FreqHz: freqHz,
		Delta: counters.Delta{
			Window:       float64(instr) * cpi / freqHz,
			Instructions: instr,
			Cycles:       uint64(float64(instr) * cpi),
			L2Refs:       uint64(float64(instr) * ph.Rates.L2PerInstr),
			L3Refs:       uint64(float64(instr) * ph.Rates.L3PerInstr),
			MemRefs:      uint64(float64(instr) * ph.Rates.MemPerInstr),
		},
	}
}

func TestFromObservationsRecoversPhases(t *testing.T) {
	cpu := Phase{Name: "cpu", Alpha: 1.4, Instructions: 1}
	mem := Phase{Name: "mem", Alpha: 1.1,
		Rates:        memhier.AccessRates{L2PerInstr: 0.03, MemPerInstr: 0.02},
		Instructions: 1}
	var obs []WindowObservation
	// 5 windows of CPU work, then 5 of memory work.
	for i := 0; i < 5; i++ {
		obs = append(obs, windowFor(cpu, 10e6, 1e9))
	}
	for i := 0; i < 5; i++ {
		obs = append(obs, windowFor(mem, 1e6, 1e9))
	}
	prog, err := FromObservations("captured", obs, DefaultCaptureConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Similar consecutive windows merge: exactly 2 phases.
	if len(prog.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(prog.Phases))
	}
	p0, p1 := prog.Phases[0], prog.Phases[1]
	if math.Abs(p0.Alpha-1.4) > 0.02 {
		t.Errorf("phase 0 alpha %v, want ≈1.4", p0.Alpha)
	}
	if math.Abs(p1.Alpha-1.1) > 0.02 {
		t.Errorf("phase 1 alpha %v, want ≈1.1", p1.Alpha)
	}
	if p0.Instructions != 50e6 || p1.Instructions != 5e6 {
		t.Errorf("instruction totals %d/%d", p0.Instructions, p1.Instructions)
	}
	if math.Abs(p1.Rates.MemPerInstr-0.02) > 1e-3 {
		t.Errorf("phase 1 mem rate %v", p1.Rates.MemPerInstr)
	}
}

func TestFromObservationsFrequencyInvariant(t *testing.T) {
	// Capturing the same workload measured at a different frequency
	// recovers the same decomposition.
	mem := Phase{Name: "mem", Alpha: 1.1,
		Rates:        memhier.AccessRates{MemPerInstr: 0.02},
		Instructions: 1}
	at1000 := []WindowObservation{windowFor(mem, 1e6, 1e9)}
	at600 := []WindowObservation{windowFor(mem, 1e6, 0.6e9)}
	a, err := FromObservations("a", at1000, DefaultCaptureConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromObservations("b", at600, DefaultCaptureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Phases[0].Alpha-b.Phases[0].Alpha) > 0.03 {
		t.Errorf("alpha differs across capture frequencies: %v vs %v",
			a.Phases[0].Alpha, b.Phases[0].Alpha)
	}
}

func TestFromObservationsSkipsEmptyWindows(t *testing.T) {
	cpu := Phase{Name: "cpu", Alpha: 1.4, Instructions: 1}
	obs := []WindowObservation{
		windowFor(cpu, 1e6, 1e9),
		{FreqHz: 1e9}, // idle window
		windowFor(cpu, 1e6, 1e9),
	}
	prog, err := FromObservations("x", obs, DefaultCaptureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Phases) != 1 {
		t.Errorf("phases = %d, want 1 (idle skipped, neighbours merged)", len(prog.Phases))
	}
}

func TestFromObservationsValidation(t *testing.T) {
	cfg := DefaultCaptureConfig()
	if _, err := FromObservations("", nil, cfg); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := FromObservations("x", nil, cfg); err == nil {
		t.Error("no observations accepted")
	}
	if _, err := FromObservations("x", []WindowObservation{{FreqHz: 0, Delta: counters.Delta{Instructions: 1, Cycles: 1}}}, cfg); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := FromObservations("x", []WindowObservation{{FreqHz: 1e9}}, cfg); err == nil {
		t.Error("all-empty observations accepted")
	}
	bad := cfg
	bad.MergeTolerance = 0
	if _, err := FromObservations("x", []WindowObservation{windowFor(Phase{Name: "p", Alpha: 1, Instructions: 1}, 1e6, 1e9)}, bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestFromObservationsClampsAlpha(t *testing.T) {
	// A window whose memory component exceeds its CPI (measurement noise)
	// clamps α at the ceiling rather than going negative.
	o := WindowObservation{
		FreqHz: 1e9,
		Delta: counters.Delta{
			Window: 0.01, Instructions: 1e6, Cycles: 5e5, // IPC 2
			MemRefs: 5e4, // 0.05/instr · 393 cycles ≫ CPI 0.5
		},
	}
	prog, err := FromObservations("x", []WindowObservation{o}, DefaultCaptureConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Phases[0].Alpha; got != 8 {
		t.Errorf("alpha = %v, want clamp at 8", got)
	}
}

// TestCaptureReplayRoundTrip is the headline: capture a run's counter
// windows, rebuild a profile, replay it, and compare the counter signature.
func TestCaptureReplayRoundTrip(t *testing.T) {
	orig := Mcf(0.05)
	// Synthesize per-phase windows (one per phase visit at 1 GHz).
	var obs []WindowObservation
	cur, err := NewCursor(orig)
	if err != nil {
		t.Fatal(err)
	}
	for !cur.Done() {
		ph := cur.Current()
		n, _ := cur.AdvanceWithinPhase(ph.Instructions)
		obs = append(obs, windowFor(ph, n, 1e9))
	}
	captured, err := FromObservations("mcf-replay", obs, DefaultCaptureConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Total instructions conserved.
	wantTotal, _ := orig.TotalInstructions()
	gotTotal, _ := captured.TotalInstructions()
	if gotTotal != wantTotal {
		t.Errorf("instructions %d, want %d", gotTotal, wantTotal)
	}
	// Instruction-weighted stall time conserved within 2%.
	h := memhier.P630()
	weighted := func(p Program) float64 {
		var s, n float64
		cur, _ := NewCursor(p)
		for !cur.Done() {
			ph := cur.Current()
			c, _ := cur.AdvanceWithinPhase(ph.Instructions)
			s += ph.StallTimePerInstr(h) * float64(c)
			n += float64(c)
		}
		return s / n
	}
	a, b := weighted(orig), weighted(captured)
	if math.Abs(a-b)/a > 0.02 {
		t.Errorf("weighted stall %v vs %v", b, a)
	}
}
