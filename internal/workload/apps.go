package workload

import (
	"fmt"

	"repro/internal/memhier"
)

// This file models the four real applications of the paper's evaluation
// (§7.3): gzip and gap from SPEC CPU2000 (CPU-intensive) and mcf from SPEC
// plus health from Olden (memory-intensive). We obviously cannot run the
// SPEC binaries; each profile encodes the phase structure that drives the
// paper's results — per-phase ILP (α), memory reference rates, and phase
// lengths — calibrated so that:
//
//   - gzip and gap saturate only near the top of the frequency range and
//     lose performance roughly linearly (slightly sub-linearly) with a
//     frequency cap (Table 3: 0.79/0.8 @ 75 W, 0.52/0.54 @ 35 W);
//   - mcf and health saturate around 600–650 MHz, losing nothing at 75 W
//     and significant performance only at 35 W (Table 3: 0.99/1 @ 75 W,
//     0.81/0.72 @ 35 W; Figure 8: majority of time at 650 MHz);
//   - every program has distinct init and exit phases, since Table 2
//     measures predictor error with and without them.

// AppScale multiplies every phase's instruction count, letting experiments
// trade simulated run length for harness time. 1.0 reproduces roughly the
// paper-scale multi-second runs.
type AppScale float64

func scaleInstr(n uint64, s AppScale) uint64 {
	if s <= 0 {
		s = 1
	}
	v := uint64(float64(n) * float64(s))
	if v == 0 {
		v = 1
	}
	return v
}

// Gzip returns the gzip (SPEC CPU2000 164.gzip) profile: compression is
// dominated by CPU-bound deflate/huffman phases over a working set that
// mostly fits in L2.
func Gzip(scale AppScale) Program {
	mk := func(n uint64) uint64 { return scaleInstr(n, scale) }
	return Program{
		Name: "gzip",
		Phases: []Phase{
			{Name: "init", Alpha: 1.0,
				Rates:        memhier.AccessRates{L2PerInstr: 0.012, L3PerInstr: 0.004, MemPerInstr: 0.004},
				Instructions: mk(400e6), NonMemStallCyclesPerInstr: 0.08},
			{Name: "deflate", Alpha: 1.3,
				Rates:        memhier.AccessRates{L2PerInstr: 0.008, L3PerInstr: 0.001, MemPerInstr: 0.0002},
				Instructions: mk(2500e6), NonMemStallCyclesPerInstr: 0.10},
			{Name: "huffman", Alpha: 1.5,
				Rates:        memhier.AccessRates{L2PerInstr: 0.004, L3PerInstr: 0.0004, MemPerInstr: 0.0001},
				Instructions: mk(1500e6), NonMemStallCyclesPerInstr: 0.06},
			{Name: "crc-write", Alpha: 1.1,
				Rates:        memhier.AccessRates{L2PerInstr: 0.010, L3PerInstr: 0.002, MemPerInstr: 0.0006},
				Instructions: mk(800e6), NonMemStallCyclesPerInstr: 0.08},
			{Name: "exit", Alpha: 1.2,
				Rates:        memhier.AccessRates{L2PerInstr: 0.006, L3PerInstr: 0.001, MemPerInstr: 0.0003},
				Instructions: mk(100e6), NonMemStallCyclesPerInstr: 0.05},
		},
		// Loop the three compression phases: gzip compresses its input in
		// buffer-sized chunks with near-identical behaviour per chunk.
		LoopFrom: 1,
		Loops:    6,
	}
}

// Gap returns the gap (SPEC CPU2000 254.gap) profile: computational group
// theory, CPU-intensive with periodic garbage-collection sweeps that touch
// more of the heap.
func Gap(scale AppScale) Program {
	mk := func(n uint64) uint64 { return scaleInstr(n, scale) }
	return Program{
		Name: "gap",
		Phases: []Phase{
			{Name: "init", Alpha: 0.9,
				Rates:        memhier.AccessRates{L2PerInstr: 0.015, L3PerInstr: 0.005, MemPerInstr: 0.005},
				Instructions: mk(300e6), NonMemStallCyclesPerInstr: 0.10},
			{Name: "group-ops", Alpha: 1.1,
				Rates:        memhier.AccessRates{L2PerInstr: 0.009, L3PerInstr: 0.0012, MemPerInstr: 0.0003},
				Instructions: mk(2200e6), NonMemStallCyclesPerInstr: 0.12},
			{Name: "gc-sweep", Alpha: 0.9,
				Rates:        memhier.AccessRates{L2PerInstr: 0.014, L3PerInstr: 0.004, MemPerInstr: 0.0015},
				Instructions: mk(500e6), NonMemStallCyclesPerInstr: 0.10},
			{Name: "vector-ops", Alpha: 1.3,
				Rates:        memhier.AccessRates{L2PerInstr: 0.006, L3PerInstr: 0.0008, MemPerInstr: 0.0002},
				Instructions: mk(1500e6), NonMemStallCyclesPerInstr: 0.08},
			{Name: "exit", Alpha: 1.1,
				Rates:        memhier.AccessRates{L2PerInstr: 0.008, L3PerInstr: 0.002, MemPerInstr: 0.0005},
				Instructions: mk(100e6), NonMemStallCyclesPerInstr: 0.06},
		},
		LoopFrom: 1,
		Loops:    6,
	}
}

// Mcf returns the mcf (SPEC CPU2000 181.mcf) profile: single-depot vehicle
// scheduling by network simplex, notoriously memory-bound pointer chasing
// whose dominant phase saturates around 650 MHz on the p630.
func Mcf(scale AppScale) Program {
	mk := func(n uint64) uint64 { return scaleInstr(n, scale) }
	return Program{
		Name: "mcf",
		Phases: []Phase{
			{Name: "init", Alpha: 0.9,
				Rates:        memhier.AccessRates{L2PerInstr: 0.020, L3PerInstr: 0.008, MemPerInstr: 0.010},
				Instructions: mk(60e6), NonMemStallCyclesPerInstr: 0.10},
			// Network simplex: calibrated so the *effective* α the counters
			// imply (ILP degraded by the invisible non-memory stalls) times
			// Σr·T is ≈ 9.9 at 1 GHz → ε=5% saturation at 650 MHz, the
			// Figure 8 residency mode.
			{Name: "simplex", Alpha: 1.1,
				Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.0240},
				Instructions: mk(330e6), NonMemStallCyclesPerInstr: 0.10},
			// Pricing pass: shorter, more CPU-bound — the phase that needs
			// 600 MHz+ and makes the 35 W budget hurt (§8.4).
			{Name: "price", Alpha: 1.2,
				Rates:        memhier.AccessRates{L2PerInstr: 0.012, L3PerInstr: 0.002, MemPerInstr: 0.0025},
				Instructions: mk(70e6), NonMemStallCyclesPerInstr: 0.10},
			{Name: "exit", Alpha: 1.0,
				Rates:        memhier.AccessRates{L2PerInstr: 0.010, L3PerInstr: 0.003, MemPerInstr: 0.002},
				Instructions: mk(20e6), NonMemStallCyclesPerInstr: 0.06},
		},
		LoopFrom: 1,
		Loops:    10,
	}
}

// Health returns the health (Olden) profile: hierarchical health-care
// simulation over linked lists — memory-bound like mcf but with a larger
// CPU-bound bookkeeping share, so it degrades more at 35 W (0.72 vs mcf's
// 0.81 in Table 3).
func Health(scale AppScale) Program {
	mk := func(n uint64) uint64 { return scaleInstr(n, scale) }
	return Program{
		Name: "health",
		Phases: []Phase{
			{Name: "init", Alpha: 0.9,
				Rates:        memhier.AccessRates{L2PerInstr: 0.018, L3PerInstr: 0.006, MemPerInstr: 0.012},
				Instructions: mk(50e6), NonMemStallCyclesPerInstr: 0.10},
			// List traversal: saturates near 650 MHz like mcf.
			{Name: "traverse", Alpha: 1.0,
				Rates:        memhier.AccessRates{L2PerInstr: 0.028, L3PerInstr: 0.008, MemPerInstr: 0.0260},
				Instructions: mk(260e6), NonMemStallCyclesPerInstr: 0.10},
			// Village bookkeeping: CPU-bound, a much larger time share than
			// mcf's pricing pass — why health degrades more than mcf at
			// 35 W (Table 3: 0.72 vs 0.81).
			{Name: "simulate", Alpha: 1.2,
				Rates:        memhier.AccessRates{L2PerInstr: 0.010, L3PerInstr: 0.0015, MemPerInstr: 0.0012},
				Instructions: mk(320e6), NonMemStallCyclesPerInstr: 0.10},
			{Name: "exit", Alpha: 1.0,
				Rates:        memhier.AccessRates{L2PerInstr: 0.010, L3PerInstr: 0.003, MemPerInstr: 0.002},
				Instructions: mk(15e6), NonMemStallCyclesPerInstr: 0.06},
		},
		LoopFrom: 1,
		Loops:    10,
	}
}

// App returns a named application profile, for CLI tools.
func App(name string, scale AppScale) (Program, error) {
	switch name {
	case "gzip":
		return Gzip(scale), nil
	case "gap":
		return Gap(scale), nil
	case "mcf":
		return Mcf(scale), nil
	case "health":
		return Health(scale), nil
	case "idle":
		return HotIdle(), nil
	default:
		return Program{}, fmt.Errorf("workload: unknown application %q (want gzip, gap, mcf, health or idle)", name)
	}
}

// Apps lists the four benchmark applications of §7.3 in paper order.
func Apps(scale AppScale) []Program {
	return []Program{Gzip(scale), Gap(scale), Mcf(scale), Health(scale)}
}
