package workload

import (
	"fmt"

	"repro/internal/memhier"
)

// SyntheticConfig parameterises the paper's synthetic benchmark (§7.3): a
// single-threaded program with two phases, each with its own length and
// ratio of CPU-intensive to memory-intensive work, plus short
// initialisation and termination phases (whose exclusion defines the CPU3*
// column of Table 2). The benchmark's memory footprint is far larger than
// L3, so an L1 miss is highly likely to become a memory access.
type SyntheticConfig struct {
	// Phase1Intensity and Phase2Intensity are CPU intensities in percent:
	// 100 = pure CPU work, 0 = maximally memory-intensive.
	Phase1Intensity float64
	Phase2Intensity float64
	// Phase1Instructions and Phase2Instructions are the phase lengths.
	Phase1Instructions uint64
	Phase2Instructions uint64
	// Loops is how many extra times the two phases repeat after the first
	// pass; negative loops forever.
	Loops int
	// IncludeInitExit adds the benchmark's initialisation (allocating and
	// touching the large footprint — memory-heavy) and termination
	// (reporting — CPU-ish) phases.
	IncludeInitExit bool
}

// Synthetic workload calibration constants. The post-L1 rate ramps from
// synBaseRate at 100% CPU intensity (even pure-CPU phases suffer some
// memory stalls, §8.3) to synBaseRate+synRampRate at 0%. The footprint
// routes post-L1 traffic through the miss model so most of it reaches DRAM.
const (
	synAlpha         = 1.4
	synBaseRate      = 0.001
	synRampRate      = 0.019
	synFootprint     = int64(3) << 30 // 3 GB, ≫ 32 MB L3
	synNonMemStall   = 0.06           // invisible-to-counters stall cycles/instr
	synInitIntensity = 15             // init touches the whole footprint
	synExitIntensity = 90             // exit reports results
)

// SyntheticIntensityPhase builds one phase of the synthetic benchmark at
// the given CPU intensity (0–100) under hierarchy h.
func SyntheticIntensityPhase(name string, intensityPct float64, instructions uint64, h memhier.Hierarchy) (Phase, error) {
	if intensityPct < 0 || intensityPct > 100 {
		return Phase{}, fmt.Errorf("workload: intensity %v%% out of [0,100]", intensityPct)
	}
	if instructions == 0 {
		return Phase{}, fmt.Errorf("workload: phase %q needs instructions", name)
	}
	m := 1 - intensityPct/100
	postL1 := synBaseRate + synRampRate*m
	// Route post-L1 traffic through the power-law miss model with the
	// benchmark's huge footprint; AccessesPerInstr·L1MissRatio is the
	// post-L1 rate, split here as rate×1 for clarity.
	model := memhier.MissModel{
		FootprintBytes:   synFootprint,
		AccessesPerInstr: postL1,
		L1MissRatio:      1,
		Theta:            0.5,
	}
	rates, err := model.Rates(h)
	if err != nil {
		return Phase{}, err
	}
	return Phase{
		Name:                      name,
		Alpha:                     synAlpha,
		Rates:                     rates,
		Instructions:              instructions,
		NonMemStallCyclesPerInstr: synNonMemStall,
	}, nil
}

// Synthetic builds the full synthetic benchmark program.
func Synthetic(cfg SyntheticConfig, h memhier.Hierarchy) (Program, error) {
	p1, err := SyntheticIntensityPhase(
		fmt.Sprintf("phase1-cpu%.0f", cfg.Phase1Intensity),
		cfg.Phase1Intensity, cfg.Phase1Instructions, h)
	if err != nil {
		return Program{}, err
	}
	p2, err := SyntheticIntensityPhase(
		fmt.Sprintf("phase2-cpu%.0f", cfg.Phase2Intensity),
		cfg.Phase2Intensity, cfg.Phase2Instructions, h)
	if err != nil {
		return Program{}, err
	}

	prog := Program{
		Name: fmt.Sprintf("synthetic-%.0f/%.0f", cfg.Phase1Intensity, cfg.Phase2Intensity),
	}
	if !cfg.IncludeInitExit {
		prog.Phases = []Phase{p1, p2}
		prog.Loops = cfg.Loops
		if err := prog.Validate(); err != nil {
			return Program{}, err
		}
		return prog, nil
	}

	initLen := (cfg.Phase1Instructions + cfg.Phase2Instructions) / 20
	if initLen == 0 {
		initLen = 1
	}
	initPhase, err := SyntheticIntensityPhase("init", synInitIntensity, initLen, h)
	if err != nil {
		return Program{}, err
	}
	exitPhase, err := SyntheticIntensityPhase("exit", synExitIntensity, initLen, h)
	if err != nil {
		return Program{}, err
	}
	switch {
	case cfg.Loops < 0:
		// Infinite runs loop the measurement phases and never reach exit.
		prog.Phases = []Phase{initPhase, p1, p2}
		prog.LoopFrom = 1
		prog.Loops = -1
	default:
		// Init once, the measurement pair 1+Loops times, exit once. The
		// cursor's loop suffix would repeat exit too, so unroll instead.
		prog.Phases = []Phase{initPhase}
		for i := 0; i <= cfg.Loops; i++ {
			prog.Phases = append(prog.Phases, p1, p2)
		}
		prog.Phases = append(prog.Phases, exitPhase)
	}
	if err := prog.Validate(); err != nil {
		return Program{}, err
	}
	return prog, nil
}

// HotIdle returns the Power4+ idle loop: a tight, CPU-intensive loop with
// an observed IPC around 1.3 (§7.1) that never touches memory and never
// ends. Without idle detection, a scheduler dutifully runs it at maximum
// frequency — the pathology §5 describes.
func HotIdle() Program {
	return Program{
		Name: "hot-idle",
		Phases: []Phase{{
			Name:         "spin",
			Alpha:        1.3,
			Rates:        memhier.AccessRates{},
			Instructions: 1 << 30,
		}},
		LoopFrom: 0,
		Loops:    -1,
	}
}

// InstructionsForDuration estimates how many instructions of phase p run in
// the given number of seconds at frequency fHz (ground truth without
// contention), for sizing workloads to target wall-clock lengths.
func InstructionsForDuration(p Phase, h memhier.Hierarchy, fHz, seconds float64) uint64 {
	cpi := p.TrueCyclesPerInstr(h, fHz, 1)
	rate := fHz / cpi // instructions per second
	n := rate * seconds
	if n < 1 {
		return 1
	}
	return uint64(n)
}
