package workload

import (
	"fmt"
)

// Program is a named sequence of phases with optional looping: after the
// last phase completes, execution re-enters the phase at LoopFrom for Loops
// additional iterations (Loops < 0 loops forever — how the idle loop and
// steady-state server workloads are expressed).
type Program struct {
	Name     string
	Phases   []Phase
	LoopFrom int
	// Loops is the number of additional passes over Phases[LoopFrom:]
	// after the first complete pass; negative means loop forever.
	Loops int
}

// Validate checks the program's structure and every phase.
func (p Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: program must have a name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: program %q has no phases", p.Name)
	}
	if p.LoopFrom < 0 || p.LoopFrom >= len(p.Phases) {
		return fmt.Errorf("workload: program %q LoopFrom %d out of range", p.Name, p.LoopFrom)
	}
	for _, ph := range p.Phases {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("workload: program %q: %w", p.Name, err)
		}
	}
	return nil
}

// TotalInstructions returns the program's total instruction count, or
// (0, false) for infinite programs.
func (p Program) TotalInstructions() (uint64, bool) {
	if p.Loops < 0 {
		return 0, false
	}
	var first, loop uint64
	for i, ph := range p.Phases {
		first += ph.Instructions
		if i >= p.LoopFrom {
			loop += ph.Instructions
		}
	}
	return first + uint64(p.Loops)*loop, true
}

// Cursor tracks execution progress through a program. The machine advances
// it instruction by instruction (in bulk).
type Cursor struct {
	prog      Program
	phaseIdx  int
	executed  uint64 // instructions executed within the current phase
	loopsLeft int
	done      bool
}

// NewCursor positions a cursor at the start of the program.
func NewCursor(p Program) (*Cursor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Cursor{prog: p, loopsLeft: p.Loops}, nil
}

// Program returns the program being executed.
func (c *Cursor) Program() Program { return c.prog }

// Done reports whether the program has run to completion.
func (c *Cursor) Done() bool { return c.done }

// Current returns the phase the cursor is in. Calling Current on a done
// cursor returns the last phase (harmless for bookkeeping).
func (c *Cursor) Current() Phase { return c.prog.Phases[c.phaseIdx] }

// PhaseIndex returns the index of the current phase.
func (c *Cursor) PhaseIndex() int { return c.phaseIdx }

// RemainingInPhase returns how many instructions are left in the current
// phase.
func (c *Cursor) RemainingInPhase() uint64 {
	return c.prog.Phases[c.phaseIdx].Instructions - c.executed
}

// Advance consumes up to n instructions and returns how many were actually
// consumed (less than n when the program completes mid-quantum). Phase
// boundaries are honoured: the caller should re-read Current after an
// Advance that crossed one, which it detects by comparing PhaseIndex.
func (c *Cursor) Advance(n uint64) uint64 {
	var consumed uint64
	for n > 0 && !c.done {
		rem := c.RemainingInPhase()
		step := n
		if step > rem {
			step = rem
		}
		c.executed += step
		consumed += step
		n -= step
		if c.executed == c.prog.Phases[c.phaseIdx].Instructions {
			c.nextPhase()
		}
	}
	return consumed
}

// AdvanceWithinPhase consumes up to n instructions but never crosses a
// phase boundary; it returns the consumed count and whether the phase ended
// exactly at the boundary. The machine uses it so each simulated quantum
// has homogeneous characteristics.
func (c *Cursor) AdvanceWithinPhase(n uint64) (consumed uint64, phaseEnded bool) {
	if c.done {
		return 0, false
	}
	rem := c.RemainingInPhase()
	if n > rem {
		n = rem
	}
	c.executed += n
	if c.executed == c.prog.Phases[c.phaseIdx].Instructions {
		c.nextPhase()
		return n, true
	}
	return n, false
}

func (c *Cursor) nextPhase() {
	c.executed = 0
	c.phaseIdx++
	if c.phaseIdx < len(c.prog.Phases) {
		return
	}
	// End of pass: loop or finish.
	if c.loopsLeft != 0 {
		if c.loopsLeft > 0 {
			c.loopsLeft--
		}
		c.phaseIdx = c.prog.LoopFrom
		return
	}
	c.phaseIdx = len(c.prog.Phases) - 1
	c.done = true
}

// Reset rewinds the cursor to the start of the program.
func (c *Cursor) Reset() {
	c.phaseIdx = 0
	c.executed = 0
	c.loopsLeft = c.prog.Loops
	c.done = false
}

// Rebind repoints the cursor at a new program and rewinds it, without
// allocating. It is the reuse path for open request-serving workloads: a
// serving station keeps one cursor per CPU and rebinds it to each request's
// program as the previous one completes, so the per-request steady-state
// path stays at zero allocations. The program must be valid; callers on a
// hot path validate the template once up front and then mutate only
// instruction counts.
func (c *Cursor) Rebind(p Program) {
	c.prog = p
	c.Reset()
}
