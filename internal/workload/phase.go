// Package workload models the programs the simulated machine executes: the
// paper's synthetic benchmark with its adjustable CPU/memory intensity and
// two-phase structure (§7.3), profile models of the four real applications
// studied (gzip, gap, mcf, health), the Power4+ "hot" idle loop, and
// multiprogrammed mixes.
//
// A workload is a sequence of phases. Each phase is characterised exactly
// the way the paper's performance model sees work: a perfect-machine IPC α,
// per-instruction access rates to L2/L3/memory, and a length in
// instructions. Phases additionally carry ground-truth imperfections the
// predictor cannot observe (non-memory stalls), which generate the
// predictor error the paper measures in Table 2.
package workload

import (
	"fmt"

	"repro/internal/memhier"
)

// Phase is a stretch of execution with stable characteristics.
type Phase struct {
	// Name labels the phase in logs ("init", "cpu", "mem", …).
	Name string
	// Alpha is the IPC of a perfect machine with infinite L1 and no
	// stalls — the α of the paper's IPC equation. It captures both the
	// workload's ILP and the processor's width.
	Alpha float64
	// Rates are the per-instruction reference rates serviced by L2, L3
	// and memory.
	Rates memhier.AccessRates
	// Instructions is the phase length.
	Instructions uint64
	// NonMemStallCyclesPerInstr adds frequency-scaled stall cycles per
	// instruction (branch mispredictions, dependency chains) that the
	// performance counters do NOT expose. The paper notes "the predictor
	// currently does not account for non-memory stalls" as an error
	// source; this field is that error source.
	NonMemStallCyclesPerInstr float64
}

// Validate checks the phase parameters are physical.
func (p Phase) Validate() error {
	if p.Alpha <= 0 || p.Alpha > 8 {
		return fmt.Errorf("workload: phase %q alpha %v out of (0,8]", p.Name, p.Alpha)
	}
	if err := p.Rates.Validate(); err != nil {
		return fmt.Errorf("workload: phase %q: %w", p.Name, err)
	}
	if p.Instructions == 0 {
		return fmt.Errorf("workload: phase %q has zero instructions", p.Name)
	}
	if p.NonMemStallCyclesPerInstr < 0 || p.NonMemStallCyclesPerInstr > 100 {
		return fmt.Errorf("workload: phase %q non-mem stall %v out of [0,100]", p.Name, p.NonMemStallCyclesPerInstr)
	}
	return nil
}

// StallTimePerInstr returns the phase's frequency-invariant memory time per
// instruction under hierarchy h, in seconds.
func (p Phase) StallTimePerInstr(h memhier.Hierarchy) float64 {
	return p.Rates.StallTimePerInstr(h)
}

// TrueCyclesPerInstr returns the ground-truth cycles one instruction costs
// at frequency fHz: the frequency-dependent core component (1/α plus
// non-memory stalls) plus the memory component converted to cycles. The
// latencyScale argument lets the machine inflate memory latency for shared-
// cache contention and jitter; the predictor always assumes 1.
func (p Phase) TrueCyclesPerInstr(h memhier.Hierarchy, fHz float64, latencyScale float64) float64 {
	core := 1/p.Alpha + p.NonMemStallCyclesPerInstr
	mem := p.StallTimePerInstr(h) * latencyScale * fHz
	return core + mem
}

// IsCPUBound reports whether the phase's memory time is under 10% of its
// core time at the given nominal frequency.
func (p Phase) IsCPUBound(h memhier.Hierarchy, fHz float64) bool {
	core := 1 / p.Alpha
	mem := p.StallTimePerInstr(h) * fHz
	return mem < 0.1*core
}
