package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/memhier"
)

// This file provides a stable on-disk representation for workload
// profiles, so characterisations captured on one system (e.g. counter
// traces post-processed into phases) can be replayed in the simulator —
// the workflow the original group used between the measurement study [2]
// and this paper.

// programJSON is the serialised form of a Program. It mirrors the public
// structure but with explicit field names so the format survives internal
// renames.
type programJSON struct {
	Name     string      `json:"name"`
	LoopFrom int         `json:"loop_from,omitempty"`
	Loops    int         `json:"loops,omitempty"`
	Phases   []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Name         string  `json:"name"`
	Alpha        float64 `json:"alpha"`
	L2PerInstr   float64 `json:"l2_per_instr"`
	L3PerInstr   float64 `json:"l3_per_instr"`
	MemPerInstr  float64 `json:"mem_per_instr"`
	Instructions uint64  `json:"instructions"`
	NonMemStall  float64 `json:"non_mem_stall_cycles_per_instr,omitempty"`
}

// SaveProgram writes the program as indented JSON. The program is
// validated first; an invalid profile is never written.
func SaveProgram(w io.Writer, p Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	out := programJSON{
		Name:     p.Name,
		LoopFrom: p.LoopFrom,
		Loops:    p.Loops,
	}
	for _, ph := range p.Phases {
		out.Phases = append(out.Phases, phaseJSON{
			Name:         ph.Name,
			Alpha:        ph.Alpha,
			L2PerInstr:   ph.Rates.L2PerInstr,
			L3PerInstr:   ph.Rates.L3PerInstr,
			MemPerInstr:  ph.Rates.MemPerInstr,
			Instructions: ph.Instructions,
			NonMemStall:  ph.NonMemStallCyclesPerInstr,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadProgram reads a JSON profile and validates it.
func LoadProgram(r io.Reader) (Program, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var in programJSON
	if err := dec.Decode(&in); err != nil {
		return Program{}, fmt.Errorf("workload: decode profile: %w", err)
	}
	p := Program{
		Name:     in.Name,
		LoopFrom: in.LoopFrom,
		Loops:    in.Loops,
	}
	for _, ph := range in.Phases {
		p.Phases = append(p.Phases, Phase{
			Name:  ph.Name,
			Alpha: ph.Alpha,
			Rates: memhier.AccessRates{
				L2PerInstr:  ph.L2PerInstr,
				L3PerInstr:  ph.L3PerInstr,
				MemPerInstr: ph.MemPerInstr,
			},
			Instructions:              ph.Instructions,
			NonMemStallCyclesPerInstr: ph.NonMemStall,
		})
	}
	if err := p.Validate(); err != nil {
		return Program{}, err
	}
	return p, nil
}
