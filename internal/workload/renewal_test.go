package workload

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// gapStats draws n gaps and returns the empirical mean and CV.
func gapStats(t *testing.T, g InterArrival, seed int64, n int) (mean, cv float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Gap(rng)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("gap draw %d = %v", i, v)
		}
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

// TestGapDistributionsMoments pools draws across 100 seeds per
// distribution and checks the empirical mean is 1 and the empirical CV
// matches the declared CV() within tolerance — the statistical contract
// the serving layer's arrival specs rely on.
func TestGapDistributionsMoments(t *testing.T) {
	cases := []struct {
		name string
		g    InterArrival
	}{
		{"exp", ExpGaps{}},
		{"gamma-cv2", GammaGaps{Shape: 0.25}},
		{"gamma-cv0.5", GammaGaps{Shape: 4}},
		{"weibull-k0.7", WeibullGaps{Shape: 0.7}},
		{"weibull-k2", WeibullGaps{Shape: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var meanSum, cvSum float64
			const seeds = 100
			for s := int64(1); s <= seeds; s++ {
				m, cv := gapStats(t, tc.g, s, 2000)
				meanSum += m
				cvSum += cv
			}
			mean, cv := meanSum/seeds, cvSum/seeds
			if math.Abs(mean-1) > 0.02 {
				t.Errorf("pooled mean = %v, want 1 ± 0.02", mean)
			}
			// CV estimators are biased low for heavy-tailed draws at
			// finite n; allow a proportionally wider band.
			want := tc.g.CV()
			if math.Abs(cv-want) > 0.08*want+0.02 {
				t.Errorf("pooled CV = %v, want %v", cv, want)
			}
		})
	}
}

// TestRenewalArrivalsDeterministic: a fixed seed must reproduce the exact
// arrival sequence, byte for byte — the basis of every serving
// experiment's determinism guarantee.
func TestRenewalArrivalsDeterministic(t *testing.T) {
	gen := func() string {
		rng := rand.New(rand.NewSource(42))
		sched, err := RenewalArrivals(rng, GammaGaps{Shape: 0.5}, DiurnalRate(30, 0.8, 10, 0), 20, 4, shortJob)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, a := range sched {
			out += fmt.Sprintf("%v/%d;", a.At, a.CPU)
		}
		return out
	}
	a, b := gen(), gen()
	if a != b {
		t.Fatal("same seed produced different arrival sequences")
	}
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
}

// TestRenewalArrivalsPoissonEquivalence: ExpGaps at constant rate is a
// Poisson process — mean count over the horizon must match rate·horizon.
func TestRenewalArrivalsPoissonEquivalence(t *testing.T) {
	const rate, horizon = 50.0, 10.0
	var total int
	const seeds = 100
	for s := int64(1); s <= seeds; s++ {
		rng := rand.New(rand.NewSource(s))
		sched, err := RenewalArrivals(rng, ExpGaps{}, ConstantRate(rate), horizon, 2, shortJob)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(sched); i++ {
			if sched[i].At < sched[i-1].At {
				t.Fatal("arrivals out of order")
			}
		}
		total += len(sched)
	}
	mean := float64(total) / seeds
	if math.Abs(mean-rate*horizon) > 0.03*rate*horizon {
		t.Errorf("mean count = %v, want %v ± 3%%", mean, rate*horizon)
	}
}

// TestRenewalArrivalsDiurnalModulation: with a deep diurnal rate the
// first half-period (rate above base) must receive more arrivals than
// the second (rate below base).
func TestRenewalArrivalsDiurnalModulation(t *testing.T) {
	const base, depth, period = 100.0, 0.9, 8.0
	rng := rand.New(rand.NewSource(3))
	sched, err := RenewalArrivals(rng, ExpGaps{}, DiurnalRate(base, depth, period, 0), period, 1, shortJob)
	if err != nil {
		t.Fatal(err)
	}
	var up, down int
	for _, a := range sched {
		if a.At < period/2 {
			up++
		} else {
			down++
		}
	}
	if up <= down {
		t.Errorf("peak half %d arrivals ≤ trough half %d", up, down)
	}
}

func TestRenewalArrivalsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RenewalArrivals(nil, ExpGaps{}, ConstantRate(1), 1, 1, shortJob); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := RenewalArrivals(rng, nil, ConstantRate(1), 1, 1, shortJob); err == nil {
		t.Error("nil gaps accepted")
	}
	if _, err := RenewalArrivals(rng, ExpGaps{}, nil, 1, 1, shortJob); err == nil {
		t.Error("nil rate accepted")
	}
	if _, err := RenewalArrivals(rng, ExpGaps{}, ConstantRate(0), 1, 1, shortJob); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := RenewalArrivals(rng, ExpGaps{}, ConstantRate(1), 0, 1, shortJob); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestCursorRebind: rebinding repositions the cursor on the new program
// with no leftover state from the old one.
func TestCursorRebind(t *testing.T) {
	a := Program{Name: "a", Phases: []Phase{{Name: "p", Alpha: 1, Instructions: 10}}}
	c, err := NewCursor(a)
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(10)
	if !c.Done() {
		t.Fatal("cursor should be done")
	}
	phases := []Phase{{Name: "q", Alpha: 1, Instructions: 7}}
	c.Rebind(Program{Name: "b", Phases: phases})
	if c.Done() || c.Program().Name != "b" || c.RemainingInPhase() != 7 {
		t.Errorf("rebind state: done=%v name=%q rem=%d", c.Done(), c.Program().Name, c.RemainingInPhase())
	}
	// The serving hot path mutates the shared phase slice between rebinds.
	phases[0].Instructions = 3
	c.Rebind(Program{Name: "b", Phases: phases})
	if got := c.Advance(100); got != 3 {
		t.Errorf("advanced %d instructions, want 3", got)
	}
}
