package workload

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/memhier"
)

// This file implements the inverse of execution: turning a sequence of
// measured counter windows back into a replayable workload profile — the
// post-processing workflow of the predecessor study [2], which determined
// appropriate frequencies per job offline from collected counter data.

// WindowObservation is one counter window with the frequency it ran at (in
// Hz), the minimum information needed to invert the performance model.
type WindowObservation struct {
	Delta  counters.Delta
	FreqHz float64
}

// CaptureConfig tunes profile extraction.
type CaptureConfig struct {
	Hier memhier.Hierarchy
	// MergeTolerance is the relative difference in per-instruction
	// characteristics below which consecutive windows merge into one
	// phase (0.15 = 15%).
	MergeTolerance float64
	// MaxAlpha clamps the recovered perfect-machine IPC.
	MaxAlpha float64
}

// DefaultCaptureConfig matches the predictor's assumptions.
func DefaultCaptureConfig() CaptureConfig {
	return CaptureConfig{Hier: memhier.P630(), MergeTolerance: 0.15, MaxAlpha: 8}
}

// Validate checks the capture configuration.
func (c CaptureConfig) Validate() error {
	if err := c.Hier.Validate(); err != nil {
		return err
	}
	if c.MergeTolerance <= 0 || c.MergeTolerance > 1 {
		return fmt.Errorf("workload: merge tolerance %v out of (0,1]", c.MergeTolerance)
	}
	if c.MaxAlpha <= 0 || c.MaxAlpha > 16 {
		return fmt.Errorf("workload: max alpha %v out of (0,16]", c.MaxAlpha)
	}
	return nil
}

// FromObservations reconstructs a phase-structured program from measured
// windows: each window yields per-instruction rates and an implied α
// (observed CPI minus the memory component at the observed frequency);
// consecutive windows with similar characteristics merge into one phase.
// The result replays in the simulator with the same counter signature the
// original run produced.
func FromObservations(name string, obs []WindowObservation, cfg CaptureConfig) (Program, error) {
	if err := cfg.Validate(); err != nil {
		return Program{}, err
	}
	if name == "" {
		return Program{}, fmt.Errorf("workload: capture needs a name")
	}
	if len(obs) == 0 {
		return Program{}, fmt.Errorf("workload: no observations")
	}
	var phases []Phase
	for i, o := range obs {
		d := o.Delta
		if o.FreqHz <= 0 {
			return Program{}, fmt.Errorf("workload: observation %d has frequency %v", i, o.FreqHz)
		}
		if d.Instructions == 0 || d.Cycles == 0 {
			continue // empty window (idle) carries no phase information
		}
		rates := memhier.AccessRates{
			L2PerInstr:  d.L2PerInstr(),
			L3PerInstr:  d.L3PerInstr(),
			MemPerInstr: d.MemPerInstr(),
		}
		if err := rates.Validate(); err != nil {
			return Program{}, fmt.Errorf("workload: observation %d: %w", i, err)
		}
		cpi := 1 / d.IPC()
		core := cpi - rates.StallTimePerInstr(cfg.Hier)*o.FreqHz
		alpha := cfg.MaxAlpha
		if core > 1/cfg.MaxAlpha {
			alpha = 1 / core
		}
		ph := Phase{
			Name:         fmt.Sprintf("w%d", len(phases)),
			Alpha:        alpha,
			Rates:        rates,
			Instructions: d.Instructions,
		}
		if n := len(phases); n > 0 && similar(phases[n-1], ph, cfg.MergeTolerance) {
			merged := mergePhases(phases[n-1], ph)
			phases[n-1] = merged
			continue
		}
		phases = append(phases, ph)
	}
	if len(phases) == 0 {
		return Program{}, fmt.Errorf("workload: all observations were empty")
	}
	p := Program{Name: name, Phases: phases}
	if err := p.Validate(); err != nil {
		return Program{}, err
	}
	return p, nil
}

// similar reports whether two phases are within tol on α and total stall
// time per instruction.
func similar(a, b Phase, tol float64) bool {
	h := memhier.P630()
	if relDelta(a.Alpha, b.Alpha) > tol {
		return false
	}
	sa, sb := a.StallTimePerInstr(h), b.StallTimePerInstr(h)
	if sa == 0 && sb == 0 {
		return true
	}
	return relDelta(sa, sb) <= tol
}

func relDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}

// mergePhases combines two phases instruction-weighted.
func mergePhases(a, b Phase) Phase {
	wa, wb := float64(a.Instructions), float64(b.Instructions)
	tot := wa + wb
	mix := func(x, y float64) float64 { return (x*wa + y*wb) / tot }
	return Phase{
		Name:  a.Name,
		Alpha: mix(a.Alpha, b.Alpha),
		Rates: memhier.AccessRates{
			L2PerInstr:  mix(a.Rates.L2PerInstr, b.Rates.L2PerInstr),
			L3PerInstr:  mix(a.Rates.L3PerInstr, b.Rates.L3PerInstr),
			MemPerInstr: mix(a.Rates.MemPerInstr, b.Rates.MemPerInstr),
		},
		Instructions:              a.Instructions + b.Instructions,
		NonMemStallCyclesPerInstr: mix(a.NonMemStallCyclesPerInstr, b.NonMemStallCyclesPerInstr),
	}
}
