package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/memhier"
)

func h() memhier.Hierarchy { return memhier.P630() }

func validPhase() Phase {
	return Phase{
		Name:         "p",
		Alpha:        1.4,
		Rates:        memhier.AccessRates{L2PerInstr: 0.01, MemPerInstr: 0.001},
		Instructions: 1000,
	}
}

func TestPhaseValidate(t *testing.T) {
	if err := validPhase().Validate(); err != nil {
		t.Errorf("valid phase rejected: %v", err)
	}
	bad := validPhase()
	bad.Alpha = 0
	if bad.Validate() == nil {
		t.Error("alpha=0 accepted")
	}
	bad = validPhase()
	bad.Alpha = 9
	if bad.Validate() == nil {
		t.Error("alpha=9 accepted")
	}
	bad = validPhase()
	bad.Rates.MemPerInstr = -1
	if bad.Validate() == nil {
		t.Error("negative rate accepted")
	}
	bad = validPhase()
	bad.Instructions = 0
	if bad.Validate() == nil {
		t.Error("zero instructions accepted")
	}
	bad = validPhase()
	bad.NonMemStallCyclesPerInstr = -1
	if bad.Validate() == nil {
		t.Error("negative stall accepted")
	}
}

func TestTrueCyclesPerInstr(t *testing.T) {
	p := Phase{Alpha: 2, Rates: memhier.AccessRates{MemPerInstr: 0.01}, Instructions: 1}
	// At 1 GHz: core = 0.5 cycles, mem = 0.01·393ns·1e9 = 3.93 cycles.
	got := p.TrueCyclesPerInstr(h(), 1e9, 1)
	if math.Abs(got-4.43) > 1e-9 {
		t.Errorf("TrueCyclesPerInstr = %v, want 4.43", got)
	}
	// Halving frequency halves the memory cycles but not the core cycles.
	got500 := p.TrueCyclesPerInstr(h(), 0.5e9, 1)
	if math.Abs(got500-(0.5+1.965)) > 1e-9 {
		t.Errorf("at 500MHz = %v, want 2.465", got500)
	}
	// Latency scale inflates only the memory term.
	scaled := p.TrueCyclesPerInstr(h(), 1e9, 1.5)
	if math.Abs(scaled-(0.5+3.93*1.5)) > 1e-9 {
		t.Errorf("scaled = %v", scaled)
	}
	// Non-memory stalls add frequency-scaled cycles.
	p.NonMemStallCyclesPerInstr = 0.25
	if got := p.TrueCyclesPerInstr(h(), 1e9, 1); math.Abs(got-4.68) > 1e-9 {
		t.Errorf("with stalls = %v, want 4.68", got)
	}
}

func TestIsCPUBound(t *testing.T) {
	cpu := Phase{Alpha: 1.4, Instructions: 1}
	if !cpu.IsCPUBound(h(), 1e9) {
		t.Error("zero-rate phase should be CPU-bound")
	}
	mem := Phase{Alpha: 1.1, Rates: memhier.AccessRates{MemPerInstr: 0.02}, Instructions: 1}
	if mem.IsCPUBound(h(), 1e9) {
		t.Error("DRAM-heavy phase should not be CPU-bound")
	}
}

func TestProgramValidate(t *testing.T) {
	good := Program{Name: "x", Phases: []Phase{validPhase()}}
	if err := good.Validate(); err != nil {
		t.Errorf("good program rejected: %v", err)
	}
	if (Program{Phases: []Phase{validPhase()}}).Validate() == nil {
		t.Error("unnamed program accepted")
	}
	if (Program{Name: "x"}).Validate() == nil {
		t.Error("empty program accepted")
	}
	if (Program{Name: "x", Phases: []Phase{validPhase()}, LoopFrom: 5}).Validate() == nil {
		t.Error("out-of-range LoopFrom accepted")
	}
}

func TestTotalInstructions(t *testing.T) {
	p := Program{Name: "x", Phases: []Phase{
		{Name: "a", Alpha: 1, Instructions: 100},
		{Name: "b", Alpha: 1, Instructions: 50},
	}, LoopFrom: 1, Loops: 2}
	total, finite := p.TotalInstructions()
	if !finite || total != 150+2*50 {
		t.Errorf("TotalInstructions = %v,%v want 250,true", total, finite)
	}
	p.Loops = -1
	if _, finite := p.TotalInstructions(); finite {
		t.Error("infinite program reported finite")
	}
}

func TestCursorWalksPhases(t *testing.T) {
	p := Program{Name: "x", Phases: []Phase{
		{Name: "a", Alpha: 1, Instructions: 100},
		{Name: "b", Alpha: 1, Instructions: 50},
	}}
	c, err := NewCursor(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Current().Name != "a" || c.RemainingInPhase() != 100 {
		t.Fatalf("start state wrong")
	}
	if got := c.Advance(70); got != 70 {
		t.Errorf("Advance(70) = %d", got)
	}
	if c.RemainingInPhase() != 30 {
		t.Errorf("remaining = %d", c.RemainingInPhase())
	}
	// Cross the boundary.
	if got := c.Advance(40); got != 40 {
		t.Errorf("Advance(40) = %d", got)
	}
	if c.Current().Name != "b" || c.RemainingInPhase() != 40 {
		t.Errorf("after crossing: %s/%d", c.Current().Name, c.RemainingInPhase())
	}
	// Run past the end.
	if got := c.Advance(1000); got != 40 {
		t.Errorf("final Advance = %d, want 40", got)
	}
	if !c.Done() {
		t.Error("cursor should be done")
	}
	if got := c.Advance(10); got != 0 {
		t.Errorf("Advance after done = %d", got)
	}
}

func TestCursorLooping(t *testing.T) {
	p := Program{Name: "x", Phases: []Phase{
		{Name: "init", Alpha: 1, Instructions: 10},
		{Name: "body", Alpha: 1, Instructions: 20},
	}, LoopFrom: 1, Loops: 2}
	c, err := NewCursor(p)
	if err != nil {
		t.Fatal(err)
	}
	// init(10) + body(20)*3 = 70 instructions total.
	if got := c.Advance(69); got != 69 {
		t.Errorf("Advance(69) = %d", got)
	}
	if c.Done() {
		t.Error("done one instruction early")
	}
	if got := c.Advance(1); got != 1 {
		t.Errorf("final instruction = %d", got)
	}
	if !c.Done() {
		t.Error("should be done at 70")
	}
}

func TestCursorInfiniteLoop(t *testing.T) {
	c, err := NewCursor(HotIdle())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got := c.Advance(1 << 30); got != 1<<30 {
			t.Fatalf("infinite program stalled at iteration %d", i)
		}
	}
	if c.Done() {
		t.Error("infinite program reported done")
	}
}

func TestAdvanceWithinPhase(t *testing.T) {
	p := Program{Name: "x", Phases: []Phase{
		{Name: "a", Alpha: 1, Instructions: 100},
		{Name: "b", Alpha: 1, Instructions: 50},
	}}
	c, _ := NewCursor(p)
	n, ended := c.AdvanceWithinPhase(250)
	if n != 100 || !ended {
		t.Errorf("AdvanceWithinPhase = %d,%v want 100,true", n, ended)
	}
	if c.Current().Name != "b" {
		t.Errorf("should be in b, in %s", c.Current().Name)
	}
	n, ended = c.AdvanceWithinPhase(10)
	if n != 10 || ended {
		t.Errorf("partial advance = %d,%v", n, ended)
	}
	c.Advance(40)
	if !c.Done() {
		t.Fatal("not done")
	}
	if n, _ := c.AdvanceWithinPhase(5); n != 0 {
		t.Errorf("done cursor advanced %d", n)
	}
}

func TestCursorReset(t *testing.T) {
	p := Gzip(0.01)
	c, err := NewCursor(p)
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(1 << 40)
	if !c.Done() {
		t.Fatal("not done")
	}
	c.Reset()
	if c.Done() || c.PhaseIndex() != 0 {
		t.Error("Reset did not rewind")
	}
}

func TestCursorAdvanceConservesInstructions(t *testing.T) {
	err := quick.Check(func(steps []uint16) bool {
		p := Program{Name: "x", Phases: []Phase{
			{Name: "a", Alpha: 1, Instructions: 1000},
			{Name: "b", Alpha: 1, Instructions: 500},
		}, LoopFrom: 0, Loops: 1}
		total, _ := p.TotalInstructions()
		c, err := NewCursor(p)
		if err != nil {
			return false
		}
		var consumed uint64
		for _, s := range steps {
			consumed += c.Advance(uint64(s))
		}
		if c.Done() {
			return consumed == total
		}
		return consumed <= total
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSyntheticIntensityMonotoneMemoryRates(t *testing.T) {
	prev := math.Inf(1)
	for _, intensity := range []float64{0, 25, 50, 75, 100} {
		ph, err := SyntheticIntensityPhase("p", intensity, 1000, h())
		if err != nil {
			t.Fatal(err)
		}
		s := ph.StallTimePerInstr(h())
		if s >= prev {
			t.Errorf("stall time not decreasing with intensity at %v%%: %v >= %v", intensity, s, prev)
		}
		prev = s
	}
}

func TestSyntheticPhaseDRAMDominated(t *testing.T) {
	// §7.3: the large footprint makes post-L1 misses mostly reach memory.
	ph, err := SyntheticIntensityPhase("p", 20, 1000, h())
	if err != nil {
		t.Fatal(err)
	}
	if ph.Rates.MemPerInstr <= ph.Rates.L2PerInstr+ph.Rates.L3PerInstr {
		t.Errorf("expected DRAM-dominated rates: %+v", ph.Rates)
	}
}

func TestSyntheticIntensityValidation(t *testing.T) {
	if _, err := SyntheticIntensityPhase("p", -1, 1000, h()); err == nil {
		t.Error("intensity -1 accepted")
	}
	if _, err := SyntheticIntensityPhase("p", 101, 1000, h()); err == nil {
		t.Error("intensity 101 accepted")
	}
	if _, err := SyntheticIntensityPhase("p", 50, 0, h()); err == nil {
		t.Error("zero instructions accepted")
	}
}

func TestSyntheticProgramShapes(t *testing.T) {
	base := SyntheticConfig{
		Phase1Intensity: 100, Phase1Instructions: 1000,
		Phase2Intensity: 20, Phase2Instructions: 2000,
	}

	plain, err := Synthetic(base, h())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Phases) != 2 {
		t.Errorf("plain phases = %d", len(plain.Phases))
	}

	withIE := base
	withIE.IncludeInitExit = true
	prog, err := Synthetic(withIE, h())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Phases) != 4 || prog.Phases[0].Name != "init" || prog.Phases[3].Name != "exit" {
		t.Errorf("init/exit structure wrong: %d phases", len(prog.Phases))
	}

	looped := withIE
	looped.Loops = 2
	prog, err = Synthetic(looped, h())
	if err != nil {
		t.Fatal(err)
	}
	// init + 3×(p1,p2) + exit = 8 phases, unrolled.
	if len(prog.Phases) != 8 {
		t.Errorf("unrolled phases = %d, want 8", len(prog.Phases))
	}
	if prog.Loops != 0 {
		t.Errorf("unrolled program still loops")
	}

	inf := withIE
	inf.Loops = -1
	prog, err = Synthetic(inf, h())
	if err != nil {
		t.Fatal(err)
	}
	if prog.Loops != -1 || prog.LoopFrom != 1 || len(prog.Phases) != 3 {
		t.Errorf("infinite structure wrong: %+v", prog)
	}
}

func TestHotIdleCharacteristics(t *testing.T) {
	idle := HotIdle()
	if err := idle.Validate(); err != nil {
		t.Fatal(err)
	}
	if idle.Loops != -1 {
		t.Error("idle loop must be infinite")
	}
	ph := idle.Phases[0]
	// §7.1: observed idle IPC around 1.3 — with no stalls, IPC = α.
	if ph.Alpha != 1.3 {
		t.Errorf("idle alpha = %v, want 1.3", ph.Alpha)
	}
	if !ph.Rates.IsZero() {
		t.Error("idle loop must not touch memory")
	}
}

func TestAppProfilesValid(t *testing.T) {
	for _, p := range Apps(1) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Phases[0].Name != "init" {
			t.Errorf("%s: first phase %q, want init", p.Name, p.Phases[0].Name)
		}
		if p.Phases[len(p.Phases)-1].Name != "exit" {
			t.Errorf("%s: last phase %q, want exit", p.Name, p.Phases[len(p.Phases)-1].Name)
		}
		if _, finite := p.TotalInstructions(); !finite {
			t.Errorf("%s must be finite", p.Name)
		}
	}
}

func TestAppMemoryIntensityOrdering(t *testing.T) {
	// The paper's premise: mcf and health are memory-intensive, gzip and
	// gap CPU-intensive. Compare the instruction-weighted stall time.
	weightedStall := func(p Program) float64 {
		var stall, instr float64
		for _, ph := range p.Phases {
			stall += ph.StallTimePerInstr(h()) * float64(ph.Instructions)
			instr += float64(ph.Instructions)
		}
		return stall / instr
	}
	gzip, gap := weightedStall(Gzip(1)), weightedStall(Gap(1))
	mcf, health := weightedStall(Mcf(1)), weightedStall(Health(1))
	for name, cpuBound := range map[string]float64{"gzip": gzip, "gap": gap} {
		for memName, memBound := range map[string]float64{"mcf": mcf, "health": health} {
			if cpuBound >= memBound/5 {
				t.Errorf("%s stall %v not ≪ %s stall %v", name, cpuBound, memName, memBound)
			}
		}
	}
}

func TestAppLookup(t *testing.T) {
	for _, name := range []string{"gzip", "gap", "mcf", "health", "idle"} {
		if _, err := App(name, 1); err != nil {
			t.Errorf("App(%q): %v", name, err)
		}
	}
	if _, err := App("doom", 1); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestAppScale(t *testing.T) {
	full := Gzip(1)
	tiny := Gzip(0.01)
	ft, _ := full.TotalInstructions()
	tt, _ := tiny.TotalInstructions()
	if tt >= ft {
		t.Errorf("scaling failed: %d >= %d", tt, ft)
	}
	// Zero scale falls back to 1.
	zero := Gzip(0)
	zt, _ := zero.TotalInstructions()
	if zt != ft {
		t.Errorf("zero scale = %d, want %d", zt, ft)
	}
}

func TestInstructionsForDuration(t *testing.T) {
	ph := Phase{Alpha: 1, Instructions: 1} // 1 cycle/instr, no stalls
	// At 1 GHz for 2 s: 2e9 instructions.
	got := InstructionsForDuration(ph, h(), 1e9, 2)
	if got != 2e9 {
		t.Errorf("InstructionsForDuration = %d, want 2e9", got)
	}
	if got := InstructionsForDuration(ph, h(), 1e9, 1e-12); got != 1 {
		t.Errorf("tiny duration should floor to 1, got %d", got)
	}
}

func TestMixRoundRobin(t *testing.T) {
	a := Program{Name: "a", Phases: []Phase{{Name: "p", Alpha: 1, Instructions: 100}}}
	b := Program{Name: "b", Phases: []Phase{{Name: "p", Alpha: 1, Instructions: 100}}}
	m, err := NewMix(a, b)
	if err != nil {
		t.Fatal(err)
	}
	first := m.PickNext()
	second := m.PickNext()
	if first == second {
		t.Error("round robin returned same job twice")
	}
	third := m.PickNext()
	if third != first {
		t.Error("round robin did not wrap")
	}
}

func TestMixSkipsDoneJobs(t *testing.T) {
	a := Program{Name: "a", Phases: []Phase{{Name: "p", Alpha: 1, Instructions: 10}}}
	b := Program{Name: "b", Phases: []Phase{{Name: "p", Alpha: 1, Instructions: 1000}}}
	m := MustMix(a, b)
	// Exhaust job a.
	for _, j := range m.Jobs() {
		if j.Program().Name == "a" {
			j.Advance(10)
		}
	}
	for i := 0; i < 4; i++ {
		j := m.PickNext()
		if j == nil || j.Program().Name != "b" {
			t.Fatalf("pick %d = %v, want b", i, j)
		}
	}
	if m.Done() {
		t.Error("mix not done yet")
	}
}

func TestMixDone(t *testing.T) {
	a := Program{Name: "a", Phases: []Phase{{Name: "p", Alpha: 1, Instructions: 10}}}
	m := MustMix(a)
	m.Jobs()[0].Advance(10)
	if !m.Done() {
		t.Error("mix should be done")
	}
	if m.PickNext() != nil {
		t.Error("PickNext on done mix should be nil")
	}
	m.Reset()
	if m.Done() {
		t.Error("Reset did not revive mix")
	}
}

func TestNewMixValidation(t *testing.T) {
	if _, err := NewMix(); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := NewMix(Program{}); err == nil {
		t.Error("invalid program accepted")
	}
}
