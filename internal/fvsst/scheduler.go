package fvsst

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/memhier"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// Target is the hardware surface the scheduler controls: counter reads,
// frequency actuation and the idle indicator. machine.Machine implements
// it; on real hardware it would be the kernel's PMC and throttling
// interfaces.
type Target interface {
	counters.Reader
	SetFrequency(cpu int, f units.Frequency) error
	EffectiveFrequency(cpu int) units.Frequency
	IsIdle(cpu int) bool
	Now() float64
}

// Overhead models the daemon's own cost (Figure 4): seconds charged per
// counter collection per CPU and per scheduling pass, stolen from the CPU
// the daemon runs on.
type Overhead struct {
	CollectPerCPU float64
	SchedulePass  float64
	// DaemonCPU is the processor the single-threaded daemon runs on.
	DaemonCPU int
	// Distributed models the §9 multi-threaded redesign ("two threads per
	// processor: one collects the counters at user level, the other
	// controls the throttling"): each CPU pays for its own collection and
	// an equal share of the scheduling pass, instead of the single daemon
	// CPU paying for everything.
	Distributed bool
}

// DefaultOverhead approximates the unoptimised prototype: ~60 µs per
// per-CPU counter read and ~400 µs per scheduling pass, totalling under 3%
// of a CPU at T = 100 ms (§8.1).
func DefaultOverhead() Overhead {
	return Overhead{CollectPerCPU: 60e-6, SchedulePass: 400e-6, DaemonCPU: 0}
}

// Config parameterises the scheduler.
type Config struct {
	Table *power.Table
	Hier  memhier.Hierarchy
	// Epsilon is the acceptable predicted performance loss. It must
	// exceed the minimum per-step loss of the frequency set or Step 1
	// degenerates to f_max everywhere (§5).
	Epsilon float64
	// SamplePeriod is the dispatch/collection period t in seconds.
	SamplePeriod float64
	// SchedulePeriods is n: a scheduling pass runs every n collections
	// (T = n·t).
	SchedulePeriods int
	// UseIdleSignal enables the firmware/OS idle indicator: idle
	// processors go straight to the minimum frequency. Without it, a
	// hot-idling processor looks CPU-bound and is scheduled at maximum
	// frequency (§5, §7.1).
	UseIdleSignal bool
	// UseHaltedCycles treats a window that is >90% halted as idle, the
	// alternative idle detection for halting processors.
	UseHaltedCycles bool
	// UseIdealFrequency replaces the Step 1 per-frequency scan with the
	// closed-form f_ideal of §5.
	UseIdealFrequency bool
	// UseTwoPointCalibration enables the §4.3-footnote calibration: when
	// the last two scheduling windows ran at different frequencies, the
	// decomposition is derived from the two (frequency, CPI) points
	// directly, without trusting the constant memory-latency assumption.
	UseTwoPointCalibration bool
	// LatencyBoundLo/Hi, when Hi > 0, enable the best/worst-case latency
	// bounds of reference [17]: Step 1 uses the *worst-case* (low-latency-
	// scale) decomposition for its ε-check, making frequency reductions
	// conservative.
	LatencyBoundLo float64
	LatencyBoundHi float64
	// DebouncePasses, when ≥ 2, requires a processor's ε-constrained
	// frequency to repeat for that many consecutive passes before the
	// scheduler actuates the change — a hysteresis knob that damps the
	// one-step flutter borderline workloads produce under measurement
	// noise (the same stability concern §6 addresses by making T a large
	// multiple of t). Power-limit compliance always wins: downward moves
	// demanded by Step 2 are never debounced.
	DebouncePasses int
	// VoltageTables optionally gives each processor its own voltage table
	// for Step 3, for machines with significant process variation (§5:
	// "the voltage table is different for each processor"). Length must
	// equal the target's CPU count; nil uses Table for every processor.
	VoltageTables []*power.Table
	// Overhead is the daemon cost model; zero values disable it.
	Overhead Overhead
}

// DefaultConfig returns the prototype's parameters: the Table 1 operating
// points, ε = 5%, t = 10 ms, T = 100 ms (§8), idle signal off (the paper's
// prototype lacks it, §7.1).
func DefaultConfig() Config {
	return Config{
		Table:           power.PaperTable1(),
		Hier:            memhier.P630(),
		Epsilon:         0.05,
		SamplePeriod:    0.010,
		SchedulePeriods: 10,
		Overhead:        DefaultOverhead(),
	}
}

// Validate checks the configuration, including the ε-vs-frequency-step
// constraint §5 imposes.
func (c Config) Validate() error {
	if c.Table == nil {
		return fmt.Errorf("fvsst: operating-point table required")
	}
	if err := c.Hier.Validate(); err != nil {
		return err
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("fvsst: epsilon %v out of (0,1)", c.Epsilon)
	}
	if c.SamplePeriod <= 0 {
		return fmt.Errorf("fvsst: sample period %v must be positive", c.SamplePeriod)
	}
	if c.SchedulePeriods < 1 {
		return fmt.Errorf("fvsst: schedule periods %d must be ≥ 1", c.SchedulePeriods)
	}
	if c.Overhead.CollectPerCPU < 0 || c.Overhead.SchedulePass < 0 {
		return fmt.Errorf("fvsst: negative overhead")
	}
	if c.LatencyBoundHi != 0 {
		if c.LatencyBoundLo <= 0 || c.LatencyBoundHi < c.LatencyBoundLo {
			return fmt.Errorf("fvsst: latency bounds %v..%v invalid", c.LatencyBoundLo, c.LatencyBoundHi)
		}
	}
	if c.DebouncePasses < 0 {
		return fmt.Errorf("fvsst: DebouncePasses %d must be non-negative", c.DebouncePasses)
	}
	return nil
}

// MinEpsilonFor returns the smallest usable ε for a frequency set on a
// pure-CPU workload: the relative size of the largest single frequency
// step. An ε below this pins CPU-bound work at f_max (which is correct)
// but also makes the ε bound unachievable for any lowering (§5: "its value
// must be greater than the minimum performance step").
func MinEpsilonFor(set units.FrequencySet) float64 {
	worst := 0.0
	for i := 1; i < len(set); i++ {
		step := float64(set[i]-set[i-1]) / float64(set[i])
		if step > worst {
			worst = step
		}
	}
	return worst
}

// Assignment is the scheduler's decision for one processor.
type Assignment struct {
	CPU int
	// Desired is the Step 1 ε-constrained frequency (the paper's Figure 9
	// "desired frequency").
	Desired units.Frequency
	// Actual is the frequency after the Step 2 budget fit — what the
	// processor is set to.
	Actual units.Frequency
	// Voltage is the Step 3 minimum voltage for Actual.
	Voltage units.Voltage
	// PredictedLoss is the predicted performance loss at Actual versus
	// f_max.
	PredictedLoss float64
	// PredictedIPC is the predicted IPC at Actual.
	PredictedIPC float64
	// ObservedIPC is the window's measured IPC (for the Table 2 study).
	ObservedIPC float64
	// PredictionError is the relative error of the *previous* pass's IPC
	// prediction against this window's observation ((obs − pred)/pred) —
	// the Table 2 accuracy quantity computed online, one period late.
	// Meaningful only when PredictionValid: the processor must have been
	// busy and predicted on both passes.
	PredictionError float64
	PredictionValid bool
	// Idle reports whether the processor was treated as idle.
	Idle bool
}

// Decision is one complete scheduling pass.
type Decision struct {
	At          float64
	Trigger     string
	Budget      units.Power
	TablePower  units.Power
	BudgetMet   bool
	Assignments []Assignment
	// Demotions is the ordered list of Step-2 reductions this pass took
	// to fit the budget — why Actual sits below Desired where it does.
	Demotions []Demotion
}

// Scheduler is the fvsst daemon. It is single-threaded like the prototype:
// Collect and Schedule are called from the simulation loop.
type Scheduler struct {
	cfg       Config
	target    Target
	sampler   *counters.Sampler
	predictor perfmodel.Predictor
	budget    units.Power
	set       units.FrequencySet
	decisions []Decision
	collects  int
	// prevObs holds the previous scheduling window per CPU for the
	// two-point calibration mode.
	prevObs   []perfmodel.Observation
	prevValid []bool
	// lastDesired/desireStreak back the debounce filter.
	lastDesired  []units.Frequency
	desireStreak []int
	// lastPredIPC/lastPredValid hold each CPU's previous-pass IPC
	// prediction so the next pass can score it against observation.
	lastPredIPC   []float64
	lastPredValid []bool
	// sink, when non-nil, receives one obs.EventSchedule per pass.
	sink obs.Sink
}

// New builds a scheduler over the target with an initial processor power
// budget.
func New(cfg Config, target Target, budget units.Power) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("fvsst: nil target")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("fvsst: budget %v must be positive", budget)
	}
	pred, err := perfmodel.New(cfg.Hier)
	if err != nil {
		return nil, err
	}
	sampler, err := counters.NewSampler(target, 4*cfg.SchedulePeriods)
	if err != nil {
		return nil, err
	}
	if cfg.VoltageTables != nil && len(cfg.VoltageTables) != target.NumCPUs() {
		return nil, fmt.Errorf("fvsst: %d voltage tables for %d CPUs", len(cfg.VoltageTables), target.NumCPUs())
	}
	return &Scheduler{
		cfg:           cfg,
		target:        target,
		sampler:       sampler,
		predictor:     pred,
		budget:        budget,
		set:           cfg.Table.Frequencies(),
		prevObs:       make([]perfmodel.Observation, target.NumCPUs()),
		prevValid:     make([]bool, target.NumCPUs()),
		lastDesired:   make([]units.Frequency, target.NumCPUs()),
		desireStreak:  make([]int, target.NumCPUs()),
		lastPredIPC:   make([]float64, target.NumCPUs()),
		lastPredValid: make([]bool, target.NumCPUs()),
	}, nil
}

// SetSink attaches an observability sink that receives one structured
// trace event per scheduling pass (see internal/obs). A nil sink — the
// default — disables tracing; the only hot-path cost left is a pointer
// test, proven by the sink benchmarks in bench_test.go.
func (s *Scheduler) SetSink(sink obs.Sink) { s.sink = sink }

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Budget returns the current processor power budget.
func (s *Scheduler) Budget() units.Power { return s.budget }

// SetBudget changes the global power limit — trigger 1 of §5. It does not
// itself reschedule; callers follow with Schedule("budget-change").
func (s *Scheduler) SetBudget(p units.Power) error {
	if p <= 0 {
		return fmt.Errorf("fvsst: budget %v must be positive", p)
	}
	s.budget = p
	return nil
}

// Collect samples the counters of every processor once (one dispatch
// period t). It returns true when a scheduling pass is due (every n-th
// collection).
func (s *Scheduler) Collect() (due bool, err error) {
	if err := s.sampler.Collect(); err != nil {
		return false, err
	}
	s.collects++
	return s.collects%s.cfg.SchedulePeriods == 0, nil
}

// observationFor builds the predictor observation for cpu from the last
// scheduling window. ok is false when the window contains no usable work.
func (s *Scheduler) observationFor(cpu int) (perfmodel.Observation, bool) {
	delta := s.sampler.WindowAggregate(cpu, s.cfg.SchedulePeriods)
	freqHz := delta.ObservedFrequencyHz()
	if delta.Instructions == 0 || delta.Cycles == 0 || freqHz <= 0 {
		return perfmodel.Observation{}, false
	}
	return perfmodel.Observation{Delta: delta, Freq: units.Frequency(freqHz)}, true
}

// decompose derives the cycle decomposition for one CPU's window,
// honouring the configured calibration modes.
func (s *Scheduler) decompose(cpu int, obs perfmodel.Observation) (perfmodel.Decomposition, error) {
	defer func() {
		s.prevObs[cpu] = obs
		s.prevValid[cpu] = true
	}()
	if s.cfg.UseTwoPointCalibration && s.prevValid[cpu] {
		prev := s.prevObs[cpu]
		// Two usable points need meaningfully distinct frequencies or the
		// slope estimate blows up on noise.
		if prev.Freq > 0 && relDiff(prev.Freq.Hz(), obs.Freq.Hz()) > 0.02 {
			if dec, err := perfmodel.CalibrateTwoPoint(prev, obs); err == nil {
				return dec, nil
			}
			// Fall through to the single-point model on calibration error.
		}
	}
	if s.cfg.LatencyBoundHi > 0 {
		b, err := s.predictor.DecomposeWithBounds(obs, s.cfg.LatencyBoundLo, s.cfg.LatencyBoundHi)
		if err != nil {
			return perfmodel.Decomposition{}, err
		}
		// Worst case for scaling down: assume latencies at the low end of
		// the band, i.e. the workload is less memory-bound than nominal.
		return b.Worst, nil
	}
	return s.predictor.Decompose(obs)
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}

// isIdle decides whether cpu should be treated as idle under the
// configured detection mechanisms.
func (s *Scheduler) isIdle(cpu int) bool {
	if s.cfg.UseIdleSignal && s.target.IsIdle(cpu) {
		return true
	}
	if s.cfg.UseHaltedCycles {
		delta := s.sampler.WindowAggregate(cpu, s.cfg.SchedulePeriods)
		if delta.HaltedFraction() > 0.9 {
			return true
		}
	}
	return false
}

// Schedule runs one full pass of the Figure 3 algorithm and actuates the
// result. trigger labels the cause in the decision log ("timer",
// "budget-change", "idle-transition").
func (s *Scheduler) Schedule(trigger string) (Decision, error) {
	n := s.target.NumCPUs()
	desired := make([]units.Frequency, n)
	decs := make([]*perfmodel.Decomposition, n)
	observed := make([]float64, n)
	obsOK := make([]bool, n)
	idle := make([]bool, n)

	// Step 1: ε-constrained frequency per processor.
	for cpu := 0; cpu < n; cpu++ {
		if s.isIdle(cpu) {
			idle[cpu] = true
			desired[cpu] = s.set.Min()
			continue
		}
		obs, ok := s.observationFor(cpu)
		if !ok {
			// No usable window (just started, or fully throttled):
			// schedule conservatively at maximum.
			desired[cpu] = s.set.Max()
			continue
		}
		dec, err := s.decompose(cpu, obs)
		if err != nil {
			return Decision{}, fmt.Errorf("fvsst: cpu %d: %w", cpu, err)
		}
		decs[cpu] = &dec
		observed[cpu] = obs.Delta.IPC()
		obsOK[cpu] = true
		if s.cfg.UseIdealFrequency {
			f, err := IdealEpsilonFrequency(dec, s.set, s.cfg.Epsilon)
			if err != nil {
				return Decision{}, err
			}
			desired[cpu] = f
		} else {
			desired[cpu] = EpsilonFrequency(dec, s.set, s.cfg.Epsilon)
		}
	}

	// Debounce: a new ε-constrained frequency must persist for k passes
	// before the scheduler acts on it; until then the processor holds its
	// current setting. Step 2's forced downward moves are applied after
	// this filter and are never debounced.
	if k := s.cfg.DebouncePasses; k >= 2 {
		for cpu := range desired {
			if desired[cpu] == s.lastDesired[cpu] {
				s.desireStreak[cpu]++
			} else {
				s.lastDesired[cpu] = desired[cpu]
				s.desireStreak[cpu] = 1
			}
			cur := s.set.ClampTo(s.target.EffectiveFrequency(cpu))
			if desired[cpu] != cur && s.desireStreak[cpu] < k {
				desired[cpu] = cur
			}
		}
	}

	// Step 2: fit the aggregate power to the budget, recording every
	// reduction for the decision's demotion attribution.
	actual, demotions, met, err := FitToBudgetTraced(decs, desired, s.cfg.Table, s.budget)
	if err != nil {
		return Decision{}, err
	}

	// Step 3: voltages — per-CPU tables when the machine has process
	// variation, otherwise the shared table.
	volts := make([]units.Voltage, n)
	for cpu := 0; cpu < n; cpu++ {
		vt := s.cfg.Table
		if s.cfg.VoltageTables != nil {
			vt = s.cfg.VoltageTables[cpu]
		}
		v, err := vt.MinVoltage(actual[cpu])
		if err != nil {
			return Decision{}, fmt.Errorf("fvsst: voltage for cpu %d: %w", cpu, err)
		}
		volts[cpu] = v
	}

	// Actuate and log.
	assignments := make([]Assignment, n)
	for cpu := 0; cpu < n; cpu++ {
		if err := s.target.SetFrequency(cpu, actual[cpu]); err != nil {
			return Decision{}, fmt.Errorf("fvsst: actuate cpu %d: %w", cpu, err)
		}
		a := Assignment{
			CPU:     cpu,
			Desired: desired[cpu],
			Actual:  actual[cpu],
			Voltage: volts[cpu],
			Idle:    idle[cpu],
		}
		if decs[cpu] != nil {
			a.PredictedLoss = decs[cpu].PerfLoss(s.set.Max(), actual[cpu])
			a.PredictedIPC = decs[cpu].IPCAt(actual[cpu])
			a.ObservedIPC = observed[cpu]
		}
		// Score the previous pass's prediction against the window that
		// just elapsed, then bank this pass's prediction for the next.
		if obsOK[cpu] && s.lastPredValid[cpu] && s.lastPredIPC[cpu] > 0 {
			a.PredictionError = (observed[cpu] - s.lastPredIPC[cpu]) / s.lastPredIPC[cpu]
			a.PredictionValid = true
		}
		if decs[cpu] != nil {
			s.lastPredIPC[cpu] = a.PredictedIPC
			s.lastPredValid[cpu] = true
		} else {
			s.lastPredValid[cpu] = false
		}
		assignments[cpu] = a
	}
	tablePower, err := TotalTablePower(actual, s.cfg.Table)
	if err != nil {
		return Decision{}, err
	}
	d := Decision{
		At:          s.target.Now(),
		Trigger:     trigger,
		Budget:      s.budget,
		TablePower:  tablePower,
		BudgetMet:   met,
		Assignments: assignments,
		Demotions:   demotions,
	}
	s.decisions = append(s.decisions, d)
	if s.sink != nil {
		s.sink.Emit(d.Event())
	}
	return d, nil
}

// Decisions returns the full decision log.
func (s *Scheduler) Decisions() []Decision {
	out := make([]Decision, len(s.decisions))
	copy(out, s.decisions)
	return out
}

// LastDecision returns the most recent decision and true, or false when no
// pass has run yet.
func (s *Scheduler) LastDecision() (Decision, bool) {
	if len(s.decisions) == 0 {
		return Decision{}, false
	}
	return s.decisions[len(s.decisions)-1], true
}
