package fvsst

import (
	"fmt"
	"time"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/memhier"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// Target is the hardware surface the scheduler controls: counter reads,
// frequency actuation and the idle indicator. machine.Machine implements
// it; on real hardware it would be the kernel's PMC and throttling
// interfaces.
type Target interface {
	counters.Reader
	SetFrequency(cpu int, f units.Frequency) error
	EffectiveFrequency(cpu int) units.Frequency
	IsIdle(cpu int) bool
	Now() float64
}

// Overhead models the daemon's own cost (Figure 4): seconds charged per
// counter collection per CPU and per scheduling pass, stolen from the CPU
// the daemon runs on.
type Overhead struct {
	CollectPerCPU float64
	SchedulePass  float64
	// DaemonCPU is the processor the single-threaded daemon runs on.
	DaemonCPU int
	// Distributed models the §9 multi-threaded redesign ("two threads per
	// processor: one collects the counters at user level, the other
	// controls the throttling"): each CPU pays for its own collection and
	// an equal share of the scheduling pass, instead of the single daemon
	// CPU paying for everything.
	Distributed bool
}

// DefaultOverhead approximates the unoptimised prototype: ~60 µs per
// per-CPU counter read and ~400 µs per scheduling pass, totalling under 3%
// of a CPU at T = 100 ms (§8.1).
func DefaultOverhead() Overhead {
	return Overhead{CollectPerCPU: 60e-6, SchedulePass: 400e-6, DaemonCPU: 0}
}

// Config parameterises the scheduler.
type Config struct {
	Table *power.Table
	Hier  memhier.Hierarchy
	// Epsilon is the acceptable predicted performance loss. It must
	// exceed the minimum per-step loss of the frequency set or Step 1
	// degenerates to f_max everywhere (§5).
	Epsilon float64
	// SamplePeriod is the dispatch/collection period t in seconds.
	SamplePeriod float64
	// SchedulePeriods is n: a scheduling pass runs every n collections
	// (T = n·t).
	SchedulePeriods int
	// UseIdleSignal enables the firmware/OS idle indicator: idle
	// processors go straight to the minimum frequency. Without it, a
	// hot-idling processor looks CPU-bound and is scheduled at maximum
	// frequency (§5, §7.1).
	UseIdleSignal bool
	// UseHaltedCycles treats a window that is >90% halted as idle, the
	// alternative idle detection for halting processors.
	UseHaltedCycles bool
	// UseIdealFrequency replaces the Step 1 per-frequency scan with the
	// closed-form f_ideal of §5.
	UseIdealFrequency bool
	// UseTwoPointCalibration enables the §4.3-footnote calibration: when
	// the last two scheduling windows ran at different frequencies, the
	// decomposition is derived from the two (frequency, CPI) points
	// directly, without trusting the constant memory-latency assumption.
	UseTwoPointCalibration bool
	// LatencyBoundLo/Hi, when Hi > 0, enable the best/worst-case latency
	// bounds of reference [17]: Step 1 uses the *worst-case* (low-latency-
	// scale) decomposition for its ε-check, making frequency reductions
	// conservative.
	LatencyBoundLo float64
	LatencyBoundHi float64
	// DebouncePasses, when ≥ 2, requires a processor's ε-constrained
	// frequency to repeat for that many consecutive passes before the
	// scheduler actuates the change — a hysteresis knob that damps the
	// one-step flutter borderline workloads produce under measurement
	// noise (the same stability concern §6 addresses by making T a large
	// multiple of t). Power-limit compliance always wins: downward moves
	// demanded by Step 2 are never debounced.
	DebouncePasses int
	// VoltageTables optionally gives each processor its own voltage table
	// for Step 3, for machines with significant process variation (§5:
	// "the voltage table is different for each processor"). Length must
	// equal the target's CPU count; nil uses Table for every processor.
	VoltageTables []*power.Table
	// Overhead is the daemon cost model; zero values disable it.
	Overhead Overhead
}

// DefaultConfig returns the prototype's parameters: the Table 1 operating
// points, ε = 5%, t = 10 ms, T = 100 ms (§8), idle signal off (the paper's
// prototype lacks it, §7.1).
func DefaultConfig() Config {
	return Config{
		Table:           power.PaperTable1(),
		Hier:            memhier.P630(),
		Epsilon:         0.05,
		SamplePeriod:    0.010,
		SchedulePeriods: 10,
		Overhead:        DefaultOverhead(),
	}
}

// Validate checks the configuration, including the ε-vs-frequency-step
// constraint §5 imposes.
func (c Config) Validate() error {
	if c.Table == nil {
		return fmt.Errorf("fvsst: operating-point table required")
	}
	if err := c.Hier.Validate(); err != nil {
		return err
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("fvsst: epsilon %v out of (0,1)", c.Epsilon)
	}
	if c.SamplePeriod <= 0 {
		return fmt.Errorf("fvsst: sample period %v must be positive", c.SamplePeriod)
	}
	if c.SchedulePeriods < 1 {
		return fmt.Errorf("fvsst: schedule periods %d must be ≥ 1", c.SchedulePeriods)
	}
	if c.Overhead.CollectPerCPU < 0 || c.Overhead.SchedulePass < 0 {
		return fmt.Errorf("fvsst: negative overhead")
	}
	if c.LatencyBoundHi != 0 {
		if c.LatencyBoundLo <= 0 || c.LatencyBoundHi < c.LatencyBoundLo {
			return fmt.Errorf("fvsst: latency bounds %v..%v invalid", c.LatencyBoundLo, c.LatencyBoundHi)
		}
	}
	if c.DebouncePasses < 0 {
		return fmt.Errorf("fvsst: DebouncePasses %d must be non-negative", c.DebouncePasses)
	}
	return nil
}

// MinEpsilonFor returns the smallest usable ε for a frequency set on a
// pure-CPU workload: the relative size of the largest single frequency
// step. An ε below this pins CPU-bound work at f_max (which is correct)
// but also makes the ε bound unachievable for any lowering (§5: "its value
// must be greater than the minimum performance step").
func MinEpsilonFor(set units.FrequencySet) float64 {
	worst := 0.0
	for i := 1; i < len(set); i++ {
		step := float64(set[i]-set[i-1]) / float64(set[i])
		if step > worst {
			worst = step
		}
	}
	return worst
}

// Assignment is the scheduler's decision for one processor.
type Assignment struct {
	CPU int
	// Desired is the Step 1 ε-constrained frequency (the paper's Figure 9
	// "desired frequency").
	Desired units.Frequency
	// Actual is the frequency after the Step 2 budget fit — what the
	// processor is set to.
	Actual units.Frequency
	// Voltage is the Step 3 minimum voltage for Actual.
	Voltage units.Voltage
	// PredictedLoss is the predicted performance loss at Actual versus
	// f_max.
	PredictedLoss float64
	// PredictedIPC is the predicted IPC at Actual.
	PredictedIPC float64
	// ObservedIPC is the window's measured IPC (for the Table 2 study).
	ObservedIPC float64
	// PredictionError is the relative error of the *previous* pass's IPC
	// prediction against this window's observation ((obs − pred)/pred) —
	// the Table 2 accuracy quantity computed online, one period late.
	// Meaningful only when PredictionValid: the processor must have been
	// busy and predicted on both passes.
	PredictionError float64
	PredictionValid bool
	// Idle reports whether the processor was treated as idle.
	Idle bool
}

// Decision is one complete scheduling pass.
type Decision struct {
	At          float64
	Trigger     string
	Budget      units.Power
	TablePower  units.Power
	BudgetMet   bool
	Assignments []Assignment
	// Demotions is the ordered list of Step-2 reductions this pass took
	// to fit the budget — why Actual sits below Desired where it does.
	Demotions []Demotion
}

// Scheduler is the fvsst daemon. It is single-threaded like the prototype:
// Collect and Schedule are called from the simulation loop.
type Scheduler struct {
	cfg       Config
	target    Target
	sampler   *counters.Sampler
	predictor perfmodel.Predictor
	budget    units.Power
	set       units.FrequencySet
	decisions []Decision
	// cadence owns the T = n·t rule: every n-th Collect makes a
	// scheduling pass due.
	cadence engine.Cadence
	// prevObs holds the previous scheduling window per CPU for the
	// two-point calibration mode.
	prevObs   []perfmodel.Observation
	prevValid []bool
	// lastDesired/desireStreak back the debounce filter.
	lastDesired  []units.Frequency
	desireStreak []int
	// lastPredIPC/lastPredValid hold each CPU's previous-pass IPC
	// prediction so the next pass can score it against observation.
	lastPredIPC   []float64
	lastPredValid []bool
	// sink, when non-nil, receives one obs.EventSchedule per pass plus
	// the pass's span tree (root + grid-fill/step1/step2/step3/actuate).
	sink obs.Sink
	// passID counts scheduling passes from the engine clock epoch and
	// stamps each pass's event and spans (obs.Event.PassID).
	passID uint64

	// Per-pass scratch, valid for the duration of one Schedule call and
	// reused across passes so the steady-state hot path performs no
	// allocation (see docs/engine.md for the ownership rules). Frequencies
	// are handled as table indices: desiredIdx is Step 1's ε-constrained
	// setting, actualIdx the post-Step-2 setting.
	grid          perfmodel.PredGrid
	desiredIdx    []int
	actualIdx     []int
	observed      []float64
	obsOK         []bool
	idle          []bool
	volts         []units.Voltage
	scratchAssign []Assignment
	scratchDemo   []Demotion
	// logDecisions gates the decision log. On (the default) every pass
	// copies its assignments and demotions into a fresh Decision and
	// appends it; off, Schedule's Decision aliases the scratch buffers —
	// valid only until the next pass — and Decisions()/LastDecision see
	// nothing. Long-running daemons turn it off: an unbounded log is a
	// leak, and the append is the hot path's one remaining allocation.
	logDecisions bool
}

// New builds a scheduler over the target with an initial processor power
// budget.
func New(cfg Config, target Target, budget units.Power) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("fvsst: nil target")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("fvsst: budget %v must be positive", budget)
	}
	pred, err := perfmodel.New(cfg.Hier)
	if err != nil {
		return nil, err
	}
	sampler, err := counters.NewSampler(target, 4*cfg.SchedulePeriods)
	if err != nil {
		return nil, err
	}
	if cfg.VoltageTables != nil && len(cfg.VoltageTables) != target.NumCPUs() {
		return nil, fmt.Errorf("fvsst: %d voltage tables for %d CPUs", len(cfg.VoltageTables), target.NumCPUs())
	}
	cadence, err := engine.NewCadence(cfg.SchedulePeriods)
	if err != nil {
		return nil, err
	}
	n := target.NumCPUs()
	s := &Scheduler{
		cfg:           cfg,
		target:        target,
		sampler:       sampler,
		predictor:     pred,
		budget:        budget,
		set:           cfg.Table.Frequencies(),
		cadence:       cadence,
		prevObs:       make([]perfmodel.Observation, n),
		prevValid:     make([]bool, n),
		lastDesired:   make([]units.Frequency, n),
		desireStreak:  make([]int, n),
		lastPredIPC:   make([]float64, n),
		lastPredValid: make([]bool, n),
		desiredIdx:    make([]int, n),
		actualIdx:     make([]int, n),
		observed:      make([]float64, n),
		obsOK:         make([]bool, n),
		idle:          make([]bool, n),
		volts:         make([]units.Voltage, n),
		scratchAssign: make([]Assignment, n),
		logDecisions:  true,
	}
	s.grid.Reset(n, s.set)
	return s, nil
}

// SetSink attaches an observability sink that receives one structured
// trace event per scheduling pass (see internal/obs). A nil sink — the
// default — disables tracing; the only hot-path cost left is a pointer
// test, proven by the sink benchmarks in bench_test.go.
func (s *Scheduler) SetSink(sink obs.Sink) { s.sink = sink }

// SetDecisionLogging toggles the in-memory decision log (default on).
// With logging off the Decision returned by Schedule aliases the
// scheduler's reusable scratch — it is valid until the next pass and is
// never retained, so the steady-state Schedule path performs zero heap
// allocations — and Decisions()/LastDecision report nothing. Long-running
// deployments disable it: the log grows without bound.
func (s *Scheduler) SetDecisionLogging(on bool) { s.logDecisions = on }

// Config returns the scheduler's configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Budget returns the current processor power budget.
func (s *Scheduler) Budget() units.Power { return s.budget }

// SetBudget changes the global power limit — trigger 1 of §5. It does not
// itself reschedule; callers follow with Schedule("budget-change").
func (s *Scheduler) SetBudget(p units.Power) error {
	if p <= 0 {
		return fmt.Errorf("fvsst: budget %v must be positive", p)
	}
	s.budget = p
	return nil
}

// Collect samples the counters of every processor once (one dispatch
// period t). It returns true when a scheduling pass is due (every n-th
// collection).
func (s *Scheduler) Collect() (due bool, err error) {
	if err := s.sampler.Collect(); err != nil {
		return false, err
	}
	return s.cadence.Tick(), nil
}

// observationFor builds the predictor observation for cpu from the last
// scheduling window. ok is false when the window contains no usable work.
func (s *Scheduler) observationFor(cpu int) (perfmodel.Observation, bool) {
	delta := s.sampler.WindowAggregate(cpu, s.cfg.SchedulePeriods)
	freqHz := delta.ObservedFrequencyHz()
	if delta.Instructions == 0 || delta.Cycles == 0 || freqHz <= 0 {
		return perfmodel.Observation{}, false
	}
	return perfmodel.Observation{Delta: delta, Freq: units.Frequency(freqHz)}, true
}

// decompose derives the cycle decomposition for one CPU's window,
// honouring the configured calibration modes. The window is banked as the
// CPU's previous observation whether or not decomposition succeeds.
func (s *Scheduler) decompose(cpu int, obs perfmodel.Observation) (perfmodel.Decomposition, error) {
	dec, err := s.decomposeWindow(cpu, obs)
	s.prevObs[cpu] = obs
	s.prevValid[cpu] = true
	return dec, err
}

func (s *Scheduler) decomposeWindow(cpu int, obs perfmodel.Observation) (perfmodel.Decomposition, error) {
	if s.cfg.UseTwoPointCalibration && s.prevValid[cpu] {
		prev := s.prevObs[cpu]
		// Two usable points need meaningfully distinct frequencies or the
		// slope estimate blows up on noise.
		if prev.Freq > 0 && relDiff(prev.Freq.Hz(), obs.Freq.Hz()) > 0.02 {
			if dec, err := perfmodel.CalibrateTwoPoint(prev, obs); err == nil {
				return dec, nil
			}
			// Fall through to the single-point model on calibration error.
		}
	}
	if s.cfg.LatencyBoundHi > 0 {
		b, err := s.predictor.DecomposeWithBounds(obs, s.cfg.LatencyBoundLo, s.cfg.LatencyBoundHi)
		if err != nil {
			return perfmodel.Decomposition{}, err
		}
		// Worst case for scaling down: assume latencies at the low end of
		// the band, i.e. the workload is less memory-bound than nominal.
		return b.Worst, nil
	}
	return s.predictor.Decompose(obs)
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}

// isIdle decides whether cpu should be treated as idle under the
// configured detection mechanisms.
func (s *Scheduler) isIdle(cpu int) bool {
	if s.cfg.UseIdleSignal && s.target.IsIdle(cpu) {
		return true
	}
	if s.cfg.UseHaltedCycles {
		delta := s.sampler.WindowAggregate(cpu, s.cfg.SchedulePeriods)
		if delta.HaltedFraction() > 0.9 {
			return true
		}
	}
	return false
}

// resetScratch prepares the per-pass buffers for a pass over n processors,
// reusing their backing arrays.
func (s *Scheduler) resetScratch(n int) {
	s.grid.Reset(n, s.set)
	if cap(s.desiredIdx) < n {
		s.desiredIdx = make([]int, n)
		s.actualIdx = make([]int, n)
		s.observed = make([]float64, n)
		s.obsOK = make([]bool, n)
		s.idle = make([]bool, n)
		s.volts = make([]units.Voltage, n)
		s.scratchAssign = make([]Assignment, n)
	}
	s.desiredIdx = s.desiredIdx[:n]
	s.actualIdx = s.actualIdx[:n]
	s.observed = s.observed[:n]
	s.obsOK = s.obsOK[:n]
	s.idle = s.idle[:n]
	s.volts = s.volts[:n]
	s.scratchAssign = s.scratchAssign[:n]
	for i := 0; i < n; i++ {
		s.observed[i] = 0
		s.obsOK[i] = false
		s.idle[i] = false
	}
}

// Schedule runs one full pass of the Figure 3 algorithm and actuates the
// result. trigger labels the cause in the decision log ("timer",
// "budget-change", "idle-transition").
//
// The pass works in operating-point index space over a per-scheduler
// prediction grid: each busy CPU's frequency sweep is evaluated exactly
// once (perfmodel.PredGrid) and Step 1, Step 2 and the decision
// attribution all read from it. The decisions are identical to the direct
// per-frequency computation — the grid stores the same bit patterns.
func (s *Scheduler) Schedule(trigger string) (Decision, error) {
	s.passID++
	// trace gates every clock read and span emission: with no sink the
	// pass performs no timing work (TestScheduleZeroAlloc pins this path).
	trace := s.sink != nil
	var passStart time.Time
	var fillDur time.Duration
	if trace {
		passStart = time.Now()
	}
	n := s.target.NumCPUs()
	s.resetScratch(n)
	nf := s.grid.NumFreqs()

	// Step 1: ε-constrained frequency per processor.
	for cpu := 0; cpu < n; cpu++ {
		if s.isIdle(cpu) {
			s.idle[cpu] = true
			s.desiredIdx[cpu] = 0 // set minimum
			continue
		}
		obsv, ok := s.observationFor(cpu)
		if !ok {
			// No usable window (just started, or fully throttled):
			// schedule conservatively at maximum.
			s.desiredIdx[cpu] = nf - 1
			continue
		}
		var fillStart time.Time
		if trace {
			fillStart = time.Now()
		}
		dec, err := s.decompose(cpu, obsv)
		if err != nil {
			return Decision{}, fmt.Errorf("fvsst: cpu %d: %w", cpu, err)
		}
		s.grid.Fill(cpu, dec)
		if trace {
			fillDur += time.Since(fillStart)
		}
		s.observed[cpu] = obsv.Delta.IPC()
		s.obsOK[cpu] = true
		if s.cfg.UseIdealFrequency {
			f, err := IdealEpsilonFrequency(dec, s.set, s.cfg.Epsilon)
			if err != nil {
				return Decision{}, err
			}
			s.desiredIdx[cpu] = s.cfg.Table.IndexOf(f)
		} else {
			s.desiredIdx[cpu] = EpsilonIndexGrid(&s.grid, cpu, s.cfg.Epsilon)
		}
	}

	// Debounce: a new ε-constrained frequency must persist for k passes
	// before the scheduler acts on it; until then the processor holds its
	// current setting. Step 2's forced downward moves are applied after
	// this filter and are never debounced.
	if k := s.cfg.DebouncePasses; k >= 2 {
		for cpu := 0; cpu < n; cpu++ {
			df := s.set[s.desiredIdx[cpu]]
			if df == s.lastDesired[cpu] {
				s.desireStreak[cpu]++
			} else {
				s.lastDesired[cpu] = df
				s.desireStreak[cpu] = 1
			}
			cur := s.set.ClampTo(s.target.EffectiveFrequency(cpu))
			if df != cur && s.desireStreak[cpu] < k {
				s.desiredIdx[cpu] = s.cfg.Table.IndexOf(cur)
			}
		}
	}

	// Step 2: fit the aggregate power to the budget, recording every
	// reduction for the decision's demotion attribution.
	var step2Start time.Time
	if trace {
		step2Start = time.Now()
	}
	copy(s.actualIdx, s.desiredIdx)
	demotions, met := FitToBudgetGrid(&s.grid, s.actualIdx, s.cfg.Table, s.budget, s.scratchDemo[:0])
	s.scratchDemo = demotions[:0] // keep any grown backing array
	var step3Start time.Time
	if trace {
		step3Start = time.Now()
	}

	// Step 3: voltages — per-CPU tables when the machine has process
	// variation, otherwise index math on the shared table.
	for cpu := 0; cpu < n; cpu++ {
		if s.cfg.VoltageTables != nil {
			v, err := s.cfg.VoltageTables[cpu].MinVoltage(s.cfg.Table.FrequencyAtIndex(s.actualIdx[cpu]))
			if err != nil {
				return Decision{}, fmt.Errorf("fvsst: voltage for cpu %d: %w", cpu, err)
			}
			s.volts[cpu] = v
		} else {
			s.volts[cpu] = s.cfg.Table.VoltageAtIndex(s.actualIdx[cpu])
		}
	}

	// Actuate and log.
	var actStart time.Time
	if trace {
		actStart = time.Now()
	}
	var tablePower units.Power
	for cpu := 0; cpu < n; cpu++ {
		ai := s.actualIdx[cpu]
		actualF := s.cfg.Table.FrequencyAtIndex(ai)
		tablePower += s.cfg.Table.PowerAtIndex(ai)
		if err := s.target.SetFrequency(cpu, actualF); err != nil {
			return Decision{}, fmt.Errorf("fvsst: actuate cpu %d: %w", cpu, err)
		}
		a := Assignment{
			CPU:     cpu,
			Desired: s.cfg.Table.FrequencyAtIndex(s.desiredIdx[cpu]),
			Actual:  actualF,
			Voltage: s.volts[cpu],
			Idle:    s.idle[cpu],
		}
		if s.grid.Valid(cpu) {
			a.PredictedLoss = s.grid.Loss(cpu, ai)
			a.PredictedIPC = s.grid.IPC(cpu, ai)
			a.ObservedIPC = s.observed[cpu]
		}
		// Score the previous pass's prediction against the window that
		// just elapsed, then bank this pass's prediction for the next.
		if s.obsOK[cpu] && s.lastPredValid[cpu] && s.lastPredIPC[cpu] > 0 {
			a.PredictionError = (s.observed[cpu] - s.lastPredIPC[cpu]) / s.lastPredIPC[cpu]
			a.PredictionValid = true
		}
		if s.grid.Valid(cpu) {
			s.lastPredIPC[cpu] = a.PredictedIPC
			s.lastPredValid[cpu] = true
		} else {
			s.lastPredValid[cpu] = false
		}
		s.scratchAssign[cpu] = a
	}
	d := Decision{
		At:         s.target.Now(),
		Trigger:    trigger,
		Budget:     s.budget,
		TablePower: tablePower,
		BudgetMet:  met,
	}
	if s.logDecisions {
		d.Assignments = append([]Assignment(nil), s.scratchAssign...)
		if len(demotions) > 0 {
			d.Demotions = append([]Demotion(nil), demotions...)
		}
		s.decisions = append(s.decisions, d)
	} else {
		d.Assignments = s.scratchAssign
		if len(demotions) > 0 {
			d.Demotions = demotions
		}
	}
	if trace {
		actDur := time.Since(actStart)
		ev := d.Event()
		ev.PassID = s.passID
		s.sink.Emit(ev)
		// Span tree: debounce time rides inside step1's remainder; the
		// grid fill (decompose + sweep) is broken out so children stay
		// disjoint.
		at := d.At
		s.sink.Emit(obs.SpanEvent(at, s.passID, "", obs.SpanGridFill, obs.SpanPass, fillDur.Seconds()))
		s.sink.Emit(obs.SpanEvent(at, s.passID, "", obs.SpanStepOne, obs.SpanPass, (step2Start.Sub(passStart) - fillDur).Seconds()))
		s.sink.Emit(obs.SpanEvent(at, s.passID, "", obs.SpanStepTwo, obs.SpanPass, step3Start.Sub(step2Start).Seconds()))
		s.sink.Emit(obs.SpanEvent(at, s.passID, "", obs.SpanStepThree, obs.SpanPass, actStart.Sub(step3Start).Seconds()))
		s.sink.Emit(obs.SpanEvent(at, s.passID, "", obs.SpanActuate, obs.SpanPass, actDur.Seconds()))
		s.sink.Emit(obs.SpanEvent(at, s.passID, "", obs.SpanPass, "", time.Since(passStart).Seconds()))
	}
	return d, nil
}

// Decisions returns the full decision log.
func (s *Scheduler) Decisions() []Decision {
	out := make([]Decision, len(s.decisions))
	copy(out, s.decisions)
	return out
}

// LastDecision returns the most recent decision and true, or false when no
// pass has run yet.
func (s *Scheduler) LastDecision() (Decision, bool) {
	if len(s.decisions) == 0 {
		return Decision{}, false
	}
	return s.decisions[len(s.decisions)-1], true
}
