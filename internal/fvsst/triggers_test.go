package fvsst

import (
	"testing"

	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestIdleTransitionTrigger: with the idle signal enabled, a job finishing
// mid-period triggers an immediate "idle-transition" decision that parks
// the processor, without waiting for the next timer pass.
func TestIdleTransitionTrigger(t *testing.T) {
	m := quietMachine(t)
	// A job sized to finish at ≈0.23 s, i.e. mid-way between the timer
	// passes at 0.2 and 0.3 s.
	mix, err := workload.NewMix(workload.Program{Name: "short", Phases: []workload.Phase{
		{Name: "c", Alpha: 1.4, Instructions: 320e6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMix(2, mix); err != nil {
		t.Fatal(err)
	}
	cfg := noOverheadConfig()
	cfg.UseIdleSignal = true
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(0.4); err != nil {
		t.Fatal(err)
	}
	var transition *Decision
	for i, d := range s.Decisions() {
		if d.Trigger == "idle-transition" {
			transition = &s.Decisions()[i]
			break
		}
	}
	if transition == nil {
		t.Fatal("no idle-transition decision")
	}
	// It fired within two quanta of the job's completion...
	comps := m.Completions()
	if len(comps) != 1 {
		t.Fatalf("completions = %d", len(comps))
	}
	if dt := transition.At - comps[0].At; dt < 0 || dt > 0.021 {
		t.Errorf("idle transition %.3fs after completion", dt)
	}
	// ...and parked the processor.
	if a := transition.Assignments[2]; !a.Idle || a.Actual != units.MHz(250) {
		t.Errorf("transition decision did not park cpu2: %+v", a)
	}
}

// TestBudgetChangePreemptsTimer: when a budget event and a timer pass land
// on the same quantum, the budget change is handled first (the safety-
// critical ordering of Driver.Step).
func TestBudgetChangePreemptsTimer(t *testing.T) {
	m := quietMachine(t)
	for cpu := 0; cpu < 4; cpu++ {
		mix, _ := workload.NewMix(cpuProgram("cpu", 1e12))
		m.SetMix(cpu, mix)
	}
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	// Event at exactly a multiple of T = 100 ms.
	budgets, err := power.NewBudgetSchedule(units.Watts(560),
		power.BudgetEvent{At: 0.2, Budget: units.Watts(294)})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	drv.Budgets = budgets
	if err := drv.Run(0.35); err != nil {
		t.Fatal(err)
	}
	decs := s.Decisions()
	for i := 1; i < len(decs); i++ {
		if decs[i].Trigger == "timer" && decs[i].Budget.W() == 560 && decs[i].At > 0.2 {
			t.Errorf("timer decision at %.2fs still on the old budget", decs[i].At)
		}
	}
	// Power is under the new limit at the end.
	if got := m.TotalCPUPower(); got > units.Watts(295) {
		t.Errorf("power %v over the new budget", got)
	}
}
