package fvsst

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestIdleTransitionTrigger: with the idle signal enabled, a job finishing
// mid-period triggers an immediate "idle-transition" decision that parks
// the processor, without waiting for the next timer pass.
func TestIdleTransitionTrigger(t *testing.T) {
	m := quietMachine(t)
	// A job sized to finish at ≈0.23 s, i.e. mid-way between the timer
	// passes at 0.2 and 0.3 s.
	mix, err := workload.NewMix(workload.Program{Name: "short", Phases: []workload.Phase{
		{Name: "c", Alpha: 1.4, Instructions: 320e6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMix(2, mix); err != nil {
		t.Fatal(err)
	}
	cfg := noOverheadConfig()
	cfg.UseIdleSignal = true
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(0.4); err != nil {
		t.Fatal(err)
	}
	var transition *Decision
	for i, d := range s.Decisions() {
		if d.Trigger == "idle-transition" {
			transition = &s.Decisions()[i]
			break
		}
	}
	if transition == nil {
		t.Fatal("no idle-transition decision")
	}
	// It fired within two quanta of the job's completion...
	comps := m.Completions()
	if len(comps) != 1 {
		t.Fatalf("completions = %d", len(comps))
	}
	if dt := transition.At - comps[0].At; dt < 0 || dt > 0.021 {
		t.Errorf("idle transition %.3fs after completion", dt)
	}
	// ...and parked the processor.
	if a := transition.Assignments[2]; !a.Idle || a.Actual != units.MHz(250) {
		t.Errorf("transition decision did not park cpu2: %+v", a)
	}
}

// TestTriggerAttribution: each of the paper's reschedule causes — the
// startup pass, the periodic timer, a budget change and an idle
// transition — produces exactly one trace event carrying its trigger
// label, and the event stream mirrors the decision log one-to-one.
func TestTriggerAttribution(t *testing.T) {
	cases := []struct {
		name    string
		trigger string
		until   float64
		setup   func(t *testing.T) (*Driver, *Scheduler)
	}{
		{
			// Only the initial pass before the first timer period.
			name: "startup", trigger: "startup", until: 0.05,
			setup: busyDriver,
		},
		{
			// One full period elapses before the deadline: one timer pass.
			name: "timer", trigger: "timer", until: 0.15,
			setup: busyDriver,
		},
		{
			// A budget drop mid-period, off the timer grid.
			name: "budget-change", trigger: "budget-change", until: 0.18,
			setup: func(t *testing.T) (*Driver, *Scheduler) {
				drv, s := busyDriver(t)
				budgets, err := power.NewBudgetSchedule(units.Watts(560),
					power.BudgetEvent{At: 0.12, Budget: units.Watts(294)})
				if err != nil {
					t.Fatal(err)
				}
				drv.Budgets = budgets
				return drv, s
			},
		},
		{
			// A job completing mid-period with the idle signal enabled.
			name: "idle-transition", trigger: "idle-transition", until: 0.28,
			setup: func(t *testing.T) (*Driver, *Scheduler) {
				m := quietMachine(t)
				mix, err := workload.NewMix(workload.Program{Name: "short", Phases: []workload.Phase{
					{Name: "c", Alpha: 1.4, Instructions: 320e6},
				}})
				if err != nil {
					t.Fatal(err)
				}
				if err := m.SetMix(2, mix); err != nil {
					t.Fatal(err)
				}
				cfg := noOverheadConfig()
				cfg.UseIdleSignal = true
				s, err := New(cfg, m, units.Watts(560))
				if err != nil {
					t.Fatal(err)
				}
				return NewDriver(m, s), s
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			drv, s := tc.setup(t)
			var buf obs.Buffer
			s.SetSink(&buf)
			if err := drv.Run(tc.until); err != nil {
				t.Fatal(err)
			}
			if got := buf.Count(obs.EventSchedule, tc.trigger); got != 1 {
				t.Errorf("%d trace events with trigger %q, want exactly 1", got, tc.trigger)
			}
			decs := s.Decisions()
			var events, passSpans []obs.Event
			for _, e := range buf.Events() {
				switch {
				case e.Type == obs.EventSchedule:
					events = append(events, e)
				case e.Type == obs.EventSpan && e.Span == obs.SpanPass:
					passSpans = append(passSpans, e)
				}
			}
			if len(events) != len(decs) {
				t.Fatalf("%d schedule events for %d decisions", len(events), len(decs))
			}
			if len(passSpans) != len(decs) {
				t.Fatalf("%d pass spans for %d decisions", len(passSpans), len(decs))
			}
			for i, e := range events {
				if e.Trigger != decs[i].Trigger || e.At != decs[i].At {
					t.Errorf("event %d = (%q, %v), decision = (%q, %v)",
						i, e.Trigger, e.At, decs[i].Trigger, decs[i].At)
				}
				if len(e.CPUs) != len(decs[i].Assignments) {
					t.Errorf("event %d has %d CPU traces for %d assignments", i, len(e.CPUs), len(decs[i].Assignments))
				}
				// Pass IDs count passes from the clock epoch and join the
				// schedule event with its span tree.
				if want := uint64(i + 1); e.PassID != want || passSpans[i].PassID != want {
					t.Errorf("pass %d: event PassID %d, span PassID %d", i, e.PassID, passSpans[i].PassID)
				}
			}
		})
	}
}

// busyDriver couples a quiet machine running four long CPU-bound jobs
// with a freshly built scheduler.
func busyDriver(t *testing.T) (*Driver, *Scheduler) {
	m := quietMachine(t)
	for cpu := 0; cpu < 4; cpu++ {
		mix, err := workload.NewMix(cpuProgram("cpu", 1e12))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	return NewDriver(m, s), s
}

// TestBudgetChangePreemptsTimer: when a budget event and a timer pass land
// on the same quantum, the budget change is handled first (the safety-
// critical ordering of Driver.Step).
func TestBudgetChangePreemptsTimer(t *testing.T) {
	m := quietMachine(t)
	for cpu := 0; cpu < 4; cpu++ {
		mix, _ := workload.NewMix(cpuProgram("cpu", 1e12))
		m.SetMix(cpu, mix)
	}
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	// Event at exactly a multiple of T = 100 ms.
	budgets, err := power.NewBudgetSchedule(units.Watts(560),
		power.BudgetEvent{At: 0.2, Budget: units.Watts(294)})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	drv.Budgets = budgets
	if err := drv.Run(0.35); err != nil {
		t.Fatal(err)
	}
	decs := s.Decisions()
	for i := 1; i < len(decs); i++ {
		if decs[i].Trigger == "timer" && decs[i].Budget.W() == 560 && decs[i].At > 0.2 {
			t.Errorf("timer decision at %.2fs still on the old budget", decs[i].At)
		}
	}
	// Power is under the new limit at the end.
	if got := m.TotalCPUPower(); got > units.Watts(295) {
		t.Errorf("power %v over the new budget", got)
	}
}
