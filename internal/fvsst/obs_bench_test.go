package fvsst

import (
	"io"
	"testing"

	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/workload"
)

// benchSchedule measures one Schedule pass with the given sink attached —
// the hot path the obs layer must not slow down when tracing is off.
func benchSchedule(b *testing.B, sink obs.Sink) {
	m := quietMachine(b)
	for cpu := 0; cpu < 2; cpu++ {
		mix, err := workload.NewMix(cpuProgram("cpu", 1e15))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			b.Fatal(err)
		}
	}
	for cpu := 2; cpu < 4; cpu++ {
		mix, err := workload.NewMix(memProgram("mem", 1e15))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			b.Fatal(err)
		}
	}
	s, err := New(noOverheadConfig(), m, units.Watts(294))
	if err != nil {
		b.Fatal(err)
	}
	s.SetSink(sink)
	// Warm a full counter window so Schedule runs the real Step-1 path.
	drv := NewDriver(m, s)
	if err := drv.Run(0.2); err != nil {
		b.Fatal(err)
	}
	s.decisions = s.decisions[:0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule("timer"); err != nil {
			b.Fatal(err)
		}
		s.decisions = s.decisions[:0] // keep the log from dominating memory
	}
}

func BenchmarkScheduleNoSink(b *testing.B)      { benchSchedule(b, nil) }
func BenchmarkScheduleMetricsSink(b *testing.B) { benchSchedule(b, obs.NewMetrics()) }
func BenchmarkScheduleJSONLSink(b *testing.B)   { benchSchedule(b, obs.NewJSONLWriter(io.Discard)) }
