package fvsst

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

func TestSinglePassValidation(t *testing.T) {
	tab := power.PaperTable1()
	if _, _, err := SinglePassAssign(make([]*perfmodel.Decomposition, 2), []bool{false}, tab, units.Watts(100), 0.05); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := SinglePassAssign(nil, nil, tab, units.Watts(100), 0); err == nil {
		t.Error("epsilon 0 accepted")
	}
}

func TestSinglePassMatchesWorkedExample(t *testing.T) {
	tab := power.Section5Table()
	decs := []*perfmodel.Decomposition{
		dec2(1.0, 12), dec2(1.1, 8.44), dec2(1.2, 5.2), dec2(1.2, 5.2),
	}
	idle := make([]bool, 4)
	out, met, err := SinglePassAssign(decs, idle, tab, units.Watts(294), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !met {
		t.Fatal("budget not met")
	}
	// The T1 configuration of the §5 example: everything fits at its
	// ε-constrained frequency, 282 W.
	want := []units.Frequency{units.MHz(600), units.MHz(700), units.MHz(800), units.MHz(800)}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("cpu %d = %v, want %v", i, out[i], want[i])
		}
	}
}

func dec2(alpha, stallNs float64) *perfmodel.Decomposition {
	return &perfmodel.Decomposition{InvAlpha: 1 / alpha, StallSecPerInstr: stallNs * 1e-9}
}

// TestSinglePassEquivalentToTwoPass: across random processor populations
// and budgets, the heap formulation meets the budget whenever the two-pass
// one does and accumulates exactly the same total predicted loss (tie
// order may reshuffle individual assignments).
func TestSinglePassEquivalentToTwoPass(t *testing.T) {
	tab := power.PaperTable1()
	set := tab.Frequencies()
	err := quick.Check(func(raw []uint16, budgetRaw uint16) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		decs := make([]*perfmodel.Decomposition, len(raw))
		idle := make([]bool, len(raw))
		desired := make([]units.Frequency, len(raw))
		for i, r := range raw {
			switch r % 5 {
			case 0:
				idle[i] = true
				desired[i] = set.Min()
			case 1:
				desired[i] = set.Max() // no data
			default:
				d := dec2(0.6+float64(r%20)/10, float64(r%140)/10)
				decs[i] = d
				desired[i] = EpsilonFrequency(*d, set, 0.05)
			}
		}
		budget := units.Watts(float64(budgetRaw%2000) + 9)

		two, metTwo, err := FitToBudget(decs, desired, tab, budget)
		if err != nil {
			return false
		}
		one, metOne, err := SinglePassAssign(decs, idle, tab, budget, 0.05)
		if err != nil {
			return false
		}
		if metTwo != metOne {
			return false
		}
		lossTwo := TotalPredictedLoss(decs, two, set)
		lossOne := TotalPredictedLoss(decs, one, set)
		if math.Abs(lossTwo-lossOne) > 1e-9 {
			return false
		}
		if metOne {
			pOne, err := TotalTablePower(one, tab)
			if err != nil || pOne > budget {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// BenchmarkTwoPassVsSinglePass quantifies the §5 remark: the heap
// formulation scales better with processor count under deep budget cuts.
func BenchmarkTwoPassFit(b *testing.B)    { benchFit(b, false) }
func BenchmarkSinglePassFit(b *testing.B) { benchFit(b, true) }

func benchFit(b *testing.B, single bool) {
	tab := power.PaperTable1()
	set := tab.Frequencies()
	const n = 64
	decs := make([]*perfmodel.Decomposition, n)
	idle := make([]bool, n)
	desired := make([]units.Frequency, n)
	for i := range decs {
		d := dec2(0.8+float64(i%15)/10, float64(i%12))
		decs[i] = d
		desired[i] = EpsilonFrequency(*d, set, 0.05)
	}
	budget := units.Watts(n * 20) // deep cut: many reductions needed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if single {
			if _, _, err := SinglePassAssign(decs, idle, tab, budget, 0.05); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, _, err := FitToBudget(decs, desired, tab, budget); err != nil {
				b.Fatal(err)
			}
		}
	}
}
