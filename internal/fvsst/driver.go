package fvsst

import (
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// ErrCascade is returned by Driver.Step when the power plant cascade-fails:
// the machine stayed over the surviving supplies' capacity for longer than
// their ΔT tolerance (§2). The simulation cannot meaningfully continue —
// the machine has lost power.
var ErrCascade = errors.New("fvsst: power plant cascade failure")

// Driver couples the simulated machine with the scheduler the way the
// prototype daemon coupled with the kernel: each dispatch quantum the
// machine advances and the daemon collects counters; every n-th quantum
// (and on budget or idle events) it reschedules. The daemon's own cost is
// stolen from its host CPU.
type Driver struct {
	M *machine.Machine
	S *Scheduler
	// Budgets is the CPU-power budget over time; nil keeps the
	// scheduler's initial budget forever.
	Budgets *power.BudgetSchedule
	// Plant, when non-nil, is fed the true system power each quantum and
	// enforces the §2 cascade-failure rule; Step returns ErrCascade if the
	// system overloads the surviving supplies for longer than ΔT.
	Plant *power.Plant
	// Recorder, when non-nil, receives per-quantum traces. TraceCPU
	// selects the processor traced in the per-CPU series: a CPU index in
	// [0, NumCPUs), or the sentinel -1 (the NewDriver default) to disable
	// the per-CPU series while keeping the machine-wide ones. Any other
	// value is rejected by Step.
	Recorder *telemetry.Recorder
	TraceCPU int
	// Sink, when non-nil, receives one obs.EventQuantum per Step with the
	// machine's power draw and the active budget — the quantum-granularity
	// companion to the scheduler's per-decision events.
	Sink obs.Sink

	prevIdle []bool
	started  bool
	// series caches the Recorder's series handles so record() does not
	// repeat the by-name map lookups every quantum.
	series struct {
		systemPower, cpuPower, budget    *telemetry.Series
		ipc, freq, desiredMHz, actualMHz *telemetry.Series
		from                             *telemetry.Recorder
	}
}

// NewDriver wires a machine and scheduler together.
func NewDriver(m *machine.Machine, s *Scheduler) *Driver {
	return &Driver{M: m, S: s, TraceCPU: -1}
}

// Step advances the coupled system by one dispatch quantum.
func (d *Driver) Step() error {
	if !d.started {
		if d.TraceCPU < -1 || d.TraceCPU >= d.M.NumCPUs() {
			return fmt.Errorf("fvsst: TraceCPU %d outside [0,%d) and not the -1 sentinel", d.TraceCPU, d.M.NumCPUs())
		}
		d.prevIdle = make([]bool, d.M.NumCPUs())
		for i := range d.prevIdle {
			d.prevIdle[i] = d.M.IsIdle(i)
		}
		d.started = true
		// Enforce the budget from the very first quantum: with no counter
		// history every processor is treated as CPU-bound (desired f_max)
		// and Step 2 clamps the assignment into the budget. Without this a
		// short job could run to completion before the first timer pass.
		if err := d.chargeSchedule(); err != nil {
			return err
		}
		if _, err := d.S.Schedule("startup"); err != nil {
			return err
		}
	}

	d.M.Step()

	// Trigger 1: a budget change takes effect the moment the simulation
	// clock reaches it — checked right after the step so any decision
	// made at this timestamp (timer or idle) sees the new limit.
	if d.Budgets != nil {
		want := d.Budgets.At(d.M.Now())
		if want != d.S.Budget() {
			if err := d.S.SetBudget(want); err != nil {
				return err
			}
			if err := d.chargeSchedule(); err != nil {
				return err
			}
			if _, err := d.S.Schedule("budget-change"); err != nil {
				return err
			}
		}
	}

	if d.Plant != nil && d.Plant.Observe(d.M.Now(), d.M.SystemPower()) {
		return ErrCascade
	}

	// The daemon collects after every quantum.
	if err := d.chargeCollect(); err != nil {
		return err
	}
	due, err := d.S.Collect()
	if err != nil {
		return err
	}

	// Trigger 3: idle transitions reschedule immediately when the idle
	// signal is in use.
	idleChanged := false
	if d.S.Config().UseIdleSignal {
		for i := 0; i < d.M.NumCPUs(); i++ {
			cur := d.M.IsIdle(i)
			if cur != d.prevIdle[i] {
				idleChanged = true
			}
			d.prevIdle[i] = cur
		}
	}

	switch {
	case idleChanged:
		if err := d.chargeSchedule(); err != nil {
			return err
		}
		if _, err := d.S.Schedule("idle-transition"); err != nil {
			return err
		}
	case due:
		// Trigger 2: the periodic timer T = n·t.
		if err := d.chargeSchedule(); err != nil {
			return err
		}
		if _, err := d.S.Schedule("timer"); err != nil {
			return err
		}
	}

	d.record()
	if d.Sink != nil {
		d.Sink.Emit(obs.Event{
			Type:         obs.EventQuantum,
			At:           d.M.Now(),
			BudgetW:      d.S.Budget().W(),
			SystemPowerW: d.M.SystemPower().W(),
			CPUPowerW:    d.M.TotalCPUPower().W(),
		})
	}
	return nil
}

func (d *Driver) chargeCollect() error {
	oh := d.S.Config().Overhead
	if oh.CollectPerCPU <= 0 {
		return nil
	}
	if oh.Distributed {
		// §9 redesign: each CPU's collector thread reads its own counters.
		for cpu := 0; cpu < d.M.NumCPUs(); cpu++ {
			if err := d.M.StealTime(cpu, oh.CollectPerCPU); err != nil {
				return err
			}
		}
		return nil
	}
	cost := oh.CollectPerCPU * float64(d.M.NumCPUs())
	return d.M.StealTime(oh.DaemonCPU, cost)
}

func (d *Driver) chargeSchedule() error {
	oh := d.S.Config().Overhead
	if oh.SchedulePass <= 0 {
		return nil
	}
	if oh.Distributed {
		n := d.M.NumCPUs()
		share := oh.SchedulePass / float64(n)
		for cpu := 0; cpu < n; cpu++ {
			if err := d.M.StealTime(cpu, share); err != nil {
				return err
			}
		}
		return nil
	}
	return d.M.StealTime(oh.DaemonCPU, oh.SchedulePass)
}

// record emits per-quantum telemetry for the traced CPU and the machine.
// Series handles are resolved once per Recorder and cached; the per-quantum
// path is append-only.
func (d *Driver) record() {
	if d.Recorder == nil {
		return
	}
	if d.series.from != d.Recorder {
		// New or replaced recorder: drop stale handles. Series are
		// resolved on first use below, not eagerly, because Series()
		// creates on lookup and an untraced driver must not create the
		// per-CPU series (their presence shows in Names()/WriteCSV).
		d.series.from = d.Recorder
		d.series.systemPower = d.Recorder.Series("system-power-w")
		d.series.cpuPower = d.Recorder.Series("cpu-power-w")
		d.series.budget = d.Recorder.Series("budget-w")
		d.series.ipc = nil
		d.series.freq = nil
		d.series.desiredMHz = nil
		d.series.actualMHz = nil
	}
	now := d.M.Now()
	d.series.systemPower.MustAppend(now, d.M.SystemPower().W())
	d.series.cpuPower.MustAppend(now, d.M.TotalCPUPower().W())
	d.series.budget.MustAppend(now, d.S.Budget().W())
	if d.TraceCPU >= 0 && d.TraceCPU < d.M.NumCPUs() {
		if d.series.ipc == nil {
			d.series.ipc = d.Recorder.Series("ipc")
			d.series.freq = d.Recorder.Series("freq-mhz")
		}
		q := d.M.LastQuantum(d.TraceCPU)
		ipc := 0.0
		if q.Cycles > 0 {
			ipc = float64(q.Instructions) / float64(q.Cycles)
		}
		d.series.ipc.MustAppend(now, ipc)
		d.series.freq.MustAppend(now, d.M.EffectiveFrequency(d.TraceCPU).MHz())
		if dec, ok := d.S.LastDecision(); ok {
			if d.series.desiredMHz == nil {
				d.series.desiredMHz = d.Recorder.Series("desired-mhz")
				d.series.actualMHz = d.Recorder.Series("actual-mhz")
			}
			a := dec.Assignments[d.TraceCPU]
			d.series.desiredMHz.MustAppend(now, a.Desired.MHz())
			d.series.actualMHz.MustAppend(now, a.Actual.MHz())
		}
	}
}

// Run advances the coupled system until simulation time t.
func (d *Driver) Run(until float64) error {
	for d.M.Now() < until {
		if err := d.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntilAllDone advances until every assigned job completes or the
// deadline passes, returning whether all completed.
func (d *Driver) RunUntilAllDone(deadline float64) (bool, error) {
	for d.M.Now() < deadline {
		if d.M.AllJobsDone() {
			return true, nil
		}
		if err := d.Step(); err != nil {
			return false, err
		}
	}
	return d.M.AllJobsDone(), nil
}

// RunScenario is the one-call entry point most experiments use: build a
// machine, a scheduler with the given CPU budget, couple them and run to
// the deadline or completion.
func RunScenario(m *machine.Machine, cfg Config, budget units.Power, deadline float64) (*Driver, error) {
	s, err := New(cfg, m, budget)
	if err != nil {
		return nil, err
	}
	drv := NewDriver(m, s)
	if _, err := drv.RunUntilAllDone(deadline); err != nil {
		return nil, err
	}
	return drv, nil
}

var _ Target = (*machine.Machine)(nil)
