package fvsst

import (
	"strings"
	"testing"

	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty log accepted")
	}
}

func TestSummarizeCountsAndResidency(t *testing.T) {
	mk := func(trigger string, met bool, f0 units.Frequency, clipped, idle bool) Decision {
		a := Assignment{CPU: 0, Actual: f0, Desired: f0, Idle: idle}
		if clipped {
			a.Desired = units.GHz(1)
		}
		return Decision{
			Trigger:     trigger,
			BudgetMet:   met,
			Assignments: []Assignment{a},
		}
	}
	decisions := []Decision{
		mk("timer", true, units.MHz(650), false, false),
		mk("timer", true, units.MHz(650), false, false),
		mk("budget-change", true, units.MHz(500), true, false),
		mk("timer", false, units.MHz(250), true, true),
	}
	s, err := Summarize(decisions)
	if err != nil {
		t.Fatal(err)
	}
	if s.Decisions != 4 || s.BudgetMisses != 1 {
		t.Errorf("decisions=%d misses=%d", s.Decisions, s.BudgetMisses)
	}
	if s.Triggers["timer"] != 3 || s.Triggers["budget-change"] != 1 {
		t.Errorf("triggers = %v", s.Triggers)
	}
	c := s.PerCPU[0]
	if c.Residency[650] != 0.5 || c.Residency[500] != 0.25 {
		t.Errorf("residency = %v", c.Residency)
	}
	if c.ClippedFraction != 0.5 {
		t.Errorf("clipped = %v", c.ClippedFraction)
	}
	if c.IdleFraction != 0.25 {
		t.Errorf("idle = %v", c.IdleFraction)
	}
	if got := c.MeanFreqMHz; got != (650+650+500+250)/4.0 {
		t.Errorf("mean = %v", got)
	}
	if !strings.Contains(s.Render(), "650MHz") {
		t.Errorf("render:\n%s", s.Render())
	}
}

func TestSummarizeRejectsRaggedLog(t *testing.T) {
	decisions := []Decision{
		{Assignments: []Assignment{{CPU: 0}}},
		{Assignments: []Assignment{{CPU: 0}, {CPU: 1}}},
	}
	if _, err := Summarize(decisions); err == nil {
		t.Error("ragged log accepted")
	}
}

func TestSummarizeEndToEnd(t *testing.T) {
	m := quietMachine(t)
	mix, _ := workload.NewMix(memProgram("mem", 1e12))
	m.SetMix(3, mix)
	cfg := noOverheadConfig()
	// Without the idle signal, the 294 W cap would make the three
	// hot-idle CPUs compete with the benchmark and drive it to the floor
	// (the §5 pathology); park them so CPU 3 keeps its saturation band.
	cfg.UseIdleSignal = true
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	budgets, _ := power.NewBudgetSchedule(units.Watts(560),
		power.BudgetEvent{At: 0.5, Budget: units.Watts(294)})
	drv.Budgets = budgets
	if err := drv.Run(1.0); err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(s.Decisions())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Triggers["budget-change"] != 1 || sum.Triggers["startup"] != 1 {
		t.Errorf("triggers = %v", sum.Triggers)
	}
	// The memory-bound CPU's dominant residency is in the saturation band.
	best, bestFrac := 0.0, 0.0
	for mhz, frac := range sum.PerCPU[3].Residency {
		if frac > bestFrac {
			best, bestFrac = mhz, frac
		}
	}
	if best < 600 || best > 700 {
		t.Errorf("dominant residency %v MHz", best)
	}
}
