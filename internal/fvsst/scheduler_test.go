package fvsst

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// quietMachine returns a noise-free p630 for exact assertions.
func quietMachine(t testing.TB) *machine.Machine {
	t.Helper()
	cfg := machine.P630Config()
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	cfg.ThrottleSettle = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func noOverheadConfig() Config {
	cfg := DefaultConfig()
	cfg.Overhead = Overhead{}
	return cfg
}

func memProgram(name string, instr uint64) workload.Program {
	return workload.Program{Name: name, Phases: []workload.Phase{{
		Name: "mem", Alpha: 1.1,
		Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.0186},
		Instructions: instr,
	}}}
}

func cpuProgram(name string, instr uint64) workload.Program {
	return workload.Program{Name: name, Phases: []workload.Phase{{
		Name: "cpu", Alpha: 1.4, Instructions: instr,
	}}}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"table":    func(c *Config) { c.Table = nil },
		"eps0":     func(c *Config) { c.Epsilon = 0 },
		"eps1":     func(c *Config) { c.Epsilon = 1 },
		"period":   func(c *Config) { c.SamplePeriod = 0 },
		"n":        func(c *Config) { c.SchedulePeriods = 0 },
		"overhead": func(c *Config) { c.Overhead.SchedulePass = -1 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestNewValidation(t *testing.T) {
	m := quietMachine(t)
	if _, err := New(noOverheadConfig(), nil, units.Watts(560)); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := New(noOverheadConfig(), m, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestSchedulerSaturatesMemoryBoundCPU(t *testing.T) {
	m := quietMachine(t)
	mix, _ := workload.NewMix(memProgram("mem", 1e12))
	m.SetMix(3, mix)
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(0.5); err != nil {
		t.Fatal(err)
	}
	d, ok := s.LastDecision()
	if !ok {
		t.Fatal("no decision")
	}
	got := d.Assignments[3].Actual
	// The mcf-calibrated workload saturates at 650 MHz; allow one step of
	// slack for the imperfections the quiet machine still has (quantised
	// throttle duty shifting the observed frequency).
	if got > units.MHz(700) || got < units.MHz(600) {
		t.Errorf("memory-bound CPU scheduled at %v, want ≈650MHz", got)
	}
	// Without idle detection, hot-idle CPUs look CPU-bound and stay at
	// f_max (§7.1: "none of the idle-detection techniques ... implemented").
	for _, cpu := range []int{0, 1, 2} {
		if f := d.Assignments[cpu].Actual; f != units.GHz(1) {
			t.Errorf("hot-idle CPU %d at %v, want 1GHz without idle signal", cpu, f)
		}
	}
}

func TestSchedulerKeepsCPUBoundAtMax(t *testing.T) {
	m := quietMachine(t)
	mix, _ := workload.NewMix(cpuProgram("cpu", 1e12))
	m.SetMix(0, mix)
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(0.5); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	if d.Assignments[0].Actual != units.GHz(1) {
		t.Errorf("CPU-bound work scheduled at %v, want 1GHz", d.Assignments[0].Actual)
	}
}

func TestIdleSignalDropsIdleCPUsToMinimum(t *testing.T) {
	m := quietMachine(t)
	cfg := noOverheadConfig()
	cfg.UseIdleSignal = true
	mix, _ := workload.NewMix(cpuProgram("cpu", 1e12))
	m.SetMix(0, mix)
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(0.5); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	if d.Assignments[0].Actual != units.GHz(1) {
		t.Errorf("busy CPU at %v", d.Assignments[0].Actual)
	}
	for _, cpu := range []int{1, 2, 3} {
		a := d.Assignments[cpu]
		if !a.Idle {
			t.Errorf("CPU %d not flagged idle", cpu)
		}
		if a.Actual != units.MHz(250) {
			t.Errorf("idle CPU %d at %v, want table minimum 250MHz", cpu, a.Actual)
		}
	}
}

func TestHaltedCycleIdleDetection(t *testing.T) {
	mcfg := machine.P630Config()
	mcfg.LatencyJitterSigma = 0
	mcfg.MeterNoiseSigma = 0
	mcfg.Contention = memhier.Contention{}
	mcfg.Idle = machine.IdleHalt
	m, err := machine.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noOverheadConfig()
	cfg.UseHaltedCycles = true
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(0.5); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	for cpu, a := range d.Assignments {
		if !a.Idle || a.Actual != units.MHz(250) {
			t.Errorf("halting-idle CPU %d: idle=%v f=%v", cpu, a.Idle, a.Actual)
		}
	}
}

func TestBudgetChangeTriggersReschedule(t *testing.T) {
	m := quietMachine(t)
	for cpu := 0; cpu < 4; cpu++ {
		mix, _ := workload.NewMix(cpuProgram("cpu", 1e12))
		m.SetMix(cpu, mix)
	}
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	budgets, err := power.NewBudgetSchedule(units.Watts(560),
		power.BudgetEvent{At: 0.25, Budget: units.Watts(294), Label: "PS0 fails"})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	drv.Budgets = budgets
	if err := drv.Run(0.5); err != nil {
		t.Fatal(err)
	}
	// Find the budget-change decision.
	var found *Decision
	for i, d := range s.Decisions() {
		if d.Trigger == "budget-change" {
			found = &s.Decisions()[i]
			break
		}
	}
	if found == nil {
		t.Fatal("no budget-change decision logged")
	}
	if found.Budget.W() != 294 {
		t.Errorf("budget at change = %v", found.Budget)
	}
	if !found.BudgetMet {
		t.Error("294W over 4 CPUs should be feasible")
	}
	if found.TablePower > units.Watts(294) {
		t.Errorf("table power %v exceeds budget", found.TablePower)
	}
	// The machine's true power must be under the new limit right after.
	if got := m.TotalCPUPower(); got > units.Watts(295) {
		t.Errorf("actual CPU power %v exceeds budget", got)
	}
	// All four CPU-bound jobs are symmetric: they should land within one
	// step of each other (700 MHz ×2 + 700 ×2 → 4×66=264 ≤ 294; greedy may
	// mix 700/750 on the fine table).
	last, _ := s.LastDecision()
	for cpu, a := range last.Assignments {
		if a.Actual < units.MHz(650) || a.Actual > units.MHz(800) {
			t.Errorf("cpu %d at %v after cap", cpu, a.Actual)
		}
	}
}

func TestInfeasibleBudgetFloorsAtMinimum(t *testing.T) {
	m := quietMachine(t)
	s, err := New(noOverheadConfig(), m, units.Watts(20)) // < 4×9W minimum
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(0.3); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	if d.BudgetMet {
		t.Error("20W for 4 CPUs reported met")
	}
	for cpu, a := range d.Assignments {
		if a.Actual != units.MHz(250) {
			t.Errorf("cpu %d at %v, want floor", cpu, a.Actual)
		}
	}
}

func TestVoltageAssignmentsMonotoneWithFrequency(t *testing.T) {
	m := quietMachine(t)
	mix, _ := workload.NewMix(memProgram("mem", 1e12))
	m.SetMix(0, mix)
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(0.3); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	for _, a := range d.Assignments {
		wantV, err := s.cfg.Table.MinVoltage(a.Actual)
		if err != nil {
			t.Fatal(err)
		}
		if a.Voltage != wantV {
			t.Errorf("cpu %d voltage %v, want %v", a.CPU, a.Voltage, wantV)
		}
	}
}

func TestOverheadChargedToDaemonCPU(t *testing.T) {
	run := func(oh Overhead) uint64 {
		m := quietMachine(t)
		mix, _ := workload.NewMix(cpuProgram("cpu", 1e12))
		m.SetMix(0, mix)
		cfg := noOverheadConfig()
		cfg.Overhead = oh
		s, err := New(cfg, m, units.Watts(560))
		if err != nil {
			t.Fatal(err)
		}
		drv := NewDriver(m, s)
		if err := drv.Run(1.0); err != nil {
			t.Fatal(err)
		}
		sample, _ := m.ReadCounters(0)
		return sample.Instructions
	}
	clean := run(Overhead{})
	loaded := run(Overhead{CollectPerCPU: 60e-6, SchedulePass: 400e-6, DaemonCPU: 0})
	degradation := 1 - float64(loaded)/float64(clean)
	// Figure 4: the prototype's overhead is under 3%.
	if degradation <= 0 || degradation > 0.03 {
		t.Errorf("daemon overhead = %.2f%%, want (0, 3%%]", degradation*100)
	}
}

func TestDriverTelemetry(t *testing.T) {
	m := quietMachine(t)
	mix, _ := workload.NewMix(memProgram("mem", 1e12))
	m.SetMix(0, mix)
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	drv.Recorder = telemetry.NewRecorder()
	drv.TraceCPU = 0
	if err := drv.Run(0.3); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"system-power-w", "ipc", "freq-mhz", "desired-mhz"} {
		if drv.Recorder.Series(name).Len() == 0 {
			t.Errorf("series %q empty", name)
		}
	}
	// Power series should track under 746 W once the scheduler throttles.
	pw := drv.Recorder.Series("system-power-w").Values()
	if pw[len(pw)-1] >= 746 {
		t.Errorf("final system power %v, want < 746 (CPU 0 saturated)", pw[len(pw)-1])
	}
}

func TestRunScenario(t *testing.T) {
	m := quietMachine(t)
	mix, _ := workload.NewMix(cpuProgram("quick", 5e8))
	m.SetMix(0, mix)
	drv, err := RunScenario(m, noOverheadConfig(), units.Watts(560), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !drv.M.AllJobsDone() {
		t.Error("scenario did not complete")
	}
}

func TestPredictedVersusObservedIPCClose(t *testing.T) {
	// Table 2's premise: on steady phases the predictor's IPC matches the
	// observed IPC closely. Compare prediction for the *current* frequency
	// against the next window's observation.
	m := quietMachine(t)
	mix, _ := workload.NewMix(memProgram("mem", 1e12))
	m.SetMix(3, mix)
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(1.0); err != nil {
		t.Fatal(err)
	}
	decisions := s.Decisions()
	if len(decisions) < 4 {
		t.Fatalf("only %d decisions", len(decisions))
	}
	// Skip the first two (cold start / frequency still moving).
	var devs []float64
	for _, d := range decisions[2:] {
		a := d.Assignments[3]
		if a.ObservedIPC == 0 {
			continue
		}
		devs = append(devs, math.Abs(a.PredictedIPC-a.ObservedIPC))
	}
	if len(devs) == 0 {
		t.Fatal("no comparable windows")
	}
	var sum float64
	for _, v := range devs {
		sum += v
	}
	if mean := sum / float64(len(devs)); mean > 0.02 {
		t.Errorf("mean |predicted-observed| IPC = %v, want ≤ 0.02 on quiet machine", mean)
	}
}
