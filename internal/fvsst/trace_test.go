package fvsst

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/units"
)

// TestPredictionErrorOnePeriodLater: once two passes have observed a busy
// processor, every further decision scores the previous pass's IPC
// prediction against the elapsed window, and the noise-free machine keeps
// that error small.
func TestPredictionErrorOnePeriodLater(t *testing.T) {
	drv, s := busyDriver(t)
	var buf obs.Buffer
	s.SetSink(&buf)
	if err := drv.Run(0.55); err != nil {
		t.Fatal(err)
	}
	decs := s.Decisions()
	if len(decs) < 4 {
		t.Fatalf("only %d decisions", len(decs))
	}
	// The startup pass has no observation and the first timer pass no
	// banked prediction; from the second timer pass on the error is live.
	for i, d := range decs {
		for _, a := range d.Assignments {
			if i < 2 && a.PredictionValid {
				t.Errorf("decision %d cpu %d: prediction error before any banked prediction", i, a.CPU)
			}
			if i >= 2 && !a.PredictionValid {
				t.Errorf("decision %d cpu %d: no prediction error on a busy CPU", i, a.CPU)
			}
			if a.PredictionValid {
				if err := a.PredictionError; err > 0.2 || err < -0.2 {
					t.Errorf("decision %d cpu %d: prediction error %v implausibly large", i, a.CPU, err)
				}
			}
		}
	}
	// The trace events carry the same quantity.
	seen := false
	for _, e := range buf.Events() {
		for _, c := range e.CPUs {
			if c.IPCErrorValid {
				seen = true
			}
		}
	}
	if !seen {
		t.Error("no trace event carried a valid IPC error")
	}
}

// TestDemotionsExplainDesireActualGap: every processor left below its
// Step-1 desire is accounted for by demotion records, step by step.
func TestDemotionsExplainDesireActualGap(t *testing.T) {
	drv, s := busyDriver(t)
	if err := s.SetBudget(units.Watts(294)); err != nil {
		t.Fatal(err)
	}
	if err := drv.Run(0.25); err != nil {
		t.Fatal(err)
	}
	set := s.Config().Table.Frequencies()
	for i, d := range s.Decisions() {
		steps := make(map[int]int)
		for _, dm := range d.Demotions {
			if dm.From <= dm.To {
				t.Fatalf("decision %d: demotion does not lower: %+v", i, dm)
			}
			steps[dm.CPU]++
		}
		for _, a := range d.Assignments {
			gap := set.Index(a.Desired) - set.Index(a.Actual)
			if gap < 0 {
				t.Fatalf("decision %d cpu %d: actual above desired", i, a.CPU)
			}
			if steps[a.CPU] != gap {
				t.Errorf("decision %d cpu %d: %d demotions for a %d-step gap", i, a.CPU, steps[a.CPU], gap)
			}
		}
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{
		At: 1.5, Trigger: "budget-change", Budget: units.Watts(294),
		TablePower: units.Watts(280), BudgetMet: true,
		Assignments: []Assignment{
			{CPU: 0, Actual: units.MHz(650), Voltage: units.Volts(1.2)},
			{CPU: 1, Actual: units.MHz(250), Voltage: units.Volts(1.1), Idle: true},
		},
	}
	got := d.String()
	for _, want := range []string{"budget-change", "294W", "280W", "cpu0 650MHz/1.2V", "cpu1*250MHz/1.1V"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}
