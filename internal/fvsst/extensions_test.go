package fvsst

// Tests for the paper's optional/extension features: two-point calibration
// (§4.3 footnote), best/worst-case latency bounds ([17]), per-CPU voltage
// tables under process variation (§5), the distributed daemon redesign
// (§9), and the closed-form f_ideal mode (§5/§9).

import (
	"testing"

	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestConfigValidatesLatencyBounds(t *testing.T) {
	cfg := noOverheadConfig()
	cfg.LatencyBoundHi = 1.3
	cfg.LatencyBoundLo = 0.9
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
	cfg.LatencyBoundLo = 0
	if cfg.Validate() == nil {
		t.Error("zero lo bound accepted")
	}
	cfg.LatencyBoundLo = 1.5
	if cfg.Validate() == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestVoltageTablesLengthChecked(t *testing.T) {
	m := quietMachine(t) // 4 CPUs
	cfg := noOverheadConfig()
	cfg.VoltageTables = []*power.Table{power.PaperTable1()} // wrong length
	if _, err := New(cfg, m, units.Watts(560)); err == nil {
		t.Error("mismatched voltage table count accepted")
	}
}

func TestProcessVariationVoltages(t *testing.T) {
	m := quietMachine(t)
	mix, _ := workload.NewMix(memProgram("mem", 1e12))
	m.SetMix(0, mix)

	scales := []float64{1.10, 1.0, 0.95, 1.0}
	tables, err := power.WithVoltageVariation(power.PaperTable1(), scales)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noOverheadConfig()
	cfg.VoltageTables = tables
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(0.3); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	// CPUs 1 and 3 share scale 1.0 and (being hot-idle twins) frequency —
	// equal voltages; CPU 1's 1.0-scale voltage is below a 1.10-scale
	// voltage at the same frequency.
	a1, a3 := d.Assignments[1], d.Assignments[3]
	if a1.Actual == a3.Actual && a1.Voltage != a3.Voltage {
		t.Errorf("same scale+frequency, different voltage: %v vs %v", a1.Voltage, a3.Voltage)
	}
	base, err := power.PaperTable1().MinVoltage(d.Assignments[0].Actual)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Assignments[0].Voltage; got <= base {
		t.Errorf("weak-silicon CPU0 voltage %v not above nominal %v", got, base)
	}
}

func TestWithVoltageVariationValidation(t *testing.T) {
	if _, err := power.WithVoltageVariation(power.PaperTable1(), []float64{0.5}); err == nil {
		t.Error("extreme scale accepted")
	}
	tables, err := power.WithVoltageVariation(power.PaperTable1(), []float64{1.1})
	if err != nil {
		t.Fatal(err)
	}
	// Power scales as V²: 140 W × 1.21 at 1 GHz.
	p, err := tables[0].PowerAt(units.GHz(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.W(); got < 169.3 || got > 169.5 {
		t.Errorf("scaled power = %v, want 169.4W", got)
	}
}

func TestTwoPointCalibrationConverges(t *testing.T) {
	// With two-point calibration the scheduler still finds the saturation
	// frequency of the memory-bound workload; the mode exercises the
	// CalibrateTwoPoint path whenever consecutive windows ran at different
	// frequencies (which happens during the initial descent).
	m := quietMachine(t)
	mix, _ := workload.NewMix(memProgram("mem", 1e12))
	m.SetMix(3, mix)
	cfg := noOverheadConfig()
	cfg.UseTwoPointCalibration = true
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(1.0); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	got := d.Assignments[3].Actual
	if got > units.MHz(700) || got < units.MHz(600) {
		t.Errorf("two-point mode scheduled memory-bound CPU at %v, want ≈650MHz", got)
	}
}

func TestLatencyBoundsAreConservative(t *testing.T) {
	// Worst-case bounds treat the workload as less memory-bound than
	// nominal, so the chosen frequency can only be the same or higher.
	run := func(bounds bool) units.Frequency {
		m := quietMachine(t)
		mix, _ := workload.NewMix(memProgram("mem", 1e12))
		m.SetMix(3, mix)
		cfg := noOverheadConfig()
		if bounds {
			cfg.LatencyBoundLo = 0.85
			cfg.LatencyBoundHi = 1.3
		}
		s, err := New(cfg, m, units.Watts(560))
		if err != nil {
			t.Fatal(err)
		}
		drv := NewDriver(m, s)
		if err := drv.Run(1.0); err != nil {
			t.Fatal(err)
		}
		d, _ := s.LastDecision()
		return d.Assignments[3].Actual
	}
	nominal := run(false)
	conservative := run(true)
	if conservative < nominal {
		t.Errorf("bounded mode chose %v below nominal %v", conservative, nominal)
	}
	if conservative == nominal {
		t.Logf("bounds made no difference at this workload (nominal %v)", nominal)
	}
	// For the mcf-calibrated workload a 15% latency discount must lift the
	// choice off 650 MHz.
	if nominal <= units.MHz(700) && conservative <= nominal {
		t.Errorf("conservative mode %v did not exceed nominal %v", conservative, nominal)
	}
}

// TestDistributedOverheadSpreadsCost checks the §9 redesign: the same total
// daemon cost lands as a small per-CPU tax rather than a concentrated hit
// on CPU 0.
func TestDistributedOverheadSpreadsCost(t *testing.T) {
	run := func(distributed bool) (cpu0, cpu3 uint64) {
		m := quietMachine(t)
		for cpu := 0; cpu < 4; cpu++ {
			mix, _ := workload.NewMix(cpuProgram("cpu", 1e12))
			m.SetMix(cpu, mix)
		}
		cfg := noOverheadConfig()
		cfg.Overhead = Overhead{CollectPerCPU: 200e-6, SchedulePass: 2e-3, Distributed: distributed}
		s, err := New(cfg, m, units.Watts(560))
		if err != nil {
			t.Fatal(err)
		}
		drv := NewDriver(m, s)
		if err := drv.Run(1.0); err != nil {
			t.Fatal(err)
		}
		s0, _ := m.ReadCounters(0)
		s3, _ := m.ReadCounters(3)
		return s0.Instructions, s3.Instructions
	}
	c0, c3 := run(false)
	d0, d3 := run(true)
	// Concentrated: CPU 0 clearly slower than CPU 3.
	if float64(c0) > 0.97*float64(c3) {
		t.Errorf("concentrated mode: cpu0 %d not visibly slower than cpu3 %d", c0, c3)
	}
	// Distributed: both within a hair of each other.
	ratio := float64(d0) / float64(d3)
	if ratio < 0.995 || ratio > 1.005 {
		t.Errorf("distributed mode: cpu0/cpu3 = %v, want ≈1", ratio)
	}
	// And CPU 0 recovers most of what it lost.
	if d0 <= c0 {
		t.Errorf("distribution did not help cpu0: %d <= %d", d0, c0)
	}
}

func TestIdealFrequencyModeEndToEnd(t *testing.T) {
	m := quietMachine(t)
	mix, _ := workload.NewMix(memProgram("mem", 1e12))
	m.SetMix(3, mix)
	cfg := noOverheadConfig()
	cfg.UseIdealFrequency = true
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(1.0); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	got := d.Assignments[3].Actual
	if got > units.MHz(700) || got < units.MHz(600) {
		t.Errorf("f_ideal mode scheduled memory-bound CPU at %v, want ≈650MHz", got)
	}
}
