package fvsst

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestConfigRejectsNegativeDebounce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DebouncePasses = -1
	if cfg.Validate() == nil {
		t.Error("negative debounce accepted")
	}
}

// steadyStateChanges counts how many decisions after skipSeconds changed
// CPU 0's actual frequency.
func steadyStateChanges(decisions []Decision, skipSeconds float64) int {
	changes := 0
	started := false
	var prev units.Frequency
	for _, d := range decisions {
		if d.At < skipSeconds {
			continue
		}
		f := d.Assignments[0].Actual
		if started && f != prev {
			changes++
		}
		prev = f
		started = true
	}
	return changes
}

// TestDebounceDampsSteadyStateFlutter runs a noisy borderline workload
// (mcf sits right at the 650-vs-700 MHz decision boundary under jitter)
// with and without the debounce and checks the filtered run flutters less
// in steady state while converging to the same band.
func TestDebounceDampsSteadyStateFlutter(t *testing.T) {
	run := func(debounce int) ([]Decision, units.Frequency) {
		mcfg := machine.P630Config() // full jitter: decisions flutter
		mcfg.Seed = 5
		m, err := machine.New(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		mix, err := workload.NewMix(workload.Mcf(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(0, mix); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Overhead = Overhead{}
		cfg.DebouncePasses = debounce
		s, err := New(cfg, m, units.Watts(560))
		if err != nil {
			t.Fatal(err)
		}
		drv := NewDriver(m, s)
		if err := drv.Run(6.0); err != nil {
			t.Fatal(err)
		}
		d, _ := s.LastDecision()
		return s.Decisions(), d.Assignments[0].Actual
	}
	free, freeFinal := run(0)
	damped, dampedFinal := run(3)
	fc, dc := steadyStateChanges(free, 1.0), steadyStateChanges(damped, 1.0)
	if dc > fc {
		t.Errorf("debounce increased steady-state changes: %d > %d", dc, fc)
	}
	for name, f := range map[string]units.Frequency{"free": freeFinal, "damped": dampedFinal} {
		if f < units.MHz(600) || f > units.MHz(800) {
			t.Errorf("%s run ended at %v, outside mcf's band", name, f)
		}
	}
}

// TestDebounceNeverBlocksBudgetEnforcement: a budget drop must be honoured
// within one pass even with a long debounce, because Step 2's downward
// moves are applied after the filter.
func TestDebounceNeverBlocksBudgetEnforcement(t *testing.T) {
	m := quietMachine(t)
	for cpu := 0; cpu < 4; cpu++ {
		mix, _ := workload.NewMix(cpuProgram("cpu", 1e12))
		m.SetMix(cpu, mix)
	}
	cfg := noOverheadConfig()
	cfg.DebouncePasses = 5
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	budgets, err := power.NewBudgetSchedule(units.Watts(560),
		power.BudgetEvent{At: 0.3, Budget: units.Watts(100)})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	drv.Budgets = budgets
	if err := drv.Run(0.32); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	if d.TablePower > units.Watts(100) {
		t.Errorf("debounce blocked the emergency power drop: %v", d.TablePower)
	}
}

// TestDebounceEventuallyFollowsPhaseChange: a sustained phase change must
// still be tracked, just k passes later.
func TestDebounceEventuallyFollowsPhaseChange(t *testing.T) {
	m := quietMachine(t)
	// One long CPU-bound phase then one long memory-bound phase.
	prog := workload.Program{Name: "shift", Phases: []workload.Phase{
		{Name: "cpu", Alpha: 1.4, Instructions: 1e9},
		memProgram("mem", 1).Phases[0],
	}}
	prog.Phases[1].Instructions = 1e12
	mix, _ := workload.NewMix(prog)
	m.SetMix(0, mix)
	cfg := noOverheadConfig()
	cfg.DebouncePasses = 2
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(3.0); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	f := d.Assignments[0].Actual
	if f < units.MHz(600) || f > units.MHz(700) {
		t.Errorf("debounced scheduler never followed the phase change: at %v", f)
	}
}
