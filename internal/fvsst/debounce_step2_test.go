package fvsst

import (
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

// TestDebounceStreakSurvivesStep2Demotion pins the interaction between the
// debounce filter and Step 2's forced demotions: when a tight budget holds
// CPUs far below their ε-constrained frequency pass after pass, the filter
// must keep its bookkeeping on the *desire* — lastDesired records Step 1's
// choice, never the demoted actual, and the streak matures monotonically —
// so that the moment the budget recovers, a matured desire actuates in one
// pass. If a demotion leaked into the filter, lastDesired would equal the
// forced low frequency, the streak would churn, and recovery would stay
// pinned at the demoted setting for k more passes.
func TestDebounceStreakSurvivesStep2Demotion(t *testing.T) {
	m := quietMachine(t)
	for cpu := 0; cpu < 4; cpu++ {
		mix, err := workload.NewMix(cpuProgram("cpu", 1e15))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			t.Fatal(err)
		}
	}
	cfg := noOverheadConfig()
	cfg.DebouncePasses = 3
	s, err := New(cfg, m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumCPUs()

	pass := func() Decision {
		t.Helper()
		for {
			m.Step()
			due, err := s.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if due {
				d, err := s.Schedule("timer")
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
		}
	}
	top := s.set[len(s.set)-1]

	// Warm pass at a generous budget: pure-CPU work desires the top
	// frequency, the machine already runs there, so the filter primes on
	// top with no holding and no demotions.
	warm := pass()
	for cpu, a := range warm.Assignments {
		if a.Desired != top || a.Actual != top {
			t.Fatalf("warm pass cpu %d: desired %v actual %v, want %v on both", cpu, a.Desired, a.Actual, top)
		}
	}

	// Drop the budget so Step 2 must demote every CPU below its desire.
	if err := s.SetBudget(units.Watts(100)); err != nil {
		t.Fatal(err)
	}
	if d := pass(); len(d.Demotions) == 0 {
		t.Fatal("100 W budget produced no Step-2 demotions")
	}

	// Held passes: the CPUs run demoted while desiring far higher. The
	// filter must track the desire and mature the streak monotonically.
	prevStreak := make([]int, n)
	prevDesire := make([]units.Frequency, n)
	copy(prevStreak, s.desireStreak)
	copy(prevDesire, s.lastDesired)
	for i := 0; i < 3; i++ {
		d := pass()
		for cpu := 0; cpu < n; cpu++ {
			actual := d.Assignments[cpu].Actual
			if actual >= top {
				t.Fatalf("held pass %d cpu %d: actual %v not demoted under 100 W", i, cpu, actual)
			}
			// The forced actual must never leak into the filter state.
			if s.lastDesired[cpu] <= actual {
				t.Fatalf("held pass %d cpu %d: lastDesired %v ≤ demoted actual %v (Step-2 demotion corrupted the debounce filter)",
					i, cpu, s.lastDesired[cpu], actual)
			}
			// Streak bookkeeping: +1 on a stable desire, reset to 1 on a
			// genuine Step-1 change — never reset by the demotion itself.
			if s.lastDesired[cpu] == prevDesire[cpu] {
				if s.desireStreak[cpu] != prevStreak[cpu]+1 {
					t.Fatalf("held pass %d cpu %d: stable desire %v but streak %d → %d",
						i, cpu, prevDesire[cpu], prevStreak[cpu], s.desireStreak[cpu])
				}
			} else if s.desireStreak[cpu] != 1 {
				t.Fatalf("held pass %d cpu %d: desire changed %v → %v but streak %d not reset",
					i, cpu, prevDesire[cpu], s.lastDesired[cpu], s.desireStreak[cpu])
			}
		}
		copy(prevStreak, s.desireStreak)
		copy(prevDesire, s.lastDesired)
	}
	for cpu := 0; cpu < n; cpu++ {
		if s.desireStreak[cpu] < cfg.DebouncePasses {
			t.Errorf("cpu %d: desire streak %d never matured past k=%d under sustained demotion",
				cpu, s.desireStreak[cpu], cfg.DebouncePasses)
		}
	}

	// Budget recovery: every streak is mature, so the very next pass must
	// actuate each CPU's standing desire — no residual held-down state.
	matured := make([]units.Frequency, n)
	copy(matured, s.lastDesired)
	if err := s.SetBudget(units.Watts(560)); err != nil {
		t.Fatal(err)
	}
	rec := pass()
	for cpu, a := range rec.Assignments {
		if a.Actual != matured[cpu] {
			t.Errorf("cpu %d: recovered to %v, want the matured desire %v in one pass", cpu, a.Actual, matured[cpu])
		}
	}
}
