package fvsst

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

func sec5Set() units.FrequencySet { return power.Section5Table().Frequencies() }

func dec(alpha, stallNs float64) perfmodel.Decomposition {
	return perfmodel.Decomposition{InvAlpha: 1 / alpha, StallSecPerInstr: stallNs * 1e-9}
}

func TestEpsilonFrequencyCPUBoundPinsMax(t *testing.T) {
	d := dec(1.4, 0.05)
	if got := EpsilonFrequency(d, sec5Set(), 0.05); got != units.GHz(1) {
		t.Errorf("CPU-bound ε-frequency = %v, want 1GHz", got)
	}
}

func TestEpsilonFrequencyMemoryBoundSaturates(t *testing.T) {
	// mcf-calibrated: α·S ≈ 9.3/GHz → 650 MHz would lose <5%, so on the
	// §5 coarse set the lowest admissible setting is 700 MHz.
	d := dec(1.1, 8.44)
	got := EpsilonFrequency(d, sec5Set(), 0.05)
	if got != units.MHz(700) {
		t.Errorf("memory-bound ε-frequency = %v, want 700MHz", got)
	}
	// On the fine-grained Table 1 set, 650 MHz is available and chosen.
	fine := power.PaperTable1().Frequencies()
	if got := EpsilonFrequency(d, fine, 0.05); got != units.MHz(650) {
		t.Errorf("fine-set ε-frequency = %v, want 650MHz", got)
	}
}

func TestEpsilonFrequencyPicksLowestAdmissible(t *testing.T) {
	// Extremely memory-bound work admits even the lowest setting.
	d := dec(1.0, 100)
	if got := EpsilonFrequency(d, sec5Set(), 0.05); got != units.MHz(600) {
		t.Errorf("ε-frequency = %v, want set minimum", got)
	}
}

func TestEpsilonFrequencyAgreesWithIdealExtension(t *testing.T) {
	set := power.PaperTable1().Frequencies()
	err := quick.Check(func(aRaw, sRaw uint16) bool {
		alpha := 0.5 + float64(aRaw%30)/10
		stall := float64(sRaw%1500) / 100 // 0 .. 15 ns
		d := dec(alpha, stall)
		scan := EpsilonFrequency(d, set, 0.05)
		ideal, err := IdealEpsilonFrequency(d, set, 0.05)
		if err != nil {
			return false
		}
		// The paper's closed form short-circuits to f_max whenever the
		// predicted IPC at f_max exceeds 1 — deliberately coarser than the
		// scan for high-IPC work. Outside that regime the two agree to
		// within one 50 MHz grid step (the scan uses strict inequality at
		// grid points, the closed form targets (1-ε)·Perf exactly).
		if d.IPCAt(set.Max()) > 1 {
			return ideal == set.Max() && ideal >= scan
		}
		return math.Abs(scan.MHz()-ideal.MHz()) <= 50.01
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestLossAt(t *testing.T) {
	d := dec(1.4, 0)
	if got := LossAt(d, sec5Set(), units.MHz(600)); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("LossAt = %v, want 0.4 (pure CPU at 60%% clock)", got)
	}
}

func TestFitToBudgetNoActionWhenUnderBudget(t *testing.T) {
	tab := power.Section5Table()
	d1, d2 := dec(1.4, 0.1), dec(1.1, 8.44)
	assigned := []units.Frequency{units.GHz(1), units.MHz(700)}
	out, met, err := FitToBudget([]*perfmodel.Decomposition{&d1, &d2}, assigned, tab, units.Watts(300))
	if err != nil {
		t.Fatal(err)
	}
	if !met {
		t.Error("budget not met")
	}
	if out[0] != units.GHz(1) || out[1] != units.MHz(700) {
		t.Errorf("assignment changed needlessly: %v", out)
	}
}

func TestFitToBudgetLowersCheapestFirst(t *testing.T) {
	tab := power.Section5Table()
	cpuBound := dec(1.4, 0.1)  // loses a lot per step
	memBound := dec(1.1, 8.44) // loses little per step
	assigned := []units.Frequency{units.GHz(1), units.GHz(1)}
	// 140+140 = 280 W; budget 249 W forces one step down (→249 W max).
	out, met, err := FitToBudget(
		[]*perfmodel.Decomposition{&cpuBound, &memBound},
		assigned, tab, units.Watts(249))
	if err != nil {
		t.Fatal(err)
	}
	if !met {
		t.Error("budget not met")
	}
	// The memory-bound CPU must absorb the reduction.
	if out[0] != units.GHz(1) || out[1] != units.MHz(900) {
		t.Errorf("fit = %v, want [1GHz 900MHz]", out)
	}
}

func TestFitToBudgetIdleLoweredFirst(t *testing.T) {
	tab := power.Section5Table()
	busy := dec(1.4, 0.1)
	assigned := []units.Frequency{units.GHz(1), units.GHz(1)}
	// Nil decomposition = idle: zero loss at any frequency.
	out, met, err := FitToBudget(
		[]*perfmodel.Decomposition{&busy, nil},
		assigned, tab, units.Watts(200))
	if err != nil {
		t.Fatal(err)
	}
	if !met {
		t.Error("budget not met")
	}
	if out[0] != units.GHz(1) {
		t.Errorf("busy CPU lowered before idle one: %v", out)
	}
	if out[1] >= units.GHz(1) {
		t.Errorf("idle CPU not lowered: %v", out)
	}
}

func TestFitToBudgetInfeasible(t *testing.T) {
	tab := power.Section5Table()
	d := dec(1.4, 0.1)
	out, met, err := FitToBudget([]*perfmodel.Decomposition{&d}, []units.Frequency{units.GHz(1)}, tab, units.Watts(10))
	if err != nil {
		t.Fatal(err)
	}
	if met {
		t.Error("10W budget reported met")
	}
	if out[0] != tab.MinFrequency() {
		t.Errorf("infeasible fit should floor at minimum, got %v", out[0])
	}
}

func TestFitToBudgetLengthMismatch(t *testing.T) {
	tab := power.Section5Table()
	if _, _, err := FitToBudget(nil, []units.Frequency{units.GHz(1)}, tab, units.Watts(100)); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestWorkedExampleSection5 reproduces the paper's §5 sample calculation:
// four CPUs, frequency set {0.6..1.0 GHz}, 294 W budget. At T0 the
// ε-constrained vector is [1.0, 0.7, 0.8, 0.8] GHz (348 W — over budget)
// and Step 2 lowers it to [0.6, 0.6, 0.7, 0.7] GHz with power vector
// [48, 48, 66, 66] = 228 W... the paper's published actual vector
// [0.6,0.6,0.7,0.7] has stated powers [109,48,66,66], an internal
// inconsistency in the paper (109 W is the 0.9 GHz entry of its own Table
// 1). We assert the algorithmic invariants the text states: the actual
// vector is under budget, dominated by the desired vector, and CPU 0 —
// the least-saturated processor — takes the largest loss.
func TestWorkedExampleSection5(t *testing.T) {
	tab := power.Section5Table()
	set := tab.Frequencies()

	// Decompositions chosen so Step 1 yields the paper's ε-constrained
	// vector [1.0GHz, 0.7GHz, 0.8GHz, 0.8GHz].
	cpu0 := dec(1.4, 0.1)  // CPU-bound → 1.0 GHz
	cpu1 := dec(1.1, 8.44) // strongly memory-bound → 0.7 GHz
	cpu2 := dec(1.2, 5.2)  // moderately memory-bound → 0.8 GHz
	cpu3 := dec(1.2, 5.2)  // same → 0.8 GHz
	decs := []*perfmodel.Decomposition{&cpu0, &cpu1, &cpu2, &cpu3}

	desired := make([]units.Frequency, 4)
	for i, d := range decs {
		desired[i] = EpsilonFrequency(*d, set, 0.05)
	}
	want := []units.Frequency{units.GHz(1), units.MHz(700), units.MHz(800), units.MHz(800)}
	for i := range want {
		if desired[i] != want[i] {
			t.Fatalf("ε-constrained[%d] = %v, want %v", i, desired[i], want[i])
		}
	}

	// T0: 294 W processor budget (the surviving 480 W supply minus the
	// 186 W non-CPU base).
	actual, met, err := FitToBudget(decs, desired, tab, units.Watts(294))
	if err != nil {
		t.Fatal(err)
	}
	if !met {
		t.Fatal("294W budget not met")
	}
	total, err := TotalTablePower(actual, tab)
	if err != nil {
		t.Fatal(err)
	}
	if total > units.Watts(294) {
		t.Errorf("total %v exceeds budget", total)
	}
	for i := range actual {
		if actual[i] > desired[i] {
			t.Errorf("actual[%d]=%v above desired %v", i, actual[i], desired[i])
		}
	}
	// Step 2 protects the CPU-bound processor (its steps cost the most)
	// and sheds power from the saturated ones; losses stay bounded.
	if actual[0] != units.GHz(1) {
		t.Errorf("CPU-bound processor lowered to %v before the cheap ones", actual[0])
	}
	for i, d := range decs {
		loss := d.PerfLoss(set.Max(), actual[i])
		if loss < 0 || loss > 0.45 {
			t.Errorf("loss[%d] = %v out of expected range", i, loss)
		}
		if i > 0 && loss == 0 {
			t.Errorf("memory-bound processor %d shed nothing", i)
		}
	}

	// T1: processor 0's workload turns memory-intensive; now everything
	// fits at its ε-constrained frequency with power ≤ 282 W, and every
	// aggregate loss is within ε — the paper's [ε,ε,ε,ε] vector.
	memBound0 := dec(1.0, 12)
	decs[0] = &memBound0
	for i, d := range decs {
		desired[i] = EpsilonFrequency(*d, set, 0.05)
	}
	if desired[0] != units.MHz(600) {
		t.Fatalf("T1 ε-constrained[0] = %v, want 600MHz", desired[0])
	}
	actual, met, err = FitToBudget(decs, desired, tab, units.Watts(294))
	if err != nil {
		t.Fatal(err)
	}
	if !met {
		t.Fatal("T1 budget not met")
	}
	total, _ = TotalTablePower(actual, tab)
	// Paper: [48, 66, 84, 84] W = 282 W.
	if math.Abs(total.W()-282) > 1e-9 {
		t.Errorf("T1 total = %v, want 282W", total)
	}
	for i, d := range decs {
		if actual[i] != desired[i] {
			t.Errorf("T1 actual[%d] = %v, want ε-constrained %v", i, actual[i], desired[i])
		}
		if loss := d.PerfLoss(set.Max(), actual[i]); loss >= 0.05 {
			t.Errorf("T1 loss[%d] = %v, want < ε", i, loss)
		}
	}
}

func TestVoltages(t *testing.T) {
	tab := power.Section5Table()
	vs, err := Voltages([]units.Frequency{units.MHz(600), units.GHz(1)}, tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0] >= vs[1] {
		t.Errorf("voltages = %v", vs)
	}
	if _, err := Voltages([]units.Frequency{units.MHz(123)}, tab); err == nil {
		t.Error("off-grid voltage lookup accepted")
	}
}

func TestFitToBudgetNeverRaisesFrequencies(t *testing.T) {
	tab := power.PaperTable1()
	set := tab.Frequencies()
	err := quick.Check(func(raw []uint8, budgetRaw uint16) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		assigned := make([]units.Frequency, len(raw))
		decs := make([]*perfmodel.Decomposition, len(raw))
		for i, r := range raw {
			assigned[i] = set[int(r)%len(set)]
			d := dec(1.0+float64(r%10)/10, float64(r%16))
			decs[i] = &d
		}
		budget := units.Watts(float64(budgetRaw%600) + 9)
		out, met, err := FitToBudget(decs, assigned, tab, budget)
		if err != nil {
			return false
		}
		for i := range out {
			if out[i] > assigned[i] {
				return false
			}
		}
		if met {
			total, err := TotalTablePower(out, tab)
			if err != nil || total > budget {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMinEpsilonFor(t *testing.T) {
	// §5 coarse set: the largest relative step is 100 MHz at 700 MHz.
	got := MinEpsilonFor(sec5Set())
	if math.Abs(got-100.0/700.0) > 1e-9 {
		t.Errorf("MinEpsilonFor = %v, want %v", got, 100.0/700.0)
	}
	// Table 1's 50 MHz grid: largest step is 50/300.
	fine := MinEpsilonFor(power.PaperTable1().Frequencies())
	if math.Abs(fine-50.0/300.0) > 1e-9 {
		t.Errorf("fine MinEpsilonFor = %v", fine)
	}
}
