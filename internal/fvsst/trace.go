package fvsst

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Event converts the decision into its structured trace event: the
// trigger, per-CPU Step-1 desire / Step-2 actual / Step-3 voltage, the
// Step-2 demotion list with per-step predicted losses, budget headroom
// and the one-period-late prediction error.
func (d Decision) Event() obs.Event {
	ev := obs.Event{
		Type:         obs.EventSchedule,
		At:           d.At,
		Trigger:      d.Trigger,
		BudgetW:      d.Budget.W(),
		TablePowerW:  d.TablePower.W(),
		HeadroomW:    d.Budget.W() - d.TablePower.W(),
		BudgetMissed: !d.BudgetMet,
		CPUs:         make([]obs.CPUTrace, len(d.Assignments)),
	}
	for i, a := range d.Assignments {
		ev.CPUs[i] = obs.CPUTrace{
			CPU:           a.CPU,
			Idle:          a.Idle,
			DesiredMHz:    a.Desired.MHz(),
			ActualMHz:     a.Actual.MHz(),
			VoltageV:      a.Voltage.V(),
			PredictedLoss: a.PredictedLoss,
			PredictedIPC:  a.PredictedIPC,
			ObservedIPC:   a.ObservedIPC,
			IPCError:      a.PredictionError,
			IPCErrorValid: a.PredictionValid,
		}
	}
	for _, dm := range d.Demotions {
		ev.Demotions = append(ev.Demotions, obs.DemotionTrace{
			CPU:           dm.CPU,
			FromMHz:       dm.From.MHz(),
			ToMHz:         dm.To.MHz(),
			PredictedLoss: dm.PredictedLoss,
		})
	}
	return ev
}

// String renders the decision on one line — the canonical form shared by
// the fvsst-sim log and anything else printing decisions:
//
//	t=  0.20s timer         budget 560W table 311W met=true   cpu0 1GHz/1.5V cpu1*250MHz/1.2V ...
//
// An asterisk marks a processor treated as idle.
func (d Decision) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%6.2fs %-13s budget %-5v table %-5v met=%-5v", d.At, d.Trigger, d.Budget, d.TablePower, d.BudgetMet)
	for _, a := range d.Assignments {
		mark := " "
		if a.Idle {
			mark = "*"
		}
		fmt.Fprintf(&sb, " cpu%d%s%v/%v", a.CPU, mark, a.Actual, a.Voltage)
	}
	return sb.String()
}
