package fvsst_test

import (
	"fmt"

	"repro/internal/fvsst"
	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// ExampleEpsilonFrequency shows Step 1 of the scheduling algorithm on the
// paper's two limiting cases: CPU-bound work keeps the maximum frequency,
// memory-bound work saturates far below it.
func ExampleEpsilonFrequency() {
	set := power.PaperTable1().Frequencies()

	cpuBound := perfmodel.Decomposition{InvAlpha: 1 / 1.4} // no memory component
	memBound := perfmodel.Decomposition{InvAlpha: 1 / 1.1, StallSecPerInstr: 9e-9}

	fmt.Println("cpu-bound:", fvsst.EpsilonFrequency(cpuBound, set, 0.05))
	fmt.Println("mem-bound:", fvsst.EpsilonFrequency(memBound, set, 0.05))
	// Output:
	// cpu-bound: 1GHz
	// mem-bound: 650MHz
}

// ExampleFitToBudget shows Step 2 on the §5 frequency set: under a 294 W
// budget the memory-bound processors absorb the reduction and the
// CPU-bound one keeps its clock.
func ExampleFitToBudget() {
	tab := power.Section5Table()
	set := tab.Frequencies()
	eps := 0.05
	cpuBound := &perfmodel.Decomposition{InvAlpha: 1 / 1.4, StallSecPerInstr: 0.1e-9}
	memBound := &perfmodel.Decomposition{InvAlpha: 1 / 1.1, StallSecPerInstr: 9e-9}
	decs := []*perfmodel.Decomposition{cpuBound, memBound, memBound, memBound}

	// Step 1 per processor, then the budget fit.
	desired := make([]units.Frequency, len(decs))
	for i, d := range decs {
		desired[i] = fvsst.EpsilonFrequency(*d, set, eps)
	}
	actual, met, err := fvsst.FitToBudget(decs, desired, tab, units.Watts(294))
	if err != nil {
		fmt.Println(err)
		return
	}
	total, _ := fvsst.TotalTablePower(actual, tab)
	fmt.Println("assignment:", actual[0], actual[1], actual[2], actual[3])
	fmt.Println("power:", total, "met:", met)
	// Output:
	// assignment: 1GHz 600MHz 600MHz 600MHz
	// power: 284W met: true
}
