// Package fvsst implements the paper's contribution: the frequency and
// voltage scheduler for SMP servers (and, through internal/cluster, server
// clusters). Given per-processor performance-counter observations, a table
// of operating points and a global processor power budget, it runs the
// two-pass algorithm of Figure 3:
//
//	Step 1 — per processor, predict IPC at every available frequency and
//	         pick the lowest whose predicted performance loss versus f_max
//	         is below ε (performance saturation);
//	Step 2 — while the aggregate power exceeds the budget, lower the
//	         processor whose next step down costs the least predicted
//	         performance;
//	Step 3 — assign each processor the minimum voltage for its frequency.
//
// Rescheduling is triggered by the periodic timer T = n·t, by changes to
// the global power limit, and by idle transitions (§5).
package fvsst

import (
	"fmt"
	"math"

	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// EpsilonFrequency performs Step 1 for one processor: the lowest frequency
// in set whose predicted loss versus the set's maximum is under epsilon.
// When even the second-highest setting loses too much, it returns the
// maximum — the upward adjustment the paper notes Step 1 may make.
func EpsilonFrequency(dec perfmodel.Decomposition, set units.FrequencySet, epsilon float64) units.Frequency {
	fMax := set.Max()
	for _, f := range set {
		if dec.PerfLoss(fMax, f) < epsilon {
			return f
		}
	}
	return fMax
}

// IdealEpsilonFrequency is the continuous-frequency extension of §5/§9: it
// computes f_ideal in closed form and snaps it to the lowest set member at
// or above it, avoiding the per-frequency scan. For small sets the two
// approaches agree (tested); for hardware with many settings this is the
// cheaper path.
func IdealEpsilonFrequency(dec perfmodel.Decomposition, set units.FrequencySet, epsilon float64) (units.Frequency, error) {
	ideal, err := dec.IdealFrequency(set.Max(), epsilon)
	if err != nil {
		return 0, err
	}
	if f, ok := set.CeilOf(ideal); ok {
		return f, nil
	}
	return set.Max(), nil
}

// LossAt evaluates a processor's predicted loss at frequency f versus the
// set maximum; a helper shared by the budget-fitting pass and diagnostics.
func LossAt(dec perfmodel.Decomposition, set units.FrequencySet, f units.Frequency) float64 {
	return dec.PerfLoss(set.Max(), f)
}

// Demotion records one Step-2 reduction: the budget fit lowered CPU from
// From to To, a step predicted to cost PredictedLoss performance versus
// f_max. The sequence of demotions is the scheduler's justification for
// every gap between a processor's ε-constrained desire and its actual
// setting.
type Demotion struct {
	CPU           int
	From, To      units.Frequency
	PredictedLoss float64
}

// FitToBudget performs Step 2 across all processors: given the ε-constrained
// assignment, it lowers frequencies — always the processor whose *next
// lower* setting has the smallest predicted loss versus f_max — until the
// aggregate table power fits the budget. It returns the adjusted
// assignment and whether the budget was met (false means every processor
// is already at the minimum setting and the budget is still exceeded; the
// caller must rely on the safety margin / external action).
//
// decs may contain a nil entry for an idle processor; idle processors are
// treated as having zero loss at any frequency, so they are lowered first.
func FitToBudget(decs []*perfmodel.Decomposition, assigned []units.Frequency, table *power.Table, budget units.Power) ([]units.Frequency, bool, error) {
	out, _, met, err := FitToBudgetTraced(decs, assigned, table, budget)
	return out, met, err
}

// FitToBudgetTraced is FitToBudget returning, in addition, the ordered
// list of single-step reductions it took — the Step-2 attribution the
// observability layer records per decision.
func FitToBudgetTraced(decs []*perfmodel.Decomposition, assigned []units.Frequency, table *power.Table, budget units.Power) ([]units.Frequency, []Demotion, bool, error) {
	if len(decs) != len(assigned) {
		return nil, nil, false, fmt.Errorf("fvsst: %d decompositions for %d assignments", len(decs), len(assigned))
	}
	set := table.Frequencies()
	out := make([]units.Frequency, len(assigned))
	copy(out, assigned)

	totalPower := func() (units.Power, error) {
		var sum units.Power
		for _, f := range out {
			p, err := table.PowerAt(f)
			if err != nil {
				return 0, err
			}
			sum += p
		}
		return sum, nil
	}

	var demotions []Demotion
	for {
		sum, err := totalPower()
		if err != nil {
			return nil, nil, false, err
		}
		if sum <= budget {
			return out, demotions, true, nil
		}
		// Pick the processor whose next-lower setting costs least. Ties —
		// common when several processors lack counter data (nil
		// decomposition, zero predicted loss) — break toward the one at
		// the highest frequency, so equal-loss reductions level the
		// assignment instead of driving one processor to the floor.
		best := -1
		bestLoss := math.Inf(1)
		var bestF units.Frequency
		for i, f := range out {
			less, ok := set.NextBelow(f)
			if !ok {
				continue // already at minimum
			}
			loss := 0.0
			if decs[i] != nil {
				loss = decs[i].PerfLoss(set.Max(), less)
			}
			if loss < bestLoss || (loss == bestLoss && best >= 0 && f > out[best]) {
				best, bestLoss, bestF = i, loss, less
			}
		}
		if best < 0 {
			return out, demotions, false, nil // floor reached, budget still exceeded
		}
		demotions = append(demotions, Demotion{CPU: best, From: out[best], To: bestF, PredictedLoss: bestLoss})
		out[best] = bestF
	}
}

// EpsilonIndexGrid is Step 1 over a pre-evaluated prediction grid: the
// index of the lowest set frequency whose predicted loss is under epsilon.
// The loss at the set maximum is zero, so the scan always terminates; the
// result is identical to EpsilonFrequency over the same decomposition.
func EpsilonIndexGrid(g *perfmodel.PredGrid, cpu int, epsilon float64) int {
	n := g.NumFreqs()
	for i := 0; i < n; i++ {
		if g.Loss(cpu, i) < epsilon {
			return i
		}
	}
	return n - 1
}

// FitToBudgetGrid is Step 2 in index space: actualIdx[i] indexes processor
// i's current setting in the table (ascending); the fit lowers indices —
// always the processor whose next step down has the smallest grid loss,
// ties toward the higher current index — until the aggregate table power
// fits the budget, mutating actualIdx in place. Invalid grid rows (idle or
// unobserved processors) count as zero loss, so they are lowered first.
// Demotions are appended to the caller's buffer (pass a len-0 slice to
// reuse its backing array) and returned with met, which is false when the
// floor is reached with the budget still exceeded. The decisions are
// identical to FitToBudgetTraced over the same inputs; only the data
// representation differs — no per-step frequency searches, no allocation
// beyond demotion growth.
func FitToBudgetGrid(g *perfmodel.PredGrid, actualIdx []int, table *power.Table, budget units.Power, demotions []Demotion) ([]Demotion, bool) {
	for {
		var sum units.Power
		for _, idx := range actualIdx {
			sum += table.PowerAtIndex(idx)
		}
		if sum <= budget {
			return demotions, true
		}
		best := -1
		bestLoss := math.Inf(1)
		for i, idx := range actualIdx {
			if idx == 0 {
				continue // already at minimum
			}
			loss := 0.0
			if g.Valid(i) {
				loss = g.Loss(i, idx-1)
			}
			if loss < bestLoss || (loss == bestLoss && best >= 0 && idx > actualIdx[best]) {
				best, bestLoss = i, loss
			}
		}
		if best < 0 {
			return demotions, false // floor reached, budget still exceeded
		}
		demotions = append(demotions, Demotion{
			CPU:           best,
			From:          table.FrequencyAtIndex(actualIdx[best]),
			To:            table.FrequencyAtIndex(actualIdx[best] - 1),
			PredictedLoss: bestLoss,
		})
		actualIdx[best]--
	}
}

// Voltages performs Step 3: the minimum table voltage for each assigned
// frequency.
func Voltages(assigned []units.Frequency, table *power.Table) ([]units.Voltage, error) {
	out := make([]units.Voltage, len(assigned))
	for i, f := range assigned {
		v, err := table.MinVoltage(f)
		if err != nil {
			return nil, fmt.Errorf("fvsst: voltage for cpu %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// TotalTablePower sums the table power of an assignment.
func TotalTablePower(assigned []units.Frequency, table *power.Table) (units.Power, error) {
	var sum units.Power
	for _, f := range assigned {
		p, err := table.PowerAt(f)
		if err != nil {
			return 0, err
		}
		sum += p
	}
	return sum, nil
}
