package fvsst

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/memhier"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestSchedulerOverMonteCarloMachine drives the full fvsst loop against
// the Monte-Carlo execution model: the scheduler must still find the
// memory-bound workload's saturation band even when every counter window
// carries miss-discreteness noise.
func TestSchedulerOverMonteCarloMachine(t *testing.T) {
	cfg := machine.P630Config()
	cfg.MonteCarloExec = true
	cfg.LatencyJitterSigma = 0
	cfg.MeterNoiseSigma = 0
	cfg.Contention = memhier.Contention{}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.NewMix(workload.Program{Name: "mem", Phases: []workload.Phase{{
		Name: "m", Alpha: 1.1,
		Rates:        memhier.AccessRates{L2PerInstr: 0.030, L3PerInstr: 0.006, MemPerInstr: 0.024},
		Instructions: 1e12,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetMix(3, mix); err != nil {
		t.Fatal(err)
	}
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	if err := drv.Run(2.0); err != nil {
		t.Fatal(err)
	}
	d, _ := s.LastDecision()
	got := d.Assignments[3].Actual
	if got < units.MHz(600) || got > units.MHz(700) {
		t.Errorf("MC-driven scheduler settled at %v, want 600-700MHz band", got)
	}
	// Prediction error under MC execution is non-zero but bounded.
	var devs, n float64
	decs := s.Decisions()
	for i := 2; i < len(decs); i++ {
		a := decs[i].Assignments[3]
		p := decs[i-1].Assignments[3]
		if p.PredictedIPC == 0 || a.ObservedIPC == 0 {
			continue
		}
		dev := p.PredictedIPC - a.ObservedIPC
		if dev < 0 {
			dev = -dev
		}
		devs += dev
		n++
	}
	if n == 0 {
		t.Fatal("no comparable windows")
	}
	if mean := devs / n; mean > 0.05 {
		t.Errorf("mean prediction deviation %.4f under MC execution", mean)
	}
}
