package fvsst

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Summary condenses a decision log into the quantities an operator would
// ask of the daemon after a run: how often each trigger fired, whether the
// budget was ever missed, and per-processor frequency residency — the same
// aggregation Figure 8 presents per benchmark.
type Summary struct {
	Decisions int
	// Triggers counts decisions per trigger label.
	Triggers map[string]int
	// BudgetMisses counts decisions where even the frequency floor could
	// not meet the budget.
	BudgetMisses int
	// Demotions counts Step-2 single-step reductions across the run.
	Demotions int
	// PerCPU holds per-processor aggregates indexed by CPU id.
	PerCPU []CPUSummary
}

// CPUSummary aggregates one processor's schedule over the run.
type CPUSummary struct {
	CPU int
	// MeanFreqMHz is the decision-weighted mean actual frequency.
	MeanFreqMHz float64
	// Residency maps frequency (MHz) to the fraction of decisions that
	// assigned it.
	Residency map[float64]float64
	// ClippedFraction is the share of decisions where the budget fit
	// pushed the processor below its ε-constrained desire (Figure 9's
	// actual-vs-desired gap).
	ClippedFraction float64
	// IdleFraction is the share of decisions that saw the processor idle.
	IdleFraction float64
	// Demotions counts the Step-2 reductions that landed on this
	// processor across the run.
	Demotions int
}

// Summarize builds a Summary from a decision log.
func Summarize(decisions []Decision) (*Summary, error) {
	if len(decisions) == 0 {
		return nil, fmt.Errorf("fvsst: no decisions to summarise")
	}
	n := len(decisions[0].Assignments)
	s := &Summary{
		Decisions: len(decisions),
		Triggers:  map[string]int{},
		PerCPU:    make([]CPUSummary, n),
	}
	hists := make([]*stats.Histogram, n)
	clipped := make([]int, n)
	idle := make([]int, n)
	demoted := make([]int, n)
	var freqSum []float64 = make([]float64, n)
	for cpu := range hists {
		hists[cpu] = stats.NewHistogram()
	}
	for _, d := range decisions {
		s.Triggers[d.Trigger]++
		if !d.BudgetMet {
			s.BudgetMisses++
		}
		if len(d.Assignments) != n {
			return nil, fmt.Errorf("fvsst: decision with %d assignments, expected %d", len(d.Assignments), n)
		}
		for cpu, a := range d.Assignments {
			hists[cpu].MustAdd(a.Actual.MHz(), 1)
			freqSum[cpu] += a.Actual.MHz()
			if a.Desired > a.Actual {
				clipped[cpu]++
			}
			if a.Idle {
				idle[cpu]++
			}
		}
		for _, dm := range d.Demotions {
			s.Demotions++
			if dm.CPU >= 0 && dm.CPU < n {
				demoted[dm.CPU]++
			}
		}
	}
	for cpu := 0; cpu < n; cpu++ {
		cs := CPUSummary{
			CPU:             cpu,
			MeanFreqMHz:     freqSum[cpu] / float64(len(decisions)),
			Residency:       map[float64]float64{},
			ClippedFraction: float64(clipped[cpu]) / float64(len(decisions)),
			IdleFraction:    float64(idle[cpu]) / float64(len(decisions)),
			Demotions:       demoted[cpu],
		}
		bins, fracs := hists[cpu].Fractions()
		for i, b := range bins {
			cs.Residency[b] = fracs[i]
		}
		s.PerCPU[cpu] = cs
	}
	return s, nil
}

// Render formats the summary as text.
func (s *Summary) Render() string {
	t := telemetry.Table{
		Title:   fmt.Sprintf("fvsst run summary: %d decisions, %d budget misses, %d demotions", s.Decisions, s.BudgetMisses, s.Demotions),
		Headers: []string{"CPU", "mean f", "clipped", "idle", "demoted", "top residencies"},
	}
	for _, c := range s.PerCPU {
		type bin struct {
			mhz, frac float64
		}
		var bins []bin
		for m, f := range c.Residency {
			bins = append(bins, bin{m, f})
		}
		sort.Slice(bins, func(i, j int) bool { return bins[i].frac > bins[j].frac })
		top := ""
		for i, b := range bins {
			if i == 3 || b.frac < 0.01 {
				break
			}
			if i > 0 {
				top += ", "
			}
			top += fmt.Sprintf("%s %.0f%%", units.MHz(b.mhz), b.frac*100)
		}
		t.MustAddRow(
			fmt.Sprintf("%d", c.CPU),
			fmt.Sprintf("%.0fMHz", c.MeanFreqMHz),
			fmt.Sprintf("%.0f%%", c.ClippedFraction*100),
			fmt.Sprintf("%.0f%%", c.IdleFraction*100),
			fmt.Sprintf("%d", c.Demotions),
			top,
		)
	}
	out := t.String()
	triggers := make([]string, 0, len(s.Triggers))
	for name := range s.Triggers {
		triggers = append(triggers, name)
	}
	sort.Strings(triggers)
	out += "triggers:"
	for _, name := range triggers {
		out += fmt.Sprintf(" %s=%d", name, s.Triggers[name])
	}
	return out + "\n"
}
