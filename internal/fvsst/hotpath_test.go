package fvsst

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/units"
	"repro/internal/workload"
)

// hotPathScheduler builds a quiet p630 with long-running mixed workloads on
// every CPU and a scheduler warmed past its first few windows, the
// steady-state the allocation guarantees cover. Decision logging is off —
// the log append is, by design, the one allocation the logging mode keeps.
func hotPathScheduler(tb testing.TB) (*machine.Machine, *Scheduler) {
	tb.Helper()
	m := quietMachine(tb)
	// Big instruction budgets so no job completes during the measurement
	// (completions append to the machine's completion log).
	progs := []workload.Program{
		cpuProgram("hot-cpu0", 1e15),
		memProgram("hot-mem1", 1e15),
		cpuProgram("hot-cpu2", 1e15),
		memProgram("hot-mem3", 1e15),
	}
	for cpu, p := range progs {
		mix, err := workload.NewMix(p)
		if err != nil {
			tb.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			tb.Fatal(err)
		}
	}
	cfg := noOverheadConfig()
	// A budget below 4×140 W keeps Step 2 busy so the measurement covers
	// the demotion loop too.
	s, err := New(cfg, m, units.Watts(350))
	if err != nil {
		tb.Fatal(err)
	}
	s.SetDecisionLogging(false)
	// Warm up: fill the sampler windows and let every reusable buffer
	// reach its steady-state capacity.
	for i := 0; i < 5*cfg.SchedulePeriods; i++ {
		m.Step()
		due, err := s.Collect()
		if err != nil {
			tb.Fatal(err)
		}
		if due {
			if _, err := s.Schedule("timer"); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return m, s
}

// TestScheduleZeroAlloc pins the headline property of the hot-path
// refactor: a steady-state scheduling pass — collect, Figure 3 pass,
// actuation — performs zero heap allocations once decision logging is off.
func TestScheduleZeroAlloc(t *testing.T) {
	m, s := hotPathScheduler(t)
	allocs := testing.AllocsPerRun(200, func() {
		m.Step()
		if _, err := s.Collect(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Schedule("timer"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step+Collect+Schedule allocates %v per pass, want 0", allocs)
	}
}

// BenchmarkSchedulePass measures one full scheduling pass (without the
// machine step) in steady state; the interesting numbers are ns/op and
// allocs/op (expected 0).
func BenchmarkSchedulePass(b *testing.B) {
	m, s := hotPathScheduler(b)
	_ = m
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule("timer"); err != nil {
			b.Fatal(err)
		}
	}
}
