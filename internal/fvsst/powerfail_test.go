package fvsst

import (
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

// loadedMachine builds the §2 motivating system with CPU-bound work on all
// four processors, drawing the full 746 W.
func loadedMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m := quietMachine(t)
	for cpu := 0; cpu < 4; cpu++ {
		mix, err := workload.NewMix(cpuProgram("load", 1e12))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetMix(cpu, mix); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestCascadeWithoutBudgetReduction replays §2 with a scheduler that never
// learns about the failure: the supply fails at t=0.2, the system keeps
// drawing 746 W against the surviving 480 W supply, and after ΔT the second
// supply cascades.
func TestCascadeWithoutBudgetReduction(t *testing.T) {
	m := loadedMachine(t)
	s, err := New(noOverheadConfig(), m, units.Watts(560)) // full budget forever
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	plant := power.MotivatingPlant(0.5)
	drv.Plant = plant

	if err := drv.Run(0.2); err != nil {
		t.Fatalf("healthy phase: %v", err)
	}
	if err := plant.FailSupply("PS0"); err != nil {
		t.Fatal(err)
	}
	err = drv.Run(2.0)
	if !errors.Is(err, ErrCascade) {
		t.Fatalf("expected cascade, got %v", err)
	}
	if !plant.Cascaded() {
		t.Error("plant not marked cascaded")
	}
}

// TestFVSSTAvertsCascade is the paper's raison d'être: the same failure,
// but the budget schedule tells the scheduler about the surviving supply's
// 480 W limit (294 W for the CPUs after the 186 W base), and the system
// sheds power within ΔT.
func TestFVSSTAvertsCascade(t *testing.T) {
	m := loadedMachine(t)
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	sys := power.MotivatingSystem()
	cpuBudget, ok := sys.CPUBudgetFor(units.Watts(480))
	if !ok {
		t.Fatal("480W cannot cover the base load")
	}
	budgets, err := power.NewBudgetSchedule(units.Watts(560),
		power.BudgetEvent{At: 0.2, Budget: cpuBudget, Label: "PS0 fails"})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	drv.Budgets = budgets
	plant := power.MotivatingPlant(0.5)
	drv.Plant = plant

	if err := drv.Run(0.2); err != nil {
		t.Fatalf("healthy phase: %v", err)
	}
	if err := plant.FailSupply("PS0"); err != nil {
		t.Fatal(err)
	}
	if err := drv.Run(3.0); err != nil {
		t.Fatalf("cascade despite fvsst: %v", err)
	}
	if plant.Cascaded() {
		t.Error("plant cascaded")
	}
	// Steady state: system under the surviving supply's capacity, and the
	// workloads still make progress.
	if got := m.SystemPower(); got > units.Watts(480) {
		t.Errorf("system power %v above surviving capacity", got)
	}
	sample, err := m.ReadCounters(0)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Instructions == 0 {
		t.Error("no work retired under the reduced budget")
	}
	// Response time: the budget-change decision lands within ΔT of the
	// failure.
	var reacted bool
	for _, d := range s.Decisions() {
		if d.Trigger == "budget-change" && d.At <= 0.2+0.5 {
			reacted = true
		}
	}
	if !reacted {
		t.Error("no budget-change decision within ΔT")
	}
}

// TestRestorationRaisesBudget checks the reverse trigger: restoring the
// supply restores the full budget and the frequencies climb back.
func TestRestorationRaisesBudget(t *testing.T) {
	m := loadedMachine(t)
	s, err := New(noOverheadConfig(), m, units.Watts(560))
	if err != nil {
		t.Fatal(err)
	}
	budgets, err := power.NewBudgetSchedule(units.Watts(560),
		power.BudgetEvent{At: 0.2, Budget: units.Watts(294), Label: "PS0 fails"},
		power.BudgetEvent{At: 1.0, Budget: units.Watts(560), Label: "PS0 restored"},
	)
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(m, s)
	drv.Budgets = budgets
	if err := drv.Run(2.0); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalCPUPower(); got < units.Watts(500) {
		t.Errorf("CPU power %v after restoration, want near 560W again", got)
	}
	d, _ := s.LastDecision()
	for cpu, a := range d.Assignments {
		if a.Actual != units.GHz(1) {
			t.Errorf("cpu %d at %v after restoration", cpu, a.Actual)
		}
	}
}
