package fvsst

import (
	"container/heap"
	"fmt"

	"repro/internal/perfmodel"
	"repro/internal/power"
	"repro/internal/units"
)

// §5 notes the two-pass structure is a presentation choice: "it is
// possible to implement in a single pass scheduler". SinglePassAssign is
// that implementation: one sweep over the processors computes the
// ε-constrained choice, the running power total and each processor's
// next-reduction cost, and a min-heap then pops the cheapest reductions
// until the budget is met — O(P·F + R·log P) instead of the didactic
// two-pass version's O(P·F + R·P), where R is the number of reductions.
// The property tests assert it always produces an assignment with the
// same total predicted loss as FitToBudget (tie order may differ).

// reduction is one processor's next available downward step.
type reduction struct {
	cpu  int
	next units.Frequency
	loss float64
	// saving is the table power recovered by taking the step.
	saving units.Power
}

type reductionHeap []reduction

func (h reductionHeap) Len() int            { return len(h) }
func (h reductionHeap) Less(i, j int) bool  { return h[i].loss < h[j].loss }
func (h reductionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *reductionHeap) Push(x interface{}) { *h = append(*h, x.(reduction)) }
func (h *reductionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SinglePassAssign computes the full frequency assignment (Steps 1+2) in
// one sweep plus a heap drain. decs may contain nil entries for idle or
// unobserved processors: idle[i] processors go to the set minimum, nil
// non-idle ones to the maximum, exactly as the Scheduler does.
func SinglePassAssign(decs []*perfmodel.Decomposition, idle []bool, table *power.Table, budget units.Power, epsilon float64) ([]units.Frequency, bool, error) {
	if len(decs) != len(idle) {
		return nil, false, fmt.Errorf("fvsst: %d decompositions for %d idle flags", len(decs), len(idle))
	}
	if epsilon <= 0 || epsilon >= 1 {
		return nil, false, fmt.Errorf("fvsst: epsilon %v out of (0,1)", epsilon)
	}
	set := table.Frequencies()
	out := make([]units.Frequency, len(decs))
	var total units.Power

	h := make(reductionHeap, 0, len(decs))
	for i, d := range decs {
		switch {
		case idle[i]:
			out[i] = set.Min()
		case d == nil:
			out[i] = set.Max()
		default:
			out[i] = EpsilonFrequency(*d, set, epsilon)
		}
		p, err := table.PowerAt(out[i])
		if err != nil {
			return nil, false, err
		}
		total += p
		if r, ok := nextReduction(decs[i], i, out[i], table, set); ok {
			h = append(h, r)
		}
	}
	heap.Init(&h)

	for total > budget && h.Len() > 0 {
		r := heap.Pop(&h).(reduction)
		out[r.cpu] = r.next
		total -= r.saving
		if nr, ok := nextReduction(decs[r.cpu], r.cpu, r.next, table, set); ok {
			heap.Push(&h, nr)
		}
	}
	return out, total <= budget, nil
}

// nextReduction builds the heap entry for lowering cpu one step below f,
// or ok=false at the set floor.
func nextReduction(d *perfmodel.Decomposition, cpu int, f units.Frequency, table *power.Table, set units.FrequencySet) (reduction, bool) {
	next, ok := set.NextBelow(f)
	if !ok {
		return reduction{}, false
	}
	pCur, err := table.PowerAt(f)
	if err != nil {
		return reduction{}, false
	}
	pNext, err := table.PowerAt(next)
	if err != nil {
		return reduction{}, false
	}
	loss := 0.0
	if d != nil {
		loss = d.PerfLoss(set.Max(), next)
	}
	return reduction{cpu: cpu, next: next, loss: loss, saving: pCur - pNext}, true
}

// TotalPredictedLoss sums each busy processor's predicted loss versus the
// set maximum under an assignment — the objective both formulations
// greedily minimise.
func TotalPredictedLoss(decs []*perfmodel.Decomposition, assigned []units.Frequency, set units.FrequencySet) float64 {
	var sum float64
	for i, f := range assigned {
		if decs[i] == nil {
			continue
		}
		sum += decs[i].PerfLoss(set.Max(), f)
	}
	return sum
}
