package farm

import (
	"fmt"

	"repro/internal/units"
)

// DemandPoint couples one aggregate power level a cluster could run at
// with the aggregate predicted performance loss of the least-loss
// assignment at that level.
type DemandPoint struct {
	Power units.Power
	Loss  float64
}

// DemandCurve is a cluster's budget→loss trade-off, exported upward for
// the farm allocator: Points[0] is the cluster's ε-constrained desire
// (Step 1), each further point applies one more least-loss Step-2
// demotion, and the last point is the floor with every processor at the
// table minimum. Power is strictly decreasing and Loss non-decreasing
// along the curve; levels are quantised to power.Table steps because each
// point differs from its predecessor by exactly one processor demotion.
// Clusters derive it from the perfmodel.PredGrid rows a scheduling pass
// already fills, at zero extra prediction cost.
type DemandCurve struct {
	Points []DemandPoint
}

// Desired returns the power of the ε-constrained desire (the first point).
func (c DemandCurve) Desired() units.Power { return c.Points[0].Power }

// Floor returns the power of the all-minimum assignment (the last point).
func (c DemandCurve) Floor() units.Power { return c.Points[len(c.Points)-1].Power }

// Validate checks the curve's shape: non-empty, positive powers, strictly
// decreasing power and non-decreasing loss from desire to floor.
func (c DemandCurve) Validate() error {
	if len(c.Points) == 0 {
		return fmt.Errorf("farm: empty demand curve")
	}
	for i, p := range c.Points {
		if p.Power <= 0 {
			return fmt.Errorf("farm: demand point %d has non-positive power %v", i, p.Power)
		}
		if p.Loss < 0 {
			return fmt.Errorf("farm: demand point %d has negative loss %v", i, p.Loss)
		}
		if i > 0 {
			prev := c.Points[i-1]
			if p.Power >= prev.Power {
				return fmt.Errorf("farm: demand curve power not strictly decreasing at point %d (%v → %v)", i, prev.Power, p.Power)
			}
			if p.Loss < prev.Loss {
				return fmt.Errorf("farm: demand curve loss decreasing at point %d (%v → %v)", i, prev.Loss, p.Loss)
			}
		}
	}
	return nil
}

// LossAt returns the predicted loss of the cheapest curve point fitting
// the given budget, and ok=false when even the floor exceeds it (the loss
// of the floor point is still returned — the cluster cannot go lower).
func (c DemandCurve) LossAt(budget units.Power) (float64, bool) {
	for _, p := range c.Points {
		if p.Power <= budget {
			return p.Loss, true
		}
	}
	return c.Points[len(c.Points)-1].Loss, false
}
