package farm

import (
	"fmt"

	"repro/internal/units"
)

// StepKey identifies the Step-2 demotion that produced a demand point,
// in the exact order the flat greedy compares candidates: the demoted
// processor's absolute predicted loss at its new (one lower) index, its
// pre-demotion table index, and its position within the exporting
// processor set. The zero key marks a curve's first point (the Step-1
// desire — no demotion produced it).
type StepKey struct {
	Loss float64
	Idx  int
	Proc int
}

// Less orders step keys the way fvsst.FitToBudgetGrid picks its next
// demotion: smaller loss first, ties toward the higher pre-demotion
// index, remaining ties toward the earlier processor. aOff/bOff shift
// each key's Proc into a shared flat order, so keys exported by
// different members compare as if their processors were concatenated.
func (a StepKey) Less(aOff int, b StepKey, bOff int) bool {
	if a.Loss != b.Loss {
		return a.Loss < b.Loss
	}
	if a.Idx != b.Idx {
		return a.Idx > b.Idx
	}
	return a.Proc+aOff < b.Proc+bOff
}

// DemandPoint couples one aggregate power level a cluster could run at
// with the aggregate predicted performance loss of the least-loss
// assignment at that level. Step records which demotion produced the
// point, so an upper tier can interleave several members' curves in the
// exact order one flat pass over the union would have demoted.
type DemandPoint struct {
	Power units.Power
	Loss  float64
	Step  StepKey
}

// DemandCurve is a cluster's budget→loss trade-off, exported upward for
// the farm allocator: Points[0] is the cluster's ε-constrained desire
// (Step 1), each further point applies one more least-loss Step-2
// demotion, and the last point is the floor with every processor at the
// table minimum. Power is strictly decreasing and Loss non-decreasing
// along the curve; levels are quantised to power.Table steps because each
// point differs from its predecessor by exactly one processor demotion.
// Clusters derive it from the perfmodel.PredGrid rows a scheduling pass
// already fills, at zero extra prediction cost.
type DemandCurve struct {
	Points []DemandPoint
}

// Desired returns the power of the ε-constrained desire (the first point).
func (c DemandCurve) Desired() units.Power { return c.Points[0].Power }

// Floor returns the power of the all-minimum assignment (the last point).
func (c DemandCurve) Floor() units.Power { return c.Points[len(c.Points)-1].Power }

// Validate checks the curve's shape: non-empty, positive powers, strictly
// decreasing power and non-decreasing loss from desire to floor.
func (c DemandCurve) Validate() error {
	if len(c.Points) == 0 {
		return fmt.Errorf("farm: empty demand curve")
	}
	for i, p := range c.Points {
		if p.Power <= 0 {
			return fmt.Errorf("farm: demand point %d has non-positive power %v", i, p.Power)
		}
		if p.Loss < 0 {
			return fmt.Errorf("farm: demand point %d has negative loss %v", i, p.Loss)
		}
		if i > 0 {
			prev := c.Points[i-1]
			if p.Power >= prev.Power {
				return fmt.Errorf("farm: demand curve power not strictly decreasing at point %d (%v → %v)", i, prev.Power, p.Power)
			}
			if p.Loss < prev.Loss {
				return fmt.Errorf("farm: demand curve loss decreasing at point %d (%v → %v)", i, prev.Loss, p.Loss)
			}
		}
	}
	return nil
}

// LossAt returns the predicted loss of the cheapest curve point fitting
// the given budget, and ok=false when even the floor exceeds it (the loss
// of the floor point is still returned — the cluster cannot go lower).
func (c DemandCurve) LossAt(budget units.Power) (float64, bool) {
	for _, p := range c.Points {
		if p.Power <= budget {
			return p.Loss, true
		}
	}
	return c.Points[len(c.Points)-1].Loss, false
}
