package farm

import (
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/units"
)

// Member is one cluster under farm allocation: a name and the floor
// budget it falls back to when its lease expires. The floor is also what
// the allocator charges for a member it cannot reach once that member's
// last lease has run out — until then the stale lease stays charged, the
// netcluster worst-case-reservation rule one level up.
type Member struct {
	Name  string
	Floor units.Power
}

// Demand is one member's refreshed state for a reallocation pass. An
// unreachable member (partitioned away) contributes no curve; the
// allocator keeps charging its outstanding lease, then its floor.
type Demand struct {
	Curve     DemandCurve
	Reachable bool
}

// Allocation summarises one reallocation pass.
type Allocation struct {
	At      float64
	Trigger string
	// Budget is the source budget at the pass; Allocatable is what the
	// allocator divided after the safety discount.
	Budget      units.Power
	Allocatable units.Power
	// Charged is Σ(granted leases) + Σ(charges for unreachable members) —
	// the total held against the budget, which must stay ≤ Budget.
	Charged units.Power
	// Met is false when even every member at its floor exceeds the
	// allocatable budget (floors are still granted; the overshoot is the
	// caller's to surface, exactly like Step 2's met=false).
	Met bool
	// Leases are the fresh grants, one per reachable member.
	Leases []Lease
}

// Policy selects how Allocate divides the budget across members.
type Policy string

const (
	// PolicyLeastLoss is the paper's Step-2 greedy lifted one level up:
	// starting from every cluster's ε-constrained desire, repeatedly
	// demote the cluster whose next demand-curve step down costs the
	// least marginal predicted loss, until the total fits.
	PolicyLeastLoss Policy = "least-loss"
	// PolicyEqualSplit divides the allocatable budget equally across
	// reachable members regardless of demand — the classic baseline the
	// experiment compares against.
	PolicyEqualSplit Policy = "equal-split"
)

// AllocatorConfig configures the farm allocator.
type AllocatorConfig struct {
	// Source yields the global budget over time.
	Source BudgetSource
	// Members are the clusters, in a fixed order that Demand slices and
	// lease bookkeeping index.
	Members []Member
	// Periods is the reallocation cadence in dispatch quanta: the driving
	// loop arranges a timer edge every Periods quanta (an engine.Metronome
	// on its timeline, or an engine.Cadence it ticks itself) and passes it
	// to Trigger, which adds the immediate budget-change trigger whenever
	// the source budget falls below the charged total.
	Periods int
	// LeaseTTL is the lifetime of each granted lease in seconds. It must
	// cover at least one reallocation period or leases would expire
	// between renewals.
	LeaseTTL float64
	// Safety is the fraction of the source budget held back when
	// granting (allocatable = budget·(1−Safety)). Against a shrinking
	// source it must cover the worst-case decay over a lease lifetime:
	// the UPS runway governor decays at most by a factor e^(−TTL/runway)
	// ≈ 1−TTL/runway between grant and expiry, so Safety ≥ TTL/runway
	// keeps Σ(leased) ≤ budget continuously, not just at grant instants.
	Safety float64
	// Policy defaults to PolicyLeastLoss.
	Policy Policy

	Sink    obs.Sink
	Metrics *Metrics
}

// Allocator divides a time-varying global budget across clusters by least
// marginal predicted loss, issuing expiring leases. The driving loop owns
// the timer cadence; each quantum it calls Trigger with whether the timer
// fired, and when a pass is due it gathers fresh demand curves and calls
// Allocate. Not safe for concurrent use.
type Allocator struct {
	cfg AllocatorConfig

	leases   []Lease
	hasLease []bool

	// scratch reused across Allocate calls.
	pos       []int
	reachable []bool

	// passID counts reallocation passes from the farm clock epoch; it
	// stamps the realloc event and its alloc span (obs.Event.PassID).
	passID uint64
}

// NewAllocator validates the configuration and builds the allocator.
func NewAllocator(cfg AllocatorConfig) (*Allocator, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("farm: allocator needs a budget source")
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("farm: allocator needs at least one member")
	}
	seen := make(map[string]bool, len(cfg.Members))
	for i, m := range cfg.Members {
		if m.Name == "" {
			return nil, fmt.Errorf("farm: member %d needs a name", i)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("farm: duplicate member %q", m.Name)
		}
		seen[m.Name] = true
		if m.Floor <= 0 {
			return nil, fmt.Errorf("farm: member %s floor %v must be positive", m.Name, m.Floor)
		}
	}
	if cfg.LeaseTTL <= 0 {
		return nil, fmt.Errorf("farm: lease TTL %v must be positive", cfg.LeaseTTL)
	}
	if cfg.Safety < 0 || cfg.Safety >= 1 {
		return nil, fmt.Errorf("farm: safety %v must be in [0,1)", cfg.Safety)
	}
	switch cfg.Policy {
	case "":
		cfg.Policy = PolicyLeastLoss
	case PolicyLeastLoss, PolicyEqualSplit:
	default:
		return nil, fmt.Errorf("farm: unknown policy %q", cfg.Policy)
	}
	if cfg.Periods < 1 {
		return nil, fmt.Errorf("farm: allocator periods %d must be ≥ 1", cfg.Periods)
	}
	n := len(cfg.Members)
	return &Allocator{
		cfg:       cfg,
		leases:    make([]Lease, n),
		hasLease:  make([]bool, n),
		pos:       make([]int, n),
		reachable: make([]bool, n),
	}, nil
}

// Members returns the configured members.
func (a *Allocator) Members() []Member { return a.cfg.Members }

// charge is the power held against the budget for member i at now: its
// outstanding lease while live, its floor after expiry (or before any
// grant).
func (a *Allocator) charge(i int, now float64) units.Power {
	if a.hasLease[i] && now < a.leases[i].Expires {
		return a.leases[i].Budget
	}
	return a.cfg.Members[i].Floor
}

// Charged returns Σ(outstanding leases, expired → floor) at now.
func (a *Allocator) Charged(now float64) units.Power {
	var sum units.Power
	for i := range a.cfg.Members {
		sum += a.charge(i, now)
	}
	return sum
}

// Trigger decides whether a reallocation pass is due now, and why:
// "budget-change" immediately whenever the source budget has fallen below
// the charged total (a supply failure, or UPS decay outpacing the safety
// margin), else "timer" when the driver's cadence fired this quantum. A
// budget-change pass consumes the timer edge — the caller took it off its
// metronome before calling, and the pass it triggers resets the urgency
// either way. Callers then gather demand curves and call Allocate.
func (a *Allocator) Trigger(now float64, timerDue bool) (trigger string, due bool) {
	if a.cfg.Source.BudgetAt(now) < a.Charged(now) {
		return "budget-change", true
	}
	if timerDue {
		return "timer", true
	}
	return "", false
}

// NextChargeEdgeAt returns the earliest future lease expiry — the next
// time the charged total can change without an Allocate call — or +Inf
// when nothing is outstanding. With an EdgeSource budget it bounds the
// allocator's next possible budget-change trigger for DES drivers.
func (a *Allocator) NextChargeEdgeAt(now float64) float64 {
	next := math.Inf(1)
	for i := range a.cfg.Members {
		if a.hasLease[i] && now < a.leases[i].Expires && a.leases[i].Expires < next {
			next = a.leases[i].Expires
		}
	}
	return next
}

// Allocate runs one reallocation pass at now. demands must be indexed
// like the configured members. Reachable members get fresh leases; an
// unreachable member keeps its outstanding lease charged until TTL, then
// its floor — so Σ(leased) ≤ budget holds through partitions without any
// cooperation from the partitioned cluster.
func (a *Allocator) Allocate(now float64, trigger string, demands []Demand) (Allocation, error) {
	if len(demands) != len(a.cfg.Members) {
		return Allocation{}, fmt.Errorf("farm: %d demands for %d members", len(demands), len(a.cfg.Members))
	}
	a.passID++
	var passStart time.Time
	if a.cfg.Sink != nil {
		passStart = time.Now()
	}
	budget := a.cfg.Source.BudgetAt(now)
	allocatable := units.Power(float64(budget) * (1 - a.cfg.Safety))

	// Unreachable members are charged, not granted.
	var unreachableCharge units.Power
	for i, d := range demands {
		a.reachable[i] = d.Reachable
		if !d.Reachable {
			unreachableCharge += a.charge(i, now)
			continue
		}
		if err := d.Curve.Validate(); err != nil {
			return Allocation{}, fmt.Errorf("farm: member %s: %w", a.cfg.Members[i].Name, err)
		}
		if d.Curve.Floor() < a.cfg.Members[i].Floor {
			return Allocation{}, fmt.Errorf("farm: member %s demand floor %v below configured floor %v",
				a.cfg.Members[i].Name, d.Curve.Floor(), a.cfg.Members[i].Floor)
		}
		a.pos[i] = 0
	}
	avail := allocatable - unreachableCharge

	met := true
	switch a.cfg.Policy {
	case PolicyEqualSplit:
		met = a.equalSplit(avail, demands)
	default:
		met = a.leastLoss(avail, demands)
	}

	// Issue the fresh leases and assemble the pass summary.
	alloc := Allocation{
		At:          now,
		Trigger:     trigger,
		Budget:      budget,
		Allocatable: allocatable,
		Met:         met,
	}
	for i, d := range demands {
		if !d.Reachable {
			continue
		}
		l := Lease{
			Member:  a.cfg.Members[i].Name,
			Budget:  d.Curve.Points[a.pos[i]].Power,
			Granted: now,
			Expires: now + a.cfg.LeaseTTL,
		}
		a.leases[i] = l
		a.hasLease[i] = true
		alloc.Leases = append(alloc.Leases, l)
	}
	alloc.Charged = a.Charged(now)
	a.observe(&alloc, demands)
	if a.cfg.Sink != nil {
		// The reallocation pass's root span: farm passes have no phase
		// children, so one "alloc" span carries the whole duration.
		a.cfg.Sink.Emit(obs.SpanEvent(now, a.passID, "", obs.SpanAlloc, "", time.Since(passStart).Seconds()))
	}
	return alloc, nil
}

// leastLoss demotes members along their demand curves — always the member
// whose next step down costs the least marginal predicted loss, ties
// toward the larger power freed, then the lower member index — until the
// reachable total fits avail. Returns false when every member is at its
// curve floor and the total still exceeds avail.
func (a *Allocator) leastLoss(avail units.Power, demands []Demand) bool {
	for {
		var sum units.Power
		for i, d := range demands {
			if d.Reachable {
				sum += d.Curve.Points[a.pos[i]].Power
			}
		}
		if sum <= avail {
			return true
		}
		best := -1
		bestLoss := math.Inf(1)
		var bestFreed units.Power
		for i, d := range demands {
			if !d.Reachable || a.pos[i]+1 >= len(d.Curve.Points) {
				continue // unreachable, or already at the curve floor
			}
			cur, next := d.Curve.Points[a.pos[i]], d.Curve.Points[a.pos[i]+1]
			dLoss := next.Loss - cur.Loss
			freed := cur.Power - next.Power
			if dLoss < bestLoss || (dLoss == bestLoss && freed > bestFreed) {
				best, bestLoss, bestFreed = i, dLoss, freed
			}
		}
		if best < 0 {
			return false // every member at its floor, budget still exceeded
		}
		a.pos[best]++
	}
}

// equalSplit points each reachable member at the cheapest curve point
// fitting an equal share of avail (never below its curve floor). Returns
// false when a floor exceeds the share.
func (a *Allocator) equalSplit(avail units.Power, demands []Demand) bool {
	reachable := 0
	for _, d := range demands {
		if d.Reachable {
			reachable++
		}
	}
	if reachable == 0 {
		return true
	}
	share := units.Power(float64(avail) / float64(reachable))
	met := true
	for i, d := range demands {
		if !d.Reachable {
			continue
		}
		a.pos[i] = len(d.Curve.Points) - 1
		for pi, p := range d.Curve.Points {
			if p.Power <= share {
				a.pos[i] = pi
				break
			}
		}
		if d.Curve.Points[a.pos[i]].Power > share {
			met = false // even the floor exceeds the share
		}
	}
	return met
}

// observe emits the reallocation trace event and updates the gauges.
func (a *Allocator) observe(alloc *Allocation, demands []Demand) {
	a.cfg.Metrics.countRealloc(alloc.Trigger)
	a.cfg.Metrics.setGlobal(alloc.Budget, alloc.Charged)
	runway := math.Inf(1)
	if rr, ok := a.cfg.Source.(RunwayReporter); ok {
		runway = rr.RunwayAt(alloc.At, alloc.Charged)
	}
	if !math.IsInf(runway, 1) {
		a.cfg.Metrics.setRunway(runway)
	}
	var clusters []obs.ClusterAlloc
	for i, m := range a.cfg.Members {
		charge := a.charge(i, alloc.At)
		a.cfg.Metrics.setAllocated(m.Name, charge)
		if a.cfg.Sink == nil {
			continue
		}
		ca := obs.ClusterAlloc{
			Cluster:     m.Name,
			AllocatedW:  charge.W(),
			FloorW:      m.Floor.W(),
			Unreachable: !demands[i].Reachable,
		}
		if demands[i].Reachable {
			ca.DesiredW = demands[i].Curve.Desired().W()
			ca.PredictedLoss = demands[i].Curve.Points[a.pos[i]].Loss
			ca.ExpiresAt = a.leases[i].Expires
		} else if a.hasLease[i] {
			ca.ExpiresAt = a.leases[i].Expires
		}
		clusters = append(clusters, ca)
	}
	if a.cfg.Sink == nil {
		return
	}
	ev := obs.Event{
		Type:         obs.EventRealloc,
		At:           alloc.At,
		PassID:       a.passID,
		Trigger:      alloc.Trigger,
		BudgetW:      alloc.Budget.W(),
		ChargedW:     alloc.Charged.W(),
		HeadroomW:    (alloc.Budget - alloc.Charged).W(),
		BudgetMissed: !alloc.Met,
		Clusters:     clusters,
	}
	if !math.IsInf(runway, 1) {
		ev.RunwaySeconds = runway
	}
	a.cfg.Sink.Emit(ev)
}
