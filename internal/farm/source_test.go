package farm

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/units"
)

func TestStaticSource(t *testing.T) {
	s := Static(units.Watts(640))
	for _, now := range []float64{0, 1.5, 1e6} {
		if got := s.BudgetAt(now); got.W() != 640 {
			t.Errorf("BudgetAt(%v) = %v, want 640W", now, got)
		}
	}
}

func TestFromSchedule(t *testing.T) {
	sched, err := power.NewBudgetSchedule(units.Watts(900),
		power.BudgetEvent{At: 1, Budget: units.Watts(600), Label: "drop"})
	if err != nil {
		t.Fatal(err)
	}
	src, err := FromSchedule(sched)
	if err != nil {
		t.Fatal(err)
	}
	if got := src.BudgetAt(0.5).W(); got != 900 {
		t.Errorf("before the event = %vW, want 900", got)
	}
	if got := src.BudgetAt(1.5).W(); got != 600 {
		t.Errorf("after the event = %vW, want 600", got)
	}
	if _, err := FromSchedule(nil); err == nil {
		t.Error("nil schedule accepted")
	}
}

func TestFailover(t *testing.T) {
	ups, err := NewUPS(units.Joules(6000), 3)
	if err != nil {
		t.Fatal(err)
	}
	f := Failover{At: 1, Before: Static(units.Watts(900)), After: ups}
	if got := f.BudgetAt(0.999).W(); got != 900 {
		t.Errorf("budget just before failover = %vW, want the grid's 900", got)
	}
	if got := f.BudgetAt(1).W(); got != 2000 {
		t.Errorf("budget at failover = %vW, want the UPS governor's 2000 (6000J/3s)", got)
	}
	// Runway: the grid feed has no stored-energy limit, the UPS does.
	if got := f.RunwayAt(0.5, units.Watts(900)); !math.IsInf(got, 1) {
		t.Errorf("runway on grid = %v, want +Inf", got)
	}
	if got := f.RunwayAt(1.5, units.Watts(2000)); got != 3 {
		t.Errorf("runway on UPS at the governor draw = %v, want the configured 3s", got)
	}
}

func TestParseScheduleSpec(t *testing.T) {
	src, err := ParseScheduleSpec("900")
	if err != nil {
		t.Fatal(err)
	}
	if got := src.BudgetAt(10).W(); got != 900 {
		t.Errorf("flat spec at t=10 = %vW, want 900", got)
	}

	src, err = ParseScheduleSpec("900,1:600,3:0.75kW")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		now  float64
		want float64
	}{{0.5, 900}, {1.5, 600}, {3.5, 750}} {
		if got := src.BudgetAt(tc.now).W(); got != tc.want {
			t.Errorf("BudgetAt(%v) = %vW, want %v", tc.now, got, tc.want)
		}
	}

	for _, spec := range []string{
		"",           // no initial budget
		"abc",        // unparseable budget
		"-5",         // non-positive initial budget
		"900,600",    // event missing t: prefix
		"900,x:600",  // unparseable event time
		"900,1:abc",  // unparseable event budget
		"900,-1:600", // negative event time
		"900,1:0",    // non-positive event budget
	} {
		if _, err := ParseScheduleSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
