package farm

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/units"
)

// curveOf builds a demand curve from (power, loss) pairs.
func curveOf(pairs ...float64) DemandCurve {
	var c DemandCurve
	for i := 0; i+1 < len(pairs); i += 2 {
		c.Points = append(c.Points, DemandPoint{Power: units.Watts(pairs[i]), Loss: pairs[i+1]})
	}
	return c
}

func mustAllocator(t *testing.T, cfg AllocatorConfig) *Allocator {
	t.Helper()
	a, err := NewAllocator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAllocatorValidation(t *testing.T) {
	base := AllocatorConfig{
		Source:   Static(units.Watts(100)),
		Members:  []Member{{Name: "a", Floor: units.Watts(10)}},
		Periods:  1,
		LeaseTTL: 1,
	}
	cases := []struct {
		name   string
		mutate func(*AllocatorConfig)
	}{
		{"nil source", func(c *AllocatorConfig) { c.Source = nil }},
		{"no members", func(c *AllocatorConfig) { c.Members = nil }},
		{"unnamed member", func(c *AllocatorConfig) { c.Members = []Member{{Floor: units.Watts(1)}} }},
		{"duplicate member", func(c *AllocatorConfig) {
			c.Members = append(c.Members, Member{Name: "a", Floor: units.Watts(1)})
		}},
		{"zero floor", func(c *AllocatorConfig) { c.Members[0].Floor = 0 }},
		{"zero TTL", func(c *AllocatorConfig) { c.LeaseTTL = 0 }},
		{"safety ≥ 1", func(c *AllocatorConfig) { c.Safety = 1 }},
		{"zero periods", func(c *AllocatorConfig) { c.Periods = 0 }},
		{"unknown policy", func(c *AllocatorConfig) { c.Policy = "fair-share" }},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Members = append([]Member(nil), base.Members...)
		tc.mutate(&cfg)
		if _, err := NewAllocator(cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// TestAllocateDesiredFits: with headroom for every desire, each member is
// leased exactly its ε-constrained desire.
func TestAllocateDesiredFits(t *testing.T) {
	a := mustAllocator(t, AllocatorConfig{
		Source: Static(units.Watts(500)),
		Members: []Member{
			{Name: "a", Floor: units.Watts(10)},
			{Name: "b", Floor: units.Watts(10)},
		},
		Periods:  1,
		LeaseTTL: 1,
	})
	alloc, err := a.Allocate(0, "timer", []Demand{
		{Curve: curveOf(100, 0, 60, 0.2, 20, 0.5), Reachable: true},
		{Curve: curveOf(80, 0, 40, 0.1, 20, 0.4), Reachable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Met {
		t.Error("Met = false with ample headroom")
	}
	if got := alloc.Leases[0].Budget.W(); got != 100 {
		t.Errorf("member a leased %vW, want its 100W desire", got)
	}
	if got := alloc.Leases[1].Budget.W(); got != 80 {
		t.Errorf("member b leased %vW, want its 80W desire", got)
	}
	if got := alloc.Charged.W(); got != 180 {
		t.Errorf("charged %vW, want 180", got)
	}
}

// TestAllocateLeastMarginalLoss replays the greedy by hand: from desires
// 100+50=150 over a 130 W budget, the cheapest demotion is b's 0.05-loss
// step (→140), then a's 0.1-loss step (→120 ≤ 130).
func TestAllocateLeastMarginalLoss(t *testing.T) {
	a := mustAllocator(t, AllocatorConfig{
		Source: Static(units.Watts(130)),
		Members: []Member{
			{Name: "a", Floor: units.Watts(10)},
			{Name: "b", Floor: units.Watts(10)},
		},
		Periods:  1,
		LeaseTTL: 1,
	})
	alloc, err := a.Allocate(0, "timer", []Demand{
		{Curve: curveOf(100, 0, 80, 0.1, 60, 0.3), Reachable: true},
		{Curve: curveOf(50, 0, 40, 0.05, 30, 0.2), Reachable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.Met {
		t.Error("Met = false though 120W fits 130W")
	}
	if got := alloc.Leases[0].Budget.W(); got != 80 {
		t.Errorf("member a leased %vW, want 80 (one demotion)", got)
	}
	if got := alloc.Leases[1].Budget.W(); got != 40 {
		t.Errorf("member b leased %vW, want 40 (one demotion)", got)
	}
}

// TestAllocateTieBreaksTowardPowerFreed: equal marginal loss demotes the
// member that frees more power, converging in fewer steps.
func TestAllocateTieBreaksTowardPowerFreed(t *testing.T) {
	a := mustAllocator(t, AllocatorConfig{
		Source: Static(units.Watts(140)),
		Members: []Member{
			{Name: "a", Floor: units.Watts(10)},
			{Name: "b", Floor: units.Watts(10)},
		},
		Periods:  1,
		LeaseTTL: 1,
	})
	alloc, err := a.Allocate(0, "timer", []Demand{
		{Curve: curveOf(100, 0, 70, 0.1), Reachable: true},
		{Curve: curveOf(50, 0, 45, 0.1), Reachable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc.Leases[0].Budget.W(); got != 70 {
		t.Errorf("member a leased %vW, want 70 (30W freed beats 5W at equal loss)", got)
	}
	if got := alloc.Leases[1].Budget.W(); got != 50 {
		t.Errorf("member b leased %vW, want its untouched 50W desire", got)
	}
}

// TestAllocateFloorsInfeasible: when even every floor exceeds the budget,
// floors are still granted and Met reports the miss — Step 2's met=false
// one level up.
func TestAllocateFloorsInfeasible(t *testing.T) {
	a := mustAllocator(t, AllocatorConfig{
		Source: Static(units.Watts(30)),
		Members: []Member{
			{Name: "a", Floor: units.Watts(20)},
			{Name: "b", Floor: units.Watts(20)},
		},
		Periods:  1,
		LeaseTTL: 1,
	})
	alloc, err := a.Allocate(0, "timer", []Demand{
		{Curve: curveOf(100, 0, 20, 0.5), Reachable: true},
		{Curve: curveOf(100, 0, 20, 0.5), Reachable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Met {
		t.Error("Met = true though floors alone exceed the budget")
	}
	for i, l := range alloc.Leases {
		if l.Budget.W() != 20 {
			t.Errorf("lease %d = %vW, want the 20W floor", i, l.Budget)
		}
	}
}

// TestAllocateChargesUnreachable mirrors the netcluster worst-case rule:
// a partitioned member keeps its outstanding lease charged until TTL,
// then its floor, and the reachable members are granted only what is left.
func TestAllocateChargesUnreachable(t *testing.T) {
	a := mustAllocator(t, AllocatorConfig{
		Source: Static(units.Watts(200)),
		Members: []Member{
			{Name: "a", Floor: units.Watts(10)},
			{Name: "b", Floor: units.Watts(10)},
		},
		Periods:  1,
		LeaseTTL: 1,
	})
	da := Demand{Curve: curveOf(150, 0, 120, 0.1, 90, 0.3, 10, 0.9), Reachable: true}
	db := Demand{Curve: curveOf(80, 0, 10, 0.6), Reachable: true}
	if _, err := a.Allocate(0, "timer", []Demand{da, db}); err != nil {
		t.Fatal(err)
	}
	// b partitioned at t=0.5: its 80 W lease (expires t=1) stays charged,
	// so a can be granted at most 120 W.
	alloc, err := a.Allocate(0.5, "timer", []Demand{da, {Reachable: false}})
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Leases) != 1 || alloc.Leases[0].Member != "a" {
		t.Fatalf("leases = %+v, want exactly one grant to a", alloc.Leases)
	}
	if got := alloc.Leases[0].Budget.W(); got != 120 {
		t.Errorf("a leased %vW with b's 80W still charged, want 120", got)
	}
	if got := alloc.Charged.W(); got != 200 {
		t.Errorf("charged %vW, want 200 (120 granted + 80 stale)", got)
	}
	// Past b's lease expiry only its floor is charged.
	alloc, err = a.Allocate(1.5, "timer", []Demand{da, {Reachable: false}})
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc.Leases[0].Budget.W(); got != 150 {
		t.Errorf("a leased %vW after b fell to its 10W floor, want its 150W desire", got)
	}
	if got := alloc.Charged.W(); got != 160 {
		t.Errorf("charged %vW, want 160 (150 granted + 10 floor)", got)
	}
}

// TestAllocateRejectsBadDemands covers demand validation.
func TestAllocateRejectsBadDemands(t *testing.T) {
	a := mustAllocator(t, AllocatorConfig{
		Source:   Static(units.Watts(100)),
		Members:  []Member{{Name: "a", Floor: units.Watts(10)}},
		Periods:  1,
		LeaseTTL: 1,
	})
	if _, err := a.Allocate(0, "timer", nil); err == nil {
		t.Error("wrong demand count accepted")
	}
	if _, err := a.Allocate(0, "timer", []Demand{{Reachable: true}}); err == nil {
		t.Error("empty curve accepted for a reachable member")
	}
	bad := curveOf(50, 0.2, 40, 0.1) // loss decreasing
	if _, err := a.Allocate(0, "timer", []Demand{{Curve: bad, Reachable: true}}); err == nil {
		t.Error("loss-decreasing curve accepted")
	}
	low := curveOf(50, 0, 5, 0.5) // curve floor below the configured floor
	if _, err := a.Allocate(0, "timer", []Demand{{Curve: low, Reachable: true}}); err == nil {
		t.Error("curve floor below member floor accepted")
	}
}

// TestTriggerEdges: the driver's metronome fires every Periods quanta,
// and a budget falling below the charged total fires immediately.
func TestTriggerEdges(t *testing.T) {
	sched, err := power.NewBudgetSchedule(units.Watts(200),
		power.BudgetEvent{At: 0.35, Budget: units.Watts(50), Label: "drop"})
	if err != nil {
		t.Fatal(err)
	}
	src, err := FromSchedule(sched)
	if err != nil {
		t.Fatal(err)
	}
	a := mustAllocator(t, AllocatorConfig{
		Source:   src,
		Members:  []Member{{Name: "a", Floor: units.Watts(10)}},
		Periods:  5,
		LeaseTTL: 1,
	})
	if _, err := a.Allocate(0, "initial", []Demand{
		{Curve: curveOf(150, 0, 10, 0.9), Reachable: true},
	}); err != nil {
		t.Fatal(err)
	}
	tl := engine.NewTimeline()
	met, err := engine.NewMetronome(tl, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	var triggers []string
	for i := 1; i <= 5; i++ {
		now := float64(i) * 0.1
		if err := tl.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
		if trig, due := a.Trigger(now, met.TakeDue()); due {
			triggers = append(triggers, trig)
		}
	}
	// Quanta at 0.1..0.5: the 0.4 quantum sees the 0.35 drop (50 < 150
	// charged) before the metronome would fire at 0.5.
	want := []string{"budget-change", "budget-change"}
	if len(triggers) != 2 || triggers[0] != "budget-change" {
		t.Fatalf("triggers = %v, want %v (drop detected at t=0.4 and t=0.5)", triggers, want)
	}
}

// TestEqualSplitPolicy: each reachable member gets the cheapest curve
// point fitting an equal share.
func TestEqualSplitPolicy(t *testing.T) {
	a := mustAllocator(t, AllocatorConfig{
		Source: Static(units.Watts(300)),
		Members: []Member{
			{Name: "hungry", Floor: units.Watts(10)},
			{Name: "modest", Floor: units.Watts(10)},
			{Name: "idle", Floor: units.Watts(10)},
		},
		Periods:  1,
		LeaseTTL: 1,
		Policy:   PolicyEqualSplit,
	})
	alloc, err := a.Allocate(0, "timer", []Demand{
		{Curve: curveOf(250, 0, 95, 0.4, 10, 0.9), Reachable: true},
		{Curve: curveOf(90, 0, 10, 0.5), Reachable: true},
		{Curve: curveOf(30, 0, 10, 0.2), Reachable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Share = 100 W each: hungry fits only its 95 W point (big loss),
	// modest its 90 W desire, idle its 30 W desire — the waste the
	// least-loss policy exists to avoid.
	want := []float64{95, 90, 30}
	for i, l := range alloc.Leases {
		if l.Budget.W() != want[i] {
			t.Errorf("lease %s = %vW, want %v", l.Member, l.Budget, want[i])
		}
	}
	if !alloc.Met {
		t.Error("Met = false though every share fits")
	}
}

// TestHolderExpiryOnce: the holder yields the lease until expiry, falls
// back to the floor with exactly one lease-expire event, and a re-grant
// re-arms the edge.
func TestHolderExpiryOnce(t *testing.T) {
	var buf obs.Buffer
	h, err := NewHolder("web", units.Watts(50), &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.BudgetAt(0).W(); got != 50 {
		t.Errorf("budget before any grant = %vW, want the 50W floor", got)
	}
	h.Grant(Lease{Member: "web", Budget: units.Watts(300), Granted: 0, Expires: 1})
	if got := h.BudgetAt(0.5).W(); got != 300 {
		t.Errorf("budget mid-lease = %vW, want 300", got)
	}
	if got := h.BudgetAt(1.2).W(); got != 50 {
		t.Errorf("budget past expiry = %vW, want the floor", got)
	}
	h.BudgetAt(1.5)
	if n := buf.Count(obs.EventLeaseExpire, ""); n != 1 {
		t.Fatalf("%d lease-expire events, want exactly 1", n)
	}
	h.Grant(Lease{Member: "web", Budget: units.Watts(200), Granted: 2, Expires: 3})
	if got := h.BudgetAt(2.5).W(); got != 200 {
		t.Errorf("budget after re-grant = %vW, want 200", got)
	}
	h.BudgetAt(3.5)
	if n := buf.Count(obs.EventLeaseExpire, ""); n != 2 {
		t.Errorf("%d lease-expire events after second expiry, want 2", n)
	}
	if _, err := NewHolder("", units.Watts(1), nil, nil); err == nil {
		t.Error("unnamed holder accepted")
	}
	if _, err := NewHolder("x", 0, nil, nil); err == nil {
		t.Error("zero floor accepted")
	}
}
