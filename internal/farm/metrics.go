package farm

import (
	"repro/internal/obs"
	"repro/internal/units"
)

// Metrics instruments the farm layer: per-cluster allocated/used gauges,
// the global budget and runway gauges, and reallocation/lease-expiry
// counters. Like the netcluster metrics it aggregates into an
// obs.Registry so it can share an exposition endpoint with the scheduling
// metrics, and a nil *Metrics disables instrumentation the same way a nil
// Sink disables tracing.
type Metrics struct {
	Registry *obs.Registry

	allocated     *obs.GaugeVec // cluster
	used          *obs.GaugeVec // cluster
	backlog       *obs.GaugeVec // cluster
	globalBudget  *obs.Gauge
	charged       *obs.Gauge
	runway        *obs.Gauge
	reallocs      *obs.CounterVec // trigger
	leaseExpiries *obs.CounterVec // cluster
}

// NewMetrics builds the instrument set over a fresh registry.
func NewMetrics() *Metrics { return NewMetricsInto(obs.NewRegistry()) }

// NewMetricsInto builds the instrument set aggregating into r.
func NewMetricsInto(r *obs.Registry) *Metrics {
	return &Metrics{
		Registry: r,
		allocated: r.Gauge("farm_cluster_allocated_watts",
			"Budget leased to (or still charged for) each cluster after the last pass.", "cluster"),
		used: r.Gauge("farm_cluster_used_watts",
			"Actual aggregate processor power drawn by each cluster.", "cluster"),
		backlog: r.Gauge("farm_cluster_backlog_requests",
			"Queued plus in-service serving requests per cluster (serving workloads only).", "cluster"),
		globalBudget: r.Gauge("farm_budget_watts",
			"Global budget from the active source at the last pass.").With(),
		charged: r.Gauge("farm_charged_watts",
			"Σ(leased budgets) held against the global budget after the last pass.").With(),
		runway: r.Gauge("farm_runway_seconds",
			"How long the budget source sustains the charged draw (+Inf omitted).").With(),
		reallocs: r.Counter("farm_reallocations_total",
			"Reallocation passes by trigger.", "trigger"),
		leaseExpiries: r.Counter("farm_lease_expiries_total",
			"Lease expiries that dropped a cluster to its floor budget.", "cluster"),
	}
}

// nil-safe instrument helpers, mirroring the netcluster metrics pattern.

func (m *Metrics) setAllocated(cluster string, p units.Power) {
	if m == nil {
		return
	}
	m.allocated.With(cluster).Set(p.W())
}

// SetUsed records a cluster's actual aggregate processor power; the
// harness calls it per quantum alongside the allocator's own gauges.
func (m *Metrics) SetUsed(cluster string, p units.Power) {
	if m == nil {
		return
	}
	m.used.With(cluster).Set(p.W())
}

// SetBacklog records a cluster's serving backlog (queued plus in-service
// requests) — the demand signal the request-level serving harness exposes
// to farm-level dashboards.
func (m *Metrics) SetBacklog(cluster string, n int) {
	if m == nil {
		return
	}
	m.backlog.With(cluster).Set(float64(n))
}

func (m *Metrics) setGlobal(budget, charged units.Power) {
	if m == nil {
		return
	}
	m.globalBudget.Set(budget.W())
	m.charged.Set(charged.W())
}

func (m *Metrics) setRunway(seconds float64) {
	if m == nil {
		return
	}
	m.runway.Set(seconds)
}

func (m *Metrics) countRealloc(trigger string) {
	if m == nil {
		return
	}
	m.reallocs.With(trigger).Inc()
}

func (m *Metrics) countLeaseExpiry(cluster string) {
	if m == nil {
		return
	}
	m.leaseExpiries.With(cluster).Inc()
}
