package farm

import (
	"math/rand"
	"testing"

	"repro/internal/power"
	"repro/internal/units"
)

// divideTable is a small synthetic operating-point table; only
// PowerAtIndex matters for the division arithmetic.
func divideTable(t *testing.T) *power.Table {
	t.Helper()
	tab, err := power.NewTable([]power.OperatingPoint{
		{F: units.MHz(600), V: units.Volts(1.0), P: units.Watts(20)},
		{F: units.MHz(800), V: units.Volts(1.1), P: units.Watts(35)},
		{F: units.MHz(1000), V: units.Volts(1.2), P: units.Watts(55)},
		{F: units.MHz(1200), V: units.Volts(1.3), P: units.Watts(80)},
		{F: units.MHz(1400), V: units.Volts(1.4), P: units.Watts(110)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// member is a synthetic cluster for the divide tests: per-processor
// desired indices and a loss for every (proc, idx) pair.
type member struct {
	desired []int
	loss    [][]float64 // loss[proc][idx]; non-increasing in idx
}

// localGreedy builds the member's demand curve the way
// cluster.Core.DemandCurveDesired does: repeatedly demote the processor
// whose next-lower-index loss is smallest (ties toward the higher
// current index, then the earlier processor), recording the step key of
// each demotion.
func localGreedy(m member, tab *power.Table) DemandCurve {
	idx := append([]int(nil), m.desired...)
	sum := func() units.Power {
		var s units.Power
		for _, i := range idx {
			s += tab.PowerAtIndex(i)
		}
		return s
	}
	var sumLoss float64
	for p, i := range idx {
		sumLoss += m.loss[p][i]
	}
	curve := DemandCurve{Points: []DemandPoint{{Power: sum(), Loss: sumLoss}}}
	for {
		best, bestLoss := -1, 0.0
		for p, i := range idx {
			if i == 0 {
				continue
			}
			l := m.loss[p][i-1]
			if best < 0 || l < bestLoss || (l == bestLoss && i > idx[best]) {
				best, bestLoss = p, l
			}
		}
		if best < 0 {
			return curve
		}
		pre := idx[best]
		sumLoss += m.loss[best][pre-1] - m.loss[best][pre]
		idx[best] = pre - 1
		curve.Points = append(curve.Points, DemandPoint{
			Power: sum(),
			Loss:  sumLoss,
			Step:  StepKey{Loss: bestLoss, Idx: pre, Proc: best},
		})
	}
}

// flatGreedy runs the same greedy over the concatenation of every
// member's processors — the flat Step-2 reference the division must
// reproduce — returning the final per-processor indices.
func flatGreedy(members []member, tab *power.Table, budget units.Power) ([]int, bool) {
	var idx []int
	var loss [][]float64
	for _, m := range members {
		idx = append(idx, m.desired...)
		loss = append(loss, m.loss...)
	}
	for {
		var sum units.Power
		for _, i := range idx {
			sum += tab.PowerAtIndex(i)
		}
		if sum <= budget {
			return idx, true
		}
		best, bestLoss := -1, 0.0
		for p, i := range idx {
			if i == 0 {
				continue
			}
			l := loss[p][i-1]
			if best < 0 || l < bestLoss || (l == bestLoss && i > idx[best]) {
				best, bestLoss = p, l
			}
		}
		if best < 0 {
			return idx, false
		}
		idx[best]--
	}
}

// applyCurve replays a member's first pos demotions onto its desired
// indices, converting a curve position back into per-processor indices.
func applyCurve(m member, c DemandCurve, pos int) []int {
	idx := append([]int(nil), m.desired...)
	for k := 1; k <= pos; k++ {
		idx[c.Points[k].Step.Proc] = c.Points[k].Step.Idx - 1
	}
	return idx
}

func randomMember(rng *rand.Rand, nProc, tableLen int) member {
	m := member{desired: make([]int, nProc), loss: make([][]float64, nProc)}
	for p := 0; p < nProc; p++ {
		m.desired[p] = 1 + rng.Intn(tableLen-1)
		// Loss is non-increasing as the index rises toward the desire,
		// zero at and above the desired point — the shape the predictor
		// produces. Build it downward from the desire.
		row := make([]float64, tableLen)
		acc := 0.0
		for i := m.desired[p] - 1; i >= 0; i-- {
			acc += rng.Float64() * 0.1
			row[i] = acc
		}
		m.loss[p] = row
	}
	return m
}

// TestDivideMatchesFlatGreedy is the merge property the relay tier
// depends on: interleaving locally-greedy demand curves by step key
// reproduces the flat greedy over the union, for every budget level.
func TestDivideMatchesFlatGreedy(t *testing.T) {
	tab := divideTable(t)
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nMembers := 2 + rng.Intn(3)
		members := make([]member, nMembers)
		curves := make([]DemandCurve, nMembers)
		offsets := make([]int, nMembers)
		desired := make([][]int, nMembers)
		total := 0
		for i := range members {
			members[i] = randomMember(rng, 1+rng.Intn(4), tab.Len())
			curves[i] = localGreedy(members[i], tab)
			offsets[i] = total
			total += len(members[i].desired)
			desired[i] = members[i].desired
		}
		if err := curves[0].Validate(); err != nil {
			t.Fatalf("seed %d: invalid curve: %v", seed, err)
		}
		// Sweep budgets from below the floor to above the desire.
		var floor, desire units.Power
		for _, c := range curves {
			floor += c.Floor()
			desire += c.Desired()
		}
		for _, budget := range []units.Power{floor - 1, floor, (floor + desire) / 2, desire, desire + 10} {
			wantIdx, wantMet := flatGreedy(members, tab, budget)

			pos, met, err := DivideLeastLossExact(curves, desired, tab, budget)
			if err != nil {
				t.Fatalf("seed %d budget %v: %v", seed, budget, err)
			}
			if met != wantMet {
				t.Fatalf("seed %d budget %v: met %v, flat %v", seed, budget, met, wantMet)
			}
			var got []int
			for i := range members {
				got = append(got, applyCurve(members[i], curves[i], pos[i])...)
			}
			for p := range got {
				if got[p] != wantIdx[p] {
					t.Fatalf("seed %d budget %v proc %d: divide idx %d, flat %d (pos %v)",
						seed, budget, p, got[p], wantIdx[p], pos)
				}
			}

			// The fast point-power variant must agree on this table: the
			// curve point powers are sums of exact table powers, so both
			// stop tests see the same values here.
			fastPos, fastMet := DivideLeastLoss(curves, offsets, budget)
			if fastMet != wantMet {
				t.Fatalf("seed %d budget %v: fast met %v, flat %v", seed, budget, fastMet, wantMet)
			}
			for i := range pos {
				if fastPos[i] != pos[i] {
					t.Fatalf("seed %d budget %v member %d: fast pos %d, exact pos %d",
						seed, budget, i, fastPos[i], pos[i])
				}
			}
		}
	}
}

func TestDivideExactRejectsBadShapes(t *testing.T) {
	tab := divideTable(t)
	m := member{desired: []int{2, 3}, loss: [][]float64{{0.3, 0.1, 0}, {0.5, 0.3, 0.1, 0}}}
	curve := localGreedy(m, tab)

	if _, _, err := DivideLeastLossExact([]DemandCurve{curve}, nil, tab, units.Watts(100)); err == nil {
		t.Error("mismatched desired-set count accepted")
	}
	if _, _, err := DivideLeastLossExact([]DemandCurve{{}}, [][]int{{1}}, tab, units.Watts(100)); err == nil {
		t.Error("empty curve with processors accepted")
	}
	// Inconsistent step key: desired indices that do not match the
	// curve's demotion sequence.
	if _, _, err := DivideLeastLossExact([]DemandCurve{curve}, [][]int{{0, 0}}, tab, units.Watts(1)); err == nil {
		t.Error("inconsistent step keys accepted")
	}
}

func TestDivideLeastLossPanicsOnOffsetMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on offset/curve count mismatch")
		}
	}()
	DivideLeastLoss([]DemandCurve{{}}, nil, units.Watts(1))
}
