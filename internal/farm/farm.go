// Package farm is the datacenter layer above internal/cluster: it divides
// a *time-varying* global power budget across many clusters by marginal
// predicted performance cost — the paper's Step-2 least-loss greedy lifted
// one level up (§1–§2 scale the motivating supply-failure scenario from
// one machine room to a farm "serving millions of users").
//
// The package has three parts. BudgetSource abstracts where the global
// budget comes from: a static number, a power.BudgetSchedule, or the UPS
// battery model whose budget shrinks as the battery drains (a runway
// governor). DemandCurve is what each cluster exports upward: its
// budget→predicted-aggregate-loss trade-off, quantised to power.Table
// steps. Allocator runs on an engine.Cadence and greedily reallocates the
// global budget across clusters by least marginal predicted loss, issuing
// expiring budget leases so that through partitions or allocator silence
// every cluster falls back to its floor lease and Σ(leased) ≤ global
// budget holds at all times — the netcluster charged-power invariant one
// level up.
//
// farm deliberately imports only units, power, engine and obs, so
// internal/cluster can depend on it (Core exports a DemandCurve) without
// an import cycle.
package farm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/power"
	"repro/internal/units"
)

// BudgetSource yields the global power budget in force at a simulation
// time. Implementations must be deterministic functions of time and of
// explicitly accumulated state (the UPS), never of wall clocks or global
// RNGs, per the engine seeding convention.
type BudgetSource interface {
	BudgetAt(now float64) units.Power
}

// RunwayReporter is the optional BudgetSource extension for sources that
// can say how long they could sustain a given draw — the UPS. Sources
// without stored-energy limits report +Inf.
type RunwayReporter interface {
	RunwayAt(now float64, draw units.Power) float64
}

// EdgeSource is the optional BudgetSource extension for sources that can
// announce their next possible budget change — the bound a discrete-event
// driver needs before it may skip a quiet span. NextChangeAt returns the
// earliest time strictly after now at which BudgetAt may differ, or +Inf
// when the budget can never change again. The bound must be conservative
// (never later than the true next change); announcing an edge that
// re-states the current budget is fine. A source that cannot bound its
// next change returns now itself, which callers treat as "may change at
// any time" and fall back to per-quantum polling.
type EdgeSource interface {
	NextChangeAt(now float64) float64
}

// Static is a constant budget — the degenerate source for scenarios where
// the grid never fails.
type Static units.Power

// BudgetAt returns the constant budget.
func (s Static) BudgetAt(float64) units.Power { return units.Power(s) }

// NextChangeAt implements EdgeSource: a constant budget never changes.
func (s Static) NextChangeAt(float64) float64 { return math.Inf(1) }

// scheduleSource adapts the existing power.BudgetSchedule (time-ordered
// budget events) to the BudgetSource interface without duplicating it.
type scheduleSource struct {
	s *power.BudgetSchedule
}

// FromSchedule wraps a power.BudgetSchedule as a BudgetSource.
func FromSchedule(s *power.BudgetSchedule) (BudgetSource, error) {
	if s == nil {
		return nil, fmt.Errorf("farm: nil budget schedule")
	}
	return scheduleSource{s: s}, nil
}

func (b scheduleSource) BudgetAt(now float64) units.Power { return b.s.At(now) }

// NextChangeAt implements EdgeSource via the schedule's next event time.
func (b scheduleSource) NextChangeAt(now float64) float64 { return b.s.NextChangeAt(now) }

// Failover switches from one source to another at a fixed time — the §2
// supply-failure moment at farm scale: the grid feed until At, the UPS
// after.
type Failover struct {
	At     float64
	Before BudgetSource
	After  BudgetSource
}

// BudgetAt delegates to the source active at now.
func (f Failover) BudgetAt(now float64) units.Power {
	if now < f.At {
		return f.Before.BudgetAt(now)
	}
	return f.After.BudgetAt(now)
}

// NextChangeAt implements EdgeSource: before the failover the switch time
// itself is an edge, and either side's own edges pass through when that
// side can announce them. An active side that is not an EdgeSource makes
// the bound now (unbounded — callers poll).
func (f Failover) NextChangeAt(now float64) float64 {
	src, edge := f.Before, f.At
	if now >= f.At {
		src, edge = f.After, math.Inf(1)
	}
	next := now
	if es, ok := src.(EdgeSource); ok {
		next = es.NextChangeAt(now)
	}
	return math.Min(next, edge)
}

// RunwayAt delegates to the active source; a source without stored-energy
// limits (no RunwayReporter) reports +Inf.
func (f Failover) RunwayAt(now float64, draw units.Power) float64 {
	src := f.Before
	if now >= f.At {
		src = f.After
	}
	if rr, ok := src.(RunwayReporter); ok {
		return rr.RunwayAt(now, draw)
	}
	return math.Inf(1)
}

// ParseScheduleSpec parses a compact budget-schedule spec of the form
//
//	"900"  or  "900,1:600,3:750W"
//
// — an initial budget followed by comma-separated t:budget events — into a
// BudgetSource over a power.BudgetSchedule. Budgets accept units.ParsePower
// syntax ("600", "600W", "0.6kW"); times are simulated seconds. It is the
// shared plumbing behind the fvsst-cluster -budget-schedule flag.
func ParseScheduleSpec(spec string) (BudgetSource, error) {
	parts := strings.Split(spec, ",")
	initial, err := units.ParsePower(parts[0])
	if err != nil {
		return nil, fmt.Errorf("farm: schedule spec %q: %w", spec, err)
	}
	var events []power.BudgetEvent
	for _, part := range parts[1:] {
		at, budget, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("farm: schedule spec %q: event %q is not t:budget", spec, part)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(at), 64)
		if err != nil {
			return nil, fmt.Errorf("farm: schedule spec %q: event time %q: %w", spec, at, err)
		}
		b, err := units.ParsePower(budget)
		if err != nil {
			return nil, fmt.Errorf("farm: schedule spec %q: event budget %q: %w", spec, budget, err)
		}
		events = append(events, power.BudgetEvent{At: t, Budget: b, Label: part})
	}
	sched, err := power.NewBudgetSchedule(initial, events...)
	if err != nil {
		return nil, fmt.Errorf("farm: schedule spec %q: %w", spec, err)
	}
	return FromSchedule(sched)
}
