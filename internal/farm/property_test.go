package farm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/power"
	"repro/internal/units"
)

// The conservation property: under randomized demand curves, lease
// expiries, partition patterns, and budget trajectories that respect the
// allocator's documented contract, Σ(charged budgets) ≤ global budget at
// every tick and every lease ≥ its member's floor.
//
// The contract being exercised (see AllocatorConfig.Safety):
//   - a continuously shrinking source (the UPS runway governor) decays by
//     at most e^(−TTL/runway) per lease lifetime, and Safety ≥ TTL/runway
//     absorbs that decay between grant and expiry;
//   - discrete budget drops land while every member is reachable, so the
//     immediate budget-change pass can claw every lease back at once.
// A source that drops faster than leases can be reclaimed (a cliff during
// a partition with no safety margin) is outside the contract — exactly
// why the experiment routes the supply failure through the UPS governor
// instead of cutting to a raw lower schedule.

// scenario is all the per-seed randomness, drawn up front so a run is a
// pure function of it (two runs of the same scenario must fingerprint
// identically — the engine seeding convention).
type scenario struct {
	seed        int64
	members     []Member
	partitioned []bool // member is unreachable during [pStart, pEnd)
	pStart      float64
	pEnd        float64

	// Grid mode: a budget schedule with drops outside the partition.
	// UPS mode: grid feed failing over to a UPS runway governor.
	useUPS  bool
	sched   *power.BudgetSchedule
	gridW   units.Power
	upsInit units.Energy
	failAt  float64
}

const (
	propDT      = 0.05
	propSteps   = 80 // 4 simulated seconds
	propTTL     = 0.3
	propSafety  = 0.15
	propPeriods = 2 // reallocation every 0.1 s
	propRunway  = 3.0
)

func makeScenario(seed int64) scenario {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(4)
	scn := scenario{
		seed:        seed,
		partitioned: make([]bool, n),
		pStart:      1.2,
		pEnd:        2.0,
		useUPS:      seed%2 == 1,
		failAt:      0.4,
	}
	var floors units.Power
	for i := 0; i < n; i++ {
		floor := units.Watts(5 + rng.Float64()*10)
		scn.members = append(scn.members, Member{Name: fmt.Sprintf("c%d", i), Floor: floor})
		floors += floor
	}
	for i := range scn.partitioned {
		scn.partitioned[i] = rng.Float64() < 0.4
	}
	scn.partitioned[rng.Intn(n)] = false // keep at least one member reachable

	// Budgets never dip below what every floor needs through the safety
	// discount — below that the floors themselves overrun and the
	// invariant is physically unsatisfiable (Met=false is the report).
	minBudget := units.Power(float64(floors) / (1 - propSafety) * 1.05)
	if scn.useUPS {
		scn.gridW = units.Power(float64(minBudget) * (3 + rng.Float64()*3))
		// Sized so ~3.6 s of governor decay still ends above minBudget:
		// 5·e^(−3.6/3) ≈ 1.5.
		scn.upsInit = units.Energy(float64(minBudget) * 5 * propRunway)
		return scn
	}
	initial := units.Power(float64(minBudget) * (1.2 + rng.Float64()*4.8))
	var events []power.BudgetEvent
	for i, k := 0, rng.Intn(4); i < k; i++ {
		// Drops of any size are allowed, but only while all members are
		// reachable: outside [pStart−dt, pEnd).
		at := rng.Float64() * 4
		if at >= scn.pStart-propDT && at < scn.pEnd {
			at = scn.pEnd + rng.Float64()*(4-scn.pEnd)
		}
		b := units.Power(float64(minBudget) * (1.2 + rng.Float64()*4.8))
		events = append(events, power.BudgetEvent{At: at, Budget: b})
	}
	sched, err := power.NewBudgetSchedule(initial, events...)
	if err != nil {
		panic(err) // generator bug, not a property failure
	}
	scn.sched = sched
	return scn
}

func (s scenario) reachable(i int, now float64) bool {
	return !(s.partitioned[i] && now >= s.pStart && now < s.pEnd)
}

func (s scenario) allReachable(now float64) bool {
	for i := range s.members {
		if !s.reachable(i, now) {
			return false
		}
	}
	return true
}

// randomCurve draws a fresh demand curve whose floor is exactly the
// member floor: strictly decreasing power, non-decreasing loss.
func randomCurve(rng *rand.Rand, floor units.Power) DemandCurve {
	steps := 2 + rng.Intn(8)
	powers := make([]units.Power, steps)
	losses := make([]float64, steps)
	powers[0] = floor
	losses[0] = 0.2 + rng.Float64()*0.7
	for i := 1; i < steps; i++ {
		powers[i] = powers[i-1] + units.Watts(1+rng.Float64()*30)
		losses[i] = losses[i-1] * rng.Float64() * 0.9
	}
	var c DemandCurve
	for i := steps - 1; i >= 0; i-- {
		c.Points = append(c.Points, DemandPoint{Power: powers[i], Loss: losses[i]})
	}
	return c
}

// runConservation drives one randomized scenario and asserts the
// invariant at every tick. It returns a fingerprint of every pass for
// the determinism check.
func runConservation(t *testing.T, seed int64) string {
	t.Helper()
	scn := makeScenario(seed)
	rng := rand.New(rand.NewSource(seed*31 + 7)) // per-run draws: demand curves

	var src BudgetSource
	var ups *UPS
	if scn.useUPS {
		var err error
		ups, err = NewUPS(scn.upsInit, propRunway)
		if err != nil {
			t.Fatal(err)
		}
		src = Failover{At: scn.failAt, Before: Static(scn.gridW), After: ups}
	} else {
		var err error
		src, err = FromSchedule(scn.sched)
		if err != nil {
			t.Fatal(err)
		}
	}

	a, err := NewAllocator(AllocatorConfig{
		Source:   src,
		Members:  scn.members,
		Periods:  propPeriods,
		LeaseTTL: propTTL,
		Safety:   propSafety,
	})
	if err != nil {
		t.Fatal(err)
	}
	holders := make([]*Holder, len(scn.members))
	for i, m := range scn.members {
		if holders[i], err = NewHolder(m.Name, m.Floor, nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	var fp strings.Builder
	demandsAt := func(now float64) []Demand {
		demands := make([]Demand, len(scn.members))
		for i, m := range scn.members {
			if scn.reachable(i, now) {
				demands[i] = Demand{Curve: randomCurve(rng, m.Floor), Reachable: true}
			}
		}
		return demands
	}
	pass := func(now float64, trigger string) {
		alloc, err := a.Allocate(now, trigger, demandsAt(now))
		if err != nil {
			t.Fatalf("seed %d t=%.2f: %v", seed, now, err)
		}
		for _, l := range alloc.Leases {
			for i, m := range scn.members {
				if m.Name != l.Member {
					continue
				}
				if l.Budget < m.Floor {
					t.Fatalf("seed %d t=%.2f: lease %s=%v below floor %v", seed, now, l.Member, l.Budget, m.Floor)
				}
				holders[i].Grant(l)
			}
		}
		if scn.allReachable(now) && !alloc.Met {
			t.Fatalf("seed %d t=%.2f: Met=false with every member reachable and budget %v above the floor minimum",
				seed, now, alloc.Budget)
		}
		fmt.Fprintf(&fp, "%.2f %s %.6f", now, trigger, alloc.Charged.W())
		for _, l := range alloc.Leases {
			fmt.Fprintf(&fp, " %s=%.6f", l.Member, l.Budget.W())
		}
		fp.WriteByte('\n')
	}

	tl := engine.NewTimeline()
	met, err := engine.NewMetronome(tl, propDT, propPeriods)
	if err != nil {
		t.Fatal(err)
	}
	pass(0, "initial")
	for i := 1; i <= propSteps; i++ {
		now := float64(i) * propDT
		prev := now - propDT
		if ups != nil && prev >= scn.failAt {
			// The farm drew the charged power over the last quantum.
			if err := ups.Drain(a.Charged(prev), propDT); err != nil {
				t.Fatalf("seed %d t=%.2f: %v", seed, now, err)
			}
		}
		if err := tl.AdvanceTo(now); err != nil {
			t.Fatalf("seed %d t=%.2f: %v", seed, now, err)
		}
		if trig, due := a.Trigger(now, met.TakeDue()); due {
			pass(now, trig)
		}
		// The invariant, checked at every tick whether or not a pass ran:
		// Σ(charged) never exceeds the source budget, and every holder
		// stays at or above its floor.
		budget, charged := src.BudgetAt(now), a.Charged(now)
		if float64(charged) > float64(budget)*(1+1e-9) {
			t.Fatalf("seed %d t=%.2f: charged %v exceeds budget %v", seed, now, charged, budget)
		}
		for i, h := range holders {
			if got := h.BudgetAt(now); got < scn.members[i].Floor {
				t.Fatalf("seed %d t=%.2f: holder %s budget %v below floor %v",
					seed, now, h.Name(), got, scn.members[i].Floor)
			}
		}
	}
	return fp.String()
}

// TestAllocatorConservationProperty sweeps many seeded scenarios.
func TestAllocatorConservationProperty(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		runConservation(t, seed)
	}
}

// TestAllocatorConservationDeterministic replays one scenario twice and
// requires byte-identical pass history — the seeding convention holds at
// the farm layer too.
func TestAllocatorConservationDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		if a, b := runConservation(t, seed), runConservation(t, seed); a != b {
			t.Errorf("seed %d: two runs diverged:\n%s\n---\n%s", seed, a, b)
		}
	}
}

// FuzzAllocatorConservation lets the fuzzer hunt for seeds that break the
// invariant. Run with: go test -fuzz=FuzzAllocatorConservation ./internal/farm/
func FuzzAllocatorConservation(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 42, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runConservation(t, seed)
	})
}
