package farm

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/units"
)

// DivideLeastLoss splits a power budget across member demand curves by
// replaying the flat Step-2 greedy over their step keys: every member
// starts at its desire (point 0) and the member whose next point carries
// the smallest key — absolute loss ascending, pre-demotion index
// descending, flat processor index ascending — advances one point, until
// the aggregate point power fits the budget. offsets[i] is member i's
// first processor's index in the flat concatenated order; because each
// member's curve is itself the least-loss demotion sequence over its own
// processors, interleaving by key reproduces the demotion order of one
// flat fvsst.FitToBudgetGrid pass over the union, and the returned point
// index per member is that flat schedule, sliced.
//
// The stop test sums the members' current point powers, so it can differ
// from the flat pass's per-processor summation by float rounding at the
// boundary; DivideLeastLossExact removes that difference when the
// per-processor data is available. met is false when every curve is at
// its floor with the budget still exceeded. Empty curves are skipped.
func DivideLeastLoss(curves []DemandCurve, offsets []int, budget units.Power) (pos []int, met bool) {
	if len(offsets) != len(curves) {
		panic(fmt.Sprintf("farm: %d offsets for %d curves", len(offsets), len(curves)))
	}
	pos = make([]int, len(curves))
	for {
		var sum units.Power
		for i, c := range curves {
			if len(c.Points) > 0 {
				sum += c.Points[pos[i]].Power
			}
		}
		if sum <= budget {
			return pos, true
		}
		if !advanceLeastLoss(curves, offsets, pos) {
			return pos, false
		}
	}
}

// DivideLeastLossExact is DivideLeastLoss with the flat pass's exact
// stop arithmetic: desired[i] holds member i's initial per-processor
// table indices (curve point 0), and the stop test re-sums
// table.PowerAtIndex over every processor in flat order each iteration —
// bit for bit the loop in fvsst.FitToBudgetGrid. The division is then
// byte-identical to the flat schedule on any input, at O(total
// processors) per demotion. Curves must carry consistent step keys
// (each advance demotes desired[i][Step.Proc] from Step.Idx).
func DivideLeastLossExact(curves []DemandCurve, desired [][]int, table *power.Table, budget units.Power) (pos []int, met bool, err error) {
	if len(desired) != len(curves) {
		return nil, false, fmt.Errorf("farm: %d desired sets for %d curves", len(desired), len(curves))
	}
	offsets := make([]int, len(curves))
	total := 0
	for i, d := range desired {
		offsets[i] = total
		total += len(d)
		if len(curves[i].Points) == 0 && len(d) > 0 {
			return nil, false, fmt.Errorf("farm: member %d has %d processors but an empty curve", i, len(d))
		}
	}
	actual := make([]int, 0, total)
	for _, d := range desired {
		actual = append(actual, d...)
	}
	pos = make([]int, len(curves))
	for {
		var sum units.Power
		for _, idx := range actual {
			sum += table.PowerAtIndex(idx)
		}
		if sum <= budget {
			return pos, true, nil
		}
		best := bestHead(curves, offsets, pos)
		if best < 0 {
			return pos, false, nil
		}
		step := curves[best].Points[pos[best]+1].Step
		g := offsets[best] + step.Proc
		if g < 0 || g >= len(actual) || actual[g] != step.Idx {
			return nil, false, fmt.Errorf("farm: member %d step key (proc %d idx %d) inconsistent with its desired indices", best, step.Proc, step.Idx)
		}
		actual[g] = step.Idx - 1
		pos[best]++
	}
}

// advanceLeastLoss moves the best member one point down its curve,
// reporting false when every member is at its floor.
func advanceLeastLoss(curves []DemandCurve, offsets, pos []int) bool {
	best := bestHead(curves, offsets, pos)
	if best < 0 {
		return false
	}
	pos[best]++
	return true
}

// bestHead picks the member whose next curve point has the smallest step
// key (-1 when every member is exhausted).
func bestHead(curves []DemandCurve, offsets, pos []int) int {
	best := -1
	for i, c := range curves {
		if pos[i]+1 >= len(c.Points) {
			continue
		}
		if best < 0 || c.Points[pos[i]+1].Step.Less(offsets[i], curves[best].Points[pos[best]+1].Step, offsets[best]) {
			best = i
		}
	}
	return best
}
