package farm

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestUPSValidation(t *testing.T) {
	if _, err := NewUPS(0, 5); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewUPS(units.Joules(100), 0); err == nil {
		t.Error("zero runway accepted")
	}
	if _, err := NewUPS(units.Joules(-1), 5); err == nil {
		t.Error("negative capacity accepted")
	}
}

// TestUPSBudgetDecayMonotone pins the runway governor's shape: draining
// at exactly the offered budget each period yields a strictly decreasing
// budget (exponential decay) that never empties the battery.
func TestUPSBudgetDecayMonotone(t *testing.T) {
	u, err := NewUPS(units.Joules(10000), 5)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.1
	prev := u.BudgetAt(0)
	if got := prev.W(); got != 2000 {
		t.Fatalf("initial budget = %v, want 2000W (10000J / 5s)", prev)
	}
	for i := 0; i < 200; i++ {
		b := u.BudgetAt(float64(i) * dt)
		if i > 0 && b >= prev {
			t.Fatalf("budget not strictly decreasing at step %d: %v → %v", i, prev, b)
		}
		prev = b
		if err := u.Drain(b, dt); err != nil {
			t.Fatal(err)
		}
		if u.Empty() {
			t.Fatalf("battery emptied at step %d under compliant drain", i)
		}
	}
	// 20 s at a 5 s runway: E/E₀ should be close to e^(−4).
	ratio := u.Remaining().J() / u.Capacity().J()
	if want := math.Exp(-4); math.Abs(ratio-want)/want > 0.05 {
		t.Errorf("E/E₀ after 20s = %.4f, want ≈ e^−4 = %.4f", ratio, want)
	}
}

// TestUPSRunwayGuarantee is the governor's contract: a consumer that
// drains at most the budget offered at the start of each period keeps the
// instantaneous runway (remaining energy / current draw) at or above the
// configured runway, within one period.
func TestUPSRunwayGuarantee(t *testing.T) {
	const runway = 4.0
	const period = 0.25
	u, err := NewUPS(units.Joules(8000), runway)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		now := float64(i) * period
		draw := u.BudgetAt(now)
		if err := u.Drain(draw, period); err != nil {
			t.Fatal(err)
		}
		// Even at the worst point — a full period elapsed since the budget
		// was computed, drain still at the stale (higher) rate — the
		// instantaneous runway has given up at most that one period.
		if got := u.RunwayAt(now+period, draw); got < runway-period-1e-9 {
			t.Fatalf("t=%.2f: runway %v fell below the %v−%v guarantee", now+period, got, runway, period)
		}
	}
}

// TestUPSRecharge covers grid power returning: recharge refills the
// battery, the budget recovers, and the store clamps at capacity.
func TestUPSRecharge(t *testing.T) {
	u, err := NewUPS(units.Joules(1000), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Drain(units.Watts(100), 5); err != nil { // −500 J
		t.Fatal(err)
	}
	if got := u.Remaining().J(); got != 500 {
		t.Fatalf("remaining after drain = %vJ, want 500", got)
	}
	low := u.BudgetAt(5)
	if err := u.Recharge(units.Watts(50), 4); err != nil { // +200 J
		t.Fatal(err)
	}
	if got := u.Remaining().J(); got != 700 {
		t.Fatalf("remaining after recharge = %vJ, want 700", got)
	}
	if b := u.BudgetAt(9); b <= low {
		t.Errorf("budget did not recover after recharge: %v ≤ %v", b, low)
	}
	// Over-recharge clamps at capacity.
	if err := u.Recharge(units.Watts(1000), 10); err != nil {
		t.Fatal(err)
	}
	if got := u.Remaining(); got != u.Capacity() {
		t.Errorf("remaining after over-recharge = %v, want capacity %v", got, u.Capacity())
	}
	if got := u.Drained().J(); got != 500 {
		t.Errorf("drained meter = %vJ, want 500", got)
	}
	// Over-drain clamps at zero and reports Empty.
	if err := u.Drain(units.Watts(1e6), 10); err != nil {
		t.Fatal(err)
	}
	if !u.Empty() || u.Remaining() != 0 {
		t.Errorf("over-drain left %v stored, Empty=%v", u.Remaining(), u.Empty())
	}
	if err := u.Drain(units.Watts(10), -1); err == nil {
		t.Error("negative dt accepted")
	}
	if err := u.Recharge(units.Watts(-10), 1); err == nil {
		t.Error("negative recharge power accepted")
	}
}

// TestUPSMaxOutput pins the inverter cap.
func TestUPSMaxOutput(t *testing.T) {
	u, err := NewUPS(units.Joules(100000), 1)
	if err != nil {
		t.Fatal(err)
	}
	u.MaxOutput = units.Watts(500)
	if got := u.BudgetAt(0); got.W() != 500 {
		t.Errorf("capped budget = %v, want 500W", got)
	}
	if got := u.RunwayAt(0, 0); !math.IsInf(got, 1) {
		t.Errorf("runway at zero draw = %v, want +Inf", got)
	}
}
