package farm

import (
	"fmt"
	"math"

	"repro/internal/power"
	"repro/internal/units"
)

// UPS models the battery feed the farm falls back to when the grid supply
// fails: a capacity in joules, drain integrated from the *charged* power —
// the sum of granted budget leases, not the metered draw, so the governor
// is conservative through partitions exactly like the netcluster charged-
// power invariant — and a budget computed each period so the remaining
// energy sustains a configured runway:
//
//	B(t) = E_remaining(t) / runway
//
// Draining at exactly B(t) gives E(t) = E₀·e^(−t/runway): the budget
// shrinks as the battery depletes but the instantaneous runway never
// drops below the configured value, so the battery is never emptied by a
// compliant consumer (a runway governor, not a countdown).
type UPS struct {
	capacity units.Energy
	stored   units.Energy
	runway   float64
	// MaxOutput optionally caps BudgetAt (an inverter limit); zero means
	// uncapped.
	MaxOutput units.Power

	drained   power.EnergyMeter
	recharged power.EnergyMeter
}

// NewUPS builds a fully charged UPS with the given capacity whose budget
// sustains the given runway in seconds.
func NewUPS(capacity units.Energy, runway float64) (*UPS, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("farm: UPS capacity %v must be positive", capacity)
	}
	if runway <= 0 {
		return nil, fmt.Errorf("farm: UPS runway %v must be positive", runway)
	}
	return &UPS{capacity: capacity, stored: capacity, runway: runway}, nil
}

// Capacity returns the battery's full charge.
func (u *UPS) Capacity() units.Energy { return u.capacity }

// Remaining returns the energy currently stored.
func (u *UPS) Remaining() units.Energy { return u.stored }

// Runway returns the configured runway in seconds.
func (u *UPS) Runway() float64 { return u.runway }

// Drained returns the total energy integrated out of the battery.
func (u *UPS) Drained() units.Energy { return u.drained.Total() }

// Empty reports whether the battery has been drained to zero.
func (u *UPS) Empty() bool { return u.stored <= 0 }

// Drain integrates p over dt seconds out of the battery, clamping the
// stored energy at zero.
func (u *UPS) Drain(p units.Power, dt float64) error {
	if err := u.drained.Accumulate(p, dt); err != nil {
		return fmt.Errorf("farm: UPS drain: %w", err)
	}
	u.stored -= units.EnergyOver(p, dt)
	if u.stored < 0 {
		u.stored = 0
	}
	return nil
}

// Recharge integrates p over dt seconds back into the battery (grid power
// returned), clamping the stored energy at capacity.
func (u *UPS) Recharge(p units.Power, dt float64) error {
	if err := u.recharged.Accumulate(p, dt); err != nil {
		return fmt.Errorf("farm: UPS recharge: %w", err)
	}
	u.stored += units.EnergyOver(p, dt)
	if u.stored > u.capacity {
		u.stored = u.capacity
	}
	return nil
}

// BudgetAt returns the runway-governed budget: the draw the remaining
// energy sustains for the configured runway, capped by MaxOutput when set.
func (u *UPS) BudgetAt(float64) units.Power {
	b := units.Power(float64(u.stored) / u.runway)
	if u.MaxOutput > 0 && b > u.MaxOutput {
		b = u.MaxOutput
	}
	return b
}

// RunwayAt reports how long the battery sustains the given draw; +Inf at
// zero draw.
func (u *UPS) RunwayAt(_ float64, draw units.Power) float64 {
	if draw <= 0 {
		return math.Inf(1)
	}
	return float64(u.stored) / float64(draw)
}
