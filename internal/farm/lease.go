package farm

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/units"
)

// Lease is one expiring budget grant from the allocator to a cluster:
// the cluster may schedule against Budget until Expires, after which it
// must fall back to its floor on its own. Expiry-without-renewal is how
// the invariant survives partitions and allocator silence — the same
// shape as the engine.Lease watchdog, but carrying a power value and
// synchronised through simulation time rather than a clock callback.
type Lease struct {
	Member  string
	Budget  units.Power
	Granted float64
	Expires float64
}

// Holder is the cluster-side end of the lease protocol and itself a
// BudgetSource: it yields the leased budget while the lease is live and
// the floor once it expires, emitting one obs.EventLeaseExpire on the
// expiry edge (engine.Lease-style once-only semantics — a re-Grant
// re-arms it). Plugging a Holder into cluster.Coordinator.SetBudgetSource
// gives the coordinator the paper's budget-change trigger at both the
// grant and the expiry edge with no extra wiring.
//
// Holder is not synchronised; like engine.Lease it belongs to whatever
// single-threaded loop owns the cluster.
type Holder struct {
	name    string
	floor   units.Power
	sink    obs.Sink
	metrics *Metrics

	lease   Lease
	granted bool
	tripped bool
}

// NewHolder builds a lease holder for a cluster with the given floor
// budget. Until the first Grant it yields the floor. sink and metrics may
// be nil.
func NewHolder(name string, floor units.Power, sink obs.Sink, metrics *Metrics) (*Holder, error) {
	if name == "" {
		return nil, fmt.Errorf("farm: holder needs a name")
	}
	if floor <= 0 {
		return nil, fmt.Errorf("farm: holder %s floor %v must be positive", name, floor)
	}
	return &Holder{name: name, floor: floor, sink: sink, metrics: metrics}, nil
}

// Name returns the holder's cluster name.
func (h *Holder) Name() string { return h.name }

// Floor returns the failsafe budget the holder falls back to.
func (h *Holder) Floor() units.Power { return h.floor }

// Grant installs a new lease, replacing any previous one and re-arming
// the expiry edge.
func (h *Holder) Grant(l Lease) {
	h.lease = l
	h.granted = true
	h.tripped = false
}

// Lease returns the current lease and whether one was ever granted.
func (h *Holder) Lease() (Lease, bool) { return h.lease, h.granted }

// Expired reports whether the holder has fallen back to its floor.
func (h *Holder) Expired(now float64) bool {
	return !h.granted || now >= h.lease.Expires
}

// BudgetAt yields the budget the cluster may schedule against at now: the
// leased budget while live, the floor after expiry. The first call past
// the expiry emits the lease-expire trace event and counts the metric.
func (h *Holder) BudgetAt(now float64) units.Power {
	if !h.Expired(now) {
		return h.lease.Budget
	}
	if h.granted && !h.tripped {
		h.tripped = true
		if h.sink != nil {
			h.sink.Emit(obs.Event{
				Type:    obs.EventLeaseExpire,
				At:      now,
				Node:    h.name,
				BudgetW: h.floor.W(),
				Detail: fmt.Sprintf("lease of %v granted at t=%.3f expired at t=%.3f; floor %v",
					h.lease.Budget, h.lease.Granted, h.lease.Expires, h.floor),
			})
		}
		h.metrics.countLeaseExpiry(h.name)
	}
	return h.floor
}

// NextChangeAt implements EdgeSource: a live lease's only edge is its
// expiry; after the fall-back to the floor only the next Grant — which
// the granting driver accounts for itself — changes the budget.
func (h *Holder) NextChangeAt(now float64) float64 {
	if h.granted && now < h.lease.Expires {
		return h.lease.Expires
	}
	return math.Inf(1)
}
