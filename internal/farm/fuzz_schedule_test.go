package farm

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseScheduleSpec drives the budget-schedule parser with arbitrary
// specs: it must never panic, and whenever it accepts a spec the
// resulting source must yield finite positive budgets at all times (a
// schedule that can emit zero or NaN watts would poison every layer
// above it).
func FuzzParseScheduleSpec(f *testing.F) {
	f.Add("900")
	f.Add("900,1:600,3:750W")
	f.Add("0.9kW,0.5:600W")
	f.Add("900,")
	f.Add(",900")
	f.Add("900,x:600")
	f.Add("900,1:")
	f.Add("900,1:600,1:600")
	f.Add("-5")
	f.Add("900,-1:600")
	f.Add(strings.Repeat("9", 400))
	f.Fuzz(func(t *testing.T, spec string) {
		src, err := ParseScheduleSpec(spec)
		if err != nil {
			if src != nil {
				t.Fatalf("error %v with non-nil source", err)
			}
			return
		}
		if src == nil {
			t.Fatal("nil source without error")
		}
		for _, at := range []float64{0, 0.5, 1, 3, 1e6} {
			b := src.BudgetAt(at).W()
			if math.IsNaN(b) || math.IsInf(b, 0) || b <= 0 {
				t.Fatalf("spec %q: budget %v at t=%v not finite positive", spec, b, at)
			}
		}
	})
}
