package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table used to print the paper's
// tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; cells beyond the header count are rejected.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Headers) {
		return fmt.Errorf("telemetry: row has %d cells, table has %d columns", len(cells), len(t.Headers))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow for rows built in lockstep with the headers.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Write(&sb); err != nil {
		return fmt.Sprintf("telemetry: render failed: %v", err)
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// AsciiChart renders a series as a rows×cols character plot, newest-style
// "good enough to see the shape" output for the trace figures.
func AsciiChart(s *Series, rows, cols int) string {
	if rows < 2 || cols < 2 || s.Len() == 0 {
		return "(no data)\n"
	}
	vals := s.Values()
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	t0 := s.Points[0].T
	t1 := s.Points[len(s.Points)-1].T
	if t1 == t0 {
		t1 = t0 + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for _, p := range s.Points {
		c := int((p.T - t0) / (t1 - t0) * float64(cols-1))
		r := rows - 1 - int((p.V-lo)/(hi-lo)*float64(rows-1))
		if c >= 0 && c < cols && r >= 0 && r < rows {
			grid[r][c] = '*'
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  [%.4g .. %.4g]\n", s.Name, lo, hi)
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("\n")
	}
	sb.WriteString("+" + strings.Repeat("-", cols) + "\n")
	fmt.Fprintf(&sb, " t: %.4g .. %.4g s\n", t0, t1)
	return sb.String()
}

// AsciiOverlay renders two series on one grid (first as '*', second as
// '+', coincident points as '#') over the union of their ranges — used for
// the Figure 9 actual-vs-desired comparison.
func AsciiOverlay(a, b *Series, rows, cols int) string {
	if rows < 2 || cols < 2 || (a.Len() == 0 && b.Len() == 0) {
		return "(no data)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	t0, t1 := math.Inf(1), math.Inf(-1)
	for _, s := range []*Series{a, b} {
		for _, p := range s.Points {
			if p.V < lo {
				lo = p.V
			}
			if p.V > hi {
				hi = p.V
			}
			if p.T < t0 {
				t0 = p.T
			}
			if p.T > t1 {
				t1 = p.T
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	if t1 == t0 {
		t1 = t0 + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	plot := func(s *Series, glyph byte) {
		for _, p := range s.Points {
			c := int((p.T - t0) / (t1 - t0) * float64(cols-1))
			r := rows - 1 - int((p.V-lo)/(hi-lo)*float64(rows-1))
			if c < 0 || c >= cols || r < 0 || r >= rows {
				continue
			}
			switch grid[r][c] {
			case ' ':
				grid[r][c] = glyph
			default:
				if grid[r][c] != glyph {
					grid[r][c] = '#'
				}
			}
		}
	}
	plot(a, '*')
	plot(b, '+')
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(*) vs %s(+)  [%.4g .. %.4g]\n", a.Name, b.Name, lo, hi)
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("\n")
	}
	sb.WriteString("+" + strings.Repeat("-", cols) + "\n")
	fmt.Fprintf(&sb, " t: %.4g .. %.4g s\n", t0, t1)
	return sb.String()
}

// FormatNorm formats a normalised performance/energy value the way the
// paper prints Table 3 (".79", "1", ".99").
func FormatNorm(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if math.Abs(v-1) < 0.005 {
		return "1"
	}
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimPrefix(s, "0")
	return s
}
