// Package telemetry records and renders experiment output: time series of
// scheduler and machine state (for the trace figures 5, 9 and 10), text
// tables (for Tables 1–3), CSV export, and quick ASCII charts so every
// figure of the paper can be eyeballed straight from a terminal.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one time-stamped observation.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Append adds an observation. Time must not run backwards.
func (s *Series) Append(t, v float64) error {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		return fmt.Errorf("telemetry: series %q time went backwards (%v < %v)", s.Name, t, s.Points[n-1].T)
	}
	s.Points = append(s.Points, Point{T: t, V: v})
	return nil
}

// MustAppend is Append for simulation loops with monotone clocks.
func (s *Series) MustAppend(t, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Values returns just the values, in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Between returns the sub-series with T in [t0, t1).
func (s *Series) Between(t0, t1 float64) *Series {
	out := &Series{Name: s.Name}
	for _, p := range s.Points {
		if p.T >= t0 && p.T < t1 {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// TimeWeightedMean integrates the series (held piecewise-constant between
// points) and divides by the span. It returns NaN for fewer than 2 points.
func (s *Series) TimeWeightedMean() float64 {
	if len(s.Points) < 2 {
		return math.NaN()
	}
	var area float64
	for i := 1; i < len(s.Points); i++ {
		area += s.Points[i-1].V * (s.Points[i].T - s.Points[i-1].T)
	}
	span := s.Points[len(s.Points)-1].T - s.Points[0].T
	if span == 0 {
		return math.NaN()
	}
	return area / span
}

// Recorder holds named series keyed by (group, metric).
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns (creating on first use) the series with the given name.
func (r *Recorder) Series(name string) *Series {
	if s, ok := r.series[name]; ok {
		return s
	}
	s := &Series{Name: name}
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Names returns the recorded series names in creation order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// RecorderFromSeries bundles existing series into a recorder (sharing the
// series, not copying), for CSV export of ad-hoc series collections.
func RecorderFromSeries(series ...*Series) *Recorder {
	r := NewRecorder()
	for _, s := range series {
		if s == nil {
			continue
		}
		r.series[s.Name] = s
		r.order = append(r.order, s.Name)
	}
	return r
}

// WriteCSV emits all series as a wide CSV: a time column (union of all
// timestamps) and one column per series, empty where a series has no point
// at that exact time.
func (r *Recorder) WriteCSV(w io.Writer) error {
	times := map[float64]bool{}
	for _, s := range r.series {
		for _, p := range s.Points {
			times[p.T] = true
		}
	}
	sorted := make([]float64, 0, len(times))
	for t := range times {
		sorted = append(sorted, t)
	}
	sort.Float64s(sorted)

	cols := r.Names()
	header := append([]string{"time"}, cols...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	// Index each series by time for the join.
	idx := make(map[string]map[float64]float64, len(cols))
	for _, name := range cols {
		byT := make(map[float64]float64, len(r.series[name].Points))
		for _, p := range r.series[name].Points {
			byT[p.T] = p.V
		}
		idx[name] = byT
	}
	for _, t := range sorted {
		row := make([]string, 0, len(cols)+1)
		row = append(row, fmt.Sprintf("%g", t))
		for _, name := range cols {
			if v, ok := idx[name][t]; ok {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
