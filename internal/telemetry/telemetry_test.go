package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesAppendMonotone(t *testing.T) {
	var s Series
	if err := s.Append(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(0.5, 3); err == nil {
		t.Error("backwards time accepted")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Values(); got[0] != 1 || got[1] != 2 {
		t.Errorf("Values = %v", got)
	}
}

func TestSeriesBetween(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.MustAppend(float64(i), float64(i*i))
	}
	sub := s.Between(3, 6)
	if sub.Len() != 3 || sub.Points[0].T != 3 || sub.Points[2].T != 5 {
		t.Errorf("Between = %+v", sub.Points)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var s Series
	// 10 for 1 s then 20 for 1 s → mean 15 over [0,2].
	s.MustAppend(0, 10)
	s.MustAppend(1, 20)
	s.MustAppend(2, 20)
	if got := s.TimeWeightedMean(); math.Abs(got-15) > 1e-12 {
		t.Errorf("TimeWeightedMean = %v, want 15", got)
	}
	var empty Series
	if !math.IsNaN(empty.TimeWeightedMean()) {
		t.Error("empty series mean should be NaN")
	}
	var single Series
	single.MustAppend(1, 5)
	if !math.IsNaN(single.TimeWeightedMean()) {
		t.Error("single-point mean should be NaN")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	a := r.Series("ipc")
	a.MustAppend(0, 1.0)
	b := r.Series("freq")
	b.MustAppend(0, 1000)
	if r.Series("ipc") != a {
		t.Error("Series not idempotent")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "ipc" || names[1] != "freq" {
		t.Errorf("Names = %v", names)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Series("a").MustAppend(0, 1)
	r.Series("a").MustAppend(1, 2)
	r.Series("b").MustAppend(1, 3)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "time,a,b\n0,1,\n1,2,3\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Headers: []string{"name", "value"}}
	tab.MustAddRow("gzip", "0.79")
	tab.MustAddRow("mcf", "1")
	out := tab.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "gzip") || !strings.Contains(out, "----") {
		t.Errorf("render:\n%s", out)
	}
	// Column alignment: "value" column starts at the same offset in all rows.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatalf("no header: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3][idx:], "0.79") {
		t.Errorf("misaligned row: %q", lines[3])
	}
}

func TestTableRowValidation(t *testing.T) {
	tab := Table{Headers: []string{"a", "b"}}
	if err := tab.AddRow("only-one"); err == nil {
		t.Error("short row accepted")
	}
}

func TestAsciiChart(t *testing.T) {
	var s Series
	s.Name = "freq"
	for i := 0; i < 50; i++ {
		s.MustAppend(float64(i)*0.1, math.Sin(float64(i)/5))
	}
	out := AsciiChart(&s, 8, 40)
	if !strings.Contains(out, "freq") || !strings.Contains(out, "*") {
		t.Errorf("chart:\n%s", out)
	}
	if got := AsciiChart(&Series{}, 8, 40); got != "(no data)\n" {
		t.Errorf("empty chart = %q", got)
	}
	// Constant series must not divide by zero.
	var flat Series
	flat.MustAppend(0, 5)
	flat.MustAppend(1, 5)
	if out := AsciiChart(&flat, 4, 10); !strings.Contains(out, "*") {
		t.Errorf("flat chart:\n%s", out)
	}
}

func TestAsciiOverlay(t *testing.T) {
	var a, b Series
	a.Name, b.Name = "desired", "actual"
	for i := 0; i < 30; i++ {
		a.MustAppend(float64(i), 900)
		b.MustAppend(float64(i), 750)
	}
	out := AsciiOverlay(&a, &b, 8, 40)
	if !strings.Contains(out, "desired(*) vs actual(+)") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("glyphs missing:\n%s", out)
	}
	// Coincident points render '#'.
	var c, d Series
	c.MustAppend(0, 1)
	c.MustAppend(1, 2)
	d.MustAppend(0, 1)
	d.MustAppend(1, 2)
	if out := AsciiOverlay(&c, &d, 4, 10); !strings.Contains(out, "#") {
		t.Errorf("coincident glyph missing:\n%s", out)
	}
	if got := AsciiOverlay(&Series{}, &Series{}, 8, 40); got != "(no data)\n" {
		t.Errorf("empty overlay = %q", got)
	}
}

func TestFormatNorm(t *testing.T) {
	cases := map[float64]string{
		1.0:  "1",
		0.79: ".79",
		0.52: ".52",
		0.99: ".99",
		1.2:  "1.20",
	}
	for in, want := range cases {
		if got := FormatNorm(in); got != want {
			t.Errorf("FormatNorm(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatNorm(math.NaN()); got != "-" {
		t.Errorf("FormatNorm(NaN) = %q", got)
	}
}
